(* The paper's demonstration, end to end: both Spectre variants leak a
   secret through the cache side channel on the unprotected DBT processor,
   and the GhostBusters countermeasure stops them.

     dune exec examples/spectre_demo.exe *)

let secret = "DBT-GHOST"

let banner title =
  Printf.printf "\n--- %s ---\n" title

let show variant program =
  banner (variant ^ ": secret recovery per mitigation mode");
  List.iter
    (fun mode ->
      let o = Gb_attack.Runner.run ~mode ~secret program in
      Printf.printf "  %-16s %s%s\n"
        (Gb_core.Mitigation.mode_name mode)
        (Format.asprintf "%a" Gb_attack.Runner.pp_outcome o)
        (if o.Gb_attack.Runner.result.Gb_system.Processor.patterns_found > 0
         then
           Printf.sprintf "  [%d pattern(s) detected]"
             o.Gb_attack.Runner.result.Gb_system.Processor.patterns_found
         else ""))
    Gb_core.Mitigation.all_modes

let probe_picture () =
  banner "what the attacker sees (flush+reload timing harness)";
  (* flush all 256 probe lines, re-touch the lines a leak would touch,
     then time every candidate - exactly the attack's extraction step *)
  let hot = [ Gb_attack.Side_channel.training_byte; Char.code secret.[0] ] in
  let lat = Gb_attack.Timing.measure ~hot () in
  Array.iteri
    (fun byte t ->
      if t < 20 then
        Printf.printf "  probe[%3d] = %2d cycles  <- cached%s\n" byte t
          (if byte = Gb_attack.Side_channel.training_byte then
             " (training decoy)"
           else Printf.sprintf " (would leak %C)" (Char.chr byte)))
    lat;
  let slow = Array.to_list lat |> List.filter (fun t -> t >= 20) in
  Printf.printf "  ... and %d candidates took %d+ cycles (flushed lines)\n"
    (List.length slow)
    (List.fold_left min max_int slow)

let negative_controls () =
  banner "negative controls (all on the UNSAFE configuration)";
  List.iter
    (fun (label, program) ->
      let o = Gb_attack.Runner.run ~mode:Gb_core.Mitigation.Unsafe ~secret program in
      Printf.printf "  %-44s %d/%d bytes leaked\n" label
        o.Gb_attack.Runner.correct_bytes o.Gb_attack.Runner.total_bytes)
    [
      ( "v1 without cflush (conflict eviction)",
        Gb_attack.Spectre_v1.eviction_program ~secret () );
      ( "v1 with branch-less index masking",
        Gb_attack.Spectre_v1.masked_program ~secret () );
      ( "v1 gadget split across a trace boundary",
        Gb_attack.Spectre_v1.split_program ~secret () );
    ]

let audit_picture () =
  banner "what the leakage audit sees (shadow-cache diff at every exit)";
  List.iter
    (fun mode ->
      let o =
        Gb_attack.Runner.run ~audit:true ~mode ~secret
          (Gb_attack.Spectre_v1.program ~secret ())
      in
      match o.Gb_attack.Runner.result.Gb_system.Processor.audit with
      | None -> ()
      | Some s ->
        Printf.printf
          "  %-16s %d transient line(s) (%d address-dependent) in cache \
           set(s) [%s]\n"
          (Gb_core.Mitigation.mode_name mode)
          s.Gb_cache.Audit.transient_lines s.Gb_cache.Audit.dependent_lines
          (String.concat "; "
             (List.map string_of_int s.Gb_cache.Audit.sets_touched));
        Printf.printf
          "  %-16s verdicts: %d true positive(s), %d false negative(s), %d \
           over-mitigation(s)\n"
          "" s.Gb_cache.Audit.true_positives s.Gb_cache.Audit.false_negatives
          s.Gb_cache.Audit.over_mitigations)
    [ Gb_core.Mitigation.Unsafe; Gb_core.Mitigation.Fine_grained ];
  print_string
    "  (a transient line is cache state left by a squashed load - present\n\
    \  in the real cache but not in the shadow cache that replays only\n\
    \  committed accesses; 'dependent' means its address came from another\n\
    \  speculative load, the two-load Spectre shape)\n"

let () =
  Printf.printf
    "GhostBusters demo: Spectre on a DBT-based processor (DATE 2020)\n";
  Printf.printf "secret: %S (%d bytes)\n" secret (String.length secret);
  show "Spectre v1 (trace speculation)" (Gb_attack.Spectre_v1.program ~secret ());
  show "Spectre v4 (memory speculation / MCB)"
    (Gb_attack.Spectre_v4.program ~secret ());
  negative_controls ();
  banner "beyond the paper: the translation-decision channel (E7)";
  let o =
    Gb_attack.Translation_channel.run ~mode:Gb_core.Mitigation.Fine_grained
      ~secret:"G" ()
  in
  Printf.printf
    "  under the fine-grained countermeasure, timing both directions of\n\
    \  the victim's (secret-biased) branch still %s\n"
    (Format.asprintf "%a" Gb_attack.Translation_channel.pp_outcome o);
  probe_picture ();
  audit_picture ();
  banner "takeaway";
  print_string
    "The in-order VLIW core never commits a misspeculated value, yet both\n\
     attacks read the full secret on the unsafe configuration: the DBT\n\
     engine's software speculation touches the data cache before the\n\
     squash. The poisoning analysis finds the leaking loads in the IR and\n\
     the fine-grained constraint stops both variants with no slowdown on\n\
     innocent code.\n"
