(* A reduced Figure 4: measure the slowdown of the countermeasures on a few
   Polybench kernels plus the pointer-array matmul stress case.

     dune exec examples/polybench_sweep.exe *)

let kernels = [ "gemm"; "atax"; "jacobi-1d"; "matmul-ptr" ]

let () =
  Printf.printf
    "Slowdown vs unsafe execution (reduced Figure 4; lower is better)\n\n";
  let rows =
    List.filter_map
      (fun name ->
        match Gb_workloads.Polybench.by_name name with
        | None -> None
        | Some w ->
          let mc =
            Gb_experiments.Experiments.measure_program ~name
              w.Gb_workloads.Polybench.program
          in
          let pct mode =
            Printf.sprintf "%.1f%%"
              (100. *. Gb_experiments.Experiments.slowdown mc ~mode)
          in
          Some
            [
              name;
              Int64.to_string mc.Gb_experiments.Experiments.unsafe;
              pct Gb_core.Mitigation.Fine_grained;
              pct Gb_core.Mitigation.Fence_on_detect;
              pct Gb_core.Mitigation.Min_cut;
              pct Gb_core.Mitigation.No_speculation;
              string_of_int mc.Gb_experiments.Experiments.patterns;
            ])
      kernels
  in
  Gb_util.Table.print
    ~header:
      [ "kernel"; "unsafe cycles"; "fine-grained"; "fence"; "min-cut";
        "no-spec"; "patterns" ]
    ~rows;
  print_string
    "\nOn plain kernels the Spectre pattern never occurs, so the\n\
     fine-grained countermeasure is free; only the pointer-array matmul\n\
     (double indirection on every element) pays, and it pays less than\n\
     fence insertion - the paper's Section V-B result.\n"
