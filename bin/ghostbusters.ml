(* Command-line interface to the GhostBusters reproduction.

     ghostbusters list                        workloads and attack variants
     ghostbusters run gemm --mode unsafe     run a workload, print stats
     ghostbusters attack v1 --mode unsafe    run a Spectre PoC
     ghostbusters trace gemm --mode unsafe   dump the hot translated trace
     ghostbusters explain v1|v4              poisoning analysis of Figs 1-2
     ghostbusters scan v1                    static gadget scan of a binary
     ghostbusters diff gemm --inject evict   differential oracle run
     ghostbusters figure4                    the E2 table
     ghostbusters profile gemm --mode fence  cycle-attribution ledger
     ghostbusters profile diff v1 --mode fence --mode unsafe
     ghostbusters perf record|compare|report perf-trajectory manifests *)

open Cmdliner

(* short spellings accepted wherever a mode is expected *)
let mode_aliases =
  [
    ("fence", Gb_core.Mitigation.Fence_on_detect);
    ("fine", Gb_core.Mitigation.Fine_grained);
    ("mincut", Gb_core.Mitigation.Min_cut);
    ("nospec", Gb_core.Mitigation.No_speculation);
    ("no-spec", Gb_core.Mitigation.No_speculation);
  ]

let mode_conv =
  let parse s =
    match
      List.find_opt
        (fun m -> Gb_core.Mitigation.mode_name m = s)
        Gb_core.Mitigation.all_modes
    with
    | Some m -> Ok m
    | None -> (
      match List.assoc_opt s mode_aliases with
      | Some m -> Ok m
      | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown mode %S (expected one of: %s)" s
               (String.concat ", "
                  (List.map Gb_core.Mitigation.mode_name
                     Gb_core.Mitigation.all_modes)))))
  in
  let print ppf m = Format.fprintf ppf "%s" (Gb_core.Mitigation.mode_name m) in
  Arg.conv (parse, print)

let mode_arg =
  Arg.(
    value
    & opt mode_conv Gb_core.Mitigation.Unsafe
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:
          "Mitigation mode: unsafe, fine-grained, fence-on-detect, \
           min-cut or no-speculation.")

let secret_arg =
  Arg.(
    value
    & opt string Gb_experiments.Experiments.default_secret
    & info [ "s"; "secret" ] ~docv:"SECRET" ~doc:"Secret string to exfiltrate.")

let workload_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"WORKLOAD" ~doc:"Workload name (see $(b,list)).")

let print_result (r : Gb_system.Processor.result) =
  Printf.printf "exit code        %d\n" r.Gb_system.Processor.exit_code;
  Printf.printf "cycles           %Ld\n" r.Gb_system.Processor.cycles;
  Printf.printf "interp insns     %Ld\n" r.Gb_system.Processor.interp_insns;
  Printf.printf "trace runs       %Ld\n" r.Gb_system.Processor.trace_runs;
  Printf.printf "bundles          %Ld\n" r.Gb_system.Processor.bundles;
  Printf.printf "side exits       %Ld\n" r.Gb_system.Processor.side_exits;
  Printf.printf "rollbacks        %Ld\n" r.Gb_system.Processor.rollbacks;
  Printf.printf "stall cycles     %Ld\n" r.Gb_system.Processor.stall_cycles;
  Printf.printf "translations     %d\n" r.Gb_system.Processor.translations;
  Printf.printf "dispatch exits   %Ld\n" r.Gb_system.Processor.dispatch_exits;
  Printf.printf "chain follows    %Ld\n" r.Gb_system.Processor.chain_follows;
  if r.Gb_system.Processor.cc_evictions > 0 then
    Printf.printf "cc evictions     %d\n" r.Gb_system.Processor.cc_evictions;
  Printf.printf "spec loads       %d\n" r.Gb_system.Processor.spec_loads;
  Printf.printf "patterns         %d\n" r.Gb_system.Processor.patterns_found;
  Printf.printf "constrained      %d\n" r.Gb_system.Processor.loads_constrained;
  Printf.printf "fences           %d\n" r.Gb_system.Processor.fences_inserted;
  if r.Gb_system.Processor.verify_checked > 0 then
    Printf.printf "verifier         %d checked, %d violation(s), %d fenced\n"
      r.Gb_system.Processor.verify_checked
      r.Gb_system.Processor.verify_violations
      r.Gb_system.Processor.verify_rejections;
  if r.Gb_system.Processor.output <> "" then
    Printf.printf "output           %S\n" r.Gb_system.Processor.output

let print_verify_log = function
  | [] -> ()
  | log ->
    Printf.printf "\nVerifier violations:\n";
    List.iter
      (fun (entry, v) ->
        Printf.printf "  region 0x%x: %-16s pc 0x%x  op %d  bundle %d%s\n"
          entry
          (Gb_verify.Verifier.kind_name v.Gb_verify.Verifier.v_kind)
          v.Gb_verify.Verifier.v_pc v.Gb_verify.Verifier.v_id
          v.Gb_verify.Verifier.v_bundle
          (match v.Gb_verify.Verifier.v_origins with
          | [] -> ""
          | os ->
            "  from "
            ^ String.concat ", " (List.map (Printf.sprintf "0x%x") os)))
      log

(* design-space knobs shared by run/attack *)
let width_arg =
  Arg.(value & opt (some int) None
       & info [ "width" ] ~docv:"N" ~doc:"VLIW issue width.")

let mcb_arg =
  Arg.(value & opt (some int) None
       & info [ "mcb" ] ~docv:"N" ~doc:"MCB entries (0 disables memory speculation).")

let hot_arg =
  Arg.(value & opt (some int) None
       & info [ "hot" ] ~docv:"N" ~doc:"Hot threshold before trace translation.")

let unroll_arg =
  Arg.(value & opt (some int) None
       & info [ "unroll" ] ~docv:"N" ~doc:"Trace-constructor revisit limit.")

let cache_kib_arg =
  Arg.(value & opt (some int) None
       & info [ "cache-kib" ] ~docv:"KIB" ~doc:"L1D capacity in KiB.")

let cc_capacity_arg =
  Arg.(value & opt (some int) None
       & info [ "cc-capacity" ] ~docv:"BUNDLES"
           ~doc:"Code-cache capacity budget in VLIW bundles (default 65536; \
                 small values force evictions and chain unlinking).")

let no_chain_flag =
  Arg.(value & flag
       & info [ "no-chain" ]
           ~doc:"Disable trace chaining: every trace exit returns to the \
                 dispatcher (the pre-chaining behaviour).")

let verify_flag =
  Arg.(value & flag
       & info [ "verify-translations" ]
           ~doc:"Verify every translation after scheduling: a taint \
                 dataflow over the emitted VLIW bundles re-derives which \
                 loads execute speculatively and flags memory accesses \
                 with tainted addresses. A violating translation is kept \
                 out of the code cache and retranslated with speculation \
                 fenced; violations are printed after the run.")

let workers_arg =
  Arg.(value & opt int 0
       & info [ "workers" ] ~docv:"N"
           ~env:(Cmd.Env.info "GHOSTBUSTERS_WORKERS")
           ~doc:"Translation/experiment worker domains (0 = fully \
                 synchronous). A pure wall-clock optimisation: simulated \
                 cycle counts and all verdicts are bit-identical for \
                 every value (see docs/CONCURRENCY.md).")

let build_config ?(workers = 0) mode width mcb hot unroll cache_kib cc_capacity
    no_chain verify =
  let config = Gb_system.Processor.config_for mode in
  let engine = config.Gb_system.Processor.engine in
  let resources =
    match width with
    | None -> engine.Gb_dbt.Engine.resources
    | Some w ->
      { Gb_dbt.Sched.width = w; mem_slots = max 1 (w / 4);
        mul_slots = max 1 (w / 4); branch_slots = 1 }
  in
  let opt_override =
    match mcb with
    | None -> engine.Gb_dbt.Engine.opt_override
    | Some tags ->
      Some
        { (Gb_core.Mitigation.opt_of_mode mode) with
          Gb_ir.Opt_config.mem_spec = tags > 0; mcb_tags = tags }
  in
  let trace_cfg =
    match unroll with
    | None -> engine.Gb_dbt.Engine.trace_cfg
    | Some visits ->
      { engine.Gb_dbt.Engine.trace_cfg with Gb_dbt.Trace_builder.max_visits = visits }
  in
  let cache =
    {
      Gb_dbt.Code_cache.capacity =
        Option.value
          ~default:engine.Gb_dbt.Engine.cache.Gb_dbt.Code_cache.capacity
          cc_capacity;
      chain =
        engine.Gb_dbt.Engine.cache.Gb_dbt.Code_cache.chain && not no_chain;
    }
  in
  let engine =
    { engine with
      Gb_dbt.Engine.resources; opt_override; trace_cfg; cache;
      hot_threshold =
        Option.value ~default:engine.Gb_dbt.Engine.hot_threshold hot;
      verify =
        (if verify then Gb_dbt.Engine.Verify_enforce
         else Gb_dbt.Engine.Verify_off);
      workers }
  in
  let hier =
    match cache_kib with
    | None -> config.Gb_system.Processor.hier
    | Some kib ->
      { config.Gb_system.Processor.hier with
        Gb_cache.Hierarchy.cache =
          { Gb_cache.Cache.size_bytes = kib * 1024; ways = 8; line_bytes = 64 } }
  in
  { config with Gb_system.Processor.engine; hier }

let find_workload name =
  match Gb_workloads.Polybench.by_name name with
  | Some w -> Ok w
  | None -> Error (`Msg (Printf.sprintf "unknown workload %S; try 'list'" name))

(* A guest binary by name: an attack variant or a workload (used by the
   commands that operate on the binary itself, not on a run). *)
let find_program name =
  match name with
  | "v1" ->
    Ok
      (Gb_kernelc.Compile.assemble
         (Gb_attack.Spectre_v1.program
            ~secret:Gb_experiments.Experiments.default_secret ()))
  | "v4" ->
    Ok
      (Gb_kernelc.Compile.assemble
         (Gb_attack.Spectre_v4.program
            ~secret:Gb_experiments.Experiments.default_secret ()))
  | name ->
    Result.map
      (fun (w : Gb_workloads.Polybench.t) ->
        Gb_kernelc.Compile.assemble w.Gb_workloads.Polybench.program)
      (find_workload name)

(* --- observability flags shared by run/attack --------------------------- *)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON of the run's events and DBT \
           phases to $(docv) (open in chrome://tracing or Perfetto).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the metrics snapshot (counters, gauges, histograms, \
              host-phase timers) as JSON to $(docv).")

let profile_flag =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:"Print host-side DBT phase timings and key counters after the \
              run.")

let audit_flag =
  Arg.(
    value & flag
    & info [ "audit" ]
        ~doc:
          "Attach the leakage audit: a shadow cache fed only by \
           architecturally-committed accesses is diffed against the real \
           one at every trace exit; divergent lines are attributed to \
           their guest load and cross-checked against the detector's \
           verdicts. Prints the classification summary after the run.")

let seed_arg =
  Arg.(
    value & opt int64 1L
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Seed for the observability sink's reservoir RNG, so audited \
           and instrumented runs are reproducible bit-for-bit.")

(* An active sink when any observability output was requested (the audit
   publishes metrics and transient-line events, so it counts), noop
   otherwise so unobserved runs pay nothing. *)
let sink_of_flags ~seed trace_out metrics_out profile audit =
  if trace_out <> None || metrics_out <> None || profile || audit then
    Gb_obs.Sink.create ~seed ()
  else Gb_obs.Sink.noop

let print_audit = function
  | None -> ()
  | Some s ->
    Format.printf "@.Leakage audit:@.@[<v>%a@]@." Gb_cache.Audit.pp_summary s

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* Fail on an unwritable output path before spending time on the
   simulation; the successful open leaves an empty file that the final
   write overwrites. *)
let check_outputs trace_out metrics_out =
  let writable = function
    | None -> Ok ()
    | Some path -> (
      match open_out path with
      | oc ->
        close_out oc;
        Ok ()
      | exception Sys_error e -> Error (`Msg e))
  in
  match writable trace_out with
  | Error _ as e -> e
  | Ok () -> writable metrics_out

let emit_observability obs ~trace_out ~metrics_out ~profile =
  Option.iter
    (fun path ->
      write_file path (Gb_util.Json.to_string (Gb_obs.Sink.trace_json obs)))
    trace_out;
  Option.iter
    (fun path ->
      write_file path
        (Gb_util.Json.to_string_pretty (Gb_obs.Sink.metrics_json obs)))
    metrics_out;
  if profile then begin
    let totals = Gb_obs.Sink.timer_totals obs in
    if totals <> [] then begin
      Printf.printf "\nDBT host phases (wall clock):\n";
      Gb_util.Table.print
        ~header:[ "phase"; "calls"; "total us"; "us/call" ]
        ~rows:
          (List.map
             (fun { Gb_obs.Timer.t_phase; t_calls; t_total_us } ->
               [
                 t_phase;
                 string_of_int t_calls;
                 Printf.sprintf "%.1f" t_total_us;
                 Printf.sprintf "%.1f" (t_total_us /. float_of_int t_calls);
               ])
             totals)
    end;
    match Gb_obs.Sink.metrics obs with
    | None -> ()
    | Some m ->
      Printf.printf "\nKey counters:\n";
      let counters =
        [
          "translate.translations"; "translate.first_pass";
          "translate.failures"; "translate.retranslations";
          "translate.despeculations"; "mitigation.patterns_found";
          "mitigation.loads_constrained"; "mitigation.fences_inserted";
          "vliw.trace_runs"; "vliw.side_exits"; "vliw.rollbacks";
          "vliw.mcb_conflicts"; "cache.read_misses"; "cache.write_misses";
          "code_cache.evictions"; "code_cache.chain_links";
          "code_cache.chain_follows"; "code_cache.chain_breaks";
          "processor.dispatch_exits";
        ]
      in
      (* the workers lane is wall-clock racing, not simulation — show it
         only when a pool was actually in play *)
      let counters =
        if Gb_obs.Metrics.counter_value m "workers.prefetch_submitted" > 0
        then
          counters
          @ [
              "workers.prefetch_submitted"; "workers.prefetch_hits";
              "workers.prefetch_stale"; "workers.queue_full";
              "workers.stolen";
            ]
        else counters
      in
      Gb_util.Table.print ~header:[ "counter"; "value" ]
        ~rows:
          (List.map
             (fun name ->
               [ name; string_of_int (Gb_obs.Metrics.counter_value m name) ])
             counters)
  end

(* --- list --------------------------------------------------------------- *)

let list_cmd =
  let run () =
    Printf.printf "Workloads (Polybench, integer ports):\n";
    List.iter
      (fun (w : Gb_workloads.Polybench.t) ->
        Printf.printf "  %-12s %s\n" w.Gb_workloads.Polybench.name
          w.Gb_workloads.Polybench.description)
      Gb_workloads.Polybench.all;
    let p = Gb_workloads.Polybench.matmul_ptr in
    Printf.printf "  %-12s %s\n" p.Gb_workloads.Polybench.name
      p.Gb_workloads.Polybench.description;
    Printf.printf "\nAttack variants: v1 (trace speculation), v4 (MCB)\n";
    Printf.printf "Modes: %s\n"
      (String.concat ", "
         (List.map Gb_core.Mitigation.mode_name Gb_core.Mitigation.all_modes))
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads, attacks and modes")
    Term.(const run $ const ())

(* --- run ---------------------------------------------------------------- *)

let report_flag =
  Arg.(
    value & flag
    & info [ "report" ]
        ~doc:"Print the detailed execution report (tiers, IPC, cache, hottest regions).")

let run_json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")

let run_cmd =
  let run name mode report json width mcb hot unroll cache_kib cc_capacity
      no_chain verify workers trace_out metrics_out profile audit seed =
    match
      Result.bind (find_workload name) (fun w ->
          Result.map (fun () -> w) (check_outputs trace_out metrics_out))
    with
    | Error e -> Error e
    | Ok w ->
      let obs = sink_of_flags ~seed trace_out metrics_out profile audit in
      let proc =
        Gb_system.Processor.create
          ~config:
            (build_config ~workers mode width mcb hot unroll cache_kib
               cc_capacity no_chain verify)
          ~obs ~audit
          (Gb_kernelc.Compile.assemble w.Gb_workloads.Polybench.program)
      in
      let r = Gb_system.Processor.run proc in
      if json then
        print_endline
          (Gb_util.Json.to_string_pretty
             (Gb_system.Report.to_json (Gb_system.Report.of_processor proc r)))
      else if report then
        Format.printf "%s under %s@.%a" name
          (Gb_core.Mitigation.mode_name mode)
          (Gb_system.Report.pp ?max_regions:None)
          (Gb_system.Report.of_processor proc r)
      else begin
        Printf.printf "%s under %s\n" name (Gb_core.Mitigation.mode_name mode);
        print_result r
      end;
      print_audit r.Gb_system.Processor.audit;
      if verify then
        print_verify_log
          (Gb_dbt.Engine.verify_log (Gb_system.Processor.engine proc));
      emit_observability obs ~trace_out ~metrics_out ~profile;
      Ok ()
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a workload on the DBT processor")
    Term.(
      term_result
        (const run $ workload_arg $ mode_arg $ report_flag $ run_json_flag
        $ width_arg $ mcb_arg $ hot_arg $ unroll_arg $ cache_kib_arg
        $ cc_capacity_arg $ no_chain_flag $ verify_flag $ workers_arg
        $ trace_out_arg $ metrics_out_arg $ profile_flag $ audit_flag
        $ seed_arg))

(* --- attack ------------------------------------------------------------- *)

let variant_arg =
  Arg.(
    required
    & pos 0 (some (enum [ ("v1", `V1); ("v4", `V4) ])) None
    & info [] ~docv:"VARIANT" ~doc:"Spectre variant: v1 or v4.")

let attack_cmd =
  let run variant mode secret width mcb hot unroll cache_kib cc_capacity
      no_chain verify workers trace_out metrics_out profile audit seed =
    match check_outputs trace_out metrics_out with
    | Error e -> Error e
    | Ok () ->
      let program =
        match variant with
        | `V1 -> Gb_attack.Spectre_v1.program ~secret ()
        | `V4 -> Gb_attack.Spectre_v4.program ~secret ()
      in
      let config =
        build_config ~workers mode width mcb hot unroll cache_kib cc_capacity
          no_chain verify
      in
      let obs = sink_of_flags ~seed trace_out metrics_out profile audit in
      let o =
        Gb_attack.Runner.run ~config ~obs ~audit ~seed ~mode ~secret program
      in
      Printf.printf "%s\n" (Format.asprintf "%a" Gb_attack.Runner.pp_outcome o);
      print_result o.Gb_attack.Runner.result;
      print_audit o.Gb_attack.Runner.result.Gb_system.Processor.audit;
      if verify then print_verify_log o.Gb_attack.Runner.verify_log;
      emit_observability obs ~trace_out ~metrics_out ~profile;
      Ok ()
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Run a Spectre proof-of-concept attack")
    Term.(
      term_result
        (const run $ variant_arg $ mode_arg $ secret_arg $ width_arg $ mcb_arg
        $ hot_arg $ unroll_arg $ cache_kib_arg $ cc_capacity_arg
        $ no_chain_flag $ verify_flag $ workers_arg $ trace_out_arg
        $ metrics_out_arg $ profile_flag $ audit_flag $ seed_arg))

(* --- trace -------------------------------------------------------------- *)

let trace_dot_flag =
  Arg.(
    value & flag
    & info [ "dot" ]
        ~doc:
          "Instead of the VLIW schedules, emit a Graphviz rendering of each \
           hot trace's data-flow graph with the poisoning analysis overlaid \
           (poisoned nodes and detected Spectre patterns highlighted).")

let trace_cmd =
  let run name mode dot =
    match find_workload name with
    | Error e -> Error e
    | Ok w ->
      let program =
        Gb_kernelc.Compile.assemble w.Gb_workloads.Polybench.program
      in
      let proc =
        Gb_system.Processor.create
          ~config:(Gb_system.Processor.config_for mode)
          program
      in
      let _ = Gb_system.Processor.run proc in
      let engine = Gb_system.Processor.engine proc in
      if dot then begin
        (* Rebuild each hot trace at IR level from the recorded branch
           profile (the same inputs the engine translated from) and render
           the DFG the poisoning analysis saw, annotations included. *)
        let traces =
          List.filter
            (fun r -> r.Gb_dbt.Engine.r_tier = `Trace)
            (Gb_dbt.Engine.regions engine)
        in
        List.iter
          (fun r ->
            let entry = r.Gb_dbt.Engine.r_entry in
            let gtrace =
              Gb_dbt.Trace_builder.build
                (Gb_dbt.Engine.config engine).Gb_dbt.Engine.trace_cfg
                ~mem:(Gb_system.Processor.mem proc)
                ~profile:(Gb_dbt.Engine.branch_profile engine)
                ~entry
            in
            let g =
              Gb_ir.Build.build ~opt:Gb_ir.Opt_config.aggressive
                ~lat:Gb_ir.Latency.default gtrace
            in
            let { Gb_core.Poison.poisoned; patterns } =
              Gb_core.Poison.analyze g
            in
            Printf.printf "// trace at 0x%x (%d runs)\n" entry
              r.Gb_dbt.Engine.r_runs;
            print_string (Gb_ir.Dot.to_string ~poisoned ~patterns g))
          traces;
        Printf.printf "// %d hot trace(s)\n" (List.length traces)
      end
      else begin
        let found = ref 0 in
        (* dump every translated trace, hottest first is not tracked; dump
           in address order *)
        let rec scan pc limit =
          if pc < limit then begin
            (match Gb_dbt.Engine.lookup engine pc with
            | Some trace ->
              incr found;
              Format.printf "%a@." Gb_vliw.Vinsn.pp_trace trace
            | None -> ());
            scan (pc + 4) limit
          end
        in
        scan program.Gb_riscv.Asm.base
          (program.Gb_riscv.Asm.base + Bytes.length program.Gb_riscv.Asm.image);
        Printf.printf "%d translated trace(s)\n" !found
      end;
      Ok ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a workload and dump its translated VLIW traces (or, with \
          $(b,--dot), the poisoned data-flow graphs behind them)")
    Term.(term_result (const run $ workload_arg $ mode_arg $ trace_dot_flag))

(* --- explain ------------------------------------------------------------ *)

let dot_flag =
  Arg.(value & flag & info [ "dot" ] ~doc:"Emit a Graphviz rendering of the poisoned data-flow graph.")

let explain_cmd =
  let run variant dot =
    (* Build the attack's hot loop as the DBT engine would see it, and dump
       the poisoning analysis (the executable version of Figure 3). *)
    let secret = "S" in
    let program =
      match variant with
      | `V1 -> Gb_attack.Spectre_v1.program ~secret ()
      | `V4 -> Gb_attack.Spectre_v4.program ~secret ()
    in
    let asm = Gb_kernelc.Compile.assemble program in
    (* run under fine-grained so the engine records where patterns fire *)
    let proc =
      Gb_system.Processor.create
        ~config:(Gb_system.Processor.config_for Gb_core.Mitigation.Fine_grained)
        asm
    in
    let _ = Gb_system.Processor.run proc in
    let engine = Gb_system.Processor.engine proc in
    let shown = ref 0 in
    let rec scan pc limit =
      if pc < limit && !shown < 2 then begin
        (match Gb_dbt.Engine.lookup engine pc with
        | Some trace
          when trace.Gb_vliw.Vinsn.meta.Gb_vliw.Vinsn.spectre_patterns > 0 ->
          (* rebuild the same trace at IR level, with the aggressive
             optimizer, and show what the analysis sees before mitigation *)
          let gtrace =
            Gb_dbt.Trace_builder.build Gb_dbt.Trace_builder.default_config
              ~mem:(Gb_system.Processor.mem proc)
              ~profile:(Gb_dbt.Engine.branch_profile engine)
              ~entry:pc
          in
          let g =
            Gb_ir.Build.build ~opt:Gb_ir.Opt_config.aggressive
              ~lat:Gb_ir.Latency.default gtrace
          in
          (if dot then begin
             let { Gb_core.Poison.poisoned; patterns } =
               Gb_core.Poison.analyze g
             in
             print_string (Gb_ir.Dot.to_string ~poisoned ~patterns g)
           end
           else
             Format.printf "--- IR block at 0x%x ---@.%a@." pc
               Gb_core.Poison.pp_explain g);
          incr shown
        | Some _ | None -> ());
        scan (pc + 4) limit
      end
    in
    scan asm.Gb_riscv.Asm.base
      (asm.Gb_riscv.Asm.base + Bytes.length asm.Gb_riscv.Asm.image);
    if !shown = 0 then print_endline "no trace with a Spectre pattern found"
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Dump the poisoning analysis of an attack's hot traces (Figure 3, \
          executable)")
    Term.(const run $ variant_arg $ dot_flag)

(* --- disasm ------------------------------------------------------------- *)

let disasm_cmd =
  let run name =
    Result.map (fun program -> print_string (Gb_riscv.Disasm.dump program))
      (find_program name)
  in
  Cmd.v
    (Cmd.info "disasm"
       ~doc:"Disassemble a workload's or attack's guest binary")
    Term.(term_result (const run $ workload_arg))

(* --- scan --------------------------------------------------------------- *)

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")

let scan_window_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "window" ] ~docv:"N"
        ~doc:
          "Speculation window in guest instructions: how far past a gadget \
           root (branch or store) the scanner follows dataflow (default \
           64).")

let scan_cmd =
  let run name json window =
    Result.map
      (fun program ->
        let r = Gb_verify.Scanner.scan ?window program in
        if json then
          print_endline
            (Gb_util.Json.to_string_pretty
               (Gb_verify.Scanner.report_to_json r))
        else Format.printf "%a@." Gb_verify.Scanner.pp_report r)
      (find_program name)
  in
  Cmd.v
    (Cmd.info "scan"
       ~doc:
         "Statically scan a guest binary for Spectre gadget candidates \
          (Teapot-style lint): v1 branch/bounded-load/dependent-access \
          chains and v4 store/aliasing-load/dependent-access chains, found \
          by abstract dataflow over the decoded instructions — no \
          execution.")
    Term.(
      term_result (const run $ workload_arg $ json_flag $ scan_window_arg))

(* --- diff --------------------------------------------------------------- *)

let inject_conv =
  let parse s =
    match Gb_system.Inject.parse s with
    | Ok spec -> Ok spec
    | Error e -> Error (`Msg e)
  in
  let print ppf s = Format.fprintf ppf "%s" (Gb_system.Inject.spec_name s) in
  Arg.conv (parse, print)

let inject_arg =
  Arg.(
    value
    & opt (some inject_conv) None
    & info [ "inject" ] ~docv:"KIND[:RATE][,...]"
        ~doc:
          "Arm the fault-injection harness on the DBT side: evict \
           (mid-trace code-cache eviction), chain (corrupted chain \
           target, dispatcher fallback), mcb (spurious conflict, \
           rollback), translate (transient translation failure, \
           interpreter fallback), decode (decode-cache flush), \
           mcb-suppress (hide real conflicts — unsound by design, the \
           oracle must detect it). Rates default per kind.")

let diff_workload_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"WORKLOAD"
        ~doc:
          "v1, v4 or a Polybench kernel (see $(b,list)). Omit to run the \
           whole gate matrix.")

let matrix_modes_arg =
  Arg.(
    value
    & opt (some (list mode_conv)) None
    & info [ "modes" ] ~docv:"MODE,..."
        ~doc:
          "Restrict the gate matrix's attack cells to this comma-separated \
           mode list (e.g. $(b,--modes min-cut,fence)). Kernel cells and \
           the sensitivity control always run. Ignored with a WORKLOAD.")

let report_of_single name mode (r : Gb_diff.Oracle.report) =
  Gb_util.Json.Obj
    [
      ("workload", Gb_util.Json.String name);
      ("mode", Gb_util.Json.String (Gb_core.Mitigation.mode_name mode));
      ("clean", Gb_util.Json.Bool (Gb_diff.Oracle.clean r));
      ( "divergence",
        match r.Gb_diff.Oracle.divergence with
        | Some d ->
          Gb_util.Json.String
            (Format.asprintf "%a" Gb_diff.Oracle.pp_divergence d)
        | None -> Gb_util.Json.Null );
      ( "trap",
        match r.Gb_diff.Oracle.trap with
        | Some m -> Gb_util.Json.String m
        | None -> Gb_util.Json.Null );
      ("syncs", Gb_util.Json.Int r.Gb_diff.Oracle.syncs);
      ("injected", Gb_util.Json.Int r.Gb_diff.Oracle.injected);
      ("recovered", Gb_util.Json.Int r.Gb_diff.Oracle.recovered);
      ( "ref_insns",
        Gb_util.Json.Int (Int64.to_int r.Gb_diff.Oracle.ref_insns) );
    ]

let diff_cmd =
  let run workload mode modes inject seed workers json trace_out metrics_out
      profile =
    match check_outputs trace_out metrics_out with
    | Error e -> Error e
    | Ok () ->
    let obs = sink_of_flags ~seed trace_out metrics_out profile false in
    let finish result =
      emit_observability obs ~trace_out ~metrics_out ~profile;
      result
    in
    finish
    @@
    match workload with
    | None ->
      (* the full gate matrix: attacks x modes and all kernels, each under
         every inject variant, plus the sensitivity control *)
      let m = Gb_diff.Matrix.run ~obs ~seed ~workers ?modes () in
      if json then
        print_endline (Gb_util.Json.to_string_pretty (Gb_diff.Matrix.to_json m))
      else begin
        List.iter
          (fun row ->
            if not row.Gb_diff.Matrix.r_clean then
              Printf.printf "DIVERGED %-20s mode=%-15s inject=%-14s %s\n"
                row.Gb_diff.Matrix.r_workload row.Gb_diff.Matrix.r_mode
                row.Gb_diff.Matrix.r_inject
                (Option.value ~default:"(unrecovered faults)"
                   row.Gb_diff.Matrix.r_divergence))
          (List.filter
             (fun r -> r.Gb_diff.Matrix.r_inject <> "mcb-suppress:1")
             m.Gb_diff.Matrix.rows);
        Format.printf "%a@." Gb_diff.Matrix.pp_summary m
      end;
      if Gb_diff.Matrix.pass m then Ok ()
      else Error (`Msg "differential gate failed")
    | Some name ->
      let program =
        match name with
        | "v1" ->
          Ok
            (Gb_attack.Spectre_v1.program
               ~secret:Gb_experiments.Experiments.default_secret ())
        | "v4" ->
          Ok
            (Gb_attack.Spectre_v4.program
               ~secret:Gb_experiments.Experiments.default_secret ())
        | name ->
          Result.map
            (fun (w : Gb_workloads.Polybench.t) ->
              w.Gb_workloads.Polybench.program)
            (find_workload name)
      in
      Result.bind program (fun ast ->
          let config = Gb_system.Processor.config_for mode in
          let r = Gb_diff.Oracle.run_kernel ~config ~obs ?inject ~seed ast in
          if json then
            print_endline
              (Gb_util.Json.to_string_pretty (report_of_single name mode r))
          else begin
            Printf.printf "%s under %s%s\n" name
              (Gb_core.Mitigation.mode_name mode)
              (match inject with
              | Some s ->
                Printf.sprintf " (inject %s, seed %Ld)"
                  (Gb_system.Inject.spec_name s) seed
              | None -> "");
            Printf.printf "syncs            %d\n" r.Gb_diff.Oracle.syncs;
            Printf.printf "reference insns  %Ld\n" r.Gb_diff.Oracle.ref_insns;
            if r.Gb_diff.Oracle.injected > 0 then
              Printf.printf "faults           %d injected, %d recovered\n"
                r.Gb_diff.Oracle.injected r.Gb_diff.Oracle.recovered;
            (match r.Gb_diff.Oracle.trap with
            | Some m -> Printf.printf "DBT trap         %s\n" m
            | None -> ());
            match r.Gb_diff.Oracle.divergence with
            | Some d ->
              Format.printf "%a@." Gb_diff.Oracle.pp_divergence d
            | None -> Printf.printf "no divergence\n"
          end;
          if Gb_diff.Oracle.clean r then Ok ()
          else Error (`Msg "differential run not clean"))
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Differentially execute a workload (or the whole gate matrix): \
          reference interpreter vs. the full DBT processor, architectural \
          state compared at every trace exit and at program end, \
          optionally under deterministic fault injection. Exits non-zero \
          on any divergence or unrecovered fault.")
    Term.(
      term_result
        (const run $ diff_workload_arg $ mode_arg $ matrix_modes_arg
        $ inject_arg $ seed_arg $ workers_arg $ json_flag $ trace_out_arg
        $ metrics_out_arg $ profile_flag))

(* --- figure4 ------------------------------------------------------------ *)

let figure4_cmd =
  let run json =
    let data = Gb_experiments.Experiments.e2_figure4 () in
    if json then
      print_endline
        (Gb_util.Json.to_string_pretty
           (Gb_experiments.Experiments.figure4_json data))
    else begin
      let pct f = Printf.sprintf "%.1f%%" (100. *. f) in
      let rows =
        List.map
          (fun (mc : Gb_experiments.Experiments.mode_cycles) ->
            [
              mc.Gb_experiments.Experiments.w_name;
              pct
                (Gb_experiments.Experiments.slowdown mc
                   ~mode:Gb_core.Mitigation.Fine_grained);
              pct
                (Gb_experiments.Experiments.slowdown mc
                   ~mode:Gb_core.Mitigation.No_speculation);
            ])
          data
      in
      Gb_util.Table.print
        ~header:[ "application"; "our approach"; "no speculation" ]
        ~rows
    end
  in
  Cmd.v (Cmd.info "figure4" ~doc:"Regenerate the paper's Figure 4 series")
    Term.(const run $ json_flag)

(* --- profile ------------------------------------------------------------ *)

module At = Gb_obs.Attrib

let cycles_of_units u = float_of_int u /. float_of_int At.scale

let top_arg =
  Arg.(
    value & opt int 20
    & info [ "top" ] ~docv:"N"
        ~doc:
          "Ledger rows (tier x trace x pc x cause) to print, hottest first \
           (0 = all).")

let folded_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "folded-out" ] ~docv:"FILE"
        ~doc:
          "Write the ledger as folded stacks \
           (kernel;tier;trace;pc;cause count) to $(docv) — the input format \
           of flamegraph.pl and speedscope.")

(* One attributed run: a fresh ledger per run, so the conservation
   invariant (checked inside the processor, and again here) is against
   exactly this run's clock. *)
let profiled_run ~seed ~mode name =
  Result.map
    (fun asm ->
      let obs = Gb_obs.Sink.create ~attrib:true ~seed () in
      let r =
        Gb_system.Processor.run_program
          ~config:(Gb_system.Processor.config_for mode)
          ~obs asm
      in
      let a = Option.get (Gb_obs.Sink.attrib obs) in
      (r, a))
    (find_program name)

let conservation_status (r : Gb_system.Processor.result) a =
  match At.check a ~cycles:r.Gb_system.Processor.cycles with
  | Ok () -> "ok"
  | Error msg -> msg

let profile_json ~name ~mode (r : Gb_system.Processor.result) a =
  Gb_util.Json.Obj
    [
      ("workload", Gb_util.Json.String name);
      ("mode", Gb_util.Json.String (Gb_core.Mitigation.mode_name mode));
      ("cycles", Gb_util.Json.Int (Int64.to_int r.Gb_system.Processor.cycles));
      ("conservation", Gb_util.Json.String (conservation_status r a));
      ("attribution", At.to_json a);
    ]

let print_profile ~name ~mode (r : Gb_system.Processor.result) a ~top =
  Printf.printf "%s under %s: %Ld cycles (conservation %s)\n\n" name
    (Gb_core.Mitigation.mode_name mode)
    r.Gb_system.Processor.cycles (conservation_status r a);
  let shares = At.cause_shares a in
  Gb_util.Table.print
    ~header:[ "cause"; "cycles"; "share" ]
    ~rows:
      (List.map
         (fun (cause, units) ->
           [
             At.cause_name cause;
             Printf.sprintf "%.1f" (cycles_of_units units);
             Printf.sprintf "%5.1f%%"
               (100.
               *. Option.value ~default:0.
                    (List.assoc_opt (At.cause_name cause) shares));
           ])
         (At.by_cause a));
  let rows = At.rows a in
  let shown = if top <= 0 then rows else List.filteri (fun i _ -> i < top) rows in
  Printf.printf "\nHottest ledger rows (%d of %d):\n" (List.length shown)
    (List.length rows);
  Gb_util.Table.print
    ~header:[ "tier"; "trace"; "guest pc"; "cause"; "cycles" ]
    ~rows:
      (List.map
         (fun (row : At.row) ->
           [
             At.tier_name row.At.r_tier;
             Printf.sprintf "0x%x" row.At.r_trace;
             Printf.sprintf "0x%x" row.At.r_pc;
             At.cause_name row.At.r_cause;
             Printf.sprintf "%.1f" (cycles_of_units row.At.r_units);
           ])
         shown)

let profile_run_action name mode top json folded_out seed =
  Result.bind (profiled_run ~seed ~mode name) (fun (r, a) ->
      if json then
        print_endline
          (Gb_util.Json.to_string_pretty (profile_json ~name ~mode r a))
      else print_profile ~name ~mode r a ~top;
      Option.iter
        (fun path ->
          let buf = Buffer.create 4096 in
          At.folded a ~kernel:name ~top:0 buf;
          write_file path (Buffer.contents buf))
        folded_out;
      match At.check a ~cycles:r.Gb_system.Processor.cycles with
      | Ok () -> Ok ()
      | Error msg ->
        Error (`Msg ("cycle attribution conservation violated: " ^ msg)))

let diff_modes_arg =
  Arg.(
    value
    & opt_all mode_conv []
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:
          "The two modes to diff, given twice: the first is the slower \
           (mitigated) side, the second the baseline (e.g. $(b,--mode \
           fence --mode unsafe)).")

let profile_diff_action name m1 m2 json seed =
  Result.bind (profiled_run ~seed ~mode:m1 name) (fun (r1, a1) ->
          Result.bind (profiled_run ~seed ~mode:m2 name) (fun (r2, a2) ->
              let c1 = r1.Gb_system.Processor.cycles
              and c2 = r2.Gb_system.Processor.cycles in
              let delta_cycles = Int64.sub c1 c2 in
              let delta_units =
                Int64.mul delta_cycles (Int64.of_int At.scale)
              in
              let by1 = At.by_cause a1 and by2 = At.by_cause a2 in
              let delta c = List.assoc c by1 - List.assoc c by2 in
              (* the mitigation overhead buckets: stalls the fences cost
                 plus the issue slots serialization — generic or forced by
                 min-cut repairs — left empty *)
              let explained =
                delta At.Fence_stall + delta At.Nospec_serialization
                + delta At.Cut_protect
              in
              let explained_share =
                if Int64.compare delta_units 0L > 0 then
                  Some (float_of_int explained /. Int64.to_float delta_units)
                else None
              in
              if json then
                print_endline
                  (Gb_util.Json.to_string_pretty
                     (Gb_util.Json.Obj
                        [
                          ("workload", Gb_util.Json.String name);
                          ( "mode_a",
                            Gb_util.Json.String
                              (Gb_core.Mitigation.mode_name m1) );
                          ( "mode_b",
                            Gb_util.Json.String
                              (Gb_core.Mitigation.mode_name m2) );
                          ("cycles_a", Gb_util.Json.Int (Int64.to_int c1));
                          ("cycles_b", Gb_util.Json.Int (Int64.to_int c2));
                          ( "delta_cycles",
                            Gb_util.Json.Int (Int64.to_int delta_cycles) );
                          ( "conservation_a",
                            Gb_util.Json.String (conservation_status r1 a1) );
                          ( "conservation_b",
                            Gb_util.Json.String (conservation_status r2 a2) );
                          ( "delta_by_cause",
                            Gb_util.Json.Obj
                              (List.map
                                 (fun cause ->
                                   ( At.cause_name cause,
                                     Gb_util.Json.Float
                                       (cycles_of_units (delta cause)) ))
                                 At.all_causes) );
                          ( "explained_share",
                            match explained_share with
                            | Some s -> Gb_util.Json.Float s
                            | None -> Gb_util.Json.Null );
                        ]))
              else begin
                Printf.printf "%s: %s %Ld cycles vs %s %Ld cycles (%+Ld)\n\n"
                  name
                  (Gb_core.Mitigation.mode_name m1)
                  c1
                  (Gb_core.Mitigation.mode_name m2)
                  c2 delta_cycles;
                Gb_util.Table.print
                  ~header:
                    [
                      "cause";
                      Gb_core.Mitigation.mode_name m1;
                      Gb_core.Mitigation.mode_name m2;
                      "delta";
                      "of delta";
                    ]
                  ~rows:
                    (List.map
                       (fun cause ->
                         let d = delta cause in
                         [
                           At.cause_name cause;
                           Printf.sprintf "%.1f"
                             (cycles_of_units (List.assoc cause by1));
                           Printf.sprintf "%.1f"
                             (cycles_of_units (List.assoc cause by2));
                           Printf.sprintf "%+.1f" (cycles_of_units d);
                           (if Int64.compare delta_units 0L > 0 then
                              Printf.sprintf "%5.1f%%"
                                (100. *. float_of_int d
                                /. Int64.to_float delta_units)
                            else "-");
                         ])
                       At.all_causes);
                match explained_share with
                | Some s ->
                  Printf.printf
                    "\n%.1f%% of the slowdown delta is fence-stall + \
                     nospec-serialization + cut-protect\n"
                    (100. *. s)
                | None -> ()
              end;
              Ok ()))

(* [profile WORKLOAD] profiles one run; [profile diff WORKLOAD --mode A
   --mode B] (or two --mode flags on a plain invocation) diffs two. The
   "diff" verb is a positional, not a cmdliner subcommand, so the plain
   form keeps its positional workload. *)
let profile_pos0_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"WORKLOAD"
        ~doc:
          "Workload or attack name (see $(b,list)), or the verb $(b,diff) \
           followed by the name.")

let profile_pos1_arg =
  Arg.(
    value
    & pos 1 (some string) None
    & info [] ~docv:"WORKLOAD" ~doc:"Workload name, after the $(b,diff) verb.")

let profile_cmd =
  let run arg0 arg1 modes top json folded_out seed =
    let diff name =
      match modes with
      | [ m1; m2 ] -> profile_diff_action name m1 m2 json seed
      | _ ->
        Error
          (`Msg
            "profile diff needs exactly two --mode flags (slower mode \
             first, e.g. --mode fence --mode unsafe)")
    in
    match (arg0, arg1) with
    | "diff", Some name -> diff name
    | "diff", None ->
      Error (`Msg "usage: profile diff WORKLOAD --mode A --mode B")
    | _, Some extra ->
      Error (`Msg (Printf.sprintf "unexpected argument %S" extra))
    | name, None -> (
      match modes with
      | [] ->
        profile_run_action name Gb_core.Mitigation.Unsafe top json folded_out
          seed
      | [ mode ] -> profile_run_action name mode top json folded_out seed
      | _ -> diff name)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Cycle-attribution profiler: explain where every simulated cycle \
          of a run went (committed work, fence stalls, serialization, \
          rollbacks, dispatcher exits, translation, interpreter, cache \
          misses), keyed by tier, trace and guest pc. With $(b,diff) (or \
          two $(b,--mode) flags), attribute the cycle delta between two \
          modes cause by cause. See docs/OBSERVABILITY.md \"Cycle \
          attribution\".")
    Term.(
      term_result
        (const run $ profile_pos0_arg $ profile_pos1_arg $ diff_modes_arg
       $ top_arg $ json_flag $ folded_out_arg $ seed_arg))

(* --- perf --------------------------------------------------------------- *)

let manifest_of_path path =
  Result.map_error (fun e -> `Msg e) (Gb_perf.Manifest.read path)

(* --against accepts a trajectory directory (baseline selected by seq or
   --baseline-rev) or a single manifest file *)
let load_baseline ~against ~rev =
  if Sys.file_exists against && Sys.is_directory against then
    match Gb_perf.Baseline.load_dir against with
    | Error e -> Error (`Msg e)
    | Ok manifests -> (
      match Gb_perf.Baseline.select ?rev manifests with
      | Some m -> Ok m
      | None ->
        Error
          (`Msg
            (Printf.sprintf "no baseline%s in %s"
               (match rev with
               | Some r -> Printf.sprintf " with rev %s" r
               | None -> "")
               against)))
  else manifest_of_path against

let perf_out_arg =
  Arg.(
    value
    & opt string "GB_manifest.json"
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Where to write the recorded manifest.")

let quick_flag =
  Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:
          "Record only the cycle, slowdown and chaining cells (skip E9, \
           E10 and the capacity-constrained E1 re-check). A quick manifest \
           compares against a full baseline with the skipped cells \
           reported as removed coverage.")

let seq_arg =
  Arg.(
    value & opt int 0
    & info [ "seq" ] ~docv:"N"
        ~doc:
          "Trajectory sequence number to stamp into the manifest (use \
           $(b,perf compare --against DIR) first; the next free number is \
           one past the highest committed one). 0 = unplaced.")

let against_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "against" ] ~docv:"PATH"
        ~doc:
          "Baseline: a trajectory directory (e.g. $(b,bench/trajectory)) \
           or a single manifest file.")

let manifest_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "manifest" ] ~docv:"FILE"
        ~doc:
          "Manifest to compare (e.g. the bench's BENCH_manifest.json). \
           When omitted, a fresh full manifest is recorded first (~10s).")

let baseline_rev_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline-rev" ] ~docv:"REV"
        ~doc:
          "Pin the baseline to the trajectory manifest recorded at this \
           git rev (prefix match) instead of the latest sequence number.")

let tol_cycles_arg =
  Arg.(
    value
    & opt float Gb_perf.Baseline.default_tol_cycles
    & info [ "tol-cycles" ] ~docv:"FRAC"
        ~doc:
          "Relative tolerance for cycle, slowdown and dispatcher-exit \
           cells (default 0.01 = 1%). Audit false-negative cells and \
           verdicts always compare exact.")

let strict_flag =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Also fail when the current manifest lost metric coverage \
           (cells present in the baseline but missing now) — a skipped \
           experiment cannot hide a regression. The CI perf gate runs \
           with this.")

let report_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report-out" ] ~docv:"FILE"
        ~doc:"Also write the comparison as JSON to $(docv) (CI artifact).")

let record_manifest ~seed ~full ~seq =
  Printf.eprintf "perf: recording %s manifest (seed %Ld)...\n%!"
    (if full then "full" else "quick")
    seed;
  let m = Gb_perf.Collect.collect ~seed ~full () in
  if seq = 0 then m else { m with Gb_perf.Manifest.seq = seq }

let perf_record_cmd =
  let run out quick seq seed =
    let m = record_manifest ~seed ~full:(not quick) ~seq in
    Gb_perf.Manifest.write out m;
    Printf.printf "recorded %s: %d metrics, %d verdicts, rev %s, seed %Ld\n"
      out
      (List.length m.Gb_perf.Manifest.metrics)
      (List.length m.Gb_perf.Manifest.verdicts)
      m.Gb_perf.Manifest.rev m.Gb_perf.Manifest.seed
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Run the bench experiments and write a schema-versioned run \
          manifest (per-kernel cycles, slowdowns, dispatcher-exit rates, \
          counter snapshots and gate verdicts).")
    Term.(const run $ perf_out_arg $ quick_flag $ seq_arg $ seed_arg)

let perf_compare_cmd =
  let run against manifest rev tol_cycles strict json report_out seed =
    Result.bind (load_baseline ~against ~rev) (fun baseline ->
        let current =
          match manifest with
          | Some path -> manifest_of_path path
          | None -> Ok (record_manifest ~seed ~full:true ~seq:0)
        in
        Result.bind current (fun current ->
            let cmp =
              Gb_perf.Baseline.compare ~tol_cycles ~strict ~baseline current
            in
            if json then
              print_endline
                (Gb_util.Json.to_string_pretty (Gb_perf.Report.to_json cmp))
            else print_string (Gb_perf.Report.to_ascii cmp);
            Option.iter
              (fun path ->
                write_file path
                  (Gb_util.Json.to_string_pretty (Gb_perf.Report.to_json cmp)))
              report_out;
            if cmp.Gb_perf.Baseline.passed then Ok ()
            else
              Error
                (`Msg
                  (Printf.sprintf "perf gate failed: %d regressed cell(s)%s"
                     cmp.Gb_perf.Baseline.regressed
                     (if strict && cmp.Gb_perf.Baseline.removed > 0 then
                        Printf.sprintf ", %d removed cell(s)"
                          cmp.Gb_perf.Baseline.removed
                      else "")))))
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Compare a run manifest against the committed perf trajectory and \
          exit non-zero on any regression verdict (cycles beyond \
          tolerance, audit false negatives, flipped gate verdicts).")
    Term.(
      term_result
        (const run $ against_arg $ manifest_arg $ baseline_rev_arg
        $ tol_cycles_arg $ strict_flag $ json_flag $ report_out_arg
        $ seed_arg))

let perf_report_cmd =
  let run against manifest rev tol_cycles json seed =
    let current =
      match manifest with
      | Some path -> manifest_of_path path
      | None -> Ok (record_manifest ~seed ~full:true ~seq:0)
    in
    Result.bind current (fun current ->
        match against with
        | None ->
          (* no baseline: summarise the manifest itself *)
          if json then
            print_endline
              (Gb_util.Json.to_string_pretty
                 (Gb_perf.Manifest.to_json current))
          else begin
            Printf.printf
              "manifest seq %d, rev %s, seed %Ld, schema v%d\n\
               %d metrics, %d verdicts\n"
              current.Gb_perf.Manifest.seq current.Gb_perf.Manifest.rev
              current.Gb_perf.Manifest.seed
              current.Gb_perf.Manifest.schema_version
              (List.length current.Gb_perf.Manifest.metrics)
              (List.length current.Gb_perf.Manifest.verdicts);
            let failed =
              List.filter
                (fun (_, ok) -> not ok)
                current.Gb_perf.Manifest.verdicts
            in
            if failed <> [] then begin
              Printf.printf "failed verdicts:\n";
              List.iter (fun (name, _) -> Printf.printf "  %s\n" name) failed
            end
          end;
          Ok ()
        | Some against ->
          Result.map
            (fun baseline ->
              let cmp =
                Gb_perf.Baseline.compare ~tol_cycles ~baseline current
              in
              if json then
                print_endline
                  (Gb_util.Json.to_string_pretty (Gb_perf.Report.to_json cmp))
              else
                print_string
                  (Gb_perf.Report.to_markdown ~max_unchanged:max_int cmp))
            (load_baseline ~against ~rev))
  in
  let against_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "against" ] ~docv:"PATH"
          ~doc:
            "Baseline trajectory directory or manifest file; when given, \
             render the full comparison (markdown) instead of the \
             manifest summary.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render a manifest (or its comparison against a baseline, with \
          $(b,--against)) without gating: always exits 0.")
    Term.(
      term_result
        (const run $ against_opt $ manifest_arg $ baseline_rev_arg
        $ tol_cycles_arg $ json_flag $ seed_arg))

let perf_cmd =
  Cmd.group
    (Cmd.info "perf"
       ~doc:
         "Performance trajectory: record schema-versioned run manifests, \
          compare them against the committed baseline \
          (bench/trajectory/BENCH_*.json) and render regression reports. \
          See docs/OBSERVABILITY.md \"Performance trajectory\".")
    [ perf_record_cmd; perf_compare_cmd; perf_report_cmd ]

let () =
  let doc =
    "GhostBusters: Spectre attacks and their mitigation on a DBT-based \
     processor (DATE 2020 reproduction)"
  in
  let info = Cmd.info "ghostbusters" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; attack_cmd; trace_cmd; explain_cmd; disasm_cmd;
            scan_cmd; diff_cmd; figure4_cmd; profile_cmd; perf_cmd ]))
