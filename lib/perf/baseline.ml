type direction = Lower_better of float | Band of float | Exact | Info

let default_tol_cycles = 0.01

let default_band_share = 0.02

let default_tol_alloc = 0.05

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let rule_for ?(tol_cycles = default_tol_cycles) name =
  if
    has_prefix ~prefix:"cycles." name
    || has_prefix ~prefix:"slowdown." name
    || has_prefix ~prefix:"exits_per_1k." name
  then Lower_better tol_cycles
  else if has_prefix ~prefix:"audit_fn." name then Lower_better 0.
  else if has_prefix ~prefix:"cause_share." name then Band default_band_share
  else if has_prefix ~prefix:"alloc." name then Lower_better default_tol_alloc
  else Info

type status = Improved | Unchanged | Regressed | Added | Removed

let status_name = function
  | Improved -> "improved"
  | Unchanged -> "unchanged"
  | Regressed -> "REGRESSED"
  | Added -> "added"
  | Removed -> "removed"

type cell = {
  c_name : string;
  c_kind : [ `Metric | `Verdict ];
  c_rule : direction;
  c_base : float option;
  c_cur : float option;
  c_delta : float;
  c_status : status;
}

type comparison = {
  base_rev : string;
  base_seq : int;
  cur_rev : string;
  cells : cell list;
  regressed : int;
  improved : int;
  unchanged : int;
  added : int;
  removed : int;
  strict : bool;
  passed : bool;
}

(* relative delta with the zero-baseline edge pinned down: 0 -> 0 is
   unchanged, 0 -> x>0 is an infinite relative increase *)
let rel_delta ~base ~cur =
  if base = 0. then if cur = 0. then 0. else Float.infinity
  else (cur -. base) /. base

let judge rule ~base ~cur =
  let delta = rel_delta ~base ~cur in
  match rule with
  | Info -> (delta, Unchanged)
  | Exact -> (delta, if cur = base then Unchanged else Regressed)
  | Band tol ->
    (* two-sided absolute band: cause shares live in [0,1], so an
       absolute drift bound is the meaningful one — a cause share moving
       by more than [tol] either way means the attribution profile
       changed and must be looked at *)
    (delta, if Float.abs (cur -. base) <= tol then Unchanged else Regressed)
  | Lower_better tol ->
    ( delta,
      if base = cur then Unchanged
      else if cur > base then if delta > tol then Regressed else Unchanged
      else if -.delta > tol then Improved
      else Unchanged )

let union_names base cur =
  List.sort_uniq String.compare (List.map fst base @ List.map fst cur)

let compare ?tol_cycles ?(strict = false) ~baseline current =
  let metric_cell name =
    let base = Manifest.metric baseline name in
    let cur = Manifest.metric current name in
    let rule = rule_for ?tol_cycles name in
    let delta, status =
      match (base, cur) with
      | Some b, Some c -> judge rule ~base:b ~cur:c
      | None, Some _ -> (0., Added)
      | Some _, None -> (0., Removed)
      | None, None -> assert false
    in
    {
      c_name = name;
      c_kind = `Metric;
      c_rule = rule;
      c_base = base;
      c_cur = cur;
      c_delta = delta;
      c_status = status;
    }
  in
  let verdict_cell name =
    let of_bool b = if b then 1. else 0. in
    let base = Option.map of_bool (Manifest.verdict baseline name) in
    let cur = Option.map of_bool (Manifest.verdict current name) in
    let delta, status =
      match (base, cur) with
      | Some b, Some c -> judge Exact ~base:b ~cur:c
      | None, Some _ -> (0., Added)
      | Some _, None -> (0., Removed)
      | None, None -> assert false
    in
    {
      c_name = name;
      c_kind = `Verdict;
      c_rule = Exact;
      c_base = base;
      c_cur = cur;
      c_delta = delta;
      c_status = status;
    }
  in
  let cells =
    List.map metric_cell
      (union_names baseline.Manifest.metrics current.Manifest.metrics)
    @ List.map verdict_cell
        (union_names baseline.Manifest.verdicts current.Manifest.verdicts)
  in
  let count s = List.length (List.filter (fun c -> c.c_status = s) cells) in
  let regressed = count Regressed in
  let removed = count Removed in
  {
    base_rev = baseline.Manifest.rev;
    base_seq = baseline.Manifest.seq;
    cur_rev = current.Manifest.rev;
    cells;
    regressed;
    improved = count Improved;
    unchanged = count Unchanged;
    added = count Added;
    removed;
    strict;
    passed = regressed = 0 && ((not strict) || removed = 0);
  }

let regressions cmp =
  List.filter (fun c -> c.c_status = Regressed) cmp.cells

let load_dir dir =
  match Sys.readdir dir with
  | exception Sys_error e -> Error e
  | names ->
    let manifest_files =
      Array.to_list names
      |> List.filter (fun n -> Manifest.seq_of_filename n <> None)
      |> List.sort String.compare
    in
    if manifest_files = [] then
      Error (Printf.sprintf "no BENCH_*.json manifests in %s" dir)
    else
      List.fold_left
        (fun acc name ->
          Result.bind acc (fun ms ->
              match Manifest.read (Filename.concat dir name) with
              | Ok m ->
                (* trust the in-file seq; fall back to the filename's *)
                let m =
                  if m.Manifest.seq <> 0 then m
                  else
                    {
                      m with
                      Manifest.seq =
                        Option.value ~default:0
                          (Manifest.seq_of_filename name);
                    }
                in
                Ok (m :: ms)
              | Error e -> Error e))
        (Ok []) manifest_files
      |> Result.map (fun ms ->
             List.sort
               (fun a b -> Stdlib.compare a.Manifest.seq b.Manifest.seq)
               ms)

let select ?rev manifests =
  match rev with
  | None ->
    List.fold_left
      (fun best m ->
        match best with
        | Some b when b.Manifest.seq >= m.Manifest.seq -> best
        | _ -> Some m)
      None manifests
  | Some rev ->
    let matches m =
      has_prefix ~prefix:rev m.Manifest.rev
      || has_prefix ~prefix:m.Manifest.rev rev
    in
    List.find_opt matches manifests

let next_seq manifests =
  1 + List.fold_left (fun acc m -> max acc m.Manifest.seq) 0 manifests
