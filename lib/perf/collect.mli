(** Manifest collection: flatten experiment results into {!Manifest}
    metric/verdict cells, either from data another harness already
    computed ({!of_data} — the bench reuses its E1–E10 results) or by
    running the experiments here ({!collect} — the
    [ghostbusters perf record] path). Both produce identical cells for
    the same seed, because the simulator is deterministic: a manifest
    recorded on an unchanged tree compares clean against the committed
    trajectory. *)

val config_snapshot : unit -> (string * Gb_util.Json.t) list
(** The default configuration knobs a run is implicitly parameterised by
    (code-cache capacity, chaining, hot threshold, issue width, modes). *)

val counters_snapshot : ?seed:int64 -> unit -> (string * int) list
(** [Gb_obs] counters of the canonical instrumented run: the first
    Polybench kernel under fine-grained mitigation with an active sink —
    the same run the bench prints as its metrics snapshot. *)

val of_data :
  ?seq:int ->
  ?rev:string ->
  ?seed:int64 ->
  ?counters:(string * int) list ->
  ?verdicts_unchanged:bool ->
  ?e9:Gb_experiments.Experiments.e9 ->
  ?e10:Gb_diff.Matrix.t ->
  poc:Gb_experiments.Experiments.poc_row list ->
  figure4:Gb_experiments.Experiments.mode_cycles list ->
  e4:Gb_experiments.Experiments.mode_cycles ->
  chaining:Gb_experiments.Experiments.chain_row list ->
  unit ->
  Manifest.t
(** Build a manifest from precomputed experiment results:

    - [poc] (E1) — [cycles.e1.*] per variant and mode, [audit_fn.e1.*]
      for audited rows, [e1.<variant>.<mode>.leaked] verdicts;
    - [figure4] (E2) — [cycles.e2.*] and [slowdown.e2.*] per kernel and
      mode, geomean slowdowns, [audit_fn.e2.*], and for attributed rows
      the [cause_share.e2.*] cycle-attribution profile;
    - [e4] — same cells under the [e4] prefix;
    - [chaining] (E8) — [exits_per_1k.e8.<kernel>.{chain,nochain}] and
      the cycle/architecture-identity verdicts;
    - [verdicts_unchanged] — E8's churn re-check of the E1 verdicts;
    - [e9]/[e10] — the static-verification and differential-gate
      verdicts, plus fault accounting as informational cells;
    - [counters] — [counter.*] informational cells;
    - [alloc.minor_words_per_kinsn.{interp,pipeline.*}] — minor-heap
      words per 1000 guest instructions of the execution tiers on the
      first Polybench kernel, translation excluded (measured here, not
      passed in: the runs are deterministic and take milliseconds). *)

val poc_verdicts_equal :
  Gb_experiments.Experiments.poc_row list ->
  Gb_experiments.Experiments.poc_row list ->
  bool
(** The E8 churn check: same leak verdicts and audit false-negative
    counts, row for row. *)

val collect : ?seed:int64 -> ?full:bool -> unit -> Manifest.t
(** Run the experiments and build the manifest. [full] (default [true])
    additionally runs E9, E10 and the capacity-constrained E1 re-check —
    everything the bench's own manifest contains (~10 s); [false] stops
    at the cycle/chaining cells (~half). *)
