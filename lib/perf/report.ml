open Baseline

let summary_line cmp =
  Printf.sprintf
    "perf %s vs BENCH_%04d (%s): %d regressed, %d improved, %d unchanged, %d \
     added, %d removed%s"
    (if cmp.passed then "OK" else "REGRESSED")
    cmp.base_seq cmp.base_rev cmp.regressed cmp.improved cmp.unchanged
    cmp.added cmp.removed
    (if cmp.strict then " [strict]" else "")

let fmt_value = function
  | None -> "-"
  | Some v ->
    if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%.4f" v

let fmt_delta c =
  match (c.c_base, c.c_cur) with
  | Some _, Some _ ->
    if Float.is_integer c.c_delta && c.c_delta = 0. then "0%"
    else if c.c_delta = Float.infinity then "+inf"
    else Printf.sprintf "%+.2f%%" (100. *. c.c_delta)
  | _ -> "-"

let rule_name = function
  | Lower_better 0. -> "lower/exact"
  | Lower_better tol -> Printf.sprintf "lower/%.1f%%" (100. *. tol)
  | Band tol -> Printf.sprintf "band/%.1fpp" (100. *. tol)
  | Exact -> "exact"
  | Info -> "info"

(* regressions first, then the rest; unchanged cells capped *)
let visible_cells ~max_unchanged cmp =
  let pick status = List.filter (fun c -> c.c_status = status) cmp.cells in
  let unchanged =
    List.filteri (fun i _ -> i < max_unchanged) (pick Unchanged)
  in
  pick Regressed @ pick Removed @ pick Improved @ pick Added @ unchanged

let header = [ "cell"; "baseline"; "current"; "delta"; "rule"; "status" ]

let rows ~max_unchanged cmp =
  List.map
    (fun c ->
      [
        c.c_name;
        fmt_value c.c_base;
        fmt_value c.c_cur;
        fmt_delta c;
        rule_name c.c_rule;
        status_name c.c_status;
      ])
    (visible_cells ~max_unchanged cmp)

let to_ascii ?(max_unchanged = 0) cmp =
  let table =
    match rows ~max_unchanged cmp with
    | [] -> ""
    | rows -> Gb_util.Table.render ~header ~rows
  in
  table ^ "\n" ^ summary_line cmp ^ "\n"

let to_markdown ?(max_unchanged = 0) cmp =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "### Perf comparison: %s vs baseline BENCH_%04d (%s)\n\n"
       cmp.cur_rev cmp.base_seq cmp.base_rev);
  (match rows ~max_unchanged cmp with
  | [] -> Buffer.add_string buf "No cells to show.\n"
  | rws ->
    let line cells = "| " ^ String.concat " | " cells ^ " |\n" in
    Buffer.add_string buf (line header);
    Buffer.add_string buf
      (line (List.map (fun _ -> "---") header));
    List.iter (fun r -> Buffer.add_string buf (line r)) rws);
  Buffer.add_string buf ("\n" ^ summary_line cmp ^ "\n");
  Buffer.contents buf

let to_json cmp =
  let module J = Gb_util.Json in
  let opt_float = function None -> J.Null | Some v -> J.Float v in
  J.Obj
    [
      ("baseline_rev", J.String cmp.base_rev);
      ("baseline_seq", J.Int cmp.base_seq);
      ("current_rev", J.String cmp.cur_rev);
      ("regressed", J.Int cmp.regressed);
      ("improved", J.Int cmp.improved);
      ("unchanged", J.Int cmp.unchanged);
      ("added", J.Int cmp.added);
      ("removed", J.Int cmp.removed);
      ("strict", J.Bool cmp.strict);
      ("passed", J.Bool cmp.passed);
      ( "cells",
        J.List
          (List.map
             (fun c ->
               J.Obj
                 [
                   ("name", J.String c.c_name);
                   ( "kind",
                     J.String
                       (match c.c_kind with
                       | `Metric -> "metric"
                       | `Verdict -> "verdict") );
                   ("rule", J.String (rule_name c.c_rule));
                   ("baseline", opt_float c.c_base);
                   ("current", opt_float c.c_cur);
                   ( "delta_rel",
                     if c.c_delta = Float.infinity then J.String "inf"
                     else J.Float c.c_delta );
                   ("status", J.String (status_name c.c_status));
                 ])
             cmp.cells) );
    ]
