(** Rendering of a {!Baseline.comparison}: a markdown/ASCII table for
    humans (improved / unchanged / regressed, with deltas) and a JSON
    document for the CI gate. *)

val summary_line : Baseline.comparison -> string
(** One line: pass/fail, baseline identity and the per-status counts —
    the only thing a [--json-out] bench run prints on stdout. *)

val to_ascii : ?max_unchanged:int -> Baseline.comparison -> string
(** The comparison as a {!Gb_util.Table}: every regressed, improved,
    added and removed cell, at most [max_unchanged] (default 0) unchanged
    ones, then the summary line. *)

val to_markdown : ?max_unchanged:int -> Baseline.comparison -> string
(** Same content as {!to_ascii} in a GitHub-flavoured markdown table
    (what the CI job puts in its step summary). *)

val to_json : Baseline.comparison -> Gb_util.Json.t
(** The full cell list plus the status counts and the [passed] bit —
    machine-checkable by the CI perf gate. *)
