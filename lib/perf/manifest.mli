(** Schema-versioned run manifests: one JSON document per bench run.

    A manifest is the durable record a run leaves in the perf trajectory
    ([bench/trajectory/BENCH_<seq>.json]): where it ran (git rev, host and
    OCaml environment), how it was configured (mitigation modes, code-cache
    capacity, chaining, seed), what it measured (a flat, sorted
    [name -> float] metric map: per-experiment per-kernel simulated cycles
    and slowdowns, dispatcher-exit rates, [Gb_obs] counter snapshots) and
    what it concluded (a [name -> bool] verdict map: leakage-audit,
    static-verification and differential-oracle gates).

    The metric names follow a dotted convention the {!Baseline} comparison
    rules dispatch on:

    - [cycles.<exp>.<kernel>.<mode>] — simulated cycles (lower is better,
      relative tolerance);
    - [slowdown.<exp>.<kernel>.<mode>] — cycles(mode)/cycles(unsafe)
      (lower is better, relative tolerance);
    - [exits_per_1k.e8.<kernel>.<chain|nochain>] — dispatcher exits per 1k
      guest instructions (lower is better, relative tolerance; this is the
      cell that guards the trace-chaining wins);
    - [audit_fn.<exp>.<kernel>.<mode>] — leakage-audit false negatives
      (lower is better, zero tolerance);
    - [cause_share.<exp>.<kernel>.<mode>.<cause>] — the
      {!Gb_obs.Attrib} cycle-attribution profile: each cause's share of
      the run's total cycles (two-sided absolute band: drift either way
      beyond the band is a regression);
    - [counter.<name>] — raw [Gb_obs] counters of the canonical
      instrumented run (informational: reported, never gated);
    - [faults.<...>] — fault-injection accounting (informational).

    Verdict cells compare exact: any flip against the baseline is a
    regression (refresh the baseline when a flip is intentional). *)

type t = {
  schema_version : int;
  seq : int;  (** position in the trajectory; 0 = not (yet) committed *)
  rev : string;  (** git revision the run was built from, or ["unknown"] *)
  seed : int64;  (** the bench seed the run used *)
  env : (string * string) list;  (** host/OCaml environment, sorted *)
  config : (string * Gb_util.Json.t) list;  (** configuration knobs, sorted *)
  metrics : (string * float) list;  (** sorted by name, unique *)
  verdicts : (string * bool) list;  (** sorted by name, unique *)
}

val current_version : int
(** The schema version this code writes and the only one it reads. *)

val make :
  ?seq:int ->
  ?rev:string ->
  ?seed:int64 ->
  ?env:(string * string) list ->
  ?config:(string * Gb_util.Json.t) list ->
  ?verdicts:(string * bool) list ->
  (string * float) list ->
  t
(** Build a manifest from metric cells. [rev] defaults to {!detect_rev};
    [env] to {!default_env}; [seq] to 0; [seed] to 1. Metric and verdict
    lists are sorted and deduplicated (last binding wins). *)

val default_env : unit -> (string * string) list
(** OCaml version, word size and OS type of the running binary. *)

val detect_rev : unit -> string
(** [git rev-parse --short HEAD] of the current directory, or ["unknown"]
    when git is unavailable. *)

val metric : t -> string -> float option

val verdict : t -> string -> bool option

val to_json : t -> Gb_util.Json.t

val of_json : Gb_util.Json.t -> (t, string) result
(** Validates the schema: a missing or non-matching [schema_version] (both
    older and unknown newer versions), or a malformed section, is an
    [Error] naming the offending field. *)

val to_string : t -> string
(** Pretty-printed JSON. *)

val of_string : string -> (t, string) result

val write : string -> t -> unit
(** Write to a file (pretty JSON, trailing newline). *)

val read : string -> (t, string) result
(** Read and validate a manifest file; I/O errors are [Error]s too. *)

val filename : seq:int -> string
(** [BENCH_<seq, zero-padded to 4>.json] — the trajectory naming scheme. *)

val seq_of_filename : string -> int option
(** Inverse of {!filename} on a basename; [None] when the name does not
    match [BENCH_*.json]. *)
