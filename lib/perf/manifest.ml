type t = {
  schema_version : int;
  seq : int;
  rev : string;
  seed : int64;
  env : (string * string) list;
  config : (string * Gb_util.Json.t) list;
  metrics : (string * float) list;
  verdicts : (string * bool) list;
}

let current_version = 1

let sort_dedup l =
  (* stable sort + keep the last binding of a duplicated name *)
  let sorted = List.stable_sort (fun (a, _) (b, _) -> String.compare a b) l in
  let rec keep_last = function
    | (a, _) :: ((b, _) :: _ as rest) when a = b -> keep_last rest
    | x :: rest -> x :: keep_last rest
    | [] -> []
  in
  keep_last sorted

let default_env () =
  [
    ("ocaml_version", Sys.ocaml_version);
    ("os_type", Sys.os_type);
    ("word_size", string_of_int Sys.word_size);
  ]

let detect_rev () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic ->
    let line = try input_line ic with End_of_file -> "" in
    let status = Unix.close_process_in ic in
    let line = String.trim line in
    if status = Unix.WEXITED 0 && line <> "" then line else "unknown"

let make ?(seq = 0) ?rev ?(seed = 1L) ?env ?(config = []) ?(verdicts = [])
    metrics =
  {
    schema_version = current_version;
    seq;
    rev = (match rev with Some r -> r | None -> detect_rev ());
    seed;
    env = (match env with Some e -> sort_dedup e | None -> default_env ());
    config = sort_dedup config;
    metrics = sort_dedup metrics;
    verdicts = sort_dedup verdicts;
  }

let metric t name = List.assoc_opt name t.metrics

let verdict t name = List.assoc_opt name t.verdicts

let to_json t =
  let module J = Gb_util.Json in
  J.Obj
    [
      ("schema_version", J.Int t.schema_version);
      ("seq", J.Int t.seq);
      ("rev", J.String t.rev);
      ("seed", J.Int (Int64.to_int t.seed));
      ("env", J.Obj (List.map (fun (k, v) -> (k, J.String v)) t.env));
      ("config", J.Obj t.config);
      ("metrics", J.Obj (List.map (fun (k, v) -> (k, J.Float v)) t.metrics));
      ("verdicts", J.Obj (List.map (fun (k, v) -> (k, J.Bool v)) t.verdicts));
    ]

let field name conv j =
  match Option.bind (Gb_util.Json.get name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "manifest: missing or malformed %S" name)

let ( let* ) = Result.bind

let of_json j =
  let module J = Gb_util.Json in
  let* version = field "schema_version" J.get_int j in
  if version <> current_version then
    Error
      (Printf.sprintf
         "manifest: unsupported schema version %d (this reader understands \
          only version %d)"
         version current_version)
  else
    let* seq = field "seq" J.get_int j in
    let* rev = field "rev" J.get_str j in
    let* seed = field "seed" J.get_int j in
    let section name conv =
      let* fields = field name J.get_obj j in
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match conv v with
          | Some v -> Ok ((k, v) :: acc)
          | None ->
            Error (Printf.sprintf "manifest: malformed %s entry %S" name k))
        (Ok []) fields
      |> Result.map List.rev
    in
    let* env = section "env" J.get_str in
    let* config = field "config" J.get_obj j in
    let* metrics = section "metrics" J.get_float in
    let* verdicts = section "verdicts" J.get_bool in
    Ok
      {
        schema_version = version;
        seq;
        rev;
        seed = Int64.of_int seed;
        env = sort_dedup env;
        config = sort_dedup config;
        metrics = sort_dedup metrics;
        verdicts = sort_dedup verdicts;
      }

let to_string t = Gb_util.Json.to_string_pretty (to_json t)

let of_string s = Result.bind (Gb_util.Json.of_string s) of_json

let write path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

let read path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> (
    match of_string contents with
    | Ok m -> Ok m
    | Error e -> Error (Printf.sprintf "%s: %s" path e))
  | exception Sys_error e -> Error e

let filename ~seq = Printf.sprintf "BENCH_%04d.json" seq

let seq_of_filename name =
  let base = Filename.basename name in
  if
    String.length base > String.length "BENCH_.json"
    && String.sub base 0 6 = "BENCH_"
    && Filename.check_suffix base ".json"
  then int_of_string_opt (String.sub base 6 (String.length base - 11))
  else None
