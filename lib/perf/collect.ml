module E = Gb_experiments.Experiments
module J = Gb_util.Json

let mode_name = Gb_core.Mitigation.mode_name

let mitigated_modes =
  [
    Gb_core.Mitigation.Fine_grained;
    Gb_core.Mitigation.Fence_on_detect;
    Gb_core.Mitigation.Min_cut;
    Gb_core.Mitigation.No_speculation;
  ]

let config_snapshot () =
  let config = Gb_system.Processor.config_for Gb_core.Mitigation.Unsafe in
  let engine = config.Gb_system.Processor.engine in
  [
    ( "cc_capacity",
      J.Int engine.Gb_dbt.Engine.cache.Gb_dbt.Code_cache.capacity );
    ("chain", J.Bool engine.Gb_dbt.Engine.cache.Gb_dbt.Code_cache.chain);
    ("hot_threshold", J.Int engine.Gb_dbt.Engine.hot_threshold);
    ("width", J.Int engine.Gb_dbt.Engine.resources.Gb_dbt.Sched.width);
    ( "modes",
      J.List
        (List.map
           (fun m -> J.String (mode_name m))
           Gb_core.Mitigation.all_modes) );
  ]

let counters_snapshot ?(seed = 1L) () =
  let w = List.hd Gb_workloads.Polybench.all in
  let obs = Gb_obs.Sink.create ~seed () in
  let _ =
    Gb_system.Processor.run_program
      ~config:(Gb_system.Processor.config_for Gb_core.Mitigation.Fine_grained)
      ~obs
      (Gb_kernelc.Compile.assemble w.Gb_workloads.Polybench.program)
  in
  Gb_obs.Sink.counters obs

let cycles_of mc mode =
  match mode with
  | Gb_core.Mitigation.Unsafe -> mc.E.unsafe
  | Gb_core.Mitigation.Fine_grained -> mc.E.fine_grained
  | Gb_core.Mitigation.Fence_on_detect -> mc.E.fence
  | Gb_core.Mitigation.Min_cut -> mc.E.min_cut
  | Gb_core.Mitigation.No_speculation -> mc.E.no_spec

(* cycles + slowdowns + audited false negatives of one measured workload *)
let mode_cycles_cells ~exp (mc : E.mode_cycles) =
  let name metric mode =
    Printf.sprintf "%s.%s.%s.%s" metric exp mc.E.w_name (mode_name mode)
  in
  List.map
    (fun mode ->
      (name "cycles" mode, Int64.to_float (cycles_of mc mode)))
    Gb_core.Mitigation.all_modes
  @ List.map
      (fun mode -> (name "slowdown" mode, E.slowdown mc ~mode))
      mitigated_modes
  @ List.filter_map
      (fun (mode, audit) ->
        Option.map
          (fun (s : Gb_cache.Audit.summary) ->
            ( name "audit_fn" mode,
              float_of_int s.Gb_cache.Audit.false_negatives ))
          audit)
      [
        (Gb_core.Mitigation.Unsafe, mc.E.unsafe_audit);
        (Gb_core.Mitigation.Fine_grained, mc.E.fine_audit);
      ]

(* per-cause cycle shares of one measured workload (attributed runs
   only): [cause_share.EXP.KERNEL.MODE.CAUSE]. All nine causes are
   always present for an attributed run, so the coverage is stable and
   the strict gate's Removed check bites if attribution is lost. *)
let cause_cells ~exp (mc : E.mode_cycles) =
  List.concat_map
    (fun (mode, shares) ->
      List.map
        (fun (cause, share) ->
          ( Printf.sprintf "cause_share.%s.%s.%s.%s" exp mc.E.w_name mode
              cause,
            share ))
        shares)
    mc.E.causes

let poc_cells (poc : E.poc_row list) =
  List.concat_map
    (fun (r : E.poc_row) ->
      let result = r.E.outcome.Gb_attack.Runner.result in
      let name metric =
        Printf.sprintf "%s.e1.%s.%s" metric r.E.variant (mode_name r.E.mode)
      in
      ( name "cycles",
        Int64.to_float result.Gb_system.Processor.cycles )
      ::
      (match result.Gb_system.Processor.audit with
      | Some s ->
        [
          ( name "audit_fn",
            float_of_int s.Gb_cache.Audit.false_negatives );
        ]
      | None -> []))
    poc

let poc_verdicts (poc : E.poc_row list) =
  List.map
    (fun (r : E.poc_row) ->
      ( Printf.sprintf "e1.%s.%s.leaked" r.E.variant (mode_name r.E.mode),
        Gb_attack.Runner.succeeded r.E.outcome ))
    poc

let poc_verdicts_equal a b =
  let key (r : E.poc_row) =
    ( r.E.variant,
      mode_name r.E.mode,
      Gb_attack.Runner.succeeded r.E.outcome,
      match
        r.E.outcome.Gb_attack.Runner.result.Gb_system.Processor.audit
      with
      | Some s -> s.Gb_cache.Audit.false_negatives
      | None -> -1 )
  in
  List.map key a = List.map key b

let chaining_cells (rows : E.chain_row list) =
  List.concat_map
    (fun (r : E.chain_row) ->
      [
        ( Printf.sprintf "exits_per_1k.e8.%s.nochain" r.E.c_name,
          E.per_1k r.E.c_exits_nochain r.E.c_guest_insns );
        ( Printf.sprintf "exits_per_1k.e8.%s.chain" r.E.c_name,
          E.per_1k r.E.c_exits_chain r.E.c_guest_insns );
      ])
    rows

let chaining_verdicts (rows : E.chain_row list) =
  List.concat_map
    (fun (r : E.chain_row) ->
      [
        (Printf.sprintf "e8.%s.cycles_equal" r.E.c_name, r.E.c_cycles_equal);
        (Printf.sprintf "e8.%s.arch_equal" r.E.c_name, r.E.c_arch_equal);
      ])
    rows

let e9_verdicts (e9 : E.e9) =
  let silent rows = List.for_all (fun r -> r.E.v_violations = 0) rows in
  let mitigated_attacks =
    List.filter (fun r -> r.E.v_mode <> Gb_core.Mitigation.Unsafe) e9.E.e9_attacks
  in
  [
    ("e9.mitigated_silent", silent (mitigated_attacks @ e9.E.e9_workloads));
    ( "e9.static_fn_zero",
      List.for_all
        (fun r -> r.E.v_uncovered = [])
        (e9.E.e9_attacks @ e9.E.e9_workloads) );
    ( "e9.scanner_recall_1",
      List.for_all
        (fun s -> s.E.s_score.Gb_verify.Scanner.recall >= 1.0)
        e9.E.e9_scans );
  ]

(* Headline verdicts of the min-cut mode: it must serialize strictly
   less than fence-on-detect — fewer fences on every attack variant and
   no larger fence-stall cycle share on every attributed E2 row — while
   the leak/soundness verdicts themselves come from [poc_verdicts] and
   [e9_verdicts]. *)
let min_cut_verdicts ~(poc : E.poc_row list) ~figure4 =
  let fences mode variant =
    List.find_map
      (fun (r : E.poc_row) ->
        if r.E.variant = variant && r.E.mode = mode then
          Some
            r.E.outcome.Gb_attack.Runner.result
              .Gb_system.Processor.fences_inserted
        else None)
      poc
  in
  let variants =
    List.sort_uniq compare (List.map (fun (r : E.poc_row) -> r.E.variant) poc)
  in
  let fewer_fences =
    List.filter_map
      (fun variant ->
        match
          ( fences Gb_core.Mitigation.Min_cut variant,
            fences Gb_core.Mitigation.Fence_on_detect variant )
        with
        | Some mc, Some f ->
          Some (Printf.sprintf "e1.%s.min_cut_fewer_fences" variant, mc < f)
        | _ -> None)
      variants
  in
  let share mode cause (mc : E.mode_cycles) =
    match List.assoc_opt mode mc.E.causes with
    | Some shares -> Option.value ~default:0. (List.assoc_opt cause shares)
    | None -> 0.
  in
  let attributed =
    List.filter (fun (mc : E.mode_cycles) -> mc.E.causes <> []) figure4
  in
  fewer_fences
  @
  if attributed = [] then []
  else
    [
      ( "e2.min_cut_fence_stall_leq_fence_mode",
        List.for_all
          (fun mc ->
            share "min-cut" "fence-stall" mc
            <= share "fence-on-detect" "fence-stall" mc)
          attributed );
    ]

let e10_cells (m : Gb_diff.Matrix.t) =
  let total f =
    float_of_int
      (List.fold_left (fun acc r -> acc + f r) 0 m.Gb_diff.Matrix.rows)
  in
  [
    ("faults.e10.injected", total (fun r -> r.Gb_diff.Matrix.r_injected));
    ("faults.e10.recovered", total (fun r -> r.Gb_diff.Matrix.r_recovered));
    ( "faults.e10.syncs",
      total (fun r -> r.Gb_diff.Matrix.r_syncs) );
  ]

let e10_verdicts (m : Gb_diff.Matrix.t) =
  [
    ("e10.passed", Gb_diff.Matrix.pass m);
    ("e10.sensitivity_detected", m.Gb_diff.Matrix.sensitivity_detected);
  ]

(* Allocation discipline of the two execution tiers, measured on gemm
   (the suite's first kernel, ALU/load dense): minor words allocated per
   1000 guest instructions, with the translation pipeline excluded from
   the processor runs via the engine's {!Gb_obs.Allocs} exclusion
   windows. Translation worker domains have their own minor heaps and
   are invisible to the owning domain's [Gc.minor_words], so the cells
   are identical with and without GHOSTBUSTERS_WORKERS. The interpreter
   cell brackets a pure interpreter run — no translation to exclude.
   These cells are what the CI perf gate holds the hot loops to (rule
   [alloc.], see {!Baseline.rule_for}): a leaked per-instruction
   allocation shows up as a step in this trajectory. *)
let alloc_modes =
  [ Gb_core.Mitigation.Fence_on_detect; Gb_core.Mitigation.Min_cut ]

let alloc_cells () =
  let w = List.hd Gb_workloads.Polybench.all in
  let program = Gb_kernelc.Compile.assemble w.Gb_workloads.Polybench.program in
  let cell name words insns =
    ( "alloc.minor_words_per_kinsn." ^ name,
      Gb_obs.Allocs.per_kinsn ~words ~insns )
  in
  let interp_cell =
    let mem =
      Gb_riscv.Mem.create
        ~size:Gb_system.Processor.default_config.Gb_system.Processor.mem_size
    in
    Gb_riscv.Asm.load mem program;
    let i = Gb_riscv.Interp.create ~mem ~pc:program.Gb_riscv.Asm.entry () in
    let a = Gb_obs.Allocs.create () in
    Gb_obs.Allocs.start a;
    let (_ : int) = Gb_riscv.Interp.run i in
    cell "interp" (Gb_obs.Allocs.stop a) i.Gb_riscv.Interp.insn_count
  in
  interp_cell
  :: List.map
       (fun mode ->
         let p =
           Gb_system.Processor.create
             ~config:(Gb_system.Processor.config_for mode)
             program
         in
         let a = Gb_system.Processor.allocs p in
         Gb_obs.Allocs.start a;
         let r = Gb_system.Processor.run p in
         cell
           ("pipeline." ^ mode_name mode)
           (Gb_obs.Allocs.stop a) r.Gb_system.Processor.guest_insns)
       alloc_modes

let geomean_cells figure4 =
  List.map
    (fun mode ->
      ( Printf.sprintf "slowdown.e2.geomean.%s" (mode_name mode),
        E.geomean_slowdown figure4 ~mode ))
    mitigated_modes

let of_data ?seq ?rev ?(seed = 1L) ?(counters = []) ?verdicts_unchanged ?e9
    ?e10 ~poc ~figure4 ~e4 ~chaining () =
  let metrics =
    poc_cells poc
    @ List.concat_map (mode_cycles_cells ~exp:"e2") figure4
    @ List.concat_map (cause_cells ~exp:"e2") figure4
    @ geomean_cells figure4
    @ mode_cycles_cells ~exp:"e4" e4
    @ chaining_cells chaining
    @ List.filter_map
        (fun (name, v) ->
          (* workers.* counters (prefetch hits/staleness, queue depth)
             depend on wall-clock scheduling, not simulated behaviour —
             they would make the manifest nondeterministic *)
          if String.starts_with ~prefix:"workers." name then None
          else Some ("counter." ^ name, float_of_int v))
        counters
    @ alloc_cells ()
    @ (match e10 with Some m -> e10_cells m | None -> [])
  in
  let verdicts =
    poc_verdicts poc
    @ min_cut_verdicts ~poc ~figure4
    @ chaining_verdicts chaining
    @ (match verdicts_unchanged with
      | Some b -> [ ("e8.verdicts_unchanged", b) ]
      | None -> [])
    @ (match e9 with Some d -> e9_verdicts d | None -> [])
    @ match e10 with Some m -> e10_verdicts m | None -> []
  in
  Manifest.make ?seq ?rev ~seed ~config:(config_snapshot ()) ~verdicts metrics

let collect ?(seed = 1L) ?(full = true) () =
  let poc = E.e1_poc_matrix ~audit:true ~seed () in
  let figure4 = E.e2_figure4 ~audit:true () in
  let e4 = E.e4_matmul_ablation ~audit:true () in
  let chaining = E.e8_chaining () in
  let counters = counters_snapshot ~seed () in
  if not full then
    of_data ~seed ~counters ~poc ~figure4 ~e4 ~chaining ()
  else
    let constrained =
      E.e1_poc_matrix ~audit:true ~seed ~cc_capacity:E.e8_tiny_capacity ()
    in
    let e9 = E.e9_verify () in
    let e10 = Gb_diff.Matrix.run ~seed () in
    of_data ~seed ~counters
      ~verdicts_unchanged:(poc_verdicts_equal poc constrained)
      ~e9 ~e10 ~poc ~figure4 ~e4 ~chaining ()
