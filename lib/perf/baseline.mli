(** Baseline selection and regression comparison over a perf trajectory.

    A trajectory directory ([bench/trajectory/]) holds one committed
    {!Manifest} per PR that changed performance. {!load_dir} reads it,
    {!select} picks the comparison baseline (the latest sequence number,
    or a pinned git rev), and {!compare} diffs a freshly recorded manifest
    against it cell by cell under per-metric direction and tolerance
    rules, producing a typed verdict per cell. The CI perf gate fails on
    any [Regressed] cell. *)

(** How a metric family is judged. *)
type direction =
  | Lower_better of float
      (** regression when [cur > base * (1 + tol)]; the payload is the
          relative tolerance (0 means exact: any increase regresses) *)
  | Band of float
      (** two-sided absolute band: regression when
          [|cur - base| > tol], either direction (cause shares: any
          drift of the attribution profile needs a look) *)
  | Exact  (** any change, either way, is a regression (verdict cells) *)
  | Info  (** tracked and reported, never gated *)

val rule_for : ?tol_cycles:float -> string -> direction
(** The rule a metric name dispatches to (see the naming convention in
    {!Manifest}): [cycles.*], [slowdown.*] and [exits_per_1k.*] are
    [Lower_better tol_cycles] (default tolerance {!default_tol_cycles});
    [audit_fn.*] is [Lower_better 0.]; [cause_share.*] is
    [Band default_band_share]; [alloc.*] is
    [Lower_better default_tol_alloc]; [counter.*], [faults.*] and
    anything unrecognised are [Info]. *)

val default_tol_cycles : float
(** 0.01 — the simulator is deterministic, so 1% headroom only absorbs
    intentional noise (e.g. a changed instrumented-run shape), not real
    regressions. *)

val default_band_share : float
(** 0.02 — two percentage points of absolute drift allowed per cause
    share before the attribution gate trips. *)

val default_tol_alloc : float
(** 0.05 — headroom for the [alloc.minor_words_per_kinsn.*] cells. The
    measurement itself is deterministic; the band absorbs legitimate
    small drift from unrelated changes (a new record field, a changed
    cold path inside the measured window) while any real per-instruction
    allocation leak — one word per insn is a >40% step on the current
    floor — trips the gate. *)

type status = Improved | Unchanged | Regressed | Added | Removed

val status_name : status -> string

type cell = {
  c_name : string;
  c_kind : [ `Metric | `Verdict ];
  c_rule : direction;
  c_base : float option;  (** [None] when absent from the baseline *)
  c_cur : float option;  (** [None] when absent from the current run *)
  c_delta : float;
      (** relative delta [(cur - base) / base]; [infinity] when the
          baseline cell is 0 and the current one is not; 0 when either
          side is missing *)
  c_status : status;
}

type comparison = {
  base_rev : string;
  base_seq : int;
  cur_rev : string;
  cells : cell list;  (** one per union metric/verdict name, sorted *)
  regressed : int;
  improved : int;
  unchanged : int;
  added : int;  (** cells the baseline lacks (new kernels/metrics) *)
  removed : int;  (** cells the current run lacks (lost coverage) *)
  strict : bool;
  passed : bool;
      (** no [Regressed] cell, and no [Removed] cell when [strict] *)
}

val compare :
  ?tol_cycles:float ->
  ?strict:bool ->
  baseline:Manifest.t ->
  Manifest.t ->
  comparison
(** Compare a current manifest against the baseline. [strict] (default
    [false]) additionally fails the comparison when the current run lost
    metric coverage ([Removed] cells) — the CI gate uses it so a silently
    skipped experiment cannot hide a regression. A mismatch in
    [schema_version] is impossible here ({!Manifest.of_json} already
    rejected it). *)

val regressions : comparison -> cell list

val load_dir : string -> (Manifest.t list, string) result
(** Read every [BENCH_*.json] in a directory, sorted by sequence number
    (per-file [seq] field, falling back to the filename). An unreadable or
    schema-incompatible file is an error — a trajectory must never be
    silently partial. [Error] when the directory has no manifests. *)

val select : ?rev:string -> Manifest.t list -> Manifest.t option
(** The comparison baseline: the manifest whose [rev] matches (prefix
    match, so a full sha selects a short-rev manifest and vice versa), or
    the highest [seq] when [rev] is omitted. *)

val next_seq : Manifest.t list -> int
(** Highest committed sequence number + 1 (1 on an empty trajectory) —
    what a newly recorded manifest should be stamped with when it is
    added to the trajectory. *)
