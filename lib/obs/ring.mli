(** Bounded ring buffer: pushes past the capacity overwrite the oldest
    element. Used to keep the most recent trace events of a run without
    unbounded memory growth. *)

type 'a t

val create : int -> 'a t
(** [create capacity]; capacity must be > 0. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit

val length : 'a t -> int
(** Elements currently retained (min of pushes and capacity). *)

val pushed : 'a t -> int
(** Total pushes since creation. *)

val dropped : 'a t -> int
(** Pushes that overwrote an older element: [max 0 (pushed - capacity)]. *)

val to_list : 'a t -> 'a list
(** Retained elements, oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val clear : 'a t -> unit
