type cause =
  | Committed_work
  | Fence_stall
  | Nospec_serialization
  | Mcb_rollback
  | Dispatcher_exit
  | Chain_transfer
  | Translation
  | Interp_fallback
  | Cache_miss_stall
  | Cut_protect

let all_causes =
  [
    Committed_work; Fence_stall; Nospec_serialization; Mcb_rollback;
    Dispatcher_exit; Chain_transfer; Translation; Interp_fallback;
    Cache_miss_stall; Cut_protect;
  ]

let n_causes = List.length all_causes

let cause_index = function
  | Committed_work -> 0
  | Fence_stall -> 1
  | Nospec_serialization -> 2
  | Mcb_rollback -> 3
  | Dispatcher_exit -> 4
  | Chain_transfer -> 5
  | Translation -> 6
  | Interp_fallback -> 7
  | Cache_miss_stall -> 8
  | Cut_protect -> 9

let cause_name = function
  | Committed_work -> "committed-work"
  | Fence_stall -> "fence-stall"
  | Nospec_serialization -> "nospec-serialization"
  | Mcb_rollback -> "mcb-rollback"
  | Dispatcher_exit -> "dispatcher-exit"
  | Chain_transfer -> "chain-transfer"
  | Translation -> "translation"
  | Interp_fallback -> "interp-fallback"
  | Cache_miss_stall -> "cache-miss-stall"
  | Cut_protect -> "cut-protect"

let cause_of_name n =
  List.find_opt (fun c -> cause_name c = n) all_causes

type tier = Interp | Block | Trace

let tier_name = function
  | Interp -> "interp"
  | Block -> "block"
  | Trace -> "trace"

(* lcm of 1..16: exact slot-level splits for every plausible issue width,
   and 4e9 cycles * scale still fits comfortably in a 63-bit int *)
let scale = 720720

type key = { k_cause : cause; k_tier : tier; k_trace : int; k_pc : int }

type cell = { mutable units : int }

type row = {
  r_cause : cause;
  r_tier : tier;
  r_trace : int;
  r_pc : int;
  r_units : int;
}

type t = {
  tbl : (key, cell) Hashtbl.t;
  totals : int array;  (** units per cause, [cause_index]-indexed *)
  tiers : (int, tier) Hashtbl.t;  (** entry pc -> tier of its translation *)
  xlats : (int, int) Hashtbl.t;  (** entry pc -> translations performed *)
  conflicts : (int, int) Hashtbl.t;  (** store pc -> conflicts flagged *)
  mutable cur_trace : int;
  mutable cur_tier : tier;
  (* the pipeline books the same few keys thousands of times in a row;
     one memoized cell per cause keeps the hot path off the hashtable *)
  memo : (key * cell) option array;
}

let create () =
  {
    tbl = Hashtbl.create 256;
    totals = Array.make n_causes 0;
    tiers = Hashtbl.create 64;
    xlats = Hashtbl.create 64;
    conflicts = Hashtbl.create 16;
    cur_trace = 0;
    cur_tier = Trace;
    memo = Array.make n_causes None;
  }

let set_tier t ~entry tier = Hashtbl.replace t.tiers entry tier

let enter t ~entry =
  t.cur_trace <- entry;
  t.cur_tier <-
    (match Hashtbl.find_opt t.tiers entry with Some tier -> tier | None -> Trace)

let cell_of t key =
  match Hashtbl.find_opt t.tbl key with
  | Some c -> c
  | None ->
    let c = { units = 0 } in
    Hashtbl.add t.tbl key c;
    c

let add t cause ~tier ~trace ~pc ~units =
  if units <> 0 then begin
    let ci = cause_index cause in
    let cell =
      match t.memo.(ci) with
      | Some (k, c)
        when k.k_tier == tier && k.k_trace = trace && k.k_pc = pc ->
        c
      | _ ->
        let key = { k_cause = cause; k_tier = tier; k_trace = trace; k_pc = pc } in
        let c = cell_of t key in
        t.memo.(ci) <- Some (key, c);
        c
    in
    cell.units <- cell.units + units;
    t.totals.(ci) <- t.totals.(ci) + units
  end

let add_cycles t cause ~tier ~trace ~pc ~cycles =
  add t cause ~tier ~trace ~pc ~units:(cycles * scale)

let add_here t cause ~pc ~units =
  add t cause ~tier:t.cur_tier ~trace:t.cur_trace ~pc ~units

let add_here_cycles t cause ~pc ~cycles =
  add_here t cause ~pc ~units:(cycles * scale)

let transfer t ~from_ ~to_ ~pc ~cycles =
  let units = cycles * scale in
  add_here t from_ ~pc ~units:(-units);
  add_here t to_ ~pc ~units

let bump tbl key by =
  match Hashtbl.find_opt tbl key with
  | Some n -> Hashtbl.replace tbl key (n + by)
  | None -> Hashtbl.add tbl key by

let note_translation t ~entry tier =
  set_tier t ~entry tier;
  bump t.xlats entry 1

let note_conflict t ~pc = bump t.conflicts pc 1

let total_units t = Array.fold_left ( + ) 0 t.totals

let total_cycles t = float_of_int (total_units t) /. float_of_int scale

let by_cause t =
  List.map (fun c -> (c, t.totals.(cause_index c))) all_causes

let cause_shares t =
  let total = float_of_int (total_units t) in
  List.map
    (fun c ->
      let u = float_of_int t.totals.(cause_index c) in
      (cause_name c, if total = 0. then 0. else u /. total))
    all_causes

let sample_cycles t =
  let committed = t.totals.(cause_index Committed_work) / scale in
  let total = total_units t / scale in
  (committed, total - committed)

let rows t =
  let l =
    Hashtbl.fold
      (fun k (c : cell) acc ->
        if c.units = 0 then acc
        else
          {
            r_cause = k.k_cause; r_tier = k.k_tier; r_trace = k.k_trace;
            r_pc = k.k_pc; r_units = c.units;
          }
          :: acc)
      t.tbl []
  in
  List.sort (fun a b -> compare (b.r_units, a.r_pc) (a.r_units, b.r_pc)) l

let sorted_counts tbl =
  List.sort
    (fun (pa, na) (pb, nb) -> compare (nb, pa) (na, pb))
    (Hashtbl.fold (fun pc n acc -> (pc, n) :: acc) tbl [])

let conflict_pcs t = sorted_counts t.conflicts

let translations t = sorted_counts t.xlats

let check t ~cycles =
  let have = Int64.of_int (total_units t) in
  let want = Int64.mul (Int64.of_int scale) cycles in
  if Int64.equal have want then Ok ()
  else
    Error
      (Printf.sprintf
         "ledger holds %Ld units (%.3f cycles) but the clock ran %Ld cycles \
          (%Ld units); drift %+Ld units"
         have
         (Int64.to_float have /. float_of_int scale)
         cycles want (Int64.sub have want))

let cycles_of_units u = float_of_int u /. float_of_int scale

let to_json t =
  let module J = Gb_util.Json in
  let causes =
    List.map
      (fun (c, u) ->
        ( cause_name c,
          J.Obj
            [
              ("units", J.Int u);
              ("cycles", J.Float (cycles_of_units u));
              ( "share",
                J.Float
                  (let total = total_units t in
                   if total = 0 then 0.
                   else float_of_int u /. float_of_int total) );
            ] ))
      (by_cause t)
  in
  let row_json r =
    J.Obj
      [
        ("cause", J.String (cause_name r.r_cause));
        ("tier", J.String (tier_name r.r_tier));
        ("trace", J.Int r.r_trace);
        ("pc", J.Int r.r_pc);
        ("units", J.Int r.r_units);
        ("cycles", J.Float (cycles_of_units r.r_units));
      ]
  in
  let counts l =
    J.List
      (List.map
         (fun (pc, n) -> J.Obj [ ("pc", J.Int pc); ("count", J.Int n) ])
         l)
  in
  J.Obj
    [
      ("scale", J.Int scale);
      ("total_units", J.Int (total_units t));
      ("total_cycles", J.Float (total_cycles t));
      ("causes", J.Obj causes);
      ("rows", J.List (List.map row_json (rows t)));
      ("mcb_conflict_pcs", counts (conflict_pcs t));
      ("translations", counts (translations t));
    ]

let folded t ~kernel ~top buf =
  let rows = rows t in
  let rows =
    if top <= 0 then rows
    else List.filteri (fun i _ -> i < top) rows
  in
  List.iter
    (fun r ->
      Printf.bprintf buf "%s;%s;trace_0x%x;pc_0x%x;%s %d\n" kernel
        (tier_name r.r_tier) r.r_trace r.r_pc (cause_name r.r_cause)
        r.r_units)
    rows
