(** Cycle-attribution ledger: classifies every simulated cycle into a
    closed set of causes, keyed by tier × trace × guest pc.

    The simulated clock advances in exactly three places (interpreter
    step, pipeline bundle issue, pipeline exit commit); each advance is
    mirrored into this ledger, so the books balance exactly:

      [sum over all buckets = processor total cycles]

    asserted by {!check} at end of run. To attribute fractions of a
    bundle cycle to individual issue slots without floating point, the
    ledger counts in fixed-point [units]: {!scale} units = 1 cycle.
    [scale] is divisible by every issue width up to 16, so slot-level
    splits are exact and conservation is an integer equality. *)

type cause =
  | Committed_work  (** useful issue slots, commit cycles, interp compute *)
  | Fence_stall  (** mitigation-inserted fences + the bubbles they force *)
  | Nospec_serialization  (** empty issue slots: lost ILP / serialization *)
  | Mcb_rollback  (** pipeline-refill penalty of an MCB conflict rollback *)
  | Dispatcher_exit  (** side-exit penalty paid returning to the dispatcher *)
  | Chain_transfer  (** side-exit penalty paid on a chained transfer *)
  | Translation  (** reserved: translation is host-side and costs 0 here *)
  | Interp_fallback  (** cycles spent interpreting untranslated code *)
  | Cache_miss_stall  (** L1D miss penalties, both tiers *)
  | Cut_protect
      (** serialization forced by min-cut repairs (dep re-inserts and
          index masks) in a [Min_cut]-protected trace *)

val all_causes : cause list

val cause_name : cause -> string

val cause_of_name : string -> cause option

type tier = Interp | Block | Trace

val tier_name : tier -> string

val scale : int
(** Fixed-point units per simulated cycle (720720 = lcm 1..16). *)

type row = {
  r_cause : cause;
  r_tier : tier;
  r_trace : int;  (** entry pc of the trace, 0 for interpreter cycles *)
  r_pc : int;  (** guest pc; schedule-level cycles use the trace entry *)
  r_units : int;
}

type t

val create : unit -> t

(** {2 Recording} *)

val set_tier : t -> entry:int -> tier -> unit
(** Register the tier of the translation installed at [entry] (called by
    the code cache on insert). The mapping survives eviction so a trace
    still in flight attributes to the tier it was translated at. *)

val enter : t -> entry:int -> unit
(** The pipeline is about to run the translation at [entry]: subsequent
    {!add_here} calls key to this trace and its registered tier. *)

val add : t -> cause -> tier:tier -> trace:int -> pc:int -> units:int -> unit

val add_cycles : t -> cause -> tier:tier -> trace:int -> pc:int -> cycles:int -> unit

val add_here : t -> cause -> pc:int -> units:int -> unit
(** {!add} under the current {!enter} trace/tier. *)

val add_here_cycles : t -> cause -> pc:int -> cycles:int -> unit

val transfer : t -> from_:cause -> to_:cause -> pc:int -> cycles:int -> unit
(** Reclassify [cycles] already booked under the current trace at [pc]
    from one cause to another (the pipeline books a side-exit penalty as
    {!Dispatcher_exit} first, then moves it to {!Chain_transfer} when the
    exit turns out to chain). Conservation is unaffected. *)

val note_translation : t -> entry:int -> tier -> unit
(** The engine translated (or retranslated) [entry]; counted per entry so
    reports can flag churny regions. *)

val note_conflict : t -> pc:int -> unit
(** An MCB store-probe conflict was flagged by the store at [pc]; counted
    so rollback cycles can be traced back to the stores causing them. *)

(** {2 Reading} *)

val total_units : t -> int

val total_cycles : t -> float

val by_cause : t -> (cause * int) list
(** Units per cause, every cause present, declaration order. *)

val cause_shares : t -> (string * float) list
(** Per-cause share of total (0 when the ledger is empty), every cause
    present, declaration order. *)

val sample_cycles : t -> int * int
(** [(committed, overhead)] in whole cycles (rounded down) — the
    speculative-vs-committed counter lane pair in the Chrome trace. *)

val rows : t -> row list
(** All nonzero buckets, largest first. *)

val conflict_pcs : t -> (int * int) list
(** [(store pc, conflicts flagged)], most conflicts first. *)

val translations : t -> (int * int) list
(** [(entry pc, translations)], most translations first. *)

val check : t -> cycles:int64 -> (unit, string) result
(** Exact conservation: [total_units = scale * cycles]. *)

val to_json : t -> Gb_util.Json.t

val folded : t -> kernel:string -> top:int -> Buffer.t -> unit
(** Append flamegraph.pl/speedscope-compatible folded stacks, one per
    bucket: [kernel;tier;trace_0x..;pc_0x..;cause units] where counts are
    fixed-point units ({!scale} per cycle). [top <= 0] means all rows. *)
