(** Wall-clock phase timers for the host-side DBT work (first pass, trace
    building, poison analysis, scheduling, codegen). Aggregated totals per
    phase plus a bounded ring of individual spans for the Chrome trace
    export. Timestamps are relative to timer creation, in microseconds. *)

type span = { sp_phase : string; sp_start_us : float; sp_dur_us : float }

type t

val create : ?span_capacity:int -> unit -> t
(** Default span capacity 8192. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t phase f] runs [f] and records its wall-clock duration under
    [phase]; records even when [f] raises. Nested calls are allowed. *)

val add : t -> string -> start:float -> dur_us:float -> unit
(** Record an already-measured call: [start] is the absolute
    [Unix.gettimeofday] at which it began (made relative to this timer's
    origin for the span), [dur_us] its duration. Used to replay phases
    that were timed elsewhere — e.g. on a worker domain — into the owning
    sink's timer. *)

type total = { t_phase : string; t_calls : int; t_total_us : float }

val totals : t -> total list
(** One row per phase, longest total first. *)

val spans : t -> span list
(** Retained spans, oldest first (completion order). *)

val dropped_spans : t -> int
