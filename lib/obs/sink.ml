type active = {
  metrics : Metrics.t;
  events : Event.t Ring.t;
  timers : Timer.t;
  attrib : Attrib.t option;
  mutable cycle_source : unit -> int64;
  mutable ring_warned : bool;
}

(* A recording sink: every operation is appended (reversed) as pure data
   and re-applied later with {!replay}. Translation backends running on
   worker domains record into one of these; the owning domain replays it
   at the install point. Because events carry no timestamp until replay
   and the simulated clock never advances during translation, a
   buffered-then-replayed stream is indistinguishable from direct
   recording at the replay point. *)
type op =
  | Op_incr of string * int
  | Op_gauge of string * float
  | Op_observe of string * float
  | Op_event of int * int * Event.kind  (* pc, region, kind *)
  | Op_span of string * float * float  (* phase, abs start (s), dur_us *)

type buffered = { mutable ops : op list (* newest first *) }

type t = Noop | Active of active | Buffer of buffered

let noop = Noop

let create ?(ring_capacity = 65536) ?span_capacity ?seed ?(attrib = false) () =
  Active
    {
      metrics = Metrics.create ?seed ();
      events = Ring.create ring_capacity;
      timers = Timer.create ?span_capacity ();
      attrib = (if attrib then Some (Attrib.create ()) else None);
      cycle_source = (fun () -> 0L);
      ring_warned = false;
    }

let buffer () = Buffer { ops = [] }

let is_active = function Noop -> false | Active _ | Buffer _ -> true

let attrib = function Noop | Buffer _ -> None | Active a -> a.attrib

let set_cycle_source t f =
  match t with Noop | Buffer _ -> () | Active a -> a.cycle_source <- f

let event t ?(pc = 0) ?(region = 0) kind =
  match t with
  | Noop -> ()
  | Buffer b -> b.ops <- Op_event (pc, region, kind) :: b.ops
  | Active a ->
    Ring.push a.events { Event.kind; pc; region; cycle = a.cycle_source () };
    (* a wrapped ring silently forgets history: count every dropped event
       so truncated Chrome traces are detectable, and say so once *)
    if Ring.dropped a.events > 0 then begin
      Metrics.incr a.metrics "ring.dropped";
      if not a.ring_warned then begin
        a.ring_warned <- true;
        Printf.eprintf
          "ghostbusters: warning: event ring wrapped (capacity %d); oldest \
           events dropped, the exported Chrome trace will be truncated\n\
           %!"
          (Ring.capacity a.events)
      end
    end

let incr t ?by name =
  match t with
  | Noop -> ()
  | Buffer b -> b.ops <- Op_incr (name, Option.value ~default:1 by) :: b.ops
  | Active a -> Metrics.incr a.metrics ?by name

let set_gauge t name v =
  match t with
  | Noop -> ()
  | Buffer b -> b.ops <- Op_gauge (name, v) :: b.ops
  | Active a -> Metrics.set_gauge a.metrics name v

let observe t name v =
  match t with
  | Noop -> ()
  | Buffer b -> b.ops <- Op_observe (name, v) :: b.ops
  | Active a -> Metrics.observe a.metrics name v

let time t phase f =
  match t with
  | Noop -> f ()
  | Buffer b ->
    let start = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let stop = Unix.gettimeofday () in
        b.ops <- Op_span (phase, start, (stop -. start) *. 1e6) :: b.ops)
      f
  | Active a -> Timer.time a.timers phase f

let replay src ~into =
  match src with
  | Noop | Active _ -> ()
  | Buffer b ->
    let ops = List.rev b.ops in
    b.ops <- [];
    List.iter
      (fun op ->
        match op with
        | Op_incr (name, by) -> incr into ~by name
        | Op_gauge (name, v) -> set_gauge into name v
        | Op_observe (name, v) -> observe into name v
        | Op_event (pc, region, kind) -> event into ~pc ~region kind
        | Op_span (phase, start, dur_us) -> (
          match into with
          | Active a -> Timer.add a.timers phase ~start ~dur_us
          | Buffer b' -> b'.ops <- Op_span (phase, start, dur_us) :: b'.ops
          | Noop -> ()))
      ops

let metrics = function Noop | Buffer _ -> None | Active a -> Some a.metrics

let counters = function
  | Noop | Buffer _ -> []
  | Active a -> Metrics.counters a.metrics

let events = function
  | Noop | Buffer _ -> []
  | Active a -> Ring.to_list a.events

let dropped_events = function
  | Noop | Buffer _ -> 0
  | Active a -> Ring.dropped a.events

let timer_totals = function
  | Noop | Buffer _ -> []
  | Active a -> Timer.totals a.timers

let metrics_json t =
  let module J = Gb_util.Json in
  match t with
  | Noop | Buffer _ -> J.Obj []
  | Active a ->
    (* sorted by phase name: {!Timer.totals} orders by wall-clock total,
       which varies run to run (and with worker interleaving) — dumps
       must diff stably *)
    let phases =
      List.map
        (fun { Timer.t_phase; t_calls; t_total_us } ->
          ( t_phase,
            J.Obj [ ("calls", J.Int t_calls); ("total_us", J.Float t_total_us) ]
          ))
        (List.sort
           (fun a b -> compare a.Timer.t_phase b.Timer.t_phase)
           (Timer.totals a.timers))
    in
    let base =
      match Metrics.to_json a.metrics with
      | J.Obj fields -> fields
      | other -> [ ("metrics", other) ]
    in
    J.Obj
      (base
      @ [
          ("host_phases", J.Obj phases);
          ( "events",
            J.Obj
              [
                ("retained", J.Int (Ring.length a.events));
                ("dropped", J.Int (Ring.dropped a.events));
              ] );
        ])

let trace_json t =
  match t with
  | Noop | Buffer _ -> Trace_export.to_json ~events:[] ~spans:[] ()
  | Active a ->
    Trace_export.to_json
      ~dropped:(Ring.dropped a.events)
      ~events:(Ring.to_list a.events)
      ~spans:(Timer.spans a.timers)
      ()
