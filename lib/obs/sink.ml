type active = {
  metrics : Metrics.t;
  events : Event.t Ring.t;
  timers : Timer.t;
  attrib : Attrib.t option;
  mutable cycle_source : unit -> int64;
  mutable ring_warned : bool;
}

type t = Noop | Active of active

let noop = Noop

let create ?(ring_capacity = 65536) ?span_capacity ?seed ?(attrib = false) () =
  Active
    {
      metrics = Metrics.create ?seed ();
      events = Ring.create ring_capacity;
      timers = Timer.create ?span_capacity ();
      attrib = (if attrib then Some (Attrib.create ()) else None);
      cycle_source = (fun () -> 0L);
      ring_warned = false;
    }

let is_active = function Noop -> false | Active _ -> true

let attrib = function Noop -> None | Active a -> a.attrib

let set_cycle_source t f =
  match t with Noop -> () | Active a -> a.cycle_source <- f

let event t ?(pc = 0) ?(region = 0) kind =
  match t with
  | Noop -> ()
  | Active a ->
    Ring.push a.events { Event.kind; pc; region; cycle = a.cycle_source () };
    (* a wrapped ring silently forgets history: count every dropped event
       so truncated Chrome traces are detectable, and say so once *)
    if Ring.dropped a.events > 0 then begin
      Metrics.incr a.metrics "ring.dropped";
      if not a.ring_warned then begin
        a.ring_warned <- true;
        Printf.eprintf
          "ghostbusters: warning: event ring wrapped (capacity %d); oldest \
           events dropped, the exported Chrome trace will be truncated\n\
           %!"
          (Ring.capacity a.events)
      end
    end

let incr t ?by name =
  match t with Noop -> () | Active a -> Metrics.incr a.metrics ?by name

let set_gauge t name v =
  match t with Noop -> () | Active a -> Metrics.set_gauge a.metrics name v

let observe t name v =
  match t with Noop -> () | Active a -> Metrics.observe a.metrics name v

let time t phase f =
  match t with Noop -> f () | Active a -> Timer.time a.timers phase f

let metrics = function Noop -> None | Active a -> Some a.metrics

let counters = function Noop -> [] | Active a -> Metrics.counters a.metrics

let events = function Noop -> [] | Active a -> Ring.to_list a.events

let dropped_events = function Noop -> 0 | Active a -> Ring.dropped a.events

let timer_totals = function Noop -> [] | Active a -> Timer.totals a.timers

let metrics_json t =
  let module J = Gb_util.Json in
  match t with
  | Noop -> J.Obj []
  | Active a ->
    let phases =
      List.map
        (fun { Timer.t_phase; t_calls; t_total_us } ->
          ( t_phase,
            J.Obj [ ("calls", J.Int t_calls); ("total_us", J.Float t_total_us) ]
          ))
        (Timer.totals a.timers)
    in
    let base =
      match Metrics.to_json a.metrics with
      | J.Obj fields -> fields
      | other -> [ ("metrics", other) ]
    in
    J.Obj
      (base
      @ [
          ("host_phases", J.Obj phases);
          ( "events",
            J.Obj
              [
                ("retained", J.Int (Ring.length a.events));
                ("dropped", J.Int (Ring.dropped a.events));
              ] );
        ])

let trace_json t =
  match t with
  | Noop -> Trace_export.to_json ~events:[] ~spans:[] ()
  | Active a ->
    Trace_export.to_json
      ~dropped:(Ring.dropped a.events)
      ~events:(Ring.to_list a.events)
      ~spans:(Timer.spans a.timers)
      ()
