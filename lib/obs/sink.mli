(** The observability handle threaded through the simulator.

    A sink is either {!noop} — the default everywhere, a single word whose
    record operations return immediately, so untouched callers and
    benchmarks pay nothing — or active, in which case it owns a metrics
    registry ({!Metrics}), a bounded ring of typed events ({!Event}) and
    the host-side phase timers ({!Timer}).

    Hot paths (the cache, the pipeline) guard payload construction with
    {!is_active} so that the noop case does not even allocate the event. *)

type t

val noop : t
(** Discards everything at unit cost. *)

val create :
  ?ring_capacity:int ->
  ?span_capacity:int ->
  ?seed:int64 ->
  ?attrib:bool ->
  unit ->
  t
(** An active sink. Default ring capacity 65536 events; [seed] feeds the
    histogram reservoirs (see {!Metrics.create}). [attrib:true] attaches
    a cycle-attribution ledger ({!Attrib}): the pipeline, interpreter
    hooks and processor classify every simulated cycle into it. *)

val buffer : unit -> t
(** A recording sink: every operation is stored as data instead of being
    applied, and {!replay} re-applies the whole sequence, in order, into
    another sink. Translation backends running on worker domains record
    into a buffer; the owning domain replays it at the install point.
    Events are only timestamped at replay — since the simulated clock
    never advances while a translation is in flight, a
    buffered-then-replayed stream is bit-identical to direct recording
    (see docs/CONCURRENCY.md). A buffer is single-owner at any moment:
    hand-off between domains must synchronize (futures do). *)

val replay : t -> into:t -> unit
(** [replay src ~into] re-applies a {!buffer}'s recorded operations into
    [into] (counters, gauges, histogram samples, events — stamped with
    [into]'s cycle source — and timer spans via {!Timer.add}) and clears
    the buffer. No-op when [src] is not a buffer. *)

val is_active : t -> bool
(** True for active {e and} buffer sinks (payload construction behind
    {!is_active} guards must happen so a buffer can capture it). *)

val attrib : t -> Attrib.t option
(** The cycle-attribution ledger, when this sink was created with
    [~attrib:true]. [None] on {!noop} and plain active sinks. *)

val set_cycle_source : t -> (unit -> int64) -> unit
(** Install the simulated-clock reader used to timestamp events (the
    processor wires this to its cycle counter). Until set, events are
    stamped with cycle 0. No-op on {!noop}. *)

(** {2 Recording} *)

val event : t -> ?pc:int -> ?region:int -> Event.kind -> unit

val incr : t -> ?by:int -> string -> unit
(** Bump a monotonic counter. *)

val set_gauge : t -> string -> float -> unit

val observe : t -> string -> float -> unit
(** Record a histogram sample. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Wall-clock a host-side DBT phase; on {!noop} this is just [f ()]. *)

(** {2 Reading} *)

val metrics : t -> Metrics.t option
(** [None] on {!noop}. *)

val counters : t -> (string * int) list
(** {!Metrics.counters} of the registry; [[]] on {!noop}. *)

val events : t -> Event.t list
(** Retained events, oldest first; [] on {!noop}. *)

val dropped_events : t -> int

val timer_totals : t -> Timer.total list

val metrics_json : t -> Gb_util.Json.t
(** The {!Metrics.to_json} snapshot extended with a ["host_phases"] object
    (wall-clock totals per DBT phase) and ["events"] retention counts.
    [Obj []] on {!noop}. *)

val trace_json : t -> Gb_util.Json.t
(** The event ring and timer spans in Chrome [trace_event] JSON format
    (see {!Trace_export.to_json}); an empty trace on {!noop}. *)
