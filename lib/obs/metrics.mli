(** Metrics registry: named monotonic counters, gauges and log-scale
    histograms, snapshotable to {!Gb_util.Json}.

    Naming convention (see docs/OBSERVABILITY.md): dot-separated
    [subsystem.metric] in snake_case, e.g. [translate.translations],
    [cache.read_misses], [vliw.rollbacks]. Instruments are created lazily
    on first use; reading an instrument that was never touched yields the
    identity value (0 for counters, [None] for gauges/histograms). *)

type t

val create : ?seed:int64 -> unit -> t
(** [seed] feeds the deterministic reservoir sampler used for histogram
    percentiles (default 1). *)

(** {2 Counters} *)

val incr : t -> ?by:int -> string -> unit
(** Add [by] (default 1) to a monotonic counter. Negative increments are
    rejected with [Invalid_argument]. *)

val counter_value : t -> string -> int
(** 0 when the counter was never incremented. *)

val counters : t -> (string * int) list
(** Every counter touched so far, sorted by name (the perf manifest
    snapshots this). *)

(** {2 Gauges} *)

val set_gauge : t -> string -> float -> unit

val gauge_value : t -> string -> float option

(** {2 Histograms} *)

val observe : t -> string -> float -> unit
(** Record one sample into a base-2 log-scale histogram. Also feeds a
    bounded deterministic reservoir from which percentile summaries are
    computed with {!Gb_util.Stats.percentile}. *)

type histogram_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_mean : float;
  h_p50 : float;
  h_p90 : float;
  h_p95 : float;
  h_p99 : float;
  h_buckets : (float * int) list;
      (** (upper bound, samples <= bound in this bucket), non-empty buckets
          only, increasing bounds; the bound of bucket [i>0] is [2^i] *)
}

val histogram_snapshot : t -> string -> histogram_snapshot option

(** {2 Snapshots} *)

val to_json : t -> Gb_util.Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}] with keys
    sorted alphabetically (deterministic output). *)
