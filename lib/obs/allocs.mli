(** Minor-heap allocation accounting for the execution hot path.

    An accumulator over [Gc.minor_words] with pausable exclusion windows:
    {!start} begins counting allocation on the calling domain, {!pause} /
    {!resume} carve out regions whose allocation must not be charged to
    the measured path, and {!stop} returns the counted words. The DBT
    engine brackets its translation entry points ([translate],
    [translate_first_pass], [submit_prefetch]) with pause/resume, so a
    window around a processor run measures {e execution} allocation —
    the interpreter and VLIW pipeline hot loops — with the translation
    pipeline (a separate, cold subsystem that allocates by design)
    excluded. This is what the [alloc.minor_words_per_kinsn.*] manifest
    cells report (see docs/OBSERVABILITY.md).

    An accumulator that was never {!start}ed costs one load and branch
    per pause/resume, so the engine brackets stay on unconditionally.
    [Gc.minor_words] only sees the calling domain's minor heap: work
    shipped to translation worker domains is invisible here, which is
    the intended accounting — only the owning domain's allocation can
    stall the owning domain's hot loop. Each resume itself allocates the
    [Gc.minor_words] float box ({e after} the counter is read), so a
    counted run carries ~2 words of measurement overhead per excluded
    window — noise against any real per-instruction traffic.

    Not domain-safe: an accumulator must be started, paused, resumed and
    stopped by one domain. *)

type t

val create : unit -> t
(** A fresh accumulator, not counting. *)

val start : t -> unit
(** Reset and begin counting from the current [Gc.minor_words]. *)

val stop : t -> float
(** Stop counting and return the words counted since {!start},
    exclusion windows subtracted. 0 if never started. *)

val pause : t -> unit
(** Begin an exclusion window: allocation until the matching {!resume}
    is not counted. Nests; only the outermost pair reads the clock.
    No-op when not counting. *)

val resume : t -> unit
(** Close the innermost exclusion window. No-op when not counting. *)

val counting : t -> bool

val per_kinsn : words:float -> insns:int64 -> float
(** Words per 1000 instructions; 0 when [insns] is 0. *)
