type kind =
  | Translate_start
  | Translate_end of { ok : bool }
  | Trace_formed of { guest_insns : int; branches : int }
  | Load_hoisted of { spec_loads : int; past_branch : int }
  | Poison_flagged of { node : int }
  | Mitigation_applied of { constrained : int; fences : int }
  | Mcb_conflict of { addr : int }
  | Rollback
  | Cache_miss of { addr : int; write : bool }
  | Tier_transition of { tier : string }
  | Transient_line of { addr : int; set_idx : int; dependent : bool }
  | Chain of { target : int; op : [ `Link | `Follow | `Break ] }
  | Verify_violation of { kind : string; bundle : int }
  | Cycle_attrib of { committed : int; overhead : int }
      (** periodic sample of the attribution ledger: cumulative cycles in
          the committed-work bucket vs everything else — rendered as a
          committed-vs-overhead counter lane pair in the Chrome trace *)

type t = { kind : kind; pc : int; region : int; cycle : int64 }

let name = function
  | Translate_start -> "translate_start"
  | Translate_end _ -> "translate_end"
  | Trace_formed _ -> "trace_formed"
  | Load_hoisted _ -> "load_hoisted"
  | Poison_flagged _ -> "poison_flagged"
  | Mitigation_applied _ -> "mitigation_applied"
  | Mcb_conflict _ -> "mcb_conflict"
  | Rollback -> "rollback"
  | Cache_miss _ -> "cache_miss"
  | Tier_transition _ -> "tier_transition"
  | Transient_line _ -> "transient_line"
  | Chain _ -> "chain"
  | Verify_violation _ -> "verify_violation"
  | Cycle_attrib _ -> "cycle_attrib"

let args kind =
  let module J = Gb_util.Json in
  match kind with
  | Translate_start | Rollback -> []
  | Translate_end { ok } -> [ ("ok", J.Bool ok) ]
  | Trace_formed { guest_insns; branches } ->
    [ ("guest_insns", J.Int guest_insns); ("branches", J.Int branches) ]
  | Load_hoisted { spec_loads; past_branch } ->
    [ ("spec_loads", J.Int spec_loads); ("past_branch", J.Int past_branch) ]
  | Poison_flagged { node } -> [ ("node", J.Int node) ]
  | Mitigation_applied { constrained; fences } ->
    [ ("constrained", J.Int constrained); ("fences", J.Int fences) ]
  | Mcb_conflict { addr } -> [ ("addr", J.Int addr) ]
  | Cache_miss { addr; write } ->
    [ ("addr", J.Int addr); ("write", J.Bool write) ]
  | Tier_transition { tier } -> [ ("tier", J.String tier) ]
  | Transient_line { addr; set_idx; dependent } ->
    [
      ("addr", J.Int addr); ("set", J.Int set_idx);
      ("dependent", J.Bool dependent);
    ]
  | Chain { target; op } ->
    let op =
      match op with `Link -> "link" | `Follow -> "follow" | `Break -> "break"
    in
    [ ("target", J.Int target); ("op", J.String op) ]
  | Verify_violation { kind; bundle } ->
    [ ("kind", J.String kind); ("bundle", J.Int bundle) ]
  | Cycle_attrib { committed; overhead } ->
    [ ("committed", J.Int committed); ("overhead", J.Int overhead) ]

let to_json t =
  let module J = Gb_util.Json in
  J.Obj
    ([
       ("event", J.String (name t.kind));
       ("pc", J.Int t.pc);
       ("region", J.Int t.region);
       ("cycle", J.Int (Int64.to_int t.cycle));
     ]
    @ args t.kind)
