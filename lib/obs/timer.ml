type span = { sp_phase : string; sp_start_us : float; sp_dur_us : float }

type acc = { mutable calls : int; mutable total_us : float }

type t = {
  origin : float;  (** Unix.gettimeofday at creation *)
  totals : (string, acc) Hashtbl.t;
  spans : span Ring.t;
}

let create ?(span_capacity = 8192) () =
  {
    origin = Unix.gettimeofday ();
    totals = Hashtbl.create 16;
    spans = Ring.create span_capacity;
  }

let time t phase f =
  let start = Unix.gettimeofday () in
  let record () =
    let stop = Unix.gettimeofday () in
    let dur_us = (stop -. start) *. 1e6 in
    (match Hashtbl.find_opt t.totals phase with
    | Some a ->
      a.calls <- a.calls + 1;
      a.total_us <- a.total_us +. dur_us
    | None -> Hashtbl.add t.totals phase { calls = 1; total_us = dur_us });
    Ring.push t.spans
      { sp_phase = phase; sp_start_us = (start -. t.origin) *. 1e6; sp_dur_us = dur_us }
  in
  Fun.protect ~finally:record f

let add t phase ~start ~dur_us =
  (match Hashtbl.find_opt t.totals phase with
  | Some a ->
    a.calls <- a.calls + 1;
    a.total_us <- a.total_us +. dur_us
  | None -> Hashtbl.add t.totals phase { calls = 1; total_us = dur_us });
  Ring.push t.spans
    { sp_phase = phase; sp_start_us = (start -. t.origin) *. 1e6; sp_dur_us = dur_us }

type total = { t_phase : string; t_calls : int; t_total_us : float }

let totals t =
  Hashtbl.fold
    (fun phase a acc ->
      { t_phase = phase; t_calls = a.calls; t_total_us = a.total_us } :: acc)
    t.totals []
  |> List.sort (fun a b -> compare (b.t_total_us, a.t_phase) (a.t_total_us, b.t_phase))

let spans t = Ring.to_list t.spans

let dropped_spans t = Ring.dropped t.spans
