(** Typed trace events emitted by the DBT engine, the VLIW pipeline, the
    MCB and the cache. Each event carries the guest pc it concerns, the
    region (trace entry pc) it belongs to and the simulated-cycle
    timestamp at which it was recorded. *)

type kind =
  | Translate_start  (** the engine began translating a hot region *)
  | Translate_end of { ok : bool }
  | Trace_formed of { guest_insns : int; branches : int }
  | Load_hoisted of { spec_loads : int; past_branch : int }
      (** speculation the optimizer performed on the freshly built trace:
          MCB-tagged loads and loads free to move above a branch *)
  | Poison_flagged of { node : int }
      (** the poisoning analysis flagged the speculative load at IR node
          [node] (pc = its guest pc) as a Spectre pattern *)
  | Mitigation_applied of { constrained : int; fences : int }
  | Mcb_conflict of { addr : int }
      (** a store overlapped a live speculative-load entry *)
  | Rollback  (** an MCB check failed; the trace exit replayed *)
  | Cache_miss of { addr : int; write : bool }
  | Tier_transition of { tier : string }
      (** a region moved tiers: "block" (first-pass translation installed),
          "trace" (optimized trace installed), "despeculated",
          "retranslate" (stale trace dropped), "evicted" (dropped by the
          code cache under capacity pressure) *)
  | Transient_line of { addr : int; set_idx : int; dependent : bool }
      (** the leakage audit found a cache line (base address [addr], cache
          set [set_idx]) allocated by a transiently executed load that the
          architectural (shadow) execution never touched; [dependent] is
          true when the load's address was derived from speculatively
          loaded data — the Spectre leak condition. pc = the load's guest
          pc. Rendered on its own Chrome-trace track. *)
  | Chain of { target : int; op : [ `Link | `Follow | `Break ] }
      (** trace chaining: a stub of the [region] trace was patched to
          transfer directly into the trace at entry pc [target] ([`Link]),
          the pipeline took such a transfer ([`Follow]), or the link was
          severed because an endpoint was evicted or retranslated
          ([`Break]). pc = the stub's guest target pc. *)
  | Verify_violation of { kind : string; bundle : int }
      (** the post-scheduling translation verifier found a violation of
          the speculation-safety property in an emitted trace: [kind] is
          the {!Gb_verify.Verifier.kind} name, [bundle] the cycle at
          which the offending op was scheduled. pc = the op's guest pc;
          region = the trace's entry. *)
  | Cycle_attrib of { committed : int; overhead : int }
      (** periodic sample of the attribution ledger: cumulative cycles in
          the committed-work bucket vs everything else — rendered as a
          committed-vs-overhead counter lane pair in the Chrome trace *)

type t = {
  kind : kind;
  pc : int;  (** guest pc (or the faulting address for cache events) *)
  region : int;  (** trace entry pc; 0 when not attributable *)
  cycle : int64;  (** simulated cycle at record time *)
}

val name : kind -> string
(** Stable event name, e.g. ["translate_start"], ["mcb_conflict"]. *)

val args : kind -> (string * Gb_util.Json.t) list
(** The kind's payload as JSON fields (excluding pc/region/cycle). *)

val to_json : t -> Gb_util.Json.t
