type counter = { mutable c : int }

type gauge = { mutable g : float }

(* Base-2 log-scale buckets: bucket 0 holds samples <= 1, bucket i holds
   samples in (2^(i-1), 2^i]. 64 buckets cover every finite positive
   magnitude the simulator produces (cycles, bytes, node counts). *)
let n_buckets = 64

let reservoir_capacity = 512

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : int array;
  reservoir : float array;
  mutable filled : int;  (** slots of [reservoir] in use *)
  rng : Gb_util.Rng.t;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  seed : int64;
}

let create ?(seed = 1L) () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
    seed;
  }

let incr t ?(by = 1) name =
  if by < 0 then invalid_arg "Metrics.incr: counters are monotonic";
  match Hashtbl.find_opt t.counters name with
  | Some c -> c.c <- c.c + by
  | None -> Hashtbl.add t.counters name { c = by }

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some c -> c.c | None -> 0

let counters t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun name c acc -> (name, c.c) :: acc) t.counters [])

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g.g <- v
  | None -> Hashtbl.add t.gauges name { g = v }

let gauge_value t name =
  Option.map (fun g -> g.g) (Hashtbl.find_opt t.gauges name)

let bucket_of v =
  if v <= 1. then 0
  else begin
    let i = ref 1 in
    let bound = ref 2. in
    (* [incr] is shadowed by the counter API above *)
    while v > !bound && !i < n_buckets - 1 do
      i := !i + 1;
      bound := !bound *. 2.
    done;
    !i
  end

let observe t name v =
  let h =
    match Hashtbl.find_opt t.histograms name with
    | Some h -> h
    | None ->
      let h =
        {
          count = 0;
          sum = 0.;
          min_v = infinity;
          max_v = neg_infinity;
          buckets = Array.make n_buckets 0;
          reservoir = Array.make reservoir_capacity 0.;
          filled = 0;
          rng = Gb_util.Rng.create t.seed;
        }
      in
      Hashtbl.add t.histograms name h;
      h
  in
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1;
  (* reservoir sampling (Algorithm R): each of the [count] samples ends up
     retained with equal probability, so percentiles stay representative
     of the whole stream, not just its tail *)
  if h.filled < reservoir_capacity then begin
    h.reservoir.(h.filled) <- v;
    h.filled <- h.filled + 1
  end
  else
    let j = Gb_util.Rng.int h.rng h.count in
    if j < reservoir_capacity then h.reservoir.(j) <- v

type histogram_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_mean : float;
  h_p50 : float;
  h_p90 : float;
  h_p95 : float;
  h_p99 : float;
  h_buckets : (float * int) list;
}

let snapshot_of h =
  let samples = Array.to_list (Array.sub h.reservoir 0 h.filled) in
  let pct p = Gb_util.Stats.percentile p samples in
  let bounds i = if i = 0 then 1. else Float.of_int (1 lsl i) in
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then buckets := (bounds i, h.buckets.(i)) :: !buckets
  done;
  {
    h_count = h.count;
    h_sum = h.sum;
    h_min = (if h.count = 0 then 0. else h.min_v);
    h_max = (if h.count = 0 then 0. else h.max_v);
    h_mean = (if h.count = 0 then 0. else h.sum /. float_of_int h.count);
    h_p50 = pct 0.5;
    h_p90 = pct 0.9;
    h_p95 = pct 0.95;
    h_p99 = pct 0.99;
    h_buckets = !buckets;
  }

let histogram_snapshot t name =
  Option.map snapshot_of (Hashtbl.find_opt t.histograms name)

let sorted_bindings tbl =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let to_json t =
  let module J = Gb_util.Json in
  let counters =
    List.map (fun (name, c) -> (name, J.Int c.c)) (sorted_bindings t.counters)
  in
  let gauges =
    List.map (fun (name, g) -> (name, J.Float g.g)) (sorted_bindings t.gauges)
  in
  let histograms =
    List.map
      (fun (name, h) ->
        let s = snapshot_of h in
        ( name,
          J.Obj
            [
              ("count", J.Int s.h_count);
              ("sum", J.Float s.h_sum);
              ("min", J.Float s.h_min);
              ("max", J.Float s.h_max);
              ("mean", J.Float s.h_mean);
              ("p50", J.Float s.h_p50);
              ("p90", J.Float s.h_p90);
              ("p95", J.Float s.h_p95);
              ("p99", J.Float s.h_p99);
              ( "buckets",
                J.List
                  (List.map
                     (fun (le, n) ->
                       J.Obj [ ("le", J.Float le); ("count", J.Int n) ])
                     s.h_buckets) );
            ] ))
      (sorted_bindings t.histograms)
  in
  J.Obj
    [
      ("counters", J.Obj counters);
      ("gauges", J.Obj gauges);
      ("histograms", J.Obj histograms);
    ]
