let guest_pid = 1

let host_pid = 2

let leakage_pid = 3

let process_meta pid name =
  let module J = Gb_util.Json in
  J.Obj
    [
      ("name", J.String "process_name");
      ("ph", J.String "M");
      ("pid", J.Int pid);
      ("tid", J.Int 0);
      ("args", J.Obj [ ("name", J.String name) ]);
    ]

let meta_events =
  [
    process_meta guest_pid "guest (ts = simulated cycles)";
    process_meta host_pid "dbt-host (ts = wall-clock us)";
  ]

(* Transient cache lines found by the leakage audit live on their own
   process so the security signal is one self-contained track group, not
   interleaved with the ordinary guest events. *)
let is_transient (e : Event.t) =
  match e.Event.kind with Event.Transient_line _ -> true | _ -> false

(* One track per region keeps a region's translate/rollback/miss history
   on its own horizontal line. tid 0 is reserved for unattributed events. *)
let thread_name_events ~pid events =
  let module J = Gb_util.Json in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (e : Event.t) ->
      if e.Event.region <> 0 && not (Hashtbl.mem seen e.Event.region) then
        Hashtbl.add seen e.Event.region ())
    events;
  Hashtbl.fold
    (fun region () acc ->
      J.Obj
        [
          ("name", J.String "thread_name");
          ("ph", J.String "M");
          ("pid", J.Int pid);
          ("tid", J.Int region);
          ("args", J.Obj [ ("name", J.String (Printf.sprintf "region 0x%x" region)) ]);
        ]
      :: acc)
    seen []
  |> List.sort compare

let guest_event ?(pid = guest_pid) (e : Event.t) =
  let module J = Gb_util.Json in
  J.Obj
    [
      ("name", J.String (Event.name e.Event.kind));
      ("cat", J.String (if pid = leakage_pid then "leakage" else "guest"));
      ("ph", J.String "i");
      ("s", J.String "t");  (* thread-scoped instant *)
      ("ts", J.Int (Int64.to_int e.Event.cycle));
      ("pid", J.Int pid);
      ("tid", J.Int e.Event.region);
      ( "args",
        J.Obj
          ([ ("pc", J.Int e.Event.pc); ("region", J.Int e.Event.region) ]
          @ Event.args e.Event.kind) );
    ]

let host_span (s : Timer.span) =
  let module J = Gb_util.Json in
  J.Obj
    [
      ("name", J.String s.Timer.sp_phase);
      ("cat", J.String "dbt");
      ("ph", J.String "X");
      ("ts", J.Float s.Timer.sp_start_us);
      ("dur", J.Float s.Timer.sp_dur_us);
      ("pid", J.Int host_pid);
      ("tid", J.Int 1);
    ]

let to_json ~events ~spans =
  let module J = Gb_util.Json in
  let transient, ordinary = List.partition is_transient events in
  let leakage_meta =
    if transient = [] then []
    else
      process_meta leakage_pid "leakage (transient cache lines)"
      :: thread_name_events ~pid:leakage_pid transient
  in
  J.Obj
    [
      ( "traceEvents",
        J.List
          (meta_events
          @ leakage_meta
          @ thread_name_events ~pid:guest_pid ordinary
          @ List.map (guest_event ~pid:guest_pid) ordinary
          @ List.map (guest_event ~pid:leakage_pid) transient
          @ List.map host_span spans) );
      ("displayTimeUnit", J.String "ms");
    ]
