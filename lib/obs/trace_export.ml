let guest_pid = 1

let host_pid = 2

let leakage_pid = 3

let attrib_pid = 4

let process_meta pid name =
  let module J = Gb_util.Json in
  J.Obj
    [
      ("name", J.String "process_name");
      ("ph", J.String "M");
      ("pid", J.Int pid);
      ("tid", J.Int 0);
      ("args", J.Obj [ ("name", J.String name) ]);
    ]

let meta_events =
  [
    process_meta guest_pid "guest (ts = simulated cycles)";
    process_meta host_pid "dbt-host (ts = wall-clock us)";
  ]

(* Transient cache lines found by the leakage audit live on their own
   process so the security signal is one self-contained track group, not
   interleaved with the ordinary guest events. *)
let is_transient (e : Event.t) =
  match e.Event.kind with Event.Transient_line _ -> true | _ -> false

(* Attribution samples render as a Chrome counter track ("ph":"C"): two
   stacked lanes, cycles doing committed work vs cycles of overhead, so
   the speculative/mitigation cost is visible as a band over time. *)
let is_attrib (e : Event.t) =
  match e.Event.kind with Event.Cycle_attrib _ -> true | _ -> false

let counter_event (e : Event.t) =
  let module J = Gb_util.Json in
  J.Obj
    [
      ("name", J.String "cycles (committed vs overhead)");
      ("cat", J.String "attrib");
      ("ph", J.String "C");
      ("ts", J.Int (Int64.to_int e.Event.cycle));
      ("pid", J.Int attrib_pid);
      ("tid", J.Int 0);
      ("args", J.Obj (Event.args e.Event.kind));
    ]

(* One track per region keeps a region's translate/rollback/miss history
   on its own horizontal line. tid 0 is reserved for unattributed events. *)
let thread_name_events ~pid events =
  let module J = Gb_util.Json in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (e : Event.t) ->
      if e.Event.region <> 0 && not (Hashtbl.mem seen e.Event.region) then
        Hashtbl.add seen e.Event.region ())
    events;
  Hashtbl.fold
    (fun region () acc ->
      J.Obj
        [
          ("name", J.String "thread_name");
          ("ph", J.String "M");
          ("pid", J.Int pid);
          ("tid", J.Int region);
          ("args", J.Obj [ ("name", J.String (Printf.sprintf "region 0x%x" region)) ]);
        ]
      :: acc)
    seen []
  |> List.sort compare

let guest_event ?(pid = guest_pid) (e : Event.t) =
  let module J = Gb_util.Json in
  J.Obj
    [
      ("name", J.String (Event.name e.Event.kind));
      ("cat", J.String (if pid = leakage_pid then "leakage" else "guest"));
      ("ph", J.String "i");
      ("s", J.String "t");  (* thread-scoped instant *)
      ("ts", J.Int (Int64.to_int e.Event.cycle));
      ("pid", J.Int pid);
      ("tid", J.Int e.Event.region);
      ( "args",
        J.Obj
          ([ ("pc", J.Int e.Event.pc); ("region", J.Int e.Event.region) ]
          @ Event.args e.Event.kind) );
    ]

let host_span (s : Timer.span) =
  let module J = Gb_util.Json in
  J.Obj
    [
      ("name", J.String s.Timer.sp_phase);
      ("cat", J.String "dbt");
      ("ph", J.String "X");
      ("ts", J.Float s.Timer.sp_start_us);
      ("dur", J.Float s.Timer.sp_dur_us);
      ("pid", J.Int host_pid);
      ("tid", J.Int 1);
    ]

let to_json ?(dropped = 0) ~events ~spans () =
  let module J = Gb_util.Json in
  let transient, rest = List.partition is_transient events in
  let attrib, ordinary = List.partition is_attrib rest in
  let leakage_meta =
    if transient = [] then []
    else
      process_meta leakage_pid "leakage (transient cache lines)"
      :: thread_name_events ~pid:leakage_pid transient
  in
  let attrib_meta =
    if attrib = [] then []
    else [ process_meta attrib_pid "cycle attribution (committed vs overhead)" ]
  in
  J.Obj
    ([
       ( "traceEvents",
         J.List
           (meta_events
           @ leakage_meta
           @ attrib_meta
           @ thread_name_events ~pid:guest_pid ordinary
           @ List.map (guest_event ~pid:guest_pid) ordinary
           @ List.map (guest_event ~pid:leakage_pid) transient
           @ List.map counter_event attrib
           @ List.map host_span spans) );
       ("displayTimeUnit", J.String "ms");
     ]
    (* the ring wrapped: record how many events this trace is missing so
       a truncated export is self-describing *)
    @ if dropped > 0 then [ ("droppedEvents", J.Int dropped) ] else [])
