let guest_pid = 1

let host_pid = 2

let meta_events =
  let module J = Gb_util.Json in
  let process pid name =
    J.Obj
      [
        ("name", J.String "process_name");
        ("ph", J.String "M");
        ("pid", J.Int pid);
        ("tid", J.Int 0);
        ("args", J.Obj [ ("name", J.String name) ]);
      ]
  in
  [
    process guest_pid "guest (ts = simulated cycles)";
    process host_pid "dbt-host (ts = wall-clock us)";
  ]

(* One track per region keeps a region's translate/rollback/miss history
   on its own horizontal line. tid 0 is reserved for unattributed events. *)
let thread_name_events events =
  let module J = Gb_util.Json in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (e : Event.t) ->
      if e.Event.region <> 0 && not (Hashtbl.mem seen e.Event.region) then
        Hashtbl.add seen e.Event.region ())
    events;
  Hashtbl.fold
    (fun region () acc ->
      J.Obj
        [
          ("name", J.String "thread_name");
          ("ph", J.String "M");
          ("pid", J.Int guest_pid);
          ("tid", J.Int region);
          ("args", J.Obj [ ("name", J.String (Printf.sprintf "region 0x%x" region)) ]);
        ]
      :: acc)
    seen []
  |> List.sort compare

let guest_event (e : Event.t) =
  let module J = Gb_util.Json in
  J.Obj
    [
      ("name", J.String (Event.name e.Event.kind));
      ("cat", J.String "guest");
      ("ph", J.String "i");
      ("s", J.String "t");  (* thread-scoped instant *)
      ("ts", J.Int (Int64.to_int e.Event.cycle));
      ("pid", J.Int guest_pid);
      ("tid", J.Int e.Event.region);
      ( "args",
        J.Obj
          ([ ("pc", J.Int e.Event.pc); ("region", J.Int e.Event.region) ]
          @ Event.args e.Event.kind) );
    ]

let host_span (s : Timer.span) =
  let module J = Gb_util.Json in
  J.Obj
    [
      ("name", J.String s.Timer.sp_phase);
      ("cat", J.String "dbt");
      ("ph", J.String "X");
      ("ts", J.Float s.Timer.sp_start_us);
      ("dur", J.Float s.Timer.sp_dur_us);
      ("pid", J.Int host_pid);
      ("tid", J.Int 1);
    ]

let to_json ~events ~spans =
  let module J = Gb_util.Json in
  J.Obj
    [
      ( "traceEvents",
        J.List
          (meta_events
          @ thread_name_events events
          @ List.map guest_event events
          @ List.map host_span spans) );
      ("displayTimeUnit", J.String "ms");
    ]
