type 'a t = {
  data : 'a option array;
  mutable next : int;  (** slot the next push writes *)
  mutable pushed : int;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be > 0";
  { data = Array.make capacity None; next = 0; pushed = 0 }

let capacity t = Array.length t.data

let push t x =
  t.data.(t.next) <- Some x;
  t.next <- (t.next + 1) mod Array.length t.data;
  t.pushed <- t.pushed + 1

let length t = min t.pushed (Array.length t.data)

let pushed t = t.pushed

let dropped t = max 0 (t.pushed - Array.length t.data)

let iter f t =
  let cap = Array.length t.data in
  let n = length t in
  (* oldest element: [next - n] modulo capacity *)
  let start = ((t.next - n) mod cap + cap) mod cap in
  for i = 0 to n - 1 do
    match t.data.((start + i) mod cap) with
    | Some x -> f x
    | None -> ()
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc

let clear t =
  Array.fill t.data 0 (Array.length t.data) None;
  t.next <- 0;
  t.pushed <- 0
