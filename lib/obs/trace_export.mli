(** Chrome [trace_event]-format JSON export, loadable directly in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    Two synthetic processes keep the two timebases apart:

    - pid 1, "guest": the typed simulator events as instant events whose
      timestamp is the {e simulated cycle} (displayed as a microsecond);
      one thread (tid) per region, so each translated region gets its own
      track.
    - pid 2, "dbt-host": the wall-clock phase spans of the DBT software
      layer as complete ("X") events in real microseconds since sink
      creation.
    - pid 3, "leakage": transient cache lines found by the leakage audit.
    - pid 4, "cycle attribution": {!Event.Cycle_attrib} samples as a
      counter ("C") track — a committed-vs-overhead cycle lane pair. *)

val to_json :
  ?dropped:int ->
  events:Event.t list ->
  spans:Timer.span list ->
  unit ->
  Gb_util.Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms", ...}]. [dropped > 0]
    (events lost to ring wrap-around) adds a top-level ["droppedEvents"]
    count so truncated traces are self-describing. *)
