(** Chrome [trace_event]-format JSON export, loadable directly in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    Two synthetic processes keep the two timebases apart:

    - pid 1, "guest": the typed simulator events as instant events whose
      timestamp is the {e simulated cycle} (displayed as a microsecond);
      one thread (tid) per region, so each translated region gets its own
      track.
    - pid 2, "dbt-host": the wall-clock phase spans of the DBT software
      layer as complete ("X") events in real microseconds since sink
      creation. *)

val to_json :
  events:Event.t list -> spans:Timer.span list -> Gb_util.Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms", ...}]. *)
