type t = {
  mutable counting : bool;
  mutable mark : float;  (* [Gc.minor_words] at the last start/resume *)
  mutable counted : float;  (* words folded in by pause/stop *)
  mutable depth : int;  (* exclusion-window nesting; counted iff 0 *)
}

let create () = { counting = false; mark = 0.; counted = 0.; depth = 0 }

let start t =
  t.counted <- 0.;
  t.depth <- 0;
  t.counting <- true;
  t.mark <- Gc.minor_words ()

let stop t =
  if t.counting then begin
    if t.depth = 0 then t.counted <- t.counted +. (Gc.minor_words () -. t.mark);
    t.counting <- false
  end;
  t.counted

(* Only the outermost pause/resume pair touches the clock: a nested
   exclusion (translate triggering a first pass) is already inside an
   open window. *)
let pause t =
  if t.counting then begin
    if t.depth = 0 then t.counted <- t.counted +. (Gc.minor_words () -. t.mark);
    t.depth <- t.depth + 1
  end

let resume t =
  if t.counting then begin
    t.depth <- t.depth - 1;
    if t.depth = 0 then t.mark <- Gc.minor_words ()
  end

let counting t = t.counting

let per_kinsn ~words ~insns =
  if insns = 0L then 0. else 1000. *. words /. Int64.to_float insns
