type divergence = {
  d_pc : int;
  d_region : int option;
  d_tier : string;
  d_kind : string;
  d_detail : string;
}

type report = {
  divergence : divergence option;
  syncs : int;
  injected : int;
  recovered : int;
  ref_insns : int64;
  dbt_result : Gb_system.Processor.result option;
  trap : string option;
}

let clean r =
  r.divergence = None && r.trap = None && r.injected = r.recovered

let pp_divergence ppf d =
  Format.fprintf ppf "%s divergence at pc 0x%x%s [%s]: %s" d.d_kind d.d_pc
    (match d.d_region with
    | Some r -> Printf.sprintf " (region 0x%x)" r
    | None -> "")
    d.d_tier d.d_detail

(* How far the reference may run to reach one sync target. A single trace
   pass covers at most a few hundred guest instructions, but rollbacks
   re-execute and cold stretches between translated regions are unbounded
   in principle; a generous budget keeps a genuine divergence (reference
   never reaches the target state) detectable without hanging. *)
let sync_fuel = 10_000_000

(* full-memory compares are the backstop against stray DBT writes outside
   the reference write set; every [full_every] syncs plus once at the end *)
let default_full_every = 512

let page_bits = 8

let run ?(config = Gb_system.Processor.default_config)
    ?(obs = Gb_obs.Sink.noop) ?inject ?(seed = 1L)
    ?(full_compare_every = default_full_every) program =
  if Gb_obs.Sink.is_active obs then
    Gb_obs.Sink.incr obs ~by:0 "diff.divergences";
  (* --- reference side: its own memory image, pure timing hooks -------- *)
  let ref_mem = Gb_riscv.Mem.create ~size:config.Gb_system.Processor.mem_size in
  Gb_riscv.Asm.load ref_mem program;
  let mem_size = Gb_riscv.Mem.size ref_mem in
  (* pages the reference wrote since the last sync: the per-sync compare
     set (a full compare every so often catches everything else) *)
  let dirty = Hashtbl.create 64 in
  let note_write ~addr ~size =
    if addr >= 0 && size > 0 then begin
      let last = min (addr + size - 1) (mem_size - 1) in
      for p = addr lsr page_bits to last lsr page_bits do
        Hashtbl.replace dirty p ()
      done
    end
  in
  let ref_hooks =
    {
      Gb_riscv.Interp.mem_extra =
        (fun ~addr ~size ~write ->
          if write then note_write ~addr ~size;
          0);
      flush_line = ignore;
    }
  in
  let ref_interp =
    Gb_riscv.Interp.create ~hooks:ref_hooks ~mem:ref_mem
      ~pc:program.Gb_riscv.Asm.entry ()
  in
  (* --- device under test --------------------------------------------- *)
  let inj =
    Option.map (fun spec -> Gb_system.Inject.create ~obs ~seed spec) inject
  in
  let proc = Gb_system.Processor.create ~config ~obs ?inject:inj program in
  let inj = Gb_system.Processor.inject proc in
  let dbt_interp = Gb_system.Processor.interp proc in
  let dbt_mem = Gb_system.Processor.mem proc in
  let dbt_regs = dbt_interp.Gb_riscv.Interp.regs in
  let ref_regs = ref_interp.Gb_riscv.Interp.regs in
  (* Timing record/replay: rdcycle results observed by the DBT run (in
     guest program order on both tiers — see {!Gb_vliw.Machine}) are fed
     to the reference's rdcycles, so timing is an input of the
     differential run, not compared state. *)
  let cycles = Queue.create () in
  let replay_starved = ref false in
  dbt_interp.Gb_riscv.Interp.rdcycle_hook <-
    Some
      (fun v ->
        Queue.add v cycles;
        v);
  (Gb_system.Processor.machine proc).Gb_vliw.Machine.rdcycle_hook <-
    Some
      (fun v ->
        Queue.add v cycles;
        v);
  ref_interp.Gb_riscv.Interp.rdcycle_hook <-
    Some
      (fun v ->
        match Queue.take_opt cycles with
        | Some recorded -> recorded
        | None ->
          (* the reference executed a rdcycle the DBT run never did *)
          replay_starved := true;
          v);
  (* --- divergence bookkeeping ---------------------------------------- *)
  let divergence = ref None in
  let syncs = ref 0 in
  let tier_of region =
    match
      Gb_dbt.Code_cache.peek
        (Gb_dbt.Engine.code_cache (Gb_system.Processor.engine proc))
        region
    with
    | Some e -> (
      match e.Gb_dbt.Code_cache.e_tier with
      | Gb_dbt.Code_cache.Block -> "block"
      | Gb_dbt.Code_cache.Trace -> "trace")
    | None -> "interp"
  in
  let record ~pc ~region ~tier ~kind detail =
    if !divergence = None then begin
      divergence :=
        Some
          { d_pc = pc; d_region = region; d_tier = tier; d_kind = kind;
            d_detail = detail };
      Gb_obs.Sink.incr obs "diff.divergences"
    end
  in
  let regs_mismatch () =
    (* x0 is architecturally zero on both sides; start at x1 like the
       existing trace-vs-interpreter oracle tests *)
    let rec go i =
      if i >= 32 then None
      else if Int64.equal ref_regs.(i) dbt_regs.(i) then go (i + 1)
      else Some i
    in
    go 1
  in
  let compare_range ~pc ~region ~tier ~what addr len =
    if
      !divergence = None
      && Gb_riscv.Mem.read_bytes ref_mem ~addr ~len
         <> Gb_riscv.Mem.read_bytes dbt_mem ~addr ~len
    then
      record ~pc ~region ~tier ~kind:"mem"
        (Printf.sprintf "committed memory differs in %s [0x%x,0x%x)" what
           addr (addr + len))
  in
  let compare_dirty ~pc ~region ~tier =
    Hashtbl.iter
      (fun p () ->
        compare_range ~pc ~region ~tier ~what:"dirty page"
          (p lsl page_bits)
          (min (1 lsl page_bits) (mem_size - (p lsl page_bits))))
      dirty;
    Hashtbl.reset dirty
  in
  let compare_full ~pc ~region ~tier =
    compare_range ~pc ~region ~tier ~what:"full image" 0 mem_size
  in
  let compare_output ~pc ~region ~tier =
    if
      !divergence = None
      && Buffer.contents ref_interp.Gb_riscv.Interp.output
         <> Buffer.contents dbt_interp.Gb_riscv.Interp.output
    then
      record ~pc ~region ~tier ~kind:"output"
        (Printf.sprintf "output buffers differ (%d vs %d bytes)"
           (Buffer.length ref_interp.Gb_riscv.Interp.output)
           (Buffer.length dbt_interp.Gb_riscv.Interp.output))
  in
  (* Advance the reference until it reaches the target pc with a matching
     register file. Instruction counts cannot drive this lockstep: the
     machine's guest_insns is a full-pass upper estimate on side exits
     (documented in {!Gb_vliw.Machine}), so state equality is the sync
     criterion. *)
  let advance_to ~region ~tier target =
    let rec go fuel =
      if
        ref_interp.Gb_riscv.Interp.pc = target && regs_mismatch () = None
      then true
      else if fuel <= 0 then begin
        record ~pc:target ~region:(Some region) ~tier ~kind:"sync"
          (Printf.sprintf
             "reference never reached pc 0x%x with matching registers \
              (stopped at pc 0x%x%s)"
             target ref_interp.Gb_riscv.Interp.pc
             (match regs_mismatch () with
             | Some r when ref_interp.Gb_riscv.Interp.pc = target ->
               Printf.sprintf "; x%d = 0x%Lx vs 0x%Lx" r ref_regs.(r)
                 dbt_regs.(r)
             | _ -> ""));
        false
      end
      else
        match Gb_riscv.Interp.step ref_interp with
        | si ->
          if si.Gb_riscv.Interp.s_exit <> None then begin
            record ~pc:target ~region:(Some region) ~tier ~kind:"sync"
              (Printf.sprintf
                 "reference exited at pc 0x%x before reaching pc 0x%x"
                 si.Gb_riscv.Interp.s_pc target);
            false
          end
          else go (fuel - 1)
        | exception Gb_riscv.Interp.Trap m ->
          record ~pc:target ~region:(Some region) ~tier ~kind:"trap"
            (Printf.sprintf "reference trapped during sync: %s" m);
          false
        | exception Gb_riscv.Mem.Fault a ->
          record ~pc:target ~region:(Some region) ~tier ~kind:"trap"
            (Printf.sprintf "reference memory fault at 0x%x during sync" a);
          false
    in
    go sync_fuel
  in
  let sync (info : Gb_vliw.Pipeline.exit_info) =
    if !divergence = None then begin
      incr syncs;
      let region = info.Gb_vliw.Pipeline.exit_entry in
      let tier = tier_of region in
      let target = info.Gb_vliw.Pipeline.next_pc in
      if advance_to ~region ~tier target then begin
        compare_dirty ~pc:target ~region:(Some region) ~tier;
        compare_output ~pc:target ~region:(Some region) ~tier;
        if !syncs mod full_compare_every = 0 then
          compare_full ~pc:target ~region:(Some region) ~tier;
        if !replay_starved then
          record ~pc:target ~region:(Some region) ~tier ~kind:"sync"
            "reference executed more rdcycles than the DBT run";
        (* reference and DBT state agree: everything injected so far has
           provably been recovered from *)
        if !divergence = None then
          Option.iter Gb_system.Inject.mark_all_recovered inj
      end
    end
  in
  Gb_system.Processor.set_on_trace_exit proc sync;
  (* --- run both sides ------------------------------------------------- *)
  let dbt_result, trap =
    match Gb_system.Processor.run proc with
    | r -> (Some r, None)
    | exception Gb_riscv.Interp.Trap m -> (None, Some m)
    | exception Gb_riscv.Mem.Fault a ->
      (None, Some (Printf.sprintf "memory fault at 0x%x" a))
  in
  (match (trap, !divergence) with
  | Some m, None ->
    (* did the reference trap identically? equivalence of failures is
       still equivalence *)
    let ref_verdict =
      match
        Gb_riscv.Interp.run
          ~max_insns:
            (Int64.add ref_interp.Gb_riscv.Interp.insn_count
               (Int64.of_int sync_fuel))
          ref_interp
      with
      | code -> Printf.sprintf "reference exited with code %d" code
      | exception Gb_riscv.Interp.Trap m' ->
        if m = m' then "" else Printf.sprintf "reference trapped: %s" m'
      | exception Gb_riscv.Mem.Fault a ->
        Printf.sprintf "reference memory fault at 0x%x" a
    in
    if ref_verdict <> "" then
      record ~pc:dbt_interp.Gb_riscv.Interp.pc ~region:None ~tier:"end"
        ~kind:"trap"
        (Printf.sprintf "DBT run trapped (%s) but %s" m ref_verdict)
  | None, None -> (
    let dbt = Option.get dbt_result in
    (* final sync: reference runs to its own exit, then every piece of
       architectural state must agree *)
    match
      Gb_riscv.Interp.run
        ~max_insns:
          (Int64.add ref_interp.Gb_riscv.Interp.insn_count
             (Int64.of_int sync_fuel))
        ref_interp
    with
    | exception Gb_riscv.Interp.Trap m ->
      record ~pc:ref_interp.Gb_riscv.Interp.pc ~region:None ~tier:"end"
        ~kind:"trap"
        (Printf.sprintf "DBT run exited cleanly but reference trapped: %s" m)
    | exception Gb_riscv.Mem.Fault a ->
      record ~pc:ref_interp.Gb_riscv.Interp.pc ~region:None ~tier:"end"
        ~kind:"trap"
        (Printf.sprintf
           "DBT run exited cleanly but reference faulted at 0x%x" a)
    | ref_exit ->
      let pc = ref_interp.Gb_riscv.Interp.pc in
      if ref_exit <> dbt.Gb_system.Processor.exit_code then
        record ~pc ~region:None ~tier:"end" ~kind:"exit"
          (Printf.sprintf "exit code %d (reference) vs %d (DBT)" ref_exit
             dbt.Gb_system.Processor.exit_code);
      (match regs_mismatch () with
      | Some r ->
        record ~pc ~region:None ~tier:"end" ~kind:"reg"
          (Printf.sprintf "x%d = 0x%Lx (reference) vs 0x%Lx (DBT)" r
             ref_regs.(r) dbt_regs.(r))
      | None -> ());
      compare_output ~pc ~region:None ~tier:"end";
      compare_full ~pc ~region:None ~tier:"end";
      if !replay_starved then
        record ~pc ~region:None ~tier:"end" ~kind:"sync"
          "reference executed more rdcycles than the DBT run";
      (* guest insn counts are deliberately NOT compared: the machine's
         guest_insns is an estimate in both directions — a full-pass
         over-count on early side exits, an under-count where the trace
         builder folds unconditional jumps out of the trace — so it
         cannot witness a divergence. State comparison is the gate. *)
      if !divergence = None then
        Option.iter Gb_system.Inject.mark_all_recovered inj)
  | _, Some _ -> ());
  {
    divergence = !divergence;
    syncs = !syncs;
    injected =
      (match inj with Some i -> Gb_system.Inject.injected i | None -> 0);
    recovered =
      (match inj with Some i -> Gb_system.Inject.recovered i | None -> 0);
    ref_insns = ref_interp.Gb_riscv.Interp.insn_count;
    dbt_result;
    trap;
  }

let run_kernel ?config ?obs ?inject ?seed ?full_compare_every program =
  run ?config ?obs ?inject ?seed ?full_compare_every
    (Gb_kernelc.Compile.assemble program)
