(** Differential execution oracle.

    Runs a guest program twice — once on a standalone reference
    interpreter over its own copy of memory, once on the full DBT
    processor — and compares architectural state at every trace exit and
    at program end. Any disagreement in committed registers, committed
    memory, the output buffer or the exit code is a {!divergence},
    attributed to the guest pc, code-cache region and translation tier
    where it was first observed.

    {2 Synchronisation}

    At each trace exit the reference is advanced until its pc equals the
    exit's [next_pc] {e and} its register file matches the shared one
    (instruction counts cannot drive the lockstep: the machine's
    [guest_insns] is a full-pass upper estimate on side exits). Rollback
    exits synchronise immediately — the DBT state reverted to the
    previous sync point, where the reference already is.

    {2 Timing}

    Guest programs read [rdcycle], and reference timing necessarily
    differs from DBT timing, so timing is made a run {e input} rather
    than compared state: the oracle records every rdcycle result the DBT
    run observes (committed rdcycles execute in guest program order on
    both tiers — they are pinned barrier nodes in the DFG) and replays
    the recorded stream into the reference interpreter. This is what
    lets timing-dependent attack workloads pass the zero-divergence
    gate.

    {2 Fault injection}

    When an {!Gb_system.Inject} controller is armed (explicitly or via
    [GHOSTBUSTERS_INJECT]), every sync point where the two sides agree
    marks all faults injected so far as recovered; the [clean] predicate
    then demands [injected = recovered]. Under the unsound
    [mcb-suppress] kind the oracle is instead expected to {e detect} the
    divergence (sensitivity control). *)

type divergence = {
  d_pc : int;  (** guest pc where the mismatch was observed *)
  d_region : int option;  (** code-cache region (entry pc), when known *)
  d_tier : string;  (** ["trace"], ["block"], ["interp"] or ["end"] *)
  d_kind : string;
      (** ["reg"], ["mem"], ["output"], ["exit"], ["sync"] or ["trap"] *)
  d_detail : string;  (** human-readable specifics *)
}

type report = {
  divergence : divergence option;  (** first divergence, if any *)
  syncs : int;  (** trace-exit synchronisation points compared *)
  injected : int;  (** faults fired by the controller *)
  recovered : int;  (** faults proven recovered at a later agreement *)
  ref_insns : int64;  (** instructions the reference executed *)
  dbt_result : Gb_system.Processor.result option;
      (** [None] when the DBT run trapped *)
  trap : string option;  (** DBT-side trap message, if it trapped *)
}

val clean : report -> bool
(** No divergence, no trap, and every injected fault recovered. *)

val pp_divergence : Format.formatter -> divergence -> unit

val run :
  ?config:Gb_system.Processor.config ->
  ?obs:Gb_obs.Sink.t ->
  ?inject:Gb_system.Inject.spec ->
  ?seed:int64 ->
  ?full_compare_every:int ->
  Gb_riscv.Asm.program ->
  report
(** Differentially execute one program. [inject] arms a fault controller
    with [seed] (default 1) on the DBT side only; when omitted, a
    controller may still be armed from [GHOSTBUSTERS_INJECT] by
    {!Gb_system.Processor.create} — the report accounts for it either
    way. Dirty reference pages are compared at every sync; a
    full-memory compare runs every [full_compare_every] syncs (default
    512) and always at program end. [obs] receives [diff.divergences]
    and the controller's [fault.*] counters. *)

val run_kernel :
  ?config:Gb_system.Processor.config ->
  ?obs:Gb_obs.Sink.t ->
  ?inject:Gb_system.Inject.spec ->
  ?seed:int64 ->
  ?full_compare_every:int ->
  Gb_kernelc.Ast.program ->
  report
(** {!run} over an assembled kernelc program. *)
