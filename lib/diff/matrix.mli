(** The differential gate matrix: {!Oracle} runs over the attack suite
    (every mitigation mode) and the Polybench kernels, each repeated
    under every fault-injection variant, plus the oracle-sensitivity
    negative control. This is the programmatic core of the
    [ghostbusters diff] CLI subcommand, the E10 bench experiment and the
    CI gate. *)

type row = {
  r_workload : string;  (** ["spectre-v1"], ["polybench:matmul"], ... *)
  r_mode : string;  (** mitigation mode, or ["default"] for kernels *)
  r_inject : string;  (** {!Gb_system.Inject.spec_name}, or ["none"] *)
  r_seed : int64;
  r_clean : bool;
  r_divergence : string option;  (** rendered first divergence *)
  r_syncs : int;
  r_injected : int;
  r_recovered : int;
  r_ref_insns : int64;
}

type t = {
  rows : row list;
  divergences : int;  (** diverging rows, sensitivity control excluded *)
  unrecovered : int;
      (** injected-but-never-recovered faults across sound rows *)
  sensitivity_detected : bool;
      (** the unsound [mcb-suppress] control produced a detected
          divergence — proof the oracle is not vacuously green *)
  seed : int64;
}

val default_attacks : string list
(** ["spectre-v1"; "spectre-v4"]. *)

val default_injects : Gb_system.Inject.spec option list
(** No injection, then each recoverable kind at its default rate. *)

val attack_program : string -> Gb_kernelc.Ast.program option

val inject_name : Gb_system.Inject.spec option -> string

val run :
  ?obs:Gb_obs.Sink.t ->
  ?seed:int64 ->
  ?workers:int ->
  ?attacks:string list ->
  ?modes:Gb_core.Mitigation.mode list ->
  ?kernels:string list ->
  ?injects:Gb_system.Inject.spec option list ->
  unit ->
  t
(** Run the matrix: each attack under every mitigation mode and each
    Polybench kernel under the default configuration, once per inject
    variant, then the sensitivity control. [modes] (default
    {!Gb_core.Mitigation.all_modes}) restricts the attack cells — the
    CLI's [--modes] filter; kernel cells and the sensitivity control are
    unaffected. [kernels] defaults to the whole Polybench suite. Raises
    [Invalid_argument] on an unknown attack or kernel name.

    [workers] (default 0) shards the cells across a {!Gb_dbt.Workers}
    domain pool. Cells are self-contained (each builds its own
    processors and sinks) and the shard map preserves order, so the
    result — every row, verdict and aggregate — is identical for every
    [workers] value; only wall-clock time changes. Ignored when an
    active [obs] is given: an external sink is shared mutable state, so
    observability forces the serial path. *)

val pass : t -> bool
(** Zero divergences, zero unrecovered faults, sensitivity control
    detected. *)

val to_json : t -> Gb_util.Json.t

val pp_summary : Format.formatter -> t -> unit
