type row = {
  r_workload : string;
  r_mode : string;
  r_inject : string;
  r_seed : int64;
  r_clean : bool;
  r_divergence : string option;
  r_syncs : int;
  r_injected : int;
  r_recovered : int;
  r_ref_insns : int64;
}

type t = {
  rows : row list;
  divergences : int;
  unrecovered : int;
  sensitivity_detected : bool;
  seed : int64;
}

let default_attacks = [ "spectre-v1"; "spectre-v4" ]

let attack_program name =
  match name with
  | "spectre-v1" -> Some (Gb_attack.Spectre_v1.program ~secret:"SQUASH" ())
  | "spectre-v4" -> Some (Gb_attack.Spectre_v4.program ~secret:"SQUASH" ())
  | _ -> None

let default_injects =
  None
  :: List.filter_map
       (fun k ->
         if Gb_system.Inject.recoverable k then
           Some (Some [ (k, Gb_system.Inject.default_rate k) ])
         else None)
       Gb_system.Inject.all_kinds

let inject_name = function
  | None -> "none"
  | Some spec -> Gb_system.Inject.spec_name spec

let row_of ~workload ~mode ~inject ~seed (r : Oracle.report) =
  {
    r_workload = workload;
    r_mode = mode;
    r_inject = inject_name inject;
    r_seed = seed;
    r_clean = Oracle.clean r;
    r_divergence =
      Option.map
        (Format.asprintf "%a" Oracle.pp_divergence)
        r.Oracle.divergence;
    r_syncs = r.Oracle.syncs;
    r_injected = r.Oracle.injected;
    r_recovered = r.Oracle.recovered;
    r_ref_insns = r.Oracle.ref_insns;
  }

(* The oracle-sensitivity negative control: arm the one unsound kind
   (suppressed MCB conflicts commit stale speculative values) on the
   workload with real store-to-load conflicts — Spectre v4 under the
   unsafe mode, whose speculated loads genuinely misorder against stores
   and roll back — and check that the oracle DETECTS the corruption. One
   seed may not land a suppression on a value-changing conflict, so
   several are tried. *)
let sensitivity_check ?obs ~seed () =
  let program = Gb_attack.Spectre_v4.program ~secret:"SQUASH" () in
  let config = Gb_system.Processor.config_for Gb_core.Mitigation.Unsafe in
  let rec try_seed i =
    if i >= 8 then (false, [])
    else
      let s = Int64.add seed (Int64.of_int i) in
      let r =
        Oracle.run_kernel ?obs ~config ~seed:s
          ~inject:[ (Gb_system.Inject.Mcb_suppress, 1.0) ]
          program
      in
      let row =
        row_of ~workload:"spectre-v4" ~mode:"unsafe"
          ~inject:(Some [ (Gb_system.Inject.Mcb_suppress, 1.0) ])
          ~seed:s r
      in
      if r.Oracle.injected > 0 && not (Oracle.clean r) then (true, [ row ])
      else try_seed (i + 1)
  in
  try_seed 0

(* one cell of the matrix, self-contained: every run builds its own
   processors and sinks from [config], so cells share no mutable state
   and may execute on any domain in any order *)
type job = {
  j_workload : string;
  j_mode : string;
  j_config : Gb_system.Processor.config;
  j_inject : Gb_system.Inject.spec option;
  j_program : Gb_riscv.Asm.program;
}

let run ?obs ?(seed = 1L) ?(workers = 0) ?(attacks = default_attacks)
    ?(modes = Gb_core.Mitigation.all_modes)
    ?(kernels = List.map (fun k -> k.Gb_workloads.Polybench.name)
                  Gb_workloads.Polybench.all)
    ?(injects = default_injects) () =
  (* the full cell list, in the canonical (serial) order: attacks x every
     mitigation mode x every inject variant, then polybench kernels under
     the default configuration x every inject variant *)
  let jobs =
    List.concat_map
      (fun name ->
        match attack_program name with
        | None -> invalid_arg (Printf.sprintf "unknown attack %S" name)
        | Some ast ->
          let program = Gb_kernelc.Compile.assemble ast in
          List.concat_map
            (fun mode ->
              let config = Gb_system.Processor.config_for mode in
              List.map
                (fun inject ->
                  { j_workload = name;
                    j_mode = Gb_core.Mitigation.mode_name mode;
                    j_config = config; j_inject = inject; j_program = program })
                injects)
            modes)
      attacks
    @ List.concat_map
        (fun name ->
          match Gb_workloads.Polybench.by_name name with
          | None ->
            invalid_arg (Printf.sprintf "unknown polybench kernel %S" name)
          | Some k ->
            let program =
              Gb_kernelc.Compile.assemble k.Gb_workloads.Polybench.program
            in
            List.map
              (fun inject ->
                { j_workload = "polybench:" ^ name; j_mode = "default";
                  j_config = Gb_system.Processor.default_config;
                  j_inject = inject; j_program = program })
              injects)
        kernels
  in
  let run_one j =
    let r = Oracle.run ?obs ~config:j.j_config ?inject:j.j_inject ~seed
        j.j_program
    in
    row_of ~workload:j.j_workload ~mode:j.j_mode ~inject:j.j_inject ~seed r
  in
  let sound_rows =
    (* Sharding across domains is order-preserving ({!Gb_dbt.Workers.map})
       and every cell is self-contained, so the row list — and every
       verdict in it — is identical to the serial run's. An active
       observability sink is the one piece of shared mutable state a cell
       may touch; it forces the serial path. *)
    let obs_active =
      match obs with Some o -> Gb_obs.Sink.is_active o | None -> false
    in
    if workers > 0 && not obs_active && Gb_dbt.Workers.available () then
      Gb_dbt.Workers.map (Gb_dbt.Workers.ensure workers) run_one jobs
    else List.map run_one jobs
  in
  let sensitivity_detected, sens_rows = sensitivity_check ?obs ~seed () in
  (* the sensitivity rows are expected to diverge; everything before them
     is a soundness gate *)
  let rows = sound_rows @ sens_rows in
  {
    rows;
    divergences =
      List.length (List.filter (fun r -> r.r_divergence <> None) sound_rows);
    unrecovered =
      List.fold_left
        (fun acc r -> acc + (r.r_injected - r.r_recovered))
        0 sound_rows;
    sensitivity_detected;
    seed;
  }

let row_json r =
  Gb_util.Json.Obj
    [
      ("workload", Gb_util.Json.String r.r_workload);
      ("mode", Gb_util.Json.String r.r_mode);
      ("inject", Gb_util.Json.String r.r_inject);
      ("seed", Gb_util.Json.Int (Int64.to_int r.r_seed));
      ("clean", Gb_util.Json.Bool r.r_clean);
      ( "divergence",
        match r.r_divergence with
        | Some d -> Gb_util.Json.String d
        | None -> Gb_util.Json.Null );
      ("syncs", Gb_util.Json.Int r.r_syncs);
      ("injected", Gb_util.Json.Int r.r_injected);
      ("recovered", Gb_util.Json.Int r.r_recovered);
      ("ref_insns", Gb_util.Json.Int (Int64.to_int r.r_ref_insns));
    ]

let pass t = t.divergences = 0 && t.unrecovered = 0 && t.sensitivity_detected

let to_json t =
  Gb_util.Json.Obj
    [
      ("seed", Gb_util.Json.Int (Int64.to_int t.seed));
      ("rows", Gb_util.Json.List (List.map row_json t.rows));
      ("divergences", Gb_util.Json.Int t.divergences);
      ("unrecovered", Gb_util.Json.Int t.unrecovered);
      ("sensitivity_detected", Gb_util.Json.Bool t.sensitivity_detected);
      ("passed", Gb_util.Json.Bool (pass t));
    ]

let pp_summary ppf t =
  Format.fprintf ppf
    "@[<v>%d differential runs, %d divergences, %d unrecovered faults;@ \
     sensitivity control %s@ => %s@]"
    (List.length t.rows) t.divergences t.unrecovered
    (if t.sensitivity_detected then "detected the unsound injection"
     else "FAILED to detect the unsound injection")
    (if pass t then "PASS" else "FAIL")
