(** The co-designed DBT processor: a reference interpreter executes (and
    profiles) cold code; hot paths are translated by the DBT engine and run
    on the VLIW core. Interpreter and core share one architectural
    register file, one memory, one data cache and one clock — so the cache
    side channel crosses the boundary exactly as on the real machine. *)

type config = {
  mem_size : int;
  hier : Gb_cache.Hierarchy.config;
  machine : Gb_vliw.Machine.config;
  engine : Gb_dbt.Engine.config;
  max_cycles : int64;  (** watchdog *)
}

val default_config : config

val config_for : Gb_core.Mitigation.mode -> config
(** Default configuration with the engine running a given mitigation. *)

type result = {
  exit_code : int;
  cycles : int64;
  interp_insns : int64;  (** guest instructions executed by the interpreter *)
  trace_runs : int64;
  bundles : int64;
  side_exits : int64;
  rollbacks : int64;
  stall_cycles : int64;
  translations : int;
  first_pass_translations : int;
  patterns_found : int;
  loads_constrained : int;
  fences_inserted : int;
  spec_loads : int;
  verify_checked : int;
      (** translations examined by the install-time verifier (0 when
          [engine.verify] is [Verify_off]) *)
  verify_violations : int;  (** violations the verifier recorded *)
  verify_rejections : int;
      (** translations [Verify_enforce] refused to install unfenced *)
  dispatch_exits : int64;
      (** trace exits handled by the dispatch loop; chained transfers
          bypass it, so with chaining on this drops well below
          [trace_runs] on hot loops *)
  chain_follows : int64;  (** chained transfers the pipeline took *)
  guest_insns : int64;
      (** total guest instructions executed (interpreter + translated
          code) — the denominator for dispatcher exits per 1k guest
          instructions *)
  cc_evictions : int;  (** code-cache capacity evictions *)
  output : string;
  audit : Gb_cache.Audit.summary option;
      (** leakage-audit classification; [None] unless created with
          [~audit:true] *)
}

type t

val create :
  ?config:config ->
  ?obs:Gb_obs.Sink.t ->
  ?audit:bool ->
  ?inject:Inject.t ->
  Gb_riscv.Asm.program ->
  t
(** [obs] (default {!Gb_obs.Sink.noop}) is threaded into the cache
    hierarchy, the VLIW machine and the DBT engine, and wired to the
    shared simulated clock so events carry cycle timestamps.
    [audit] (default [false]) attaches a {!Gb_cache.Audit} leakage audit:
    a shadow cache fed only by architecturally-committed accesses runs in
    lockstep with the real one, every trace exit diffs the two, and the
    result's [audit] field carries the classification summary.
    [inject] arms the fault-injection harness at the documented points
    (mid-trace eviction, chain-target corruption, MCB conflict-bit
    faults, transient translation failure, decode-cache flush); when
    omitted, {!Inject.of_env} can arm one from [GHOSTBUSTERS_INJECT].
    The processor also clamps the translator's MCB tag budget to the
    machine's [mcb_entries] (none at all when that is 0 — "MCB
    disabled"), so generated code can never check entries the hardware
    does not have. *)

val mem : t -> Gb_riscv.Mem.t

val hierarchy : t -> Gb_cache.Hierarchy.t

val engine : t -> Gb_dbt.Engine.t

val obs : t -> Gb_obs.Sink.t
(** The sink passed at creation ({!Gb_obs.Sink.noop} by default). *)

val audit : t -> Gb_cache.Audit.t option
(** The leakage audit, when created with [~audit:true]. *)

val interp : t -> Gb_riscv.Interp.t
(** The reference interpreter holding the shared architectural state
    (used by the differential oracle to read pc/regs/output). *)

val machine : t -> Gb_vliw.Machine.t
(** The VLIW core (the differential oracle installs its rdcycle
    record hook here). *)

val inject : t -> Inject.t option
(** The armed fault controller, if any. *)

val allocs : t -> Gb_obs.Allocs.t
(** The engine's execution-allocation accumulator
    ({!Gb_dbt.Engine.allocs}): start it before {!run} and stop it after
    to measure the run's execution-tier minor-heap allocation, with the
    translation pipeline excluded. *)

val set_on_trace_exit : t -> (Gb_vliw.Pipeline.exit_info -> unit) -> unit
(** Install an observer fired exactly once per trace exit (dispatch-loop
    exits and chained transfers alike), after the exit stub committed
    architectural state and the engine recorded the exit. The
    differential oracle synchronises the reference interpreter here. *)

val run : t -> result
(** Run to the exit ecall. Raises {!Gb_riscv.Interp.Trap} on guest errors
    or when [max_cycles] is exceeded. *)

val run_program :
  ?config:config ->
  ?obs:Gb_obs.Sink.t ->
  ?audit:bool ->
  Gb_riscv.Asm.program ->
  result
(** [create] + [run]. *)
