type kind =
  | Evict
  | Chain_break
  | Mcb_spurious
  | Mcb_suppress
  | Translate_fail
  | Decode_flush

let all_kinds =
  [ Evict; Chain_break; Mcb_spurious; Mcb_suppress; Translate_fail;
    Decode_flush ]

let kind_name = function
  | Evict -> "evict"
  | Chain_break -> "chain"
  | Mcb_spurious -> "mcb"
  | Mcb_suppress -> "mcb-suppress"
  | Translate_fail -> "translate"
  | Decode_flush -> "decode"

let kind_of_name = function
  | "evict" -> Some Evict
  | "chain" -> Some Chain_break
  | "mcb" -> Some Mcb_spurious
  | "mcb-suppress" -> Some Mcb_suppress
  | "translate" -> Some Translate_fail
  | "decode" -> Some Decode_flush
  | _ -> None

let recoverable = function Mcb_suppress -> false | _ -> true

let default_rate = function
  | Evict -> 0.02
  | Chain_break -> 0.05
  | Mcb_spurious -> 0.05
  | Mcb_suppress -> 1.0
  | Translate_fail -> 0.25
  | Decode_flush -> 0.01

type spec = (kind * float) list

let parse s =
  let parse_one part =
    match String.index_opt part ':' with
    | None -> (
      match kind_of_name part with
      | Some k -> Ok (k, default_rate k)
      | None -> Error (Printf.sprintf "unknown fault kind %S" part))
    | Some i -> (
      let name = String.sub part 0 i in
      let rate = String.sub part (i + 1) (String.length part - i - 1) in
      match (kind_of_name name, float_of_string_opt rate) with
      | None, _ -> Error (Printf.sprintf "unknown fault kind %S" name)
      | _, None -> Error (Printf.sprintf "invalid rate %S" rate)
      | Some k, Some r ->
        if r < 0. || r > 1. then
          Error (Printf.sprintf "rate %g out of [0,1]" r)
        else Ok (k, r))
  in
  let parts =
    List.filter (fun p -> p <> "") (String.split_on_char ',' (String.trim s))
  in
  if parts = [] then Error "empty injection spec"
  else
    List.fold_left
      (fun acc part ->
        match (acc, parse_one part) with
        | Error _, _ -> acc
        | _, Error e -> Error e
        | Ok l, Ok kr -> Ok (l @ [ kr ]))
      (Ok []) parts

let spec_name spec =
  String.concat ","
    (List.map (fun (k, r) -> Printf.sprintf "%s:%g" (kind_name k) r) spec)

let kind_index = function
  | Evict -> 0
  | Chain_break -> 1
  | Mcb_spurious -> 2
  | Mcb_suppress -> 3
  | Translate_fail -> 4
  | Decode_flush -> 5

let n_kinds = List.length all_kinds

type t = {
  rng : Gb_util.Rng.t;
  spec : spec;
  obs : Gb_obs.Sink.t;
  mutable injected : int;
  mutable recovered : int;
  injected_k : int array;  (** per {!kind_index} *)
  recovered_k : int array;
}

let create ?(obs = Gb_obs.Sink.noop) ?(seed = 1L) spec =
  {
    rng = Gb_util.Rng.create seed;
    spec;
    obs;
    injected = 0;
    recovered = 0;
    injected_k = Array.make n_kinds 0;
    recovered_k = Array.make n_kinds 0;
  }

let spec t = t.spec

let rate t kind =
  match List.assoc_opt kind t.spec with Some r -> r | None -> 0.

let sound t = rate t Mcb_suppress = 0.

(* one-in-a-million granularity is plenty for rates in [0,1] and keeps the
   draw integral (deterministic across platforms) *)
let resolution = 1_000_000

let fire t kind =
  let r = rate t kind in
  r > 0.
  && Gb_util.Rng.int t.rng resolution
     < int_of_float (r *. float_of_int resolution)
  &&
  (t.injected <- t.injected + 1;
   t.injected_k.(kind_index kind) <- t.injected_k.(kind_index kind) + 1;
   if Gb_obs.Sink.is_active t.obs then begin
     Gb_obs.Sink.incr t.obs "fault.injected";
     Gb_obs.Sink.incr t.obs ("fault.injected." ^ kind_name kind)
   end;
   true)

let injected t = t.injected

let recovered t = t.recovered

let injected_by_kind t kind = t.injected_k.(kind_index kind)

let recovered_by_kind t kind = t.recovered_k.(kind_index kind)

let by_kind t =
  List.filter_map
    (fun k ->
      let i = kind_index k in
      if t.injected_k.(i) = 0 && t.recovered_k.(i) = 0 then None
      else Some (k, t.injected_k.(i), t.recovered_k.(i)))
    all_kinds

let pending t = t.injected - t.recovered

let mark_all_recovered t =
  let delta = pending t in
  if delta > 0 then begin
    (* per-kind before aggregate, so the [injected.KIND = recovered.KIND]
       identity holds at every counter snapshot *)
    List.iter
      (fun k ->
        let i = kind_index k in
        let dk = t.injected_k.(i) - t.recovered_k.(i) in
        if dk > 0 then begin
          t.recovered_k.(i) <- t.injected_k.(i);
          if Gb_obs.Sink.is_active t.obs then
            Gb_obs.Sink.incr t.obs ~by:dk ("fault.recovered." ^ kind_name k)
        end)
      all_kinds;
    t.recovered <- t.recovered + delta;
    if Gb_obs.Sink.is_active t.obs then
      Gb_obs.Sink.incr t.obs ~by:delta "fault.recovered"
  end

let env_var = "GHOSTBUSTERS_INJECT"

let seed_env_var = "GHOSTBUSTERS_INJECT_SEED"

let of_env ?(obs = Gb_obs.Sink.noop) () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> None
  | Some s -> (
    match parse s with
    | Error e ->
      (* a malformed env spec must not silently disable the harness *)
      invalid_arg (Printf.sprintf "%s: %s" env_var e)
    | Ok spec ->
      let seed =
        match Sys.getenv_opt seed_env_var with
        | Some v -> (
          match Int64.of_string_opt v with
          | Some s -> s
          | None -> invalid_arg (Printf.sprintf "%s: not an int64" seed_env_var))
        | None -> 1L
      in
      Some (create ~obs ~seed spec))
