(** Deterministic fault injection for the differential harness.

    A controller draws from a seeded {!Gb_util.Rng} at well-defined
    injection points threaded through the processor's hot layers; each
    kind models one failure the DBT runtime must recover from gracefully
    (the {!Gb_diff} oracle asserts recovery by comparing architectural
    state against the reference interpreter):

    - [Evict]: the code-cache entry the dispatcher just looked up is
      invalidated while its trace is in flight (mid-trace capacity
      eviction);
    - [Chain_break]: a chained transfer's target is treated as corrupted —
      the resolver refuses it and execution must fall back to the
      dispatcher;
    - [Mcb_spurious]: an MCB [chk] reports a conflict that did not happen —
      the rollback path runs and must still converge;
    - [Mcb_suppress]: a real MCB conflict is hidden. This one is
      {e unsound by design} (a stale speculative value commits) and exists
      as the oracle's sensitivity control: the oracle must {e detect} the
      divergence, so this kind is excluded from recovery gates
      ({!recoverable});
    - [Translate_fail]: a translation attempt fails transiently (no
      blacklist) — execution stays on the interpreter and retries later;
    - [Decode_flush]: the interpreter's decode cache is flushed, forcing
      re-decode of everything it fetches next.

    The controller only decides {e whether} to fire and keeps the
    injected/recovered accounting ([fault.*] metrics); the actual
    corruption is performed by the processor wiring
    ({!Processor.create}). *)

type kind =
  | Evict
  | Chain_break
  | Mcb_spurious
  | Mcb_suppress
  | Translate_fail
  | Decode_flush

val all_kinds : kind list

val kind_name : kind -> string
(** ["evict"], ["chain"], ["mcb"], ["mcb-suppress"], ["translate"],
    ["decode"] — the names accepted by {!parse} and the CLI. *)

val kind_of_name : string -> kind option

val recoverable : kind -> bool
(** [false] only for [Mcb_suppress]. *)

val default_rate : kind -> float
(** Per-fire probability used when a spec names a kind without a rate. *)

type spec = (kind * float) list

val parse : string -> (spec, string) result
(** Parse ["KIND[:RATE][,KIND[:RATE]...]"], e.g. ["evict:0.05,chain"].
    Rates must lie in [\[0,1\]]; a missing rate uses {!default_rate}. *)

val spec_name : spec -> string
(** Render a spec back to the [parse] syntax (for reports). *)

type t

val create : ?obs:Gb_obs.Sink.t -> ?seed:int64 -> spec -> t
(** [seed] defaults to 1. [obs] (default {!Gb_obs.Sink.noop}) receives
    the [fault.injected] / [fault.injected.KIND] / [fault.recovered]
    counters. *)

val spec : t -> spec

val rate : t -> kind -> float
(** 0 when the kind is not in the spec. *)

val sound : t -> bool
(** No unsound kind is armed — a run under a sound controller must show
    zero divergences. *)

val fire : t -> kind -> bool
(** Draw once; [true] means the caller must inject the fault now (the
    draw was already counted as injected). Kinds with rate 0 never fire
    and do not consume randomness. *)

val injected : t -> int

val recovered : t -> int

val injected_by_kind : t -> kind -> int

val recovered_by_kind : t -> kind -> int
(** The per-kind split of the aggregate accounting, published as
    [fault.injected.KIND] / [fault.recovered.KIND] counters — the
    [injected = recovered] soundness check is assertable per kind. *)

val by_kind : t -> (kind * int * int) list
(** [(kind, injected, recovered)] for every kind touched so far, in
    {!all_kinds} order. *)

val pending : t -> int
(** [injected - recovered]. *)

val mark_all_recovered : t -> unit
(** Called by the oracle at every sync point where reference and DBT
    state agree: everything injected so far has provably been recovered
    from. *)

val env_var : string
(** ["GHOSTBUSTERS_INJECT"] — when set, every {!Processor.create} without
    an explicit controller arms one from its value, so the whole existing
    test suite can run under injection unchanged. *)

val seed_env_var : string
(** ["GHOSTBUSTERS_INJECT_SEED"] (default 1). *)

val of_env : ?obs:Gb_obs.Sink.t -> unit -> t option
(** Read {!env_var}; [None] when unset or empty. Raises
    [Invalid_argument] on a malformed spec — injection asked for must
    never be silently dropped. *)
