type config = {
  mem_size : int;
  hier : Gb_cache.Hierarchy.config;
  machine : Gb_vliw.Machine.config;
  engine : Gb_dbt.Engine.config;
  max_cycles : int64;
}

let default_config =
  {
    mem_size = 1 lsl 20;
    hier = Gb_cache.Hierarchy.default_config;
    machine = Gb_vliw.Machine.default_config;
    engine = Gb_dbt.Engine.default_config;
    max_cycles = 4_000_000_000L;
  }

let config_for mode =
  {
    default_config with
    engine = { Gb_dbt.Engine.default_config with Gb_dbt.Engine.mode };
  }

type result = {
  exit_code : int;
  cycles : int64;
  interp_insns : int64;
  trace_runs : int64;
  bundles : int64;
  side_exits : int64;
  rollbacks : int64;
  stall_cycles : int64;
  translations : int;
  first_pass_translations : int;
  patterns_found : int;
  loads_constrained : int;
  fences_inserted : int;
  spec_loads : int;
  verify_checked : int;
  verify_violations : int;
  verify_rejections : int;
  dispatch_exits : int64;
  chain_follows : int64;
  guest_insns : int64;
  cc_evictions : int;
  output : string;
  audit : Gb_cache.Audit.summary option;
}

type t = {
  cfg : config;
  mem : Gb_riscv.Mem.t;
  clock : int64 ref;
  hier : Gb_cache.Hierarchy.t;
  interp : Gb_riscv.Interp.t;
  machine : Gb_vliw.Machine.t;
  engine : Gb_dbt.Engine.t;
  obs : Gb_obs.Sink.t;
  attrib : Gb_obs.Attrib.t option;
      (** the sink's cycle-attribution ledger, cached off the hot loop *)
  audit : Gb_cache.Audit.t option;
  inject : Inject.t option;
  dispatch_exits : int64 ref;
      (** trace exits handled by the dispatch loop (chained transfers
          bypass it — the quantity trace chaining exists to reduce) *)
  chain_dead_end : bool ref;
      (** set by the chain resolver when it recorded an exit but found
          no translation to continue into: the dispatch loop must not
          record that exit a second time *)
  on_trace_exit : (Gb_vliw.Pipeline.exit_info -> unit) ref;
      (** observer fired exactly once per trace exit — by the dispatch
          loop for exits it handles, by the chain resolver for chained
          transfers (and for dead-end exits it already recorded) — with
          architectural state fully committed; the differential oracle
          hangs its sync points here *)
}

let create ?(config = default_config) ?(obs = Gb_obs.Sink.noop)
    ?(audit = false) ?inject program =
  let mem = Gb_riscv.Mem.create ~size:config.mem_size in
  Gb_riscv.Asm.load mem program;
  (* an explicit controller wins; otherwise GHOSTBUSTERS_INJECT can arm
     one under any existing caller (the CI runs the whole suite that
     way) *)
  let inject =
    match inject with Some _ as i -> i | None -> Inject.of_env ~obs ()
  in
  let clock = ref 0L in
  (* every component stamps its events with the shared simulated clock *)
  Gb_obs.Sink.set_cycle_source obs (fun () -> !clock);
  (* pre-register the canonical counters so snapshots always carry them,
     even when a run never fires the corresponding path *)
  if Gb_obs.Sink.is_active obs then
    List.iter
      (fun name -> Gb_obs.Sink.incr obs ~by:0 name)
      [
        "translate.translations"; "translate.first_pass";
        "translate.failures"; "translate.retranslations";
        "translate.despeculations"; "translate.guest_insns";
        "mitigation.patterns_found"; "mitigation.loads_constrained";
        "mitigation.fences_inserted"; "vliw.trace_runs"; "vliw.side_exits";
        "vliw.rollbacks"; "vliw.mcb_conflicts"; "cache.reads"; "cache.writes";
        "cache.read_misses"; "cache.write_misses"; "cache.flushes";
        (* the code cache proper ("cache.*" above is the L1D) *)
        "code_cache.hits"; "code_cache.misses"; "code_cache.evictions";
        "code_cache.chain_links"; "code_cache.chain_follows";
        "code_cache.chain_breaks"; "processor.dispatch_exits";
      ];
  if audit && Gb_obs.Sink.is_active obs then
    List.iter
      (fun name -> Gb_obs.Sink.incr obs ~by:0 name)
      [ "audit.transient_lines"; "audit.dependent_transient_lines" ];
  if config.engine.Gb_dbt.Engine.verify <> Gb_dbt.Engine.Verify_off
     && Gb_obs.Sink.is_active obs
  then
    List.iter
      (fun name -> Gb_obs.Sink.incr obs ~by:0 name)
      [ "verify.checked"; "verify.violations"; "verify.rejections" ];
  if inject <> None && Gb_obs.Sink.is_active obs then
    List.iter
      (fun name -> Gb_obs.Sink.incr obs ~by:0 name)
      [ "fault.injected"; "fault.recovered" ];
  let hier = Gb_cache.Hierarchy.create ~obs config.hier in
  let audit =
    if audit then
      Some (Gb_cache.Audit.create ~obs ~real:(Gb_cache.Hierarchy.cache hier) ())
    else None
  in
  let regs =
    Array.make
      (Gb_vliw.Vinsn.guest_regs + config.machine.Gb_vliw.Machine.n_hidden)
      0L
  in
  (* the hoisted sp convention: same single source of truth as
     Interp.create's self-allocated register file *)
  regs.(Gb_riscv.Reg.sp) <- Gb_riscv.Interp.default_sp mem;
  (* Interpreter accesses are architectural by definition: they mirror
     straight into the audit's shadow cache. *)
  let attrib = Gb_obs.Sink.attrib obs in
  (* the memory hook needs the interpreter's current pc to attribute its
     cost, but the interpreter is built from these hooks — box it *)
  let interp_box = ref None in
  let hooks =
    {
      Gb_riscv.Interp.mem_extra =
        (fun ~addr ~size ~write ->
          let hit = Gb_cache.Hierarchy.access hier ~addr ~size ~write in
          (match audit with
          | Some a -> Gb_cache.Audit.commit_access a ~addr ~size ~write
          | None -> ());
          let cost = Gb_cache.Hierarchy.interp_cost hier ~hit in
          (match attrib with
          | Some a ->
            let pc =
              match !interp_box with
              | Some (i : Gb_riscv.Interp.t) -> i.Gb_riscv.Interp.pc
              | None -> 0
            in
            (* a hit's extra cycle is interpretation cost; a miss penalty
               is the memory system's, same bucket as VLIW-side misses *)
            Gb_obs.Attrib.add_cycles a
              (if hit then Gb_obs.Attrib.Interp_fallback
               else Gb_obs.Attrib.Cache_miss_stall)
              ~tier:Gb_obs.Attrib.Interp ~trace:0 ~pc ~cycles:cost
          | None -> ());
          cost);
      flush_line =
        (fun addr ->
          Gb_cache.Hierarchy.flush_line hier addr;
          match audit with
          | Some a -> Gb_cache.Audit.commit_flush a ~addr
          | None -> ());
    }
  in
  let interp =
    Gb_riscv.Interp.create ~hooks ~clock ~regs ~mem
      ~pc:program.Gb_riscv.Asm.entry ()
  in
  interp_box := Some interp;
  (* one knob: the engine's code-cache config decides whether chaining
     exists at all; the machine merely follows links that were patched *)
  let machine_cfg =
    {
      config.machine with
      Gb_vliw.Machine.chain =
        config.machine.Gb_vliw.Machine.chain
        && config.engine.Gb_dbt.Engine.cache.Gb_dbt.Code_cache.chain;
    }
  in
  let machine =
    Gb_vliw.Machine.create ~cfg:machine_cfg ~mem ~hier ~clock ~regs ~obs
      ?audit ()
  in
  (* The machine's MCB is the hardware the translator speculates against:
     never emit more tags than it has entries, and no memory speculation
     at all when it is disabled (entries = 0) — otherwise [chk] ops would
     consume entries that were never allocated and silently commit
     unchecked speculative values. *)
  let engine_cfg =
    let entries = machine_cfg.Gb_vliw.Machine.mcb_entries in
    let opt =
      match config.engine.Gb_dbt.Engine.opt_override with
      | Some o -> o
      | None ->
        Gb_core.Mitigation.opt_of_mode config.engine.Gb_dbt.Engine.mode
    in
    let clamped =
      if entries <= 0 then
        { opt with Gb_ir.Opt_config.mem_spec = false; mcb_tags = 0 }
      else if opt.Gb_ir.Opt_config.mcb_tags > entries then
        { opt with Gb_ir.Opt_config.mcb_tags = entries }
      else opt
    in
    if clamped = opt then config.engine
    else { config.engine with Gb_dbt.Engine.opt_override = Some clamped }
  in
  let engine = Gb_dbt.Engine.create ~obs ?audit engine_cfg ~mem in
  (match inject with
  | Some inj ->
    if Inject.rate inj Inject.Translate_fail > 0. then
      Gb_dbt.Engine.set_translate_fault engine
        (Some (fun _entry -> Inject.fire inj Inject.Translate_fail));
    if
      Inject.rate inj Inject.Mcb_spurious > 0.
      || Inject.rate inj Inject.Mcb_suppress > 0.
    then
      Gb_vliw.Mcb.set_fault_hook machine.Gb_vliw.Machine.mcb
        (Some
           (fun ~tag:_ ~conflict ->
             (* only draws that actually flip the outcome count as
                injected faults *)
             if (not conflict) && Inject.fire inj Inject.Mcb_spurious then
               true
             else if conflict && Inject.fire inj Inject.Mcb_suppress then
               false
             else conflict))
  | None -> ());
  (* The chained-transfer resolver: do exactly what the dispatch loop
     below would have done for this exit — record it (keeping rollback/
     side-exit ratios current), tick the target's hot counter (which may
     promote a chained-into first-pass block to a trace, or drop a stale
     one), then hand back whatever translation is installed at the
     target NOW. Resolving after accounting keeps chaining invisible to
     the cost model: a transfer that promotes its own target runs the
     new trace immediately, exactly as a dispatch would. In the rare
     case nothing resolves (e.g. a self-looping trace just invalidated
     itself for retranslation) the exit goes back to the dispatcher,
     which must then skip its own recording — this callback already did
     it. *)
  let chain_dead_end = ref false in
  let on_trace_exit = ref (fun (_ : Gb_vliw.Pipeline.exit_info) -> ()) in
  machine.Gb_vliw.Machine.on_chain <-
    (fun info ->
      Gb_dbt.Engine.record_block_exit engine
        ~entry:info.Gb_vliw.Vinsn.exit_entry info;
      Gb_dbt.Engine.record_block_entry engine info.Gb_vliw.Vinsn.next_pc;
      !on_trace_exit info;
      match inject with
      | Some inj when Inject.fire inj Inject.Chain_break ->
        (* injected chain-target corruption: refuse the link; the exit
           falls back to the dispatcher, which must skip its own
           recording — this callback already did it *)
        chain_dead_end := true;
        None
      | _ -> (
        match Gb_dbt.Engine.chained_successor engine info with
        | Some _ as next -> next
        | None ->
          chain_dead_end := true;
          None));
  {
    cfg = config; mem; clock; hier; interp; machine; engine; obs; attrib;
    audit; inject; dispatch_exits = ref 0L; chain_dead_end; on_trace_exit;
  }

let mem t = t.mem

let hierarchy t = t.hier

let engine t = t.engine

let allocs t = Gb_dbt.Engine.allocs t.engine

let obs t = t.obs

let audit t = t.audit

let interp t = t.interp

let machine t = t.machine

let inject t = t.inject

let set_on_trace_exit t f = t.on_trace_exit := f

let emit_attrib_sample t =
  match t.attrib with
  | Some a ->
    let committed, overhead = Gb_obs.Attrib.sample_cycles a in
    Gb_obs.Sink.event t.obs (Gb_obs.Event.Cycle_attrib { committed; overhead })
  | None -> ()

let result_of t exit_code =
  (* the ledger's hard invariant: every simulated cycle is attributed,
     none twice — sum(buckets) must equal the clock, exactly *)
  (match t.attrib with
  | Some a -> (
    emit_attrib_sample t;
    match Gb_obs.Attrib.check a ~cycles:!(t.clock) with
    | Ok () -> ()
    | Error msg ->
      failwith ("cycle attribution conservation violated: " ^ msg))
  | None -> ());
  let ms = t.machine.Gb_vliw.Machine.stats in
  let es = Gb_dbt.Engine.stats t.engine in
  {
    exit_code;
    cycles = !(t.clock);
    interp_insns = t.interp.Gb_riscv.Interp.insn_count;
    trace_runs = Int64.of_int ms.Gb_vliw.Machine.trace_runs;
    bundles = Int64.of_int ms.Gb_vliw.Machine.bundles;
    side_exits = Int64.of_int ms.Gb_vliw.Machine.side_exits;
    rollbacks = Int64.of_int ms.Gb_vliw.Machine.rollbacks;
    stall_cycles = Int64.of_int ms.Gb_vliw.Machine.stall_cycles;
    translations = es.Gb_dbt.Engine.translations;
    first_pass_translations = es.Gb_dbt.Engine.first_pass_translations;
    patterns_found = es.Gb_dbt.Engine.patterns_found;
    loads_constrained = es.Gb_dbt.Engine.loads_constrained;
    fences_inserted = es.Gb_dbt.Engine.fences_inserted;
    spec_loads = es.Gb_dbt.Engine.spec_loads;
    verify_checked = es.Gb_dbt.Engine.verify_checked;
    verify_violations = es.Gb_dbt.Engine.verify_violations;
    verify_rejections = es.Gb_dbt.Engine.verify_rejections;
    dispatch_exits = !(t.dispatch_exits);
    chain_follows = Int64.of_int ms.Gb_vliw.Machine.chain_follows;
    guest_insns =
      Int64.add t.interp.Gb_riscv.Interp.insn_count
        (Int64.of_int ms.Gb_vliw.Machine.guest_insns);
    cc_evictions =
      (Gb_dbt.Code_cache.stats (Gb_dbt.Engine.code_cache t.engine)).Gb_dbt
      .Code_cache.evictions;
    output = Buffer.contents t.interp.Gb_riscv.Interp.output;
    audit = Option.map Gb_cache.Audit.publish t.audit;
  }

let run t =
  let engine = t.engine in
  Gb_dbt.Engine.record_block_entry engine t.interp.Gb_riscv.Interp.pc;
  let rec loop () =
    if Int64.compare !(t.clock) t.cfg.max_cycles > 0 then
      raise (Gb_riscv.Interp.Trap "cycle watchdog exceeded");
    let pc = t.interp.Gb_riscv.Interp.pc in
    match Gb_dbt.Engine.lookup engine pc with
    | Some trace ->
      (match t.inject with
      | Some inj when Inject.fire inj Inject.Evict ->
        (* mid-trace eviction fault: the entry vanishes from the code
           cache (links severed both ways) while its trace is already in
           flight; the region re-translates when it turns hot again *)
        Gb_dbt.Code_cache.invalidate
          (Gb_dbt.Engine.code_cache engine)
          pc
      | _ -> ());
      let info = Gb_vliw.Pipeline.run t.machine trace in
      t.interp.Gb_riscv.Interp.pc <- info.Gb_vliw.Pipeline.next_pc;
      t.dispatch_exits := Int64.add !(t.dispatch_exits) 1L;
      Gb_obs.Sink.incr t.obs "processor.dispatch_exits";
      (* periodic committed-vs-overhead sample for the Chrome trace's
         attribution counter lanes *)
      if t.attrib <> None && Int64.rem !(t.dispatch_exits) 256L = 1L then
        emit_attrib_sample t;
      (* with chaining, the final exit may come from a different trace
         than the one dispatched; intermediate exits were already
         recorded by the on_chain resolver — and so was this one, iff
         the resolver hit a dead end on it *)
      if !(t.chain_dead_end) then t.chain_dead_end := false
      else begin
        Gb_dbt.Engine.record_block_exit engine
          ~entry:info.Gb_vliw.Pipeline.exit_entry info;
        Gb_dbt.Engine.record_block_entry engine info.Gb_vliw.Pipeline.next_pc;
        !(t.on_trace_exit) info
      end;
      (* record_block_entry may just have translated next_pc: patch the
         stub we exited through so the next pass transfers directly *)
      Gb_dbt.Engine.chain engine info;
      (match t.inject with
      | Some inj when Inject.fire inj Inject.Decode_flush ->
        (* decode-cache poisoning fault: drop every decoded entry, the
           interpreter must re-decode from guest memory *)
        Gb_riscv.Interp.flush_decode_cache t.interp
      | _ -> ());
      loop ()
    | None -> (
      let si = Gb_riscv.Interp.step t.interp in
      (* the step's memory cost was attributed by the mem_extra hook;
         the base cycle of interpreting the insn lands here *)
      (match t.attrib with
      | Some a ->
        Gb_obs.Attrib.add_cycles a Gb_obs.Attrib.Interp_fallback
          ~tier:Gb_obs.Attrib.Interp ~trace:0 ~pc:si.Gb_riscv.Interp.s_pc
          ~cycles:1
      | None -> ());
      (match (si.Gb_riscv.Interp.s_insn, si.Gb_riscv.Interp.s_taken) with
      | Gb_riscv.Insn.Branch _, Some taken ->
        Gb_dbt.Engine.record_branch engine ~pc:si.Gb_riscv.Interp.s_pc ~taken
      | _, _ -> ());
      if si.Gb_riscv.Interp.s_next <> si.Gb_riscv.Interp.s_pc + 4 then
        Gb_dbt.Engine.record_block_entry engine si.Gb_riscv.Interp.s_next;
      match si.Gb_riscv.Interp.s_exit with
      | Some code -> result_of t code
      | None -> loop ())
  in
  loop ()

let run_program ?config ?obs ?audit program =
  let t = create ?config ?obs ?audit program in
  run t
