(** Detailed execution report for one finished run: execution-tier
    breakdown, achieved ILP, cache behaviour, and a table of the hottest
    translated regions — the numbers one inspects when studying what the
    DBT layer actually did to a workload. *)

type region_row = {
  entry : int;  (** guest pc *)
  tier : string;  (** "trace" or "block" *)
  runs : int;
  guest_insns : int;
  bundles : int;
  ipc : float;  (** guest instructions per bundle (upper bound on ILP) *)
  spec_loads : int;
  patterns : int;
}

type t = {
  result : Processor.result;
  guest_insns_total : int64;
      (** instructions executed on all tiers (interp + translated) *)
  translated_insns : int64;  (** executed via translated code *)
  translated_share : float;  (** translated / total *)
  overall_ipc : float;  (** guest instructions per cycle over the whole run *)
  cache_reads : int;
  cache_read_miss_rate : float;
  cache_writes : int;
  cache_write_miss_rate : float;
  regions : region_row list;  (** hottest first *)
  metrics : Gb_util.Json.t;
      (** {!Gb_obs.Sink.metrics_json} snapshot of the processor's sink;
          [Obj []] when the run used the noop sink *)
}

val of_processor : Processor.t -> Processor.result -> t
(** Build the report after {!Processor.run} returned. *)

val pp : ?max_regions:int -> Format.formatter -> t -> unit

val to_json : t -> Gb_util.Json.t
