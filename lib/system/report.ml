type region_row = {
  entry : int;
  tier : string;
  runs : int;
  guest_insns : int;
  bundles : int;
  ipc : float;
  spec_loads : int;
  patterns : int;
}

type t = {
  result : Processor.result;
  guest_insns_total : int64;
  translated_insns : int64;
  translated_share : float;
  overall_ipc : float;
  cache_reads : int;
  cache_read_miss_rate : float;
  cache_writes : int;
  cache_write_miss_rate : float;
  regions : region_row list;
  metrics : Gb_util.Json.t;
}

let region_row (r : Gb_dbt.Engine.region) =
  let trace = r.Gb_dbt.Engine.r_trace in
  let bundles = Array.length trace.Gb_vliw.Vinsn.bundles in
  {
    entry = r.Gb_dbt.Engine.r_entry;
    tier = (match r.Gb_dbt.Engine.r_tier with `Trace -> "trace" | `Block -> "block");
    runs = r.Gb_dbt.Engine.r_runs;
    guest_insns = trace.Gb_vliw.Vinsn.guest_insns;
    bundles;
    ipc =
      (if bundles = 0 then 0.
       else float_of_int trace.Gb_vliw.Vinsn.guest_insns /. float_of_int bundles);
    spec_loads = trace.Gb_vliw.Vinsn.meta.Gb_vliw.Vinsn.spec_loads;
    patterns = trace.Gb_vliw.Vinsn.meta.Gb_vliw.Vinsn.spectre_patterns;
  }

let of_processor proc (result : Processor.result) =
  let regions = List.map region_row (Gb_dbt.Engine.regions (Processor.engine proc)) in
  (* translated-tier instruction count: a full pass over a region executes
     its guest_insns; early side exits execute fewer, so this is an upper
     estimate of the translated share *)
  let translated_insns =
    List.fold_left
      (fun acc row -> Int64.add acc (Int64.of_int (row.runs * row.guest_insns)))
      0L regions
  in
  let total = Int64.add result.Processor.interp_insns translated_insns in
  let stats = Gb_cache.Cache.stats (Gb_cache.Hierarchy.cache (Processor.hierarchy proc)) in
  let rate miss total = if total = 0 then 0. else float_of_int miss /. float_of_int total in
  {
    result;
    guest_insns_total = total;
    translated_insns;
    translated_share =
      (if Int64.equal total 0L then 0.
       else Int64.to_float translated_insns /. Int64.to_float total);
    overall_ipc =
      (if Int64.equal result.Processor.cycles 0L then 0.
       else Int64.to_float total /. Int64.to_float result.Processor.cycles);
    cache_reads = stats.Gb_cache.Cache.reads;
    cache_read_miss_rate = rate stats.Gb_cache.Cache.read_misses stats.Gb_cache.Cache.reads;
    cache_writes = stats.Gb_cache.Cache.writes;
    cache_write_miss_rate = rate stats.Gb_cache.Cache.write_misses stats.Gb_cache.Cache.writes;
    regions;
    metrics = Gb_obs.Sink.metrics_json (Processor.obs proc);
  }

let pp ?(max_regions = 10) ppf t =
  let r = t.result in
  Format.fprintf ppf "cycles             %Ld@." r.Processor.cycles;
  Format.fprintf ppf "guest insns        ~%Ld (%.1f%% on translated code)@."
    t.guest_insns_total (100. *. t.translated_share);
  Format.fprintf ppf "overall IPC        %.2f@." t.overall_ipc;
  Format.fprintf ppf "interp insns       %Ld@." r.Processor.interp_insns;
  Format.fprintf ppf "translations       %d traces, %d first-pass blocks@."
    r.Processor.translations r.Processor.first_pass_translations;
  Format.fprintf ppf "trace runs         %Ld (%Ld side exits, %Ld rollbacks)@."
    r.Processor.trace_runs r.Processor.side_exits r.Processor.rollbacks;
  Format.fprintf ppf "L1D                %d reads (%.1f%% miss), %d writes (%.1f%% miss)@."
    t.cache_reads
    (100. *. t.cache_read_miss_rate)
    t.cache_writes
    (100. *. t.cache_write_miss_rate);
  Format.fprintf ppf "countermeasure     %d patterns, %d constrained, %d fences@."
    r.Processor.patterns_found r.Processor.loads_constrained
    r.Processor.fences_inserted;
  Format.fprintf ppf "@.hottest regions:@.";
  let shown = List.filteri (fun i _ -> i < max_regions) t.regions in
  List.iter
    (fun row ->
      Format.fprintf ppf
        "  0x%-6x %-5s runs=%-7d insns=%-3d bundles=%-3d ipc=%.2f%s%s@."
        row.entry row.tier row.runs row.guest_insns row.bundles row.ipc
        (if row.spec_loads > 0 then
           Printf.sprintf " spec=%d" row.spec_loads
         else "")
        (if row.patterns > 0 then
           Printf.sprintf " patterns=%d" row.patterns
         else ""))
    shown;
  if List.length t.regions > max_regions then
    Format.fprintf ppf "  ... and %d more@."
      (List.length t.regions - max_regions)

let to_json t =
  let module J = Gb_util.Json in
  let r = t.result in
  J.Obj
    [
      ("cycles", J.Int (Int64.to_int r.Processor.cycles));
      ("guest_insns", J.Int (Int64.to_int t.guest_insns_total));
      ("translated_share", J.Float t.translated_share);
      ("overall_ipc", J.Float t.overall_ipc);
      ("interp_insns", J.Int (Int64.to_int r.Processor.interp_insns));
      ("translations", J.Int r.Processor.translations);
      ("first_pass_translations", J.Int r.Processor.first_pass_translations);
      ("trace_runs", J.Int (Int64.to_int r.Processor.trace_runs));
      ("side_exits", J.Int (Int64.to_int r.Processor.side_exits));
      ("rollbacks", J.Int (Int64.to_int r.Processor.rollbacks));
      ("patterns_found", J.Int r.Processor.patterns_found);
      ("loads_constrained", J.Int r.Processor.loads_constrained);
      ("cache_read_miss_rate", J.Float t.cache_read_miss_rate);
      ("cache_write_miss_rate", J.Float t.cache_write_miss_rate);
      ( "regions",
        J.List
          (List.map
             (fun row ->
               J.Obj
                 [
                   ("entry", J.Int row.entry);
                   ("tier", J.String row.tier);
                   ("runs", J.Int row.runs);
                   ("guest_insns", J.Int row.guest_insns);
                   ("bundles", J.Int row.bundles);
                   ("ipc", J.Float row.ipc);
                   ("spec_loads", J.Int row.spec_loads);
                   ("patterns", J.Int row.patterns);
                 ])
             t.regions) );
      ("metrics", t.metrics);
    ]
