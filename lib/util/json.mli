(** Minimal JSON encoder and parser (no external dependencies) used to
    export experiment results in machine-readable form and to round-trip
    them in tests. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact encoding with full string escaping. *)

val to_string_pretty : t -> string
(** Two-space indented encoding. *)

val of_string : string -> (t, string) result
(** Parse one JSON document (object key order is preserved). Numbers
    without a fraction or exponent parse as [Int] — so values produced by
    {!to_string}, which prints floats with a decimal point, round-trip
    exactly; [\u] escapes decode to UTF-8, with UTF-16 surrogate pairs
    combined into one non-BMP scalar (a lone surrogate is a parse error).
    [Error] carries a message with the byte offset of the failure. *)

(** {2 Accessors}

    Schema helpers for consumers of parsed documents (the perf-manifest
    reader, tests): total functions returning [None] on a shape mismatch,
    so field-by-field validation composes with [Option.bind]. *)

val get : string -> t -> t option
(** [get name j] is the value of field [name] when [j] is an [Obj]. *)

val get_int : t -> int option

val get_float : t -> float option
(** Accepts [Int] too (a whole-number cell parses as [Int]). *)

val get_bool : t -> bool option

val get_str : t -> string option
(** Named to avoid clashing with the {!to_string} encoder. *)

val get_list : t -> t list option

val get_obj : t -> (string * t) list option
