(** Minimal JSON encoder and parser (no external dependencies) used to
    export experiment results in machine-readable form and to round-trip
    them in tests. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact encoding with full string escaping. *)

val to_string_pretty : t -> string
(** Two-space indented encoding. *)

val of_string : string -> (t, string) result
(** Parse one JSON document (object key order is preserved). Numbers
    without a fraction or exponent parse as [Int] — so values produced by
    {!to_string}, which prints floats with a decimal point, round-trip
    exactly; [\u] escapes decode to UTF-8, with UTF-16 surrogate pairs
    combined into one non-BMP scalar (a lone surrogate is a parse error).
    [Error] carries a message with the byte offset of the failure. *)
