type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec encode buf indent level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    newline ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          newline ()
        end;
        pad (level + 1);
        encode buf indent (level + 1) item)
      items;
    newline ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    newline ();
    List.iteri
      (fun i (key, value) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          newline ()
        end;
        pad (level + 1);
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape key);
        Buffer.add_string buf "\":";
        if indent then Buffer.add_char buf ' ';
        encode buf indent (level + 1) value)
      fields;
    newline ();
    pad level;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  encode buf false 0 v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 256 in
  encode buf true 0 v;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let fail st fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (Printf.sprintf "at offset %d: %s" st.pos s))) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail st "expected %C, found %C" c d
  | None -> fail st "expected %C, found end of input" c

let literal st word value =
  if st.pos + String.length word <= String.length st.src
     && String.sub st.src st.pos (String.length word) = word
  then begin
    st.pos <- st.pos + String.length word;
    value
  end
  else fail st "invalid literal"

let add_utf8 buf code =
  (* encode one Unicode scalar value (from \uXXXX, possibly a combined
     surrogate pair) as UTF-8 *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'; advance st
      | Some '\\' -> Buffer.add_char buf '\\'; advance st
      | Some '/' -> Buffer.add_char buf '/'; advance st
      | Some 'b' -> Buffer.add_char buf '\b'; advance st
      | Some 'f' -> Buffer.add_char buf '\012'; advance st
      | Some 'n' -> Buffer.add_char buf '\n'; advance st
      | Some 'r' -> Buffer.add_char buf '\r'; advance st
      | Some 't' -> Buffer.add_char buf '\t'; advance st
      | Some 'u' ->
        advance st;
        let read_hex4 () =
          if st.pos + 4 > String.length st.src then
            fail st "truncated \\u escape";
          let hex = String.sub st.src st.pos 4 in
          match int_of_string_opt ("0x" ^ hex) with
          | Some c ->
            st.pos <- st.pos + 4;
            c
          | None -> fail st "invalid \\u escape %S" hex
        in
        let code = read_hex4 () in
        if code >= 0xD800 && code <= 0xDBFF then begin
          (* high surrogate: UTF-16 requires a low surrogate right after *)
          if st.pos + 2 > String.length st.src
             || st.src.[st.pos] <> '\\'
             || st.src.[st.pos + 1] <> 'u'
          then fail st "lone high surrogate \\u%04X" code;
          st.pos <- st.pos + 2;
          let low = read_hex4 () in
          if low < 0xDC00 || low > 0xDFFF then
            fail st "high surrogate \\u%04X not followed by a low surrogate"
              code;
          add_utf8 buf
            (0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00))
        end
        else if code >= 0xDC00 && code <= 0xDFFF then
          fail st "lone low surrogate \\u%04X" code
        else add_utf8 buf code
      | Some c -> fail st "invalid escape \\%C" c
      | None -> fail st "unterminated escape");
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let rec go () =
    match peek st with
    | Some ('0' .. '9' | '-' | '+') ->
      advance st;
      go ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st "invalid number %S" text
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      (* integer syntax too large for a native int *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail st "invalid number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']' in array"
      in
      List (items [])
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let field () =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (key, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields (kv :: acc)
        | Some '}' ->
          advance st;
          List.rev (kv :: acc)
        | _ -> fail st "expected ',' or '}' in object"
      in
      Obj (fields [])
    end
  | Some c -> fail st "unexpected character %C" c

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors (schema helpers) ----------------------------------------- *)

let get name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let get_int = function Int i -> Some i | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let get_bool = function Bool b -> Some b | _ -> None

let get_str = function String s -> Some s | _ -> None

let get_list = function List l -> Some l | _ -> None

let get_obj = function Obj fields -> Some fields | _ -> None
