(** Small numeric summaries used by the benchmark harness. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val geomean : float list -> float
(** Geometric mean; 1. on the empty list. All inputs must be > 0. *)

val median : float list -> float
(** Median (average of the two central elements for even lengths);
    0. on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs], nearest-rank convention: the smallest element of
    [xs] such that at least [p * length] elements are <= it (so
    [percentile 0.] is the minimum and [percentile 1.] the maximum, with
    no interpolation between order statistics). [p] is clamped to
    [\[0,1\]] (NaN counts as 0.); 0. on the empty list. *)

val min_max : float list -> float * float
(** (min, max); (0., 0.) on the empty list. *)
