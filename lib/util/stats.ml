let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 1.
  | xs ->
    let log_sum = List.fold_left (fun acc x -> acc +. log x) 0. xs in
    exp (log_sum /. float_of_int (List.length xs))

let sorted xs = List.sort compare xs

let median = function
  | [] -> 0.
  | xs ->
    let arr = Array.of_list (sorted xs) in
    let n = Array.length arr in
    if n mod 2 = 1 then arr.(n / 2)
    else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.

let percentile p = function
  | [] -> 0.
  | xs ->
    (* nearest-rank on the sorted sample; clamp p so callers feeding
       computed (possibly out-of-range or NaN) fractions get the nearest
       order statistic instead of an out-of-bounds index *)
    let p = if Float.is_nan p then 0. else Float.max 0. (Float.min 1. p) in
    let arr = Array.of_list (sorted xs) in
    let n = Array.length arr in
    let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
    arr.(max 0 (min (n - 1) idx))

let min_max = function
  | [] -> (0., 0.)
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs
