(** Set-associative data cache with LRU replacement.

    Only presence/absence of lines is modelled (no data storage — the
    simulator's memory is always coherent); this is sufficient and exact
    for timing and for the flush+reload side channel. Write misses
    allocate (write-allocate policy). *)

type config = {
  size_bytes : int;  (** total capacity *)
  ways : int;  (** associativity *)
  line_bytes : int;  (** line size (power of two) *)
}

val default_config : config
(** 64 KiB, 8-way, 64-byte lines. *)

type t

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable read_misses : int;
  mutable write_misses : int;
  mutable flushes : int;
}

val create : ?obs:Gb_obs.Sink.t -> config -> t
(** [obs] (default {!Gb_obs.Sink.noop}) receives [cache.*] counters, the
    [cache.miss_distance] histogram (accesses between consecutive misses)
    and a {!Gb_obs.Event.Cache_miss} event per allocated line. *)

val config : t -> config

val stats : t -> stats

val line_of : t -> int -> int
(** Line-aligned base address of the line containing an address. *)

val access : t -> addr:int -> write:bool -> bool
(** Touch one address: returns [true] on hit. Misses allocate the line,
    evicting the LRU way. Accesses that straddle a line boundary touch the
    second line too (a miss in either counts as a miss). *)

val access_range : t -> addr:int -> size:int -> write:bool -> bool
(** [access] over [size] bytes. *)

val contains : t -> int -> bool
(** Presence probe that does not disturb LRU state (for tests and
    reporting). *)

val set_index : t -> int -> int
(** Cache set holding the line that contains an address. *)

val lines : t -> int list
(** Line-aligned base addresses of every valid line, sorted. Used by the
    leakage audit to diff the real cache against the architectural
    shadow. *)

val flush_line : t -> int -> unit
(** Invalidate the line containing an address (no-op when absent). *)

val flush_all : t -> unit

val reset_stats : t -> unit
