(** The memory hierarchy seen by both the interpreter and the VLIW core:
    one L1 data cache in front of a flat-latency main memory.

    Callers translate the hit/miss outcome into stall cycles themselves:
    the interpreter charges [hit_extra] even on hits (its serial
    load-to-use path), while the VLIW pipeline hides the hit latency in
    the schedule and only stalls for [miss_penalty]. *)

type config = {
  cache : Cache.config;
  hit_extra : int;  (** extra cycles on hit on the interpreter path *)
  miss_penalty : int;  (** extra cycles on a miss, either path *)
}

val default_config : config
(** 64 KiB 8-way L1, hit_extra = 1, miss_penalty = 40. *)

type t

val create : ?obs:Gb_obs.Sink.t -> config -> t
(** [obs] (default {!Gb_obs.Sink.noop}) is forwarded to the L1D (see
    {!Cache.create}) and additionally receives per-access stall-cycle
    histograms ([cache.interp_stall_cycles] / [cache.vliw_stall_cycles])
    whose log-scale buckets separate the hit and miss clusters. *)

val cache : t -> Cache.t

val config : t -> config

val access : t -> addr:int -> size:int -> write:bool -> bool
(** Touch the cache; returns [true] on hit. *)

val interp_cost : t -> hit:bool -> int
(** [hit_extra] or [miss_penalty]. *)

val vliw_cost : t -> hit:bool -> int
(** [0] or [miss_penalty]. *)

val flush_line : t -> int -> unit

val flush_all : t -> unit
