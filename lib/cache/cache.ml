type config = { size_bytes : int; ways : int; line_bytes : int }

let default_config = { size_bytes = 64 * 1024; ways = 8; line_bytes = 64 }

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable read_misses : int;
  mutable write_misses : int;
  mutable flushes : int;
}

type t = {
  cfg : config;
  sets : int;
  tags : int array array;  (** sets x ways; -1 = invalid *)
  last_use : int array array;  (** LRU timestamps *)
  mutable tick : int;
  stats : stats;
  obs : Gb_obs.Sink.t;
  mutable accesses_since_miss : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ?(obs = Gb_obs.Sink.noop) cfg =
  if not (is_pow2 cfg.line_bytes) then invalid_arg "Cache: line size";
  let sets = cfg.size_bytes / (cfg.line_bytes * cfg.ways) in
  if sets <= 0 || not (is_pow2 sets) then invalid_arg "Cache: geometry";
  {
    cfg;
    sets;
    tags = Array.init sets (fun _ -> Array.make cfg.ways (-1));
    last_use = Array.init sets (fun _ -> Array.make cfg.ways 0);
    tick = 0;
    stats = { reads = 0; writes = 0; read_misses = 0; write_misses = 0; flushes = 0 };
    obs;
    accesses_since_miss = 0;
  }

let config t = t.cfg

let stats t = t.stats

let line_of t addr = addr land lnot (t.cfg.line_bytes - 1)

(* set and tag are computed separately (not as a returned pair): this
   runs on every memory access of both tiers and must not allocate *)
let set_of t addr = addr / t.cfg.line_bytes land (t.sets - 1)

let tag_of t addr = addr / t.cfg.line_bytes / t.sets

(* way index holding [tag], or -1: an [int option] here would allocate
   per cache hit. Top-level recursion with explicit parameters — a local
   [let rec] capturing [tags]/[tag] compiles to a closure allocation per
   lookup, and this runs on every memory access of both tiers. *)
let rec scan_ways tags tag ways i =
  if i >= ways then -1
  else if tags.(i) = tag then i
  else scan_ways tags tag ways (i + 1)

let find_way t set tag = scan_ways t.tags.(set) tag t.cfg.ways 0

let lru_way t set =
  let use = t.last_use.(set) in
  let tags = t.tags.(set) in
  let best = ref 0 in
  for i = 1 to t.cfg.ways - 1 do
    (* prefer invalid ways, then oldest *)
    if tags.(i) = -1 && tags.(!best) <> -1 then best := i
    else if tags.(i) = -1 && tags.(!best) = -1 then ()
    else if tags.(!best) <> -1 && use.(i) < use.(!best) then best := i
  done;
  !best

let touch_line t addr ~write =
  let set = set_of t addr and tag = tag_of t addr in
  t.tick <- t.tick + 1;
  let way = find_way t set tag in
  if way >= 0 then begin
    t.last_use.(set).(way) <- t.tick;
    true
  end
  else begin
    let way = lru_way t set in
    t.tags.(set).(way) <- tag;
    t.last_use.(set).(way) <- t.tick;
    if write then t.stats.write_misses <- t.stats.write_misses + 1
    else t.stats.read_misses <- t.stats.read_misses + 1;
    if Gb_obs.Sink.is_active t.obs then begin
      Gb_obs.Sink.incr t.obs
        (if write then "cache.write_misses" else "cache.read_misses");
      (* spacing between consecutive misses: log-scale buckets separate
         streaming (every access misses) from resident working sets *)
      Gb_obs.Sink.observe t.obs "cache.miss_distance"
        (float_of_int t.accesses_since_miss);
      t.accesses_since_miss <- 0;
      Gb_obs.Sink.event t.obs ~pc:addr
        (Gb_obs.Event.Cache_miss { addr; write })
    end;
    false
  end

let access t ~addr ~write =
  if write then t.stats.writes <- t.stats.writes + 1
  else t.stats.reads <- t.stats.reads + 1;
  if Gb_obs.Sink.is_active t.obs then begin
    t.accesses_since_miss <- t.accesses_since_miss + 1;
    Gb_obs.Sink.incr t.obs (if write then "cache.writes" else "cache.reads")
  end;
  touch_line t addr ~write

let access_range t ~addr ~size ~write =
  let first = access t ~addr ~write in
  let last_addr = addr + size - 1 in
  if line_of t last_addr <> line_of t addr then
    let second = touch_line t last_addr ~write in
    first && second
  else first

let contains t addr = find_way t (set_of t addr) (tag_of t addr) >= 0

let set_index t addr = set_of t addr

let lines t =
  let acc = ref [] in
  for set = 0 to t.sets - 1 do
    let tags = t.tags.(set) in
    for way = 0 to t.cfg.ways - 1 do
      let tag = tags.(way) in
      if tag >= 0 then acc := ((tag * t.sets) + set) * t.cfg.line_bytes :: !acc
    done
  done;
  List.sort compare !acc

let flush_line t addr =
  let set = set_of t addr and tag = tag_of t addr in
  t.stats.flushes <- t.stats.flushes + 1;
  Gb_obs.Sink.incr t.obs "cache.flushes";
  let way = find_way t set tag in
  if way >= 0 then t.tags.(set).(way) <- -1

let flush_all t =
  Array.iter (fun ways -> Array.fill ways 0 (Array.length ways) (-1)) t.tags

let reset_stats t =
  let s = t.stats in
  s.reads <- 0;
  s.writes <- 0;
  s.read_misses <- 0;
  s.write_misses <- 0;
  s.flushes <- 0
