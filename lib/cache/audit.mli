(** Speculative-leakage audit: differential cache shadowing.

    An audit owns a {e shadow} copy of the L1D that is fed only by
    architecturally-committed accesses — the interpreter path commits
    directly, while trace-run accesses are buffered and replayed at the
    run's exit according to the commit boundary (a buffered op whose DFG
    id precedes the taken exit's id is architectural; anything after it
    executed transiently). At every run boundary the transient accesses
    are diffed against the shadow: a line present in the real cache but
    absent from the shadow is a {e transient side-effect record},
    attributed to the guest pc, region and hoisted load that caused it.

    Records are cross-correlated with the poison/mitigation verdicts the
    engine reports ({!note_flagged} / {!note_constrained}) to classify
    every speculative load pc:

    - {b true positive}: flagged, and at least one transient line whose
      address depended on speculatively loaded data — it would have (or
      did) leak;
    - {b false negative}: unflagged, yet left dependent transient cache
      state — a real detector miss;
    - {b over-mitigation}: flagged/constrained but never perturbed the
      cache with dependent data.

    Note that precision is ground-truth-measurable only in modes that let
    flagged loads actually run transiently (the engine runs the poisoning
    analysis report-only under [Unsafe] when an audit is attached); under
    a constraining mode flagged loads cannot perturb the cache by
    construction, so they land in the over-mitigation bucket and the
    audit degenerates to checking the false-negative side. *)

type t

val create : ?obs:Gb_obs.Sink.t -> real:Cache.t -> unit -> t
(** The shadow cache copies [real]'s geometry. [obs] receives the
    [audit.*] counters and {!Gb_obs.Event.Transient_line} events. *)

(** {2 Architectural (interpreter) path} *)

val commit_access : t -> addr:int -> size:int -> write:bool -> unit
(** Mirror an architecturally-committed access into the shadow. *)

val commit_flush : t -> addr:int -> unit

(** {2 Trace-run path}

    The VLIW pipeline buffers every memory op it executes, tagged with
    its DFG node id (original guest program order) and a taint verdict,
    then closes the run with the taken exit's id. *)

val begin_run : t -> region:int -> unit

val run_access :
  t ->
  id:int ->
  pc:int ->
  addr:int ->
  size:int ->
  write:bool ->
  speculative:bool ->
  dependent:bool ->
  unit
(** [speculative] marks a hoisted (branch- or MCB-speculative) load;
    [dependent] marks a load whose address was derived from speculatively
    loaded data (the Spectre leak condition, computed by the pipeline's
    taint tracking). *)

val run_flush : t -> id:int -> pc:int -> addr:int -> unit

val end_run : t -> exit_id:int -> unit
(** Close the run: buffered ops with [id < exit_id] replay into the
    shadow in program order; the rest are transient and are diffed
    against the shadow, emitting one record per divergent line. *)

(** {2 Verdicts from the engine} *)

val note_spec_load : t -> pc:int -> unit
(** A load at [pc] was speculatively hoisted in some trace. *)

val note_flagged : t -> pc:int -> unit
(** The poisoning analysis flagged the load at [pc] as a Spectre
    pattern. *)

val note_constrained : t -> pc:int -> unit
(** The mitigation actually constrained the load at [pc]. *)

val flagged_pc_list : t -> int list
(** Distinct pcs noted via {!note_flagged}, sorted — the detector's
    positives, used as ground truth when scoring the static gadget
    scanner. *)

val dependent_pcs : t -> int list
(** Distinct pcs that left at least one {e dependent} transient line
    (address derived from speculatively loaded data), sorted — the
    runtime evidence the static translation verifier must cover
    (its false-negative check). *)

(** {2 Results} *)

type summary = {
  spec_loads : int;  (** distinct speculative-load pcs observed *)
  flagged : int;  (** distinct pcs flagged by the poisoning analysis *)
  constrained : int;  (** distinct pcs actually constrained *)
  transient_lines : int;  (** transient side-effect records (all runs) *)
  dependent_lines : int;  (** records with a speculative-data-derived address *)
  transient_pcs : int;  (** distinct pcs with at least one record *)
  true_positives : int;
  false_negatives : int;
  over_mitigations : int;
  precision : float;  (** tp / (tp + over_mitigations); 1.0 when nothing flagged *)
  recall : float;  (** tp / (tp + fn); 1.0 when nothing leaked *)
  over_fencing_rate : float;  (** over_mitigations / flagged; 0.0 when none *)
  sets_touched : int list;  (** distinct cache sets transiently touched, sorted *)
  shadow_divergence : int;  (** symmetric diff of real vs shadow at summary time *)
}

val summary : t -> summary
(** Classify and aggregate; safe to call repeatedly. *)

val publish : t -> summary
(** {!summary}, additionally written into the sink as [audit.*] gauges so
    the classification appears in metrics snapshots. *)

val summary_to_json : summary -> Gb_util.Json.t

val pp_summary : Format.formatter -> summary -> unit
(** Human-readable audit table (used by [ghostbusters --audit]). *)
