type buf_op =
  | Baccess of {
      id : int;
      pc : int;
      addr : int;
      size : int;
      write : bool;
      speculative : bool;
      dependent : bool;
    }
  | Bflush of { id : int; pc : int; addr : int }

let op_id = function Baccess { id; _ } -> id | Bflush { id; _ } -> id

type pc_stats = { mutable records : int; mutable dependent : int }

type t = {
  real : Cache.t;
  shadow : Cache.t;
  obs : Gb_obs.Sink.t;
  mutable buf : buf_op list;  (** current run, reverse execution order *)
  mutable run_region : int;
  spec_pcs : (int, unit) Hashtbl.t;
  flagged_pcs : (int, unit) Hashtbl.t;
  constrained_pcs : (int, unit) Hashtbl.t;
  transient_by_pc : (int, pc_stats) Hashtbl.t;
  sets_touched : (int, unit) Hashtbl.t;
  mutable transient_lines : int;
  mutable dependent_lines : int;
}

let create ?(obs = Gb_obs.Sink.noop) ~real () =
  {
    real;
    shadow = Cache.create (Cache.config real);
    obs;
    buf = [];
    run_region = 0;
    spec_pcs = Hashtbl.create 16;
    flagged_pcs = Hashtbl.create 16;
    constrained_pcs = Hashtbl.create 16;
    transient_by_pc = Hashtbl.create 16;
    sets_touched = Hashtbl.create 16;
    transient_lines = 0;
    dependent_lines = 0;
  }

let commit_access t ~addr ~size ~write =
  ignore (Cache.access_range t.shadow ~addr ~size ~write)

let commit_flush t ~addr = Cache.flush_line t.shadow addr

let begin_run t ~region =
  t.buf <- [];
  t.run_region <- region

let run_access t ~id ~pc ~addr ~size ~write ~speculative ~dependent =
  t.buf <- Baccess { id; pc; addr; size; write; speculative; dependent } :: t.buf

let run_flush t ~id ~pc ~addr = t.buf <- Bflush { id; pc; addr } :: t.buf

let note pcs ~pc = if not (Hashtbl.mem pcs pc) then Hashtbl.add pcs pc ()

let note_spec_load t ~pc = note t.spec_pcs ~pc

let note_flagged t ~pc = note t.flagged_pcs ~pc

let note_constrained t ~pc = note t.constrained_pcs ~pc

let record t ~pc ~line ~dependent =
  (let st =
     match Hashtbl.find_opt t.transient_by_pc pc with
     | Some st -> st
     | None ->
       let st = { records = 0; dependent = 0 } in
       Hashtbl.add t.transient_by_pc pc st;
       st
   in
   st.records <- st.records + 1;
   if dependent then st.dependent <- st.dependent + 1);
  let set_idx = Cache.set_index t.real line in
  if not (Hashtbl.mem t.sets_touched set_idx) then
    Hashtbl.add t.sets_touched set_idx ();
  t.transient_lines <- t.transient_lines + 1;
  if dependent then t.dependent_lines <- t.dependent_lines + 1;
  if Gb_obs.Sink.is_active t.obs then begin
    Gb_obs.Sink.incr t.obs "audit.transient_lines";
    if dependent then Gb_obs.Sink.incr t.obs "audit.dependent_transient_lines";
    Gb_obs.Sink.event t.obs ~pc ~region:t.run_region
      (Gb_obs.Event.Transient_line { addr = line; set_idx; dependent })
  end

(* Lines covered by a possibly line-straddling access. *)
let lines_of t ~addr ~size =
  let first = Cache.line_of t.real addr in
  let last = Cache.line_of t.real (addr + size - 1) in
  if first = last then [ first ] else [ first; last ]

let end_run t ~exit_id =
  let ops = List.sort (fun a b -> compare (op_id a) (op_id b)) t.buf in
  t.buf <- [];
  let committed, transient = List.partition (fun o -> op_id o < exit_id) ops in
  List.iter
    (function
      | Baccess { addr; size; write; _ } -> commit_access t ~addr ~size ~write
      | Bflush { addr; _ } -> commit_flush t ~addr)
    committed;
  (* Diff each transient load against the shadow, at most one record per
     (pc, line) per run. Stores cannot execute transiently (they are
     pinned behind the last exit) but are skipped defensively. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (function
      | Baccess { pc; addr; size; write = false; dependent; _ } ->
        List.iter
          (fun line ->
            if not (Hashtbl.mem seen (pc, line)) then begin
              Hashtbl.add seen (pc, line) ();
              if Cache.contains t.real line && not (Cache.contains t.shadow line)
              then record t ~pc ~line ~dependent
            end)
          (lines_of t ~addr ~size)
      | Baccess _ | Bflush _ -> ())
    transient

let flagged_pc_list t =
  Hashtbl.fold (fun pc () acc -> pc :: acc) t.flagged_pcs []
  |> List.sort compare

let dependent_pcs t =
  Hashtbl.fold
    (fun pc st acc -> if st.dependent > 0 then pc :: acc else acc)
    t.transient_by_pc []
  |> List.sort compare

type summary = {
  spec_loads : int;
  flagged : int;
  constrained : int;
  transient_lines : int;
  dependent_lines : int;
  transient_pcs : int;
  true_positives : int;
  false_negatives : int;
  over_mitigations : int;
  precision : float;
  recall : float;
  over_fencing_rate : float;
  sets_touched : int list;
  shadow_divergence : int;
}

let summary t =
  let has_dep pc =
    match Hashtbl.find_opt t.transient_by_pc pc with
    | Some st -> st.dependent > 0
    | None -> false
  in
  (* Classification universe: every pc that was speculatively hoisted,
     flagged, or left dependent transient state. *)
  let universe = Hashtbl.create 16 in
  Hashtbl.iter (fun pc () -> note universe ~pc) t.spec_pcs;
  Hashtbl.iter (fun pc () -> note universe ~pc) t.flagged_pcs;
  Hashtbl.iter
    (fun pc st -> if st.dependent > 0 then note universe ~pc)
    t.transient_by_pc;
  let tp = ref 0 and fn = ref 0 and over = ref 0 in
  Hashtbl.iter
    (fun pc () ->
      let flagged = Hashtbl.mem t.flagged_pcs pc in
      match (flagged, has_dep pc) with
      | true, true -> incr tp
      | false, true -> incr fn
      | true, false -> incr over
      | false, false -> ()  (* hoisted benignly, correctly left alone *))
    universe;
  let flagged = Hashtbl.length t.flagged_pcs in
  let ratio num den = if den = 0 then 1.0 else float_of_int num /. float_of_int den in
  let divergence =
    let real = Cache.lines t.real and shadow = Cache.lines t.shadow in
    let only l r = List.filter (fun x -> not (List.mem x r)) l in
    List.length (only real shadow) + List.length (only shadow real)
  in
  {
    spec_loads = Hashtbl.length t.spec_pcs;
    flagged;
    constrained = Hashtbl.length t.constrained_pcs;
    transient_lines = t.transient_lines;
    dependent_lines = t.dependent_lines;
    transient_pcs = Hashtbl.length t.transient_by_pc;
    true_positives = !tp;
    false_negatives = !fn;
    over_mitigations = !over;
    precision = ratio !tp (!tp + !over);
    recall = ratio !tp (!tp + !fn);
    over_fencing_rate = (if flagged = 0 then 0.0 else ratio !over flagged);
    sets_touched =
      Hashtbl.fold (fun s () acc -> s :: acc) t.sets_touched []
      |> List.sort compare;
    shadow_divergence = divergence;
  }

let publish t =
  let s = summary t in
  if Gb_obs.Sink.is_active t.obs then begin
    let g name v = Gb_obs.Sink.set_gauge t.obs name (float_of_int v) in
    g "audit.spec_loads" s.spec_loads;
    g "audit.flagged" s.flagged;
    g "audit.constrained" s.constrained;
    g "audit.transient_pcs" s.transient_pcs;
    g "audit.true_positives" s.true_positives;
    g "audit.false_negatives" s.false_negatives;
    g "audit.over_mitigations" s.over_mitigations;
    g "audit.shadow_divergence" s.shadow_divergence;
    Gb_obs.Sink.set_gauge t.obs "audit.precision" s.precision;
    Gb_obs.Sink.set_gauge t.obs "audit.recall" s.recall;
    Gb_obs.Sink.set_gauge t.obs "audit.over_fencing_rate" s.over_fencing_rate
  end;
  s

let summary_to_json s =
  let module J = Gb_util.Json in
  J.Obj
    [
      ("spec_loads", J.Int s.spec_loads);
      ("flagged", J.Int s.flagged);
      ("constrained", J.Int s.constrained);
      ("transient_lines", J.Int s.transient_lines);
      ("dependent_lines", J.Int s.dependent_lines);
      ("transient_pcs", J.Int s.transient_pcs);
      ("true_positives", J.Int s.true_positives);
      ("false_negatives", J.Int s.false_negatives);
      ("over_mitigations", J.Int s.over_mitigations);
      ("precision", J.Float s.precision);
      ("recall", J.Float s.recall);
      ("over_fencing_rate", J.Float s.over_fencing_rate);
      ("sets_touched", J.List (List.map (fun x -> J.Int x) s.sets_touched));
      ("shadow_divergence", J.Int s.shadow_divergence);
    ]

let pp_summary ppf s =
  let open Format in
  fprintf ppf "speculative load pcs   %6d@," s.spec_loads;
  fprintf ppf "flagged by analysis    %6d@," s.flagged;
  fprintf ppf "actually constrained   %6d@," s.constrained;
  fprintf ppf "transient lines        %6d  (%d address-dependent)@,"
    s.transient_lines s.dependent_lines;
  fprintf ppf "distinct leaking pcs   %6d@," s.transient_pcs;
  fprintf ppf "true positives         %6d@," s.true_positives;
  fprintf ppf "false negatives        %6d@," s.false_negatives;
  fprintf ppf "over-mitigations       %6d@," s.over_mitigations;
  fprintf ppf "precision              %6.2f@," s.precision;
  fprintf ppf "recall                 %6.2f@," s.recall;
  fprintf ppf "over-fencing rate      %6.2f@," s.over_fencing_rate;
  fprintf ppf "cache sets touched     %6d@," (List.length s.sets_touched);
  fprintf ppf "shadow divergence      %6d" s.shadow_divergence
