type config = { cache : Cache.config; hit_extra : int; miss_penalty : int }

let default_config =
  { cache = Cache.default_config; hit_extra = 1; miss_penalty = 40 }

type t = { cfg : config; l1d : Cache.t; obs : Gb_obs.Sink.t }

let create ?(obs = Gb_obs.Sink.noop) cfg =
  { cfg; l1d = Cache.create ~obs cfg.cache; obs }

let cache t = t.l1d

let config t = t.cfg

let access t ~addr ~size ~write = Cache.access_range t.l1d ~addr ~size ~write

let interp_cost t ~hit =
  let cost = if hit then t.cfg.hit_extra else t.cfg.miss_penalty in
  if Gb_obs.Sink.is_active t.obs then
    Gb_obs.Sink.observe t.obs "cache.interp_stall_cycles" (float_of_int cost);
  cost

let vliw_cost t ~hit =
  let cost = if hit then 0 else t.cfg.miss_penalty in
  if Gb_obs.Sink.is_active t.obs then
    Gb_obs.Sink.observe t.obs "cache.vliw_stall_cycles" (float_of_int cost);
  cost

let flush_line t addr = Cache.flush_line t.l1d addr

let flush_all t = Cache.flush_all t.l1d
