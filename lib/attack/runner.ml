type outcome = {
  recovered : string;
  correct_bytes : int;
  total_bytes : int;
  accuracy : float;
  result : Gb_system.Processor.result;
  verify_log : (int * Gb_verify.Verifier.violation) list;
}

let run ?config ?obs ?(audit = false) ?(seed = 1L) ~mode ~secret program =
  let config =
    match config with
    | Some c -> c
    | None -> Gb_system.Processor.config_for mode
  in
  (* An audited run without a caller-provided sink gets its own, so the
     audit.* metrics land somewhere; [seed] pins the histogram reservoirs
     for bit-for-bit reproducible snapshots. *)
  let obs =
    match obs with
    | Some s -> s
    | None -> if audit then Gb_obs.Sink.create ~seed () else Gb_obs.Sink.noop
  in
  let asm = Gb_kernelc.Compile.assemble program in
  let proc = Gb_system.Processor.create ~config ~obs ~audit asm in
  let result = Gb_system.Processor.run proc in
  let mem = Gb_system.Processor.mem proc in
  let len = String.length secret in
  let recovered = Side_channel.read_recovered mem asm ~len in
  let correct =
    List.length
      (List.filter
         (fun i -> recovered.[i] = secret.[i])
         (List.init len (fun i -> i)))
  in
  {
    recovered;
    correct_bytes = correct;
    total_bytes = len;
    accuracy = float_of_int correct /. float_of_int len;
    result;
    verify_log = Gb_dbt.Engine.verify_log (Gb_system.Processor.engine proc);
  }

let succeeded o = o.correct_bytes = o.total_bytes

let printable s =
  String.map (fun ch -> if Char.code ch >= 32 && Char.code ch < 127 then ch else '.') s

let pp_outcome ppf o =
  Format.fprintf ppf "recovered %d/%d bytes (%.0f%%): %S" o.correct_bytes
    o.total_bytes (100. *. o.accuracy) (printable o.recovered)
