type outcome = {
  recovered : string;
  correct_bytes : int;
  total_bytes : int;
  accuracy : float;
  result : Gb_system.Processor.result;
}

let run ?config ?obs ~mode ~secret program =
  let config =
    match config with
    | Some c -> c
    | None -> Gb_system.Processor.config_for mode
  in
  let asm = Gb_kernelc.Compile.assemble program in
  let proc = Gb_system.Processor.create ~config ?obs asm in
  let result = Gb_system.Processor.run proc in
  let mem = Gb_system.Processor.mem proc in
  let len = String.length secret in
  let recovered = Side_channel.read_recovered mem asm ~len in
  let correct =
    List.length
      (List.filter
         (fun i -> recovered.[i] = secret.[i])
         (List.init len (fun i -> i)))
  in
  {
    recovered;
    correct_bytes = correct;
    total_bytes = len;
    accuracy = float_of_int correct /. float_of_int len;
    result;
  }

let succeeded o = o.correct_bytes = o.total_bytes

let printable s =
  String.map (fun ch -> if Char.code ch >= 32 && Char.code ch < 127 then ch else '.') s

let pp_outcome ppf o =
  Format.fprintf ppf "recovered %d/%d bytes (%.0f%%): %S" o.correct_bytes
    o.total_bytes (100. *. o.accuracy) (printable o.recovered)
