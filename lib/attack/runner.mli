(** Run a Spectre proof-of-concept on the full processor and score how much
    of the secret leaked. *)

type outcome = {
  recovered : string;  (** bytes the attacker extracted *)
  correct_bytes : int;
  total_bytes : int;
  accuracy : float;  (** correct / total *)
  result : Gb_system.Processor.result;
  verify_log : (int * Gb_verify.Verifier.violation) list;
      (** per-region install-time verifier violations (empty unless the
          config enables {!Gb_dbt.Engine.type-verify_level} checking) *)
}

val run :
  ?config:Gb_system.Processor.config ->
  ?obs:Gb_obs.Sink.t ->
  ?audit:bool ->
  ?seed:int64 ->
  mode:Gb_core.Mitigation.mode ->
  secret:string ->
  Gb_kernelc.Ast.program ->
  outcome
(** The program must use the {!Side_channel} layout (arrays [recovered] and
    [results]). [audit] (default [false]) attaches the leakage audit; its
    classification is in [outcome.result.audit]. When [audit] is on and no
    [obs] is given, the runner creates an active sink seeded with [seed]
    (default [1L]) so audit counters are reproducible bit-for-bit. *)

val succeeded : outcome -> bool
(** True when every secret byte was recovered. *)

val pp_outcome : Format.formatter -> outcome -> unit
