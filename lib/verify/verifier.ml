open Gb_vliw

type kind =
  | Tainted_load
  | Tainted_store
  | Transient_store
  | Tainted_commit
  | Unguarded_bypass
  | Unrealized_cut
  | Residual_flow

let kind_name = function
  | Tainted_load -> "tainted-load-address"
  | Tainted_store -> "tainted-store"
  | Transient_store -> "transient-store"
  | Tainted_commit -> "tainted-commit"
  | Unguarded_bypass -> "unguarded-bypass"
  | Unrealized_cut -> "unrealized-cut"
  | Residual_flow -> "residual-flow"

type violation = {
  v_kind : kind;
  v_pc : int;
  v_id : int;
  v_bundle : int;
  v_origins : int list;
}

type report = {
  violations : violation list;
  sched_spec_loads : int;
  flag_spec_loads : int;
  mem_ops : int;
  bundles : int;
}

module IS = Set.Make (Int)

(* Taint carried by a register value. [origins] are the guest pcs of the
   speculative loads it flowed from. [live] is the last bundle at which
   the value is still guarded (its youngest guard's bundle): reads at a
   later bundle see an architecturally-validated value. The record itself
   is sticky for the whole run — mirroring the pipeline's runtime taint,
   which never expires — so the audit's [dependent] verdict can never be
   true where the verifier saw a clean register. *)
type taint = { live : int; origins : IS.t }

let read st = function
  | Vinsn.I _ -> None
  | Vinsn.R r -> if r = 0 then None else st.(r)

(* Value read at bundle [c]: the sticky component always propagates; the
   live window only if the guard has not resolved yet. *)
let at c = function
  | None -> None
  | Some t -> Some (if t.live >= c then t else { t with live = -1 })

let join a b =
  match (a, b) with
  | None, t | t, None -> t
  | Some x, Some y ->
    Some { live = max x.live y.live; origins = IS.union x.origins y.origins }

let is_live c = function Some t -> t.live >= c | None -> false

let origins_of = function Some t -> IS.elements t.origins | None -> []

(* Positions of every exit-like op, store and MCB check in the schedule.
   An exit-like at bundle [b] with exit id [e] "guards" any op with a
   larger id in a bundle <= [b]: when that exit is taken, the op has
   already executed even though it is architecturally after the exit. *)
type positions = {
  exits : (int * int) list;  (** (exit_id, bundle) *)
  stores : (int * int) list;  (** (id, bundle) *)
  chks : (int, int) Hashtbl.t;  (** MCB tag -> bundle of its Chk *)
}

let positions (tr : Vinsn.trace) =
  let exits = ref [] and stores = ref [] in
  let chks = Hashtbl.create 8 in
  Array.iteri
    (fun c bundle ->
      Array.iter
        (fun op ->
          match op with
          | Vinsn.Branch { stub; _ } | Vinsn.Exit { stub } ->
            exits := (tr.Vinsn.stubs.(stub).Vinsn.exit_id, c) :: !exits
          | Vinsn.Chk { tag; stub } ->
            exits := (tr.Vinsn.stubs.(stub).Vinsn.exit_id, c) :: !exits;
            Hashtbl.replace chks tag c
          | Vinsn.Store { id; _ } -> stores := (id, c) :: !stores
          | _ -> ())
        bundle)
    tr.Vinsn.bundles;
  { exits = !exits; stores = !stores; chks }

(* Exits this op is scheduled above: taken, they would make it transient. *)
let unresolved_exits pos ~id ~bundle =
  List.filter (fun (e, b) -> e < id && b >= bundle) pos.exits

let verify (tr : Vinsn.trace) =
  let pos = positions tr in
  let nb = Array.length tr.Vinsn.bundles in
  let st = Array.make (max 1 tr.Vinsn.n_regs) None in
  let violations = ref [] in
  let sched_spec = ref 0 and flag_spec = ref 0 and mem_ops = ref 0 in
  let flag kind ~pc ~id ~bundle origins =
    violations :=
      { v_kind = kind; v_pc = pc; v_id = id; v_bundle = bundle;
        v_origins = origins }
      :: !violations
  in
  Array.iteri
    (fun c bundle ->
      (* parallel-read semantics, as in the pipeline: every op of the
         bundle reads pre-bundle state; writes land at end of cycle *)
      let writes = ref [] in
      let exits_here = ref [] in
      let write dst t = if dst <> 0 then writes := (dst, t) :: !writes in
      Array.iter
        (fun op ->
          match op with
          | Vinsn.Nop | Vinsn.Fence -> ()
          | Vinsn.Alu { dst; a; b; _ } ->
            write dst (join (at c (read st a)) (at c (read st b)))
          | Vinsn.Mv { dst; src } -> write dst (at c (read st src))
          | Vinsn.Rdcycle { dst } -> write dst None
          | Vinsn.Load { dst; base; spec; id; pc; hoisted; _ } ->
            incr mem_ops;
            let guards = unresolved_exits pos ~id ~bundle:c in
            let bypassed =
              List.filter (fun (s, b) -> s < id && b >= c) pos.stores
            in
            let branch_live =
              List.fold_left (fun acc (_, b) -> max acc b) (-1) guards
            in
            let mcb_live =
              match bypassed with
              | [] -> -1
              | _ :: _ -> (
                let last_store =
                  List.fold_left (fun acc (_, b) -> max acc b) (-1) bypassed
                in
                match spec with
                | Some tag when
                    (match Hashtbl.find_opt pos.chks tag with
                     | Some cb -> cb >= last_store
                     | None -> false) ->
                  Hashtbl.find pos.chks tag
                | Some _ | None ->
                  (* bypasses a store with no check resolving after it:
                     treat the value as never validated in this trace *)
                  flag Unguarded_bypass ~pc ~id ~bundle:c [];
                  nb)
            in
            let sched = guards <> [] || bypassed <> [] in
            let flagged = hoisted || spec <> None in
            if sched then incr sched_spec;
            if flagged then incr flag_spec;
            let base_t = at c (read st base) in
            if base_t <> None && guards <> [] then
              flag Tainted_load ~pc ~id ~bundle:c (origins_of base_t);
            let seed =
              if sched || flagged then
                Some
                  { live = max branch_live mcb_live; origins = IS.singleton pc }
              else None
            in
            (* the loaded value inherits the address's taint, as in the
               pipeline: data at a speculatively-derived address is itself
               speculative *)
            write dst (join seed base_t)
          | Vinsn.Store { src; base; id; pc; _ } ->
            incr mem_ops;
            if unresolved_exits pos ~id ~bundle:c <> [] then
              flag Transient_store ~pc ~id ~bundle:c [];
            let src_t = at c (read st src) and base_t = at c (read st base) in
            if is_live c src_t || is_live c base_t then
              flag Tainted_store ~pc ~id ~bundle:c
                (origins_of (join src_t base_t))
          | Vinsn.Cflush { id; pc; _ } ->
            incr mem_ops;
            if unresolved_exits pos ~id ~bundle:c <> [] then
              flag Transient_store ~pc ~id ~bundle:c []
          | Vinsn.Branch { stub; _ } | Vinsn.Chk { stub; _ }
          | Vinsn.Exit { stub } ->
            exits_here := stub :: !exits_here)
        bundle;
      List.iter (fun (dst, t) -> st.(dst) <- t) (List.rev !writes);
      (* Commits run after the bundle's write-back, when every guard
         scheduled at bundle [c] or earlier has resolved: only a value
         whose live window extends strictly past [c] is still
         speculative at commit time. *)
      List.iter
        (fun s ->
          let stub = tr.Vinsn.stubs.(s) in
          List.iter
            (fun (_, src) ->
              match src with
              | Vinsn.R r when r <> 0 -> (
                match st.(r) with
                | Some t when t.live > c ->
                  flag Tainted_commit ~pc:stub.Vinsn.target_pc
                    ~id:stub.Vinsn.exit_id ~bundle:c (IS.elements t.origins)
                | Some _ | None -> ())
              | Vinsn.R _ | Vinsn.I _ -> ())
            stub.Vinsn.commits)
        !exits_here)
    tr.Vinsn.bundles;
  {
    violations = List.rev !violations;
    sched_spec_loads = !sched_spec;
    flag_spec_loads = !flag_spec;
    mem_ops = !mem_ops;
    bundles = nb;
  }

(* ------------------------------------------------------------------ *)
(* Cut-soundness pass (Min_cut mode).

   Venkman-style enforcement of the min-cut plan on the emitted unit:
   speculation facts are re-derived from the schedule alone, so a repair
   the optimizer believed realized but that the scheduler or code
   generator undid still fails here.  Two obligations:

   - every planned repair is visibly materialized (the protected load is
     present and no longer schedule-speculative; a mask repair also has
     its identity-AND in a strictly earlier bundle; fence repairs have
     their barriers) -> [Unrealized_cut] otherwise;

   - no residual source->transmitter path survives: an independent
     sticky taint pass seeded only by loads the schedule still
     speculates must reach no speculative load address and no transient
     store/flush operand -> [Residual_flow] otherwise.

   Commits are deliberately left to [verify]'s live-window pass: by
   commit time the committing exit has resolved, so sticky taint there
   is architecturally validated data and a sticky check would reject
   sound schedules. *)

(* Schedule-speculative, mirroring [verify]: above an unresolved earlier
   exit, or bypassing an earlier store without an MCB check resolving
   after the last bypassed store. *)
let sched_speculative pos ~id ~bundle ~spec =
  unresolved_exits pos ~id ~bundle <> []
  ||
  match List.filter (fun (s, b) -> s < id && b >= bundle) pos.stores with
  | [] -> false
  | bypassed -> (
    let last_store =
      List.fold_left (fun acc (_, b) -> max acc b) (-1) bypassed
    in
    match spec with
    | None -> true
    | Some tag -> (
      match Hashtbl.find_opt pos.chks tag with
      | Some cb -> cb < last_store
      | None -> true))

let check_cut (tr : Vinsn.trace) ~(plan : Gb_core.Leakcut.plan) =
  let module L = Gb_core.Leakcut in
  let pos = positions tr in
  let violations = ref [] in
  let flag kind ~pc ~id ~bundle origins =
    violations :=
      { v_kind = kind; v_pc = pc; v_id = id; v_bundle = bundle;
        v_origins = origins }
      :: !violations
  in
  (* Where every load landed, plus the structural witnesses of repairs:
     identity-AND mask ops and fences. *)
  let loads = Hashtbl.create 16 in
  let mask_bundles = ref [] and fence_ops = ref 0 in
  Array.iteri
    (fun c bundle ->
      Array.iter
        (fun op ->
          match op with
          | Vinsn.Load { id; pc; spec; _ } ->
            Hashtbl.replace loads id (c, pc, spec)
          | Vinsn.Alu { op = Gb_riscv.Insn.AND; b = Vinsn.I m; _ }
            when Int64.equal m (-1L) ->
            mask_bundles := c :: !mask_bundles
          | Vinsn.Fence -> incr fence_ops
          | _ -> ())
        bundle)
    tr.Vinsn.bundles;
  (* Obligation 1: every repair in the plan — realized or not, so the
     deliberately-unsound sensitivity control is caught — is visible in
     the schedule. *)
  let fence_repairs =
    List.length (List.filter (fun r -> r.L.r_kind = L.Fence) plan.L.repairs)
  in
  List.iter
    (fun r ->
      match r.L.r_kind with
      | L.Fence ->
        if !fence_ops < fence_repairs then
          flag Unrealized_cut ~pc:r.L.r_pc ~id:r.L.r_node ~bundle:(-1) []
      | L.Dep_reinsert | L.Mask -> (
        match Hashtbl.find_opt loads r.L.r_node with
        | None ->
          (* the protected load vanished from the emitted unit *)
          flag Unrealized_cut ~pc:r.L.r_pc ~id:r.L.r_node ~bundle:(-1) []
        | Some (c, pc, spec) ->
          if sched_speculative pos ~id:r.L.r_node ~bundle:c ~spec then
            flag Unrealized_cut ~pc ~id:r.L.r_node ~bundle:c [];
          if
            r.L.r_kind = L.Mask
            && not (List.exists (fun mb -> mb < c) !mask_bundles)
          then flag Unrealized_cut ~pc ~id:r.L.r_node ~bundle:c []))
    plan.L.repairs;
  (* Obligation 2: residual flow.  Sticky taint (no live windows — any
     schedule-speculative value is a potential transmitter payload for
     the rest of the unit) seeded only from loads the schedule still
     speculates; parallel-read semantics as in [verify]. *)
  let st = Array.make (max 1 tr.Vinsn.n_regs) None in
  let read_t = function
    | Vinsn.I _ -> None
    | Vinsn.R r -> if r = 0 then None else st.(r)
  in
  let joins a b =
    match (a, b) with
    | None, t | t, None -> t
    | Some x, Some y -> Some (IS.union x y)
  in
  let elems = function Some s -> IS.elements s | None -> [] in
  Array.iteri
    (fun c bundle ->
      let writes = ref [] in
      let write dst t = if dst <> 0 then writes := (dst, t) :: !writes in
      Array.iter
        (fun op ->
          match op with
          | Vinsn.Nop | Vinsn.Fence -> ()
          | Vinsn.Alu { dst; a; b; _ } -> write dst (joins (read_t a) (read_t b))
          | Vinsn.Mv { dst; src } -> write dst (read_t src)
          | Vinsn.Rdcycle { dst } -> write dst None
          | Vinsn.Load { dst; base; spec; id; pc; _ } ->
            let sched = sched_speculative pos ~id ~bundle:c ~spec in
            let base_t = read_t base in
            if sched && base_t <> None then
              flag Residual_flow ~pc ~id ~bundle:c (elems base_t);
            let seed = if sched then Some (IS.singleton pc) else None in
            write dst (joins seed base_t)
          | Vinsn.Store { src; base; id; pc; _ } ->
            if unresolved_exits pos ~id ~bundle:c <> [] then (
              let t = joins (read_t src) (read_t base) in
              if t <> None then flag Residual_flow ~pc ~id ~bundle:c (elems t))
          | Vinsn.Cflush { base; id; pc; _ } ->
            if unresolved_exits pos ~id ~bundle:c <> [] then (
              match read_t base with
              | Some s -> flag Residual_flow ~pc ~id ~bundle:c (IS.elements s)
              | None -> ())
          | Vinsn.Branch _ | Vinsn.Chk _ | Vinsn.Exit _ -> ())
        bundle;
      List.iter (fun (dst, t) -> st.(dst) <- t) (List.rev !writes))
    tr.Vinsn.bundles;
  List.rev !violations

let ok r = r.violations = []

let violation_pcs r =
  List.sort_uniq compare (List.map (fun v -> v.v_pc) r.violations)

let pp_report ppf r =
  let open Format in
  if r.violations = [] then
    fprintf ppf "verify: clean (%d bundles, %d mem ops, %d sched-spec loads)"
      r.bundles r.mem_ops r.sched_spec_loads
  else begin
    fprintf ppf "@[<v>";
    List.iter
      (fun v ->
        fprintf ppf "verify: %s pc=0x%x bundle=%d id=%d%s@,"
          (kind_name v.v_kind) v.v_pc v.v_bundle v.v_id
          (match v.v_origins with
          | [] -> ""
          | pcs ->
            Printf.sprintf " from=[%s]"
              (String.concat ";"
                 (List.map (Printf.sprintf "0x%x") pcs))))
      r.violations;
    fprintf ppf "%d violation(s) in %d bundles@]"
      (List.length r.violations) r.bundles
  end

let report_to_json r =
  let module J = Gb_util.Json in
  J.Obj
    [
      ( "violations",
        J.List
          (List.map
             (fun v ->
               J.Obj
                 [
                   ("kind", J.String (kind_name v.v_kind));
                   ("pc", J.Int v.v_pc);
                   ("id", J.Int v.v_id);
                   ("bundle", J.Int v.v_bundle);
                   ("origins", J.List (List.map (fun p -> J.Int p) v.v_origins));
                 ])
             r.violations) );
      ("sched_spec_loads", J.Int r.sched_spec_loads);
      ("flag_spec_loads", J.Int r.flag_spec_loads);
      ("mem_ops", J.Int r.mem_ops);
      ("bundles", J.Int r.bundles);
    ]
