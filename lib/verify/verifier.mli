(** Post-scheduling translation verifier.

    A static taint dataflow over the emitted VLIW bundles of one
    translation — exit stubs, hidden registers and cross-bundle dataflow
    included — that re-derives "speculative load" from the {e schedule}
    itself rather than trusting the IR annotations: a load is speculative
    when the schedule placed it above the resolution of a guarding exit
    (an exit-like op with a smaller DFG id in a later-or-equal bundle),
    or above a potentially-aliasing MCB-checked store. Taint then
    propagates through register dataflow exactly as the pipeline's
    runtime taint does (sticky per run, buffered write-back, [x0] never
    tainted), so a memory op the verifier leaves clean can never produce
    a dependent transient line in the leakage audit.

    The verifier is independent of [Gb_core.Poison], which analyses the
    pre-scheduling DFG: a scheduler or code-generator bug that reorders
    ops behind Poison's back is exactly what this pass exists to catch
    (Venkman-style: enforce the property on every emitted code unit). *)

type kind =
  | Tainted_load
      (** a load whose address operand carries taint while the op can
          still execute transiently (an unresolved earlier exit exists in
          its bundle or later) — the Spectre leak condition *)
  | Tainted_store
      (** a store whose address or value operand is still inside a
          guard's live window at execution — speculative data written
          architecturally *)
  | Transient_store
      (** a store or cache flush placed where a taken earlier exit would
          make it transient; stores are irreversible, so the scheduler
          must pin them *)
  | Tainted_commit
      (** an exit stub commits a register whose value is still guarded by
          an exit that resolves strictly later than the stub's bundle *)
  | Unguarded_bypass
      (** a load scheduled above a potentially-aliasing store without an
          MCB tag, or whose Chk does not resolve after the bypassed
          store *)
  | Unrealized_cut
      (** ({!check_cut} only) a repair in the min-cut plan has no
          witness in the emitted schedule: the protected load is missing
          or still schedule-speculative, a mask repair has no identity
          AND in an earlier bundle, or a fence repair has no barrier *)
  | Residual_flow
      (** ({!check_cut} only) sticky taint seeded by a load the schedule
          still speculates reaches a speculative load address or a
          transient store/flush operand — a source→transmitter path the
          cut failed to sever *)

val kind_name : kind -> string

type violation = {
  v_kind : kind;
  v_pc : int;  (** guest pc of the offending op (stub target pc for commits) *)
  v_id : int;  (** DFG id of the op (exit id for commits) *)
  v_bundle : int;  (** bundle (cycle) index in the schedule *)
  v_origins : int list;
      (** guest pcs of the speculative loads the taint flowed from
          (sorted; empty for taint-free kinds) *)
}

type report = {
  violations : violation list;  (** schedule order: (bundle, id) *)
  sched_spec_loads : int;
      (** loads the schedule itself proves speculative (above an
          unresolved exit or a bypassed store) *)
  flag_spec_loads : int;
      (** loads carrying a [hoisted] / MCB-tag flag from the IR *)
  mem_ops : int;  (** loads + stores + flushes examined *)
  bundles : int;
}

val verify : Gb_vliw.Vinsn.trace -> report
(** Pure; never mutates the trace. Chain links are ignored (verification
    is per-translation). *)

val check_cut :
  Gb_vliw.Vinsn.trace -> plan:Gb_core.Leakcut.plan -> violation list
(** Cut-soundness pass for [Min_cut] translations (Venkman-style: the
    property is re-proved on every emitted unit). Re-derives speculation
    from the schedule alone and checks two obligations against the
    plan: every repair — realized or not, so a deliberately-skipped one
    is caught — has a structural witness ([Unrealized_cut] otherwise),
    and an independent sticky taint pass seeded only by loads the
    schedule still speculates reaches no transmitter ([Residual_flow]
    otherwise). Pure; returns violations in schedule order. *)

val ok : report -> bool

val violation_pcs : report -> int list
(** Distinct guest pcs with at least one violation, sorted. *)

val pp_report : Format.formatter -> report -> unit
(** Lint-style, one line per violation. *)

val report_to_json : report -> Gb_util.Json.t
