open Gb_riscv

type gadget_kind = V1 | V4

type gadget = {
  g_kind : gadget_kind;
  g_root_pc : int;
  g_load_pc : int;
  g_dep_pc : int;
  g_chain : int list;
}

type report = {
  gadgets : gadget list;
  insns : int;
  branches : int;
  stores : int;
  window : int;
}

module IS = Set.Make (Int)
module RM = Map.Make (Int)

let default_window = 64

(* Total abstract steps spent per gadget root, across all forked paths:
   bounds the exponential blowup of exploring both sides of every nested
   branch while still letting loops be followed around their back edge
   (a trace can span several unrolled iterations, so a dependent access
   may sit in a later iteration than its tainting load). *)
let budget_of window = window * 64

let word_at (prog : Asm.program) pc =
  let off = pc - prog.Asm.base in
  if off < 0 || off + 4 > Bytes.length prog.Asm.image then None
  else
    let b i = Char.code (Bytes.get prog.Asm.image (off + i)) in
    Some (b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24))

(* Reachable code only: decoding the data section would invent gadgets
   out of array bytes. Follows fall-through, both branch directions and
   direct jumps; indirect jumps and the exit ecall end discovery. *)
let discover prog =
  let code = Hashtbl.create 256 in
  let rec go pc =
    if not (Hashtbl.mem code pc) then
      match word_at prog pc with
      | None -> ()
      | Some w -> (
        match Decode.decode w with
        | exception Decode.Illegal _ -> ()
        | insn ->
          Hashtbl.add code pc insn;
          (match insn with
          | Insn.Branch (_, _, _, off) ->
            go (pc + 4);
            go (pc + off)
          | Insn.Jal (_, off) -> go (pc + off)
          | Insn.Jalr _ | Insn.Ecall -> ()
          | _ -> go (pc + 4)))
  in
  go prog.Asm.entry;
  code

let taint_of tm r = if r = 0 then IS.empty else
    match RM.find_opt r tm with Some s -> s | None -> IS.empty

let set_taint tm r s =
  if r = 0 then tm else if IS.is_empty s then RM.remove r tm else RM.add r s tm

(* One speculative walk. [seed] decides whether a load plants fresh taint
   (v1: every load executed under the mispredicted branch; v4: only loads
   that may alias the bypassed store). [on_dep] receives every memory op
   whose address register is tainted. [watch], when set, names a register
   whose per-path liveness the seed may consult ([live] = not redefined
   since the walk began) — the v4 alias proof needs the bypassed store's
   base register to still hold the store's address. *)
let walk code ~start ~window ?watch ~seed ~on_dep () =
  let budget = ref (budget_of window) in
  let kills insn =
    match (watch, Insn.dest insn) with
    | Some r, Some d -> r = d
    | _ -> false
  in
  let rec go pc depth live tm =
    if depth < window && !budget > 0 then begin
      decr budget;
      match Hashtbl.find_opt code pc with
      | None -> ()
      | Some insn ->
        let live = live && not (kills insn) in
        (match insn with
        | Insn.Op_imm (_, rd, rs1, _) ->
          go (pc + 4) (depth + 1) live (set_taint tm rd (taint_of tm rs1))
        | Insn.Op (_, rd, rs1, rs2) ->
          go (pc + 4) (depth + 1) live
            (set_taint tm rd (IS.union (taint_of tm rs1) (taint_of tm rs2)))
        | Insn.Lui (rd, _) | Insn.Auipc (rd, _) | Insn.Rdcycle rd ->
          go (pc + 4) (depth + 1) live (set_taint tm rd IS.empty)
        | Insn.Load (w, _, rd, base, off) ->
          let base_t = taint_of tm base in
          if not (IS.is_empty base_t) then on_dep ~pc ~origins:base_t;
          let fresh =
            if seed ~pc ~base ~off ~w ~live then IS.singleton pc else IS.empty
          in
          (* data read at a tainted address is itself tainted *)
          go (pc + 4) (depth + 1) live (set_taint tm rd (IS.union fresh base_t))
        | Insn.Store (_, _, base, _) ->
          let base_t = taint_of tm base in
          if not (IS.is_empty base_t) then on_dep ~pc ~origins:base_t;
          go (pc + 4) (depth + 1) live tm
        | Insn.Branch (_, _, _, off) ->
          go (pc + 4) (depth + 1) live tm;
          go (pc + off) (depth + 1) live tm
        | Insn.Jal (rd, off) ->
          go (pc + off) (depth + 1) live (set_taint tm rd IS.empty)
        | Insn.Jalr _ | Insn.Ecall -> ()
        | Insn.Fence | Insn.Cflush _ -> go (pc + 4) (depth + 1) live tm)
    end
  in
  go start 0 true RM.empty

let width_bytes = function Insn.B -> 1 | Insn.H -> 2 | Insn.W -> 4 | Insn.D -> 8

let scan ?(window = default_window) (prog : Asm.program) =
  let code = discover prog in
  let found = Hashtbl.create 32 in
  let add kind root ~origins ~dep =
    let load = try IS.min_elt origins with Not_found -> dep in
    let key = (kind, root, dep) in
    if not (Hashtbl.mem found key) then
      Hashtbl.add found key
        {
          g_kind = kind;
          g_root_pc = root;
          g_load_pc = load;
          g_dep_pc = dep;
          g_chain = (root :: IS.elements origins) @ [ dep ];
        }
  in
  let branches = ref 0 and stores = ref 0 in
  Hashtbl.iter
    (fun pc insn ->
      match insn with
      | Insn.Branch (_, _, _, off) ->
        incr branches;
        (* either direction may be the trained (speculated) one *)
        List.iter
          (fun start ->
            walk code ~start ~window
              ~seed:(fun ~pc:_ ~base:_ ~off:_ ~w:_ ~live:_ -> true)
              ~on_dep:(fun ~pc:dep ~origins -> add V1 pc ~origins ~dep)
              ())
          [ pc + 4; pc + off ]
      | Insn.Store (sw, _, sbase, soff) ->
        incr stores;
        (* A later load is provably distinct from the store only when it
           uses the same still-live base register with a disjoint constant
           range; anything else may alias and can speculatively bypass. *)
        let sbytes = width_bytes sw in
        walk code ~start:(pc + 4) ~window ~watch:sbase
          ~seed:(fun ~pc:_ ~base ~off ~w ~live ->
            if live && base = sbase then
              not (off + width_bytes w <= soff || soff + sbytes <= off)
            else true)
          ~on_dep:(fun ~pc:dep ~origins -> add V4 pc ~origins ~dep)
          ()
      | _ -> ())
    code;
  let gadgets =
    Hashtbl.fold (fun _ g acc -> g :: acc) found []
    |> List.sort (fun a b ->
           compare
             (a.g_dep_pc, a.g_kind, a.g_root_pc)
             (b.g_dep_pc, b.g_kind, b.g_root_pc))
  in
  {
    gadgets;
    insns = Hashtbl.length code;
    branches = !branches;
    stores = !stores;
    window;
  }

let dep_pcs r = List.sort_uniq compare (List.map (fun g -> g.g_dep_pc) r.gadgets)

type score = {
  hits : int list;
  missed : int list;
  extra : int list;
  precision : float;
  recall : float;
}

let score r ~flagged =
  let flagged = List.sort_uniq compare flagged in
  let positives = dep_pcs r in
  let hits = List.filter (fun pc -> List.mem pc flagged) positives in
  let missed = List.filter (fun pc -> not (List.mem pc positives)) flagged in
  let extra = List.filter (fun pc -> not (List.mem pc flagged)) positives in
  let ratio num den = if den = 0 then 1.0 else float_of_int num /. float_of_int den in
  {
    hits;
    missed;
    extra;
    precision = ratio (List.length hits) (List.length positives);
    recall = ratio (List.length hits) (List.length flagged);
  }

let kind_name = function V1 -> "v1" | V4 -> "v4"

let pp_report ppf r =
  let open Format in
  fprintf ppf "@[<v>";
  List.iter
    (fun g ->
      fprintf ppf "%s gadget: dependent access at 0x%x (chain %s)@,"
        (kind_name g.g_kind) g.g_dep_pc
        (String.concat " -> "
           (List.map (Printf.sprintf "0x%x") g.g_chain)))
    r.gadgets;
  fprintf ppf
    "%d gadget(s), %d distinct dependent pcs; scanned %d insns (%d branches, \
     %d stores), window %d@]"
    (List.length r.gadgets)
    (List.length (dep_pcs r))
    r.insns r.branches r.stores r.window

let report_to_json r =
  let module J = Gb_util.Json in
  J.Obj
    [
      ( "gadgets",
        J.List
          (List.map
             (fun g ->
               J.Obj
                 [
                   ("kind", J.String (kind_name g.g_kind));
                   ("root_pc", J.Int g.g_root_pc);
                   ("load_pc", J.Int g.g_load_pc);
                   ("dep_pc", J.Int g.g_dep_pc);
                   ("chain", J.List (List.map (fun p -> J.Int p) g.g_chain));
                 ])
             r.gadgets) );
      ("dep_pcs", J.List (List.map (fun p -> J.Int p) (dep_pcs r)));
      ("insns", J.Int r.insns);
      ("branches", J.Int r.branches);
      ("stores", J.Int r.stores);
      ("window", J.Int r.window);
    ]

let score_to_json s =
  let module J = Gb_util.Json in
  let pcs l = J.List (List.map (fun p -> J.Int p) l) in
  J.Obj
    [
      ("hits", pcs s.hits);
      ("missed", pcs s.missed);
      ("extra", pcs s.extra);
      ("precision", J.Float s.precision);
      ("recall", J.Float s.recall);
    ]
