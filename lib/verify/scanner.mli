(** Guest-binary Spectre gadget scanner (Teapot-style).

    A purely static abstract dataflow over the decoded rv64im binary — no
    execution, no trace construction. Code is discovered by following
    control flow from the entry point (so data sections are never decoded
    as code), then every conditional branch and every store opens a
    bounded {e speculative window} that is walked along all paths with a
    register taint map:

    - {b v1} (bounds-check bypass): from a branch, both successors are
      speculatively reachable; any load in the window taints its
      destination, taint propagates through ALU ops, and a later memory
      access whose {e address} register is tainted is a v1 gadget
      candidate (branch -> bounded load -> dependent access).
    - {b v4} (store bypass): from a store, a load in the window that may
      alias it (not provably distinct: same unmodified base register and
      disjoint constant ranges) may speculatively read the stale value;
      that load taints, and a dependent access in the window is a v4
      gadget candidate (store -> aliasing load -> dependent access).

    Taint through memory (store a tainted value, load it back) is not
    tracked; the DBT's own speculation never spans more code than a
    trace, which the window approximates. *)

type gadget_kind = V1 | V4

type gadget = {
  g_kind : gadget_kind;
  g_root_pc : int;  (** the branch (v1) or bypassed store (v4) *)
  g_load_pc : int;  (** the speculative load whose value flows onward *)
  g_dep_pc : int;  (** the dependent access — the leaking memory op *)
  g_chain : int list;  (** root, tainting load(s), dependent access *)
}

type report = {
  gadgets : gadget list;  (** deduplicated, sorted by (dep, kind, root) *)
  insns : int;  (** reachable instructions decoded *)
  branches : int;
  stores : int;
  window : int;  (** speculative-window bound used (instructions) *)
}

val scan : ?window:int -> Gb_riscv.Asm.program -> report
(** [window] defaults to 64 instructions — comfortably wider than any
    trace the DBT builds from these programs. *)

val dep_pcs : report -> int list
(** Distinct dependent-access pcs, sorted — the scanner's positives,
    comparable against [Mitigation.report.flagged_pcs]. *)

(** Scanner positives scored against a ground-truth pc set (the pcs the
    poisoning analysis flagged on real traces). *)
type score = {
  hits : int list;  (** scanner ∩ ground truth *)
  missed : int list;  (** ground truth the scanner did not report *)
  extra : int list;  (** scanner positives outside the ground truth *)
  precision : float;  (** |hits| / positives; 1.0 when no positives *)
  recall : float;  (** |hits| / |ground truth|; 1.0 when it is empty *)
}

val score : report -> flagged:int list -> score

val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> Gb_util.Json.t

val score_to_json : score -> Gb_util.Json.t
