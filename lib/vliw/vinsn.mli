(** The VLIW target ISA produced by the DBT engine.

    Registers [0..31] are the guest architectural registers; indices [32+]
    are {e hidden} registers — scratch space invisible to the guest ISA, the
    paper's "register not defined in the ISA" used to park speculative
    results. A translated {!trace} consists of wide {!bundle}s executed one
    per cycle plus {e exit stubs}: compensation code that commits the
    architectural register state of an exit point before resuming the
    guest at [target_pc]. *)

type reg = int

val guest_regs : int
(** Number of architectural registers (32); hidden registers start here. *)

type operand = R of reg | I of int64

type op =
  | Nop
  | Alu of { op : Gb_riscv.Insn.oprr; dst : reg; a : operand; b : operand }
  | Load of {
      w : Gb_riscv.Insn.width;
      unsigned : bool;
      dst : reg;
      base : operand;
      off : int;
      spec : int option;
          (** [Some tag]: speculative load that allocates MCB entry [tag]
              (the paper's distinct opcode for MCB-checked loads) *)
      id : int;
          (** DFG node id — original guest program order, compared against
              the taken exit stub's [exit_id] by the leakage audit to
              decide whether this access was architecturally committed *)
      pc : int;  (** originating guest pc (audit attribution) *)
      hoisted : bool;
          (** moved above a branch it followed in program order *)
    }
  | Store of {
      w : Gb_riscv.Insn.width;
      src : operand;
      base : operand;
      off : int;
      id : int;
      pc : int;
    }
  | Branch of {
      cond : Gb_riscv.Insn.branch_cond;
      a : operand;
      b : operand;
      stub : int;  (** side exit taken when the condition holds *)
    }
  | Chk of { tag : int; stub : int }
      (** MCB check: side exit (rollback) when entry [tag] conflicted *)
  | Mv of { dst : reg; src : operand }
  | Rdcycle of { dst : reg }
  | Cflush of { base : operand; off : int; id : int; pc : int }
  | Fence  (** scheduling barrier; timing no-op at execution *)
  | Exit of { stub : int }  (** unconditional end of trace *)

type bundle = op array

(** Per-translation countermeasure / speculation statistics, surfaced by the
    benchmark harness (experiment E3). *)
type meta = {
  spec_loads : int;  (** loads translated as MCB-speculative *)
  branch_spec_loads : int;  (** loads free to hoist above a branch *)
  spectre_patterns : int;  (** poisoned-address speculative loads found *)
  constrained_loads : int;  (** loads de-speculated by the mitigation *)
  fences_inserted : int;
  cut_protects : int;
      (** min-cut repairs realized in this trace (dep re-inserts +
          masks): the pipeline attributes its issue bubbles to the
          [cut-protect] cause instead of lost ILP when nonzero *)
}

val empty_meta : meta

type stub = {
  commits : (reg * operand) list;
      (** guest register <- operand, applied in order *)
  n_commits : int;
      (** [List.length commits], precomputed at construction
          ({!make_stub}) so the pipeline's exit path never walks the
          list *)
  target_pc : int;  (** guest pc to resume at *)
  exit_id : int;
      (** DFG node id of the exit this stub belongs to: memory ops with a
          smaller id are architecturally committed when this exit is
          taken, larger ids executed transiently (leakage audit) *)
  mutable chain : trace option;
      (** trace chaining: when patched (by the code cache, which alone
          knows mitigation-mode compatibility and eviction state), the
          pipeline transfers directly into this successor trace instead of
          returning to the dispatcher. Must only ever point at a
          currently-installed translation — the code cache unlinks it when
          either endpoint is evicted or retranslated. *)
}

and trace = {
  entry_pc : int;
  bundles : bundle array;
  stubs : stub array;
  n_regs : int;  (** total register file size used (guest + hidden) *)
  guest_insns : int;  (** guest instructions covered by one pass *)
  meta : meta;
}

val make_stub :
  ?exit_id:int -> commits:(reg * operand) list -> target_pc:int -> unit -> stub
(** Build a stub with [n_commits] precomputed and [chain = None].
    [exit_id] defaults to [max_int] (every memory op committed). *)

(** How a pipeline pass over a trace ended. Defined here (not in
    {!Pipeline}, which re-exports it) so {!Machine} can carry the
    chain-transfer callback without a dependency cycle. *)
type exit_kind = Fallthrough | Side_exit | Rollback

(** Fields are mutable: {!Machine} owns one scratch [exit_info] that each
    pipeline pass refills in place, so a trace run allocates nothing to
    report its exit. The record returned by [Pipeline.run]/[run_one] is
    only valid until the next pass over that machine — copy the fields
    out to retain an exit. *)
type exit_info = {
  mutable next_pc : int;  (** guest pc to resume at *)
  mutable kind : exit_kind;
  mutable exit_entry : int;
      (** entry pc of the trace whose stub produced this exit — differs
          from the dispatched pc once chained transfers are followed *)
  mutable taken_stub : int;
      (** index of the taken stub in [exit_entry]'s trace *)
}

val bundle_count : trace -> int
(** Number of VLIW bundles — the code-cache capacity unit. *)

val pp_op : Format.formatter -> op -> unit

val pp_trace : Format.formatter -> trace -> unit
