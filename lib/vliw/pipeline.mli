(** In-order execution of translated traces.

    One bundle issues per cycle; cache misses stall the whole pipeline for
    the miss penalty (stall-on-miss); any exit (side exit, MCB rollback or
    trace end) runs the exit stub's compensation moves and pays the
    pipeline-refill penalty.

    Within a bundle all operands read the register state from the start of
    the cycle (parallel semantics); the instruction scheduler guarantees at
    least one cycle between a producer and its consumers.

    A load that faults (out-of-range address) is by construction
    speculative here — architectural loads that fault are executed by the
    interpreter path — so the fault is deferred in the hardware style of
    the paper: the load returns 0 and the program state is untouched. The
    cache is still probed when the address is non-negative, which is
    exactly the micro-architectural side effect Spectre exploits. Stores
    are always architectural and propagate {!Gb_riscv.Mem.Fault}. *)

type exit_kind = Vinsn.exit_kind = Fallthrough | Side_exit | Rollback

type exit_info = Vinsn.exit_info = {
  mutable next_pc : int;
  mutable kind : exit_kind;
  mutable exit_entry : int;
  mutable taken_stub : int;
}
(** Re-exported from {!Vinsn} (defined there so {!Machine} can carry the
    chain callback without a dependency cycle); existing call sites using
    [Pipeline.Side_exit] / [info.next_pc] are unaffected. *)

exception Machine_error of string
(** Ill-formed trace detected at run time (two control operations in a
    bundle, duplicate register writes, ...) — indicates a code generator
    bug, never a guest error. *)

val run : Machine.t -> Vinsn.trace -> exit_info
(** Execute the trace, advancing the machine clock, and — when
    [m.cfg.chain] is set — keep going: if the taken exit stub carries a
    chain link patched by the code cache, consult the [m.on_chain]
    resolver (which does the dispatcher's accounting for the
    intermediate {!exit_info}) and transfer directly into whatever
    translation it returns, for up to [m.cfg.chain_fuel] transfers. The
    returned {!exit_info} describes only the final, unchained exit.
    Rollback exits are never chained. Chained transfers cost no
    simulated cycles — the dispatcher is free in the cost model — so
    cycle counts are identical with chaining on or off.

    Each chained trace pass is a full architectural commit: the stub's
    compensation moves run and the leakage audit sees a complete
    [begin_run]/[end_run] window per pass, so commit-boundary/exit-id
    logic is unaffected by chaining. *)

val run_one : Machine.t -> Vinsn.trace -> exit_info
(** Execute exactly one pass over the trace, ignoring chain links. *)
