type reg = int

let guest_regs = 32

type operand = R of reg | I of int64

type op =
  | Nop
  | Alu of { op : Gb_riscv.Insn.oprr; dst : reg; a : operand; b : operand }
  | Load of {
      w : Gb_riscv.Insn.width;
      unsigned : bool;
      dst : reg;
      base : operand;
      off : int;
      spec : int option;
      id : int;
      pc : int;
      hoisted : bool;
    }
  | Store of {
      w : Gb_riscv.Insn.width;
      src : operand;
      base : operand;
      off : int;
      id : int;
      pc : int;
    }
  | Branch of {
      cond : Gb_riscv.Insn.branch_cond;
      a : operand;
      b : operand;
      stub : int;
    }
  | Chk of { tag : int; stub : int }
  | Mv of { dst : reg; src : operand }
  | Rdcycle of { dst : reg }
  | Cflush of { base : operand; off : int; id : int; pc : int }
  | Fence
  | Exit of { stub : int }

type bundle = op array

type meta = {
  spec_loads : int;
  branch_spec_loads : int;
  spectre_patterns : int;
  constrained_loads : int;
  fences_inserted : int;
  cut_protects : int;
}

let empty_meta =
  {
    spec_loads = 0;
    branch_spec_loads = 0;
    spectre_patterns = 0;
    constrained_loads = 0;
    fences_inserted = 0;
    cut_protects = 0;
  }

(* stub and trace are mutually recursive: a patched stub transfers
   directly into the successor trace (trace chaining) *)
type stub = {
  commits : (reg * operand) list;
  n_commits : int;
      (* [List.length commits], precomputed at construction so the
         pipeline's exit path doesn't walk the list per trace exit *)
  target_pc : int;
  exit_id : int;
  mutable chain : trace option;
}

and trace = {
  entry_pc : int;
  bundles : bundle array;
  stubs : stub array;
  n_regs : int;
  guest_insns : int;
  meta : meta;
}

let make_stub ?(exit_id = max_int) ~commits ~target_pc () =
  { commits; n_commits = List.length commits; target_pc; exit_id;
    chain = None }

type exit_kind = Fallthrough | Side_exit | Rollback

(* Mutable so {!Machine} can own one scratch record that every pipeline
   pass refills: allocating a fresh exit_info per trace run is measurable
   on the hot loop. Consumers read it synchronously before the next run;
   anything that must retain an exit must copy the fields out. *)
type exit_info = {
  mutable next_pc : int;
  mutable kind : exit_kind;
  mutable exit_entry : int;
  mutable taken_stub : int;
}

let bundle_count trace = Array.length trace.bundles

let pp_reg ppf r =
  if r < guest_regs then Format.fprintf ppf "%s" (Gb_riscv.Reg.name r)
  else Format.fprintf ppf "h%d" (r - guest_regs)

let pp_operand ppf = function
  | R r -> pp_reg ppf r
  | I v -> Format.fprintf ppf "%Ld" v

let width_letter = function
  | Gb_riscv.Insn.B -> 'b'
  | Gb_riscv.Insn.H -> 'h'
  | Gb_riscv.Insn.W -> 'w'
  | Gb_riscv.Insn.D -> 'd'

let pp_op ppf = function
  | Nop -> Format.fprintf ppf "nop"
  | Alu { op; dst; a; b } ->
    Format.fprintf ppf "%s %a, %a, %a"
      (Gb_riscv.Insn.to_string (Gb_riscv.Insn.Op (op, 0, 0, 0))
      |> String.split_on_char ' ' |> List.hd)
      pp_reg dst pp_operand a pp_operand b
  | Load { w; unsigned; dst; base; off; spec; hoisted; _ } ->
    Format.fprintf ppf "l%c%s%s%s %a, %d(%a)" (width_letter w)
      (if unsigned then "u" else "")
      (match spec with Some tag -> Printf.sprintf ".spec[%d]" tag | None -> "")
      (if hoisted then ".hoist" else "")
      pp_reg dst off pp_operand base
  | Store { w; src; base; off; _ } ->
    Format.fprintf ppf "s%c %a, %d(%a)" (width_letter w) pp_operand src off
      pp_operand base
  | Branch { cond; a; b; stub } ->
    Format.fprintf ppf "exit.%s %a, %a -> stub%d"
      (Gb_riscv.Insn.to_string (Gb_riscv.Insn.Branch (cond, 0, 0, 0))
      |> String.split_on_char ' ' |> List.hd)
      pp_operand a pp_operand b stub
  | Chk { tag; stub } -> Format.fprintf ppf "chk [%d] -> stub%d" tag stub
  | Mv { dst; src } -> Format.fprintf ppf "mv %a, %a" pp_reg dst pp_operand src
  | Rdcycle { dst } -> Format.fprintf ppf "rdcycle %a" pp_reg dst
  | Cflush { base; off; _ } ->
    Format.fprintf ppf "cflush %d(%a)" off pp_operand base
  | Fence -> Format.fprintf ppf "fence"
  | Exit { stub } -> Format.fprintf ppf "exit -> stub%d" stub

let pp_trace ppf trace =
  Format.fprintf ppf "trace @@0x%x (%d guest insns, %d bundles)@."
    trace.entry_pc trace.guest_insns (Array.length trace.bundles);
  Array.iteri
    (fun i bundle ->
      Format.fprintf ppf "  %3d: " i;
      Array.iter (fun op -> Format.fprintf ppf "[%a] " pp_op op) bundle;
      Format.fprintf ppf "@.")
    trace.bundles;
  Array.iteri
    (fun i stub ->
      Format.fprintf ppf "  stub%d -> 0x%x%s:" i stub.target_pc
        (match stub.chain with Some _ -> " [chained]" | None -> "");
      List.iter
        (fun (r, src) ->
          Format.fprintf ppf " %a<-%a" pp_reg r pp_operand src)
        stub.commits;
      Format.fprintf ppf "@.")
    trace.stubs
