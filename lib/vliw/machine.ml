type config = {
  n_hidden : int;
  mcb_entries : int;
  exit_penalty : int;
  chain : bool;
  chain_fuel : int;
}

let default_config =
  { n_hidden = 96; mcb_entries = 8; exit_penalty = 4; chain = true;
    chain_fuel = 4096 }

(* Native-int counters: an [int64] field here would allocate a fresh box
   on every increment, and these are bumped per trace run / per bundle
   flush. 63 bits cannot realistically overflow on counted events. *)
type stats = {
  mutable bundles : int;
  mutable trace_runs : int;
  mutable side_exits : int;
  mutable rollbacks : int;
  mutable stall_cycles : int;
  mutable chain_follows : int;
  mutable guest_insns : int;
}

type t = {
  cfg : config;
  regs : int64 array;
  mem : Gb_riscv.Mem.t;
  hier : Gb_cache.Hierarchy.t;
  clock : int64 ref;
  mcb : Mcb.t;
  stats : stats;
  obs : Gb_obs.Sink.t;
  audit : Gb_cache.Audit.t option;
  mutable on_chain : Vinsn.exit_info -> Vinsn.trace option;
  mutable rdcycle_hook : (int64 -> int64) option;
  (* Scratch state owned by Pipeline.run_one, hoisted here so bundle
     execution never allocates: the parallel-write buffer is three
     parallel arrays (a tuple array would box one pair per register
     write), reset by [n_writes] rather than refilled; the taken exit is
     a -1-sentinel index plus kind (an [option ref] would box per
     bundle); [taint] is the per-run register taint map, reset by fill
     only when an audit is attached ([taint_on]). *)
  mutable w_dst : int array;
  mutable w_val : int64 array;
  mutable w_taint : bool array;
  mutable n_writes : int;
  mutable stall : int;
  mutable taken_stub : int;
  mutable taken_kind : Vinsn.exit_kind;
  taint : bool array;
  mutable taint_on : bool;
  (* Batched per-bundle counters: native-int accumulators folded into
     the [int64] stats/clock before anything can observe them (Rdcycle,
     trace exit, any instrumented run). Each is "always 0 outside
     Pipeline.run_one" — the flush discipline that keeps batched and
     eager execution bit-identical. *)
  mutable acc_bundles : int;
  mutable acc_stalls : int;
  mutable acc_cycles : int;
  mutable eager : bool;
      (* true when an observer (active sink, audit) could read the
         clock mid-run: bundle counters are then flushed every bundle,
         exactly the pre-batching behavior *)
  exit_scratch : Vinsn.exit_info;
      (* the one exit record every pipeline pass refills and returns *)
}

let create ?(cfg = default_config) ~mem ~hier ~clock ?regs
    ?(obs = Gb_obs.Sink.noop) ?audit () =
  let regs =
    match regs with
    | Some r ->
      assert (Array.length r >= Vinsn.guest_regs + cfg.n_hidden);
      r
    | None -> Array.make (Vinsn.guest_regs + cfg.n_hidden) 0L
  in
  {
    cfg;
    regs;
    mem;
    hier;
    clock;
    mcb = Mcb.create ~obs ~entries:cfg.mcb_entries ();
    stats =
      { bundles = 0; trace_runs = 0; side_exits = 0; rollbacks = 0;
        stall_cycles = 0; chain_follows = 0; guest_insns = 0 };
    obs;
    audit;
    on_chain = (fun _ -> None);
    rdcycle_hook = None;
    w_dst = Array.make 32 0;
    w_val = Array.make 32 0L;
    w_taint = Array.make 32 false;
    n_writes = 0;
    stall = 0;
    taken_stub = -1;
    taken_kind = Vinsn.Fallthrough;
    taint = Array.make (Array.length regs) false;
    taint_on = false;
    acc_bundles = 0;
    acc_stalls = 0;
    acc_cycles = 0;
    eager = true;
    exit_scratch =
      { Vinsn.next_pc = 0; kind = Vinsn.Fallthrough; exit_entry = 0;
        taken_stub = -1 };
  }

let flush_acc t =
  if t.acc_bundles <> 0 then begin
    t.stats.bundles <- t.stats.bundles + t.acc_bundles;
    t.acc_bundles <- 0
  end;
  if t.acc_stalls <> 0 then begin
    t.stats.stall_cycles <- t.stats.stall_cycles + t.acc_stalls;
    t.acc_stalls <- 0
  end;
  if t.acc_cycles <> 0 then begin
    t.clock := Int64.add !(t.clock) (Int64.of_int t.acc_cycles);
    t.acc_cycles <- 0
  end

(* grow the parallel-write buffer to at least [n] slots (wider traces
   than any seen before); steady state never allocates *)
let ensure_write_capacity t n =
  if Array.length t.w_dst < n then begin
    t.w_dst <- Array.make n 0;
    t.w_val <- Array.make n 0L;
    t.w_taint <- Array.make n false
  end
