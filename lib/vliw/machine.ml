type config = {
  n_hidden : int;
  mcb_entries : int;
  exit_penalty : int;
  chain : bool;
  chain_fuel : int;
}

let default_config =
  { n_hidden = 96; mcb_entries = 8; exit_penalty = 4; chain = true;
    chain_fuel = 4096 }

type stats = {
  mutable bundles : int64;
  mutable trace_runs : int64;
  mutable side_exits : int64;
  mutable rollbacks : int64;
  mutable stall_cycles : int64;
  mutable chain_follows : int64;
  mutable guest_insns : int64;
}

type t = {
  cfg : config;
  regs : int64 array;
  mem : Gb_riscv.Mem.t;
  hier : Gb_cache.Hierarchy.t;
  clock : int64 ref;
  mcb : Mcb.t;
  stats : stats;
  obs : Gb_obs.Sink.t;
  audit : Gb_cache.Audit.t option;
  mutable on_chain : Vinsn.exit_info -> Vinsn.trace option;
  mutable rdcycle_hook : (int64 -> int64) option;
}

let create ?(cfg = default_config) ~mem ~hier ~clock ?regs
    ?(obs = Gb_obs.Sink.noop) ?audit () =
  let regs =
    match regs with
    | Some r ->
      assert (Array.length r >= Vinsn.guest_regs + cfg.n_hidden);
      r
    | None -> Array.make (Vinsn.guest_regs + cfg.n_hidden) 0L
  in
  {
    cfg;
    regs;
    mem;
    hier;
    clock;
    mcb = Mcb.create ~obs ~entries:cfg.mcb_entries ();
    stats =
      { bundles = 0L; trace_runs = 0L; side_exits = 0L; rollbacks = 0L;
        stall_cycles = 0L; chain_follows = 0L; guest_insns = 0L };
    obs;
    audit;
    on_chain = (fun _ -> None);
    rdcycle_hook = None;
  }
