type exit_kind = Vinsn.exit_kind = Fallthrough | Side_exit | Rollback

type exit_info = Vinsn.exit_info = {
  mutable next_pc : int;
  mutable kind : exit_kind;
  mutable exit_entry : int;
  mutable taken_stub : int;
}

exception Machine_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Machine_error s)) fmt

let eval regs = function
  | Vinsn.R r -> if r = 0 then 0L else regs.(r)
  | Vinsn.I v -> v

let rec count_fences bundle i acc =
  if i >= Array.length bundle then acc
  else
    count_fences bundle (i + 1)
      (match bundle.(i) with Vinsn.Fence -> acc + 1 | _ -> acc)

let rec count_nops bundle i acc =
  if i >= Array.length bundle then acc
  else
    count_nops bundle (i + 1)
      (match bundle.(i) with Vinsn.Nop -> acc + 1 | _ -> acc)

(* Attribute the one issue cycle of a bundle at slot granularity: each of
   the [width] slots owns [scale / width] fixed-point units. Useful ops
   are committed work; Fence slots are fence stalls when the mitigation
   inserted fences into this trace (a guest's own architectural fences
   are work, not mitigation cost); Nop slots are lost ILP — issue bubbles
   from schedule gaps or serialization — except in a fenced bundle of a
   mitigated trace, where the fence itself forced the bubble. The split
   is exact for every width dividing {!Gb_obs.Attrib.scale} (all widths
   up to 16); any remainder units go to committed work so conservation
   stays an integer identity. *)
let attribute_bundle a ~mitigated ~cut ~width ~pc bundle =
  let fences = count_fences bundle 0 0 in
  let nops = count_nops bundle 0 0 in
  let module At = Gb_obs.Attrib in
  let per_slot = At.scale / width in
  let rem = At.scale - (per_slot * width) in
  let useful = width - fences - nops in
  let committed, fence_stall, lost_ilp =
    if mitigated && fences > 0 then
      (* the mitigation fenced this bundle: the fence slots and the
         bubbles it forces alongside are both fence cost *)
      (useful, fences + nops, 0)
    else (useful + fences, 0, nops)
  in
  (* a min-cut-protected trace's bubbles are serialization the repairs
     forced, not generic lost ILP: bill them to their own bucket so
     `profile diff` can separate cut cost from schedule gaps *)
  let lost_cause = if cut then At.Cut_protect else At.Nospec_serialization in
  At.add_here a At.Committed_work ~pc ~units:((committed * per_slot) + rem);
  At.add_here a At.Fence_stall ~pc ~units:(fence_stall * per_slot);
  At.add_here a lost_cause ~pc ~units:(lost_ilp * per_slot)

(* The per-bundle helpers below are top-level functions over the scratch
   state hoisted into {!Machine.t} (write buffer, stall counter, taken
   exit, taint map): defining them inside [run_one] — as closures over
   local refs — used to allocate a closure set per trace run and a
   ref/option/tuple churn per bundle. *)

let tainted (m : Machine.t) op =
  match op with
  | Vinsn.R r -> m.taint_on && r <> 0 && m.taint.(r)
  | Vinsn.I _ -> false

let push_write (m : Machine.t) ~taint dst v =
  if dst <> 0 then begin
    let n = m.n_writes in
    for i = 0 to n - 1 do
      if m.w_dst.(i) = dst then error "duplicate write to register %d" dst
    done;
    m.w_dst.(n) <- dst;
    m.w_val.(n) <- v;
    m.w_taint.(n) <- taint;
    m.n_writes <- n + 1
  end

let take (m : Machine.t) stub kind =
  if m.taken_stub >= 0 then error "two control operations taken in one bundle";
  m.taken_stub <- stub;
  m.taken_kind <- kind

let touch_cache (m : Machine.t) ~pc ~addr ~size ~write =
  if addr >= 0 then begin
    let hit = Gb_cache.Hierarchy.access m.hier ~addr ~size ~write in
    let cost = Gb_cache.Hierarchy.vliw_cost m.hier ~hit in
    m.stall <- m.stall + cost;
    if cost > 0 then
      match Gb_obs.Sink.attrib m.obs with
      | Some a ->
        Gb_obs.Attrib.add_here_cycles a Gb_obs.Attrib.Cache_miss_stall ~pc
          ~cycles:cost
      | None -> ()
  end

let exec_op (m : Machine.t) op =
  let open Vinsn in
  match op with
  | Nop | Fence -> ()
  | Alu { op; dst; a; b } ->
    push_write m ~taint:(tainted m a || tainted m b) dst
      (Gb_riscv.Interp.alu_rr op (eval m.regs a) (eval m.regs b))
  | Mv { dst; src } -> push_write m ~taint:(tainted m src) dst (eval m.regs src)
  | Rdcycle { dst } ->
    (* the natural reading is the clock at bundle issue — the batched
       cycles of all previous bundles must be folded in first *)
    Machine.flush_acc m;
    let now = !(m.clock) in
    push_write m ~taint:false dst
      (match m.rdcycle_hook with
      | Some f -> f now
      | None -> now)
  | Load { w; unsigned; dst; base; off; spec; id; pc; hoisted } ->
    let addr = Int64.to_int (eval m.regs base) + off in
    let size = Gb_riscv.Interp.width_bytes w in
    let mem_size = Gb_riscv.Mem.size m.mem in
    touch_cache m ~pc ~addr ~size ~write:false;
    (match spec with
    | Some tag -> Mcb.alloc m.mcb ~tag ~addr ~size
    | None -> ());
    let speculative = hoisted || spec <> None in
    (match m.audit with
    | Some a when addr >= 0 ->
      Gb_cache.Audit.run_access a ~id ~pc ~addr ~size ~write:false ~speculative
        ~dependent:(tainted m base)
    | Some _ | None -> ());
    let taint = speculative || tainted m base in
    (* Deferred-fault semantics for speculative loads; the bound check is
       overflow-proof ([addr + size] wraps negative near [max_int], which
       would let a speculatively computed address dodge the fault path).
       Each branch hands its value straight to [push_write]: binding the
       loaded value in a [let] across the fault/width branches makes the
       compiler unbox the join and re-box at the use site — one extra
       minor block per load on the hot path. *)
    if addr < 0 || size > mem_size - addr then push_write m ~taint dst 0L
    else begin
      match w with
      | Gb_riscv.Insn.D ->
        push_write m ~taint dst (Gb_riscv.Mem.load m.mem ~addr ~size:8)
      | Gb_riscv.Insn.B | Gb_riscv.Insn.H | Gb_riscv.Insn.W ->
        (* sub-word loads extend in the native-int domain: one box *)
        let raw = Gb_riscv.Mem.load_int m.mem ~addr ~size in
        push_write m ~taint dst
          (if unsigned then Int64.of_int raw
           else
             let sh = Sys.int_size - (8 * size) in
             Int64.of_int ((raw lsl sh) asr sh))
    end
  | Store { w; src; base; off; id; pc } ->
    let addr = Int64.to_int (eval m.regs base) + off in
    let size = Gb_riscv.Interp.width_bytes w in
    Gb_riscv.Mem.store m.mem ~addr ~size (eval m.regs src);
    touch_cache m ~pc ~addr ~size ~write:true;
    Mcb.store_probe m.mcb ~pc ~addr ~size;
    (match m.audit with
    | Some a when addr >= 0 ->
      Gb_cache.Audit.run_access a ~id ~pc ~addr ~size ~write:true
        ~speculative:false ~dependent:false
    | Some _ | None -> ())
  | Branch { cond; a; b; stub } ->
    if Gb_riscv.Interp.eval_cond cond (eval m.regs a) (eval m.regs b) then
      take m stub Side_exit
  | Chk { tag; stub } -> if Mcb.check m.mcb ~tag then take m stub Rollback
  | Cflush { base; off; id; pc } ->
    let addr = Int64.to_int (eval m.regs base) + off in
    if addr >= 0 then begin
      Gb_cache.Hierarchy.flush_line m.hier addr;
      match m.audit with
      | Some a -> Gb_cache.Audit.run_flush a ~id ~pc ~addr
      | None -> ()
    end
  | Exit { stub } -> take m stub Fallthrough

let rec apply_commits (m : Machine.t) commits =
  match commits with
  | [] -> ()
  | (dst, src) :: rest ->
    if dst = 0 || dst >= Vinsn.guest_regs then
      error "stub commit to non-guest register %d" dst;
    m.regs.(dst) <- eval m.regs src;
    apply_commits m rest

let finish (m : Machine.t) (trace : Vinsn.trace) ~width ~bundle_idx stub_idx
    kind =
  let open Vinsn in
  (* the run is over. Observers (the audit's end-of-run diff, event
     stamping through an active sink) must see the exact pre-commit
     clock, so flush for them here; without one the accumulators keep
     batching and fold exactly once below, after the commit/penalty
     booking — one int64 materialisation per run instead of two *)
  if m.audit <> None || Gb_obs.Sink.is_active m.obs then Machine.flush_acc m;
  let stub = trace.stubs.(stub_idx) in
  (match m.audit with
  | Some a -> Gb_cache.Audit.end_run a ~exit_id:stub.exit_id
  | None -> ());
  apply_commits m stub.commits;
  let commit_cycles = (stub.n_commits + width - 1) / width in
  (* a fall-through exit is block chaining — sequential fetch, no
     pipeline flush; only mispredicted side exits and MCB rollbacks pay
     the refill penalty *)
  let penalty =
    match kind with
    | Fallthrough -> 0
    | Side_exit | Rollback -> m.cfg.exit_penalty
  in
  m.acc_cycles <- m.acc_cycles + commit_cycles + penalty;
  Machine.flush_acc m;
  (match Gb_obs.Sink.attrib m.obs with
  | Some a ->
    let module At = Gb_obs.Attrib in
    if commit_cycles > 0 then
      At.add_here_cycles a At.Committed_work ~pc:trace.entry_pc
        ~cycles:commit_cycles;
    if penalty > 0 then
      (* a chained transfer reclassifies this to Chain_transfer in
         [run] below, once the link is known to be followed *)
      At.add_here_cycles a
        (match kind with Rollback -> At.Mcb_rollback | _ -> At.Dispatcher_exit)
        ~pc:stub.target_pc ~cycles:penalty
  | None -> ());
  (match kind with
  | Side_exit -> m.stats.side_exits <- m.stats.side_exits + 1
  | Rollback -> m.stats.rollbacks <- m.stats.rollbacks + 1
  | Fallthrough -> ());
  if Gb_obs.Sink.is_active m.obs then begin
    let region = trace.entry_pc in
    (match kind with
    | Side_exit -> Gb_obs.Sink.incr m.obs "vliw.side_exits"
    | Rollback ->
      Gb_obs.Sink.incr m.obs "vliw.rollbacks";
      Gb_obs.Sink.event m.obs ~pc:stub.target_pc ~region Gb_obs.Event.Rollback
    | Fallthrough -> Gb_obs.Sink.incr m.obs "vliw.fallthroughs");
    (* how deep into the trace the run got before leaving *)
    Gb_obs.Sink.observe m.obs "vliw.exit_bundle" (float_of_int (bundle_idx + 1))
  end;
  let r = m.exit_scratch in
  r.next_pc <- stub.target_pc;
  r.kind <- kind;
  r.exit_entry <- trace.entry_pc;
  r.taken_stub <- stub_idx;
  r

(* Execute one pass over a trace. The mutable per-cycle state lives in
   the machine's scratch fields; register writes are buffered and applied
   at end of cycle to get the parallel-read semantics right. *)
let run_one (m : Machine.t) (trace : Vinsn.trace) =
  let open Vinsn in
  if Array.length m.regs < trace.n_regs then
    error "trace needs %d registers, machine has %d" trace.n_regs
      (Array.length m.regs);
  let width =
    if Array.length trace.bundles = 0 then 1
    else Array.length trace.bundles.(0)
  in
  let attrib = Gb_obs.Sink.attrib m.obs in
  (* mitigation-inserted fences mark this translation's Fence/Nop slots
     as mitigation cost; a trace the mitigation never touched charges its
     fences (the guest's own) to committed work *)
  let mitigated = trace.meta.fences_inserted > 0 in
  let cut = trace.meta.cut_protects > 0 in
  (match attrib with
  | Some a -> Gb_obs.Attrib.enter a ~entry:trace.entry_pc
  | None -> ());
  Mcb.clear m.mcb;
  m.stats.trace_runs <- m.stats.trace_runs + 1;
  m.stats.guest_insns <- m.stats.guest_insns + trace.guest_insns;
  Gb_obs.Sink.incr m.obs "vliw.trace_runs";
  (match m.audit with
  | Some a -> Gb_cache.Audit.begin_run a ~region:trace.entry_pc
  | None -> ());
  (* Per-run taint over the register file: set by speculative loads,
     propagated through Alu/Mv, read to decide whether a load's address
     was derived from speculatively loaded data (the leak condition the
     audit scores). Dead weight unless an audit is attached. *)
  m.taint_on <- (match m.audit with Some _ -> true | None -> false);
  if m.taint_on then Array.fill m.taint 0 (Array.length m.taint) false;
  Machine.ensure_write_capacity m (width * 2);
  (* an active sink stamps events (cache misses, MCB conflicts) with the
     clock mid-run, and an audit diffs shadow state per run: both need
     the pre-batching per-bundle flush; otherwise the accumulators are
     invisible until the next flush point and bundle advance allocates
     nothing *)
  m.eager <- Gb_obs.Sink.is_active m.obs || m.taint_on || attrib <> None;
  let n = Array.length trace.bundles in
  let rec cycle i =
    if i >= n then error "trace fell off the end without an Exit op"
    else begin
      let bundle = trace.bundles.(i) in
      m.n_writes <- 0;
      m.stall <- 0;
      m.taken_stub <- -1;
      for k = 0 to Array.length bundle - 1 do
        exec_op m bundle.(k)
      done;
      for k = 0 to m.n_writes - 1 do
        let dst = m.w_dst.(k) in
        m.regs.(dst) <- m.w_val.(k);
        if m.taint_on then m.taint.(dst) <- m.w_taint.(k)
      done;
      m.acc_bundles <- m.acc_bundles + 1;
      m.acc_stalls <- m.acc_stalls + m.stall;
      m.acc_cycles <- m.acc_cycles + 1 + m.stall;
      if m.eager then Machine.flush_acc m;
      (* the cache-miss part of this advance was attributed op-by-op in
         touch_cache; the one issue cycle splits across the slots here *)
      (match attrib with
      | Some a ->
        attribute_bundle a ~mitigated ~cut ~width ~pc:trace.entry_pc bundle
      | None -> ());
      if m.taken_stub >= 0 then
        finish m trace ~width ~bundle_idx:i m.taken_stub m.taken_kind
      else cycle (i + 1)
    end
  in
  try cycle 0 with e -> Machine.flush_acc m; raise e

(* Run a trace and follow chain links: when the taken stub was patched by
   the code cache, transfer straight into the successor instead of
   returning to the dispatcher. Chaining is free in the simulated cost
   model — the dispatcher itself costs no cycles here — so all existing
   cycle counts are unchanged; what it changes is *control*: the host
   dispatch loop (and its per-exit bookkeeping) is bypassed, which is why
   every followed link is reported through [m.on_chain].

   The chain target is captured *before* the callback runs: the callback
   (engine accounting) may decide to retranslate or despeculate the
   exiting region, which unlinks that region's stubs — but never the
   already-captured successor, so following [next] stays safe. Rollback
   exits always return to the dispatcher: MCB recovery re-enters the
   interpreter-visible path. *)
let run (m : Machine.t) (trace : Vinsn.trace) =
  if not m.cfg.chain then run_one m trace
  else begin
    let rec go fuel trace =
      let info = run_one m trace in
      if fuel <= 0 || info.kind = Rollback then info
      else begin
        let stub = trace.Vinsn.stubs.(info.taken_stub) in
        (* a chain link is the trigger; the resolver supplies the code to
           run, so a transfer whose accounting just replaced the target
           (block promotion, retranslation) continues into the fresh
           translation instead of the one captured at link time *)
        match stub.Vinsn.chain with
        | None -> info
        | Some _ -> (
          match m.on_chain info with
          | None -> info
          | Some next ->
            (* the exit penalty just booked as Dispatcher_exit was in
               fact paid transferring along the chain — reclassify it
               under the same key while the exiting trace is current *)
            (match Gb_obs.Sink.attrib m.obs with
            | Some a when info.kind = Side_exit && m.cfg.exit_penalty > 0 ->
              Gb_obs.Attrib.transfer a ~from_:Gb_obs.Attrib.Dispatcher_exit
                ~to_:Gb_obs.Attrib.Chain_transfer ~pc:info.next_pc
                ~cycles:m.cfg.exit_penalty
            | _ -> ());
            m.stats.chain_follows <- m.stats.chain_follows + 1;
            if Gb_obs.Sink.is_active m.obs then begin
              Gb_obs.Sink.incr m.obs "code_cache.chain_follows";
              Gb_obs.Sink.event m.obs ~pc:info.next_pc
                ~region:info.exit_entry
                (Gb_obs.Event.Chain
                   { target = next.Vinsn.entry_pc; op = `Follow })
            end;
            go (fuel - 1) next)
      end
    in
    go m.cfg.chain_fuel trace
  end
