type exit_kind = Vinsn.exit_kind = Fallthrough | Side_exit | Rollback

type exit_info = Vinsn.exit_info = {
  next_pc : int;
  kind : exit_kind;
  exit_entry : int;
  taken_stub : int;
}

exception Machine_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Machine_error s)) fmt

let eval regs = function
  | Vinsn.R r -> if r = 0 then 0L else regs.(r)
  | Vinsn.I v -> v

(* Attribute the one issue cycle of a bundle at slot granularity: each of
   the [width] slots owns [scale / width] fixed-point units. Useful ops
   are committed work; Fence slots are fence stalls when the mitigation
   inserted fences into this trace (a guest's own architectural fences
   are work, not mitigation cost); Nop slots are lost ILP — issue bubbles
   from schedule gaps or serialization — except in a fenced bundle of a
   mitigated trace, where the fence itself forced the bubble. The split
   is exact for every width dividing {!Gb_obs.Attrib.scale} (all widths
   up to 16); any remainder units go to committed work so conservation
   stays an integer identity. *)
let attribute_bundle a ~mitigated ~cut ~width ~pc bundle =
  let fences = ref 0 and nops = ref 0 in
  Array.iter
    (fun op ->
      match op with
      | Vinsn.Fence -> incr fences
      | Vinsn.Nop -> incr nops
      | _ -> ())
    bundle;
  let module At = Gb_obs.Attrib in
  let per_slot = At.scale / width in
  let rem = At.scale - (per_slot * width) in
  let useful = width - !fences - !nops in
  let committed, fence_stall, lost_ilp =
    if mitigated && !fences > 0 then
      (* the mitigation fenced this bundle: the fence slots and the
         bubbles it forces alongside are both fence cost *)
      (useful, !fences + !nops, 0)
    else (useful + !fences, 0, !nops)
  in
  (* a min-cut-protected trace's bubbles are serialization the repairs
     forced, not generic lost ILP: bill them to their own bucket so
     `profile diff` can separate cut cost from schedule gaps *)
  let lost_cause = if cut then At.Cut_protect else At.Nospec_serialization in
  At.add_here a At.Committed_work ~pc ~units:((committed * per_slot) + rem);
  At.add_here a At.Fence_stall ~pc ~units:(fence_stall * per_slot);
  At.add_here a lost_cause ~pc ~units:(lost_ilp * per_slot)

(* Execute one pass over a trace. The mutable per-cycle state is kept in
   local refs; register writes are buffered and applied at end of cycle to
   get the parallel-read semantics right. *)
let run_one (m : Machine.t) (trace : Vinsn.trace) =
  let open Vinsn in
  if Array.length m.regs < trace.n_regs then
    error "trace needs %d registers, machine has %d" trace.n_regs
      (Array.length m.regs);
  let width =
    if Array.length trace.bundles = 0 then 1
    else Array.length trace.bundles.(0)
  in
  let attrib = Gb_obs.Sink.attrib m.obs in
  (* mitigation-inserted fences mark this translation's Fence/Nop slots
     as mitigation cost; a trace the mitigation never touched charges its
     fences (the guest's own) to committed work *)
  let mitigated = trace.meta.fences_inserted > 0 in
  let cut = trace.meta.cut_protects > 0 in
  (match attrib with
  | Some a -> Gb_obs.Attrib.enter a ~entry:trace.entry_pc
  | None -> ());
  Mcb.clear m.mcb;
  m.stats.trace_runs <- Int64.add m.stats.trace_runs 1L;
  m.stats.guest_insns <-
    Int64.add m.stats.guest_insns (Int64.of_int trace.guest_insns);
  Gb_obs.Sink.incr m.obs "vliw.trace_runs";
  (match m.audit with
  | Some a -> Gb_cache.Audit.begin_run a ~region:trace.entry_pc
  | None -> ());
  (* Per-run taint over the register file: set by speculative loads,
     propagated through Alu/Mv, read to decide whether a load's address
     was derived from speculatively loaded data (the leak condition the
     audit scores). Dead weight unless an audit is attached. *)
  let taint =
    match m.audit with
    | Some _ -> Array.make (Array.length m.regs) false
    | None -> [||]
  in
  let tainted = function
    | Vinsn.R r -> r <> 0 && Array.length taint > 0 && taint.(r)
    | Vinsn.I _ -> false
  in
  let writes = Array.make (width * 2) (-1, 0L) in
  let wtaint = Array.make (width * 2) false in
  let n_writes = ref 0 in
  let push_write ?(taint = false) dst v =
    if dst <> 0 then begin
      for i = 0 to !n_writes - 1 do
        if fst writes.(i) = dst then error "duplicate write to register %d" dst
      done;
      writes.(!n_writes) <- (dst, v);
      wtaint.(!n_writes) <- taint;
      incr n_writes
    end
  in
  let stall = ref 0 in
  let taken_stub = ref None in
  let take stub kind =
    (match !taken_stub with
    | Some _ -> error "two control operations taken in one bundle"
    | None -> ());
    taken_stub := Some (stub, kind)
  in
  let mem_size = Gb_riscv.Mem.size m.mem in
  let load_value ~addr ~size =
    (* deferred-fault semantics for speculative loads *)
    if addr >= 0 && addr + size <= mem_size then
      Gb_riscv.Mem.load m.mem ~addr ~size
    else 0L
  in
  let touch_cache ~pc ~addr ~size ~write =
    if addr >= 0 then begin
      let hit = Gb_cache.Hierarchy.access m.hier ~addr ~size ~write in
      let cost = Gb_cache.Hierarchy.vliw_cost m.hier ~hit in
      stall := !stall + cost;
      if cost > 0 then
        match attrib with
        | Some a ->
          Gb_obs.Attrib.add_here_cycles a Gb_obs.Attrib.Cache_miss_stall ~pc
            ~cycles:cost
        | None -> ()
    end
  in
  let exec_op clock_now op =
    match op with
    | Nop | Fence -> ()
    | Alu { op; dst; a; b } ->
      push_write ~taint:(tainted a || tainted b) dst
        (Gb_riscv.Interp.alu_rr op (eval m.regs a) (eval m.regs b))
    | Mv { dst; src } -> push_write ~taint:(tainted src) dst (eval m.regs src)
    | Rdcycle { dst } ->
      push_write dst
        (match m.rdcycle_hook with
        | Some f -> f clock_now
        | None -> clock_now)
    | Load { w; unsigned; dst; base; off; spec; id; pc; hoisted } ->
      let addr = Int64.to_int (Int64.add (eval m.regs base) (Int64.of_int off)) in
      let size = Gb_riscv.Interp.width_bytes w in
      let raw = load_value ~addr ~size in
      let v = if unsigned then raw else Gb_riscv.Interp.sign_of_width w raw in
      touch_cache ~pc ~addr ~size ~write:false;
      (match spec with
      | Some tag -> Mcb.alloc m.mcb ~tag ~addr ~size
      | None -> ());
      let speculative = hoisted || spec <> None in
      (match m.audit with
      | Some a when addr >= 0 ->
        Gb_cache.Audit.run_access a ~id ~pc ~addr ~size ~write:false
          ~speculative ~dependent:(tainted base)
      | Some _ | None -> ());
      push_write ~taint:(speculative || tainted base) dst v
    | Store { w; src; base; off; id; pc } ->
      let addr = Int64.to_int (Int64.add (eval m.regs base) (Int64.of_int off)) in
      let size = Gb_riscv.Interp.width_bytes w in
      Gb_riscv.Mem.store m.mem ~addr ~size (eval m.regs src);
      touch_cache ~pc ~addr ~size ~write:true;
      Mcb.store_probe m.mcb ~pc ~addr ~size ();
      (match m.audit with
      | Some a when addr >= 0 ->
        Gb_cache.Audit.run_access a ~id ~pc ~addr ~size ~write:true
          ~speculative:false ~dependent:false
      | Some _ | None -> ())
    | Branch { cond; a; b; stub } ->
      if Gb_riscv.Interp.eval_cond cond (eval m.regs a) (eval m.regs b) then
        take stub Side_exit
    | Chk { tag; stub } ->
      if Mcb.check m.mcb ~tag then take stub Rollback
    | Cflush { base; off; id; pc } ->
      let addr = Int64.to_int (Int64.add (eval m.regs base) (Int64.of_int off)) in
      if addr >= 0 then begin
        Gb_cache.Hierarchy.flush_line m.hier addr;
        match m.audit with
        | Some a -> Gb_cache.Audit.run_flush a ~id ~pc ~addr
        | None -> ()
      end
    | Exit { stub } -> take stub Fallthrough
  in
  let finish ~bundle_idx stub_idx kind =
    let stub = trace.stubs.(stub_idx) in
    (match m.audit with
    | Some a -> Gb_cache.Audit.end_run a ~exit_id:stub.exit_id
    | None -> ());
    List.iter
      (fun (dst, src) ->
        if dst = 0 || dst >= guest_regs then
          error "stub commit to non-guest register %d" dst;
        m.regs.(dst) <- eval m.regs src)
      stub.commits;
    let commit_cycles = (List.length stub.commits + width - 1) / width in
    (* a fall-through exit is block chaining — sequential fetch, no
       pipeline flush; only mispredicted side exits and MCB rollbacks pay
       the refill penalty *)
    let penalty =
      match kind with
      | Fallthrough -> 0
      | Side_exit | Rollback -> m.cfg.exit_penalty
    in
    m.clock := Int64.add !(m.clock) (Int64.of_int (commit_cycles + penalty));
    (match attrib with
    | Some a ->
      let module At = Gb_obs.Attrib in
      if commit_cycles > 0 then
        At.add_here_cycles a At.Committed_work ~pc:trace.entry_pc
          ~cycles:commit_cycles;
      if penalty > 0 then
        (* a chained transfer reclassifies this to Chain_transfer in
           [run] below, once the link is known to be followed *)
        At.add_here_cycles a
          (match kind with Rollback -> At.Mcb_rollback | _ -> At.Dispatcher_exit)
          ~pc:stub.target_pc ~cycles:penalty
    | None -> ());
    (match kind with
    | Side_exit -> m.stats.side_exits <- Int64.add m.stats.side_exits 1L
    | Rollback -> m.stats.rollbacks <- Int64.add m.stats.rollbacks 1L
    | Fallthrough -> ());
    if Gb_obs.Sink.is_active m.obs then begin
      let region = trace.entry_pc in
      (match kind with
      | Side_exit -> Gb_obs.Sink.incr m.obs "vliw.side_exits"
      | Rollback ->
        Gb_obs.Sink.incr m.obs "vliw.rollbacks";
        Gb_obs.Sink.event m.obs ~pc:stub.target_pc ~region Gb_obs.Event.Rollback
      | Fallthrough -> Gb_obs.Sink.incr m.obs "vliw.fallthroughs");
      (* how deep into the trace the run got before leaving *)
      Gb_obs.Sink.observe m.obs "vliw.exit_bundle" (float_of_int (bundle_idx + 1))
    end;
    { next_pc = stub.target_pc; kind; exit_entry = trace.entry_pc;
      taken_stub = stub_idx }
  in
  let n = Array.length trace.bundles in
  let rec cycle i =
    if i >= n then error "trace fell off the end without an Exit op"
    else begin
      let bundle = trace.bundles.(i) in
      n_writes := 0;
      stall := 0;
      taken_stub := None;
      let clock_now = !(m.clock) in
      Array.iter (exec_op clock_now) bundle;
      for k = 0 to !n_writes - 1 do
        let dst, v = writes.(k) in
        m.regs.(dst) <- v;
        if Array.length taint > 0 then taint.(dst) <- wtaint.(k)
      done;
      m.stats.bundles <- Int64.add m.stats.bundles 1L;
      m.stats.stall_cycles <- Int64.add m.stats.stall_cycles (Int64.of_int !stall);
      m.clock := Int64.add !(m.clock) (Int64.of_int (1 + !stall));
      (* the cache-miss part of this advance was attributed op-by-op in
         touch_cache; the one issue cycle splits across the slots here *)
      (match attrib with
      | Some a ->
        attribute_bundle a ~mitigated ~cut ~width ~pc:trace.entry_pc bundle
      | None -> ());
      match !taken_stub with
      | Some (stub, kind) -> finish ~bundle_idx:i stub kind
      | None -> cycle (i + 1)
    end
  in
  cycle 0

(* Run a trace and follow chain links: when the taken stub was patched by
   the code cache, transfer straight into the successor instead of
   returning to the dispatcher. Chaining is free in the simulated cost
   model — the dispatcher itself costs no cycles here — so all existing
   cycle counts are unchanged; what it changes is *control*: the host
   dispatch loop (and its per-exit bookkeeping) is bypassed, which is why
   every followed link is reported through [m.on_chain].

   The chain target is captured *before* the callback runs: the callback
   (engine accounting) may decide to retranslate or despeculate the
   exiting region, which unlinks that region's stubs — but never the
   already-captured successor, so following [next] stays safe. Rollback
   exits always return to the dispatcher: MCB recovery re-enters the
   interpreter-visible path. *)
let run (m : Machine.t) (trace : Vinsn.trace) =
  if not m.cfg.chain then run_one m trace
  else begin
    let rec go fuel trace =
      let info = run_one m trace in
      if fuel <= 0 || info.kind = Rollback then info
      else begin
        let stub = trace.Vinsn.stubs.(info.taken_stub) in
        (* a chain link is the trigger; the resolver supplies the code to
           run, so a transfer whose accounting just replaced the target
           (block promotion, retranslation) continues into the fresh
           translation instead of the one captured at link time *)
        match stub.Vinsn.chain with
        | None -> info
        | Some _ -> (
          match m.on_chain info with
          | None -> info
          | Some next ->
            (* the exit penalty just booked as Dispatcher_exit was in
               fact paid transferring along the chain — reclassify it
               under the same key while the exiting trace is current *)
            (match Gb_obs.Sink.attrib m.obs with
            | Some a when info.kind = Side_exit && m.cfg.exit_penalty > 0 ->
              Gb_obs.Attrib.transfer a ~from_:Gb_obs.Attrib.Dispatcher_exit
                ~to_:Gb_obs.Attrib.Chain_transfer ~pc:info.next_pc
                ~cycles:m.cfg.exit_penalty
            | _ -> ());
            m.stats.chain_follows <- Int64.add m.stats.chain_follows 1L;
            if Gb_obs.Sink.is_active m.obs then begin
              Gb_obs.Sink.incr m.obs "code_cache.chain_follows";
              Gb_obs.Sink.event m.obs ~pc:info.next_pc
                ~region:info.exit_entry
                (Gb_obs.Event.Chain
                   { target = next.Vinsn.entry_pc; op = `Follow })
            end;
            go (fuel - 1) next)
      end
    in
    go m.cfg.chain_fuel trace
  end
