type t = {
  addrs : int array;
  sizes : int array;
  live : bool array;
  conflict : bool array;
  mutable total_conflicts : int;
  mutable fault_hook : (tag:int -> conflict:bool -> bool) option;
  obs : Gb_obs.Sink.t;
}

let create ?(obs = Gb_obs.Sink.noop) ~entries () =
  if entries < 0 then invalid_arg "Mcb.create: negative entries";
  {
    addrs = Array.make entries 0;
    sizes = Array.make entries 0;
    live = Array.make entries false;
    conflict = Array.make entries false;
    total_conflicts = 0;
    fault_hook = None;
    obs;
  }

let entries t = Array.length t.addrs

let enabled t = Array.length t.addrs > 0

let set_fault_hook t hook = t.fault_hook <- hook

let clear t =
  Array.fill t.live 0 (Array.length t.live) false;
  Array.fill t.conflict 0 (Array.length t.conflict) false

let alloc t ~tag ~addr ~size =
  (* entries=0 means the MCB is disabled: every operation is an explicit
     no-op (the translator must not emit speculative memory ops in that
     case — the processor clamps the optimizer's mcb_tags accordingly) *)
  if tag >= 0 && tag < Array.length t.addrs then begin
    t.addrs.(tag) <- addr;
    t.sizes.(tag) <- size;
    t.live.(tag) <- true;
    t.conflict.(tag) <- false
  end

let overlap a1 s1 a2 s2 = a1 < a2 + s2 && a2 < a1 + s1

(* [pc] is a required label: an optional argument here would box a
   [Some pc] on every store the pipeline executes *)
let store_probe t ~pc ~addr ~size =
  for tag = 0 to Array.length t.addrs - 1 do
    if t.live.(tag) && not t.conflict.(tag)
       && overlap addr size t.addrs.(tag) t.sizes.(tag)
    then begin
      t.conflict.(tag) <- true;
      t.total_conflicts <- t.total_conflicts + 1;
      if Gb_obs.Sink.is_active t.obs then begin
        Gb_obs.Sink.incr t.obs "vliw.mcb_conflicts";
        Gb_obs.Sink.event t.obs ~pc:addr (Gb_obs.Event.Mcb_conflict { addr });
        (* remember which store pc flagged the conflict: the attribution
           report ties rollback cycles back to the stores causing them *)
        match Gb_obs.Sink.attrib t.obs with
        | Some a -> Gb_obs.Attrib.note_conflict a ~pc
        | None -> ()
      end
    end
  done

let check t ~tag =
  let c =
    if tag < 0 || tag >= Array.length t.addrs || not t.live.(tag) then false
    else begin
      t.live.(tag) <- false;
      let c = t.conflict.(tag) in
      t.conflict.(tag) <- false;
      c
    end
  in
  match t.fault_hook with None -> c | Some hook -> hook ~tag ~conflict:c

let conflicts_recorded t = t.total_conflicts
