type t = {
  addrs : int array;
  sizes : int array;
  live : bool array;
  conflict : bool array;
  mutable total_conflicts : int;
  obs : Gb_obs.Sink.t;
}

let create ?(obs = Gb_obs.Sink.noop) ~entries () =
  {
    addrs = Array.make entries 0;
    sizes = Array.make entries 0;
    live = Array.make entries false;
    conflict = Array.make entries false;
    total_conflicts = 0;
    obs;
  }

let entries t = Array.length t.addrs

let clear t =
  Array.fill t.live 0 (Array.length t.live) false;
  Array.fill t.conflict 0 (Array.length t.conflict) false

let alloc t ~tag ~addr ~size =
  t.addrs.(tag) <- addr;
  t.sizes.(tag) <- size;
  t.live.(tag) <- true;
  t.conflict.(tag) <- false

let overlap a1 s1 a2 s2 = a1 < a2 + s2 && a2 < a1 + s1

let store_probe t ~addr ~size =
  for tag = 0 to Array.length t.addrs - 1 do
    if t.live.(tag) && not t.conflict.(tag)
       && overlap addr size t.addrs.(tag) t.sizes.(tag)
    then begin
      t.conflict.(tag) <- true;
      t.total_conflicts <- t.total_conflicts + 1;
      if Gb_obs.Sink.is_active t.obs then begin
        Gb_obs.Sink.incr t.obs "vliw.mcb_conflicts";
        Gb_obs.Sink.event t.obs ~pc:addr (Gb_obs.Event.Mcb_conflict { addr })
      end
    end
  done

let check t ~tag =
  if not t.live.(tag) then false
  else begin
    t.live.(tag) <- false;
    let c = t.conflict.(tag) in
    t.conflict.(tag) <- false;
    c
  end

let conflicts_recorded t = t.total_conflicts
