(** Memory Conflict Buffer (Gallagher et al., ASPLOS'94), the hardware
    support for memory-dependency speculation: speculative loads record
    their address; stores compare against all recorded addresses and mark
    conflicts; the [chk] instruction consumes an entry and reports whether
    a conflict occurred (in which case the DBT runtime rolls back). *)

type t

val create : ?obs:Gb_obs.Sink.t -> entries:int -> unit -> t
(** [obs] (default {!Gb_obs.Sink.noop}) receives a [vliw.mcb_conflicts]
    counter and a {!Gb_obs.Event.Mcb_conflict} event per marked entry.
    [entries = 0] means "MCB disabled": {!alloc}/{!store_probe} are
    no-ops and {!check} reports no conflict. A disabled MCB requires the
    translator to emit no speculative memory ops ({!Gb_ir.Opt_config}
    with [mem_spec = false]; the processor clamps this automatically).
    Raises [Invalid_argument] when [entries] is negative. *)

val entries : t -> int

val enabled : t -> bool
(** [entries t > 0]. *)

val set_fault_hook : t -> (tag:int -> conflict:bool -> bool) option -> unit
(** Fault-injection hook for the differential harness: when set, every
    {!check} result is filtered through the hook (return [true] to force
    a spurious conflict, [false] to suppress a real one). [None] (the
    default) leaves results untouched. *)

val clear : t -> unit
(** Invalidate all entries (done on trace entry). *)

val alloc : t -> tag:int -> addr:int -> size:int -> unit
(** Record a speculative load. Re-allocating a live tag resets its
    conflict bit. Out-of-range tags (always the case when disabled) are
    ignored. *)

val store_probe : t -> pc:int -> addr:int -> size:int -> unit
(** Called by every store: marks every live entry overlapping the range.
    [pc] is the store's guest pc (attribution; pass 0 when unknown). It
    is a required label so the per-store hot path never boxes an
    optional argument. *)

val check : t -> tag:int -> bool
(** Consume entry [tag]; returns [true] iff a conflict was recorded.
    Unallocated tags report no conflict. *)

val conflicts_recorded : t -> int
(** Total number of conflicts marked since creation (statistics). *)
