(** Memory Conflict Buffer (Gallagher et al., ASPLOS'94), the hardware
    support for memory-dependency speculation: speculative loads record
    their address; stores compare against all recorded addresses and mark
    conflicts; the [chk] instruction consumes an entry and reports whether
    a conflict occurred (in which case the DBT runtime rolls back). *)

type t

val create : ?obs:Gb_obs.Sink.t -> entries:int -> unit -> t
(** [obs] (default {!Gb_obs.Sink.noop}) receives a [vliw.mcb_conflicts]
    counter and a {!Gb_obs.Event.Mcb_conflict} event per marked entry. *)

val entries : t -> int

val clear : t -> unit
(** Invalidate all entries (done on trace entry). *)

val alloc : t -> tag:int -> addr:int -> size:int -> unit
(** Record a speculative load. Re-allocating a live tag resets its
    conflict bit. *)

val store_probe : t -> addr:int -> size:int -> unit
(** Called by every store: marks every live entry overlapping the range. *)

val check : t -> tag:int -> bool
(** Consume entry [tag]; returns [true] iff a conflict was recorded.
    Unallocated tags report no conflict. *)

val conflicts_recorded : t -> int
(** Total number of conflicts marked since creation (statistics). *)
