(** VLIW machine state: the shared register file (guest + hidden), guest
    memory, the memory hierarchy, the global clock and the MCB. *)

type config = {
  n_hidden : int;  (** hidden (speculation) registers beyond the 32 guest ones *)
  mcb_entries : int;
  exit_penalty : int;  (** pipeline refill cycles on any trace exit *)
  chain : bool;
      (** follow patched [stub.chain] links inside {!Pipeline.run} instead
          of returning to the dispatcher. Following a link is only legal
          because links are created exclusively by the code cache, which
          enforces mitigation-mode compatibility and unlinks on eviction. *)
  chain_fuel : int;
      (** maximum chained transfers per {!Pipeline.run} call before
          control is handed back to the dispatcher anyway, so the
          processor's cycle watchdog and host-side loop stay live even
          when a hot loop chains to itself *)
}

val default_config : config
(** 96 hidden registers, 8 MCB entries, exit penalty 4, chaining on with
    fuel 4096. *)

type stats = {
  mutable bundles : int;
  mutable trace_runs : int;
  mutable side_exits : int;
  mutable rollbacks : int;
  mutable stall_cycles : int;
  mutable chain_follows : int;
      (** chained transfers taken without returning to the dispatcher *)
  mutable guest_insns : int;
      (** guest instructions covered by executed traces (full-pass upper
          estimate: an early side exit still counts the whole trace) *)
}
(** Native-int counters ([int64] fields would box per increment on the
    hot path); {!Gb_system.Processor} widens them to [int64] in its
    result record. *)

type t = {
  cfg : config;
  regs : int64 array;
  mem : Gb_riscv.Mem.t;
  hier : Gb_cache.Hierarchy.t;
  clock : int64 ref;
  mcb : Mcb.t;
  stats : stats;
  obs : Gb_obs.Sink.t;
  audit : Gb_cache.Audit.t option;
      (** leakage audit fed by {!Pipeline.run}; [None] disables buffering *)
  mutable on_chain : Vinsn.exit_info -> Vinsn.trace option;
      (** the chained-transfer resolver, consulted by {!Pipeline.run}
          whenever the taken stub carries a chain link. It must do
          whatever the dispatcher would have done for this exit
          (per-region run/side-exit/rollback accounting, hot-counter
          tick for the target — which may promote or drop translations)
          and then return the translation {e now} installed at
          [next_pc], or [None] to hand the exit back to the dispatcher.
          Resolving after accounting means a transfer that promotes its
          own target immediately runs the new trace, exactly like a
          dispatch — chaining stays invisible to the cost model. The
          default resolver returns [None] (a bare machine has no code
          cache, so it never chains); {!Gb_system.Processor} installs
          the real one. The final (returned) exit is never reported
          here. *)
  mutable rdcycle_hook : (int64 -> int64) option;
      (** when set, every [Rdcycle] op's result is filtered through the
          hook (given the natural clock reading). The differential
          oracle uses it to record the timing values a run observed —
          committed rdcycles execute in guest program order on both
          tiers (pinned barrier nodes), so the recorded stream can be
          replayed into the reference interpreter, which turns timing
          into a run {e input} instead of compared state. [None]
          (default) reads the clock unfiltered. *)
  mutable w_dst : int array;
      (** scratch (owned by {!Pipeline}): parallel-write destinations *)
  mutable w_val : int64 array;  (** scratch: parallel-write values *)
  mutable w_taint : bool array;  (** scratch: parallel-write taint bits *)
  mutable n_writes : int;  (** scratch: live prefix of the write buffer *)
  mutable stall : int;  (** scratch: stall cycles of the current bundle *)
  mutable taken_stub : int;  (** scratch: taken stub index, -1 = none *)
  mutable taken_kind : Vinsn.exit_kind;  (** scratch: kind of taken exit *)
  taint : bool array;
      (** per-run register taint (speculative-load propagation), live
          only while [taint_on] *)
  mutable taint_on : bool;
      (** whether [taint] is being maintained (an audit is attached) *)
  mutable acc_bundles : int;
      (** scratch: bundles not yet folded into [stats.bundles] *)
  mutable acc_stalls : int;
      (** scratch: stall cycles not yet folded into [stats.stall_cycles] *)
  mutable acc_cycles : int;
      (** scratch: cycles not yet folded into [clock]; always 0 outside
          {!Pipeline.run_one} *)
  mutable eager : bool;
      (** flush the accumulators every bundle (an observer — active
          sink, audit — could read the clock mid-run) *)
  exit_scratch : Vinsn.exit_info;
      (** scratch: the one exit record every pipeline pass refills and
          returns (see {!Vinsn.exit_info} on its lifetime) *)
}

val create :
  ?cfg:config ->
  mem:Gb_riscv.Mem.t ->
  hier:Gb_cache.Hierarchy.t ->
  clock:int64 ref ->
  ?regs:int64 array ->
  ?obs:Gb_obs.Sink.t ->
  ?audit:Gb_cache.Audit.t ->
  unit ->
  t
(** [regs], when provided, must be at least [32 + cfg.n_hidden] long (it is
    shared with the interpreter, which only uses the first 32 slots).
    [obs] (default {!Gb_obs.Sink.noop}) receives the [vliw.*] counters and
    rollback/conflict events of {!Pipeline} and {!Mcb}. *)

val ensure_write_capacity : t -> int -> unit
(** Grow the parallel-write scratch buffer to at least [n] slots;
    allocation-free once the buffer is large enough. *)

val flush_acc : t -> unit
(** Fold the batched bundle/stall/cycle accumulators into
    [stats]/[clock]. No-op when they are already 0. *)
