(** VLIW machine state: the shared register file (guest + hidden), guest
    memory, the memory hierarchy, the global clock and the MCB. *)

type config = {
  n_hidden : int;  (** hidden (speculation) registers beyond the 32 guest ones *)
  mcb_entries : int;
  exit_penalty : int;  (** pipeline refill cycles on any trace exit *)
  chain : bool;
      (** follow patched [stub.chain] links inside {!Pipeline.run} instead
          of returning to the dispatcher. Following a link is only legal
          because links are created exclusively by the code cache, which
          enforces mitigation-mode compatibility and unlinks on eviction. *)
  chain_fuel : int;
      (** maximum chained transfers per {!Pipeline.run} call before
          control is handed back to the dispatcher anyway, so the
          processor's cycle watchdog and host-side loop stay live even
          when a hot loop chains to itself *)
}

val default_config : config
(** 96 hidden registers, 8 MCB entries, exit penalty 4, chaining on with
    fuel 4096. *)

type stats = {
  mutable bundles : int64;
  mutable trace_runs : int64;
  mutable side_exits : int64;
  mutable rollbacks : int64;
  mutable stall_cycles : int64;
  mutable chain_follows : int64;
      (** chained transfers taken without returning to the dispatcher *)
  mutable guest_insns : int64;
      (** guest instructions covered by executed traces (full-pass upper
          estimate: an early side exit still counts the whole trace) *)
}

type t = {
  cfg : config;
  regs : int64 array;
  mem : Gb_riscv.Mem.t;
  hier : Gb_cache.Hierarchy.t;
  clock : int64 ref;
  mcb : Mcb.t;
  stats : stats;
  obs : Gb_obs.Sink.t;
  audit : Gb_cache.Audit.t option;
      (** leakage audit fed by {!Pipeline.run}; [None] disables buffering *)
  mutable on_chain : Vinsn.exit_info -> Vinsn.trace option;
      (** the chained-transfer resolver, consulted by {!Pipeline.run}
          whenever the taken stub carries a chain link. It must do
          whatever the dispatcher would have done for this exit
          (per-region run/side-exit/rollback accounting, hot-counter
          tick for the target — which may promote or drop translations)
          and then return the translation {e now} installed at
          [next_pc], or [None] to hand the exit back to the dispatcher.
          Resolving after accounting means a transfer that promotes its
          own target immediately runs the new trace, exactly like a
          dispatch — chaining stays invisible to the cost model. The
          default resolver returns [None] (a bare machine has no code
          cache, so it never chains); {!Gb_system.Processor} installs
          the real one. The final (returned) exit is never reported
          here. *)
  mutable rdcycle_hook : (int64 -> int64) option;
      (** when set, every [Rdcycle] op's result is filtered through the
          hook (given the natural clock reading). The differential
          oracle uses it to record the timing values a run observed —
          committed rdcycles execute in guest program order on both
          tiers (pinned barrier nodes), so the recorded stream can be
          replayed into the reference interpreter, which turns timing
          into a run {e input} instead of compared state. [None]
          (default) reads the clock unfiltered. *)
}

val create :
  ?cfg:config ->
  mem:Gb_riscv.Mem.t ->
  hier:Gb_cache.Hierarchy.t ->
  clock:int64 ref ->
  ?regs:int64 array ->
  ?obs:Gb_obs.Sink.t ->
  ?audit:Gb_cache.Audit.t ->
  unit ->
  t
(** [regs], when provided, must be at least [32 + cfg.n_hidden] long (it is
    shared with the interpreter, which only uses the first 32 slots).
    [obs] (default {!Gb_obs.Sink.noop}) receives the [vliw.*] counters and
    rollback/conflict events of {!Pipeline} and {!Mcb}. *)
