(** VLIW machine state: the shared register file (guest + hidden), guest
    memory, the memory hierarchy, the global clock and the MCB. *)

type config = {
  n_hidden : int;  (** hidden (speculation) registers beyond the 32 guest ones *)
  mcb_entries : int;
  exit_penalty : int;  (** pipeline refill cycles on any trace exit *)
}

val default_config : config
(** 96 hidden registers, 8 MCB entries, exit penalty 4. *)

type stats = {
  mutable bundles : int64;
  mutable trace_runs : int64;
  mutable side_exits : int64;
  mutable rollbacks : int64;
  mutable stall_cycles : int64;
}

type t = {
  cfg : config;
  regs : int64 array;
  mem : Gb_riscv.Mem.t;
  hier : Gb_cache.Hierarchy.t;
  clock : int64 ref;
  mcb : Mcb.t;
  stats : stats;
  obs : Gb_obs.Sink.t;
  audit : Gb_cache.Audit.t option;
      (** leakage audit fed by {!Pipeline.run}; [None] disables buffering *)
}

val create :
  ?cfg:config ->
  mem:Gb_riscv.Mem.t ->
  hier:Gb_cache.Hierarchy.t ->
  clock:int64 ref ->
  ?regs:int64 array ->
  ?obs:Gb_obs.Sink.t ->
  ?audit:Gb_cache.Audit.t ->
  unit ->
  t
(** [regs], when provided, must be at least [32 + cfg.n_hidden] long (it is
    shared with the interpreter, which only uses the first 32 slots).
    [obs] (default {!Gb_obs.Sink.noop}) receives the [vliw.*] counters and
    rollback/conflict events of {!Pipeline} and {!Mcb}. *)
