type t = { data : Bytes.t }

exception Fault of int

let create ~size = { data = Bytes.make size '\000' }

let size t = Bytes.length t.data

let check t addr n =
  (* overflow-proof form: [addr + n > len] wraps negative for
     attacker-controlled addresses near [max_int], letting the check pass
     and the unsafe accessors below run out of bounds. [n > len - addr]
     cannot overflow once [addr >= 0] is known ([n] is a small access
     size, [len - addr <= len]). *)
  if addr < 0 || n > Bytes.length t.data - addr then raise (Fault addr)

(* The loads below box at most one [int64] result (the 4-byte case reads
   two unboxed 16-bit halves rather than going through a boxed [int32]),
   and the stores box nothing: these run once per guest memory
   instruction on both execution tiers. *)

let load_int t ~addr ~size =
  check t addr size;
  match size with
  | 1 -> Char.code (Bytes.unsafe_get t.data addr)
  | 2 -> Bytes.get_uint16_le t.data addr
  | 4 ->
    Bytes.get_uint16_le t.data addr
    lor (Bytes.get_uint16_le t.data (addr + 2) lsl 16)
  | _ -> invalid_arg "Mem.load_int: size"

let load t ~addr ~size =
  match size with
  | 1 | 2 | 4 -> Int64.of_int (load_int t ~addr ~size)
  | 8 ->
    check t addr size;
    Bytes.get_int64_le t.data addr
  | _ -> invalid_arg "Mem.load: size"

let store t ~addr ~size v =
  check t addr size;
  match size with
  | 1 -> Bytes.unsafe_set t.data addr (Char.unsafe_chr (Int64.to_int v land 0xff))
  | 2 -> Bytes.set_uint16_le t.data addr (Int64.to_int v land 0xffff)
  | 4 ->
    let v = Int64.to_int v in
    Bytes.set_uint16_le t.data addr (v land 0xffff);
    Bytes.set_uint16_le t.data (addr + 2) ((v lsr 16) land 0xffff)
  | 8 -> Bytes.set_int64_le t.data addr v
  | _ -> invalid_arg "Mem.store: size"

let load_insn_word t ~addr =
  check t addr 4;
  Int32.to_int (Bytes.get_int32_le t.data addr) land 0xFFFFFFFF

let blit_bytes t ~addr b =
  check t addr (Bytes.length b);
  Bytes.blit b 0 t.data addr (Bytes.length b)

let read_bytes t ~addr ~len =
  check t addr len;
  Bytes.sub t.data addr len

let copy t = { data = Bytes.copy t.data }
