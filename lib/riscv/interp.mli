(** Reference interpreter for the guest ISA.

    This is the golden architectural model used for differential testing of
    the DBT pipeline, and also the timing model for not-yet-translated code
    in the co-designed processor (1 cycle per instruction plus memory
    latency reported by the hooks).

    The register file is passed in from outside so that interpreter and
    VLIW core can share architectural state (the VLIW file simply has extra
    hidden registers beyond index 31). *)

type hooks = {
  mem_extra : addr:int -> size:int -> write:bool -> int;
      (** extra cycles charged for a memory access (cache model) *)
  flush_line : int -> unit;  (** data-cache line flush *)
}

val pure_hooks : hooks
(** No cache: zero extra cycles, flush is a no-op. *)

type t = {
  regs : int64 array;
  mem : Mem.t;
  clock : int64 ref;
  hooks : hooks;
  mutable pc : int;
  mutable insn_count : int64;
  output : Buffer.t;  (** bytes written by the write ecall *)
  decode_cache : Insn.t option array;
      (** per-word decode cache (guest code is never self-modifying) *)
  mutable rdcycle_hook : (int64 -> int64) option;
      (** when set, every [rdcycle] result is filtered through the hook
          (given the natural clock reading). The differential oracle
          records timing on the DBT side and replays it on the reference
          side, making timing a run input instead of compared state.
          [None] (default) reads the clock unfiltered. *)
}

exception Trap of string
(** Unrecoverable guest error (illegal instruction, bad ecall, ...). *)

val default_sp : Mem.t -> int64
(** The initial stack pointer convention: 16 bytes below the top of
    memory. The single source of truth — the self-allocated path of
    {!create} uses it, and callers supplying their own register file
    (the processor) must use it too, so the two paths cannot drift. *)

val create :
  ?hooks:hooks -> ?clock:int64 ref -> ?regs:int64 array -> mem:Mem.t ->
  pc:int -> unit -> t
(** [regs] must have at least 32 entries and is never mutated here (it
    may be a shared file handed back mid-computation); a fresh 32-entry
    file is allocated by default, with [sp] initialised to
    {!default_sp}. *)

type step_info = {
  s_pc : int;  (** pc of the executed instruction *)
  s_insn : Insn.t;
  s_next : int;  (** pc after the instruction *)
  s_taken : bool option;  (** for conditional branches *)
  s_exit : int option;  (** exit code when the program terminated *)
}

val alu_rr : Insn.oprr -> int64 -> int64 -> int64
(** Pure semantics of register-register ALU operations (also reused by the
    VLIW execution units, which must agree with the reference model). *)

val alu_imm : Insn.opri -> int64 -> int64 -> int64

val mulhu : int64 -> int64 -> int64
(** High 64 bits of the unsigned 128-bit product. *)

val eval_cond : Insn.branch_cond -> int64 -> int64 -> bool

val sign_of_width : Insn.width -> int64 -> int64
(** Sign-extend a zero-extended loaded value to its width. *)

val width_bytes : Insn.width -> int

val step : t -> step_info
(** Execute one instruction, advancing pc and the clock. Raises {!Trap} /
    {!Mem.Fault} on errors. A misaligned or out-of-range pc raises a clean
    {!Trap} ("instruction fetch fault") rather than an array bounds or
    memory exception. *)

val run : ?max_insns:int64 -> t -> int
(** Run until the exit ecall; returns the exit code. Raises {!Trap} when
    [max_insns] (default 1e9) is exceeded. *)
