(** Reference interpreter for the guest ISA.

    This is the golden architectural model used for differential testing of
    the DBT pipeline, and also the timing model for not-yet-translated code
    in the co-designed processor (1 cycle per instruction plus memory
    latency reported by the hooks).

    The register file is passed in from outside so that interpreter and
    VLIW core can share architectural state (the VLIW file simply has extra
    hidden registers beyond index 31). *)

type hooks = {
  mem_extra : addr:int -> size:int -> write:bool -> int;
      (** extra cycles charged for a memory access (cache model) *)
  flush_line : int -> unit;  (** data-cache line flush *)
}

val pure_hooks : hooks
(** No cache: zero extra cycles, flush is a no-op. *)

type centry
(** Decode-cache entry: the decoded instruction plus its pre-boxed
    64-bit immediate. Opaque — use {!flush_decode_cache} to invalidate. *)

type t = {
  regs : int64 array;
  mem : Mem.t;
  clock : int64 ref;
  hooks : hooks;
  has_hooks : bool;  (** false iff [hooks] is {!pure_hooks} *)
  mutable pc : int;
  mutable insn_count : int64;
  output : Buffer.t;  (** bytes written by the write ecall *)
  decode_cache : centry array;
      (** per-word decode cache (guest code is never self-modifying) *)
  mutable rdcycle_hook : (int64 -> int64) option;
      (** when set, every [rdcycle] result is filtered through the hook
          (given the natural clock reading). The differential oracle
          records timing on the DBT side and replays it on the reference
          side, making timing a run input instead of compared state.
          [None] (default) reads the clock unfiltered. *)
  mutable x_next : int;
      (** scratch: next pc reported by the execution core *)
  mutable x_taken : int;
      (** scratch: -1 = not a branch, 0 = not taken, 1 = taken *)
  mutable x_exit : int;  (** scratch: -1 = no exit, else exit code *)
  mutable acc_insns : int;
      (** instructions retired by {!run} not yet folded into
          [insn_count]; always 0 outside {!run} *)
  mutable acc_cycles : int;
      (** cycles accumulated by {!run} not yet folded into [clock];
          always 0 outside {!run} *)
}

exception Trap of string
(** Unrecoverable guest error (illegal instruction, bad ecall, ...). *)

val default_sp : Mem.t -> int64
(** The initial stack pointer convention: 16 bytes below the top of
    memory. The single source of truth — the self-allocated path of
    {!create} uses it, and callers supplying their own register file
    (the processor) must use it too, so the two paths cannot drift. *)

val create :
  ?hooks:hooks -> ?clock:int64 ref -> ?regs:int64 array -> mem:Mem.t ->
  pc:int -> unit -> t
(** [regs] must have at least 32 entries and is never mutated here (it
    may be a shared file handed back mid-computation); a fresh 32-entry
    file is allocated by default, with [sp] initialised to
    {!default_sp}. *)

type step_info = {
  s_pc : int;  (** pc of the executed instruction *)
  s_insn : Insn.t;
  s_next : int;  (** pc after the instruction *)
  s_taken : bool option;  (** for conditional branches *)
  s_exit : int option;  (** exit code when the program terminated *)
}

val alu_rr : Insn.oprr -> int64 -> int64 -> int64
(** Pure semantics of register-register ALU operations (also reused by the
    VLIW execution units, which must agree with the reference model). *)

val alu_imm : Insn.opri -> int64 -> int64 -> int64

val mulhu : int64 -> int64 -> int64
(** High 64 bits of the unsigned 128-bit product. *)

val eval_cond : Insn.branch_cond -> int64 -> int64 -> bool

val sign_of_width : Insn.width -> int64 -> int64
(** Sign-extend a zero-extended loaded value to its width. *)

val width_bytes : Insn.width -> int

val flush_decode_cache : t -> unit
(** Invalidate every decode-cache entry (fault injection uses this to
    force a full re-decode). *)

val step : t -> step_info
(** Execute one instruction, advancing pc and the clock. Raises {!Trap} /
    {!Mem.Fault} on errors. A misaligned, out-of-range or negative pc
    (including one computed speculatively by guest code) raises a clean
    {!Trap} ("instruction fetch fault"), and an illegal encoding raises a
    clean {!Trap} ("illegal instruction") — never [Invalid_argument],
    {!Decode.Illegal} or an array-bounds exception. *)

val run : ?max_insns:int64 -> t -> int
(** Run until the exit ecall; returns the exit code. Raises {!Trap} when
    [max_insns] (default 1e9) is exceeded. Equivalent to iterating
    {!step} but allocation-free per instruction: [insn_count] and
    [clock] are batched internally and flushed before any point that can
    observe them (memory-hook calls, [rdcycle], traps, and on return),
    so hook-visible state and the final architectural state are
    bit-identical to stepped execution. *)
