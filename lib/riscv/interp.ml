type hooks = {
  mem_extra : addr:int -> size:int -> write:bool -> int;
  flush_line : int -> unit;
}

let pure_hooks =
  { mem_extra = (fun ~addr:_ ~size:_ ~write:_ -> 0); flush_line = ignore }

(* A decode-cache entry carries the instruction plus its pre-boxed
   64-bit immediate (shifted and sign-extended once, at decode time), so
   the Op_imm/Lui/Auipc hot paths never rebuild an [Int64] from the raw
   immediate field. *)
type centry = { ce_insn : Insn.t; ce_imm : int64 }

(* Physical-equality sentinel for "not decoded yet". Sound because
   {!Decode.decode} always returns a freshly allocated instruction, so no
   real entry can be physically equal to this one; an [Insn.t option]
   cache here would allocate a [Some] per fill and force an extra
   indirection per fetch. *)
let undecoded = { ce_insn = Insn.Fence; ce_imm = 0L }

type t = {
  regs : int64 array;
  mem : Mem.t;
  clock : int64 ref;
  hooks : hooks;
  has_hooks : bool;
      (* false when [hooks == pure_hooks]: lets the hot loop skip the
         hook calls (and the accumulator flushes that keep hook-visible
         state exact) entirely *)
  mutable pc : int;
  mutable insn_count : int64;
  output : Buffer.t;
  decode_cache : centry array;
      (* per-word decode cache; sound because guest code is never
         self-modifying in this system *)
  mutable rdcycle_hook : (int64 -> int64) option;
      (* filters every rdcycle result (differential record/replay) *)
  (* Scratch state for the allocation-free execution core: [exec_insn]
     reports control flow through these fields instead of returning an
     allocated record. -1 means "not set" for [x_taken]/[x_exit]. *)
  mutable x_next : int;
  mutable x_taken : int;
  mutable x_exit : int;
  (* Batched instruction/cycle counters used by {!run}: flushed into
     [insn_count]/[clock] before anything that can observe them (hooks,
     rdcycle, traps, exit). Always 0 outside {!run}. *)
  mutable acc_insns : int;
  mutable acc_cycles : int;
}

exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

let default_sp mem = Int64.of_int (Mem.size mem - 16)

let create ?(hooks = pure_hooks) ?clock ?regs ~mem ~pc () =
  let clock = match clock with Some c -> c | None -> ref 0L in
  let regs =
    match regs with
    | Some r ->
      (* never mutated here: a shared register file may be handed back
         mid-computation (sp in use as a scratch register); callers that
         want the convention use {!default_sp} — the same single source
         of truth as the self-allocated path below *)
      assert (Array.length r >= 32);
      r
    | None ->
      let r = Array.make 32 0L in
      r.(Reg.sp) <- default_sp mem;
      r
  in
  {
    regs;
    mem;
    clock;
    hooks;
    has_hooks = hooks != pure_hooks;
    pc;
    insn_count = 0L;
    output = Buffer.create 64;
    decode_cache = Array.make (Mem.size mem / 4) undecoded;
    rdcycle_hook = None;
    x_next = 0;
    x_taken = -1;
    x_exit = -1;
    acc_insns = 0;
    acc_cycles = 0;
  }

let flush_decode_cache t =
  Array.fill t.decode_cache 0 (Array.length t.decode_cache) undecoded

type step_info = {
  s_pc : int;
  s_insn : Insn.t;
  s_next : int;
  s_taken : bool option;
  s_exit : int option;
}

(* Sign-extend the low 32 bits entirely in the native-int domain: going
   through [Int64.to_int32]/[of_int32] would box an intermediate int32 on
   top of the int64 result. Bit 31 lands on bit 62 (the native sign bit)
   after the shift, so [asr] extends it; the bits shifted out above are
   exactly the ones a W-op discards. *)
let sext32_int v = Int64.of_int ((v lsl 31) asr 31)

let sext32 v = sext32_int (Int64.to_int v)

let get t r = if r = 0 then 0L else t.regs.(r)

let set t r v = if r <> 0 then t.regs.(r) <- v

(* Unsigned 64x64 -> high 64 bits, via 32-bit limbs. *)
let mulhu x y =
  let open Int64 in
  let mask32 = 0xFFFFFFFFL in
  let x0 = logand x mask32 and x1 = shift_right_logical x 32 in
  let y0 = logand y mask32 and y1 = shift_right_logical y 32 in
  let t = mul x0 y0 in
  let k = shift_right_logical t 32 in
  let t = add (mul x1 y0) k in
  let w1 = logand t mask32 and w2 = shift_right_logical t 32 in
  let t = add (mul x0 y1) w1 in
  add (add (mul x1 y1) w2) (shift_right_logical t 32)

let mulh x y =
  let open Int64 in
  let h = mulhu x y in
  let h = if compare x 0L < 0 then sub h y else h in
  if compare y 0L < 0 then sub h x else h

let mulhsu x y =
  let open Int64 in
  let h = mulhu x y in
  if compare x 0L < 0 then sub h y else h

let div_signed a b =
  if Int64.equal b 0L then -1L
  else if Int64.equal a Int64.min_int && Int64.equal b (-1L) then Int64.min_int
  else Int64.div a b

let rem_signed a b =
  if Int64.equal b 0L then a
  else if Int64.equal a Int64.min_int && Int64.equal b (-1L) then 0L
  else Int64.rem a b

let div_unsigned a b =
  if Int64.equal b 0L then -1L else Int64.unsigned_div a b

let rem_unsigned a b = if Int64.equal b 0L then a else Int64.unsigned_rem a b

let alu_rr op a b =
  let open Int64 in
  match op with
  | Insn.ADD -> add a b
  | Insn.SUB -> sub a b
  | Insn.SLL -> shift_left a (to_int b land 63)
  | Insn.SLT -> if compare a b < 0 then 1L else 0L
  | Insn.SLTU -> if unsigned_compare a b < 0 then 1L else 0L
  | Insn.XOR -> logxor a b
  | Insn.SRL -> shift_right_logical a (to_int b land 63)
  | Insn.SRA -> shift_right a (to_int b land 63)
  | Insn.OR -> logor a b
  | Insn.AND -> logand a b
  (* the W-suffixed ALU ops only keep the low 32 bits of their result, so
     the whole computation fits the native-int domain (truncation
     commutes with +/-/*/shift): one box for the result instead of one
     per Int64 intermediate *)
  | Insn.ADDW -> sext32_int (to_int a + to_int b)
  | Insn.SUBW -> sext32_int (to_int a - to_int b)
  | Insn.SLLW -> sext32_int (to_int a lsl (to_int b land 31))
  | Insn.SRLW ->
    sext32_int ((to_int a land 0xFFFFFFFF) lsr (to_int b land 31))
  | Insn.SRAW ->
    sext32_int (((to_int a lsl 31) asr 31) asr (to_int b land 31))
  | Insn.MUL -> mul a b
  | Insn.MULH -> mulh a b
  | Insn.MULHSU -> mulhsu a b
  | Insn.MULHU -> mulhu a b
  | Insn.DIV -> div_signed a b
  | Insn.DIVU -> div_unsigned a b
  | Insn.REM -> rem_signed a b
  | Insn.REMU -> rem_unsigned a b
  | Insn.MULW -> sext32_int (to_int a * to_int b)
  | Insn.DIVW ->
    let a = sext32 a and b = sext32 b in
    let q = if equal b 0L then -1L else if equal a (-2147483648L) && equal b (-1L) then a else div a b in
    sext32 q
  | Insn.DIVUW ->
    let a = logand a 0xFFFFFFFFL and b = logand b 0xFFFFFFFFL in
    sext32 (if equal b 0L then -1L else unsigned_div a b)
  | Insn.REMW ->
    let a = sext32 a and b = sext32 b in
    let r = if equal b 0L then a else if equal a (-2147483648L) && equal b (-1L) then 0L else rem a b in
    sext32 r
  | Insn.REMUW ->
    let a = logand a 0xFFFFFFFFL and b = logand b 0xFFFFFFFFL in
    sext32 (if equal b 0L then a else unsigned_rem a b)

let alu_imm op a imm =
  match op with
  | Insn.ADDI -> alu_rr Insn.ADD a imm
  | Insn.SLTI -> alu_rr Insn.SLT a imm
  | Insn.SLTIU -> alu_rr Insn.SLTU a imm
  | Insn.XORI -> alu_rr Insn.XOR a imm
  | Insn.ORI -> alu_rr Insn.OR a imm
  | Insn.ANDI -> alu_rr Insn.AND a imm
  | Insn.SLLI -> alu_rr Insn.SLL a imm
  | Insn.SRLI -> alu_rr Insn.SRL a imm
  | Insn.SRAI -> alu_rr Insn.SRA a imm
  | Insn.ADDIW -> alu_rr Insn.ADDW a imm
  | Insn.SLLIW -> alu_rr Insn.SLLW a imm
  | Insn.SRLIW -> alu_rr Insn.SRLW a imm
  | Insn.SRAIW -> alu_rr Insn.SRAW a imm

let width_bytes = function Insn.B -> 1 | Insn.H -> 2 | Insn.W -> 4 | Insn.D -> 8

let sign_of_width w v =
  match w with
  | Insn.B -> Int64.shift_right (Int64.shift_left v 56) 56
  | Insn.H -> Int64.shift_right (Int64.shift_left v 48) 48
  | Insn.W -> sext32 v
  | Insn.D -> v

let eval_cond cond a b =
  match cond with
  | Insn.BEQ -> Int64.equal a b
  | Insn.BNE -> not (Int64.equal a b)
  | Insn.BLT -> Int64.compare a b < 0
  | Insn.BGE -> Int64.compare a b >= 0
  | Insn.BLTU -> Int64.unsigned_compare a b < 0
  | Insn.BGEU -> Int64.unsigned_compare a b >= 0

let imm_of_insn insn =
  match insn with
  | Insn.Op_imm (_, _, _, imm) -> Int64.of_int imm
  | Insn.Lui (_, imm) | Insn.Auipc (_, imm) ->
    sext32 (Int64.of_int (imm lsl 12))
  | _ -> 0L

(* Cold path of {!fetch}: decode the word and fill the cache slot. An
   illegal encoding reached by (possibly speculatively computed) control
   flow is a guest error, not an internal one, so it raises the same
   clean {!Trap} as a fetch fault instead of leaking {!Decode.Illegal}. *)
let decode_slot t pc slot =
  match Decode.decode (Mem.load_insn_word t.mem ~addr:pc) with
  | insn ->
    let ce = { ce_insn = insn; ce_imm = imm_of_insn insn } in
    t.decode_cache.(slot) <- ce;
    ce
  | exception Decode.Illegal word ->
    trap "illegal instruction 0x%08x at pc 0x%x" word pc

let fetch t pc =
  (* [pc lsr 2] also maps negative pcs to huge slots, so the single bound
     check rejects both ends of the range *)
  let slot = pc lsr 2 in
  if pc land 3 <> 0 || slot >= Array.length t.decode_cache then
    trap "instruction fetch fault at pc 0x%x (misaligned or out of range)" pc;
  let ce = Array.unsafe_get t.decode_cache slot in
  if ce != undecoded then ce else decode_slot t pc slot

let flush_acc t =
  if t.acc_insns <> 0 then begin
    t.insn_count <- Int64.add t.insn_count (Int64.of_int t.acc_insns);
    t.acc_insns <- 0
  end;
  if t.acc_cycles <> 0 then begin
    t.clock := Int64.add !(t.clock) (Int64.of_int t.acc_cycles);
    t.acc_cycles <- 0
  end

(* Execute one decoded instruction; returns extra memory cycles. Control
   flow is reported through [t.x_next]/[t.x_taken]/[t.x_exit] (pre-reset
   by the caller) so the common case allocates nothing beyond the boxed
   result value. [flush_acc] runs before every point that can observe the
   architectural counters — hook calls (which may stamp observability
   events with the clock), rdcycle — keeping batched {!run} execution
   bit-identical to stepped execution. *)
let exec_insn t pc ce =
  match ce.ce_insn with
  | Insn.Op_imm (op, rd, rs1, _) ->
    set t rd (alu_imm op (get t rs1) ce.ce_imm);
    0
  | Insn.Op (op, rd, rs1, rs2) ->
    set t rd (alu_rr op (get t rs1) (get t rs2));
    0
  | Insn.Lui (rd, _) ->
    set t rd ce.ce_imm;
    0
  | Insn.Auipc (rd, _) ->
    (* exact: both operands are far below the 63-bit native-int range,
       so the int sum equals the Int64 sum *)
    set t rd (Int64.of_int (pc + Int64.to_int ce.ce_imm));
    0
  | Insn.Load (w, unsigned, rd, rs1, off) ->
    let addr = Int64.to_int (get t rs1) + off in
    (match w with
    | Insn.D ->
      let v = Mem.load t.mem ~addr ~size:8 in
      let extra =
        if t.has_hooks then begin
          flush_acc t;
          t.hooks.mem_extra ~addr ~size:8 ~write:false
        end
        else 0
      in
      set t rd v;
      extra
    | Insn.B | Insn.H | Insn.W ->
      (* sub-word loads sign/zero-extend in the native-int domain and box
         exactly once *)
      let size = width_bytes w in
      let raw = Mem.load_int t.mem ~addr ~size in
      let extra =
        if t.has_hooks then begin
          flush_acc t;
          t.hooks.mem_extra ~addr ~size ~write:false
        end
        else 0
      in
      let v =
        if unsigned then raw
        else
          let sh = Sys.int_size - (8 * size) in
          (raw lsl sh) asr sh
      in
      set t rd (Int64.of_int v);
      extra)
  | Insn.Store (w, rs2, rs1, off) ->
    let addr = Int64.to_int (get t rs1) + off in
    let size = width_bytes w in
    Mem.store t.mem ~addr ~size (get t rs2);
    if t.has_hooks then begin
      flush_acc t;
      t.hooks.mem_extra ~addr ~size ~write:true
    end
    else 0
  | Insn.Branch (cond, rs1, rs2, off) ->
    let b = eval_cond cond (get t rs1) (get t rs2) in
    t.x_taken <- (if b then 1 else 0);
    if b then t.x_next <- pc + off;
    0
  | Insn.Jal (rd, off) ->
    set t rd (Int64.of_int (pc + 4));
    t.x_next <- pc + off;
    0
  | Insn.Jalr (rd, rs1, off) ->
    let target = (Int64.to_int (get t rs1) + off) land lnot 1 in
    set t rd (Int64.of_int (pc + 4));
    t.x_next <- target;
    0
  | Insn.Ecall -> (
    match Int64.to_int (get t Reg.a7) with
    | 93 ->
      t.x_exit <- Int64.to_int (get t Reg.a0) land 0xff;
      0
    | 64 ->
      Buffer.add_char t.output
        (Char.chr (Int64.to_int (get t Reg.a0) land 0xff));
      0
    | n -> trap "unknown ecall %d at pc 0x%x" n pc)
  | Insn.Fence -> 0
  | Insn.Rdcycle rd ->
    flush_acc t;
    set t rd
      (match t.rdcycle_hook with
      | Some f -> f !(t.clock)
      | None -> !(t.clock));
    0
  | Insn.Cflush rs1 ->
    if t.has_hooks then begin
      flush_acc t;
      t.hooks.flush_line (Int64.to_int (get t rs1))
    end;
    0

let step t =
  let pc = t.pc in
  let ce = fetch t pc in
  t.x_next <- pc + 4;
  t.x_taken <- -1;
  t.x_exit <- -1;
  let extra = exec_insn t pc ce in
  t.pc <- t.x_next;
  t.insn_count <- Int64.add t.insn_count 1L;
  t.clock := Int64.add !(t.clock) (Int64.of_int (1 + extra));
  {
    s_pc = pc;
    s_insn = ce.ce_insn;
    s_next = t.x_next;
    s_taken = (if t.x_taken < 0 then None else Some (t.x_taken <> 0));
    s_exit = (if t.x_exit < 0 then None else Some t.x_exit);
  }

let run ?(max_insns = 1_000_000_000L) t =
  (* native-int budget: clamping is exact because a simulation can never
     execute [max_int] instructions, so "budget >= max_int" and "budget =
     max_insns" trap at the same (unreachable) point *)
  let budget =
    if Int64.compare max_insns (Int64.of_int max_int) >= 0 then max_int
    else Int64.to_int max_insns
  in
  let rec go () =
    if Int64.to_int t.insn_count + t.acc_insns > budget then begin
      flush_acc t;
      trap "instruction budget exceeded"
    end;
    let pc = t.pc in
    let ce = fetch t pc in
    t.x_next <- pc + 4;
    t.x_taken <- -1;
    t.x_exit <- -1;
    let extra = exec_insn t pc ce in
    t.pc <- t.x_next;
    t.acc_insns <- t.acc_insns + 1;
    t.acc_cycles <- t.acc_cycles + 1 + extra;
    if t.x_exit >= 0 then begin
      flush_acc t;
      t.x_exit
    end
    else go ()
  in
  (* any escape (Trap, Mem.Fault) must leave [insn_count]/[clock] exactly
     as stepped execution would: counted up to, not including, the
     faulting instruction *)
  try go () with e -> flush_acc t; raise e
