type hooks = {
  mem_extra : addr:int -> size:int -> write:bool -> int;
  flush_line : int -> unit;
}

let pure_hooks =
  { mem_extra = (fun ~addr:_ ~size:_ ~write:_ -> 0); flush_line = ignore }

type t = {
  regs : int64 array;
  mem : Mem.t;
  clock : int64 ref;
  hooks : hooks;
  mutable pc : int;
  mutable insn_count : int64;
  output : Buffer.t;
  decode_cache : Insn.t option array;
      (* per-word decode cache; sound because guest code is never
         self-modifying in this system *)
  mutable rdcycle_hook : (int64 -> int64) option;
      (* filters every rdcycle result (differential record/replay) *)
}

exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

let default_sp mem = Int64.of_int (Mem.size mem - 16)

let create ?(hooks = pure_hooks) ?clock ?regs ~mem ~pc () =
  let clock = match clock with Some c -> c | None -> ref 0L in
  let regs =
    match regs with
    | Some r ->
      (* never mutated here: a shared register file may be handed back
         mid-computation (sp in use as a scratch register); callers that
         want the convention use {!default_sp} — the same single source
         of truth as the self-allocated path below *)
      assert (Array.length r >= 32);
      r
    | None ->
      let r = Array.make 32 0L in
      r.(Reg.sp) <- default_sp mem;
      r
  in
  {
    regs;
    mem;
    clock;
    hooks;
    pc;
    insn_count = 0L;
    output = Buffer.create 64;
    decode_cache = Array.make (Mem.size mem / 4) None;
    rdcycle_hook = None;
  }

type step_info = {
  s_pc : int;
  s_insn : Insn.t;
  s_next : int;
  s_taken : bool option;
  s_exit : int option;
}

let sext32 v = Int64.of_int32 (Int64.to_int32 v)

let get t r = if r = 0 then 0L else t.regs.(r)

let set t r v = if r <> 0 then t.regs.(r) <- v

(* Unsigned 64x64 -> high 64 bits, via 32-bit limbs. *)
let mulhu x y =
  let open Int64 in
  let mask32 = 0xFFFFFFFFL in
  let x0 = logand x mask32 and x1 = shift_right_logical x 32 in
  let y0 = logand y mask32 and y1 = shift_right_logical y 32 in
  let t = mul x0 y0 in
  let k = shift_right_logical t 32 in
  let t = add (mul x1 y0) k in
  let w1 = logand t mask32 and w2 = shift_right_logical t 32 in
  let t = add (mul x0 y1) w1 in
  add (add (mul x1 y1) w2) (shift_right_logical t 32)

let mulh x y =
  let open Int64 in
  let h = mulhu x y in
  let h = if compare x 0L < 0 then sub h y else h in
  if compare y 0L < 0 then sub h x else h

let mulhsu x y =
  let open Int64 in
  let h = mulhu x y in
  if compare x 0L < 0 then sub h y else h

let div_signed a b =
  if Int64.equal b 0L then -1L
  else if Int64.equal a Int64.min_int && Int64.equal b (-1L) then Int64.min_int
  else Int64.div a b

let rem_signed a b =
  if Int64.equal b 0L then a
  else if Int64.equal a Int64.min_int && Int64.equal b (-1L) then 0L
  else Int64.rem a b

let div_unsigned a b =
  if Int64.equal b 0L then -1L else Int64.unsigned_div a b

let rem_unsigned a b = if Int64.equal b 0L then a else Int64.unsigned_rem a b

let alu_rr op a b =
  let open Int64 in
  match op with
  | Insn.ADD -> add a b
  | Insn.SUB -> sub a b
  | Insn.SLL -> shift_left a (to_int b land 63)
  | Insn.SLT -> if compare a b < 0 then 1L else 0L
  | Insn.SLTU -> if unsigned_compare a b < 0 then 1L else 0L
  | Insn.XOR -> logxor a b
  | Insn.SRL -> shift_right_logical a (to_int b land 63)
  | Insn.SRA -> shift_right a (to_int b land 63)
  | Insn.OR -> logor a b
  | Insn.AND -> logand a b
  | Insn.ADDW -> sext32 (add a b)
  | Insn.SUBW -> sext32 (sub a b)
  | Insn.SLLW -> sext32 (shift_left a (to_int b land 31))
  | Insn.SRLW ->
    sext32 (shift_right_logical (logand a 0xFFFFFFFFL) (to_int b land 31))
  | Insn.SRAW -> sext32 (shift_right (sext32 a) (to_int b land 31))
  | Insn.MUL -> mul a b
  | Insn.MULH -> mulh a b
  | Insn.MULHSU -> mulhsu a b
  | Insn.MULHU -> mulhu a b
  | Insn.DIV -> div_signed a b
  | Insn.DIVU -> div_unsigned a b
  | Insn.REM -> rem_signed a b
  | Insn.REMU -> rem_unsigned a b
  | Insn.MULW -> sext32 (mul a b)
  | Insn.DIVW ->
    let a = sext32 a and b = sext32 b in
    let q = if equal b 0L then -1L else if equal a (-2147483648L) && equal b (-1L) then a else div a b in
    sext32 q
  | Insn.DIVUW ->
    let a = logand a 0xFFFFFFFFL and b = logand b 0xFFFFFFFFL in
    sext32 (if equal b 0L then -1L else unsigned_div a b)
  | Insn.REMW ->
    let a = sext32 a and b = sext32 b in
    let r = if equal b 0L then a else if equal a (-2147483648L) && equal b (-1L) then 0L else rem a b in
    sext32 r
  | Insn.REMUW ->
    let a = logand a 0xFFFFFFFFL and b = logand b 0xFFFFFFFFL in
    sext32 (if equal b 0L then a else unsigned_rem a b)

let alu_imm op a imm =
  match op with
  | Insn.ADDI -> alu_rr Insn.ADD a imm
  | Insn.SLTI -> alu_rr Insn.SLT a imm
  | Insn.SLTIU -> alu_rr Insn.SLTU a imm
  | Insn.XORI -> alu_rr Insn.XOR a imm
  | Insn.ORI -> alu_rr Insn.OR a imm
  | Insn.ANDI -> alu_rr Insn.AND a imm
  | Insn.SLLI -> alu_rr Insn.SLL a imm
  | Insn.SRLI -> alu_rr Insn.SRL a imm
  | Insn.SRAI -> alu_rr Insn.SRA a imm
  | Insn.ADDIW -> alu_rr Insn.ADDW a imm
  | Insn.SLLIW -> alu_rr Insn.SLLW a imm
  | Insn.SRLIW -> alu_rr Insn.SRLW a imm
  | Insn.SRAIW -> alu_rr Insn.SRAW a imm

let width_bytes = function Insn.B -> 1 | Insn.H -> 2 | Insn.W -> 4 | Insn.D -> 8

let sign_of_width w v =
  match w with
  | Insn.B -> Int64.shift_right (Int64.shift_left v 56) 56
  | Insn.H -> Int64.shift_right (Int64.shift_left v 48) 48
  | Insn.W -> sext32 v
  | Insn.D -> v

let eval_cond cond a b =
  match cond with
  | Insn.BEQ -> Int64.equal a b
  | Insn.BNE -> not (Int64.equal a b)
  | Insn.BLT -> Int64.compare a b < 0
  | Insn.BGE -> Int64.compare a b >= 0
  | Insn.BLTU -> Int64.unsigned_compare a b < 0
  | Insn.BGEU -> Int64.unsigned_compare a b >= 0

let fetch t pc =
  (* [pc lsr 2] also maps negative pcs to huge slots, so the single bound
     check rejects both ends of the range *)
  let slot = pc lsr 2 in
  if pc land 3 <> 0 || slot >= Array.length t.decode_cache then
    trap "instruction fetch fault at pc 0x%x (misaligned or out of range)" pc;
  match t.decode_cache.(slot) with
  | Some insn -> insn
  | None ->
    let insn = Decode.decode (Mem.load_insn_word t.mem ~addr:pc) in
    t.decode_cache.(slot) <- Some insn;
    insn

let step t =
  let pc = t.pc in
  let insn = fetch t pc in
  let next = ref (pc + 4) in
  let taken = ref None in
  let exit_code = ref None in
  let extra = ref 0 in
  (match insn with
  | Insn.Op_imm (op, rd, rs1, imm) ->
    set t rd (alu_imm op (get t rs1) (Int64.of_int imm))
  | Insn.Op (op, rd, rs1, rs2) ->
    set t rd (alu_rr op (get t rs1) (get t rs2))
  | Insn.Lui (rd, imm) -> set t rd (sext32 (Int64.of_int (imm lsl 12)))
  | Insn.Auipc (rd, imm) ->
    set t rd (Int64.add (Int64.of_int pc) (sext32 (Int64.of_int (imm lsl 12))))
  | Insn.Load (w, unsigned, rd, rs1, off) ->
    let addr = Int64.to_int (Int64.add (get t rs1) (Int64.of_int off)) in
    let size = width_bytes w in
    let v = Mem.load t.mem ~addr ~size in
    extra := t.hooks.mem_extra ~addr ~size ~write:false;
    set t rd (if unsigned then v else sign_of_width w v)
  | Insn.Store (w, rs2, rs1, off) ->
    let addr = Int64.to_int (Int64.add (get t rs1) (Int64.of_int off)) in
    let size = width_bytes w in
    Mem.store t.mem ~addr ~size (get t rs2);
    extra := t.hooks.mem_extra ~addr ~size ~write:true
  | Insn.Branch (cond, rs1, rs2, off) ->
    let b = eval_cond cond (get t rs1) (get t rs2) in
    taken := Some b;
    if b then next := pc + off
  | Insn.Jal (rd, off) ->
    set t rd (Int64.of_int (pc + 4));
    next := pc + off
  | Insn.Jalr (rd, rs1, off) ->
    let target =
      Int64.to_int (Int64.add (get t rs1) (Int64.of_int off)) land lnot 1
    in
    set t rd (Int64.of_int (pc + 4));
    next := target
  | Insn.Ecall -> (
    match Int64.to_int (get t Reg.a7) with
    | 93 -> exit_code := Some (Int64.to_int (get t Reg.a0) land 0xff)
    | 64 ->
      Buffer.add_char t.output
        (Char.chr (Int64.to_int (get t Reg.a0) land 0xff))
    | n -> trap "unknown ecall %d at pc 0x%x" n pc)
  | Insn.Fence -> ()
  | Insn.Rdcycle rd ->
    set t rd
      (match t.rdcycle_hook with
      | Some f -> f !(t.clock)
      | None -> !(t.clock))
  | Insn.Cflush rs1 -> t.hooks.flush_line (Int64.to_int (get t rs1)));
  t.pc <- !next;
  t.insn_count <- Int64.add t.insn_count 1L;
  t.clock := Int64.add !(t.clock) (Int64.of_int (1 + !extra));
  { s_pc = pc; s_insn = insn; s_next = !next; s_taken = !taken;
    s_exit = !exit_code }

let run ?(max_insns = 1_000_000_000L) t =
  let rec go () =
    if Int64.compare t.insn_count max_insns > 0 then
      trap "instruction budget exceeded"
    else
      match (step t).s_exit with Some code -> code | None -> go ()
  in
  go ()
