(** Flat byte-addressable little-endian guest memory. *)

type t

exception Fault of int
(** Raised on an out-of-range access; carries the faulting address. *)

val create : size:int -> t
(** Zero-initialised memory of [size] bytes. *)

val size : t -> int

val load : t -> addr:int -> size:int -> int64
(** Little-endian load of 1, 2, 4 or 8 bytes, zero-extended. *)

val load_int : t -> addr:int -> size:int -> int
(** Allocation-free little-endian load of 1, 2 or 4 bytes, zero-extended
    into a native int (the hot sub-word load path of both execution
    tiers). *)

val store : t -> addr:int -> size:int -> int64 -> unit
(** Little-endian store of the low [size] bytes of the value. *)

val load_insn_word : t -> addr:int -> int
(** 32-bit instruction fetch. *)

val blit_bytes : t -> addr:int -> bytes -> unit
(** Copy raw bytes into memory at [addr]. *)

val read_bytes : t -> addr:int -> len:int -> bytes

val copy : t -> t
(** Deep copy (used by differential tests). *)
