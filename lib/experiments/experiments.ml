let default_secret = "GhostBusters"

type mode_cycles = {
  w_name : string;
  unsafe : int64;
  fine_grained : int64;
  fence : int64;
  min_cut : int64;
  no_spec : int64;
  patterns : int;
  unsafe_audit : Gb_cache.Audit.summary option;
  fine_audit : Gb_cache.Audit.summary option;
  causes : (string * (string * float) list) list;
}

let cycles_of mc = function
  | Gb_core.Mitigation.Unsafe -> mc.unsafe
  | Gb_core.Mitigation.Fine_grained -> mc.fine_grained
  | Gb_core.Mitigation.Fence_on_detect -> mc.fence
  | Gb_core.Mitigation.Min_cut -> mc.min_cut
  | Gb_core.Mitigation.No_speculation -> mc.no_spec

let slowdown mc ~mode = Int64.to_float (cycles_of mc mode) /. Int64.to_float mc.unsafe

let run_workload ?(audit = false) ?obs mode program =
  Gb_system.Processor.run_program ~audit ?obs
    ~config:(Gb_system.Processor.config_for mode)
    (Gb_kernelc.Compile.assemble program)

let measure_program ?(audit = false) ?(attrib = false) ~name program =
  (* [attrib] threads a fresh cycle-attribution ledger through each
     mode's run (a fresh one per run: the conservation invariant holds
     against that run's clock) and captures the per-cause shares *)
  let run mode =
    if attrib then begin
      let obs = Gb_obs.Sink.create ~attrib:true () in
      let r = run_workload ~audit ~obs mode program in
      let shares =
        match Gb_obs.Sink.attrib obs with
        | Some a -> Gb_obs.Attrib.cause_shares a
        | None -> []
      in
      (r, (Gb_core.Mitigation.mode_name mode, shares))
    end
    else (run_workload ~audit mode program, (Gb_core.Mitigation.mode_name mode, []))
  in
  let unsafe_r, unsafe_c = run Gb_core.Mitigation.Unsafe in
  let fine_r, fine_c = run Gb_core.Mitigation.Fine_grained in
  let fence_r, fence_c = run Gb_core.Mitigation.Fence_on_detect in
  let mincut_r, mincut_c = run Gb_core.Mitigation.Min_cut in
  let nospec_r, nospec_c = run Gb_core.Mitigation.No_speculation in
  let check (r : Gb_system.Processor.result) =
    if r.Gb_system.Processor.exit_code <> unsafe_r.Gb_system.Processor.exit_code
    then
      failwith
        (Printf.sprintf "workload %s: architectural mismatch between modes"
           name)
  in
  check fine_r;
  check fence_r;
  check mincut_r;
  check nospec_r;
  {
    w_name = name;
    unsafe = unsafe_r.Gb_system.Processor.cycles;
    fine_grained = fine_r.Gb_system.Processor.cycles;
    fence = fence_r.Gb_system.Processor.cycles;
    min_cut = mincut_r.Gb_system.Processor.cycles;
    no_spec = nospec_r.Gb_system.Processor.cycles;
    patterns = fine_r.Gb_system.Processor.patterns_found;
    unsafe_audit = unsafe_r.Gb_system.Processor.audit;
    fine_audit = fine_r.Gb_system.Processor.audit;
    causes =
      (if attrib then [ unsafe_c; fine_c; fence_c; mincut_c; nospec_c ]
       else []);
  }

type poc_row = {
  variant : string;
  mode : Gb_core.Mitigation.mode;
  outcome : Gb_attack.Runner.outcome;
}

let attack_programs ~secret =
  [
    ("spectre-v1", Gb_attack.Spectre_v1.program ~secret ());
    ("spectre-v4", Gb_attack.Spectre_v4.program ~secret ());
  ]

(* [config_for mode] with the code cache capped at [cc_capacity] bundles
   (and everything else untouched) — the capacity-constrained
   configurations of E1 and E8 *)
let config_capped mode cc_capacity =
  let config = Gb_system.Processor.config_for mode in
  let engine = config.Gb_system.Processor.engine in
  {
    config with
    Gb_system.Processor.engine =
      {
        engine with
        Gb_dbt.Engine.cache =
          { engine.Gb_dbt.Engine.cache with
            Gb_dbt.Code_cache.capacity = cc_capacity };
      };
  }

let e1_poc_matrix ?(secret = default_secret) ?(audit = false) ?(seed = 1L)
    ?cc_capacity ?(modes = Gb_core.Mitigation.all_modes) () =
  List.concat_map
    (fun (variant, program) ->
      List.map
        (fun mode ->
          let config = Option.map (config_capped mode) cc_capacity in
          {
            variant;
            mode;
            outcome =
              Gb_attack.Runner.run ?config ~audit ~seed ~mode ~secret program;
          })
        modes)
    (attack_programs ~secret)

let e2_figure4 ?(audit = false) ?(attrib = true) ?(workers = 0) () =
  (* each item is self-contained ({!measure_program} builds its own
     processors and sinks), so the list may be sharded across domains;
     {!Gb_dbt.Workers.map} preserves order, so the rows — and every
     cycle count in them — are identical for every [workers] value *)
  let items =
    List.map
      (fun (w : Gb_workloads.Polybench.t) ->
        (w.Gb_workloads.Polybench.name, w.Gb_workloads.Polybench.program))
      Gb_workloads.Polybench.all
    @ attack_programs ~secret:default_secret
  in
  let measure (name, program) = measure_program ~audit ~attrib ~name program in
  if workers > 0 && Gb_dbt.Workers.available () then
    Gb_dbt.Workers.map (Gb_dbt.Workers.ensure workers) measure items
  else List.map measure items

let e3_fence_rows rows =
  List.map
    (fun mc ->
      (mc.w_name, slowdown mc ~mode:Gb_core.Mitigation.Fence_on_detect, mc.patterns))
    rows

let e4_matmul_ablation ?(audit = false) () =
  let w = Gb_workloads.Polybench.matmul_ptr in
  measure_program ~audit ~name:w.Gb_workloads.Polybench.name
    w.Gb_workloads.Polybench.program

let e5_hot_candidates = [ 7; 66; 71; 200 ]

let e5_hit_miss () = Gb_attack.Timing.measure ~hot:e5_hot_candidates ()

let e7_translation_channel ?(secret = "K") () =
  List.map
    (fun mode -> (mode, Gb_attack.Translation_channel.run ~mode ~secret ()))
    Gb_core.Mitigation.all_modes

type chain_row = {
  c_name : string;
  c_guest_insns : int64;
  c_exits_nochain : int64;
  c_exits_chain : int64;
  c_chain_follows : int64;
  c_tiny_exits : int64;  (** dispatch exits with chaining + tiny cache *)
  c_tiny_evictions : int;
  c_cycles_equal : bool;
      (** chaining must not change the simulated cycle count *)
  c_arch_equal : bool;
      (** tiny-cache run produced the same architectural result *)
}

let per_1k exits insns =
  if Int64.equal insns 0L then 0.
  else 1000. *. Int64.to_float exits /. Int64.to_float insns

let chain_reduction r =
  let after = per_1k r.c_exits_chain r.c_guest_insns in
  if after = 0. then infinity
  else per_1k r.c_exits_nochain r.c_guest_insns /. after

let e8_tiny_capacity = 192

let e8_chaining ?(mode = Gb_core.Mitigation.Unsafe) () =
  let chain_cfg ~chain ~capacity =
    let config = config_capped mode capacity in
    let engine = config.Gb_system.Processor.engine in
    {
      config with
      Gb_system.Processor.engine =
        {
          engine with
          Gb_dbt.Engine.cache =
            { engine.Gb_dbt.Engine.cache with Gb_dbt.Code_cache.chain };
        };
    }
  in
  let default_cap = Gb_dbt.Code_cache.default_config.Gb_dbt.Code_cache.capacity in
  List.map
    (fun (w : Gb_workloads.Polybench.t) ->
      let program =
        Gb_kernelc.Compile.assemble w.Gb_workloads.Polybench.program
      in
      let run config = Gb_system.Processor.run_program ~config program in
      let off = run (chain_cfg ~chain:false ~capacity:default_cap) in
      let on = run (chain_cfg ~chain:true ~capacity:default_cap) in
      let tiny = run (chain_cfg ~chain:true ~capacity:e8_tiny_capacity) in
      {
        c_name = w.Gb_workloads.Polybench.name;
        c_guest_insns = on.Gb_system.Processor.guest_insns;
        c_exits_nochain = off.Gb_system.Processor.dispatch_exits;
        c_exits_chain = on.Gb_system.Processor.dispatch_exits;
        c_chain_follows = on.Gb_system.Processor.chain_follows;
        c_tiny_exits = tiny.Gb_system.Processor.dispatch_exits;
        c_tiny_evictions = tiny.Gb_system.Processor.cc_evictions;
        c_cycles_equal =
          Int64.equal off.Gb_system.Processor.cycles
            on.Gb_system.Processor.cycles;
        c_arch_equal =
          off.Gb_system.Processor.exit_code
            = tiny.Gb_system.Processor.exit_code
          && off.Gb_system.Processor.output = tiny.Gb_system.Processor.output;
      })
    Gb_workloads.Polybench.all

let chain_row_json r =
  Gb_util.Json.Obj
    [
      ("name", Gb_util.Json.String r.c_name);
      ("guest_insns", Gb_util.Json.Int (Int64.to_int r.c_guest_insns));
      ("dispatch_exits_no_chain", Gb_util.Json.Int (Int64.to_int r.c_exits_nochain));
      ("dispatch_exits_chain", Gb_util.Json.Int (Int64.to_int r.c_exits_chain));
      ("chain_follows", Gb_util.Json.Int (Int64.to_int r.c_chain_follows));
      ("exits_per_1k_no_chain", Gb_util.Json.Float (per_1k r.c_exits_nochain r.c_guest_insns));
      ("exits_per_1k_chain", Gb_util.Json.Float (per_1k r.c_exits_chain r.c_guest_insns));
      ("tiny_cache_evictions", Gb_util.Json.Int r.c_tiny_evictions);
      ("cycles_equal", Gb_util.Json.Bool r.c_cycles_equal);
      ("tiny_cache_arch_equal", Gb_util.Json.Bool r.c_arch_equal);
    ]

let chaining_json rows =
  Gb_util.Json.Obj
    [
      ("experiment", Gb_util.Json.String "trace_chaining");
      ("tiny_capacity_bundles", Gb_util.Json.Int e8_tiny_capacity);
      ("rows", Gb_util.Json.List (List.map chain_row_json rows));
    ]

(* --- E9: static verification cross-check -------------------------------- *)

type verify_row = {
  v_name : string;
  v_mode : Gb_core.Mitigation.mode;
  v_checked : int;
  v_violations : int;
  v_rejections : int;
  v_violation_pcs : int list;
  v_dependent_pcs : int list;
  v_uncovered : int list;
}

type scan_row = {
  s_name : string;
  s_report : Gb_verify.Scanner.report;
  s_flagged : int list;
  s_score : Gb_verify.Scanner.score;
}

type e9 = {
  e9_attacks : verify_row list;
  e9_workloads : verify_row list;
  e9_scans : scan_row list;
}

(* [config_for mode] with the install-time verifier attached report-only:
   enforcement would refence the very translations whose transient
   behaviour the audit must observe, so the cross-check runs the verifier
   as a pure observer. *)
let config_verified mode =
  let config = Gb_system.Processor.config_for mode in
  {
    config with
    Gb_system.Processor.engine =
      {
        config.Gb_system.Processor.engine with
        Gb_dbt.Engine.verify = Gb_dbt.Engine.Verify_report;
      };
  }

(* One verified run; returns the row plus the audit (for the Unsafe run's
   flagged-pc ground truth). [v_uncovered] is the heart of the
   cross-check: audited dependent transient pcs the verifier did NOT
   flag — a static false negative, expected empty always. *)
let verified_run ?(audit = false) ~name mode asm =
  let proc =
    Gb_system.Processor.create ~config:(config_verified mode) ~audit asm
  in
  let _ = Gb_system.Processor.run proc in
  let engine = Gb_system.Processor.engine proc in
  let es = Gb_dbt.Engine.stats engine in
  let violation_pcs =
    List.sort_uniq compare
      (List.map
         (fun (_, v) -> v.Gb_verify.Verifier.v_pc)
         (Gb_dbt.Engine.verify_log engine))
  in
  let a = Gb_system.Processor.audit proc in
  let dependent_pcs =
    match a with Some a -> Gb_cache.Audit.dependent_pcs a | None -> []
  in
  ( {
      v_name = name;
      v_mode = mode;
      v_checked = es.Gb_dbt.Engine.verify_checked;
      v_violations = es.Gb_dbt.Engine.verify_violations;
      v_rejections = es.Gb_dbt.Engine.verify_rejections;
      v_violation_pcs = violation_pcs;
      v_dependent_pcs = dependent_pcs;
      v_uncovered =
        List.filter (fun pc -> not (List.mem pc violation_pcs)) dependent_pcs;
    },
    a )

let e9_workload_modes =
  [
    Gb_core.Mitigation.Fine_grained;
    Gb_core.Mitigation.Fence_on_detect;
    Gb_core.Mitigation.Min_cut;
  ]

let e9_verify ?(secret = default_secret)
    ?(modes = Gb_core.Mitigation.all_modes) () =
  let attacks =
    List.map
      (fun (name, program) ->
        (name, Gb_kernelc.Compile.assemble program))
      (attack_programs ~secret)
  in
  let attack_rows, scans =
    List.fold_left
      (fun (rows, scans) (name, asm) ->
        let flagged = ref [] in
        let rows =
          rows
          @ List.map
              (fun mode ->
                let row, audit = verified_run ~audit:true ~name mode asm in
                (* ground truth for the scanner: what the runtime detector
                   flagged when speculation ran unconstrained *)
                (match (mode, audit) with
                | Gb_core.Mitigation.Unsafe, Some a ->
                  flagged := Gb_cache.Audit.flagged_pc_list a
                | _ -> ());
                row)
              modes
        in
        let report = Gb_verify.Scanner.scan asm in
        let scan =
          {
            s_name = name;
            s_report = report;
            s_flagged = !flagged;
            s_score = Gb_verify.Scanner.score report ~flagged:!flagged;
          }
        in
        (rows, scans @ [ scan ]))
      ([], []) attacks
  in
  let workload_rows =
    List.concat_map
      (fun (w : Gb_workloads.Polybench.t) ->
        let asm =
          Gb_kernelc.Compile.assemble w.Gb_workloads.Polybench.program
        in
        List.map
          (fun mode ->
            fst
              (verified_run ~name:w.Gb_workloads.Polybench.name mode asm))
          (List.filter (fun m -> List.mem m modes) e9_workload_modes))
      Gb_workloads.Polybench.all
  in
  { e9_attacks = attack_rows; e9_workloads = workload_rows; e9_scans = scans }

let verify_row_json r =
  let module J = Gb_util.Json in
  let pcs l = J.List (List.map (fun pc -> J.Int pc) l) in
  J.Obj
    [
      ("name", J.String r.v_name);
      ("mode", J.String (Gb_core.Mitigation.mode_name r.v_mode));
      ("checked", J.Int r.v_checked);
      ("violations", J.Int r.v_violations);
      ("rejections", J.Int r.v_rejections);
      ("violation_pcs", pcs r.v_violation_pcs);
      ("audit_dependent_pcs", pcs r.v_dependent_pcs);
      ("uncovered_dependent_pcs", pcs r.v_uncovered);
    ]

let verify_json e =
  let module J = Gb_util.Json in
  let scan_json s =
    J.Obj
      [
        ("name", J.String s.s_name);
        ("scan", Gb_verify.Scanner.report_to_json s.s_report);
        ("flagged_pcs", J.List (List.map (fun pc -> J.Int pc) s.s_flagged));
        ("score", Gb_verify.Scanner.score_to_json s.s_score);
      ]
  in
  J.Obj
    [
      ("experiment", J.String "static_verification");
      ("attacks", J.List (List.map verify_row_json e.e9_attacks));
      ("workloads", J.List (List.map verify_row_json e.e9_workloads));
      ("scans", J.List (List.map scan_json e.e9_scans));
    ]

let geomean_slowdown rows ~mode =
  Gb_util.Stats.geomean (List.map (fun mc -> slowdown mc ~mode) rows)

let mode_cycles_json mc =
  let base =
    [
      ("name", Gb_util.Json.String mc.w_name);
      ("unsafe_cycles", Gb_util.Json.Int (Int64.to_int mc.unsafe));
      ("fine_grained", Gb_util.Json.Float (slowdown mc ~mode:Gb_core.Mitigation.Fine_grained));
      ("fence_on_detect", Gb_util.Json.Float (slowdown mc ~mode:Gb_core.Mitigation.Fence_on_detect));
      ("min_cut", Gb_util.Json.Float (slowdown mc ~mode:Gb_core.Mitigation.Min_cut));
      ("no_speculation", Gb_util.Json.Float (slowdown mc ~mode:Gb_core.Mitigation.No_speculation));
      ("patterns", Gb_util.Json.Int mc.patterns);
    ]
  in
  let causes =
    match mc.causes with
    | [] -> []
    | per_mode ->
      [
        ( "cause_shares",
          Gb_util.Json.Obj
            (List.map
               (fun (mode, shares) ->
                 ( mode,
                   Gb_util.Json.Obj
                     (List.map
                        (fun (c, s) -> (c, Gb_util.Json.Float s))
                        shares) ))
               per_mode) );
      ]
  in
  Gb_util.Json.Obj (base @ causes)

let figure4_json rows =
  Gb_util.Json.Obj
    [
      ("experiment", Gb_util.Json.String "figure4");
      ("rows", Gb_util.Json.List (List.map mode_cycles_json rows));
      ( "geomean",
        Gb_util.Json.Obj
          [
            ("fine_grained", Gb_util.Json.Float (geomean_slowdown rows ~mode:Gb_core.Mitigation.Fine_grained));
            ("fence_on_detect", Gb_util.Json.Float (geomean_slowdown rows ~mode:Gb_core.Mitigation.Fence_on_detect));
            ("min_cut", Gb_util.Json.Float (geomean_slowdown rows ~mode:Gb_core.Mitigation.Min_cut));
            ("no_speculation", Gb_util.Json.Float (geomean_slowdown rows ~mode:Gb_core.Mitigation.No_speculation));
          ] );
    ]

let opt_audit_json = function
  | None -> Gb_util.Json.Null
  | Some s -> Gb_cache.Audit.summary_to_json s

let leakage_json ~rows poc =
  let workload_row mc =
    Gb_util.Json.Obj
      [
        ("name", Gb_util.Json.String mc.w_name);
        ("unsafe", opt_audit_json mc.unsafe_audit);
        ("fine_grained", opt_audit_json mc.fine_audit);
      ]
  in
  let poc_row_json r =
    Gb_util.Json.Obj
      [
        ("variant", Gb_util.Json.String r.variant);
        ("mode", Gb_util.Json.String (Gb_core.Mitigation.mode_name r.mode));
        ("leaked", Gb_util.Json.Bool (Gb_attack.Runner.succeeded r.outcome));
        ( "audit",
          opt_audit_json r.outcome.Gb_attack.Runner.result.Gb_system.Processor.audit
        );
      ]
  in
  Gb_util.Json.Obj
    [
      ("experiment", Gb_util.Json.String "leakage_audit");
      ("workloads", Gb_util.Json.List (List.map workload_row rows));
      ("attacks", Gb_util.Json.List (List.map poc_row_json poc));
    ]

let poc_json rows =
  Gb_util.Json.Obj
    [
      ("experiment", Gb_util.Json.String "poc_matrix");
      ( "rows",
        Gb_util.Json.List
          (List.map
             (fun r ->
               Gb_util.Json.Obj
                 [
                   ("variant", Gb_util.Json.String r.variant);
                   ("mode", Gb_util.Json.String (Gb_core.Mitigation.mode_name r.mode));
                   ("recovered_bytes", Gb_util.Json.Int r.outcome.Gb_attack.Runner.correct_bytes);
                   ("total_bytes", Gb_util.Json.Int r.outcome.Gb_attack.Runner.total_bytes);
                   ("leaked", Gb_util.Json.Bool (Gb_attack.Runner.succeeded r.outcome));
                 ])
             rows) );
    ]
