let default_secret = "GhostBusters"

type mode_cycles = {
  w_name : string;
  unsafe : int64;
  fine_grained : int64;
  fence : int64;
  no_spec : int64;
  patterns : int;
  unsafe_audit : Gb_cache.Audit.summary option;
  fine_audit : Gb_cache.Audit.summary option;
}

let cycles_of mc = function
  | Gb_core.Mitigation.Unsafe -> mc.unsafe
  | Gb_core.Mitigation.Fine_grained -> mc.fine_grained
  | Gb_core.Mitigation.Fence_on_detect -> mc.fence
  | Gb_core.Mitigation.No_speculation -> mc.no_spec

let slowdown mc ~mode = Int64.to_float (cycles_of mc mode) /. Int64.to_float mc.unsafe

let run_workload ?(audit = false) mode program =
  Gb_system.Processor.run_program ~audit
    ~config:(Gb_system.Processor.config_for mode)
    (Gb_kernelc.Compile.assemble program)

let measure_program ?(audit = false) ~name program =
  let run mode = run_workload ~audit mode program in
  let unsafe_r = run Gb_core.Mitigation.Unsafe in
  let fine_r = run Gb_core.Mitigation.Fine_grained in
  let fence_r = run Gb_core.Mitigation.Fence_on_detect in
  let nospec_r = run Gb_core.Mitigation.No_speculation in
  let check (r : Gb_system.Processor.result) =
    if r.Gb_system.Processor.exit_code <> unsafe_r.Gb_system.Processor.exit_code
    then
      failwith
        (Printf.sprintf "workload %s: architectural mismatch between modes"
           name)
  in
  check fine_r;
  check fence_r;
  check nospec_r;
  {
    w_name = name;
    unsafe = unsafe_r.Gb_system.Processor.cycles;
    fine_grained = fine_r.Gb_system.Processor.cycles;
    fence = fence_r.Gb_system.Processor.cycles;
    no_spec = nospec_r.Gb_system.Processor.cycles;
    patterns = fine_r.Gb_system.Processor.patterns_found;
    unsafe_audit = unsafe_r.Gb_system.Processor.audit;
    fine_audit = fine_r.Gb_system.Processor.audit;
  }

type poc_row = {
  variant : string;
  mode : Gb_core.Mitigation.mode;
  outcome : Gb_attack.Runner.outcome;
}

let attack_programs ~secret =
  [
    ("spectre-v1", Gb_attack.Spectre_v1.program ~secret ());
    ("spectre-v4", Gb_attack.Spectre_v4.program ~secret ());
  ]

let e1_poc_matrix ?(secret = default_secret) ?(audit = false) ?(seed = 1L) () =
  List.concat_map
    (fun (variant, program) ->
      List.map
        (fun mode ->
          {
            variant;
            mode;
            outcome = Gb_attack.Runner.run ~audit ~seed ~mode ~secret program;
          })
        Gb_core.Mitigation.all_modes)
    (attack_programs ~secret)

let e2_figure4 ?(audit = false) () =
  let kernels =
    List.map
      (fun (w : Gb_workloads.Polybench.t) ->
        measure_program ~audit ~name:w.Gb_workloads.Polybench.name
          w.Gb_workloads.Polybench.program)
      Gb_workloads.Polybench.all
  in
  let attacks =
    List.map
      (fun (name, program) -> measure_program ~audit ~name program)
      (attack_programs ~secret:default_secret)
  in
  kernels @ attacks

let e3_fence_rows rows =
  List.map
    (fun mc ->
      (mc.w_name, slowdown mc ~mode:Gb_core.Mitigation.Fence_on_detect, mc.patterns))
    rows

let e4_matmul_ablation ?(audit = false) () =
  let w = Gb_workloads.Polybench.matmul_ptr in
  measure_program ~audit ~name:w.Gb_workloads.Polybench.name
    w.Gb_workloads.Polybench.program

let e5_hot_candidates = [ 7; 66; 71; 200 ]

let e5_hit_miss () = Gb_attack.Timing.measure ~hot:e5_hot_candidates ()

let e7_translation_channel ?(secret = "K") () =
  List.map
    (fun mode -> (mode, Gb_attack.Translation_channel.run ~mode ~secret ()))
    Gb_core.Mitigation.all_modes

let geomean_slowdown rows ~mode =
  Gb_util.Stats.geomean (List.map (fun mc -> slowdown mc ~mode) rows)

let mode_cycles_json mc =
  Gb_util.Json.Obj
    [
      ("name", Gb_util.Json.String mc.w_name);
      ("unsafe_cycles", Gb_util.Json.Int (Int64.to_int mc.unsafe));
      ("fine_grained", Gb_util.Json.Float (slowdown mc ~mode:Gb_core.Mitigation.Fine_grained));
      ("fence_on_detect", Gb_util.Json.Float (slowdown mc ~mode:Gb_core.Mitigation.Fence_on_detect));
      ("no_speculation", Gb_util.Json.Float (slowdown mc ~mode:Gb_core.Mitigation.No_speculation));
      ("patterns", Gb_util.Json.Int mc.patterns);
    ]

let figure4_json rows =
  Gb_util.Json.Obj
    [
      ("experiment", Gb_util.Json.String "figure4");
      ("rows", Gb_util.Json.List (List.map mode_cycles_json rows));
      ( "geomean",
        Gb_util.Json.Obj
          [
            ("fine_grained", Gb_util.Json.Float (geomean_slowdown rows ~mode:Gb_core.Mitigation.Fine_grained));
            ("no_speculation", Gb_util.Json.Float (geomean_slowdown rows ~mode:Gb_core.Mitigation.No_speculation));
          ] );
    ]

let opt_audit_json = function
  | None -> Gb_util.Json.Null
  | Some s -> Gb_cache.Audit.summary_to_json s

let leakage_json ~rows poc =
  let workload_row mc =
    Gb_util.Json.Obj
      [
        ("name", Gb_util.Json.String mc.w_name);
        ("unsafe", opt_audit_json mc.unsafe_audit);
        ("fine_grained", opt_audit_json mc.fine_audit);
      ]
  in
  let poc_row_json r =
    Gb_util.Json.Obj
      [
        ("variant", Gb_util.Json.String r.variant);
        ("mode", Gb_util.Json.String (Gb_core.Mitigation.mode_name r.mode));
        ("leaked", Gb_util.Json.Bool (Gb_attack.Runner.succeeded r.outcome));
        ( "audit",
          opt_audit_json r.outcome.Gb_attack.Runner.result.Gb_system.Processor.audit
        );
      ]
  in
  Gb_util.Json.Obj
    [
      ("experiment", Gb_util.Json.String "leakage_audit");
      ("workloads", Gb_util.Json.List (List.map workload_row rows));
      ("attacks", Gb_util.Json.List (List.map poc_row_json poc));
    ]

let poc_json rows =
  Gb_util.Json.Obj
    [
      ("experiment", Gb_util.Json.String "poc_matrix");
      ( "rows",
        Gb_util.Json.List
          (List.map
             (fun r ->
               Gb_util.Json.Obj
                 [
                   ("variant", Gb_util.Json.String r.variant);
                   ("mode", Gb_util.Json.String (Gb_core.Mitigation.mode_name r.mode));
                   ("recovered_bytes", Gb_util.Json.Int r.outcome.Gb_attack.Runner.correct_bytes);
                   ("total_bytes", Gb_util.Json.Int r.outcome.Gb_attack.Runner.total_bytes);
                   ("leaked", Gb_util.Json.Bool (Gb_attack.Runner.succeeded r.outcome));
                 ])
             rows) );
    ]
