(** The paper's evaluation (Section V), experiment by experiment. Each
    function returns structured data; the benchmark harness and the CLI
    render it. The experiment ids follow DESIGN.md. *)

val default_secret : string

(** Cycle counts of one workload under every mitigation mode. *)
type mode_cycles = {
  w_name : string;
  unsafe : int64;
  fine_grained : int64;
  fence : int64;
  min_cut : int64;
  no_spec : int64;
  patterns : int;  (** Spectre patterns detected under fine-grained *)
  unsafe_audit : Gb_cache.Audit.summary option;
      (** leakage-audit classification of the unsafe run (audited runs only) *)
  fine_audit : Gb_cache.Audit.summary option;
      (** same, for the fine-grained run *)
  causes : (string * (string * float) list) list;
      (** per mode name, the {!Gb_obs.Attrib.cause_shares} of that mode's
          run: every cause, as a share of total cycles. [[]] when the
          measurement ran without attribution. *)
}

val slowdown : mode_cycles -> mode:Gb_core.Mitigation.mode -> float
(** cycles(mode) / cycles(unsafe). *)

val run_workload :
  ?audit:bool ->
  ?obs:Gb_obs.Sink.t ->
  Gb_core.Mitigation.mode ->
  Gb_kernelc.Ast.program ->
  Gb_system.Processor.result

val measure_program :
  ?audit:bool ->
  ?attrib:bool ->
  name:string ->
  Gb_kernelc.Ast.program ->
  mode_cycles
(** [audit] (default [false]) attaches the leakage audit to every mode's
    run and captures the Unsafe and Fine_grained summaries. The audit is a
    pure observer, so the cycle counts are identical either way.
    [attrib] (default [false]) attaches a fresh cycle-attribution ledger
    to each mode's run and fills {!mode_cycles.causes}; the conservation
    invariant is asserted inside each run. *)

(** E1 — proof of concept: per variant and mode, how much of the secret
    leaked. *)
type poc_row = {
  variant : string;
  mode : Gb_core.Mitigation.mode;
  outcome : Gb_attack.Runner.outcome;
}

val e1_poc_matrix :
  ?secret:string ->
  ?audit:bool ->
  ?seed:int64 ->
  ?cc_capacity:int ->
  ?modes:Gb_core.Mitigation.mode list ->
  unit ->
  poc_row list
(** [audit] attaches the leakage audit to every run; [seed] (default [1L])
    pins the observability sink's reservoir RNG so audited runs are
    reproducible bit-for-bit. [cc_capacity], when given, caps the code
    cache at that many bundles — the capacity-constrained re-check that
    the leakage verdicts survive eviction churn. [modes] (default
    {!Gb_core.Mitigation.all_modes}) restricts the matrix to the listed
    modes (the harnesses' [--modes] filter). *)

val e2_figure4 :
  ?audit:bool -> ?attrib:bool -> ?workers:int -> unit -> mode_cycles list
(** One row per Figure-4 application: the 12 Polybench kernels plus the
    two Spectre proof-of-concept programs. [attrib] defaults to [true]:
    every E2 run carries the cycle-attribution ledger, so the per-cause
    shares land in the perf manifest and the conservation invariant is
    exercised on every workload x mode. [workers] (default 0) shards the
    applications across a {!Gb_dbt.Workers} pool; rows and every cycle
    count in them are identical for every value (the runs are
    self-contained and the shard map preserves order). *)

val e3_fence_rows : mode_cycles list -> (string * float * int) list
(** Per workload: fence slowdown and pattern count (derived from E2 data). *)

val e4_matmul_ablation : ?audit:bool -> unit -> mode_cycles

val e5_hot_candidates : int list

val e5_hit_miss : unit -> int array
(** Probe latencies of the timing harness's final flush+reload round
    (bimodal: the re-touched candidates hit, everything else misses). *)

val e7_translation_channel :
  ?secret:string ->
  unit ->
  (Gb_core.Mitigation.mode * Gb_attack.Translation_channel.outcome) list
(** E7 (extension; the paper's future-work concern made executable): the
    translation-decision side channel, per mitigation mode. Every mode
    leaks — the countermeasure targets speculative loads, not the
    profile-guided translation decisions themselves. *)

(** E8 (extension) — trace chaining: dispatcher exits per 1k guest
    instructions with chaining off/on, plus a tiny-cache run checking
    that eviction churn preserves architectural results. *)
type chain_row = {
  c_name : string;
  c_guest_insns : int64;
  c_exits_nochain : int64;
  c_exits_chain : int64;
  c_chain_follows : int64;
  c_tiny_exits : int64;  (** dispatch exits with chaining + tiny cache *)
  c_tiny_evictions : int;
  c_cycles_equal : bool;
      (** chaining must not change the simulated cycle count *)
  c_arch_equal : bool;
      (** tiny-cache run produced the same architectural result *)
}

val per_1k : int64 -> int64 -> float
(** [per_1k exits insns] — dispatcher exits per 1k guest instructions. *)

val chain_reduction : chain_row -> float
(** Reduction factor of dispatcher exits per 1k guest instructions
    (no-chain / chain); [infinity] when chaining removed every exit. *)

val e8_tiny_capacity : int
(** Code-cache budget (in bundles) of E8's eviction-churn configuration. *)

val e8_chaining : ?mode:Gb_core.Mitigation.mode -> unit -> chain_row list
(** One row per Polybench kernel (default mode [Unsafe], where traces are
    longest-lived and chaining matters most). *)

val chaining_json : chain_row list -> Gb_util.Json.t
(** Machine-readable E8 results. *)

(** E9 (extension) — static verification cross-check: the install-time
    translation verifier and the guest gadget scanner scored against the
    runtime leakage audit. *)

(** One verified run: the verifier attached report-only (enforcement
    would fence away the very leaks the audit must observe). *)
type verify_row = {
  v_name : string;
  v_mode : Gb_core.Mitigation.mode;
  v_checked : int;  (** translations the verifier examined *)
  v_violations : int;
  v_rejections : int;  (** always 0 report-only *)
  v_violation_pcs : int list;  (** distinct violating guest pcs, sorted *)
  v_dependent_pcs : int list;
      (** pcs the audit saw leave dependent transient lines ([] when the
          run was not audited) *)
  v_uncovered : int list;
      (** audited dependent pcs the verifier did NOT flag — a static
          false negative; must be empty *)
}

type scan_row = {
  s_name : string;
  s_report : Gb_verify.Scanner.report;
  s_flagged : int list;
      (** runtime detector's flagged pcs from the audited Unsafe run (the
          scanner's ground truth) *)
  s_score : Gb_verify.Scanner.score;
}

type e9 = {
  e9_attacks : verify_row list;
      (** both Spectre variants under every mode, audited *)
  e9_workloads : verify_row list;
      (** every Polybench kernel under the mitigated modes, where the
          verifier must stay silent *)
  e9_scans : scan_row list;
}

val e9_workload_modes : Gb_core.Mitigation.mode list
(** The modes the Polybench rows cover (fine-grained, fence-on-detect,
    min-cut — every mode whose verifier must stay silent). *)

val e9_verify :
  ?secret:string -> ?modes:Gb_core.Mitigation.mode list -> unit -> e9
(** [modes] (default {!Gb_core.Mitigation.all_modes}) restricts both the
    attack and workload rows; note the scanner's ground truth needs the
    audited [Unsafe] run, so a filter without it scores against an empty
    flagged set. *)

val verify_json : e9 -> Gb_util.Json.t
(** Machine-readable E9 results (consumed by the CI verify gate). *)

val geomean_slowdown :
  mode_cycles list -> mode:Gb_core.Mitigation.mode -> float

val mode_cycles_json : mode_cycles -> Gb_util.Json.t
(** One workload's cycles and slowdowns as a JSON object. *)

val figure4_json : mode_cycles list -> Gb_util.Json.t
(** Machine-readable E2 results (for external plotting). *)

val poc_json : poc_row list -> Gb_util.Json.t
(** Machine-readable E1 results. *)

val leakage_json :
  rows:mode_cycles list -> poc_row list -> Gb_util.Json.t
(** Machine-readable leakage-audit counters: per-workload Unsafe and
    Fine_grained summaries from [rows] plus per-attack classification from
    an audited E1 matrix. Rows without audit data encode as [null]. *)
