type tier = Block | Trace

type code_mode = Nonspec | Mitigated of Gb_core.Mitigation.mode

type entry = {
  e_pc : int;
  e_trace : Gb_vliw.Vinsn.trace;
  e_tier : tier;
  e_mode : code_mode;
  e_gen : int;
  mutable e_stamp : int;
}

type config = { capacity : int; chain : bool }

let default_config =
  { capacity = 65536; chain = Sys.getenv_opt "GHOSTBUSTERS_NO_CHAIN" = None }

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable inserts : int;
  mutable evictions : int;
  mutable chain_links : int;
  mutable chain_breaks : int;
}

type t = {
  cfg : config;
  lock : Mutex.t;
      (* guards every mutation (and, for cross-domain callers, every
         read) of the tables below. The simulation's hot path is
         single-domain — the owning domain is the only one that installs
         or looks up during a run — but the installation protocol must
         stay safe when a worker-domain client (tests, the future
         multi-tenant server) races installs against invalidations. *)
  tbl : (int, entry) Hashtbl.t;
  in_links : (int, (int * Gb_vliw.Vinsn.stub) list ref) Hashtbl.t;
      (* target pc -> (source pc, stub) of every link ever made into the
         translation currently (or formerly) installed there; stale pairs
         (stub already unlinked, or re-pointed at a newer translation of
         the same pc — never of a different pc, since links require
         stub.target_pc = target) are skipped via the identity check *)
  inval_gen : (int, int) Hashtbl.t;
      (* pc -> generation at which the translation installed there was
         last removed (invalidated, evicted or replaced); consulted by
         generation-tagged installs *)
  mutable used : int;
  mutable lru_clock : int;
  mutable next_gen : int;
      (* the cache-wide mutation generation: bumped by every install and
         every removal. Doubles as the per-entry generation stamp, so
         e_gen stays unique and monotonic (it just skips values). *)
  stats : stats;
  obs : Gb_obs.Sink.t;
  mutable on_evict : pc:int -> tier -> unit;
}

let create ?(obs = Gb_obs.Sink.noop) cfg =
  {
    cfg;
    lock = Mutex.create ();
    tbl = Hashtbl.create 128;
    in_links = Hashtbl.create 128;
    inval_gen = Hashtbl.create 64;
    used = 0;
    lru_clock = 0;
    next_gen = 0;
    stats =
      {
        hits = 0;
        misses = 0;
        inserts = 0;
        evictions = 0;
        chain_links = 0;
        chain_breaks = 0;
      };
    obs;
    on_evict = (fun ~pc:_ _ -> ());
  }

(* The match-on-exception form unlocks on both paths without the two
   closures [Fun.protect ~finally] would allocate per call; [f] itself
   still allocates when it captures — the per-exit hot paths ([peek],
   [find]) therefore avoid [with_lock] entirely. *)
let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let config t = t.cfg

let stats t = t.stats

let set_on_evict t f = t.on_evict <- f

let used_bundles t = with_lock t (fun () -> t.used)

let touch t e =
  t.lru_clock <- t.lru_clock + 1;
  e.e_stamp <- t.lru_clock

(* [peek]/[find] run per trace exit on the chain-follow path: no
   [with_lock] closure, and the only allocation left is the returned
   [Some] itself ([Hashtbl.find]'s [Not_found] is a constant, so the
   miss path allocates nothing). *)
let peek t pc =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find t.tbl pc with
    | e -> Some e
    | exception Not_found -> None
  in
  Mutex.unlock t.lock;
  r

let find t pc =
  Mutex.lock t.lock;
  let hit =
    match Hashtbl.find t.tbl pc with
    | e ->
      touch t e;
      t.stats.hits <- t.stats.hits + 1;
      Some e
    | exception Not_found ->
      t.stats.misses <- t.stats.misses + 1;
      None
  in
  Mutex.unlock t.lock;
  (if Gb_obs.Sink.is_active t.obs then
     match hit with
     | Some _ -> Gb_obs.Sink.incr t.obs "code_cache.hits"
     | None -> Gb_obs.Sink.incr t.obs "code_cache.misses");
  hit

let gauges t =
  if Gb_obs.Sink.is_active t.obs then begin
    Gb_obs.Sink.set_gauge t.obs "code_cache.bundles" (float_of_int t.used);
    Gb_obs.Sink.set_gauge t.obs "code_cache.entries"
      (float_of_int (Hashtbl.length t.tbl))
  end

let break_stub t ~src_pc (stub : Gb_vliw.Vinsn.stub) =
  match stub.Gb_vliw.Vinsn.chain with
  | None -> ()
  | Some target ->
    stub.Gb_vliw.Vinsn.chain <- None;
    t.stats.chain_breaks <- t.stats.chain_breaks + 1;
    if Gb_obs.Sink.is_active t.obs then begin
      Gb_obs.Sink.incr t.obs "code_cache.chain_breaks";
      Gb_obs.Sink.event t.obs ~pc:stub.Gb_vliw.Vinsn.target_pc ~region:src_pc
        (Gb_obs.Event.Chain
           { target = target.Gb_vliw.Vinsn.entry_pc; op = `Break })
    end

(* Sever every link touching [e]: its own out-links (the pipeline may
   still hold the trace object mid-flight and must not follow chains out
   of dropped code) and all in-links whose stub still points at exactly
   this trace object. *)
let unlink t e =
  Array.iter (break_stub t ~src_pc:e.e_pc) e.e_trace.Gb_vliw.Vinsn.stubs;
  match Hashtbl.find_opt t.in_links e.e_pc with
  | None -> ()
  | Some l ->
    List.iter
      (fun (src_pc, (stub : Gb_vliw.Vinsn.stub)) ->
        match stub.Gb_vliw.Vinsn.chain with
        | Some target when target == e.e_trace -> break_stub t ~src_pc stub
        | Some _ | None -> ())
      !l;
    Hashtbl.remove t.in_links e.e_pc

(* every removal is a mutation a generation-tagged install must observe:
   record the generation at which this pc's translation died *)
let remove t e =
  unlink t e;
  Hashtbl.remove t.tbl e.e_pc;
  t.used <- t.used - Gb_vliw.Vinsn.bundle_count e.e_trace;
  t.next_gen <- t.next_gen + 1;
  Hashtbl.replace t.inval_gen e.e_pc t.next_gen

let invalidate t pc =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl pc with
      | None -> ()
      | Some e ->
        remove t e;
        gauges t)

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ e acc ->
        match acc with
        | Some v when v.e_stamp <= e.e_stamp -> acc
        | _ -> Some e)
      t.tbl None
  in
  match victim with
  | None -> ()
  | Some e ->
    remove t e;
    t.stats.evictions <- t.stats.evictions + 1;
    if Gb_obs.Sink.is_active t.obs then begin
      Gb_obs.Sink.incr t.obs "code_cache.evictions";
      Gb_obs.Sink.event t.obs ~pc:e.e_pc ~region:e.e_pc
        (Gb_obs.Event.Tier_transition { tier = "evicted" })
    end;
    t.on_evict ~pc:e.e_pc e.e_tier

let insert_locked t ~pc ~tier ~mode trace =
  (* same-pc replacement (tier promotion, retranslation) is not an
     eviction: no stat, no hook *)
  (match Hashtbl.find_opt t.tbl pc with
  | Some old -> remove t old
  | None -> ());
  let cost = Gb_vliw.Vinsn.bundle_count trace in
  while t.used + cost > t.cfg.capacity && Hashtbl.length t.tbl > 0 do
    evict_lru t
  done;
  t.next_gen <- t.next_gen + 1;
  let e =
    { e_pc = pc; e_trace = trace; e_tier = tier; e_mode = mode;
      e_gen = t.next_gen; e_stamp = 0 }
  in
  touch t e;
  Hashtbl.replace t.tbl pc e;
  t.used <- t.used + cost;
  t.stats.inserts <- t.stats.inserts + 1;
  (* register the tier with the attribution ledger: it outlives eviction,
     so a trace still in flight keeps attributing to the tier it ran at *)
  (match Gb_obs.Sink.attrib t.obs with
  | Some a ->
    Gb_obs.Attrib.set_tier a ~entry:pc
      (match tier with
      | Block -> Gb_obs.Attrib.Block
      | Trace -> Gb_obs.Attrib.Trace)
  | None -> ());
  gauges t;
  e

let insert t ~pc ~tier ~mode trace =
  with_lock t (fun () -> insert_locked t ~pc ~tier ~mode trace)

let generation t = with_lock t (fun () -> t.next_gen)

let insert_tagged t ~gen ~pc ~tier ~mode trace =
  with_lock t (fun () ->
      let stale =
        match Hashtbl.find_opt t.inval_gen pc with
        | Some g -> g > gen
        | None -> false
      in
      if stale then None else Some (insert_locked t ~pc ~tier ~mode trace))

(* Non-speculative code is mode-neutral: it neither leaks speculative
   state of its own nor inherits any (the MCB is cleared and the audit's
   run window closed at every stub commit), so it may chain from and to
   anything. Two speculating translations must agree on their mode. *)
let compatible ~src ~dst =
  match (src.e_mode, dst.e_mode) with
  | Nonspec, _ | _, Nonspec -> true
  | Mitigated a, Mitigated b -> a = b

let link t ~src ~stub ~dst =
  if
    (not t.cfg.chain)
    || stub < 0
    || stub >= Array.length src.e_trace.Gb_vliw.Vinsn.stubs
    || not (compatible ~src ~dst)
  then false
  else
    with_lock t (fun () ->
        (* [src] and [dst] were looked up before this lock was taken:
           either may have been invalidated or replaced by another domain
           in between. Linking through a dead entry would plant a chain
           no removal can ever break — [unlink] only reaches stubs via
           the live tables — so re-check both endpoints here, under the
           same lock every removal runs under. *)
        let live e =
          match Hashtbl.find_opt t.tbl e.e_pc with
          | Some cur -> cur == e
          | None -> false
        in
        if not (live src && live dst) then false
        else
        let s = src.e_trace.Gb_vliw.Vinsn.stubs.(stub) in
        if s.Gb_vliw.Vinsn.target_pc <> dst.e_pc then false
        else
          match s.Gb_vliw.Vinsn.chain with
          | Some target when target == dst.e_trace -> true
          | _ ->
            s.Gb_vliw.Vinsn.chain <- Some dst.e_trace;
            let l =
              match Hashtbl.find_opt t.in_links dst.e_pc with
              | Some l -> l
              | None ->
                let l = ref [] in
                Hashtbl.replace t.in_links dst.e_pc l;
                l
            in
            l := (src.e_pc, s) :: !l;
            t.stats.chain_links <- t.stats.chain_links + 1;
            if Gb_obs.Sink.is_active t.obs then begin
              Gb_obs.Sink.incr t.obs "code_cache.chain_links";
              Gb_obs.Sink.event t.obs ~pc:s.Gb_vliw.Vinsn.target_pc
                ~region:src.e_pc
                (Gb_obs.Event.Chain { target = dst.e_pc; op = `Link })
            end;
            true)

let entries t =
  with_lock t (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl [])

let occupancy t tier =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun _ e ((n, b) as acc) ->
          if e.e_tier = tier then
            (n + 1, b + Gb_vliw.Vinsn.bundle_count e.e_trace)
          else acc)
        t.tbl (0, 0))

let well_linked t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun _ e ok ->
          ok
          && Array.for_all
               (fun (s : Gb_vliw.Vinsn.stub) ->
                 match s.Gb_vliw.Vinsn.chain with
                 | None -> true
                 | Some target -> (
                   s.Gb_vliw.Vinsn.target_pc = target.Gb_vliw.Vinsn.entry_pc
                   &&
                   match
                     Hashtbl.find_opt t.tbl target.Gb_vliw.Vinsn.entry_pc
                   with
                   | Some e' -> e'.e_trace == target
                   | None -> false))
               e.e_trace.Gb_vliw.Vinsn.stubs)
        t.tbl true)
