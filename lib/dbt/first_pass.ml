type result = { trace : Gb_vliw.Vinsn.trace; branch_pc : int option }

exception Untranslatable of string

let max_block_insns = 128

let sext32 v = Int64.of_int32 (Int64.to_int32 v)

let translate ~mem ~entry =
  let open Gb_vliw.Vinsn in
  let bundles = ref [] in
  let stubs = ref [] in
  let n_stubs = ref 0 in
  let emit op = bundles := [| op |] :: !bundles in
  (* Sequential ids in emission (= guest program) order so the leakage
     audit's commit-boundary rule works on first-pass code too; with one
     op per bundle nothing ever executes past a taken exit anyway. *)
  let next_id = ref 0 in
  let next () =
    let i = !next_id in
    incr next_id;
    i
  in
  let add_stub ?(exit_id = max_int) target_pc =
    stubs := make_stub ~exit_id ~commits:[] ~target_pc () :: !stubs;
    incr n_stubs;
    !n_stubs - 1
  in
  let branch_pc = ref None in
  let count = ref 0 in
  let finish_at pc = emit (Exit { stub = add_stub ~exit_id:(next ()) pc }) in
  let rec walk pc =
    if !count >= max_block_insns then finish_at pc
    else
      match Gb_riscv.Decode.decode (Gb_riscv.Mem.load_insn_word mem ~addr:pc) with
      | exception (Gb_riscv.Decode.Illegal _ | Gb_riscv.Mem.Fault _) ->
        if !count = 0 then raise (Untranslatable "no decodable instruction")
        else finish_at pc
      | insn -> (
        incr count;
        match insn with
        | Gb_riscv.Insn.Op_imm (op, rd, rs1, imm) ->
          emit
            (Alu
               { op = Gb_ir.Build.oprr_of_opri op; dst = rd; a = R rs1;
                 b = I (Int64.of_int imm) });
          walk (pc + 4)
        | Gb_riscv.Insn.Op (op, rd, rs1, rs2) ->
          emit (Alu { op; dst = rd; a = R rs1; b = R rs2 });
          walk (pc + 4)
        | Gb_riscv.Insn.Lui (rd, imm) ->
          emit
            (Alu
               { op = Gb_riscv.Insn.ADD; dst = rd;
                 a = I (sext32 (Int64.of_int (imm lsl 12))); b = I 0L });
          walk (pc + 4)
        | Gb_riscv.Insn.Auipc (rd, imm) ->
          emit
            (Alu
               { op = Gb_riscv.Insn.ADD; dst = rd;
                 a =
                   I (Int64.add (Int64.of_int pc)
                        (sext32 (Int64.of_int (imm lsl 12))));
                 b = I 0L });
          walk (pc + 4)
        | Gb_riscv.Insn.Load (w, unsigned, rd, rs1, off) ->
          emit
            (Load
               { w; unsigned; dst = rd; base = R rs1; off; spec = None;
                 id = next (); pc; hoisted = false });
          walk (pc + 4)
        | Gb_riscv.Insn.Store (w, rs2, rs1, off) ->
          emit (Store { w; src = R rs2; base = R rs1; off; id = next (); pc });
          walk (pc + 4)
        | Gb_riscv.Insn.Rdcycle rd ->
          emit (Rdcycle { dst = rd });
          walk (pc + 4)
        | Gb_riscv.Insn.Cflush rs1 ->
          emit (Cflush { base = R rs1; off = 0; id = next (); pc });
          walk (pc + 4)
        | Gb_riscv.Insn.Fence ->
          emit Fence;
          walk (pc + 4)
        | Gb_riscv.Insn.Branch (cond, rs1, rs2, off) ->
          branch_pc := Some pc;
          let bid = next () in
          emit
            (Branch
               { cond; a = R rs1; b = R rs2;
                 stub = add_stub ~exit_id:bid (pc + off) });
          finish_at (pc + 4)
        | Gb_riscv.Insn.Jal (rd, off) ->
          if rd <> 0 then
            emit
              (Alu
                 { op = Gb_riscv.Insn.ADD; dst = rd;
                   a = I (Int64.of_int (pc + 4)); b = I 0L });
          finish_at (pc + off)
        | Gb_riscv.Insn.Jalr _ | Gb_riscv.Insn.Ecall ->
          count := !count - 1;
          if !count = 0 then
            raise (Untranslatable "block starts with jalr/ecall")
          else finish_at pc)
  in
  walk entry;
  {
    trace =
      {
        entry_pc = entry;
        bundles = Array.of_list (List.rev !bundles);
        stubs = Array.of_list (List.rev !stubs);
        n_regs = guest_regs;
        guest_insns = !count;
        meta = empty_meta;
      };
    branch_pc = !branch_pc;
  }
