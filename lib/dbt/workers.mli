(** The translation worker service: a process-wide pool of OCaml 5
    domains consuming jobs from a bounded queue.

    The DBT engine uses it to run the pure middle/back end of a
    translation (IR build, poisoning analysis, scheduling, code
    generation, install-time verification) off the execution path while
    the interpreter keeps executing the guest; {!Gb_diff.Matrix} and the
    bench harness use {!map} to shard embarrassingly parallel
    experiment matrices across the same domains.

    Design constraints (see docs/CONCURRENCY.md):

    - {e One global pool.} Simulations create hundreds of short-lived
      engines; per-engine pools would exhaust the runtime's domain
      limit. {!ensure} lazily creates the pool and grows it, never
      shrinks it. Pool size only affects host wall-clock, never
      simulated results, so sharing one pool between callers that asked
      for different sizes is sound.
    - {e Futures are work-stealing.} {!await} on a job still sitting in
      the queue claims and runs it on the calling domain. This makes
      [await] deadlock-free under nesting (a worker awaiting a subjob
      either steals it or waits on a job actively running elsewhere)
      and means a dropped or full queue degrades to inline execution,
      never to a stall.
    - {e The queue is bounded.} {!try_submit} refuses instead of
      queueing unboundedly; refusal is always safe because every use
      site has an inline fallback that produces identical results. *)

type pool

type 'a future

val available : unit -> bool
(** Whether the host offers real parallelism (more than one recommended
    domain). When false, callers that shard pure work should skip
    {!ensure} entirely: even an idle worker domain taxes every minor
    collection with a cross-domain synchronisation, so spawning one on
    a single-core host makes runs measurably slower without overlapping
    anything. Never affects simulated results. *)

val env_default : unit -> int
(** Worker count from [GHOSTBUSTERS_WORKERS] (0 when unset or
    unparsable). Read from the environment on each call. *)

val ensure : int -> pool
(** [ensure n] returns the global pool, first creating it or growing it
    so that at least [n] worker domains exist — clamped to 16 and to
    [Domain.recommended_domain_count () - 1] (at least 1; one hardware
    thread is left for the owner domain, since oversubscribing cores
    only adds stop-the-world GC stalls). Worker domains are joined
    through an [at_exit] hook. The clamp is invisible to results:
    pool size only ever affects host wall-clock. *)

val try_submit : pool -> (unit -> 'a) -> 'a future option
(** Enqueue a job; [None] when the queue is at capacity (the caller
    runs the work inline instead — same result, no overlap). The thunk
    must not touch state owned by another domain. *)

val await : 'a future -> 'a
(** The job's result: runs it on the calling domain when no worker has
    claimed it yet ({!stolen} becomes true), blocks until completion
    otherwise. Re-raises the job's exception, if it raised. *)

val stolen : 'a future -> bool
(** Whether {!await} ran the job on the awaiting domain instead of a
    worker (meaningful after {!await} returned). *)

val map : pool -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel, order-preserving map: submits one job per element
    (bypassing the admission bound — map jobs are the workload, not
    speculation) and awaits them in order, stealing unclaimed ones.
    Exceptions from [f] re-raise at the corresponding position.
    On a single-core host this degrades to [List.map f xs]: with no
    second hardware thread to overlap with, fan-out only buys GC
    synchronisation stalls. Results are identical either way. *)

val queue_depth : pool -> int
(** Jobs currently queued and unclaimed (snapshot). *)

val size : pool -> int
(** Worker domains currently alive. *)
