(** The DBT engine: profiling, hot-spot detection and translation.
    Installed code lives in the bounded {!Code_cache}, which owns
    capacity, eviction and trace chaining; the engine decides {e when}
    to translate and feeds the cache.

    The co-designed processor calls {!record_branch} / {!record_block_entry}
    while interpreting; when a block-entry counter crosses the hot
    threshold the engine builds a trace, lowers it to the IR, applies the
    configured GhostBusters mitigation, schedules and emits VLIW code.
    Failed translations blacklist the pc and execution stays on the
    interpreter. *)

(** Post-scheduling verification of every translation the engine installs
    (see {!Gb_verify.Verifier}): [Verify_off] skips it, [Verify_report]
    checks and records violations but installs anyway, [Verify_enforce]
    rejects a violating translation from the code cache and retranslates
    the region with speculation fenced entirely (defense-in-depth against
    scheduler bugs, independent of the pre-scheduling poisoning
    analysis). *)
type verify_level = Verify_off | Verify_report | Verify_enforce

type config = {
  adaptive_retranslate : bool;
      (** rebuild a trace from the current branch profile once its
          side-exit rate shows the original bias was wrong (e.g. a
          program phase change flipped a branch). On by default: this is
          routine DBT hygiene and orthogonal to speculation safety. *)
  adaptive_despec : bool;
      (** re-translate a trace without memory speculation once its MCB
          rollback rate is high (the adaptive reaction of aggressive
          memory-speculation DBT systems). Off by default: the paper's
          configuration speculates unconditionally. Side effect worth
          noting: it also throttles the Spectre v4 attack, whose gadget
          rolls back on every round. *)
  first_pass_threshold : int;
      (** block executions before first-level (naive, non-speculative)
          translation kicks in *)
  hot_threshold : int;
  mode : Gb_core.Mitigation.mode;
  opt_override : Gb_ir.Opt_config.t option;
      (** when set, replaces the speculation switches derived from [mode]
          (used by the design-space ablations, e.g. varying the MCB size) *)
  resources : Sched.resources;
  lat : Gb_ir.Latency.t;
  trace_cfg : Trace_builder.config;
  n_hidden : int;  (** hidden registers available to the code generator *)
  cache : Code_cache.config;
      (** capacity budget and chaining switch of the code cache the
          engine installs translations into *)
  verify : verify_level;  (** install-time translation verification *)
  workers : int;
      (** translation worker domains (0 = fully synchronous). When
          positive, the engine prefetches translations: a few arrivals
          before the hot threshold it freezes an immutable plan of the
          region and runs the whole backend (IR build, mitigation,
          scheduling, codegen, verification) on a shared {!Workers} pool;
          at the hot threshold it re-plans authoritatively and uses the
          prefetched result iff the plans are structurally equal, else
          translates synchronously. Pure wall-clock optimisation:
          simulated cycle counts, audit verdicts, events and all
          deterministic counters are bit-identical for every value —
          the determinism argument is laid out in docs/CONCURRENCY.md. *)
}

val default_config : config
(** First-pass threshold 4, hot threshold 24, [Unsafe] mode, default
    resources/latencies, 96 hidden registers,
    {!Code_cache.default_config}; [workers] from the
    [GHOSTBUSTERS_WORKERS] environment variable (0 when unset). *)

type stats = {
  mutable retranslations : int;
      (** traces rebuilt because their branch bias went stale *)
  mutable despeculations : int;
      (** traces re-translated without memory speculation *)
  mutable first_pass_translations : int;
  mutable translations : int;
  mutable failures : int;
  mutable guest_insns_translated : int;
  mutable patterns_found : int;
  mutable loads_constrained : int;
  mutable fences_inserted : int;
  mutable spec_loads : int;
  mutable branch_spec_loads : int;
  mutable verify_checked : int;
      (** translations (both tiers) the verifier examined *)
  mutable verify_violations : int;
  mutable verify_rejections : int;
      (** translations [Verify_enforce] kept out of the code cache *)
}

type t

val create :
  ?obs:Gb_obs.Sink.t -> ?audit:Gb_cache.Audit.t -> config -> mem:Gb_riscv.Mem.t -> t
(** [obs] (default {!Gb_obs.Sink.noop}) receives the [translate.*]
    counters, per-phase host timers (first_pass, trace_build, ir_build,
    poison_analysis, schedule, codegen) and the translation lifecycle
    events ({!Gb_obs.Event.Translate_start} .. {!Gb_obs.Event.Tier_transition}).
    [audit], when present, is told which loads each translation hoisted
    speculatively and which the poisoning analysis flagged/constrained;
    under [Unsafe] the analysis additionally runs report-only so the
    audit can score detector precision against unconstrained execution. *)

val config : t -> config

val stats : t -> stats

val code_cache : t -> Code_cache.t
(** The bounded cache holding all installed code (both tiers). *)

val lookup : t -> int -> Gb_vliw.Vinsn.trace option
(** The installed translation at a pc, either tier (a pc has at most one:
    trace promotion replaces the first-level block). Counts a code-cache
    hit/miss and refreshes recency. *)

val record_block_exit : t -> entry:int -> Gb_vliw.Pipeline.exit_info -> unit
(** Called after every pass over a translated region — by the processor's
    dispatch loop for the final exit of a {!Gb_vliw.Pipeline.run}, and by
    the pipeline's [on_chain] callback for every chained transfer it
    followed in between (so adaptive retranslate/despec still see every
    run even when the dispatcher is bypassed): counts the region's
    executions and keeps the branch profile alive while warm code
    executes on the first-level tier (whose blocks end at their first
    conditional branch). *)

val chain : t -> Gb_vliw.Pipeline.exit_info -> unit
(** Lazy trace chaining: given the exit the dispatcher just handled, try
    to patch the taken stub to transfer directly into the (now
    translated) successor. All safety conditions — both endpoints
    currently installed, compatible mitigation modes, stub target =
    successor entry, never a rollback stub — are enforced here and in
    {!Code_cache.link}; calling it with a stale exit record is
    harmless. *)

val chained_successor :
  t -> Gb_vliw.Pipeline.exit_info -> Gb_vliw.Vinsn.trace option
(** The translation a chained transfer should continue into: the entry
    currently installed at the exit's [next_pc], provided the source
    region is still installed and the modes are compatible
    ({!Code_cache.compatible}). Counts a code-cache hit/miss and
    refreshes the target's LRU stamp, exactly as the dispatcher's
    {!lookup} would — chained bursts keep hot code recent. [None] sends
    the exit back to the dispatcher. *)

type region = {
  r_entry : int;
  r_tier : [ `Block | `Trace ];
  r_trace : Gb_vliw.Vinsn.trace;
  r_runs : int;  (** executions observed via {!record_block_exit} *)
}

val regions : t -> region list
(** Every currently-translated region, hottest first. *)

val record_branch : t -> pc:int -> taken:bool -> unit

val branch_profile : t -> int -> (int * int) option
(** The recorded (taken, total) counts of the conditional branch at a pc
    (used by tools that want to rebuild the same trace the engine saw). *)

val record_block_entry : t -> int -> unit
(** Bump the execution counter of a control-transfer target; translates it
    once hot. *)

val translate : t -> int -> Gb_vliw.Vinsn.trace option
(** Force a translation attempt (used by tests and tools); [None] when the
    pc cannot be translated. The result is cached either way. *)

val set_translate_fault : t -> (int -> bool) option -> unit
(** Fault-injection hook for the differential harness: when set, every
    translation attempt (both tiers) first consults the hook with the
    entry pc; [true] makes that attempt fail {e transiently} — [None] is
    returned but the entry is NOT blacklisted, so execution falls back to
    the interpreter and a later arrival retries. Counted as
    [translate.injected_faults]. [None] (the default) disables
    injection. *)

val verify_log : t -> (int * Gb_verify.Verifier.violation) list
(** Every violation the install-time verifier recorded, in chronological
    order, tagged with the region entry pc it was found in. Empty unless
    [config.verify] is [Verify_report] or [Verify_enforce]. *)

val allocs : t -> Gb_obs.Allocs.t
(** The engine's execution-allocation accumulator. The translation entry
    points ({!translate}, the first-pass tier, prefetch submission) pause
    it, so {!Gb_obs.Allocs.start}ing it around a run measures the
    allocation of the execution tiers alone — what the
    [alloc.minor_words_per_kinsn.*] manifest cells report. *)
