type resources = {
  width : int;
  mem_slots : int;
  mul_slots : int;
  branch_slots : int;
}

let default_resources = { width = 4; mem_slots = 1; mul_slots = 1; branch_slots = 1 }

type cls = Alu_class | Mem_class | Mul_class | Branch_class

let classify = function
  | Gb_ir.Dfg.Kalu op ->
    if Gb_ir.Build.is_mul_like op || Gb_ir.Build.is_div_like op then Mul_class
    else Alu_class
  | Gb_ir.Dfg.Kload _ | Gb_ir.Dfg.Kstore _ | Gb_ir.Dfg.Kcflush -> Mem_class
  | Gb_ir.Dfg.Kbranch _ | Gb_ir.Dfg.Kchk _ | Gb_ir.Dfg.Kexit -> Branch_class
  | Gb_ir.Dfg.Krdcycle | Gb_ir.Dfg.Kfence -> Alu_class

exception Cyclic

(* All dependencies as adjacency lists: data edges reconstructed from node
   sources, plus the explicit memory/control edges. *)
let adjacency g ~lat =
  let n = Gb_ir.Dfg.n_nodes g in
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  let add_dep ~from ~to_ ~l =
    succs.(from) <- (to_, l) :: succs.(from);
    preds.(to_) <- (from, l) :: preds.(to_)
  in
  List.iter
    (fun e ->
      add_dep ~from:e.Gb_ir.Dfg.e_from ~to_:e.Gb_ir.Dfg.e_to ~l:e.Gb_ir.Dfg.e_lat)
    (Gb_ir.Dfg.edges g);
  ignore lat;
  (succs, preds)

let topo_order n succs preds =
  let indeg = Array.map List.length preds in
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then Queue.add i queue
  done;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order := u :: !order;
    incr seen;
    List.iter
      (fun (v, _) ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      succs.(u)
  done;
  if !seen <> n then raise Cyclic;
  List.rev !order

let schedule ?(obs = Gb_obs.Sink.noop) res ~lat g =
  let n = Gb_ir.Dfg.n_nodes g in
  let succs, preds = adjacency g ~lat in
  let order = topo_order n succs preds in
  (* critical-path priority, computed in reverse topological order *)
  let prio = Array.make n 0 in
  List.iter
    (fun u ->
      let own = Gb_ir.Build.latency_of lat (Gb_ir.Dfg.node g u).Gb_ir.Dfg.kind in
      let best =
        List.fold_left (fun acc (v, l) -> max acc (l + prio.(v))) 0 succs.(u)
      in
      prio.(u) <- own + best)
    (List.rev order);
  let cycle = Array.make n (-1) in
  let earliest = Array.make n 0 in
  let remaining_preds = Array.map List.length preds in
  (* ready pool sorted by priority (descending), then id *)
  let module Pool = Set.Make (struct
    type t = int * int (* (-priority, id) *)

    let compare = compare
  end) in
  let pool = ref Pool.empty in
  (* Side exits are block terminators: the trace scheduler only places a
     branch-class node once no other operation is waiting to issue, so
     hoistable work (in particular speculative loads from beyond the exit)
     actually moves above it. This is what makes the optimizer's
     "move loads before the conditional branch" decision effective. *)
  let pending_nonbranch = ref 0 in
  let is_branch u = classify (Gb_ir.Dfg.node g u).Gb_ir.Dfg.kind = Branch_class in
  let push u =
    if not (is_branch u) then incr pending_nonbranch;
    pool := Pool.add (-prio.(u), u) !pool
  in
  Array.iteri (fun u k -> if k = 0 then push u) remaining_preds;
  let scheduled = ref 0 in
  let c = ref 0 in
  while !scheduled < n do
    (* fill one bundle at cycle !c *)
    let used = ref 0 in
    let used_mem = ref 0 in
    let used_mul = ref 0 in
    let used_branch = ref 0 in
    let fits node_cls =
      !used < res.width
      &&
      match node_cls with
      | Mem_class -> !used_mem < res.mem_slots
      | Mul_class -> !used_mul < res.mul_slots
      | Branch_class -> !used_branch < res.branch_slots
      | Alu_class -> true
    in
    let take node_cls =
      incr used;
      match node_cls with
      | Mem_class -> incr used_mem
      | Mul_class -> incr used_mul
      | Branch_class -> incr used_branch
      | Alu_class -> ()
    in
    let push_key key = pool := Pool.add key !pool in
    let rec fill skipped =
      if !used >= res.width then List.iter push_key skipped
      else
        match Pool.min_elt_opt !pool with
        | None -> List.iter push_key skipped
        | Some ((_, u) as key) ->
          pool := Pool.remove key !pool;
          let k = classify (Gb_ir.Dfg.node g u).Gb_ir.Dfg.kind in
          let branch_allowed =
            k <> Branch_class || !pending_nonbranch = 0
          in
          if earliest.(u) <= !c && fits k && branch_allowed then begin
            take k;
            if k <> Branch_class then decr pending_nonbranch;
            cycle.(u) <- !c;
            incr scheduled;
            List.iter
              (fun (v, l) ->
                earliest.(v) <- max earliest.(v) (!c + l);
                remaining_preds.(v) <- remaining_preds.(v) - 1;
                if remaining_preds.(v) = 0 then push v)
              succs.(u);
            fill skipped
          end
          else fill (key :: skipped)
    in
    fill [];
    incr c
  done;
  if Gb_obs.Sink.is_active obs then begin
    Gb_obs.Sink.observe obs "sched.nodes" (float_of_int n);
    Gb_obs.Sink.observe obs "sched.schedule_cycles" (float_of_int !c)
  end;
  cycle
