type verify_level = Verify_off | Verify_report | Verify_enforce

type config = {
  adaptive_retranslate : bool;
  adaptive_despec : bool;
  first_pass_threshold : int;
  hot_threshold : int;
  mode : Gb_core.Mitigation.mode;
  opt_override : Gb_ir.Opt_config.t option;
  resources : Sched.resources;
  lat : Gb_ir.Latency.t;
  trace_cfg : Trace_builder.config;
  n_hidden : int;
  cache : Code_cache.config;
  verify : verify_level;
  workers : int;
      (** translation worker domains (0 = fully synchronous). Parallel
          translation is a wall-clock optimisation only: simulated cycle
          counts and all verdicts are bit-identical for every value —
          see docs/CONCURRENCY.md. *)
}

let default_config =
  {
    adaptive_retranslate = true;
    adaptive_despec = false;
    first_pass_threshold = 4;
    hot_threshold = 24;
    mode = Gb_core.Mitigation.Unsafe;
    opt_override = None;
    resources = Sched.default_resources;
    lat = Gb_ir.Latency.default;
    trace_cfg = Trace_builder.default_config;
    n_hidden = 96;
    cache = Code_cache.default_config;
    verify = Verify_off;
    workers = Workers.env_default ();
  }

type stats = {
  mutable retranslations : int;
  mutable despeculations : int;
  mutable first_pass_translations : int;
  mutable translations : int;
  mutable failures : int;
  mutable guest_insns_translated : int;
  mutable patterns_found : int;
  mutable loads_constrained : int;
  mutable fences_inserted : int;
  mutable spec_loads : int;
  mutable branch_spec_loads : int;
  mutable verify_checked : int;
  mutable verify_violations : int;
  mutable verify_rejections : int;
}

(* The owner-domain half of a translation: everything that reads the
   engine's mutable profile state. Plain immutable data once built, so a
   plan may cross domains, and two plans built from the same profile are
   structurally equal — the property the prefetch validity check rests
   on. *)
type plan = {
  p_entry : int;
  p_gtrace : Gb_ir.Gtrace.t;
  p_branch_pcs : int list;
  p_opt : Gb_ir.Opt_config.t;
}

(* Audit-ledger updates the backend wants made; collected as data because
   {!Gb_cache.Audit} is owner-domain state, applied at commit. *)
type audit_note =
  | Note_spec_load of int
  | Note_flagged of int  (* flagged and constrained by the mitigation *)
  | Note_unsafe_flagged of int  (* ground-truth flag under Unsafe *)

type backend_success = {
  b_trace : Gb_vliw.Vinsn.trace;
  b_report : Gb_core.Mitigation.report;
  b_fenced : bool;
}

type backend_result = {
  b_outcome : (backend_success, unit) result;
  b_verify : Gb_verify.Verifier.report list;  (* in call order *)
  b_rejections : int;
  b_notes : audit_note list;  (* in call order *)
  b_obs : Gb_obs.Sink.t;  (* the sink the backend recorded into *)
}

type prefetch = { pf_plan : plan; pf_future : backend_result Workers.future }

type t = {
  cfg : config;
  mem : Gb_riscv.Mem.t;
  cc : Code_cache.t;  (** the single owner of all translated code *)
  block_meta : (int, int option) Hashtbl.t;
      (** entry -> terminal branch pc of the first-level block *)
  blacklist : (int, unit) Hashtbl.t;
  fp_blacklist : (int, unit) Hashtbl.t;
  region_runs : (int, int) Hashtbl.t;
  region_rollbacks : (int, int) Hashtbl.t;
  region_side_exits : (int, int) Hashtbl.t;
  rebuilds : (int, int) Hashtbl.t;  (** bias-driven rebuilds per entry *)
  trace_branches : (int, int list) Hashtbl.t;
      (** entry -> pcs of the conditional branches inside the trace *)
  despeculated : (int, unit) Hashtbl.t;
  hot : (int, int) Hashtbl.t;
  branch_taken : (int, int) Hashtbl.t;  (** pc -> taken count *)
  branch_total : (int, int) Hashtbl.t;
      (** pc -> executions; two int tables rather than one
          [(int * int) Hashtbl.t] — the per-exit profile update would
          otherwise allocate a pair (and a [Some]) per recorded branch *)
  stats : stats;
  obs : Gb_obs.Sink.t;
  audit : Gb_cache.Audit.t option;
  mutable verify_log : (int * Gb_verify.Verifier.violation) list;
      (** (region entry, violation), reverse chronological *)
  mutable translate_fault : (int -> bool) option;
      (** fault injection: entry pc -> fail this translation attempt *)
  pool : Workers.pool option;
      (** translation worker pool when [cfg.workers > 0] *)
  prefetch : (int, prefetch) Hashtbl.t;
      (** entry -> speculative backend run in flight on the pool *)
  allocs : Gb_obs.Allocs.t;
      (** execution-allocation accumulator: translation entry points
          pause it so a window around a run counts only the execution
          tiers (see {!allocs}) *)
}

let create ?(obs = Gb_obs.Sink.noop) ?audit cfg ~mem =
  let t = {
    cfg;
    mem;
    cc = Code_cache.create ~obs cfg.cache;
    block_meta = Hashtbl.create 128;
    blacklist = Hashtbl.create 16;
    fp_blacklist = Hashtbl.create 16;
    region_runs = Hashtbl.create 128;
    region_rollbacks = Hashtbl.create 32;
    region_side_exits = Hashtbl.create 64;
    rebuilds = Hashtbl.create 16;
    trace_branches = Hashtbl.create 64;
    despeculated = Hashtbl.create 16;
    hot = Hashtbl.create 256;
    branch_taken = Hashtbl.create 256;
    branch_total = Hashtbl.create 256;
    stats =
      {
        retranslations = 0;
        despeculations = 0;
        first_pass_translations = 0;
        translations = 0;
        failures = 0;
        guest_insns_translated = 0;
        patterns_found = 0;
        loads_constrained = 0;
        fences_inserted = 0;
        spec_loads = 0;
        branch_spec_loads = 0;
        verify_checked = 0;
        verify_violations = 0;
        verify_rejections = 0;
      };
    obs;
    audit;
    verify_log = [];
    translate_fault = None;
    pool = (if cfg.workers > 0 then Some (Workers.ensure cfg.workers) else None);
    prefetch = Hashtbl.create 8;
    allocs = Gb_obs.Allocs.create ();
  }
  in
  (* The bugfix half of the eviction contract: a capacity-evicted region
     that later gets re-promoted must not inherit the adaptive counters
     (runs / rollbacks / side exits) accumulated by its previous
     incarnation — they describe code that no longer exists. Explicit
     invalidation (retranslate / despec) does NOT come through here;
     those paths manage their own resets. *)
  Code_cache.set_on_evict t.cc (fun ~pc tier ->
      Hashtbl.remove t.region_runs pc;
      Hashtbl.remove t.region_rollbacks pc;
      Hashtbl.remove t.region_side_exits pc;
      match tier with
      | Code_cache.Block -> Hashtbl.remove t.block_meta pc
      | Code_cache.Trace -> ());
  t

let config t = t.cfg

let stats t = t.stats

let allocs t = t.allocs

let set_translate_fault t hook = t.translate_fault <- hook

let translate_faulted t entry =
  match t.translate_fault with
  | Some f when f entry ->
    (* injected transient failure: the entry is NOT blacklisted, so a
       later arrival retries and the region eventually translates *)
    Gb_obs.Sink.incr t.obs "translate.injected_faults";
    true
  | Some _ | None -> false

let code_cache t = t.cc

let lookup t pc =
  match Code_cache.find t.cc pc with
  | Some e -> Some e.Code_cache.e_trace
  | None -> None

(* Counter-table helpers for the per-exit accounting below. They run on
   every chained trace exit, so they must not allocate: [Hashtbl.find]'s
   [Not_found] is a constant (unlike [find_opt]'s per-hit [Some]), and
   [Hashtbl.replace] over an existing int key mutates the bucket in
   place — only a key's first appearance allocates its bucket. *)
let count tbl key =
  match Hashtbl.find tbl key with v -> v | exception Not_found -> 0

let bump tbl key = Hashtbl.replace tbl key (count tbl key + 1)

let record_branch_outcome t pc taken =
  if taken then bump t.branch_taken pc;
  bump t.branch_total pc

let record_branch t ~pc ~taken = record_branch_outcome t pc taken

(* Adaptive de-speculation: a trace whose MCB rollback rate crosses the
   threshold is re-translated without memory speculation — misspeculation
   replay is more expensive than the parallelism it buys. *)
let despec_min_rollbacks = 8

let consider_despeculation t entry =
  if t.cfg.adaptive_despec && not (Hashtbl.mem t.despeculated entry) then begin
    let rollbacks = count t.region_rollbacks entry in
    let runs = count t.region_runs entry in
    if rollbacks >= despec_min_rollbacks && rollbacks * 8 >= runs then begin
      (* drop the speculative translation; the entry counter is already
         past the hot threshold, so the next arrival re-translates it
         under the de-speculated configuration *)
      Hashtbl.replace t.despeculated entry ();
      Code_cache.invalidate t.cc entry;
      Hashtbl.remove t.blacklist entry;
      (* any in-flight prefetch was planned with speculation on — drop it
         (the trigger-time plan comparison would reject it anyway) *)
      Hashtbl.remove t.prefetch entry;
      t.stats.despeculations <- t.stats.despeculations + 1;
      Gb_obs.Sink.incr t.obs "translate.despeculations";
      Gb_obs.Sink.event t.obs ~pc:entry ~region:entry
        (Gb_obs.Event.Tier_transition { tier = "despeculated" })
    end
  end

(* Adaptive re-translation: when a phase change flips a branch the trace
   was specialised on, essentially every run leaves through its first side
   exit. Drop the stale trace so it is rebuilt from the current profile.
   The threshold is a 3/4 exit ratio: loops with short trip counts exit
   every few runs as a matter of course (~25-50 %) and must not be
   touched — only a flipped bias drives the ratio towards 100 %. A small
   rebuild budget prevents thrashing on genuinely unbiased regions. *)
let retranslate_min_side_exits = 48

let max_bias_rebuilds = 2

(* interpreted executions used to re-learn the branch bias after a stale
   trace is dropped (the old profile is discarded: cumulative counts from
   the previous phase would otherwise dominate the ratio forever) *)
let relearn_window = 16

let has_trace t entry =
  match Code_cache.peek t.cc entry with
  | Some e -> e.Code_cache.e_tier = Code_cache.Trace
  | None -> false

let consider_retranslation t entry =
  if t.cfg.adaptive_retranslate
     && has_trace t entry
     && count t.rebuilds entry < max_bias_rebuilds
  then begin
    let side_exits = count t.region_side_exits entry in
    let runs = count t.region_runs entry in
    if side_exits >= retranslate_min_side_exits && side_exits * 4 >= runs * 3
    then begin
      bump t.rebuilds entry;
      Code_cache.invalidate t.cc entry;
      Hashtbl.remove t.blacklist entry;
      Hashtbl.remove t.prefetch entry;
      Hashtbl.replace t.region_side_exits entry 0;
      Hashtbl.replace t.region_runs entry 0;
      (* forget the stale bias and re-learn it on the interpreter *)
      List.iter
        (fun pc ->
          Hashtbl.remove t.branch_taken pc;
          Hashtbl.remove t.branch_total pc)
        (Option.value ~default:[] (Hashtbl.find_opt t.trace_branches entry));
      Hashtbl.replace t.hot entry (t.cfg.hot_threshold - relearn_window);
      t.stats.retranslations <- t.stats.retranslations + 1;
      Gb_obs.Sink.incr t.obs "translate.retranslations";
      Gb_obs.Sink.event t.obs ~pc:entry ~region:entry
        (Gb_obs.Event.Tier_transition { tier = "retranslate" })
    end
  end

let record_block_exit t ~entry info =
  bump t.region_runs entry;
  (match info.Gb_vliw.Pipeline.kind with
  | Gb_vliw.Pipeline.Rollback ->
    bump t.region_rollbacks entry;
    consider_despeculation t entry
  | Gb_vliw.Pipeline.Side_exit ->
    bump t.region_side_exits entry;
    consider_retranslation t entry
  | Gb_vliw.Pipeline.Fallthrough -> ());
  match Hashtbl.find t.block_meta entry with
  | Some branch_pc -> (
    match info.Gb_vliw.Pipeline.kind with
    | Gb_vliw.Pipeline.Side_exit -> record_branch_outcome t branch_pc true
    | Gb_vliw.Pipeline.Fallthrough -> record_branch_outcome t branch_pc false
    | Gb_vliw.Pipeline.Rollback -> ())
  | None | (exception Not_found) -> ()

(* Run the post-scheduling verifier over a translation about to be
   installed, record its findings (counters, events, the per-entry log)
   and return the report. Called for both tiers whenever verification is
   enabled; the caller decides what a violation means (report vs
   reject). *)
let note_verify t ~entry trace =
  let vr = Gb_obs.Sink.time t.obs "verify" (fun () ->
      Gb_verify.Verifier.verify trace)
  in
  t.stats.verify_checked <- t.stats.verify_checked + 1;
  let vs = vr.Gb_verify.Verifier.violations in
  if vs <> [] then begin
    t.stats.verify_violations <- t.stats.verify_violations + List.length vs;
    t.verify_log <-
      List.rev_append (List.map (fun v -> (entry, v)) vs) t.verify_log
  end;
  if Gb_obs.Sink.is_active t.obs then begin
    Gb_obs.Sink.incr t.obs "verify.checked";
    if vs <> [] then
      Gb_obs.Sink.incr t.obs ~by:(List.length vs) "verify.violations";
    List.iter
      (fun v ->
        Gb_obs.Sink.event t.obs ~pc:v.Gb_verify.Verifier.v_pc ~region:entry
          (Gb_obs.Event.Verify_violation
             {
               kind = Gb_verify.Verifier.kind_name v.Gb_verify.Verifier.v_kind;
               bundle = v.Gb_verify.Verifier.v_bundle;
             }))
      vs
  end;
  vr

let verify_log t = List.rev t.verify_log

(* a fenced retranslation that still fails verification (which would take
   a code-generator bug) aborts the translation; the entry is blacklisted
   and stays on the interpreter *)
exception Verify_rejected

(* The three translation entry points below ([translate_first_pass],
   [submit_prefetch], [translate]) are the only ways into the translation
   pipeline — promotion-triggered translations included, since
   record_block_entry goes through [translate] — so bracketing them with
   an exclusion window is a sound cut: a {!Gb_obs.Allocs} window around a
   processor run then counts only execution-tier allocation. Translation
   allocates freely by design (IR, DFG, scheduling) and would drown the
   number the hot loops are held to. *)
let excluded t f =
  Gb_obs.Allocs.pause t.allocs;
  Fun.protect ~finally:(fun () -> Gb_obs.Allocs.resume t.allocs) f

let translate_first_pass t entry =
  excluded t @@ fun () ->
  if Code_cache.peek t.cc entry <> None
     || Hashtbl.mem t.fp_blacklist entry
     || translate_faulted t entry
  then ()
  else
    match
      Gb_obs.Sink.time t.obs "first_pass" (fun () ->
          First_pass.translate ~mem:t.mem ~entry)
    with
    | { First_pass.trace; branch_pc }
      when t.cfg.verify = Verify_enforce
           && not (Gb_verify.Verifier.ok (note_verify t ~entry trace)) ->
      (* structurally unreachable — first-pass blocks execute one op per
         bundle in program order — but the gate must not trust that *)
      ignore branch_pc;
      t.stats.verify_rejections <- t.stats.verify_rejections + 1;
      Gb_obs.Sink.incr t.obs "verify.rejections";
      Hashtbl.replace t.fp_blacklist entry ()
    | { First_pass.trace; branch_pc } ->
      if t.cfg.verify = Verify_report then ignore (note_verify t ~entry trace);
      ignore
        (Code_cache.insert t.cc ~pc:entry ~tier:Code_cache.Block
           ~mode:Code_cache.Nonspec trace);
      (match Gb_obs.Sink.attrib t.obs with
      | Some a -> Gb_obs.Attrib.note_translation a ~entry Gb_obs.Attrib.Block
      | None -> ());
      Hashtbl.replace t.block_meta entry branch_pc;
      t.stats.first_pass_translations <- t.stats.first_pass_translations + 1;
      Gb_obs.Sink.incr t.obs "translate.first_pass";
      Gb_obs.Sink.event t.obs ~pc:entry ~region:entry
        (Gb_obs.Event.Tier_transition { tier = "block" })
    | exception First_pass.Untranslatable _ ->
      Hashtbl.replace t.fp_blacklist entry ()

let branch_profile t pc =
  match Hashtbl.find t.branch_total pc with
  | total -> Some (count t.branch_taken pc, total)
  | exception Not_found -> None

let graph_meta g (report : Gb_core.Mitigation.report) =
  let spec_loads = ref 0 in
  let branch_spec_loads = ref 0 in
  Gb_ir.Dfg.iter_nodes g (fun n ->
      match Gb_ir.Dfg.spec_of n with
      | Some s ->
        if s.Gb_ir.Dfg.tag <> None then incr spec_loads;
        if s.Gb_ir.Dfg.spec_prev_branch <> None
           && not s.Gb_ir.Dfg.constrained
        then incr branch_spec_loads
      | None -> ());
  {
    Gb_vliw.Vinsn.spec_loads = !spec_loads;
    branch_spec_loads = !branch_spec_loads;
    spectre_patterns = report.Gb_core.Mitigation.patterns_found;
    constrained_loads = report.Gb_core.Mitigation.loads_constrained;
    fences_inserted = report.Gb_core.Mitigation.fences_inserted;
    cut_protects =
      (match report.Gb_core.Mitigation.cut_plan with
      | Some plan ->
        plan.Gb_core.Leakcut.dep_reinserts + plan.Gb_core.Leakcut.masks
      | None -> 0);
  }

(* ---- plan / backend / commit ---------------------------------------

   [translate] is split in three so the expensive middle can run on a
   worker domain (docs/CONCURRENCY.md):

   - {!plan_of} (owner only) reads the mutable profile state — guest
     memory via the trace builder, branch biases, the despeculation set —
     and freezes it into an immutable {!plan}.
   - {!backend} is a pure function of (config, plan): IR build,
     mitigation, scheduling, codegen, verification. It records every
     observability effect into the sink it is handed (a {!Gb_obs.Sink.buffer}
     when off-thread) and returns audit-ledger updates as data.
   - {!commit} (owner only) replays the recorded effects, absorbs the
     verifier reports into engine stats, applies the audit notes and
     installs the code — generation-tagged, so a stale install is
     structurally impossible.

   The synchronous path runs the same three stages back to back with the
   engine's own sink as the backend sink, which makes it line-for-line
   the pre-split code. *)

let plan_of t entry ~quiet =
  let profile pc = branch_profile t pc in
  let build () = Trace_builder.build t.cfg.trace_cfg ~mem:t.mem ~profile ~entry in
  match
    if quiet then build ()
    else Gb_obs.Sink.time t.obs "trace_build" build
  with
  | exception Trace_builder.Build_failure _ -> None
  | gtrace ->
    let branch_pcs =
      List.filter_map
        (fun st ->
          match st.Gb_ir.Gtrace.insn with
          | Gb_riscv.Insn.Branch _ -> Some st.Gb_ir.Gtrace.pc
          | _ -> None)
        gtrace.Gb_ir.Gtrace.steps
    in
    if not quiet then
      Gb_obs.Sink.event t.obs ~pc:entry ~region:entry
        (Gb_obs.Event.Trace_formed
           {
             guest_insns = Gb_ir.Gtrace.length gtrace;
             branches = List.length branch_pcs;
           });
    let opt =
      match t.cfg.opt_override with
      | Some opt -> opt
      | None -> Gb_core.Mitigation.opt_of_mode t.cfg.mode
    in
    let opt =
      if Hashtbl.mem t.despeculated entry then
        { opt with Gb_ir.Opt_config.mem_spec = false; mcb_tags = 0 }
      else opt
    in
    Some { p_entry = entry; p_gtrace = gtrace; p_branch_pcs = branch_pcs;
           p_opt = opt }

let backend ~(cfg : config) ~audit_enabled bobs (p : plan) =
  let entry = p.p_entry in
  let gtrace = p.p_gtrace in
  let verify_reports = ref [] in
  let rejections = ref 0 in
  let notes = ref [] in
  (* the sink half of the old [note_verify]; the stats half is absorbed
     at commit from the returned report list *)
  let verify ?plan trace =
    let vr = Gb_obs.Sink.time bobs "verify" (fun () ->
        let vr = Gb_verify.Verifier.verify trace in
        (* cut-soundness pass: when the mitigation produced a leak-cut
           plan, independently prove on the emitted schedule that every
           planned repair landed and no residual source→transmitter path
           survives; its violations gate exactly like the sticky-taint
           verifier's *)
        match plan with
        | None -> vr
        | Some p ->
          { vr with
            Gb_verify.Verifier.violations =
              vr.Gb_verify.Verifier.violations
              @ Gb_verify.Verifier.check_cut trace ~plan:p })
    in
    verify_reports := vr :: !verify_reports;
    if Gb_obs.Sink.is_active bobs then begin
      Gb_obs.Sink.incr bobs "verify.checked";
      let vs = vr.Gb_verify.Verifier.violations in
      if vs <> [] then
        Gb_obs.Sink.incr bobs ~by:(List.length vs) "verify.violations";
      List.iter
        (fun v ->
          Gb_obs.Sink.event bobs ~pc:v.Gb_verify.Verifier.v_pc ~region:entry
            (Gb_obs.Event.Verify_violation
               {
                 kind = Gb_verify.Verifier.kind_name v.Gb_verify.Verifier.v_kind;
                 bundle = v.Gb_verify.Verifier.v_bundle;
               }))
        vs
    end;
    vr
  in
  let outcome =
    try
      let g =
        Gb_obs.Sink.time bobs "ir_build" (fun () ->
            Gb_ir.Build.build ~opt:p.p_opt ~lat:cfg.lat gtrace)
      in
      let report =
        Gb_obs.Sink.time bobs "poison_analysis" (fun () ->
            Gb_core.Mitigation.apply ~obs:bobs cfg.mode ~lat:cfg.lat g)
      in
      if audit_enabled then begin
        (* The leakage audit wants the detector's verdicts for this
           region: which loads ran speculatively, which the analysis
           flagged, which the mitigation actually constrained. The ledger
           itself is owner state, so record the updates as data. *)
        Gb_ir.Dfg.iter_nodes g (fun n ->
            match Gb_ir.Dfg.spec_of n with
            | Some s
              when s.Gb_ir.Dfg.tag <> None
                   || s.Gb_ir.Dfg.spec_prev_branch <> None
                   || s.Gb_ir.Dfg.constrained ->
              notes := Note_spec_load n.Gb_ir.Dfg.guest_pc :: !notes
            | Some _ | None -> ());
        List.iter
          (fun pc -> notes := Note_flagged pc :: !notes)
          report.Gb_core.Mitigation.flagged_pcs;
        (* Under Unsafe nothing flags or constrains, so detector
           precision would be unmeasurable: run the poisoning analysis
           once report-only (it never mutates the graph) to obtain the
           ground-truth flag set without changing the generated code. *)
        if cfg.mode = Gb_core.Mitigation.Unsafe then
          List.iter
            (fun id ->
              let pc = (Gb_ir.Dfg.node g id).Gb_ir.Dfg.guest_pc in
              notes := Note_unsafe_flagged pc :: !notes;
              Gb_obs.Sink.event bobs ~pc ~region:entry
                (Gb_obs.Event.Poison_flagged { node = id }))
            (Gb_core.Poison.analyze g).Gb_core.Poison.patterns
      end;
      let lower g report =
        let cycles =
          Gb_obs.Sink.time bobs "schedule" (fun () ->
              Sched.schedule ~obs:bobs cfg.resources ~lat:cfg.lat g)
        in
        let meta = graph_meta g report in
        Gb_obs.Sink.time bobs "codegen" (fun () ->
            Codegen.emit cfg.resources ~n_hidden:cfg.n_hidden ~cycles
              ~entry_pc:entry
              ~guest_insns:(Gb_ir.Gtrace.length gtrace)
              ~meta g)
      in
      let trace = lower g report in
      (* Install-time gate: the post-scheduling verifier re-derives
         the speculation-safety property from the emitted bundles.
         Under [Verify_enforce] a violating translation never reaches
         the code cache — it is rebuilt with speculation fenced
         entirely (and must then verify clean, or the entry is
         blacklisted). *)
      let trace, report, fenced =
        match cfg.verify with
        | Verify_off -> (trace, report, false)
        | (Verify_report | Verify_enforce) as lvl ->
          let vr = verify ?plan:report.Gb_core.Mitigation.cut_plan trace in
          if Gb_verify.Verifier.ok vr || lvl = Verify_report then
            (trace, report, false)
          else begin
            incr rejections;
            Gb_obs.Sink.incr bobs "verify.rejections";
            Gb_obs.Sink.event bobs ~pc:entry ~region:entry
              (Gb_obs.Event.Tier_transition { tier = "verify-fenced" });
            let g =
              Gb_obs.Sink.time bobs "ir_build" (fun () ->
                  Gb_ir.Build.build ~opt:Gb_ir.Opt_config.no_speculation
                    ~lat:cfg.lat gtrace)
            in
            let report =
              Gb_core.Mitigation.apply ~obs:bobs cfg.mode ~lat:cfg.lat g
            in
            let trace = lower g report in
            if
              not
                (Gb_verify.Verifier.ok
                   (verify ?plan:report.Gb_core.Mitigation.cut_plan trace))
            then raise Verify_rejected;
            (trace, report, true)
          end
      in
      Ok { b_trace = trace; b_report = report; b_fenced = fenced }
    with
    | Gb_ir.Build.Unsupported _ | Codegen.Out_of_registers | Sched.Cyclic
    | Verify_rejected ->
      Error ()
  in
  {
    b_outcome = outcome;
    b_verify = List.rev !verify_reports;
    b_rejections = !rejections;
    b_notes = List.rev !notes;
    b_obs = bobs;
  }

(* synchronous backend run: record straight into the engine's own sink
   (replay is then a no-op), which is exactly the pre-split behaviour *)
let run_backend t p =
  backend ~cfg:t.cfg ~audit_enabled:(t.audit <> None) t.obs p

let absorb_verify t ~entry vr =
  t.stats.verify_checked <- t.stats.verify_checked + 1;
  let vs = vr.Gb_verify.Verifier.violations in
  if vs <> [] then begin
    t.stats.verify_violations <- t.stats.verify_violations + List.length vs;
    t.verify_log <-
      List.rev_append (List.map (fun v -> (entry, v)) vs) t.verify_log
  end

let apply_audit_notes t notes =
  match t.audit with
  | None -> ()
  | Some a ->
    List.iter
      (fun note ->
        match note with
        | Note_spec_load pc -> Gb_cache.Audit.note_spec_load a ~pc
        | Note_flagged pc ->
          Gb_cache.Audit.note_flagged a ~pc;
          Gb_cache.Audit.note_constrained a ~pc
        | Note_unsafe_flagged pc -> Gb_cache.Audit.note_flagged a ~pc)
      notes

let translate_failed t entry =
  Hashtbl.replace t.blacklist entry ();
  t.stats.failures <- t.stats.failures + 1;
  Gb_obs.Sink.incr t.obs "translate.failures";
  Gb_obs.Sink.event t.obs ~pc:entry ~region:entry
    (Gb_obs.Event.Translate_end { ok = false });
  None

let commit t ~gen (p : plan) (br : backend_result) =
  let entry = p.p_entry in
  let obs = t.obs in
  Gb_obs.Sink.replay br.b_obs ~into:obs;
  List.iter (absorb_verify t ~entry) br.b_verify;
  t.stats.verify_rejections <- t.stats.verify_rejections + br.b_rejections;
  apply_audit_notes t br.b_notes;
  match br.b_outcome with
  | Ok { b_trace = trace; b_report = report; b_fenced = fenced } ->
    let len = Gb_ir.Gtrace.length p.p_gtrace in
    (* de-speculated regions carry no speculative loads at all, so
       they are a safe chain target from any predecessor *)
    let mode =
      if fenced || Hashtbl.mem t.despeculated entry then Code_cache.Nonspec
      else Code_cache.Mitigated t.cfg.mode
    in
    (match
       Code_cache.insert_tagged t.cc ~gen ~pc:entry ~tier:Code_cache.Trace
         ~mode trace
     with
    | Some _ -> ()
    | None ->
      (* unreachable: [gen] is captured on the owning domain at trigger
         time, and only the owning domain invalidates — nothing can have
         removed this pc between capture and install *)
      assert false);
    (* per-entry translation counts let attribution reports flag
       churny regions (retranslation/despeculation loops) *)
    (match Gb_obs.Sink.attrib obs with
    | Some a -> Gb_obs.Attrib.note_translation a ~entry Gb_obs.Attrib.Trace
    | None -> ());
    Hashtbl.replace t.trace_branches entry p.p_branch_pcs;
    Hashtbl.remove t.block_meta entry;
    let s = t.stats in
    s.translations <- s.translations + 1;
    s.guest_insns_translated <- s.guest_insns_translated + len;
    s.patterns_found <-
      s.patterns_found + report.Gb_core.Mitigation.patterns_found;
    s.loads_constrained <-
      s.loads_constrained + report.Gb_core.Mitigation.loads_constrained;
    s.fences_inserted <-
      s.fences_inserted + report.Gb_core.Mitigation.fences_inserted;
    s.spec_loads <-
      s.spec_loads + trace.Gb_vliw.Vinsn.meta.Gb_vliw.Vinsn.spec_loads;
    s.branch_spec_loads <-
      s.branch_spec_loads
      + trace.Gb_vliw.Vinsn.meta.Gb_vliw.Vinsn.branch_spec_loads;
    if Gb_obs.Sink.is_active obs then begin
      Gb_obs.Sink.incr obs "translate.translations";
      Gb_obs.Sink.incr obs ~by:len "translate.guest_insns";
      Gb_obs.Sink.observe obs "translate.trace_guest_insns" (float_of_int len);
      let meta = trace.Gb_vliw.Vinsn.meta in
      if meta.Gb_vliw.Vinsn.spec_loads > 0
         || meta.Gb_vliw.Vinsn.branch_spec_loads > 0
      then
        Gb_obs.Sink.event obs ~pc:entry ~region:entry
          (Gb_obs.Event.Load_hoisted
             {
               spec_loads = meta.Gb_vliw.Vinsn.spec_loads;
               past_branch = meta.Gb_vliw.Vinsn.branch_spec_loads;
             });
      Gb_obs.Sink.event obs ~pc:entry ~region:entry
        (Gb_obs.Event.Tier_transition { tier = "trace" });
      Gb_obs.Sink.event obs ~pc:entry ~region:entry
        (Gb_obs.Event.Translate_end { ok = true })
    end;
    Some trace
  | Error () -> translate_failed t entry

(* Speculative translation prefetch: a few arrivals before the hot
   threshold, freeze a quiet plan (no observability effects — the
   authoritative plan at trigger time emits them all) and start the
   backend on the pool. The fault-injection hook is deliberately NOT
   consulted here: it draws from a seeded RNG, and an extra draw would
   shift the fault stream relative to the synchronous schedule. *)
let prefetch_lookahead = 8

let submit_prefetch t pool entry =
  excluded t @@ fun () ->
  match plan_of t entry ~quiet:true with
  | None -> ()
  | Some p ->
    let cfg = t.cfg in
    let audit_enabled = t.audit <> None in
    let buffered = Gb_obs.Sink.is_active t.obs in
    let job () =
      let bobs = if buffered then Gb_obs.Sink.buffer () else Gb_obs.Sink.noop in
      backend ~cfg ~audit_enabled bobs p
    in
    (match Workers.try_submit pool job with
    | Some fut ->
      Hashtbl.replace t.prefetch entry { pf_plan = p; pf_future = fut };
      Gb_obs.Sink.incr t.obs "workers.prefetch_submitted";
      Gb_obs.Sink.set_gauge t.obs "workers.queue_depth"
        (float_of_int (Workers.queue_depth pool))
    | None ->
      (* pool saturated: skip, the trigger will translate synchronously *)
      Gb_obs.Sink.incr t.obs "workers.queue_full")

let translate t entry =
  excluded t @@ fun () ->
  match Code_cache.peek t.cc entry with
  | Some e when e.Code_cache.e_tier = Code_cache.Trace ->
    Some e.Code_cache.e_trace
  | Some _ | None ->
    if Hashtbl.mem t.blacklist entry || translate_faulted t entry then None
    else begin
      let pf = Hashtbl.find_opt t.prefetch entry in
      Hashtbl.remove t.prefetch entry;
      Gb_obs.Sink.event t.obs ~pc:entry ~region:entry
        Gb_obs.Event.Translate_start;
      match plan_of t entry ~quiet:false with
      | None -> translate_failed t entry
      | Some p ->
        let gen = Code_cache.generation t.cc in
        let br =
          match pf with
          | Some pf when pf.pf_plan = p ->
            (* The profile has not drifted since submission: the plans are
               structurally equal, and the backend is a pure function of
               (config, plan), so the prefetched result is the result the
               synchronous path would compute. Awaiting it (or stealing
               it, if no worker has started) is the only synchronous
               residue of this translation. *)
            Gb_obs.Sink.incr t.obs "workers.prefetch_hits";
            let br =
              Gb_obs.Sink.time t.obs "translate_await" (fun () ->
                  Workers.await pf.pf_future)
            in
            if Workers.stolen pf.pf_future then
              Gb_obs.Sink.incr t.obs "workers.stolen";
            br
          | Some _ ->
            (* plan drifted between submission and trigger (bias update,
               despeculation, guest code change): discard and redo *)
            Gb_obs.Sink.incr t.obs "workers.prefetch_stale";
            run_backend t p
          | None -> run_backend t p
        in
        commit t ~gen p br
    end

type region = {
  r_entry : int;
  r_tier : [ `Block | `Trace ];
  r_trace : Gb_vliw.Vinsn.trace;
  r_runs : int;
}

let regions t =
  let runs entry =
    Option.value ~default:0 (Hashtbl.find_opt t.region_runs entry)
  in
  List.sort
    (fun a b -> compare (b.r_runs, a.r_entry) (a.r_runs, b.r_entry))
    (List.map
       (fun e ->
         {
           r_entry = e.Code_cache.e_pc;
           r_tier =
             (match e.Code_cache.e_tier with
             | Code_cache.Block -> `Block
             | Code_cache.Trace -> `Trace);
           r_trace = e.Code_cache.e_trace;
           r_runs = runs e.Code_cache.e_pc;
         })
       (Code_cache.entries t.cc))

let record_block_entry t pc =
  let n = count t.hot pc + 1 in
  Hashtbl.replace t.hot pc n;
  if n >= t.cfg.hot_threshold
     && (not (has_trace t pc))
     && not (Hashtbl.mem t.blacklist pc)
  then ignore (translate t pc)
  else begin
    (match t.pool with
    | Some pool
      when n = max 1 (t.cfg.hot_threshold - prefetch_lookahead)
           && n < t.cfg.hot_threshold
           && (not (has_trace t pc))
           && (not (Hashtbl.mem t.blacklist pc))
           && not (Hashtbl.mem t.prefetch pc) ->
      submit_prefetch t pool pc
    | Some _ | None -> ());
    if n >= t.cfg.first_pass_threshold && n < t.cfg.hot_threshold then
      translate_first_pass t pc
  end

(* Lazy chaining, QEMU-style: after the dispatcher has handled a trace
   exit (and possibly translated the successor), patch the taken stub to
   transfer directly next time. Everything that makes this safe lives in
   {!Code_cache.link}: tier and mitigation-mode compatibility, and the
   stub's own target_pc having to equal the successor's entry — so a
   stale [info] (the source retranslated since the exit) cannot create a
   wrong edge. Rollback stubs are never linked: MCB recovery must
   re-enter the dispatcher-visible path. *)
let chain t (info : Gb_vliw.Pipeline.exit_info) =
  if info.Gb_vliw.Pipeline.kind <> Gb_vliw.Pipeline.Rollback then
    match
      ( Code_cache.peek t.cc info.Gb_vliw.Pipeline.exit_entry,
        Code_cache.peek t.cc info.Gb_vliw.Pipeline.next_pc )
    with
    | Some src, Some dst ->
      ignore
        (Code_cache.link t.cc ~src ~stub:info.Gb_vliw.Pipeline.taken_stub ~dst)
    | _ -> ()

let chained_successor t (info : Gb_vliw.Pipeline.exit_info) =
  match
    ( Code_cache.peek t.cc info.Gb_vliw.Pipeline.exit_entry,
      Code_cache.find t.cc info.Gb_vliw.Pipeline.next_pc )
  with
  | Some src, Some dst when Code_cache.compatible ~src ~dst ->
    Some dst.Code_cache.e_trace
  | _ -> None
