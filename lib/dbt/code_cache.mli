(** The bounded code cache: the single owner of all translated code.

    Real DBT processors (Transmeta Crusoe, NVidia Denver) run translated
    code out of a fixed-size region of host memory, evict translations
    under pressure and link hot traces directly to each other so
    steady-state execution never returns to the dispatcher. This module
    models that: both tiers of translation (first-pass {!Block}s and
    optimized {!Trace}s) live in one table under a capacity budget
    counted in VLIW bundles, evicted LRU, with a generation counter per
    installed entry.

    It is also the only component allowed to patch {!Gb_vliw.Vinsn.stub}
    chain links (trace chaining), because it alone knows which
    translations are currently installed and under which mitigation mode
    they were produced. The invariant it maintains — checkable with
    {!well_linked} — is:

    {e every chain link in every installed trace points at the currently
    installed, mitigation-compatible translation of the stub's own
    [target_pc].}

    Eviction, invalidation and replacement all sever the affected links
    (in both directions) before the entry is dropped, so the pipeline can
    never chain into evicted or stale code.

    {1 Domain safety}

    Every public operation takes the cache's internal mutex, so installs,
    lookups, links and invalidations may race from any domain. The
    installation protocol for code produced off the owning domain is
    generation-tagged: capture {!generation} when the translation is
    planned, then {!insert_tagged} with it — the install is refused
    ([None]) if the pc was invalidated after that generation, so a
    translation planned against state that has since been invalidated can
    never resurrect stale code. See docs/CONCURRENCY.md. *)

type tier =
  | Block  (** first-pass, one-op-per-bundle, non-speculative *)
  | Trace  (** optimized trace from the full mitigation pipeline *)

(** The speculation discipline a translation was produced under, used to
    decide whether a chained transfer may bypass the dispatcher. *)
type code_mode =
  | Nonspec
      (** contains no speculative loads (first-pass blocks, adaptively
          de-speculated traces) — mode-neutral, chains from/to anything *)
  | Mitigated of Gb_core.Mitigation.mode
      (** speculates under the given GhostBusters mode; two speculating
          translations chain only when their modes are equal *)

type entry = {
  e_pc : int;  (** guest entry pc *)
  e_trace : Gb_vliw.Vinsn.trace;
  e_tier : tier;
  e_mode : code_mode;
  e_gen : int;
      (** generation counter, unique across the cache's lifetime; a
          re-translation of the same pc gets a fresh generation *)
  mutable e_stamp : int;  (** LRU stamp, maintained by {!find}/{!insert} *)
}

type config = {
  capacity : int;
      (** capacity budget in VLIW bundles across both tiers. The budget
          may be exceeded transiently by a single entry larger than the
          whole budget (it still installs, alone). *)
  chain : bool;  (** allow {!link} to patch stubs at all *)
}

val default_config : config
(** Capacity 65536 bundles (large enough that the tier-1 suite never
    evicts); chaining on unless the [GHOSTBUSTERS_NO_CHAIN] environment
    variable is set (used by CI to run the whole suite dispatcher-only). *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable inserts : int;
  mutable evictions : int;  (** capacity evictions only, not replacements *)
  mutable chain_links : int;
  mutable chain_breaks : int;
}

type t

val create : ?obs:Gb_obs.Sink.t -> config -> t
(** [obs] (default {!Gb_obs.Sink.noop}) receives the [code_cache.*]
    counters ([hits], [misses], [evictions], [chain_links],
    [chain_breaks]), the [code_cache.bundles]/[code_cache.entries]
    gauges and {!Gb_obs.Event.Chain} / eviction events. *)

val config : t -> config

val stats : t -> stats

val set_on_evict : t -> (pc:int -> tier -> unit) -> unit
(** Hook fired for every {e capacity} eviction (not for explicit
    {!invalidate} or same-pc replacement). The engine uses it to reset
    the region's adaptive run/rollback/side-exit counters so a
    re-promoted region does not inherit stale adaptive state. *)

val find : t -> int -> entry option
(** Installed entry at a guest pc; counts a hit or miss and refreshes the
    LRU stamp. *)

val peek : t -> int -> entry option
(** Like {!find} but touches neither statistics nor recency. *)

val insert : t -> pc:int -> tier:tier -> mode:code_mode -> Gb_vliw.Vinsn.trace -> entry
(** Install a translation, evicting LRU entries until it fits. An
    existing entry at the same pc (tier promotion, retranslation) is
    replaced: unlinked and freed, but neither counted as an eviction nor
    reported to the [on_evict] hook. *)

val generation : t -> int
(** The cache-wide mutation generation: bumped by every install {e and}
    every removal (invalidation, eviction, same-pc replacement). Capture
    it before planning a translation off-path; pass it to
    {!insert_tagged}. *)

val insert_tagged :
  t ->
  gen:int ->
  pc:int ->
  tier:tier ->
  mode:code_mode ->
  Gb_vliw.Vinsn.trace ->
  entry option
(** Like {!insert}, but refuses ([None], installing nothing) when the pc
    was invalidated, evicted or replaced {e after} generation [gen] —
    i.e. when the state the translation was planned against is no longer
    current. The check and the install are one atomic step under the
    cache lock. *)

val invalidate : t -> int -> unit
(** Drop the entry at a pc, severing its chain links in both directions.
    No-op when absent; never fires the [on_evict] hook — this is the API
    adaptive retranslate/despec route through deliberately, because they
    manage their own counter resets. *)

val compatible : src:entry -> dst:entry -> bool
(** Whether [src] may transfer into [dst] without a dispatcher visit:
    non-speculative code is mode-neutral (it neither leaks speculative
    state of its own nor inherits any — the MCB is cleared and the
    audit's run window closed at every stub commit), so it chains from
    and to anything; two speculating translations must agree on their
    mitigation mode. *)

val link : t -> src:entry -> stub:int -> dst:entry -> bool
(** [link t ~src ~stub ~dst] patches stub [stub] of [src] to transfer
    directly into [dst], provided chaining is enabled, [dst]'s mode is
    compatible with [src]'s, and the stub's own [target_pc] equals
    [dst.e_pc] (a hard correctness requirement — it makes a stale caller
    unable to create a wrong-control-flow edge). Both tiers participate;
    the processor keeps block hot counters ticking by recording an entry
    on every chained transfer, so chained-into blocks still promote.
    Both endpoints are re-checked for liveness under the cache lock:
    if either was invalidated or replaced since the caller looked it up
    (a cross-domain race), the link is refused rather than planting a
    chain into dead code that no removal could ever break.
    Returns whether the link is in place afterwards; re-linking an
    already-linked stub is true and costless. *)

val used_bundles : t -> int

val entries : t -> entry list
(** All installed entries, unordered. *)

val occupancy : t -> tier -> int * int
(** [(live entries, live bundles)] of one tier. *)

val well_linked : t -> bool
(** The chaining invariant above: every chain link of every installed
    entry targets the currently installed trace object at its pc. Test
    hook; O(installed code). *)
