(* A hand-rolled domain pool (no external dependency): one global queue
   of packed jobs, worker domains blocked on a condition variable, and
   work-stealing futures so that awaiting never deadlocks and a full
   queue degrades to inline execution. *)

type pool = {
  m : Mutex.t;
  nonempty : Condition.t;  (* signalled when a job is enqueued *)
  completed : Condition.t;  (* broadcast when any job finishes *)
  queue : job Queue.t;
  queue_cap : int;
  mutable domains : unit Domain.t list;
  mutable shutdown : bool;
}

and job = Job : 'a future -> job

and 'a future = {
  fpool : pool;
  run : unit -> 'a;
  mutable st : 'a state;
  mutable was_stolen : bool;
}

(* Queued: still in the queue, claimable by a worker or a stealing
   awaiter. Claimed: some domain is running it. The queue may retain a
   Job whose future was already claimed by a stealer; workers skip it. *)
and 'a state = Queued | Claimed | Done of ('a, exn) result

let finish (type a) p (f : a future) (r : (a, exn) result) =
  Mutex.lock p.m;
  f.st <- Done r;
  Condition.broadcast p.completed;
  Mutex.unlock p.m

let worker_loop p =
  let rec next () =
    (* invariant: p.m held here *)
    if p.shutdown then Mutex.unlock p.m
    else
      match Queue.take_opt p.queue with
      | None ->
        Condition.wait p.nonempty p.m;
        next ()
      | Some (Job f) -> (
        match f.st with
        | Claimed | Done _ -> next () (* stolen while queued; skip *)
        | Queued ->
          f.st <- Claimed;
          Mutex.unlock p.m;
          let r = try Ok (f.run ()) with e -> Error e in
          finish p f r;
          Mutex.lock p.m;
          next ())
  in
  Mutex.lock p.m;
  next ()

let max_workers = 16

(* Leave one hardware thread for the owner domain: spawning more
   domains than cores is never faster under OCaml 5's stop-the-world
   minor collections (every domain must reach a safepoint for each
   minor GC, so oversubscription turns collections into scheduling
   stalls). Pool size only affects host wall-clock, never simulated
   results, so clamping here is invisible to every caller. *)
let hw_cap = lazy (max 1 (Domain.recommended_domain_count () - 1))

(* No second hardware thread: fanning out cannot overlap anything and
   every domain still pays the cross-domain GC synchronisation. *)
let single_core = lazy (Domain.recommended_domain_count () <= 1)

let spawn p n =
  p.domains <-
    List.init n (fun _ -> Domain.spawn (fun () -> worker_loop p)) @ p.domains

let shutdown_pool p =
  Mutex.lock p.m;
  p.shutdown <- true;
  Condition.broadcast p.nonempty;
  Mutex.unlock p.m;
  List.iter Domain.join p.domains;
  p.domains <- []

let global : pool option ref = ref None

let global_m = Mutex.create ()

let ensure n =
  let n = max 1 (min n (min max_workers (Lazy.force hw_cap))) in
  Mutex.lock global_m;
  let p =
    match !global with
    | Some p ->
      let cur = List.length p.domains in
      if cur < n then spawn p (n - cur);
      p
    | None ->
      let p =
        {
          m = Mutex.create ();
          nonempty = Condition.create ();
          completed = Condition.create ();
          queue = Queue.create ();
          queue_cap = 256;
          domains = [];
          shutdown = false;
        }
      in
      spawn p n;
      global := Some p;
      at_exit (fun () -> shutdown_pool p);
      p
  in
  Mutex.unlock global_m;
  p

let available () = not (Lazy.force single_core)

let env_default () =
  match Sys.getenv_opt "GHOSTBUSTERS_WORKERS" with
  | None -> 0
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 0 -> n
    | Some _ | None -> 0)

(* Jobs still claimable from the queue. Stealers leave their stale
   [Job] behind (Queue.t has no mid-queue removal), so [Queue.length]
   overcounts; the fold is O(cap) and the cap is small. Lock held. *)
let live_count p =
  Queue.fold
    (fun acc (Job f) ->
      match f.st with Queued -> acc + 1 | Claimed | Done _ -> acc)
    0 p.queue

let enqueue p run =
  let f = { fpool = p; run; st = Queued; was_stolen = false } in
  Queue.add (Job f) p.queue;
  Condition.signal p.nonempty;
  f

let try_submit p run =
  Mutex.lock p.m;
  if live_count p >= p.queue_cap then begin
    Mutex.unlock p.m;
    None
  end
  else begin
    let f = enqueue p run in
    Mutex.unlock p.m;
    Some f
  end

let submit p run =
  Mutex.lock p.m;
  let f = enqueue p run in
  Mutex.unlock p.m;
  f

let await f =
  let p = f.fpool in
  Mutex.lock p.m;
  (match f.st with
  | Queued ->
    (* steal: run it right here; the queue's stale Job is skipped *)
    f.st <- Claimed;
    f.was_stolen <- true;
    Mutex.unlock p.m;
    let r = try Ok (f.run ()) with e -> Error e in
    finish p f r;
    Mutex.lock p.m
  | Claimed | Done _ -> ());
  let rec wait () =
    match f.st with
    | Done r ->
      Mutex.unlock p.m;
      (match r with Ok v -> v | Error e -> raise e)
    | Queued | Claimed ->
      Condition.wait p.completed p.m;
      wait ()
  in
  wait ()

let stolen f = f.was_stolen

let map p f xs =
  if Lazy.force single_core then List.map f xs
  else
    let futures = List.map (fun x -> submit p (fun () -> f x)) xs in
    List.map await futures

let queue_depth p =
  Mutex.lock p.m;
  let n = live_count p in
  Mutex.unlock p.m;
  n

let size p = List.length p.domains
