(** List scheduler: place DFG nodes into VLIW bundles respecting every
    dependency edge (with its latency) and the machine's resource
    constraints. Priority is the critical-path distance to the end of the
    trace. *)

type resources = {
  width : int;  (** issue slots per bundle *)
  mem_slots : int;  (** memory operations per bundle *)
  mul_slots : int;  (** multiplier/divider operations per bundle *)
  branch_slots : int;  (** control operations per bundle *)
}

val default_resources : resources
(** 4-wide, 1 memory port, 1 multiplier, 1 control slot — the Hybrid-DBT
    VLIW configuration. *)

type cls = Alu_class | Mem_class | Mul_class | Branch_class

val classify : Gb_ir.Dfg.kind -> cls

exception Cyclic
(** The graph has a dependency cycle (an IR construction bug). *)

val schedule :
  ?obs:Gb_obs.Sink.t ->
  resources ->
  lat:Gb_ir.Latency.t ->
  Gb_ir.Dfg.t ->
  int array
(** [schedule r ~lat g] returns the issue cycle of every node. For every
    edge (u, v, l): [cycle.(v) >= cycle.(u) + l] (property-tested).
    [obs] (default {!Gb_obs.Sink.noop}) receives [sched.nodes] and
    [sched.schedule_cycles] histograms per scheduled graph. *)
