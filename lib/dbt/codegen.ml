exception Out_of_registers

let produces_value = function
  | Gb_ir.Dfg.Kalu _ | Gb_ir.Dfg.Kload _ | Gb_ir.Dfg.Krdcycle -> true
  | Gb_ir.Dfg.Kstore _ | Gb_ir.Dfg.Kbranch _ | Gb_ir.Dfg.Kchk _
  | Gb_ir.Dfg.Kexit | Gb_ir.Dfg.Kcflush | Gb_ir.Dfg.Kfence ->
    false

(* Last cycle at which each node's value is read: by consumers' sources or
   by exit stubs (commit maps are read when the exit is taken). *)
let last_uses g cycles =
  let n = Gb_ir.Dfg.n_nodes g in
  let last = Array.make n (-1) in
  let use id at = if at > last.(id) then last.(id) <- at in
  Gb_ir.Dfg.iter_nodes g (fun node ->
      let at = cycles.(node.Gb_ir.Dfg.id) in
      Array.iter
        (fun v ->
          match v with
          | Gb_ir.Dfg.Node src -> use src at
          | Gb_ir.Dfg.Reg_in _ | Gb_ir.Dfg.Imm _ -> ())
        node.Gb_ir.Dfg.srcs;
      List.iter
        (fun (_, v) ->
          match v with
          | Gb_ir.Dfg.Node src -> use src at
          | Gb_ir.Dfg.Reg_in _ | Gb_ir.Dfg.Imm _ -> ())
        node.Gb_ir.Dfg.commit_map);
  last

(* Linear-scan allocation of hidden registers over issue cycles. A hidden
   register freed at cycle [u] can be redefined at any cycle >= u: the old
   value is read at the start of the cycle, the new write lands at its
   end. *)
let allocate_temps g cycles ~n_hidden =
  let n = Gb_ir.Dfg.n_nodes g in
  let last = last_uses g cycles in
  let temp = Array.make n (-1) in
  let by_cycle =
    List.sort
      (fun a b -> compare (cycles.(a), a) (cycles.(b), b))
      (List.init n (fun i -> i))
  in
  let free = ref [] in
  let next_fresh = ref 0 in
  let max_used = ref 0 in
  List.iter
    (fun id ->
      let node = Gb_ir.Dfg.node g id in
      if produces_value node.Gb_ir.Dfg.kind then begin
        let def_cycle = cycles.(id) in
        let reusable, still_busy =
          List.partition (fun (_, free_at) -> free_at <= def_cycle) !free
        in
        let t =
          match reusable with
          | (t, _) :: rest ->
            free := rest @ still_busy;
            t
          | [] ->
            free := still_busy;
            let t = !next_fresh in
            incr next_fresh;
            if t >= n_hidden then raise Out_of_registers;
            t
        in
        temp.(id) <- t;
        max_used := max !max_used (t + 1);
        let free_at = max last.(id) def_cycle in
        free := (t, free_at + 1) :: !free
      end)
    by_cycle;
  (temp, !max_used)

let emit res ~n_hidden ~cycles ~entry_pc ~guest_insns ~meta g =
  let open Gb_vliw.Vinsn in
  let temp, temps_used = allocate_temps g cycles ~n_hidden in
  let reg_of id = guest_regs + temp.(id) in
  let operand_of = function
    | Gb_ir.Dfg.Node id -> R (reg_of id)
    | Gb_ir.Dfg.Reg_in r -> R r
    | Gb_ir.Dfg.Imm v -> I v
  in
  (* exit stubs, indexed in node order *)
  let stub_index = Hashtbl.create 16 in
  let stubs = ref [] in
  let n_stubs = ref 0 in
  Gb_ir.Dfg.iter_nodes g (fun node ->
      if Gb_ir.Dfg.is_exit_like node.Gb_ir.Dfg.kind then begin
        let commits =
          List.filter_map
            (fun (r, v) ->
              match v with
              | Gb_ir.Dfg.Reg_in r' when r' = r -> None
              | v -> Some (r, operand_of v))
            node.Gb_ir.Dfg.commit_map
        in
        Hashtbl.add stub_index node.Gb_ir.Dfg.id !n_stubs;
        stubs :=
          make_stub ~exit_id:node.Gb_ir.Dfg.id ~commits
            ~target_pc:node.Gb_ir.Dfg.exit_pc ()
          :: !stubs;
        incr n_stubs
      end);
  let stubs = Array.of_list (List.rev !stubs) in
  let op_of node =
    let id = node.Gb_ir.Dfg.id in
    let src k = operand_of node.Gb_ir.Dfg.srcs.(k) in
    match node.Gb_ir.Dfg.kind with
    | Gb_ir.Dfg.Kalu op -> Alu { op; dst = reg_of id; a = src 0; b = src 1 }
    | Gb_ir.Dfg.Kload (w, unsigned, spec) ->
      Load
        {
          w;
          unsigned;
          dst = reg_of id;
          base = src 0;
          off = node.Gb_ir.Dfg.off;
          spec = spec.Gb_ir.Dfg.tag;
          id;
          pc = node.Gb_ir.Dfg.guest_pc;
          (* a constrained load is pinned below its guards: it executes
             architecturally, so it must not seed runtime/verifier taint
             (same definition as the engine's branch_spec_loads meta) *)
          hoisted =
            spec.Gb_ir.Dfg.spec_prev_branch <> None
            && not spec.Gb_ir.Dfg.constrained;
        }
    | Gb_ir.Dfg.Kstore w ->
      Store
        {
          w;
          src = src 0;
          base = src 1;
          off = node.Gb_ir.Dfg.off;
          id;
          pc = node.Gb_ir.Dfg.guest_pc;
        }
    | Gb_ir.Dfg.Kbranch cond ->
      Branch { cond; a = src 0; b = src 1; stub = Hashtbl.find stub_index id }
    | Gb_ir.Dfg.Kchk load_id -> (
      let load = Gb_ir.Dfg.node g load_id in
      match Gb_ir.Dfg.spec_of load with
      | Some { Gb_ir.Dfg.tag = Some tag; _ } ->
        Chk { tag; stub = Hashtbl.find stub_index id }
      | Some _ | None ->
        (* the guarded load was de-speculated by the mitigation: the
           check can never fire *)
        Nop)
    | Gb_ir.Dfg.Kexit -> Exit { stub = Hashtbl.find stub_index id }
    | Gb_ir.Dfg.Krdcycle -> Rdcycle { dst = reg_of id }
    | Gb_ir.Dfg.Kcflush ->
      Cflush
        { base = src 0; off = node.Gb_ir.Dfg.off; id; pc = node.Gb_ir.Dfg.guest_pc }
    | Gb_ir.Dfg.Kfence -> Fence
  in
  let n_cycles = 1 + Array.fold_left max 0 cycles in
  let slots_used = Array.make n_cycles 0 in
  let bundles = Array.init n_cycles (fun _ -> Array.make res.Sched.width Nop) in
  Gb_ir.Dfg.iter_nodes g (fun node ->
      let c = cycles.(node.Gb_ir.Dfg.id) in
      let slot = slots_used.(c) in
      if slot >= res.Sched.width then
        invalid_arg "Codegen.emit: over-full bundle (scheduler bug)";
      bundles.(c).(slot) <- op_of node;
      slots_used.(c) <- slot + 1);
  {
    entry_pc;
    bundles;
    stubs;
    n_regs = guest_regs + temps_used;
    guest_insns;
    meta;
  }
