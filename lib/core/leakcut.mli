(** BLADE-style minimum leak-cut placement over the trace DFG.

    Models transient leakage as an s-t flow problem: sources are
    speculative (unconstrained) loads, transmitters are the address
    operands of speculative memory accesses, and edge capacities are
    estimated stall costs from {!Gb_ir.Latency}. A minimum cut is the
    cheapest sound set of repairs severing every source→transmitter
    path; each cut edge is realized as targeted dependency re-insertion
    (the fine-grained machinery), an index mask on the address path, or
    a fence as a last resort. The emitted schedule is independently
    re-checked against the plan by {!Gb_verify.Verifier.check_cut}. *)

type repair_kind =
  | Dep_reinsert  (** re-insert the load's control/memory dependency *)
  | Mask  (** interpose a guard-pinned index mask on the address path *)
  | Fence  (** full barrier; last resort when a mask cannot anchor *)

val repair_kind_name : repair_kind -> string

type repair = {
  r_node : int;  (** DFG id of the load this repair protects *)
  r_pc : int;  (** its guest pc *)
  r_kind : repair_kind;
  r_cost : int;  (** capacity of the cut edge (estimated stall cycles) *)
  r_realized : bool;  (** false until {!apply} materializes it *)
}

type plan = {
  sources : int;  (** speculative loads feeding the network *)
  transmitters : int;  (** cuttable speculative address edges *)
  max_flow : int;  (** min-cut weight = total estimated repair cost *)
  repairs : repair list;  (** the cut, ascending node id *)
  dep_reinserts : int;
  masks : int;
  fences : int;
  mask_nodes : int list;  (** DFG ids of materialized mask ALU nodes *)
}

val empty_plan : plan

val analyze : lat:Gb_ir.Latency.t -> Gb_ir.Dfg.t -> plan
(** Build the network, run max-flow/min-cut and return the repair plan
    without mutating the graph (all [r_realized] = false). *)

val mask_load : Gb_ir.Dfg.t -> lat:Gb_ir.Latency.t -> int -> int
(** Materialize the index-mask repair for the speculative load at the
    given node id: appends an identity AND node pinned below the load's
    guards, makes the load depend on it, drops the MCB tag and marks the
    load constrained. Returns the mask node's id. *)

val apply :
  ?unsound:bool ->
  lat:Gb_ir.Latency.t ->
  constrain:(int -> unit) ->
  fence:(int -> unit) ->
  Gb_ir.Dfg.t ->
  plan
(** {!analyze}, then realize every repair: [constrain] for
    [Dep_reinsert] (the caller passes the fine-grained machinery),
    {!mask_load} for [Mask], [fence] for [Fence]. [unsound] (default
    false) deliberately leaves the first repair unrealized while keeping
    it in the plan — the sensitivity control the cut-soundness verifier
    pass must reject, mirroring the diff oracle's mcb-suppress
    control. *)

val pp_plan : Format.formatter -> plan -> unit

val plan_to_json : plan -> Gb_util.Json.t
