(* BLADE-style minimum leak-cut placement (Vassena et al., wasmtime's
   BLADE mode): instead of repairing each detected pattern locally, view
   transient leakage as a flow problem over the trace DFG —

     sources       = speculative (unconstrained, hoistable) loads, whose
                     results are transient values;
     transmitters  = address operands of speculative memory accesses: a
                     speculative load whose address derives from a
                     transient value imprints it on the cache.

   Every source→transmitter path must be severed. The cheapest sound set
   of severing points is a minimum s-t cut, with two repair primitives as
   cuttable edges (capacities = estimated stall cost from
   {!Gb_ir.Latency}):

     - cut at the source (capacity [lat.load]): re-insert the load's
       control/memory dependency — the fine-grained machinery — so its
       result is never transient;
     - cut at the transmitter (capacity [lat.alu]): interpose an
       index-mask ALU op on the address path ("Software Mitigation of
       RISC-V Spectre Attacks"-style masking) that is itself pinned below
       the load's guards, so the protected load waits for resolution.

   Stores, commits, cflushes and chain targets are *structurally* safe in
   this IR — stores and barriers are pinned behind the previous exit-like
   node at build time, commit maps only apply once their exit resolves,
   and chain targets are constants — so they appear in the network only
   as zero-cost facts; the cut-soundness verifier pass
   ({!Gb_verify.Verifier.check_cut}) re-checks those placement facts and
   every residual path on the emitted schedule, Venkman-style. *)

module Dfg = Gb_ir.Dfg

type repair_kind = Dep_reinsert | Mask | Fence

let repair_kind_name = function
  | Dep_reinsert -> "dep-reinsert"
  | Mask -> "mask"
  | Fence -> "fence"

type repair = {
  r_node : int;
  r_pc : int;
  r_kind : repair_kind;
  r_cost : int;
  r_realized : bool;
}

type plan = {
  sources : int;
  transmitters : int;
  max_flow : int;
  repairs : repair list;
  dep_reinserts : int;
  masks : int;
  fences : int;
  mask_nodes : int list;
}

let empty_plan =
  {
    sources = 0;
    transmitters = 0;
    max_flow = 0;
    repairs = [];
    dep_reinserts = 0;
    masks = 0;
    fences = 0;
    mask_nodes = [];
  }

(* ---- flow network ---------------------------------------------------- *)

(* Which repair cutting a finite-capacity edge corresponds to. Reverse
   (residual) edges and infinite propagation edges carry [Tplain]. *)
type tag = Tplain | Tconstrain of int | Tmask of int

type fedge = { dst : int; mutable cap : int; rev : int; tag : tag }

type network = {
  adj : fedge array array;  (** adjacency, frozen after construction *)
  n_vertices : int;
}

(* Vertex layout: 0 = S, 1 = T, then value/address vertex pair per DFG
   node. Splitting a speculative load into an address vertex (taint
   arriving AT its address operand) and a value vertex (taint LEAVING in
   its result) keeps "constrain the load" and "mask its address"
   distinct cut edges. *)
let s_vertex = 0

let t_vertex = 1

let val_vertex id = 2 + (2 * id)

let addr_vertex id = 3 + (2 * id)

let infinite = max_int / 4

let build_network ~(lat : Gb_ir.Latency.t) g =
  let n = Dfg.n_nodes g in
  let buckets = Array.make (2 + (2 * n)) [] in
  (* paired with its reverse edge so the residual graph is implicit *)
  let add_edge u v cap tag =
    let iu = List.length buckets.(u) and iv = List.length buckets.(v) in
    buckets.(u) <- buckets.(u) @ [ { dst = v; cap; rev = iv; tag } ];
    buckets.(v) <- buckets.(v) @ [ { dst = u; cap = 0; rev = iu; tag = Tplain } ]
  in
  let constrain_cost = Gb_ir.Build.latency_of lat in
  let sources = ref 0 and transmitters = ref 0 in
  Dfg.iter_nodes g (fun node ->
      let id = node.Dfg.id in
      let propagate_srcs () =
        Array.iter
          (fun v ->
            match v with
            | Dfg.Node u -> add_edge (val_vertex u) (val_vertex id) infinite Tplain
            | Dfg.Reg_in _ | Dfg.Imm _ -> ())
          node.Dfg.srcs
      in
      match node.Dfg.kind with
      | Dfg.Kalu _ -> propagate_srcs ()
      | Dfg.Kload _ ->
        (* value propagation is a FACT, not a cut candidate: in the
           poisoning model a loaded value inherits its inputs' poison
           whether or not the load is constrained or masked — repairs
           only remove the load's *own* speculation. Routing src poison
           around a cuttable edge here would let the cut "cleanse" a
           value mid-chain, which no repair primitive can do. *)
        propagate_srcs ();
        if Dfg.is_speculative node then begin
          incr sources;
          (* source: the load's transient result, cuttable by
             re-inserting its dependency *)
          add_edge s_vertex (val_vertex id)
            (constrain_cost node.Dfg.kind)
            (Tconstrain id);
          (* transmitter: poison arriving at the address of a load that
             can still issue transiently. The ingress is infinite (again
             a propagation fact); the cuttable edge is the load's own
             speculation — the mask repair pins it below its guards. *)
          match node.Dfg.srcs.(0) with
          | Dfg.Node u ->
            incr transmitters;
            add_edge (val_vertex u) (addr_vertex id) infinite Tplain;
            add_edge (addr_vertex id) t_vertex lat.Gb_ir.Latency.alu
              (Tmask id)
          | Dfg.Reg_in _ | Dfg.Imm _ -> ()
        end
      | Dfg.Kstore _ | Dfg.Kbranch _ | Dfg.Kchk _ | Dfg.Kexit
      | Dfg.Krdcycle | Dfg.Kcflush | Dfg.Kfence ->
        (* pinned / exit-like: structurally unable to transmit
           transiently (see header); no network edges *)
        ());
  ( { adj = Array.map Array.of_list buckets; n_vertices = 2 + (2 * n) },
    !sources,
    !transmitters )

(* Edmonds-Karp: BFS for the shortest augmenting path until none
   remains. Networks here are tiny (two vertices per DFG node), so the
   O(V·E²) bound is irrelevant. *)
let max_flow net =
  let parent = Array.make net.n_vertices (-1, -1) in
  let rec augment total =
    Array.fill parent 0 net.n_vertices (-1, -1);
    parent.(s_vertex) <- (s_vertex, -1);
    let q = Queue.create () in
    Queue.add s_vertex q;
    let reached_t = ref false in
    while (not !reached_t) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      Array.iteri
        (fun i e ->
          if e.cap > 0 && fst parent.(e.dst) = -1 then begin
            parent.(e.dst) <- (u, i);
            if e.dst = t_vertex then reached_t := true
            else Queue.add e.dst q
          end)
        net.adj.(u)
    done;
    if not !reached_t then total
    else begin
      (* bottleneck along the recorded path, then push *)
      let rec bottleneck v acc =
        if v = s_vertex then acc
        else
          let u, i = parent.(v) in
          bottleneck u (min acc net.adj.(u).(i).cap)
      in
      let f = bottleneck t_vertex infinite in
      let rec push v =
        if v <> s_vertex then begin
          let u, i = parent.(v) in
          let e = net.adj.(u).(i) in
          e.cap <- e.cap - f;
          net.adj.(e.dst).(e.rev).cap <- net.adj.(e.dst).(e.rev).cap + f;
          push u
        end
      in
      push t_vertex;
      augment (total + f)
    end
  in
  augment 0

(* Residual reachability from S: the min cut is every tagged edge from a
   reachable vertex into an unreachable one (all such edges are
   saturated, and their capacities sum to the max flow). *)
let min_cut net =
  let reachable = Array.make net.n_vertices false in
  reachable.(s_vertex) <- true;
  let q = Queue.create () in
  Queue.add s_vertex q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun e ->
        if e.cap > 0 && not reachable.(e.dst) then begin
          reachable.(e.dst) <- true;
          Queue.add e.dst q
        end)
      net.adj.(u)
  done;
  let cut = ref [] in
  Array.iteri
    (fun u edges ->
      if reachable.(u) then
        Array.iter
          (fun e ->
            if (not reachable.(e.dst)) && e.tag <> Tplain then
              cut := e.tag :: !cut)
          edges)
    net.adj;
  !cut

(* ---- analysis -------------------------------------------------------- *)

let analyze ~lat g =
  let net, sources, transmitters = build_network ~lat g in
  let flow = max_flow net in
  let cut = min_cut net in
  (* constraining a load pins it entirely: it stops being a source AND a
     transmitter, so a Dep_reinsert subsumes a Mask of the same node *)
  let constrained =
    List.filter_map (function Tconstrain id -> Some id | _ -> None) cut
  in
  let repair_of tag =
    match tag with
    | Tconstrain id ->
      Some
        {
          r_node = id;
          r_pc = (Dfg.node g id).Dfg.guest_pc;
          r_kind = Dep_reinsert;
          r_cost = Gb_ir.Build.latency_of lat (Dfg.node g id).Dfg.kind;
          r_realized = false;
        }
    | Tmask id when not (List.mem id constrained) ->
      Some
        {
          r_node = id;
          r_pc = (Dfg.node g id).Dfg.guest_pc;
          r_kind = Mask;
          r_cost = lat.Gb_ir.Latency.alu;
          r_realized = false;
        }
    | Tmask _ | Tplain -> None
  in
  let repairs =
    List.filter_map repair_of cut
    |> List.sort (fun a b -> compare a.r_node b.r_node)
  in
  {
    empty_plan with
    sources;
    transmitters;
    max_flow = flow;
    repairs;
  }

(* ---- realization ----------------------------------------------------- *)

(* Interpose the index mask: an AND-with-all-ones ALU node on the address
   path (semantically the identity, so the differential oracle is
   unaffected) that is pinned below the load's guards; the load then
   depends on it, so the protected access can never issue transiently.
   The load's MCB tag is dropped (its chk becomes a dead check) and it is
   marked constrained so the poisoning analysis, the code generator's
   hoisted flag and the scheduler all see a de-speculated load.

   The mask node is appended after every original node, but all its data
   sources point at earlier ids, preserving the DFG's ordering invariant
   for the ascending-id poisoning pass. *)
let mask_load g ~(lat : Gb_ir.Latency.t) id =
  let node = Dfg.node g id in
  match Dfg.spec_of node with
  | None -> invalid_arg "Leakcut.mask_load: not a load"
  | Some spec ->
    let base = node.Dfg.srcs.(0) in
    let m =
      Dfg.add_node g
        ~kind:(Dfg.Kalu Gb_riscv.Insn.AND)
        ~srcs:[| base; Dfg.Imm (-1L) |]
        ~guest_pc:node.Dfg.guest_pc ()
    in
    (match base with
    | Dfg.Node u ->
      Dfg.add_edge g ~from:u ~to_:m
        ~lat:(Gb_ir.Build.latency_of lat (Dfg.node g u).Dfg.kind)
        ~kind:Dfg.Edata
    | Dfg.Reg_in _ | Dfg.Imm _ -> ());
    (match spec.Dfg.spec_prev_store with
    | Some store ->
      Dfg.add_edge g ~from:store ~to_:m ~lat:1 ~kind:Dfg.Emem
    | None -> ());
    (match spec.Dfg.spec_prev_branch with
    | Some branch ->
      Dfg.add_edge g ~from:branch ~to_:m ~lat:1 ~kind:Dfg.Ectrl
    | None -> ());
    Dfg.add_edge g ~from:m ~to_:id ~lat:lat.Gb_ir.Latency.alu ~kind:Dfg.Edata;
    spec.Dfg.tag <- None;
    spec.Dfg.constrained <- true;
    m

let apply ?(unsound = false) ~lat ~constrain ~fence g =
  let plan = analyze ~lat g in
  let dep = ref 0 and masks = ref 0 and fences = ref 0 in
  let mask_nodes = ref [] in
  let realize i r =
    if unsound && i = 0 then r  (* sensitivity control: leave one cut
                                    edge unrealized; check_cut must
                                    reject the resulting schedule *)
    else
      match r.r_kind with
      | Dep_reinsert ->
        constrain r.r_node;
        incr dep;
        { r with r_realized = true }
      | Mask ->
        let spec_anchored =
          match Dfg.spec_of (Dfg.node g r.r_node) with
          | Some s ->
            s.Dfg.spec_prev_store <> None || s.Dfg.spec_prev_branch <> None
          | None -> false
        in
        if spec_anchored then begin
          mask_nodes := mask_load g ~lat r.r_node :: !mask_nodes;
          incr masks;
          { r with r_realized = true }
        end
        else begin
          (* no guard to anchor the mask on: fall back to a full fence,
             the last-resort repair (unreachable for graphs the builder
             produces — speculative loads always record a guard) *)
          fence r.r_node;
          incr fences;
          { r with r_kind = Fence; r_realized = true }
        end
      | Fence ->
        fence r.r_node;
        incr fences;
        { r with r_realized = true }
  in
  let repairs = List.mapi realize plan.repairs in
  {
    plan with
    repairs;
    dep_reinserts = !dep;
    masks = !masks;
    fences = !fences;
    mask_nodes = List.rev !mask_nodes;
  }

let pp_plan ppf p =
  Format.fprintf ppf
    "@[<v>leak-cut: %d source(s), %d transmitter edge(s), min cut %d@,"
    p.sources p.transmitters p.max_flow;
  List.iter
    (fun r ->
      Format.fprintf ppf "  %s n%d pc=0x%x cost=%d%s@,"
        (repair_kind_name r.r_kind) r.r_node r.r_pc r.r_cost
        (if r.r_realized then "" else "  UNREALIZED"))
    p.repairs;
  Format.fprintf ppf "%d dep-reinsert(s), %d mask(s), %d fence(s)@]"
    p.dep_reinserts p.masks p.fences

let plan_to_json p =
  let module J = Gb_util.Json in
  J.Obj
    [
      ("sources", J.Int p.sources);
      ("transmitters", J.Int p.transmitters);
      ("max_flow", J.Int p.max_flow);
      ( "repairs",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("node", J.Int r.r_node);
                   ("pc", J.Int r.r_pc);
                   ("kind", J.String (repair_kind_name r.r_kind));
                   ("cost", J.Int r.r_cost);
                   ("realized", J.Bool r.r_realized);
                 ])
             p.repairs) );
      ("dep_reinserts", J.Int p.dep_reinserts);
      ("masks", J.Int p.masks);
      ("fences", J.Int p.fences);
    ]
