(** The countermeasure (Section IV-B): constrain the schedule so detected
    Spectre patterns cannot leak.

    Four modes are evaluated in the paper, plus one drawn from the
    related work:
    - [Unsafe]: no countermeasure (the baseline of Figure 4);
    - [Fine_grained]: the paper's contribution — for each detected
      pattern, re-insert only the control/memory dependency of the leaking
      load (the red dashed edge of Figure 3-C);
    - [Fence_on_detect]: insert a full scheduling barrier in front of each
      detected pattern (the OO7-style fence the paper compares against);
    - [Min_cut]: BLADE-style global protect placement ({!Leakcut}) — a
      minimum cut of the source→transmitter flow network over the DFG,
      realized as targeted dependency re-insertion, index masks, or (last
      resort) fences; checked against the emitted schedule by
      {!Gb_verify.Verifier.check_cut};
    - [No_speculation]: turn speculation off entirely in the optimizer
      (handled upstream via {!Gb_ir.Opt_config.no_speculation}; applying
      it here is a no-op). *)

type mode = Unsafe | Fine_grained | Fence_on_detect | Min_cut | No_speculation

val mode_name : mode -> string

val all_modes : mode list

val opt_of_mode : mode -> Gb_ir.Opt_config.t
(** Speculation switches the optimizer should run with under each mode. *)

type report = {
  patterns_found : int;  (** Spectre patterns detected (over all rounds) *)
  loads_constrained : int;
  fences_inserted : int;
  rounds : int;  (** analyze/constrain iterations until fixpoint *)
  flagged_pcs : int list;
      (** distinct guest pcs of the flagged loads, sorted — a pc
          re-flagged across fixpoint rounds (or shared by unrolled nodes)
          appears once (consumed by the leakage audit and the gadget
          scanner's scoring) *)
  cut_plan : Leakcut.plan option;
      (** [Some plan] iff [mode = Min_cut]: the realized leak-cut, which
          the engine hands to {!Gb_verify.Verifier.check_cut} whenever
          install-time verification is on *)
}

val empty_report : report

val apply :
  ?obs:Gb_obs.Sink.t ->
  ?unsound_cut:bool ->
  mode ->
  lat:Gb_ir.Latency.t ->
  Gb_ir.Dfg.t ->
  report
(** Run the poisoning analysis to fixpoint, constraining every detected
    pattern according to [mode]. After this returns, re-running
    {!Poison.analyze} finds no pattern (verified by property tests).
    [obs] (default {!Gb_obs.Sink.noop}) receives [mitigation.*] counters,
    one {!Gb_obs.Event.Poison_flagged} event per flagged load (pc = the
    load's guest pc) and a {!Gb_obs.Event.Mitigation_applied} summary.
    [unsound_cut] (default false, [Min_cut] only) forwards
    {!Leakcut.apply}'s sensitivity control: the first cut repair is left
    unrealized so the cut-soundness verifier pass can prove it notices. *)
