type mode = Unsafe | Fine_grained | Fence_on_detect | Min_cut | No_speculation

let mode_name = function
  | Unsafe -> "unsafe"
  | Fine_grained -> "fine-grained"
  | Fence_on_detect -> "fence-on-detect"
  | Min_cut -> "min-cut"
  | No_speculation -> "no-speculation"

let all_modes =
  [ Unsafe; Fine_grained; Fence_on_detect; Min_cut; No_speculation ]

let opt_of_mode = function
  | Unsafe | Fine_grained | Fence_on_detect | Min_cut ->
    Gb_ir.Opt_config.aggressive
  | No_speculation -> Gb_ir.Opt_config.no_speculation

type report = {
  patterns_found : int;
  loads_constrained : int;
  fences_inserted : int;
  rounds : int;
  flagged_pcs : int list;
  cut_plan : Leakcut.plan option;
}

let empty_report =
  {
    patterns_found = 0;
    loads_constrained = 0;
    fences_inserted = 0;
    rounds = 0;
    flagged_pcs = [];
    cut_plan = None;
  }

(* De-speculate one load: restore the dependencies the optimizer removed
   and drop its MCB tag (its chk becomes a dead check that never fires). *)
let constrain_load g id =
  let node = Gb_ir.Dfg.node g id in
  match Gb_ir.Dfg.spec_of node with
  | None -> invalid_arg "constrain_load: not a load"
  | Some spec ->
    (match spec.Gb_ir.Dfg.spec_prev_store with
    | Some store ->
      Gb_ir.Dfg.add_edge g ~from:store ~to_:id ~lat:1 ~kind:Gb_ir.Dfg.Emem
    | None -> ());
    (match spec.Gb_ir.Dfg.spec_prev_branch with
    | Some branch ->
      Gb_ir.Dfg.add_edge g ~from:branch ~to_:id ~lat:1 ~kind:Gb_ir.Dfg.Ectrl
    | None -> ());
    spec.Gb_ir.Dfg.tag <- None;
    spec.Gb_ir.Dfg.constrained <- true

(* Insert a full barrier immediately before node [id]: everything with a
   smaller (original) id completes first; nothing at or after [id] may be
   scheduled before the fence. *)
let insert_fence g ~lat id =
  let boundary = id in
  let fence =
    Gb_ir.Dfg.add_node g ~kind:Gb_ir.Dfg.Kfence ~srcs:[||]
      ~guest_pc:(Gb_ir.Dfg.node g id).Gb_ir.Dfg.guest_pc ()
  in
  (* Mitigation fences are appended at the end of the node array, so their
     ids do not reflect program position; connecting fences to each other
     could create cycles. Each fence only orders the original nodes. *)
  Gb_ir.Dfg.iter_nodes g (fun n ->
      let nid = n.Gb_ir.Dfg.id in
      match n.Gb_ir.Dfg.kind with
      | Gb_ir.Dfg.Kfence -> ()
      | _ ->
        if nid < boundary then
          Gb_ir.Dfg.add_edge g ~from:nid ~to_:fence
            ~lat:(Gb_ir.Build.latency_of lat n.Gb_ir.Dfg.kind)
            ~kind:Gb_ir.Dfg.Ectrl
        else
          Gb_ir.Dfg.add_edge g ~from:fence ~to_:nid ~lat:1 ~kind:Gb_ir.Dfg.Ectrl)

let apply ?(obs = Gb_obs.Sink.noop) ?(unsound_cut = false) mode ~lat g =
  match mode with
  | Unsafe | No_speculation -> empty_report
  | Min_cut ->
    (* One report-only poisoning pass first: the detector's verdict set
       (flagged pcs, pattern count) stays comparable with the other
       modes — the leakage audit and gadget scanner score against it —
       while the repairs themselves come from the global min cut. *)
    let { Poison.patterns; _ } = Poison.analyze g in
    let flagged_pcs =
      List.sort_uniq compare
        (List.map (fun id -> (Gb_ir.Dfg.node g id).Gb_ir.Dfg.guest_pc) patterns)
    in
    List.iter
      (fun id ->
        Gb_obs.Sink.event obs ~pc:(Gb_ir.Dfg.node g id).Gb_ir.Dfg.guest_pc
          (Gb_obs.Event.Poison_flagged { node = id }))
      patterns;
    let plan =
      Leakcut.apply ~unsound:unsound_cut ~lat ~constrain:(constrain_load g)
        ~fence:(fun id -> insert_fence g ~lat id)
        g
    in
    let constrained = plan.Leakcut.dep_reinserts + plan.Leakcut.masks in
    if Gb_obs.Sink.is_active obs then begin
      Gb_obs.Sink.incr obs ~by:(List.length patterns)
        "mitigation.patterns_found";
      Gb_obs.Sink.incr obs ~by:constrained "mitigation.loads_constrained";
      Gb_obs.Sink.incr obs ~by:plan.Leakcut.fences "mitigation.fences_inserted";
      Gb_obs.Sink.incr obs ~by:constrained "mitigation.cut_protects";
      Gb_obs.Sink.observe obs "mitigation.rounds" 1.;
      if constrained > 0 then
        Gb_obs.Sink.event obs
          (Gb_obs.Event.Mitigation_applied
             { constrained; fences = plan.Leakcut.fences })
    end;
    {
      patterns_found = List.length patterns;
      loads_constrained = constrained;
      fences_inserted = plan.Leakcut.fences;
      rounds = 1;
      flagged_pcs;
      cut_plan = Some plan;
    }
  | Fine_grained | Fence_on_detect ->
    let patterns_found = ref 0 in
    let constrained = ref 0 in
    let fences = ref 0 in
    let rounds = ref 0 in
    let flagged_pcs = ref [] in
    let rec fixpoint () =
      incr rounds;
      let { Poison.patterns; _ } = Poison.analyze g in
      match patterns with
      | [] -> ()
      | _ :: _ ->
        patterns_found := !patterns_found + List.length patterns;
        List.iter
          (fun id ->
            let pc = (Gb_ir.Dfg.node g id).Gb_ir.Dfg.guest_pc in
            flagged_pcs := pc :: !flagged_pcs;
            Gb_obs.Sink.event obs ~pc
              (Gb_obs.Event.Poison_flagged { node = id });
            (match mode with
            | Fence_on_detect ->
              insert_fence g ~lat id;
              incr fences
            | Fine_grained | Min_cut | Unsafe | No_speculation -> ());
            constrain_load g id;
            incr constrained)
          patterns;
        fixpoint ()
    in
    fixpoint ();
    if Gb_obs.Sink.is_active obs then begin
      Gb_obs.Sink.incr obs ~by:!patterns_found "mitigation.patterns_found";
      Gb_obs.Sink.incr obs ~by:!constrained "mitigation.loads_constrained";
      Gb_obs.Sink.incr obs ~by:!fences "mitigation.fences_inserted";
      Gb_obs.Sink.observe obs "mitigation.rounds" (float_of_int !rounds);
      if !constrained > 0 then
        Gb_obs.Sink.event obs
          (Gb_obs.Event.Mitigation_applied
             { constrained = !constrained; fences = !fences })
    end;
    {
      patterns_found = !patterns_found;
      loads_constrained = !constrained;
      fences_inserted = !fences;
      rounds = !rounds;
      (* a load can be re-flagged in a later fixpoint round (and distinct
         nodes can share a guest pc after unrolling): report each pc once *)
      flagged_pcs = List.sort_uniq compare !flagged_pcs;
      cut_plan = None;
    }
