(* Tests for the kernel compiler: compiled programs executed on the
   reference interpreter must match the semantics computed in OCaml. *)

open Gb_kernelc.Dsl

let run_program ?(mem_size = 1 lsl 18) program =
  let asm = Gb_kernelc.Compile.assemble program in
  let mem = Gb_riscv.Mem.create ~size:mem_size in
  Gb_riscv.Asm.load mem asm;
  let interp = Gb_riscv.Interp.create ~mem ~pc:asm.Gb_riscv.Asm.entry () in
  let code = Gb_riscv.Interp.run interp in
  (code, interp, asm)

let exit_of ?mem_size program =
  let code, _, _ = run_program ?mem_size program in
  code

let simple_arith () =
  let p = { Gb_kernelc.Ast.arrays = []; body = []; result = (c 6 *: c 7) +: c 1 } in
  Alcotest.(check int) "6*7+1" 43 (exit_of p)

let scalars_and_loops () =
  (* sum of i*j over i,j < 10, mod 256 *)
  let p =
    {
      Gb_kernelc.Ast.arrays = [];
      body =
        [
          let_ "acc" (c 0);
          for_ "i" (c 0) (c 10)
            [ for_ "j" (c 0) (c 10) [ set "acc" (v "acc" +: (v "i" *: v "j")) ] ];
        ];
      result = v "acc";
    }
  in
  let expected = ref 0 in
  for i = 0 to 9 do
    for j = 0 to 9 do
      expected := !expected + (i * j)
    done
  done;
  Alcotest.(check int) "sum i*j" (!expected land 0xff) (exit_of p)

let conditionals () =
  let branchy n =
    {
      Gb_kernelc.Ast.arrays = [];
      body =
        [
          let_ "x" (c n);
          if_ (v "x" <: c 10) [ set "x" (v "x" +: c 100) ] [ set "x" (v "x" -: c 1) ];
        ];
      result = v "x";
    }
  in
  Alcotest.(check int) "then branch" 105 (exit_of (branchy 5));
  Alcotest.(check int) "else branch" 41 (exit_of (branchy 42))

let array_roundtrip () =
  (* a[i][j] = i*16+j; read back a[3][7] *)
  let p =
    {
      Gb_kernelc.Ast.arrays = [ array "a" Gb_kernelc.Ast.I64 [ 8; 16 ] ];
      body =
        [
          for_ "i" (c 0) (c 8)
            [ for_ "j" (c 0) (c 16)
                [ ("a", [ v "i"; v "j" ]) <-: ((v "i" *: c 16) +: v "j") ] ];
        ];
      result = arr "a" [ c 3; c 7 ];
    }
  in
  Alcotest.(check int) "a[3][7]" 55 (exit_of p)

let i32_arrays () =
  (* 32-bit elements: stores truncate, loads sign-extend *)
  let p =
    {
      Gb_kernelc.Ast.arrays = [ array "w" Gb_kernelc.Ast.I32 [ 4 ] ];
      body =
        [
          ("w", [ c 0 ]) <-: c (-5);
          ("w", [ c 1 ]) <-: (c 7 +: (c 1 <<: c 32)) (* truncates to 7 *);
          let_ "neg" (arr "w" [ c 0 ]);
          let_ "pos" (arr "w" [ c 1 ]);
        ];
      result = (v "pos" *: c 10) -: v "neg" (* 70 + 5 *);
    }
  in
  Alcotest.(check int) "i32 semantics" 75 (exit_of p)

let byte_arrays () =
  let p =
    {
      Gb_kernelc.Ast.arrays =
        [ array_init "s" Gb_kernelc.Ast.I8 [ 8 ] (Gb_kernelc.Ast.Bytes "AB\xffZ") ];
      body = [];
      result = arr "s" [ c 2 ];  (* unsigned byte load *)
    }
  in
  Alcotest.(check int) "unsigned byte" 0xff (exit_of p)

let raw_memory_access () =
  (* write through a computed pointer, read back through Arr *)
  let p =
    {
      Gb_kernelc.Ast.arrays = [ array "a" Gb_kernelc.Ast.I64 [ 4 ] ];
      body =
        [
          let_ "base" (Gb_kernelc.Ast.Addr_of ("a", []));
          Gb_kernelc.Ast.Mem_store
            (Gb_kernelc.Ast.I64, v "base" +: c 16, c 99);
        ];
      result = arr "a" [ c 2 ];
    }
  in
  Alcotest.(check int) "mem store visible" 99 (exit_of p)

let addr_of_layout () =
  (* arrays are laid out in declaration order: &second > &first *)
  let p =
    {
      Gb_kernelc.Ast.arrays =
        [ array "first" Gb_kernelc.Ast.I8 [ 16 ]; array "second" Gb_kernelc.Ast.I8 [ 16 ] ];
      body = [];
      result =
        Gb_kernelc.Ast.Bin
          (Gb_kernelc.Ast.Sub, Gb_kernelc.Ast.Addr_of ("second", []),
           Gb_kernelc.Ast.Addr_of ("first", []));
    }
  in
  Alcotest.(check int) "16 bytes apart" 16 (exit_of p)

let loop_bound_is_expression () =
  (* triangular loop: sum of i for j < i, i < 10 = sum i*(i) .. check *)
  let p =
    {
      Gb_kernelc.Ast.arrays = [];
      body =
        [
          let_ "acc" (c 0);
          for_ "i" (c 0) (c 10)
            [ for_ "j" (c 0) (v "i") [ set "acc" (v "acc" +: c 1) ] ];
        ];
      result = v "acc";
    }
  in
  Alcotest.(check int) "triangular count" 45 (exit_of p)

let emit_byte_output () =
  let p =
    {
      Gb_kernelc.Ast.arrays = [];
      body = [ Gb_kernelc.Ast.Emit_byte (c 79); Gb_kernelc.Ast.Emit_byte (c 75) ];
      result = c 0;
    }
  in
  let _, interp, _ = run_program p in
  Alcotest.(check string) "output" "OK" (Buffer.contents interp.Gb_riscv.Interp.output)

let division_semantics () =
  let p =
    { Gb_kernelc.Ast.arrays = []; body = []; result = (c 17 /: c 5) +: (c 17 %: c 5) }
  in
  Alcotest.(check int) "div+rem" 5 (exit_of p)

let comparison_ops () =
  let p =
    {
      Gb_kernelc.Ast.arrays = [];
      body = [];
      result =
        (c 3 <: c 4)
        +: ((c 4 <: c 3) *: c 10)
        +: ((c 5 =: c 5) *: c 100)
        +: (Gb_kernelc.Ast.Bin (Gb_kernelc.Ast.Ne, c 5, c 6) *: c 4)
        +: (Gb_kernelc.Ast.Bin (Gb_kernelc.Ast.Le, c 7, c 7) *: c 32);
    }
  in
  Alcotest.(check int) "1 + 0 + 100 + 4 + 32" 137 (exit_of p)

let compile_errors () =
  let check_error name program =
    match Gb_kernelc.Compile.compile program with
    | exception Gb_kernelc.Compile.Error _ -> ()
    | _ -> Alcotest.failf "%s: expected a compile error" name
  in
  check_error "undefined scalar"
    { Gb_kernelc.Ast.arrays = []; body = []; result = v "nope" };
  check_error "unknown array"
    { Gb_kernelc.Ast.arrays = []; body = []; result = arr "nope" [ c 0 ] };
  check_error "redeclared scalar"
    { Gb_kernelc.Ast.arrays = []; body = [ let_ "x" (c 1); let_ "x" (c 2) ];
      result = c 0 };
  check_error "bad index count"
    { Gb_kernelc.Ast.arrays = [ array "a" Gb_kernelc.Ast.I64 [ 4; 4 ] ];
      body = []; result = arr "a" [ c 0 ] }

let scoping_reuses_registers () =
  (* many sequential loops with block-local scalars must not exhaust the
     register pool *)
  let loop i =
    for_ (Printf.sprintf "i%d" i) (c 0) (c 3)
      [ let_ "local" (c i); set "acc" (v "acc" +: v "local") ]
  in
  let p =
    {
      Gb_kernelc.Ast.arrays = [];
      body = let_ "acc" (c 0) :: List.init 30 loop;
      result = v "acc";
    }
  in
  let expected = 3 * (List.init 30 Fun.id |> List.fold_left ( + ) 0) in
  Alcotest.(check int) "scoped locals" (expected land 0xff) (exit_of p)

(* Property: compiled integer expressions match an OCaml evaluator. *)
let rec eval_expr = function
  | Gb_kernelc.Ast.Const n -> n
  | Gb_kernelc.Ast.Bin (op, a, b) ->
    let a = eval_expr a and b = eval_expr b in
    let open Int64 in
    (match op with
    | Gb_kernelc.Ast.Add -> add a b
    | Gb_kernelc.Ast.Sub -> sub a b
    | Gb_kernelc.Ast.Mul -> mul a b
    | Gb_kernelc.Ast.Div -> if equal b 0L then -1L else div a b
    | Gb_kernelc.Ast.Rem -> if equal b 0L then a else rem a b
    | Gb_kernelc.Ast.And -> logand a b
    | Gb_kernelc.Ast.Or -> logor a b
    | Gb_kernelc.Ast.Xor -> logxor a b
    | Gb_kernelc.Ast.Shl -> shift_left a (to_int b land 63)
    | Gb_kernelc.Ast.Shr -> shift_right_logical a (to_int b land 63)
    | Gb_kernelc.Ast.Lt -> if compare a b < 0 then 1L else 0L
    | Gb_kernelc.Ast.Le -> if compare a b <= 0 then 1L else 0L
    | Gb_kernelc.Ast.Eq -> if equal a b then 1L else 0L
    | Gb_kernelc.Ast.Ne -> if equal a b then 0L else 1L)
  | Gb_kernelc.Ast.Var _ | Gb_kernelc.Ast.Arr _ | Gb_kernelc.Ast.Addr_of _
  | Gb_kernelc.Ast.Mem _ | Gb_kernelc.Ast.Cycle ->
    assert false

let arb_const_expr =
  let open QCheck.Gen in
  let leaf = map (fun n -> Gb_kernelc.Ast.Const (Int64.of_int n)) (int_range (-100) 100) in
  let op =
    oneofl
      Gb_kernelc.Ast.
        [ Add; Sub; Mul; Div; Rem; And; Or; Xor; Lt; Le; Eq; Ne ]
  in
  let rec expr depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (1, leaf);
          ( 3,
            map3 (fun op a b -> Gb_kernelc.Ast.Bin (op, a, b)) op (expr (depth - 1))
              (expr (depth - 1)) );
        ]
  in
  expr 3

let expr_semantics_prop =
  QCheck.Test.make ~count:300 ~name:"compiled expressions match evaluator"
    (QCheck.make arb_const_expr)
    (fun e ->
      let expected = Int64.to_int (eval_expr e) land 0xff in
      let p = { Gb_kernelc.Ast.arrays = []; body = []; result = e } in
      exit_of p = expected)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "kernelc"
    [
      ( "semantics",
        [
          Alcotest.test_case "arith" `Quick simple_arith;
          Alcotest.test_case "scalars and loops" `Quick scalars_and_loops;
          Alcotest.test_case "conditionals" `Quick conditionals;
          Alcotest.test_case "arrays" `Quick array_roundtrip;
          Alcotest.test_case "byte arrays" `Quick byte_arrays;
          Alcotest.test_case "i32 arrays" `Quick i32_arrays;
          Alcotest.test_case "raw memory" `Quick raw_memory_access;
          Alcotest.test_case "layout" `Quick addr_of_layout;
          Alcotest.test_case "expression loop bound" `Quick
            loop_bound_is_expression;
          Alcotest.test_case "emit byte" `Quick emit_byte_output;
          Alcotest.test_case "division" `Quick division_semantics;
          Alcotest.test_case "comparisons" `Quick comparison_ops;
          qt expr_semantics_prop;
        ] );
      ( "compilation",
        [
          Alcotest.test_case "errors" `Quick compile_errors;
          Alcotest.test_case "register scoping" `Quick scoping_reuses_registers;
        ] );
    ]
