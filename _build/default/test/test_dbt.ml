(* Tests for the DBT engine: trace construction against a profiled binary,
   the list scheduler's edge/resource guarantees (property-tested over
   random traces), and code generation invariants. *)

let lat = Gb_ir.Latency.default

let res = Gb_dbt.Sched.default_resources

(* --- trace construction ------------------------------------------------ *)

let assemble_loop () =
  (* a loop whose body conditionally skips a store, plus an exit path *)
  let open Gb_riscv in
  let open Gb_riscv.Insn in
  Asm.assemble
    [
      Asm.Label "loop";
      Asm.Insn (Op_imm (ANDI, Reg.t0, Reg.s2, 1));
      Asm.Branch_to (BNE, Reg.t0, Reg.zero, "skip");
      Asm.Insn (Store (D, Reg.s2, Reg.sp, -16));
      Asm.Label "skip";
      Asm.Insn (Op_imm (ADDI, Reg.s2, Reg.s2, 1));
      Asm.Branch_to (BLT, Reg.s2, Reg.s1, "loop");
      Asm.Insn Ecall;
    ]

let load_into_mem program =
  let mem = Gb_riscv.Mem.create ~size:(1 lsl 16) in
  Gb_riscv.Asm.load mem program;
  mem

let trace_follows_bias () =
  let program = assemble_loop () in
  let mem = load_into_mem program in
  let skip_branch = Gb_riscv.Asm.symbol program "loop" + 4 in
  let back_branch = Gb_riscv.Asm.symbol program "skip" + 4 in
  (* profile: skip-branch never taken, back-branch always taken *)
  let profile pc =
    if pc = skip_branch then Some (0, 100)
    else if pc = back_branch then Some (100, 100)
    else None
  in
  let t =
    Gb_dbt.Trace_builder.build Gb_dbt.Trace_builder.default_config ~mem
      ~profile
      ~entry:(Gb_riscv.Asm.symbol program "loop")
  in
  (* the loop unrolls up to the revisit limit *)
  let visits =
    List.length
      (List.filter
         (fun s -> s.Gb_ir.Gtrace.pc = Gb_riscv.Asm.symbol program "loop")
         t.Gb_ir.Gtrace.steps)
  in
  Alcotest.(check int) "unrolled to the visit limit"
    Gb_dbt.Trace_builder.default_config.Gb_dbt.Trace_builder.max_visits visits;
  (* stores are in the trace (biased not-taken skip) *)
  let has_store =
    List.exists
      (fun s ->
        match s.Gb_ir.Gtrace.insn with
        | Gb_riscv.Insn.Store _ -> true
        | _ -> false)
      t.Gb_ir.Gtrace.steps
  in
  Alcotest.(check bool) "store included" true has_store

let trace_stops_at_unbiased () =
  let program = assemble_loop () in
  let mem = load_into_mem program in
  let skip_branch = Gb_riscv.Asm.symbol program "loop" + 4 in
  let profile pc = if pc = skip_branch then Some (50, 100) else None in
  let t =
    Gb_dbt.Trace_builder.build Gb_dbt.Trace_builder.default_config ~mem
      ~profile
      ~entry:(Gb_riscv.Asm.symbol program "loop")
  in
  Alcotest.(check int) "stops before the unbiased branch" 1
    (Gb_ir.Gtrace.length t);
  Alcotest.(check int) "falls back at the branch" skip_branch
    t.Gb_ir.Gtrace.fall_pc

let trace_stops_at_ecall () =
  let open Gb_riscv in
  let program =
    Asm.assemble [ Asm.Insn (Insn.Op_imm (Insn.ADDI, Reg.t0, Reg.t0, 1)); Asm.Insn Insn.Ecall ]
  in
  let mem = load_into_mem program in
  let t =
    Gb_dbt.Trace_builder.build Gb_dbt.Trace_builder.default_config ~mem
      ~profile:(fun _ -> None) ~entry:program.Asm.entry
  in
  Alcotest.(check int) "one instruction" 1 (Gb_ir.Gtrace.length t);
  Alcotest.(check int) "ends before ecall" (program.Asm.entry + 4)
    t.Gb_ir.Gtrace.fall_pc

let empty_trace_fails () =
  let open Gb_riscv in
  let program = Asm.assemble [ Asm.Insn Insn.Ecall ] in
  let mem = load_into_mem program in
  Alcotest.check_raises "empty trace"
    (Gb_dbt.Trace_builder.Build_failure "empty trace") (fun () ->
      ignore
        (Gb_dbt.Trace_builder.build Gb_dbt.Trace_builder.default_config ~mem
           ~profile:(fun _ -> None) ~entry:program.Asm.entry))

(* --- scheduler --------------------------------------------------------- *)

(* reuse the random guest-trace generator idea from the IR tests *)
let arb_gtrace =
  let open QCheck.Gen in
  let reg = int_range 1 15 in
  let gen_step pc =
    let open Gb_riscv.Insn in
    frequency
      [
        (4, map3 (fun rd rs1 rs2 -> Op (ADD, rd, rs1, rs2)) reg reg reg);
        (2, map3 (fun rd rs1 rs2 -> Op (MUL, rd, rs1, rs2)) reg reg reg);
        (1, map3 (fun rd rs1 rs2 -> Op (DIV, rd, rs1, rs2)) reg reg reg);
        (2, map2 (fun rd rs1 -> Load (D, false, rd, rs1, 0)) reg reg);
        (2, map2 (fun rs2 rs1 -> Store (D, rs2, rs1, 0)) reg reg);
        (1, return (Rdcycle 5));
        (2, map2 (fun rs1 rs2 -> Branch (BEQ, rs1, rs2, 64)) reg reg);
      ]
    >|= fun insn ->
    let exit_cond =
      match insn with
      | Branch (cond, _, _, off) -> Some (cond, pc + off)
      | _ -> None
    in
    { Gb_ir.Gtrace.pc; insn; exit_cond }
  in
  let* n = int_range 1 50 in
  let* steps = flatten_l (List.init n (fun i -> gen_step (0x1000 + (4 * i)))) in
  return { Gb_ir.Gtrace.entry = 0x1000; steps; fall_pc = 0x1000 + (4 * n) }

let arb_mode = QCheck.Gen.oneofl Gb_core.Mitigation.all_modes

let build_and_schedule (trace, mode) =
  let opt = Gb_core.Mitigation.opt_of_mode mode in
  let g = Gb_ir.Build.build ~opt ~lat trace in
  let _ = Gb_core.Mitigation.apply mode ~lat g in
  let cycles = Gb_dbt.Sched.schedule res ~lat g in
  (g, cycles)

let schedule_respects_edges_prop =
  QCheck.Test.make ~count:400 ~name:"schedule respects every edge"
    (QCheck.make QCheck.Gen.(pair arb_gtrace arb_mode))
    (fun input ->
      let g, cycles = build_and_schedule input in
      List.for_all
        (fun e ->
          cycles.(e.Gb_ir.Dfg.e_to)
          >= cycles.(e.Gb_ir.Dfg.e_from) + e.Gb_ir.Dfg.e_lat)
        (Gb_ir.Dfg.edges g))

let schedule_respects_resources_prop =
  QCheck.Test.make ~count:400 ~name:"schedule respects resource limits"
    (QCheck.make QCheck.Gen.(pair arb_gtrace arb_mode))
    (fun input ->
      let g, cycles = build_and_schedule input in
      let n_cycles = 1 + Array.fold_left max 0 cycles in
      let total = Array.make n_cycles 0 in
      let mem = Array.make n_cycles 0 in
      let mul = Array.make n_cycles 0 in
      let branch = Array.make n_cycles 0 in
      Gb_ir.Dfg.iter_nodes g (fun node ->
          let c = cycles.(node.Gb_ir.Dfg.id) in
          total.(c) <- total.(c) + 1;
          match Gb_dbt.Sched.classify node.Gb_ir.Dfg.kind with
          | Gb_dbt.Sched.Mem_class -> mem.(c) <- mem.(c) + 1
          | Gb_dbt.Sched.Mul_class -> mul.(c) <- mul.(c) + 1
          | Gb_dbt.Sched.Branch_class -> branch.(c) <- branch.(c) + 1
          | Gb_dbt.Sched.Alu_class -> ());
      let ok = ref true in
      for c = 0 to n_cycles - 1 do
        if total.(c) > res.Gb_dbt.Sched.width
           || mem.(c) > res.Gb_dbt.Sched.mem_slots
           || mul.(c) > res.Gb_dbt.Sched.mul_slots
           || branch.(c) > res.Gb_dbt.Sched.branch_slots
        then ok := false
      done;
      !ok)

let exit_scheduled_last_prop =
  QCheck.Test.make ~count:200 ~name:"trace exit is scheduled last"
    (QCheck.make QCheck.Gen.(pair arb_gtrace arb_mode))
    (fun input ->
      let g, cycles = build_and_schedule input in
      let exit_id = ref (-1) in
      Gb_ir.Dfg.iter_nodes g (fun n ->
          match n.Gb_ir.Dfg.kind with
          | Gb_ir.Dfg.Kexit -> exit_id := n.Gb_ir.Dfg.id
          | _ -> ());
      let last = Array.fold_left max 0 cycles in
      cycles.(!exit_id) = last)

(* --- codegen ----------------------------------------------------------- *)

let emit (trace, mode) =
  let opt = Gb_core.Mitigation.opt_of_mode mode in
  let g = Gb_ir.Build.build ~opt ~lat trace in
  let _ = Gb_core.Mitigation.apply mode ~lat g in
  let cycles = Gb_dbt.Sched.schedule res ~lat g in
  Gb_dbt.Codegen.emit res ~n_hidden:96 ~cycles ~entry_pc:trace.Gb_ir.Gtrace.entry
    ~guest_insns:(Gb_ir.Gtrace.length trace)
    ~meta:Gb_vliw.Vinsn.empty_meta g

let codegen_invariants_prop =
  QCheck.Test.make ~count:300 ~name:"codegen: width, one control op, stubs"
    (QCheck.make QCheck.Gen.(pair arb_gtrace arb_mode))
    (fun input ->
      let t = emit input in
      let ok = ref true in
      Array.iter
        (fun bundle ->
          if Array.length bundle <> res.Gb_dbt.Sched.width then ok := false;
          let controls =
            Array.to_list bundle
            |> List.filter (fun op ->
                   match op with
                   | Gb_vliw.Vinsn.Branch _ | Gb_vliw.Vinsn.Chk _
                   | Gb_vliw.Vinsn.Exit _ ->
                     true
                   | _ -> false)
          in
          if List.length controls > 1 then ok := false)
        t.Gb_vliw.Vinsn.bundles;
      (* the final bundle carries the unconditional exit *)
      let last = t.Gb_vliw.Vinsn.bundles.(Array.length t.Gb_vliw.Vinsn.bundles - 1) in
      let has_exit =
        Array.exists
          (fun op -> match op with Gb_vliw.Vinsn.Exit _ -> true | _ -> false)
          last
      in
      (* stubs only commit architectural registers *)
      Array.iter
        (fun stub ->
          List.iter
            (fun (r, _) ->
              if r < 1 || r >= Gb_vliw.Vinsn.guest_regs then ok := false)
            stub.Gb_vliw.Vinsn.commits)
        t.Gb_vliw.Vinsn.stubs;
      !ok && has_exit)

let register_pressure_failure () =
  (* with almost no hidden registers, codegen must refuse rather than emit
     wrong code *)
  let open Gb_riscv.Insn in
  let steps =
    List.init 30 (fun i ->
        { Gb_ir.Gtrace.pc = 0x1000 + (4 * i);
          insn = Op (ADD, 1 + (i mod 15), 1, 2);
          exit_cond = None })
  in
  let trace = { Gb_ir.Gtrace.entry = 0x1000; steps; fall_pc = 0x1000 + 120 } in
  let g = Gb_ir.Build.build ~opt:Gb_ir.Opt_config.aggressive ~lat trace in
  let cycles = Gb_dbt.Sched.schedule res ~lat g in
  Alcotest.check_raises "out of registers" Gb_dbt.Codegen.Out_of_registers
    (fun () ->
      ignore
        (Gb_dbt.Codegen.emit res ~n_hidden:1 ~cycles ~entry_pc:0x1000
           ~guest_insns:30 ~meta:Gb_vliw.Vinsn.empty_meta g))

(* --- trace-level differential oracle ------------------------------------ *)

(* Compile a random guest trace to VLIW and execute it; separately run the
   golden interpreter over the same instruction bytes from the same
   initial state until it leaves the trace's pc range. Architectural
   registers, memory and the resume pc must agree for every mitigation
   mode. (rdcycle/cflush are excluded: the clock differs by construction.) *)

let arb_oracle_trace =
  let open QCheck.Gen in
  (* destinations never overlap the address bases, so load/store addresses
     stay inside the data region for both executions *)
  let reg = int_range 1 8 in
  let src = int_range 1 15 in
  let base = int_range 9 15 in
  let gen_step pc =
    let open Gb_riscv.Insn in
    frequency
      [
        (5, map3 (fun rd rs1 rs2 -> Op (ADD, rd, rs1, rs2)) reg src src);
        (2, map3 (fun rd rs1 rs2 -> Op (MUL, rd, rs1, rs2)) reg src src);
        (2, map3 (fun rd rs1 rs2 -> Op (XOR, rd, rs1, rs2)) reg src src);
        (1, map3 (fun rd rs1 rs2 -> Op (DIVU, rd, rs1, rs2)) reg src src);
        (2, map3 (fun rd rs1 imm -> Op_imm (ANDI, rd, rs1, imm)) reg src
             (int_range 0 255));
        (2, map2 (fun rd rs1 -> Load (D, false, rd, rs1, 0)) reg base);
        (1, map2 (fun rd rs1 -> Load (B, true, rd, rs1, 0)) reg base);
        (2, map2 (fun rs2 rs1 -> Store (D, rs2, rs1, 0)) src base);
        (2, map2 (fun rs1 rs2 -> Branch (BEQ, rs1, rs2, 512)) src src);
        (1, map2 (fun rs1 rs2 -> Branch (BLT, rs1, rs2, 512)) src src);
      ]
    >|= fun insn ->
    let exit_cond =
      match insn with
      | Branch (cond, _, _, off) -> Some (cond, pc + off)
      | _ -> None
    in
    { Gb_ir.Gtrace.pc; insn; exit_cond }
  in
  let* n = int_range 1 40 in
  let* steps = flatten_l (List.init n (fun i -> gen_step (0x1000 + (4 * i)))) in
  let* seeds = list_size (return 15) (int_range 0 2047) in
  let* mode = oneofl Gb_core.Mitigation.all_modes in
  return ({ Gb_ir.Gtrace.entry = 0x1000; steps; fall_pc = 0x1000 + (4 * n) },
          seeds, mode)

let trace_oracle_prop =
  QCheck.Test.make ~count:300 ~name:"trace execution = interpreter (oracle)"
    (QCheck.make arb_oracle_trace)
    (fun (gtrace, seeds, mode) ->
      let mem_size = 1 lsl 16 in
      (* data region for the random base registers: aligned, in range *)
      let init_regs = Array.make 128 0L in
      List.iteri
        (fun i s -> init_regs.(i + 1) <- Int64.of_int (0x4000 + (8 * s)))
        seeds;
      (* write the instruction bytes *)
      let make_mem () =
        let mem = Gb_riscv.Mem.create ~size:mem_size in
        List.iter
          (fun st ->
            Gb_riscv.Mem.store mem ~addr:st.Gb_ir.Gtrace.pc ~size:4
              (Int64.of_int (Gb_riscv.Encode.encode st.Gb_ir.Gtrace.insn)))
          gtrace.Gb_ir.Gtrace.steps;
        mem
      in
      (* oracle: the reference interpreter until it leaves the trace *)
      let interp_mem = make_mem () in
      let interp_regs = Array.copy init_regs in
      let interp =
        Gb_riscv.Interp.create ~regs:interp_regs ~mem:interp_mem ~pc:0x1000 ()
      in
      let lo = gtrace.Gb_ir.Gtrace.entry and hi = gtrace.Gb_ir.Gtrace.fall_pc in
      let rec run_interp budget =
        if budget = 0 then failwith "oracle ran away"
        else if interp.Gb_riscv.Interp.pc < lo || interp.Gb_riscv.Interp.pc >= hi
        then interp.Gb_riscv.Interp.pc
        else begin
          ignore (Gb_riscv.Interp.step interp);
          run_interp (budget - 1)
        end
      in
      let oracle_pc = run_interp 1000 in
      (* device under test: build, mitigate, schedule, emit, execute *)
      let opt = Gb_core.Mitigation.opt_of_mode mode in
      let g = Gb_ir.Build.build ~opt ~lat gtrace in
      let _ = Gb_core.Mitigation.apply mode ~lat g in
      let cycles = Gb_dbt.Sched.schedule res ~lat g in
      let trace =
        Gb_dbt.Codegen.emit res ~n_hidden:96 ~cycles ~entry_pc:0x1000
          ~guest_insns:(Gb_ir.Gtrace.length gtrace)
          ~meta:Gb_vliw.Vinsn.empty_meta g
      in
      let vliw_mem = make_mem () in
      let hier = Gb_cache.Hierarchy.create Gb_cache.Hierarchy.default_config in
      let clock = ref 0L in
      let vliw_regs = Array.copy init_regs in
      let machine =
        Gb_vliw.Machine.create ~mem:vliw_mem ~hier ~clock ~regs:vliw_regs ()
      in
      (* a rollback exits mid-trace at a pc inside the range: finish the
         remainder on the interpreter semantics, as the real system does *)
      let rec settle budget pc =
        if pc < lo || pc >= hi then pc
        else if budget = 0 then failwith "settle ran away"
        else begin
          let fixup =
            Gb_riscv.Interp.create ~regs:vliw_regs ~mem:vliw_mem ~pc ()
          in
          ignore (Gb_riscv.Interp.step fixup);
          settle (budget - 1) fixup.Gb_riscv.Interp.pc
        end
      in
      let first_exit = (Gb_vliw.Pipeline.run machine trace).Gb_vliw.Pipeline.next_pc in
      let vliw_pc = settle 1000 first_exit in
      let regs_agree =
        List.for_all
          (fun r -> Int64.equal interp_regs.(r) vliw_regs.(r))
          (List.init 31 (fun i -> i + 1))
      in
      let mem_agree =
        Gb_riscv.Mem.read_bytes interp_mem ~addr:0x4000 ~len:0x5000
        = Gb_riscv.Mem.read_bytes vliw_mem ~addr:0x4000 ~len:0x5000
      in
      oracle_pc = vliw_pc && regs_agree && mem_agree)

(* --- first-level translation -------------------------------------------- *)

let first_pass_machine () =
  let mem = Gb_riscv.Mem.create ~size:(1 lsl 16) in
  let hier = Gb_cache.Hierarchy.create Gb_cache.Hierarchy.default_config in
  let clock = ref 0L in
  (mem, Gb_vliw.Machine.create ~mem ~hier ~clock ())

let first_pass_straight_line () =
  let open Gb_riscv in
  let program =
    Asm.assemble
      [
        Asm.Insn (Insn.Op_imm (Insn.ADDI, Reg.t0, Reg.zero, 5));
        Asm.Insn (Insn.Op_imm (Insn.ADDI, Reg.t1, Reg.t0, 7));
        Asm.Insn (Insn.Op (Insn.MUL, Reg.t2, Reg.t0, Reg.t1));
        Asm.Insn Insn.Ecall;
      ]
  in
  let mem, machine = first_pass_machine () in
  Asm.load mem program;
  let { Gb_dbt.First_pass.trace; branch_pc } =
    Gb_dbt.First_pass.translate ~mem ~entry:program.Asm.entry
  in
  Alcotest.(check (option int)) "no terminal branch" None branch_pc;
  Alcotest.(check int) "one op per insn plus exit" 4
    (Array.length trace.Gb_vliw.Vinsn.bundles);
  let info = Gb_vliw.Pipeline.run machine trace in
  Alcotest.(check int) "exits before the ecall" (program.Asm.entry + 12)
    info.Gb_vliw.Pipeline.next_pc;
  (* guest registers written directly, no stub needed *)
  Alcotest.(check int64) "t2 = 5 * 12" 60L machine.Gb_vliw.Machine.regs.(Reg.t2)

let first_pass_branch_block () =
  let open Gb_riscv in
  let program =
    Asm.assemble
      [
        Asm.Insn (Insn.Op_imm (Insn.ADDI, Reg.t0, Reg.t0, 1));
        Asm.Insn (Insn.Branch (Insn.BLT, Reg.t0, Reg.t1, 64));
        Asm.Insn Insn.Ecall;
      ]
  in
  let mem, machine = first_pass_machine () in
  Asm.load mem program;
  let { Gb_dbt.First_pass.trace; branch_pc } =
    Gb_dbt.First_pass.translate ~mem ~entry:program.Asm.entry
  in
  Alcotest.(check (option int)) "terminal branch recorded"
    (Some (program.Asm.entry + 4)) branch_pc;
  (* taken path: t0 < t1 *)
  machine.Gb_vliw.Machine.regs.(Reg.t1) <- 100L;
  let info = Gb_vliw.Pipeline.run machine trace in
  Alcotest.(check int) "taken target" (program.Asm.entry + 4 + 64)
    info.Gb_vliw.Pipeline.next_pc;
  Alcotest.(check bool) "taken = side exit" true
    (info.Gb_vliw.Pipeline.kind = Gb_vliw.Pipeline.Side_exit);
  (* fall-through path *)
  machine.Gb_vliw.Machine.regs.(Reg.t1) <- -100L;
  let info = Gb_vliw.Pipeline.run machine trace in
  Alcotest.(check int) "fall-through target" (program.Asm.entry + 8)
    info.Gb_vliw.Pipeline.next_pc;
  Alcotest.(check bool) "fall-through kind" true
    (info.Gb_vliw.Pipeline.kind = Gb_vliw.Pipeline.Fallthrough)

let first_pass_untranslatable () =
  let open Gb_riscv in
  let program = Asm.assemble [ Asm.Insn Insn.Ecall ] in
  let mem, _ = first_pass_machine () in
  Asm.load mem program;
  Alcotest.check_raises "ecall at entry"
    (Gb_dbt.First_pass.Untranslatable "block starts with jalr/ecall")
    (fun () ->
      ignore (Gb_dbt.First_pass.translate ~mem ~entry:program.Asm.entry))

(* Property: a first-pass block and the interpreter agree on registers and
   memory over random straight-line code. *)
let first_pass_differential_prop =
  let arb =
    QCheck.make
      QCheck.Gen.(
        pair
          (list_size (int_range 1 30)
             (oneof
                [
                  map3
                    (fun op rd (rs1, rs2) -> Gb_riscv.Insn.Op (op, rd, rs1, rs2))
                    (oneofl Gb_riscv.Insn.[ ADD; SUB; XOR; MUL; AND; OR ])
                    (int_range 1 8)
                    (pair (int_range 1 15) (int_range 1 15));
                  map2
                    (fun rd base -> Gb_riscv.Insn.Load (Gb_riscv.Insn.D, false, rd, base, 0))
                    (int_range 1 8) (int_range 9 15);
                  map2
                    (fun src base -> Gb_riscv.Insn.Store (Gb_riscv.Insn.D, src, base, 0))
                    (int_range 1 15) (int_range 9 15);
                ]))
          (list_size (return 15) (int_range 0 1023)))
  in
  QCheck.Test.make ~count:200 ~name:"first-pass = interpreter" arb
    (fun (insns, seeds) ->
      let program =
        Gb_riscv.Asm.assemble
          (List.map (fun i -> Gb_riscv.Asm.Insn i) insns
          @ [ Gb_riscv.Asm.Insn Gb_riscv.Insn.Ecall ])
      in
      let init_regs = Array.make 128 0L in
      List.iteri
        (fun i s -> init_regs.(i + 1) <- Int64.of_int (0x4000 + (8 * s)))
        seeds;
      let setup () =
        let mem = Gb_riscv.Mem.create ~size:(1 lsl 16) in
        Gb_riscv.Asm.load mem program;
        (mem, Array.copy init_regs)
      in
      (* interpreter *)
      let imem, iregs = setup () in
      let interp =
        Gb_riscv.Interp.create ~regs:iregs ~mem:imem ~pc:program.Gb_riscv.Asm.entry ()
      in
      List.iter (fun _ -> ignore (Gb_riscv.Interp.step interp)) insns;
      (* first-pass block *)
      let vmem, vregs = setup () in
      let hier = Gb_cache.Hierarchy.create Gb_cache.Hierarchy.default_config in
      let clock = ref 0L in
      let machine = Gb_vliw.Machine.create ~mem:vmem ~hier ~clock ~regs:vregs () in
      let { Gb_dbt.First_pass.trace; _ } =
        Gb_dbt.First_pass.translate ~mem:vmem ~entry:program.Gb_riscv.Asm.entry
      in
      let info = Gb_vliw.Pipeline.run machine trace in
      info.Gb_vliw.Pipeline.next_pc = interp.Gb_riscv.Interp.pc
      && List.for_all
           (fun r -> Int64.equal iregs.(r) vregs.(r))
           (List.init 31 (fun i -> i + 1))
      && Gb_riscv.Mem.read_bytes imem ~addr:0x4000 ~len:0x3000
         = Gb_riscv.Mem.read_bytes vmem ~addr:0x4000 ~len:0x3000)

(* Property: first-pass blocks never contain speculative loads or hidden
   registers — the tier is Spectre-free by construction. *)
let first_pass_never_speculates_prop =
  let arb =
    QCheck.make
      QCheck.Gen.(
        list_size (int_range 1 20)
          (oneof
             [
               map3
                 (fun rd rs1 imm -> Gb_riscv.Insn.Op_imm (Gb_riscv.Insn.ADDI, rd, rs1, imm))
                 (int_range 1 31) (int_range 0 31) (int_range (-100) 100);
               map2
                 (fun rd rs1 -> Gb_riscv.Insn.Load (Gb_riscv.Insn.D, false, rd, rs1, 0))
                 (int_range 1 31) (int_range 0 31);
               map2
                 (fun rs2 rs1 -> Gb_riscv.Insn.Store (Gb_riscv.Insn.D, rs2, rs1, 0))
                 (int_range 0 31) (int_range 0 31);
             ]))
  in
  QCheck.Test.make ~count:200 ~name:"first-pass blocks never speculate" arb
    (fun insns ->
      let program =
        Gb_riscv.Asm.assemble
          (List.map (fun i -> Gb_riscv.Asm.Insn i) insns
          @ [ Gb_riscv.Asm.Insn Gb_riscv.Insn.Ecall ])
      in
      let mem = Gb_riscv.Mem.create ~size:(1 lsl 16) in
      Gb_riscv.Asm.load mem program;
      let { Gb_dbt.First_pass.trace; _ } =
        Gb_dbt.First_pass.translate ~mem ~entry:program.Gb_riscv.Asm.entry
      in
      trace.Gb_vliw.Vinsn.n_regs = Gb_vliw.Vinsn.guest_regs
      && Array.for_all
           (fun bundle ->
             Array.for_all
               (fun op ->
                 match op with
                 | Gb_vliw.Vinsn.Load { spec = Some _; _ }
                 | Gb_vliw.Vinsn.Chk _ ->
                   false
                 | _ -> true)
               bundle)
           trace.Gb_vliw.Vinsn.bundles)

(* --- engine ------------------------------------------------------------ *)

let engine_tier_precedence () =
  (* once a pc has both a first-level block and an optimized trace, lookup
     must serve the optimized one *)
  let program = assemble_loop () in
  let mem = load_into_mem program in
  let engine = Gb_dbt.Engine.create Gb_dbt.Engine.default_config ~mem in
  let entry = Gb_riscv.Asm.symbol program "loop" in
  (* warm: first-level only *)
  for _ = 1 to 5 do
    Gb_dbt.Engine.record_block_entry engine entry
  done;
  let block = Gb_dbt.Engine.lookup engine entry in
  Alcotest.(check bool) "block tier serves" true (block <> None);
  Alcotest.(check int) "single-op bundles" 1
    (Array.length (Option.get block).Gb_vliw.Vinsn.bundles.(0));
  (* hot: optimized trace replaces it *)
  ignore (Gb_dbt.Engine.translate engine entry);
  let trace = Gb_dbt.Engine.lookup engine entry in
  Alcotest.(check bool) "optimized tier serves" true
    ((Option.get trace).Gb_vliw.Vinsn.bundles.(0) |> Array.length > 1)

let engine_caches_and_blacklists () =
  let program = assemble_loop () in
  let mem = load_into_mem program in
  let engine = Gb_dbt.Engine.create Gb_dbt.Engine.default_config ~mem in
  let entry = Gb_riscv.Asm.symbol program "loop" in
  let skip_branch = entry + 4 in
  (* without profile data the trace stops at the first branch — still a
     valid 1-instruction trace *)
  ignore (Gb_dbt.Engine.translate engine entry);
  Alcotest.(check bool) "cached" true (Gb_dbt.Engine.lookup engine entry <> None);
  (* a pc pointing at an ecall cannot be translated and gets blacklisted *)
  let ecall_pc = Gb_riscv.Asm.symbol program "skip" + 8 in
  Alcotest.(check bool) "ecall not translatable" true
    (Gb_dbt.Engine.translate engine ecall_pc = None);
  Alcotest.(check int) "failure recorded" 1
    (Gb_dbt.Engine.stats engine).Gb_dbt.Engine.failures;
  ignore skip_branch

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "dbt"
    [
      ( "trace-builder",
        [
          Alcotest.test_case "follows bias and unrolls" `Quick trace_follows_bias;
          Alcotest.test_case "stops at unbiased branch" `Quick
            trace_stops_at_unbiased;
          Alcotest.test_case "stops at ecall" `Quick trace_stops_at_ecall;
          Alcotest.test_case "empty trace fails" `Quick empty_trace_fails;
        ] );
      ( "scheduler",
        [
          qt schedule_respects_edges_prop;
          qt schedule_respects_resources_prop;
          qt exit_scheduled_last_prop;
        ] );
      ("oracle", [ qt trace_oracle_prop ]);
      ( "codegen",
        [
          qt codegen_invariants_prop;
          Alcotest.test_case "register pressure failure" `Quick
            register_pressure_failure;
        ] );
      ( "first-pass",
        [
          Alcotest.test_case "straight line" `Quick first_pass_straight_line;
          Alcotest.test_case "branch block" `Quick first_pass_branch_block;
          Alcotest.test_case "untranslatable" `Quick first_pass_untranslatable;
          qt first_pass_never_speculates_prop;
          qt first_pass_differential_prop;
        ] );
      ( "engine",
        [
          Alcotest.test_case "caching and blacklisting" `Quick
            engine_caches_and_blacklists;
          Alcotest.test_case "tier precedence" `Quick engine_tier_precedence;
        ] );
    ]
