test/test_kernelc.ml: Alcotest Buffer Fun Gb_kernelc Gb_riscv Int64 List Printf QCheck QCheck_alcotest
