test/test_vliw.ml: Alcotest Array Gb_cache Gb_riscv Gb_vliw Int64 List
