test/test_util.ml: Alcotest Array Gb_util Gen Int64 List QCheck QCheck_alcotest Seq String
