test/test_workloads.ml: Alcotest Gb_core Gb_kernelc Gb_riscv Gb_system Gb_workloads Int64 List Printf
