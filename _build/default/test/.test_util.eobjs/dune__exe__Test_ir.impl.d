test/test_ir.ml: Alcotest Array Gb_core Gb_ir Gb_riscv List QCheck QCheck_alcotest String
