test/test_dbt.ml: Alcotest Array Asm Gb_cache Gb_core Gb_dbt Gb_ir Gb_riscv Gb_vliw Insn Int64 List Option QCheck QCheck_alcotest Reg
