test/test_attack.ml: Alcotest Array Gb_attack Gb_cache Gb_core Gb_dbt Gb_system Int64 List Printf
