test/test_kernelc.mli:
