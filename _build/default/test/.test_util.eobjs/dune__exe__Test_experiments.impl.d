test/test_experiments.ml: Alcotest Array Gb_attack Gb_core Gb_dbt Gb_experiments Gb_kernelc Gb_system Gb_workloads Int64 List Option
