test/test_riscv.ml: Alcotest Array Asm Buffer Disasm Gb_riscv Gen Insn Int64 Interp List Mem QCheck QCheck_alcotest Reg String
