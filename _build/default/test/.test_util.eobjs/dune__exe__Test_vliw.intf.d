test/test_vliw.mli:
