test/test_cache.ml: Alcotest Gb_cache Gen List QCheck QCheck_alcotest
