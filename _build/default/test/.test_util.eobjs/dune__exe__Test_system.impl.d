test/test_system.ml: Alcotest Asm Gb_core Gb_dbt Gb_kernelc Gb_riscv Gb_system Gb_util Int64 List Printf QCheck QCheck_alcotest Reg String
