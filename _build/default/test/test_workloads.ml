(* Workload validation: every Polybench kernel produces the same checksum
   on the reference interpreter and on the DBT processor, under the unsafe
   and fine-grained configurations (the two the paper's Figure 4 centres
   on); a spot-check covers all four modes. The pattern statistics match
   the paper's observation: zero on plain kernels, many on the
   pointer-array matmul. *)

let interp_exit program =
  let asm = Gb_kernelc.Compile.assemble program in
  let mem = Gb_riscv.Mem.create ~size:(1 lsl 20) in
  Gb_riscv.Asm.load mem asm;
  let interp = Gb_riscv.Interp.create ~mem ~pc:asm.Gb_riscv.Asm.entry () in
  Gb_riscv.Interp.run interp

let run_mode mode program =
  Gb_system.Processor.run_program
    ~config:(Gb_system.Processor.config_for mode)
    (Gb_kernelc.Compile.assemble program)

let validate modes (w : Gb_workloads.Polybench.t) () =
  let expected = interp_exit w.Gb_workloads.Polybench.program in
  List.iter
    (fun mode ->
      let r = run_mode mode w.Gb_workloads.Polybench.program in
      Alcotest.(check int)
        (Printf.sprintf "%s under %s" w.Gb_workloads.Polybench.name
           (Gb_core.Mitigation.mode_name mode))
        expected r.Gb_system.Processor.exit_code)
    modes

let light_modes = Gb_core.Mitigation.[ Unsafe; Fine_grained ]

let kernel_cases =
  List.map
    (fun (w : Gb_workloads.Polybench.t) ->
      Alcotest.test_case w.Gb_workloads.Polybench.name `Quick
        (validate light_modes w))
    Gb_workloads.Polybench.all

let gemm_all_modes () =
  match Gb_workloads.Polybench.by_name "gemm" with
  | Some w -> validate Gb_core.Mitigation.all_modes w ()
  | None -> Alcotest.fail "gemm missing"

let matmul_ptr_all_modes () =
  validate Gb_core.Mitigation.all_modes Gb_workloads.Polybench.matmul_ptr ()

let plain_kernels_have_no_patterns () =
  List.iter
    (fun (w : Gb_workloads.Polybench.t) ->
      let r = run_mode Gb_core.Mitigation.Fine_grained w.Gb_workloads.Polybench.program in
      Alcotest.(check int)
        (w.Gb_workloads.Polybench.name ^ ": no Spectre pattern")
        0 r.Gb_system.Processor.patterns_found)
    Gb_workloads.Polybench.all

let matmul_ptr_triggers_patterns () =
  let r =
    run_mode Gb_core.Mitigation.Fine_grained
      Gb_workloads.Polybench.matmul_ptr.Gb_workloads.Polybench.program
  in
  Alcotest.(check bool) "double indirection detected" true
    (r.Gb_system.Processor.patterns_found > 0);
  Alcotest.(check bool) "loads constrained" true
    (r.Gb_system.Processor.loads_constrained > 0)

let fine_grained_costs_nothing_on_plain_kernels () =
  List.iter
    (fun name ->
      match Gb_workloads.Polybench.by_name name with
      | None -> Alcotest.failf "%s missing" name
      | Some w ->
        let unsafe = run_mode Gb_core.Mitigation.Unsafe w.Gb_workloads.Polybench.program in
        let fine =
          run_mode Gb_core.Mitigation.Fine_grained w.Gb_workloads.Polybench.program
        in
        let ratio =
          Int64.to_float fine.Gb_system.Processor.cycles
          /. Int64.to_float unsafe.Gb_system.Processor.cycles
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s: fine-grained ~ unsafe (%.3f)" name ratio)
          true
          (ratio < 1.01))
    [ "gemm"; "atax"; "jacobi-1d" ]

let names_unique () =
  let names =
    List.map
      (fun (w : Gb_workloads.Polybench.t) -> w.Gb_workloads.Polybench.name)
      (Gb_workloads.Polybench.matmul_ptr :: Gb_workloads.Polybench.all)
  in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let () =
  Alcotest.run "workloads"
    [
      ("checksums", kernel_cases);
      ( "modes",
        [
          Alcotest.test_case "gemm all modes" `Quick gemm_all_modes;
          Alcotest.test_case "matmul-ptr all modes" `Quick matmul_ptr_all_modes;
        ] );
      ( "paper-observations",
        [
          Alcotest.test_case "plain kernels: no patterns" `Quick
            plain_kernels_have_no_patterns;
          Alcotest.test_case "matmul-ptr: patterns" `Quick
            matmul_ptr_triggers_patterns;
          Alcotest.test_case "fine-grained is free on plain kernels" `Quick
            fine_grained_costs_nothing_on_plain_kernels;
        ] );
      ("registry", [ Alcotest.test_case "names unique" `Quick names_unique ]);
    ]
