(* Tests for the utility library: deterministic RNG, statistics, table
   rendering. *)

let rng_deterministic () =
  let a = Gb_util.Rng.create 42L in
  let b = Gb_util.Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Gb_util.Rng.next a) (Gb_util.Rng.next b)
  done

let rng_zero_seed () =
  let r = Gb_util.Rng.create 0L in
  Alcotest.(check bool) "zero seed produces values" true
    (not (Int64.equal (Gb_util.Rng.next r) 0L))

let rng_bounds_prop =
  QCheck.Test.make ~count:500 ~name:"Rng.int stays in bounds"
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Gb_util.Rng.create seed in
      let v = Gb_util.Rng.int r bound in
      v >= 0 && v < bound)

let rng_choose () =
  let r = Gb_util.Rng.create 7L in
  let arr = [| 1; 2; 3 |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "choose picks a member" true
      (Array.mem (Gb_util.Rng.choose r arr) arr)
  done

let stats_basics () =
  Alcotest.(check (float 1e-9)) "mean" 2. (Gb_util.Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0. (Gb_util.Stats.mean []);
  Alcotest.(check (float 1e-9)) "geomean" 2. (Gb_util.Stats.geomean [ 1.; 4. ]);
  Alcotest.(check (float 1e-9)) "geomean empty" 1. (Gb_util.Stats.geomean []);
  Alcotest.(check (float 1e-9)) "median odd" 2. (Gb_util.Stats.median [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "median even" 2.5
    (Gb_util.Stats.median [ 4.; 1.; 2.; 3. ]);
  let lo, hi = Gb_util.Stats.min_max [ 3.; 1.; 2. ] in
  Alcotest.(check (float 1e-9)) "min" 1. lo;
  Alcotest.(check (float 1e-9)) "max" 3. hi

let percentile_prop =
  QCheck.Test.make ~count:300 ~name:"percentile within range"
    QCheck.(pair (float_range 0. 1.)
              (list_of_size (Gen.int_range 1 50) (float_range 0. 100.)))
    (fun (p, xs) ->
      let v = Gb_util.Stats.percentile p xs in
      let lo, hi = Gb_util.Stats.min_max xs in
      v >= lo && v <= hi)

let table_render () =
  let s =
    Gb_util.Table.render ~header:[ "name"; "value" ]
      ~rows:[ [ "a"; "1" ]; [ "long-name"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "header + separator + 2 rows + trailing" 5
    (List.length lines);
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  Alcotest.(check bool) "uniform width" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let table_pads_short_rows () =
  let s = Gb_util.Table.render ~header:[ "a"; "b"; "c" ] ~rows:[ [ "x" ] ] in
  Alcotest.(check bool) "renders without exception" true (String.length s > 0)

let json_encoding () =
  let module J = Gb_util.Json in
  Alcotest.(check string) "scalar" "42" (J.to_string (J.Int 42));
  Alcotest.(check string) "null" "null" (J.to_string J.Null);
  Alcotest.(check string) "bool" "true" (J.to_string (J.Bool true));
  Alcotest.(check string) "float" "1.5" (J.to_string (J.Float 1.5));
  Alcotest.(check string) "integral float" "2.0" (J.to_string (J.Float 2.));
  Alcotest.(check string) "string escaping" {|"a\"b\\c\nd"|}
    (J.to_string (J.String "a\"b\\c\nd"));
  Alcotest.(check string) "control chars" "\"\\u0001\""
    (J.to_string (J.String "\001"));
  Alcotest.(check string) "empty containers" {|[{},[]]|}
    (J.to_string (J.List [ J.Obj []; J.List [] ]));
  Alcotest.(check string) "object" {|{"a":1,"b":[2,3]}|}
    (J.to_string (J.Obj [ ("a", J.Int 1); ("b", J.List [ J.Int 2; J.Int 3 ]) ]))

let json_pretty_roundtrip () =
  let module J = Gb_util.Json in
  let v = J.Obj [ ("xs", J.List [ J.Int 1; J.String "two" ]); ("ok", J.Bool false) ] in
  let pretty = J.to_string_pretty v in
  (* pretty form contains the same tokens, plus layout *)
  Alcotest.(check bool) "has newlines" true (String.contains pretty '\n');
  let strip s =
    String.to_seq s
    |> Seq.filter (fun c -> c <> ' ' && c <> '\n')
    |> String.of_seq
  in
  Alcotest.(check string) "same content" (J.to_string v) (strip pretty)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          Alcotest.test_case "zero seed" `Quick rng_zero_seed;
          Alcotest.test_case "choose" `Quick rng_choose;
          qt rng_bounds_prop;
        ] );
      ( "stats",
        [ Alcotest.test_case "basics" `Quick stats_basics; qt percentile_prop ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick table_render;
          Alcotest.test_case "pads short rows" `Quick table_pads_short_rows;
        ] );
      ( "json",
        [
          Alcotest.test_case "encoding" `Quick json_encoding;
          Alcotest.test_case "pretty round-trip" `Quick json_pretty_roundtrip;
        ] );
    ]
