(* Tests for the set-associative cache model: hit/miss behaviour, LRU
   replacement, flush semantics, and the invariants the flush+reload side
   channel relies on. *)

let small_config =
  (* 4 sets x 2 ways x 64-byte lines = 512 bytes: easy to reason about *)
  Gb_cache.Cache.{ size_bytes = 512; ways = 2; line_bytes = 64 }

let addr_of ~set ~tag = ((tag * 4) + set) * 64

let read c addr = Gb_cache.Cache.access c ~addr ~write:false

let basic_hit_miss () =
  let c = Gb_cache.Cache.create small_config in
  Alcotest.(check bool) "cold miss" false (read c 0);
  Alcotest.(check bool) "warm hit" true (read c 0);
  Alcotest.(check bool) "same line hit" true (read c 63);
  Alcotest.(check bool) "next line miss" false (read c 64)

let lru_eviction () =
  let c = Gb_cache.Cache.create small_config in
  let a = addr_of ~set:0 ~tag:1
  and b = addr_of ~set:0 ~tag:2
  and d = addr_of ~set:0 ~tag:3 in
  ignore (read c a);
  ignore (read c b);
  (* touch [a] again so [b] is LRU *)
  Alcotest.(check bool) "a still present" true (read c a);
  ignore (read c d);
  Alcotest.(check bool) "b evicted" false (Gb_cache.Cache.contains c b);
  Alcotest.(check bool) "a survives" true (Gb_cache.Cache.contains c a);
  Alcotest.(check bool) "d present" true (Gb_cache.Cache.contains c d)

let flush_semantics () =
  let c = Gb_cache.Cache.create small_config in
  ignore (read c 0);
  Gb_cache.Cache.flush_line c 32 (* same line as 0 *);
  Alcotest.(check bool) "flushed" false (Gb_cache.Cache.contains c 0);
  ignore (read c 0);
  ignore (read c 64);
  Gb_cache.Cache.flush_all c;
  Alcotest.(check bool) "all flushed (0)" false (Gb_cache.Cache.contains c 0);
  Alcotest.(check bool) "all flushed (64)" false (Gb_cache.Cache.contains c 64)

let straddling_access () =
  let c = Gb_cache.Cache.create small_config in
  (* 8 bytes starting 4 bytes before a line boundary touch two lines *)
  ignore (Gb_cache.Cache.access_range c ~addr:60 ~size:8 ~write:false);
  Alcotest.(check bool) "first line" true (Gb_cache.Cache.contains c 0);
  Alcotest.(check bool) "second line" true (Gb_cache.Cache.contains c 64)

let stats_counting () =
  let c = Gb_cache.Cache.create small_config in
  ignore (read c 0);
  ignore (read c 0);
  ignore (Gb_cache.Cache.access c ~addr:64 ~write:true);
  let s = Gb_cache.Cache.stats c in
  Alcotest.(check int) "reads" 2 s.Gb_cache.Cache.reads;
  Alcotest.(check int) "read misses" 1 s.Gb_cache.Cache.read_misses;
  Alcotest.(check int) "writes" 1 s.Gb_cache.Cache.writes;
  Alcotest.(check int) "write misses" 1 s.Gb_cache.Cache.write_misses

(* Property: after accessing an address, contains() holds; after flushing
   its line, it does not. *)
let flush_reload_prop =
  QCheck.Test.make ~count:500 ~name:"access then flush round-trip"
    QCheck.(small_nat)
    (fun n ->
      let c = Gb_cache.Cache.create small_config in
      let addr = n * 8 in
      ignore (Gb_cache.Cache.access c ~addr ~write:false);
      let present = Gb_cache.Cache.contains c addr in
      Gb_cache.Cache.flush_line c addr;
      let absent = not (Gb_cache.Cache.contains c addr) in
      present && absent)

(* Property: a set never holds more than [ways] distinct lines; filling a
   set with [ways] lines keeps all of them resident (no premature
   eviction). *)
let capacity_prop =
  QCheck.Test.make ~count:200 ~name:"way capacity exact"
    QCheck.(int_range 0 3)
    (fun set ->
      let c = Gb_cache.Cache.create small_config in
      let addrs = List.init small_config.Gb_cache.Cache.ways
          (fun tag -> addr_of ~set ~tag) in
      List.iter (fun a -> ignore (read c a)) addrs;
      List.for_all (Gb_cache.Cache.contains c) addrs)

(* Property: victim of an eviction is always the least recently used way. *)
let lru_prop =
  QCheck.Test.make ~count:300 ~name:"eviction victim is LRU"
    QCheck.(pair (int_range 0 3) (list_of_size (Gen.return 6) (int_range 0 4)))
    (fun (set, tag_seq) ->
      let module C = Gb_cache.Cache in
      let c = C.create small_config in
      let ways = small_config.C.ways in
      (* model: resident tags, most recent first, clamped to associativity *)
      let model = ref [] in
      List.for_all
        (fun tag ->
          let addr = addr_of ~set ~tag in
          let model_hit = List.mem tag !model in
          let hit = read c addr in
          let mru = tag :: List.filter (fun t -> t <> tag) !model in
          model := List.filteri (fun i _ -> i < ways) mru;
          hit = model_hit
          && List.for_all (fun t -> C.contains c (addr_of ~set ~tag:t)) !model)
        tag_seq)

let hierarchy_costs () =
  let h = Gb_cache.Hierarchy.create Gb_cache.Hierarchy.default_config in
  let hit1 = Gb_cache.Hierarchy.access h ~addr:0 ~size:8 ~write:false in
  let hit2 = Gb_cache.Hierarchy.access h ~addr:0 ~size:8 ~write:false in
  Alcotest.(check bool) "first is miss" false hit1;
  Alcotest.(check bool) "second is hit" true hit2;
  Alcotest.(check int) "interp miss cost" 40
    (Gb_cache.Hierarchy.interp_cost h ~hit:false);
  Alcotest.(check int) "interp hit cost" 1
    (Gb_cache.Hierarchy.interp_cost h ~hit:true);
  Alcotest.(check int) "vliw hit cost" 0
    (Gb_cache.Hierarchy.vliw_cost h ~hit:true)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "cache"
    [
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick basic_hit_miss;
          Alcotest.test_case "lru eviction" `Quick lru_eviction;
          Alcotest.test_case "flush" `Quick flush_semantics;
          Alcotest.test_case "straddling access" `Quick straddling_access;
          Alcotest.test_case "stats" `Quick stats_counting;
          qt flush_reload_prop;
          qt capacity_prop;
          qt lru_prop;
        ] );
      ("hierarchy", [ Alcotest.test_case "costs" `Quick hierarchy_costs ]);
    ]
