examples/adaptive_dbt.mli:
