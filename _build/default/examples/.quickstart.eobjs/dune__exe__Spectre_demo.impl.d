examples/spectre_demo.ml: Array Char Format Gb_attack Gb_core Gb_system List Printf String
