examples/custom_kernel.ml: Array Bytes Format Gb_core Gb_dbt Gb_kernelc Gb_riscv Gb_system Gb_vliw List Printf
