examples/quickstart.mli:
