examples/quickstart.ml: Bytes Gb_core Gb_kernelc Gb_riscv Gb_system Int64 Printf
