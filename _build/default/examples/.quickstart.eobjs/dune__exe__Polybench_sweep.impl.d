examples/polybench_sweep.ml: Gb_core Gb_experiments Gb_util Gb_workloads Int64 List Printf
