examples/adaptive_dbt.ml: Format Gb_attack Gb_core Gb_dbt Gb_kernelc Gb_system Gb_workloads List Printf
