(* Quickstart: write a small guest program in the kernel DSL, run it on the
   co-designed DBT processor, and look at what the DBT layer did.

     dune exec examples/quickstart.exe *)

open Gb_kernelc.Dsl

(* A dot product over two 64-element vectors — enough iterations for the
   loop to become hot, get translated and run on the VLIW core. *)
let program =
  {
    Gb_kernelc.Ast.arrays =
      [ array "a" Gb_kernelc.Ast.I64 [ 64 ]; array "b" Gb_kernelc.Ast.I64 [ 64 ] ];
    body =
      [
        for_ "i" (c 0) (c 64)
          [
            ("a", [ v "i" ]) <-: (v "i" *: c 3);
            ("b", [ v "i" ]) <-: (v "i" +: c 1);
          ];
        let_ "acc" (c 0);
        for_ "r" (c 0) (c 50) (* repeat to make the loop hot *)
          [
            set "acc" (c 0);
            for_ "i" (c 0) (c 64)
              [ set "acc" (v "acc" +: (arr "a" [ v "i" ] *: arr "b" [ v "i" ])) ];
          ];
      ];
    result = v "acc" &: c 255;
  }

let () =
  let asm = Gb_kernelc.Compile.assemble program in
  Printf.printf "guest program: %d bytes of rv64im code+data at 0x%x\n"
    (Bytes.length asm.Gb_riscv.Asm.image)
    asm.Gb_riscv.Asm.base;

  (* golden model first: the reference interpreter *)
  let mem = Gb_riscv.Mem.create ~size:(1 lsl 20) in
  Gb_riscv.Asm.load mem asm;
  let interp = Gb_riscv.Interp.create ~mem ~pc:asm.Gb_riscv.Asm.entry () in
  let expected = Gb_riscv.Interp.run interp in
  Printf.printf "reference interpreter: exit code %d after %Ld instructions\n"
    expected interp.Gb_riscv.Interp.insn_count;

  (* the full processor: interpreter + DBT + VLIW + cache, shared clock *)
  let r =
    Gb_system.Processor.run_program
      ~config:(Gb_system.Processor.config_for Gb_core.Mitigation.Unsafe)
      asm
  in
  assert (r.Gb_system.Processor.exit_code = expected);
  Printf.printf "DBT processor: exit code %d in %Ld cycles\n"
    r.Gb_system.Processor.exit_code r.Gb_system.Processor.cycles;
  Printf.printf "  %d trace(s) translated, %Ld trace runs, %Ld bundles\n"
    r.Gb_system.Processor.translations r.Gb_system.Processor.trace_runs
    r.Gb_system.Processor.bundles;
  Printf.printf "  %Ld instructions stayed on the interpreter\n"
    r.Gb_system.Processor.interp_insns;
  Printf.printf "  %d load(s) executed under MCB speculation\n"
    r.Gb_system.Processor.spec_loads;

  (* same binary with the GhostBusters countermeasure: nothing changes on
     innocent code *)
  let safe =
    Gb_system.Processor.run_program
      ~config:(Gb_system.Processor.config_for Gb_core.Mitigation.Fine_grained)
      asm
  in
  assert (safe.Gb_system.Processor.exit_code = expected);
  Printf.printf
    "with the GhostBusters countermeasure: %Ld cycles (%.1f%% of unsafe), %d \
     Spectre pattern(s) detected\n"
    safe.Gb_system.Processor.cycles
    (100.
    *. Int64.to_float safe.Gb_system.Processor.cycles
    /. Int64.to_float r.Gb_system.Processor.cycles)
    safe.Gb_system.Processor.patterns_found
