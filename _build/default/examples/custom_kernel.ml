(* Writing your own workload: a histogram kernel with a data-dependent
   access pattern, compiled with the kernel DSL, validated against the
   reference interpreter, and inspected at the VLIW level.

     dune exec examples/custom_kernel.exe *)

open Gb_kernelc.Dsl

(* hist[data[i]]++ — the classic indirect-update loop. Note the double
   indirection: the store address depends on a loaded value. Under the
   aggressive optimizer the *load* of hist[data[i]] is speculative with a
   poisoned address, so the GhostBusters analysis flags it. *)
let n = 512

let program =
  {
    Gb_kernelc.Ast.arrays =
      [ array "data" Gb_kernelc.Ast.I8 [ n ]; array "hist" Gb_kernelc.Ast.I64 [ 16 ] ];
    body =
      [
        for_ "i" (c 0) (c n)
          [ ("data", [ v "i" ]) <-: ((v "i" *: c 7) &: c 15) ];
        for_ "i" (c 0) (c n)
          [
            let_ "bucket" (arr "data" [ v "i" ]);
            ("hist", [ v "bucket" ]) <-: (arr "hist" [ v "bucket" ] +: c 1);
          ];
        (* fold the histogram *)
        let_ "acc" (c 0);
        for_ "i" (c 0) (c 16)
          [ set "acc" ((v "acc" *: c 7) ^: arr "hist" [ v "i" ]) ];
      ];
    result = v "acc" &: c 255;
  }

let () =
  let asm = Gb_kernelc.Compile.assemble program in
  let mem = Gb_riscv.Mem.create ~size:(1 lsl 20) in
  Gb_riscv.Asm.load mem asm;
  let interp = Gb_riscv.Interp.create ~mem ~pc:asm.Gb_riscv.Asm.entry () in
  let expected = Gb_riscv.Interp.run interp in

  Printf.printf "histogram kernel: reference exit code %d\n\n" expected;
  List.iter
    (fun mode ->
      let r =
        Gb_system.Processor.run_program
          ~config:(Gb_system.Processor.config_for mode)
          asm
      in
      assert (r.Gb_system.Processor.exit_code = expected);
      Printf.printf
        "%-16s %8Ld cycles, %2d patterns detected, %2d loads constrained\n"
        (Gb_core.Mitigation.mode_name mode)
        r.Gb_system.Processor.cycles r.Gb_system.Processor.patterns_found
        r.Gb_system.Processor.loads_constrained)
    Gb_core.Mitigation.all_modes;

  (* peek at the hot trace the DBT engine produced *)
  let proc =
    Gb_system.Processor.create
      ~config:(Gb_system.Processor.config_for Gb_core.Mitigation.Unsafe)
      asm
  in
  let _ = Gb_system.Processor.run proc in
  let engine = Gb_system.Processor.engine proc in
  let best = ref None in
  let limit = asm.Gb_riscv.Asm.base + Bytes.length asm.Gb_riscv.Asm.image in
  let rec scan pc =
    if pc < limit then begin
      (match Gb_dbt.Engine.lookup engine pc with
      | Some trace -> (
        match !best with
        | Some (t : Gb_vliw.Vinsn.trace) when t.Gb_vliw.Vinsn.guest_insns >= trace.Gb_vliw.Vinsn.guest_insns -> ()
        | Some _ | None -> best := Some trace)
      | None -> ());
      scan (pc + 4)
    end
  in
  scan asm.Gb_riscv.Asm.base;
  match !best with
  | Some trace ->
    Printf.printf
      "\nlargest translated trace (%d guest insns -> %d bundles, IPC up to \
       %.2f):\n\n"
      trace.Gb_vliw.Vinsn.guest_insns
      (Array.length trace.Gb_vliw.Vinsn.bundles)
      (float_of_int trace.Gb_vliw.Vinsn.guest_insns
      /. float_of_int (Array.length trace.Gb_vliw.Vinsn.bundles));
    Format.printf "%a@." Gb_vliw.Vinsn.pp_trace trace
  | None -> print_endline "nothing was translated"
