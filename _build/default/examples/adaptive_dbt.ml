(* The DBT engine's run-time feedback loops, demonstrated live:

   1. adaptive re-translation — a program phase change flips a branch the
      hot trace was specialised on; the engine notices the side-exit
      storm, forgets the stale bias, re-learns it and rebuilds;
   2. adaptive de-speculation — a workload whose loads genuinely alias
      in-flight stores (nussinov's DP table) suffers MCB rollback storms;
      re-translating without memory speculation is faster — and, run on
      the Spectre v4 gadget, the same mechanism starves the attack.

     dune exec examples/adaptive_dbt.exe *)

open Gb_kernelc.Dsl

let with_engine config f =
  { config with
    Gb_system.Processor.engine = f config.Gb_system.Processor.engine }

let base = Gb_system.Processor.config_for Gb_core.Mitigation.Unsafe

(* --- 1. bias flip ------------------------------------------------------- *)

let phase_flip n =
  Gb_kernelc.Compile.assemble
    {
      Gb_kernelc.Ast.arrays = [ array "a" Gb_kernelc.Ast.I64 [ 64 ] ];
      body =
        [
          for_ "i" (c 0) (c 64) [ ("a", [ v "i" ]) <-: (v "i" *: c 3) ];
          let_ "acc" (c 0);
          for_ "i" (c 0) (c (2 * n))
            [
              if_
                (v "i" <: c n)
                [ set "acc" (v "acc" +: (arr "a" [ v "i" &: c 63 ] *: c 3)) ]
                [ set "acc" (v "acc" ^: (arr "a" [ (v "i" *: c 7) &: c 63 ] +: c 1)) ];
            ];
        ];
      result = v "acc" &: c 255;
    }

let demo_retranslation () =
  print_endline "--- adaptive re-translation (branch bias flips mid-run) ---";
  let program = phase_flip 800 in
  List.iter
    (fun enabled ->
      let config =
        with_engine base (fun e ->
            { e with Gb_dbt.Engine.adaptive_retranslate = enabled })
      in
      let proc = Gb_system.Processor.create ~config program in
      let r = Gb_system.Processor.run proc in
      let stats = Gb_dbt.Engine.stats (Gb_system.Processor.engine proc) in
      Printf.printf
        "  retranslation %-3s  %8Ld cycles, %Ld side exits, %d rebuild(s)\n"
        (if enabled then "on" else "off")
        r.Gb_system.Processor.cycles r.Gb_system.Processor.side_exits
        stats.Gb_dbt.Engine.retranslations)
    [ false; true ]

(* --- 2. conflict-driven de-speculation ---------------------------------- *)

let demo_despeculation () =
  print_endline
    "\n--- adaptive de-speculation (misspeculating DP workload) ---";
  let program =
    match Gb_workloads.Polybench.by_name "nussinov" with
    | Some w -> Gb_kernelc.Compile.assemble w.Gb_workloads.Polybench.program
    | None -> assert false
  in
  List.iter
    (fun enabled ->
      let config =
        with_engine base (fun e ->
            { e with Gb_dbt.Engine.adaptive_despec = enabled })
      in
      let proc = Gb_system.Processor.create ~config program in
      let r = Gb_system.Processor.run proc in
      let stats = Gb_dbt.Engine.stats (Gb_system.Processor.engine proc) in
      Printf.printf
        "  despeculation %-3s  %8Ld cycles, %Ld rollbacks, %d de-spec'd trace(s)\n"
        (if enabled then "on" else "off")
        r.Gb_system.Processor.cycles r.Gb_system.Processor.rollbacks
        stats.Gb_dbt.Engine.despeculations)
    [ false; true ];
  (* the same mechanism, pointed at the Spectre v4 gadget *)
  let secret = "GHOSTBUS" in
  print_endline "\n  ... and pointed at the Spectre v4 gadget:";
  List.iter
    (fun enabled ->
      let config =
        with_engine base (fun e ->
            { e with Gb_dbt.Engine.adaptive_despec = enabled })
      in
      let o =
        Gb_attack.Runner.run ~config ~mode:Gb_core.Mitigation.Unsafe ~secret
          (Gb_attack.Spectre_v4.program ~secret ())
      in
      Printf.printf "  despeculation %-3s  %s\n"
        (if enabled then "on" else "off")
        (Format.asprintf "%a" Gb_attack.Runner.pp_outcome o))
    [ false; true ]

let () =
  print_endline "Adaptive feedback in the DBT engine\n";
  demo_retranslation ();
  demo_despeculation ()
