(* Command-line interface to the GhostBusters reproduction.

     ghostbusters list                        workloads and attack variants
     ghostbusters run gemm --mode unsafe     run a workload, print stats
     ghostbusters attack v1 --mode unsafe    run a Spectre PoC
     ghostbusters trace gemm --mode unsafe   dump the hot translated trace
     ghostbusters explain v1|v4              poisoning analysis of Figs 1-2
     ghostbusters figure4                    the E2 table *)

open Cmdliner

let mode_conv =
  let parse s =
    match
      List.find_opt
        (fun m -> Gb_core.Mitigation.mode_name m = s)
        Gb_core.Mitigation.all_modes
    with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown mode %S (expected one of: %s)" s
             (String.concat ", "
                (List.map Gb_core.Mitigation.mode_name
                   Gb_core.Mitigation.all_modes))))
  in
  let print ppf m = Format.fprintf ppf "%s" (Gb_core.Mitigation.mode_name m) in
  Arg.conv (parse, print)

let mode_arg =
  Arg.(
    value
    & opt mode_conv Gb_core.Mitigation.Unsafe
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:
          "Mitigation mode: unsafe, fine-grained, fence-on-detect or \
           no-speculation.")

let secret_arg =
  Arg.(
    value
    & opt string Gb_experiments.Experiments.default_secret
    & info [ "s"; "secret" ] ~docv:"SECRET" ~doc:"Secret string to exfiltrate.")

let workload_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"WORKLOAD" ~doc:"Workload name (see $(b,list)).")

let print_result (r : Gb_system.Processor.result) =
  Printf.printf "exit code        %d\n" r.Gb_system.Processor.exit_code;
  Printf.printf "cycles           %Ld\n" r.Gb_system.Processor.cycles;
  Printf.printf "interp insns     %Ld\n" r.Gb_system.Processor.interp_insns;
  Printf.printf "trace runs       %Ld\n" r.Gb_system.Processor.trace_runs;
  Printf.printf "bundles          %Ld\n" r.Gb_system.Processor.bundles;
  Printf.printf "side exits       %Ld\n" r.Gb_system.Processor.side_exits;
  Printf.printf "rollbacks        %Ld\n" r.Gb_system.Processor.rollbacks;
  Printf.printf "stall cycles     %Ld\n" r.Gb_system.Processor.stall_cycles;
  Printf.printf "translations     %d\n" r.Gb_system.Processor.translations;
  Printf.printf "spec loads       %d\n" r.Gb_system.Processor.spec_loads;
  Printf.printf "patterns         %d\n" r.Gb_system.Processor.patterns_found;
  Printf.printf "constrained      %d\n" r.Gb_system.Processor.loads_constrained;
  Printf.printf "fences           %d\n" r.Gb_system.Processor.fences_inserted;
  if r.Gb_system.Processor.output <> "" then
    Printf.printf "output           %S\n" r.Gb_system.Processor.output

(* design-space knobs shared by run/attack *)
let width_arg =
  Arg.(value & opt (some int) None
       & info [ "width" ] ~docv:"N" ~doc:"VLIW issue width.")

let mcb_arg =
  Arg.(value & opt (some int) None
       & info [ "mcb" ] ~docv:"N" ~doc:"MCB entries (0 disables memory speculation).")

let hot_arg =
  Arg.(value & opt (some int) None
       & info [ "hot" ] ~docv:"N" ~doc:"Hot threshold before trace translation.")

let unroll_arg =
  Arg.(value & opt (some int) None
       & info [ "unroll" ] ~docv:"N" ~doc:"Trace-constructor revisit limit.")

let cache_kib_arg =
  Arg.(value & opt (some int) None
       & info [ "cache-kib" ] ~docv:"KIB" ~doc:"L1D capacity in KiB.")

let build_config mode width mcb hot unroll cache_kib =
  let config = Gb_system.Processor.config_for mode in
  let engine = config.Gb_system.Processor.engine in
  let resources =
    match width with
    | None -> engine.Gb_dbt.Engine.resources
    | Some w ->
      { Gb_dbt.Sched.width = w; mem_slots = max 1 (w / 4);
        mul_slots = max 1 (w / 4); branch_slots = 1 }
  in
  let opt_override =
    match mcb with
    | None -> engine.Gb_dbt.Engine.opt_override
    | Some tags ->
      Some
        { (Gb_core.Mitigation.opt_of_mode mode) with
          Gb_ir.Opt_config.mem_spec = tags > 0; mcb_tags = tags }
  in
  let trace_cfg =
    match unroll with
    | None -> engine.Gb_dbt.Engine.trace_cfg
    | Some visits ->
      { engine.Gb_dbt.Engine.trace_cfg with Gb_dbt.Trace_builder.max_visits = visits }
  in
  let engine =
    { engine with
      Gb_dbt.Engine.resources; opt_override; trace_cfg;
      hot_threshold =
        Option.value ~default:engine.Gb_dbt.Engine.hot_threshold hot }
  in
  let hier =
    match cache_kib with
    | None -> config.Gb_system.Processor.hier
    | Some kib ->
      { config.Gb_system.Processor.hier with
        Gb_cache.Hierarchy.cache =
          { Gb_cache.Cache.size_bytes = kib * 1024; ways = 8; line_bytes = 64 } }
  in
  { config with Gb_system.Processor.engine; hier }

let find_workload name =
  match Gb_workloads.Polybench.by_name name with
  | Some w -> Ok w
  | None -> Error (`Msg (Printf.sprintf "unknown workload %S; try 'list'" name))

(* --- list --------------------------------------------------------------- *)

let list_cmd =
  let run () =
    Printf.printf "Workloads (Polybench, integer ports):\n";
    List.iter
      (fun (w : Gb_workloads.Polybench.t) ->
        Printf.printf "  %-12s %s\n" w.Gb_workloads.Polybench.name
          w.Gb_workloads.Polybench.description)
      Gb_workloads.Polybench.all;
    let p = Gb_workloads.Polybench.matmul_ptr in
    Printf.printf "  %-12s %s\n" p.Gb_workloads.Polybench.name
      p.Gb_workloads.Polybench.description;
    Printf.printf "\nAttack variants: v1 (trace speculation), v4 (MCB)\n";
    Printf.printf "Modes: %s\n"
      (String.concat ", "
         (List.map Gb_core.Mitigation.mode_name Gb_core.Mitigation.all_modes))
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads, attacks and modes")
    Term.(const run $ const ())

(* --- run ---------------------------------------------------------------- *)

let report_flag =
  Arg.(
    value & flag
    & info [ "report" ]
        ~doc:"Print the detailed execution report (tiers, IPC, cache, hottest regions).")

let run_json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")

let run_cmd =
  let run name mode report json width mcb hot unroll cache_kib =
    match find_workload name with
    | Error e -> Error e
    | Ok w ->
      let proc =
        Gb_system.Processor.create
          ~config:(build_config mode width mcb hot unroll cache_kib)
          (Gb_kernelc.Compile.assemble w.Gb_workloads.Polybench.program)
      in
      let r = Gb_system.Processor.run proc in
      if json then
        print_endline
          (Gb_util.Json.to_string_pretty
             (Gb_system.Report.to_json (Gb_system.Report.of_processor proc r)))
      else if report then
        Format.printf "%s under %s@.%a" name
          (Gb_core.Mitigation.mode_name mode)
          (Gb_system.Report.pp ?max_regions:None)
          (Gb_system.Report.of_processor proc r)
      else begin
        Printf.printf "%s under %s\n" name (Gb_core.Mitigation.mode_name mode);
        print_result r
      end;
      Ok ()
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a workload on the DBT processor")
    Term.(
      term_result
        (const run $ workload_arg $ mode_arg $ report_flag $ run_json_flag
        $ width_arg $ mcb_arg $ hot_arg $ unroll_arg $ cache_kib_arg))

(* --- attack ------------------------------------------------------------- *)

let variant_arg =
  Arg.(
    required
    & pos 0 (some (enum [ ("v1", `V1); ("v4", `V4) ])) None
    & info [] ~docv:"VARIANT" ~doc:"Spectre variant: v1 or v4.")

let attack_cmd =
  let run variant mode secret width mcb hot unroll cache_kib =
    let program =
      match variant with
      | `V1 -> Gb_attack.Spectre_v1.program ~secret ()
      | `V4 -> Gb_attack.Spectre_v4.program ~secret ()
    in
    let config = build_config mode width mcb hot unroll cache_kib in
    let o = Gb_attack.Runner.run ~config ~mode ~secret program in
    Printf.printf "%s\n" (Format.asprintf "%a" Gb_attack.Runner.pp_outcome o);
    print_result o.Gb_attack.Runner.result
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Run a Spectre proof-of-concept attack")
    Term.(
      const run $ variant_arg $ mode_arg $ secret_arg $ width_arg $ mcb_arg
      $ hot_arg $ unroll_arg $ cache_kib_arg)

(* --- trace -------------------------------------------------------------- *)

let trace_cmd =
  let run name mode =
    match find_workload name with
    | Error e -> Error e
    | Ok w ->
      let program =
        Gb_kernelc.Compile.assemble w.Gb_workloads.Polybench.program
      in
      let proc =
        Gb_system.Processor.create
          ~config:(Gb_system.Processor.config_for mode)
          program
      in
      let _ = Gb_system.Processor.run proc in
      let engine = Gb_system.Processor.engine proc in
      let found = ref 0 in
      (* dump every translated trace, hottest first is not tracked; dump in
         address order *)
      let rec scan pc limit =
        if pc < limit then begin
          (match Gb_dbt.Engine.lookup engine pc with
          | Some trace ->
            incr found;
            Format.printf "%a@." Gb_vliw.Vinsn.pp_trace trace
          | None -> ());
          scan (pc + 4) limit
        end
      in
      scan program.Gb_riscv.Asm.base
        (program.Gb_riscv.Asm.base + Bytes.length program.Gb_riscv.Asm.image);
      Printf.printf "%d translated trace(s)\n" !found;
      Ok ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a workload and dump its translated VLIW traces")
    Term.(term_result (const run $ workload_arg $ mode_arg))

(* --- explain ------------------------------------------------------------ *)

let dot_flag =
  Arg.(value & flag & info [ "dot" ] ~doc:"Emit a Graphviz rendering of the poisoned data-flow graph.")

let explain_cmd =
  let run variant dot =
    (* Build the attack's hot loop as the DBT engine would see it, and dump
       the poisoning analysis (the executable version of Figure 3). *)
    let secret = "S" in
    let program =
      match variant with
      | `V1 -> Gb_attack.Spectre_v1.program ~secret ()
      | `V4 -> Gb_attack.Spectre_v4.program ~secret ()
    in
    let asm = Gb_kernelc.Compile.assemble program in
    (* run under fine-grained so the engine records where patterns fire *)
    let proc =
      Gb_system.Processor.create
        ~config:(Gb_system.Processor.config_for Gb_core.Mitigation.Fine_grained)
        asm
    in
    let _ = Gb_system.Processor.run proc in
    let engine = Gb_system.Processor.engine proc in
    let shown = ref 0 in
    let rec scan pc limit =
      if pc < limit && !shown < 2 then begin
        (match Gb_dbt.Engine.lookup engine pc with
        | Some trace
          when trace.Gb_vliw.Vinsn.meta.Gb_vliw.Vinsn.spectre_patterns > 0 ->
          (* rebuild the same trace at IR level, with the aggressive
             optimizer, and show what the analysis sees before mitigation *)
          let gtrace =
            Gb_dbt.Trace_builder.build Gb_dbt.Trace_builder.default_config
              ~mem:(Gb_system.Processor.mem proc)
              ~profile:(Gb_dbt.Engine.branch_profile engine)
              ~entry:pc
          in
          let g =
            Gb_ir.Build.build ~opt:Gb_ir.Opt_config.aggressive
              ~lat:Gb_ir.Latency.default gtrace
          in
          (if dot then begin
             let { Gb_core.Poison.poisoned; patterns } =
               Gb_core.Poison.analyze g
             in
             print_string (Gb_ir.Dot.to_string ~poisoned ~patterns g)
           end
           else
             Format.printf "--- IR block at 0x%x ---@.%a@." pc
               Gb_core.Poison.pp_explain g);
          incr shown
        | Some _ | None -> ());
        scan (pc + 4) limit
      end
    in
    scan asm.Gb_riscv.Asm.base
      (asm.Gb_riscv.Asm.base + Bytes.length asm.Gb_riscv.Asm.image);
    if !shown = 0 then print_endline "no trace with a Spectre pattern found"
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Dump the poisoning analysis of an attack's hot traces (Figure 3, \
          executable)")
    Term.(const run $ variant_arg $ dot_flag)

(* --- disasm ------------------------------------------------------------- *)

let disasm_cmd =
  let run name =
    let program =
      match name with
      | "v1" ->
        Some
          (Gb_kernelc.Compile.assemble
             (Gb_attack.Spectre_v1.program
                ~secret:Gb_experiments.Experiments.default_secret ()))
      | "v4" ->
        Some
          (Gb_kernelc.Compile.assemble
             (Gb_attack.Spectre_v4.program
                ~secret:Gb_experiments.Experiments.default_secret ()))
      | name ->
        Option.map
          (fun (w : Gb_workloads.Polybench.t) ->
            Gb_kernelc.Compile.assemble w.Gb_workloads.Polybench.program)
          (Gb_workloads.Polybench.by_name name)
    in
    match program with
    | None -> Error (`Msg (Printf.sprintf "unknown program %S; try 'list'" name))
    | Some program ->
      print_string (Gb_riscv.Disasm.dump program);
      Ok ()
  in
  Cmd.v
    (Cmd.info "disasm"
       ~doc:"Disassemble a workload's or attack's guest binary")
    Term.(term_result (const run $ workload_arg))

(* --- figure4 ------------------------------------------------------------ *)

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")

let figure4_cmd =
  let run json =
    let data = Gb_experiments.Experiments.e2_figure4 () in
    if json then
      print_endline
        (Gb_util.Json.to_string_pretty
           (Gb_experiments.Experiments.figure4_json data))
    else begin
      let pct f = Printf.sprintf "%.1f%%" (100. *. f) in
      let rows =
        List.map
          (fun (mc : Gb_experiments.Experiments.mode_cycles) ->
            [
              mc.Gb_experiments.Experiments.w_name;
              pct
                (Gb_experiments.Experiments.slowdown mc
                   ~mode:Gb_core.Mitigation.Fine_grained);
              pct
                (Gb_experiments.Experiments.slowdown mc
                   ~mode:Gb_core.Mitigation.No_speculation);
            ])
          data
      in
      Gb_util.Table.print
        ~header:[ "application"; "our approach"; "no speculation" ]
        ~rows
    end
  in
  Cmd.v (Cmd.info "figure4" ~doc:"Regenerate the paper's Figure 4 series")
    Term.(const run $ json_flag)

let () =
  let doc =
    "GhostBusters: Spectre attacks and their mitigation on a DBT-based \
     processor (DATE 2020 reproduction)"
  in
  let info = Cmd.info "ghostbusters" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; attack_cmd; trace_cmd; explain_cmd; disasm_cmd;
            figure4_cmd ]))
