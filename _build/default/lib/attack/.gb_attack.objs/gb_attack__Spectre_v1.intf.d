lib/attack/spectre_v1.mli: Gb_kernelc
