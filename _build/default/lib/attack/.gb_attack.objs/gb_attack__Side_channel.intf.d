lib/attack/side_channel.mli: Gb_kernelc Gb_riscv
