lib/attack/side_channel.ml: Bytes Char Gb_cache Gb_kernelc Gb_riscv String
