lib/attack/runner.mli: Format Gb_core Gb_kernelc Gb_system
