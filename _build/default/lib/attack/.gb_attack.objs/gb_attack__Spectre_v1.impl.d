lib/attack/spectre_v1.ml: Gb_kernelc Side_channel String
