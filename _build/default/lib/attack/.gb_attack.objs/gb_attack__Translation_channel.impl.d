lib/attack/translation_channel.ml: Char Format Fun Gb_core Gb_kernelc Gb_riscv Gb_system Int64 List String
