lib/attack/spectre_v4.ml: Gb_kernelc List Side_channel String
