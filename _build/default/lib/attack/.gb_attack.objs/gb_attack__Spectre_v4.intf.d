lib/attack/spectre_v4.mli: Gb_kernelc
