lib/attack/timing.mli: Gb_core Gb_kernelc
