lib/attack/translation_channel.mli: Format Gb_core Gb_kernelc
