lib/attack/timing.ml: Array Gb_core Gb_kernelc Gb_riscv Gb_system Int64 List Printf Side_channel
