lib/attack/runner.ml: Char Format Gb_kernelc Gb_system List Side_channel String
