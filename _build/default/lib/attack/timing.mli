(** Experiment E5: the stand-alone flush+reload timing harness.

    The paper (§V-A) observes that the in-order DBT core has much more
    stable memory timings than an OoO core, which makes the hit/miss
    discrimination of the side channel straightforward. This harness
    measures it directly: flush all probe lines, re-touch a chosen subset,
    then time a load from every line and record the latencies. *)

val program : hot:int list -> Gb_kernelc.Ast.program
(** [hot] lists the candidate indices (0..255) re-touched between flush
    and probe; they should measure as hits, all others as misses. *)

val measure :
  ?mode:Gb_core.Mitigation.mode -> hot:int list -> unit -> int array
(** Run the harness on the full processor and return the 256 measured
    probe latencies. *)
