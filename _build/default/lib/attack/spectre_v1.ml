open Gb_kernelc.Dsl

(* The victim of Figure 1, optionally hardened with branch-less masking:
   [mask idx] clamps the index into the buffer using only arithmetic
   (idx * (idx < size)), so a speculatively executed access cannot reach
   the secret even when hoisted above the bounds check. With [split], an
   unbiased coin-flip branch separates the two loads: the trace
   constructor stops at it, so the loads end up in different traces — and
   speculation never crosses a trace boundary. *)
let gadget ~masked ~split =
  let idx_expr =
    if masked then v "idx" *: (v "idx" <: v "size") else v "idx"
  in
  let between =
    if split then
      [ if_ (v "t" &: c 1) [ set "sel" (v "sel" +: c 0) ] [ set "sel" (v "sel" ^: c 0) ] ]
    else []
  in
  [
    if_
      (v "idx" <: v "size")
      ([ let_ "a" (arr "buffer" [ idx_expr ]) ]
      @ between
      @ [
          let_ "b" (arr "array_val" [ v "a" *: c Side_channel.stride ]);
          (* keep the dependent load alive *)
          set "idx" (v "idx" +: (v "b" *: c 0));
        ])
      [];
  ]

let make ?(evict = false) ?(split = false) ~train ~masked ~secret () =
  let len = String.length secret in
  let reset_cache =
    if evict then Side_channel.evict_probe_array
    else Side_channel.flush_probe_array
  in
  let arrays =
    Side_channel.standard_arrays ~secret
    @ (if evict then [ Side_channel.eviction_buffer ] else [])
  in
  {
    Gb_kernelc.Ast.arrays;
    body =
      [
        let_ "size" (c Side_channel.buffer_size);
        Side_channel.declare_delta;
        for_ "k" (c 0) (c len)
          ([
             reset_cache;
             for_ "t" (c 0) (c train)
               ([
                  (* the last iteration is the attack; selected without a
                     branch so every iteration runs the same code path *)
                  let_ "sel" (v "t" =: c (train - 1));
                  let_ "idx"
                    ((v "sel" *: (v "delta" +: v "k"))
                    +: ((c 1 -: v "sel")
                       *: (v "t" &: c (Side_channel.buffer_size - 1))));
                ]
               @ gadget ~masked ~split);
           ]
          @ Side_channel.probe_and_record);
      ];
    result = c 0;
  }

let program ?(train = 40) ~secret () = make ~train ~masked:false ~secret ()

let masked_program ?(train = 40) ~secret () =
  make ~train ~masked:true ~secret ()

let eviction_program ?(train = 40) ~secret () =
  make ~evict:true ~train ~masked:false ~secret ()

let split_program ?(train = 40) ~secret () =
  make ~split:true ~train ~masked:false ~secret ()
