(** Spectre v4 on the DBT processor (Section III-B / Figure 2): memory
    dependency speculation through the Memory Conflict Buffer.

    Each round stores the malicious index into [addr_buf\[0\]], then
    overwrites it with a safe index through a store whose address depends
    on a long computation. The DBT engine cannot disambiguate the
    following loads against that store, speculates them above it under MCB
    protection, and the dependent chain

    {v a = addr_buf[0]; b = buffer[a]; x = array_val[b * 128] v}

    executes with the {e stale, malicious} index — caching the
    secret-dependent probe line — before the store's MCB probe forces a
    rollback and the architecturally-correct re-execution. *)

val program : ?train:int -> secret:string -> unit -> Gb_kernelc.Ast.program
(** [train] defaults to 40 rounds per byte. *)
