open Gb_kernelc.Dsl

let n_candidates = 256

let stride = 128

let buffer_size = 16

let training_byte = 7

let standard_arrays ~secret =
  [
    Gb_kernelc.Dsl.array_init "buffer" Gb_kernelc.Ast.I8 [ buffer_size ]
      (Gb_kernelc.Ast.Bytes (String.make buffer_size (Char.chr training_byte)));
    Gb_kernelc.Dsl.array_init "secret" Gb_kernelc.Ast.I8 [ String.length secret ]
      (Gb_kernelc.Ast.Bytes secret);
    Gb_kernelc.Dsl.array "array_val" Gb_kernelc.Ast.I8 [ n_candidates * stride ];
    Gb_kernelc.Dsl.array "recovered" Gb_kernelc.Ast.I8 [ String.length secret ];
  ]

let declare_delta =
  let_ "delta"
    Gb_kernelc.Ast.(Bin (Sub, Addr_of ("secret", []), Addr_of ("buffer", [])))

let eviction_bytes = 2 * Gb_cache.Cache.default_config.Gb_cache.Cache.size_bytes

let line_bytes = Gb_cache.Cache.default_config.Gb_cache.Cache.line_bytes

let eviction_buffer =
  Gb_kernelc.Dsl.array "evict_buf" Gb_kernelc.Ast.I8 [ eviction_bytes ]

let evict_probe_array =
  for_ "e" (c 0) (c (eviction_bytes / line_bytes))
    [
      let_ "ev" (arr "evict_buf" [ v "e" *: c line_bytes ]);
      (* consume so the access cannot be elided *)
      set "ev" (v "ev" +: c 0);
    ]

let flush_probe_array =
  for_ "f" (c 0) (c n_candidates)
    [ Gb_kernelc.Ast.Flush (Gb_kernelc.Ast.Addr_of ("array_val", [ v "f" *: c stride ])) ]

let hit_threshold = 20

(* The probe is built the way real flush+reload extractors are:
   - the argmin state lives purely in registers (a store per iteration
     would allocate cache lines and could evict a victim line from its set
     before that candidate is measured);
   - candidates are visited in a scattered order ((i*167+13) mod 256, the
     classic mix) so systematic per-slot timing bias in the unrolled probe
     trace cannot correlate with candidate values;
   - a latency threshold separates hits from misses instead of a global
     argmin, and known decoys are skipped: the training value's line is
     cached by the architectural path, and the attacker's own squashed
     speculation caches line 0 (a deferred-fault speculative load returns
     0, and the dependent access then touches [array_val + 0]) — so
     candidates below 32 (non-printable anyway) are ignored. *)
let probe_and_record =
  [
    let_ "best_c" (c 0);
    let_ "best_t" (c 1_000_000);
    for_ "i" (c 0) (c n_candidates)
      [
        let_ "p" (((v "i" *: c 167) +: c 13) &: c (n_candidates - 1));
        let_ "t0" Gb_kernelc.Ast.Cycle;
        let_ "x" (arr "array_val" [ v "p" *: c stride ]);
        let_ "t1" Gb_kernelc.Ast.Cycle;
        (* consume the loaded value so nothing can elide the access *)
        let_ "dt" (v "t1" -: v "t0" +: (v "x" *: c 0));
        if_
          (Gb_kernelc.Ast.Bin (Gb_kernelc.Ast.Ne, v "p", c training_byte)
          &: (v "dt" <: c hit_threshold)
          &: (v "dt" <: v "best_t")
          &: Gb_kernelc.Ast.Bin (Gb_kernelc.Ast.Le, c 32, v "p"))
          [ set "best_t" (v "dt"); set "best_c" (v "p") ]
          [];
      ];
    ("recovered", [ v "k" ]) <-: v "best_c";
  ]

let read_recovered mem program ~len =
  let addr = Gb_riscv.Asm.symbol program "recovered" in
  Bytes.to_string (Gb_riscv.Mem.read_bytes mem ~addr ~len)
