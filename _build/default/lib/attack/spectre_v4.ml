open Gb_kernelc.Dsl

(* Statements computing, in scalar [var], a value that is always zero but
   only available after [n] dependent multiplications (read it back as
   [v var ^: v var]... the xor with itself is folded into the final Set).
   Used both for the "long computation" that delays the safe store's
   address (paper, Fig. 2) and for a short delay on the malicious load's
   address so that it is scheduled after the first (malicious) store but
   well before the slow one. *)
let zero_after_stmts var seed n =
  (let_ var seed
  :: List.init n (fun _ -> set var ((v var *: v var) +: c 1)))
  @ [ set var (v var ^: v var) ]

let program ?(train = 40) ~secret () =
  let len = String.length secret in
  {
    Gb_kernelc.Ast.arrays =
      Gb_kernelc.Dsl.array "addr_buf" Gb_kernelc.Ast.I64 [ 8 ]
      :: Side_channel.standard_arrays ~secret;
    body =
      [
        Side_channel.declare_delta;
        for_ "k" (c 0) (c len)
          ([
             Side_channel.flush_probe_array;
             for_ "t" (c 0) (c train)
               ((* addr_buf[i] = &secret - &buffer + k (malicious) *)
                (("addr_buf", [ c 0 ]) <-: (v "delta" +: v "k"))
                (* j = 0, after a long computation *)
                :: zero_after_stmts "j" (v "t" +: c 3) 6
               @ [
                   (* addr_buf[j] = safe index *)
                   Gb_kernelc.Ast.Mem_store
                     ( Gb_kernelc.Ast.I64,
                       Gb_kernelc.Ast.Bin
                         ( Gb_kernelc.Ast.Add,
                           Gb_kernelc.Ast.Addr_of ("addr_buf", []),
                           v "j" <<: c 3 ),
                       c Side_channel.training_byte );
                 ]
               (* m = 0, after a short delay: the malicious load lands
                  between the two stores in the schedule *)
               @ zero_after_stmts "m" (v "t" +: c 1) 2
               @ [
                   let_ "a"
                     (Gb_kernelc.Ast.Mem
                        ( Gb_kernelc.Ast.I64,
                          Gb_kernelc.Ast.Bin
                            ( Gb_kernelc.Ast.Add,
                              Gb_kernelc.Ast.Addr_of ("addr_buf", []),
                              v "m" <<: c 3 ) ));
                   let_ "b" (arr "buffer" [ v "a" ]);
                   let_ "x" (arr "array_val" [ v "b" *: c Side_channel.stride ]);
                   set "a" (v "a" +: (v "x" *: c 0));
                 ]);
           ]
          @ Side_channel.probe_and_record);
      ];
    result = c 0;
  }
