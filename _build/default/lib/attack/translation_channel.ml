open Gb_kernelc.Dsl

(* A straight-line chunk of work long enough that skipping it vs running
   it is visible, and distinct enough per direction that the trace really
   specialises. *)
let work sink seed =
  [
    let_ "w" (v sink +: c seed);
    set "w" ((v "w" *: c 17) +: c 3);
    set "w" (v "w" ^: (v "w" >>: c 5));
    set "w" ((v "w" *: c 29) +: c 7);
    set "w" (v "w" ^: (v "w" >>: c 3));
    set "w" ((v "w" *: c 13) +: c 11);
    set sink (v sink +: (v "w" &: c 255));
  ]

let train_iters = 60

let program ~bit_index ~secret =
  {
    Gb_kernelc.Ast.arrays =
      [
        Gb_kernelc.Dsl.array_init "secret" Gb_kernelc.Ast.I8
          [ String.length secret ] (Gb_kernelc.Ast.Bytes secret);
        Gb_kernelc.Dsl.array "times" Gb_kernelc.Ast.I64 [ 3 ];
        Gb_kernelc.Dsl.array "recovered_bit" Gb_kernelc.Ast.I64 [ 1 ];
      ];
    body =
      [
        (* the secret bit steering the victim's branch *)
        let_ "bit"
          ((arr "secret" [ c (bit_index / 8) ] >>: c (bit_index mod 8)) &: c 1);
        let_ "sink" (c 0);
        (* phase 0: victim trains the profile with cond = bit;
           phases 1/2: the attacker probes with cond = 1 then cond = 0 —
           the SAME loop, hence the same translation-cache entry *)
        for_ "phase" (c 0) (c 3)
          [
            let_ "is_victim" (v "phase" =: c 0);
            let_ "cond"
              ((v "is_victim" *: v "bit")
              +: ((c 1 -: v "is_victim")
                 *: Gb_kernelc.Ast.Bin (Gb_kernelc.Ast.Eq, v "phase", c 1)));
            let_ "t0" Gb_kernelc.Ast.Cycle;
            for_ "t" (c 0) (c train_iters)
              [ if_ (v "cond") (work "sink" 5) (work "sink" 9) ];
            let_ "t1" Gb_kernelc.Ast.Cycle;
            ("times", [ v "phase" ]) <-: (v "t1" -: v "t0");
          ];
        (* the direction that matches the trained trace is the faster one *)
        ("recovered_bit", [ c 0 ]) <-:
          (arr "times" [ c 1 ] <: arr "times" [ c 2 ]);
        (* keep the sink live *)
        Gb_kernelc.Ast.Emit_byte (v "sink" &: c 0);
      ];
    result = c 0;
  }

type outcome = { recovered : string; correct_bits : int; total_bits : int }

let run ?(mode = Gb_core.Mitigation.Unsafe) ~secret () =
  let total_bits = 8 * String.length secret in
  let bits =
    List.init total_bits (fun bit_index ->
        let asm = Gb_kernelc.Compile.assemble (program ~bit_index ~secret) in
        let proc =
          Gb_system.Processor.create
            ~config:(Gb_system.Processor.config_for mode)
            asm
        in
        let (_ : Gb_system.Processor.result) = Gb_system.Processor.run proc in
        let addr = Gb_riscv.Asm.symbol asm "recovered_bit" in
        Int64.to_int
          (Gb_riscv.Mem.load (Gb_system.Processor.mem proc) ~addr ~size:8)
        land 1)
  in
  let recovered =
    String.init (String.length secret) (fun byte ->
        let value =
          List.fold_left
            (fun acc bit -> acc lor (List.nth bits ((8 * byte) + bit) lsl bit))
            0
            (List.init 8 Fun.id)
        in
        Char.chr value)
  in
  let correct_bits =
    List.length
      (List.filter
         (fun i ->
           (Char.code secret.[i / 8] lsr (i mod 8)) land 1 = List.nth bits i)
         (List.init total_bits Fun.id))
  in
  { recovered; correct_bits; total_bits }

let pp_outcome ppf o =
  let printable =
    String.map
      (fun ch -> if Char.code ch >= 32 && Char.code ch < 127 then ch else '.')
      o.recovered
  in
  Format.fprintf ppf "recovered %d/%d bits: %S" o.correct_bits o.total_bits
    printable
