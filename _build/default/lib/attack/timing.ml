open Gb_kernelc.Dsl

let program ~hot =
  {
    Gb_kernelc.Ast.arrays =
      [
        Gb_kernelc.Dsl.array "array_val" Gb_kernelc.Ast.I8
          [ Side_channel.n_candidates * Side_channel.stride ];
        Gb_kernelc.Dsl.array "results" Gb_kernelc.Ast.I64
          [ Side_channel.n_candidates ];
      ];
    body =
      [
        (* repeat to let the probe loop get hot and translated: the
           measurement of interest is the final round, and it must run the
           same way the attack's probe runs (on the VLIW core) *)
        for_ "r" (c 0) (c 30)
          ([ Side_channel.flush_probe_array ]
          @ List.map
              (fun candidate ->
                let_
                  (Printf.sprintf "touch%d" candidate)
                  (arr "array_val" [ c (candidate * Side_channel.stride) ]))
              hot
          @ [
              for_ "p" (c 0) (c Side_channel.n_candidates)
                [
                  let_ "t0" Gb_kernelc.Ast.Cycle;
                  let_ "x" (arr "array_val" [ v "p" *: c Side_channel.stride ]);
                  let_ "t1" Gb_kernelc.Ast.Cycle;
                  ("results", [ v "p" ]) <-: (v "t1" -: v "t0" +: (v "x" *: c 0));
                ];
            ]);
      ];
    result = c 0;
  }

let measure ?(mode = Gb_core.Mitigation.Unsafe) ~hot () =
  let asm = Gb_kernelc.Compile.assemble (program ~hot) in
  let proc =
    Gb_system.Processor.create
      ~config:(Gb_system.Processor.config_for mode)
      asm
  in
  let (_ : Gb_system.Processor.result) = Gb_system.Processor.run proc in
  let mem = Gb_system.Processor.mem proc in
  let addr = Gb_riscv.Asm.symbol asm "results" in
  Array.init Side_channel.n_candidates (fun i ->
      Int64.to_int (Gb_riscv.Mem.load mem ~addr:(addr + (8 * i)) ~size:8))
