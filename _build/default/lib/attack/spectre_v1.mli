(** Spectre v1 on the DBT processor (Section III-A / Figure 1).

    The victim is the classic bounds-checked gadget

    {v
    if (index < size) { a = buffer[index]; b = array_val[a * 128]; }
    v}

    inlined in a training loop. The first [train - 1] iterations use
    in-bounds indices, so the DBT engine profiles the bounds check as
    strongly biased, merges the then-block into the trace and hoists both
    loads above the conditional side exit. The last iteration computes
    (branchlessly, so the code path is identical) the out-of-bounds index
    [&secret - &buffer + k]: the hoisted loads execute before the branch
    resolves, the secret-dependent probe line is cached, the side exit
    squashes the architectural effects — and flush+reload recovers
    [secret.(k)]. *)

val program : ?train:int -> secret:string -> unit -> Gb_kernelc.Ast.program
(** [train] defaults to 40 iterations (enough to cross the default hot
    threshold). *)

val eviction_program :
  ?train:int -> secret:string -> unit -> Gb_kernelc.Ast.program
(** The same attack without any [cflush]: the probe array is reset by
    streaming a buffer twice the cache capacity (conflict eviction). This
    is the variant available to an attacker on a core whose user-level ISA
    has no flush instruction — slower, but equally effective, and equally
    stopped by the countermeasure. *)

val split_program :
  ?train:int -> secret:string -> unit -> Gb_kernelc.Ast.program
(** The Figure-1 gadget with an {e unbiased} coin-flip branch between the
    two loads. The trace constructor stops at unbiased branches, so the
    loads land in different traces — and the DBT engine never speculates
    across a trace boundary (the paper's §VI point: the Spectre scope is
    one IR block, which is what makes the analysis cheap). The attack must
    fail even on the unsafe configuration. *)

val masked_program :
  ?train:int -> secret:string -> unit -> Gb_kernelc.Ast.program
(** The same victim hardened with {e branch-less index masking} — the
    software mitigation several JIT compilers adopted, which the paper's
    related-work section mentions: the index is clamped into the buffer
    with pure arithmetic before the access, so even the speculatively
    hoisted load can only read in-bounds bytes. The attack must fail on
    this program under {e every} mode, including [Unsafe] (a negative
    control for the attack harness). *)
