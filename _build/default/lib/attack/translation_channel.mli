(** The optimization-decision side channel the paper's conclusion flags as
    future work ("we also have to make sure that the optimization decision
    made in the DBT engine does not leak information on secret data").

    The translation cache is shared micro-architectural state, exactly
    like the data cache. Here the victim executes a loop whose branch
    direction is a {e secret bit}; the DBT engine profiles that branch and
    specialises the hot trace on the secret-dependent direction. The
    attacker then drives the same code down both directions and times
    them: the direction matching the trained trace runs without side
    exits, the other one side-exits on every iteration — recovering the
    bit.

    No load ever touches secret-dependent memory, so the poisoning
    analysis has nothing to find: {e every} mitigation mode of the paper
    leaks this bit equally (asserted by the tests). Closing this channel
    needs different machinery (secret-independent profiling or
    translation on both paths). *)

val program : bit_index:int -> secret:string -> Gb_kernelc.Ast.program
(** One extraction round: trains on bit [bit_index] of [secret] (bit 0 =
    LSB of byte 0), probes both directions, and stores the recovered bit
    in the [recovered_bit] array (1 element). *)

type outcome = {
  recovered : string;  (** reassembled bytes *)
  correct_bits : int;
  total_bits : int;
}

val run :
  ?mode:Gb_core.Mitigation.mode -> secret:string -> unit -> outcome
(** Extract [8 * String.length secret] bits, one processor run each
    (every run starts with a cold translation cache, as separate victim
    invocations would). *)

val pp_outcome : Format.formatter -> outcome -> unit
