(** Shared guest-code fragments of the flush+reload cache side channel,
    used by both Spectre proof-of-concept programs.

    The guest address space is laid out by array declaration order:
    [buffer] (the victim array), then [secret] directly behind it (so the
    out-of-bounds index is [&secret - &buffer + k]), the 256-entry probe
    array with a 128-byte stride (the paper's [arrayVal]), a timing-results
    array and the array of recovered bytes. *)

val n_candidates : int
(** 256: one probe entry per possible byte value. *)

val stride : int
(** 128 bytes between probe entries, as in the paper's example code. *)

val buffer_size : int
(** Size of the in-bounds victim array (16). *)

val training_byte : int
(** The value every in-bounds [buffer] element holds; its probe line is a
    decoy that gets cached on the architectural path, so the argmin skips
    it. *)

val standard_arrays : secret:string -> Gb_kernelc.Ast.array_decl list

val declare_delta : Gb_kernelc.Ast.stmt
(** [let delta = &secret - &buffer] — the malicious index base. *)

val flush_probe_array : Gb_kernelc.Ast.stmt
(** Flush all probe lines (line by line, as on RISC-V in the paper). *)

val eviction_buffer : Gb_kernelc.Ast.array_decl
(** A buffer twice the L1D capacity, for attacks without a flush
    instruction. *)

val evict_probe_array : Gb_kernelc.Ast.stmt
(** Reset the cache by streaming one word per line of {!eviction_buffer} —
    with 16 conflicting lines per set against 8 ways, everything else is
    evicted. The no-[cflush] alternative to {!flush_probe_array}. *)

val hit_threshold : int
(** Latency (cycles) below which a probe counts as a cache hit — between
    the hit cluster and the miss penalty (experiment E5 shows the two are
    far apart on this in-order core). *)

val probe_and_record : Gb_kernelc.Ast.stmt list
(** Time every probe entry (tracking the minimum purely in registers — a
    store per probe could evict a victim line before it is measured) and
    store the argmin candidate (skipping the decoy) into [recovered\[k\]];
    expects the scalar [k] in scope. *)

val read_recovered : Gb_riscv.Mem.t -> Gb_riscv.Asm.program -> len:int -> string
(** Host-side: extract the recovered bytes after the run. *)
