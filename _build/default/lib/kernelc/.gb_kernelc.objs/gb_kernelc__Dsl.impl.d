lib/kernelc/dsl.ml: Ast Int64
