lib/kernelc/compile.ml: Ast Gb_riscv Hashtbl Int64 List Printf String
