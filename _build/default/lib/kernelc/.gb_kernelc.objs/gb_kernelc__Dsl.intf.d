lib/kernelc/dsl.mli: Ast
