lib/kernelc/compile.mli: Ast Gb_riscv
