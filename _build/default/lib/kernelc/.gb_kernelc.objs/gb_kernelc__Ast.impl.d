lib/kernelc/ast.ml:
