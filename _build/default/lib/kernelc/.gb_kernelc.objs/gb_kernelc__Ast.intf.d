lib/kernelc/ast.mli:
