let c i = Ast.Const (Int64.of_int i)

let v name = Ast.Var name

let ( +: ) a b = Ast.Bin (Ast.Add, a, b)

let ( -: ) a b = Ast.Bin (Ast.Sub, a, b)

let ( *: ) a b = Ast.Bin (Ast.Mul, a, b)

let ( /: ) a b = Ast.Bin (Ast.Div, a, b)

let ( %: ) a b = Ast.Bin (Ast.Rem, a, b)

let ( &: ) a b = Ast.Bin (Ast.And, a, b)

let ( ^: ) a b = Ast.Bin (Ast.Xor, a, b)

let ( <<: ) a b = Ast.Bin (Ast.Shl, a, b)

let ( >>: ) a b = Ast.Bin (Ast.Shr, a, b)

let ( <: ) a b = Ast.Bin (Ast.Lt, a, b)

let ( =: ) a b = Ast.Bin (Ast.Eq, a, b)

let arr name idxs = Ast.Arr (name, idxs)

let ( <-: ) (name, idxs) value = Ast.Arr_store (name, idxs, value)

let set name e = Ast.Set (name, e)

let let_ name e = Ast.Let (name, e)

let for_ var lo hi body = Ast.For (var, lo, hi, body)

let if_ cond thn els = Ast.If (cond, thn, els)

let array name ty dims =
  { Ast.a_name = name; a_ty = ty; a_dims = dims; a_init = Ast.Zero }

let array_init name ty dims init =
  { Ast.a_name = name; a_ty = ty; a_dims = dims; a_init = init }
