type ty = I8 | I32 | I64

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt
  | Le
  | Eq
  | Ne

type expr =
  | Const of int64
  | Var of string
  | Arr of string * expr list
  | Addr_of of string * expr list
  | Mem of ty * expr
  | Bin of binop * expr * expr
  | Cycle

type stmt =
  | Let of string * expr
  | Set of string * expr
  | Arr_store of string * expr list * expr
  | Mem_store of ty * expr * expr
  | For of string * expr * expr * stmt list
  | If of expr * stmt list * stmt list
  | Flush of expr
  | Fence_stmt
  | Emit_byte of expr

type array_decl = {
  a_name : string;
  a_ty : ty;
  a_dims : int list;
  a_init : init;
}

and init = Zero | Bytes of string | Words of int64 list

type program = { arrays : array_decl list; body : stmt list; result : expr }

let ty_size = function I8 -> 1 | I32 -> 4 | I64 -> 8
