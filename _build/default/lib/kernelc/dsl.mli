(** Expression/statement sugar for writing kernels in OCaml. *)

val c : int -> Ast.expr
(** Integer constant. *)

val v : string -> Ast.expr
(** Scalar variable. *)

val ( +: ) : Ast.expr -> Ast.expr -> Ast.expr

val ( -: ) : Ast.expr -> Ast.expr -> Ast.expr

val ( *: ) : Ast.expr -> Ast.expr -> Ast.expr

val ( /: ) : Ast.expr -> Ast.expr -> Ast.expr

val ( %: ) : Ast.expr -> Ast.expr -> Ast.expr

val ( &: ) : Ast.expr -> Ast.expr -> Ast.expr

val ( ^: ) : Ast.expr -> Ast.expr -> Ast.expr

val ( <<: ) : Ast.expr -> Ast.expr -> Ast.expr

val ( >>: ) : Ast.expr -> Ast.expr -> Ast.expr

val ( <: ) : Ast.expr -> Ast.expr -> Ast.expr

val ( =: ) : Ast.expr -> Ast.expr -> Ast.expr

val arr : string -> Ast.expr list -> Ast.expr

val ( <-: ) : string * Ast.expr list -> Ast.expr -> Ast.stmt
(** [(name, idxs) <-: value] is an array store. *)

val set : string -> Ast.expr -> Ast.stmt

val let_ : string -> Ast.expr -> Ast.stmt

val for_ : string -> Ast.expr -> Ast.expr -> Ast.stmt list -> Ast.stmt

val if_ : Ast.expr -> Ast.stmt list -> Ast.stmt list -> Ast.stmt

val array : string -> Ast.ty -> int list -> Ast.array_decl
(** Zero-initialised array. *)

val array_init : string -> Ast.ty -> int list -> Ast.init -> Ast.array_decl
