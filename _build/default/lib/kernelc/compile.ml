exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let temp_pool =
  Gb_riscv.Reg.[ t0; t1; t2; t3; t4; t5; t6 ]

let scalar_pool =
  Gb_riscv.Reg.[ s1; s2; s3; s4; s5; s6; s7; s8; s9; s10; s11; a1; a2; a3; a4; a5; ra ]

let is_temp r = List.mem r temp_pool

type env = {
  arrays : (string, Ast.array_decl) Hashtbl.t;
  mutable scalars : (string * Gb_riscv.Reg.t) list;
  mutable free_scalars : Gb_riscv.Reg.t list;
  mutable items : Gb_riscv.Asm.item list;  (** reversed *)
  mutable label_count : int;
}

let emit env item = env.items <- item :: env.items

let emit_insn env insn = emit env (Gb_riscv.Asm.Insn insn)

let fresh_label env prefix =
  env.label_count <- env.label_count + 1;
  Printf.sprintf "%s_%d" prefix env.label_count

let lookup_scalar env v =
  match List.assoc_opt v env.scalars with
  | Some r -> r
  | None -> error "undefined scalar %s" v

let declare_scalar env v =
  if List.mem_assoc v env.scalars then error "scalar %s redeclared" v;
  match env.free_scalars with
  | [] -> error "out of scalar registers declaring %s" v
  | r :: rest ->
    env.free_scalars <- rest;
    env.scalars <- (v, r) :: env.scalars;
    r

let take free =
  match free with
  | [] -> raise (Error "expression too deep: out of temporaries")
  | t :: rest -> (t, rest)

let array_decl env name =
  match Hashtbl.find_opt env.arrays name with
  | Some d -> d
  | None -> error "unknown array %s" name

let mv env dst src =
  if dst <> src then emit_insn env (Gb_riscv.Insn.Op_imm (Gb_riscv.Insn.ADDI, dst, src, 0))

let load_of_ty ty rd base =
  match ty with
  | Ast.I8 -> Gb_riscv.Insn.Load (Gb_riscv.Insn.B, true, rd, base, 0)
  | Ast.I32 -> Gb_riscv.Insn.Load (Gb_riscv.Insn.W, false, rd, base, 0)
  | Ast.I64 -> Gb_riscv.Insn.Load (Gb_riscv.Insn.D, false, rd, base, 0)

let store_of_ty ty rs base =
  match ty with
  | Ast.I8 -> Gb_riscv.Insn.Store (Gb_riscv.Insn.B, rs, base, 0)
  | Ast.I32 -> Gb_riscv.Insn.Store (Gb_riscv.Insn.W, rs, base, 0)
  | Ast.I64 -> Gb_riscv.Insn.Store (Gb_riscv.Insn.D, rs, base, 0)

let shift_of_ty = function Ast.I8 -> 0 | Ast.I32 -> 2 | Ast.I64 -> 3

let emit_bin env op dst a b =
  let open Gb_riscv.Insn in
  match op with
  | Ast.Add -> emit_insn env (Op (ADD, dst, a, b))
  | Ast.Sub -> emit_insn env (Op (SUB, dst, a, b))
  | Ast.Mul -> emit_insn env (Op (MUL, dst, a, b))
  | Ast.Div -> emit_insn env (Op (DIV, dst, a, b))
  | Ast.Rem -> emit_insn env (Op (REM, dst, a, b))
  | Ast.And -> emit_insn env (Op (AND, dst, a, b))
  | Ast.Or -> emit_insn env (Op (OR, dst, a, b))
  | Ast.Xor -> emit_insn env (Op (XOR, dst, a, b))
  | Ast.Shl -> emit_insn env (Op (SLL, dst, a, b))
  | Ast.Shr -> emit_insn env (Op (SRL, dst, a, b))
  | Ast.Lt -> emit_insn env (Op (SLT, dst, a, b))
  | Ast.Le ->
    emit_insn env (Op (SLT, dst, b, a));
    emit_insn env (Op_imm (XORI, dst, dst, 1))
  | Ast.Eq ->
    emit_insn env (Op (SUB, dst, a, b));
    emit_insn env (Op_imm (SLTIU, dst, dst, 1))
  | Ast.Ne ->
    emit_insn env (Op (SUB, dst, a, b));
    emit_insn env (Op (SLTU, dst, 0, dst))

(* Evaluate an expression. Returns the register holding the result and the
   remaining free temporaries; scalar registers are returned as-is (read
   only), everything else lands in a temporary taken from [free]. *)
let rec eval env free e =
  match e with
  | Ast.Var v -> (lookup_scalar env v, free)
  | Ast.Const c ->
    let t, free = take free in
    emit env (Gb_riscv.Asm.Li (t, c));
    (t, free)
  | Ast.Cycle ->
    let t, free = take free in
    emit_insn env (Gb_riscv.Insn.Rdcycle t);
    (t, free)
  | Ast.Bin (op, a, b) ->
    let ra_, f1 = eval env free a in
    let rb, f2 = eval env f1 b in
    let dst, f_out =
      if is_temp ra_ then (ra_, if is_temp rb then rb :: f2 else f2)
      else if is_temp rb then (rb, f2)
      else take f2
    in
    emit_bin env op dst ra_ rb;
    (dst, f_out)
  | Ast.Arr (name, idxs) ->
    let decl = array_decl env name in
    let addr, f = eval_addr env free name idxs in
    emit_insn env (load_of_ty decl.Ast.a_ty addr addr);
    (addr, f)
  | Ast.Addr_of (name, idxs) -> eval_addr env free name idxs
  | Ast.Mem (ty, e) ->
    let addr, f = eval env free e in
    if is_temp addr then begin
      emit_insn env (load_of_ty ty addr addr);
      (addr, f)
    end
    else begin
      let t, f = take f in
      emit_insn env (load_of_ty ty t addr);
      (t, f)
    end

(* Address of an array element: row-major offset scaled by element size. *)
and eval_addr env free name idxs =
  let decl = array_decl env name in
  let dims = decl.Ast.a_dims in
  if idxs <> [] && List.length idxs <> List.length dims then
    error "array %s: expected %d indices" name (List.length dims);
  let base, f = take free in
  emit env (Gb_riscv.Asm.La (base, name));
  match idxs with
  | [] -> (base, f)
  | first :: rest ->
    let acc, f = eval env f first in
    (* keep the running index in a dedicated temp so we may scale it *)
    let acc, f =
      if is_temp acc then (acc, f)
      else
        let t, f = take f in
        mv env t acc;
        (t, f)
    in
    let rest_dims = List.tl dims in
    List.iter2
      (fun dim idx ->
        let dim_r, f' = take f in
        emit env (Gb_riscv.Asm.Li (dim_r, Int64.of_int dim));
        emit_insn env (Gb_riscv.Insn.Op (Gb_riscv.Insn.MUL, acc, acc, dim_r));
        let idx_r, _ = eval env f' idx in
        emit_insn env (Gb_riscv.Insn.Op (Gb_riscv.Insn.ADD, acc, acc, idx_r)))
      rest_dims rest;
    let sh = shift_of_ty decl.Ast.a_ty in
    if sh > 0 then
      emit_insn env (Gb_riscv.Insn.Op_imm (Gb_riscv.Insn.SLLI, acc, acc, sh));
    emit_insn env (Gb_riscv.Insn.Op (Gb_riscv.Insn.ADD, base, base, acc));
    (base, f)

let rec compile_stmt env stmt =
  match stmt with
  | Ast.Let (v, e) ->
    let r, _ = eval env temp_pool e in
    let dst = declare_scalar env v in
    mv env dst r
  | Ast.Set (v, e) ->
    let dst = lookup_scalar env v in
    let r, _ = eval env temp_pool e in
    mv env dst r
  | Ast.Arr_store (name, idxs, value) ->
    let decl = array_decl env name in
    let rv, f = eval env temp_pool value in
    let addr, _ = eval_addr env f name idxs in
    emit_insn env (store_of_ty decl.Ast.a_ty rv addr)
  | Ast.Mem_store (ty, addr_e, value) ->
    let rv, f = eval env temp_pool value in
    let addr, _ = eval env f addr_e in
    emit_insn env (store_of_ty ty rv addr)
  | Ast.Flush e ->
    let r, _ = eval env temp_pool e in
    emit_insn env (Gb_riscv.Insn.Cflush r)
  | Ast.Fence_stmt -> emit_insn env Gb_riscv.Insn.Fence
  | Ast.Emit_byte e ->
    let r, _ = eval env temp_pool e in
    mv env Gb_riscv.Reg.a0 r;
    emit env (Gb_riscv.Asm.Li (Gb_riscv.Reg.a7, 64L));
    emit_insn env Gb_riscv.Insn.Ecall
  | Ast.If (cond, thn, els) ->
    let else_l = fresh_label env "else" in
    let end_l = fresh_label env "endif" in
    let c, _ = eval env temp_pool cond in
    emit env (Gb_riscv.Asm.Branch_to (Gb_riscv.Insn.BEQ, c, Gb_riscv.Reg.zero, else_l));
    compile_block env thn;
    emit env (Gb_riscv.Asm.Jal_to (Gb_riscv.Reg.zero, end_l));
    emit env (Gb_riscv.Asm.Label else_l);
    compile_block env els;
    emit env (Gb_riscv.Asm.Label end_l)
  | Ast.For (v, lo, hi, body) ->
    let declared_v = not (List.mem_assoc v env.scalars) in
    let vr = if declared_v then declare_scalar env v else lookup_scalar env v in
    let hi_name = fresh_label env "$hi" in
    let hi_r = declare_scalar env hi_name in
    let r_lo, _ = eval env temp_pool lo in
    mv env vr r_lo;
    let r_hi, _ = eval env temp_pool hi in
    mv env hi_r r_hi;
    let body_l = fresh_label env "body" in
    let test_l = fresh_label env "test" in
    emit env (Gb_riscv.Asm.Jal_to (Gb_riscv.Reg.zero, test_l));
    emit env (Gb_riscv.Asm.Label body_l);
    compile_block env body;
    emit_insn env (Gb_riscv.Insn.Op_imm (Gb_riscv.Insn.ADDI, vr, vr, 1));
    emit env (Gb_riscv.Asm.Label test_l);
    emit env (Gb_riscv.Asm.Branch_to (Gb_riscv.Insn.BLT, vr, hi_r, body_l));
    (* release the bound register and (if we declared it) the loop variable *)
    env.scalars <- List.remove_assoc hi_name env.scalars;
    env.free_scalars <- hi_r :: env.free_scalars;
    if declared_v then begin
      env.scalars <- List.remove_assoc v env.scalars;
      env.free_scalars <- vr :: env.free_scalars
    end

and compile_block env stmts =
  let saved_scalars = env.scalars in
  let saved_free = env.free_scalars in
  List.iter (compile_stmt env) stmts;
  env.scalars <- saved_scalars;
  env.free_scalars <- saved_free

let array_items (d : Ast.array_decl) =
  let total = List.fold_left ( * ) 1 d.Ast.a_dims * Ast.ty_size d.Ast.a_ty in
  let init_items =
    match d.Ast.a_init with
    | Ast.Zero -> [ Gb_riscv.Asm.Space total ]
    | Ast.Bytes s ->
      if String.length s > total then
        error "array %s: initializer too large" d.Ast.a_name;
      [ Gb_riscv.Asm.Dstring s;
        Gb_riscv.Asm.Space (total - String.length s) ]
    | Ast.Words ws ->
      if 8 * List.length ws > total then
        error "array %s: initializer too large" d.Ast.a_name;
      [ Gb_riscv.Asm.Dword ws;
        Gb_riscv.Asm.Space (total - (8 * List.length ws)) ]
  in
  Gb_riscv.Asm.Align 8 :: Gb_riscv.Asm.Label d.Ast.a_name :: init_items

let compile (program : Ast.program) =
  let env =
    {
      arrays = Hashtbl.create 16;
      scalars = [];
      free_scalars = scalar_pool;
      items = [];
      label_count = 0;
    }
  in
  List.iter
    (fun d ->
      if Hashtbl.mem env.arrays d.Ast.a_name then
        error "array %s redeclared" d.Ast.a_name;
      Hashtbl.add env.arrays d.Ast.a_name d)
    program.Ast.arrays;
  List.iter (compile_stmt env) program.Ast.body;
  let r, _ = eval env temp_pool program.Ast.result in
  mv env Gb_riscv.Reg.a0 r;
  emit env (Gb_riscv.Asm.Li (Gb_riscv.Reg.a7, 93L));
  emit_insn env Gb_riscv.Insn.Ecall;
  let code = List.rev env.items in
  let data = List.concat_map array_items program.Ast.arrays in
  code @ data

let assemble ?base program = Gb_riscv.Asm.assemble ?base (compile program)
