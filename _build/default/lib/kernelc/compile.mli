(** Compilation of kernel programs to guest assembly.

    Scalars live in registers for their whole lifetime (like compiled
    Polybench code, where induction variables never touch memory — this is
    what keeps addresses "clean" in the poisoning sense unless the program
    really does double indirection). Expressions evaluate on a small
    register stack; arrays are laid out row-major in the data section. *)

exception Error of string
(** Out of scalar registers / expression too deep / unknown identifiers. *)

val compile : Ast.program -> Gb_riscv.Asm.item list
(** The returned items end with the exit ecall; arrays are placed after the
    code, each preceded by a label carrying its name. *)

val assemble : ?base:int -> Ast.program -> Gb_riscv.Asm.program
(** [compile] + {!Gb_riscv.Asm.assemble}. *)
