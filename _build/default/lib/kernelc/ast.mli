(** Abstract syntax of the kernel language: a minimal structured language
    (scalars, multi-dimensional arrays, counted loops, conditionals and raw
    memory access) that compiles to rv64im. It is the stand-in for the C
    compiler the paper's guest binaries come from — Polybench kernels and
    the Spectre proof-of-concept attacks are both written in it. *)

type ty = I8 | I32 | I64

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt  (** signed; produces 0/1 *)
  | Le
  | Eq
  | Ne

type expr =
  | Const of int64
  | Var of string
  | Arr of string * expr list  (** typed element read, row-major *)
  | Addr_of of string * expr list  (** address of an element (or base) *)
  | Mem of ty * expr  (** raw typed load from a byte address *)
  | Bin of binop * expr * expr
  | Cycle  (** read the cycle counter *)

type stmt =
  | Let of string * expr  (** declare + initialise a scalar (in a register) *)
  | Set of string * expr
  | Arr_store of string * expr list * expr
  | Mem_store of ty * expr * expr  (** address, value *)
  | For of string * expr * expr * stmt list
      (** [For (v, lo, hi, body)]: v from lo while v < hi *)
  | If of expr * stmt list * stmt list  (** nonzero = true *)
  | Flush of expr  (** cflush the line containing a byte address *)
  | Fence_stmt
  | Emit_byte of expr  (** write one byte to the output stream *)

type array_decl = {
  a_name : string;
  a_ty : ty;
  a_dims : int list;  (** row-major dimensions *)
  a_init : init;
}

and init = Zero | Bytes of string | Words of int64 list

type program = {
  arrays : array_decl list;
  body : stmt list;
  result : expr;  (** exit code (low 8 bits) *)
}

val ty_size : ty -> int
