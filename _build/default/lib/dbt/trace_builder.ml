type config = {
  max_insns : int;
  max_visits : int;
  bias_threshold : float;
  min_samples : int;
}

let default_config =
  { max_insns = 96; max_visits = 4; bias_threshold = 0.8; min_samples = 8 }

exception Build_failure of string

type direction = Follow_fall | Follow_taken | Unbiased

let branch_direction cfg profile pc =
  match profile pc with
  | None -> Unbiased
  | Some (taken, total) ->
    if total < cfg.min_samples then Unbiased
    else
      let ratio = float_of_int taken /. float_of_int total in
      if ratio >= cfg.bias_threshold then Follow_taken
      else if ratio <= 1. -. cfg.bias_threshold then Follow_fall
      else Unbiased

let build cfg ~mem ~profile ~entry =
  let visits = Hashtbl.create 64 in
  let steps = ref [] in
  let count = ref 0 in
  let push step =
    steps := step :: !steps;
    incr count
  in
  let rec walk pc =
    if !count >= cfg.max_insns then pc
    else
      let v = try Hashtbl.find visits pc with Not_found -> 0 in
      if v >= cfg.max_visits then pc
      else begin
        Hashtbl.replace visits pc (v + 1);
        match Gb_riscv.Decode.decode (Gb_riscv.Mem.load_insn_word mem ~addr:pc) with
        | exception Gb_riscv.Decode.Illegal _ -> pc
        | exception Gb_riscv.Mem.Fault _ -> pc
        | insn -> (
          match insn with
          | Gb_riscv.Insn.Ecall | Gb_riscv.Insn.Jalr _ -> pc
          | Gb_riscv.Insn.Jal (rd, off) ->
            if rd <> 0 then
              push { Gb_ir.Gtrace.pc; insn; exit_cond = None };
            walk (pc + off)
          | Gb_riscv.Insn.Branch (cond, _, _, off) -> (
            match branch_direction cfg profile pc with
            | Unbiased -> pc
            | Follow_fall ->
              push
                { Gb_ir.Gtrace.pc; insn; exit_cond = Some (cond, pc + off) };
              walk (pc + 4)
            | Follow_taken ->
              push
                {
                  Gb_ir.Gtrace.pc;
                  insn;
                  exit_cond = Some (Gb_riscv.Insn.negate_cond cond, pc + 4);
                };
              walk (pc + off))
          | Gb_riscv.Insn.Op_imm _ | Gb_riscv.Insn.Op _ | Gb_riscv.Insn.Lui _
          | Gb_riscv.Insn.Auipc _ | Gb_riscv.Insn.Load _
          | Gb_riscv.Insn.Store _ | Gb_riscv.Insn.Fence
          | Gb_riscv.Insn.Rdcycle _ | Gb_riscv.Insn.Cflush _ ->
            push { Gb_ir.Gtrace.pc; insn; exit_cond = None };
            walk (pc + 4))
      end
  in
  let fall_pc = walk entry in
  if !count = 0 then raise (Build_failure "empty trace")
  else { Gb_ir.Gtrace.entry; steps = List.rev !steps; fall_pc }
