(** First-level translation (the middle tier of a Hybrid-DBT-style
    system): a guest basic block translated 1:1 into naive VLIW bundles —
    one operation per cycle, guest registers written directly, no
    reordering, no hidden registers and {e no speculation whatsoever}.

    Warm code runs here (cheaper than interpretation: no per-instruction
    decode/dispatch and no serial fetch overhead) until it is hot enough
    for the optimizing trace pipeline. Because nothing is reordered, this
    tier is Spectre-free by construction — asserted by the attack tests.

    A block ends at its first control-flow instruction: conditional
    branches become a side exit plus a fall-through exit; a direct jump
    becomes an unconditional exit; [jalr] and [ecall] end the block
    {e before} them (the interpreter executes them). *)

type result = {
  trace : Gb_vliw.Vinsn.trace;
  branch_pc : int option;
      (** pc of the terminal conditional branch, when the block ends in
          one — used to keep profiling alive while running on this tier
          (side exit = taken, fall-through past it = not taken) *)
}

exception Untranslatable of string
(** The block is empty (entry sits on ecall/jalr/illegal bytes). *)

val translate : mem:Gb_riscv.Mem.t -> entry:int -> result
