(** Trace construction (the paper's block-construction optimization):
    starting from a hot guest pc, follow the profiled direction of biased
    branches — duplicating blocks when the path revisits them (loop
    unrolling) — to build one linear guest trace for the scheduler.

    The walk stops at: unbiased or unprofiled conditional branches,
    indirect jumps, ecall, the instruction budget, or the per-pc revisit
    limit. *)

type config = {
  max_insns : int;  (** instruction budget per trace *)
  max_visits : int;  (** per-pc revisit limit (bounds loop unrolling) *)
  bias_threshold : float;  (** minimum taken/not-taken bias to follow *)
  min_samples : int;  (** profile samples needed to trust a bias *)
}

val default_config : config
(** 96 instructions, 4 visits, 0.8 bias, 8 samples. *)

exception Build_failure of string
(** No usable trace at this pc (e.g. it starts with an unbiased branch). *)

val build :
  config ->
  mem:Gb_riscv.Mem.t ->
  profile:(int -> (int * int) option) ->
  entry:int ->
  Gb_ir.Gtrace.t
(** [profile pc] returns [(taken, total)] execution counts of the
    conditional branch at [pc], when profiled. *)
