lib/dbt/codegen.mli: Gb_ir Gb_vliw Sched
