lib/dbt/codegen.ml: Array Gb_ir Gb_vliw Hashtbl List Sched
