lib/dbt/sched.ml: Array Gb_ir List Queue Set
