lib/dbt/engine.ml: Codegen First_pass Gb_core Gb_ir Gb_riscv Gb_vliw Hashtbl List Option Sched Trace_builder
