lib/dbt/trace_builder.mli: Gb_ir Gb_riscv
