lib/dbt/first_pass.ml: Array Gb_ir Gb_riscv Gb_vliw Int64 List
