lib/dbt/engine.mli: Gb_core Gb_ir Gb_riscv Gb_vliw Sched Trace_builder
