lib/dbt/sched.mli: Gb_ir
