lib/dbt/trace_builder.ml: Gb_ir Gb_riscv Hashtbl List
