lib/dbt/first_pass.mli: Gb_riscv Gb_vliw
