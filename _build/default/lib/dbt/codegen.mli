(** VLIW code generation: turn a scheduled DFG into an executable trace.

    Every value-producing node is renamed onto a hidden register whose live
    range spans from its issue cycle to its last (data or exit-stub) use;
    hidden registers are reused once free. Exit-like nodes become control
    operations pointing at compensation stubs that commit the guest
    registers live at that exit. *)

exception Out_of_registers
(** Register pressure exceeded the hidden register file; the engine falls
    back to interpretation for this trace. *)

val emit :
  Sched.resources ->
  n_hidden:int ->
  cycles:int array ->
  entry_pc:int ->
  guest_insns:int ->
  meta:Gb_vliw.Vinsn.meta ->
  Gb_ir.Dfg.t ->
  Gb_vliw.Vinsn.trace
