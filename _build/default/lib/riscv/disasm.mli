(** Disassembler: render guest memory ranges as annotated rv64im
    listings (objdump-style), resolving branch and jump targets back to
    symbolic labels when a program's symbol table is available. *)

type line = {
  addr : int;
  word : int;  (** raw 32-bit instruction word *)
  text : string;  (** rendered instruction, or [".word 0x..."] if illegal *)
  target : int option;  (** branch/jump destination, when applicable *)
}

val disassemble : Mem.t -> addr:int -> len:int -> line list
(** Decode [len] bytes starting at the 4-aligned address [addr]. Illegal
    encodings are rendered as raw words rather than raising. *)

val pp_program :
  ?symbols:(string, int) Hashtbl.t -> Format.formatter -> line list -> unit
(** Print a listing; addresses with a symbol get a label line, and
    branch/jump targets are annotated with the label they point at. *)

val dump : Asm.program -> string
(** Disassemble a whole assembled program (code and data — data decodes as
    raw words or accidental instructions, as with any flat binary). *)
