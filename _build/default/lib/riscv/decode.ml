exception Illegal of int

let sign_extend bits v =
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift

let illegal word = raise (Illegal word)

let decode_op_imm ~word_variant w =
  let rd = (w lsr 7) land 0x1f in
  let rs1 = (w lsr 15) land 0x1f in
  let funct3 = (w lsr 12) land 0x7 in
  let imm = sign_extend 12 (w lsr 20) in
  let shamt_bits = if word_variant then 5 else 6 in
  let shamt = (w lsr 20) land ((1 lsl shamt_bits) - 1) in
  let funct6 = (w lsr 26) land 0x3f in
  let open Insn in
  let op =
    match (funct3, word_variant) with
    | 0b000, false -> Op_imm (ADDI, rd, rs1, imm)
    | 0b010, false -> Op_imm (SLTI, rd, rs1, imm)
    | 0b011, false -> Op_imm (SLTIU, rd, rs1, imm)
    | 0b100, false -> Op_imm (XORI, rd, rs1, imm)
    | 0b110, false -> Op_imm (ORI, rd, rs1, imm)
    | 0b111, false -> Op_imm (ANDI, rd, rs1, imm)
    | 0b001, false when funct6 = 0x00 -> Op_imm (SLLI, rd, rs1, shamt)
    | 0b101, false when funct6 = 0x00 -> Op_imm (SRLI, rd, rs1, shamt)
    | 0b101, false when funct6 = 0x10 -> Op_imm (SRAI, rd, rs1, shamt)
    | 0b000, true -> Op_imm (ADDIW, rd, rs1, imm)
    | 0b001, true when funct6 = 0x00 -> Op_imm (SLLIW, rd, rs1, shamt)
    | 0b101, true when funct6 = 0x00 -> Op_imm (SRLIW, rd, rs1, shamt)
    | 0b101, true when funct6 = 0x10 -> Op_imm (SRAIW, rd, rs1, shamt)
    | _ -> illegal w
  in
  op

let decode_op ~word_variant w =
  let rd = (w lsr 7) land 0x1f in
  let rs1 = (w lsr 15) land 0x1f in
  let rs2 = (w lsr 20) land 0x1f in
  let funct3 = (w lsr 12) land 0x7 in
  let funct7 = (w lsr 25) land 0x7f in
  let open Insn in
  let op =
    match (funct7, funct3, word_variant) with
    | 0x00, 0b000, false -> ADD
    | 0x20, 0b000, false -> SUB
    | 0x00, 0b001, false -> SLL
    | 0x00, 0b010, false -> SLT
    | 0x00, 0b011, false -> SLTU
    | 0x00, 0b100, false -> XOR
    | 0x00, 0b101, false -> SRL
    | 0x20, 0b101, false -> SRA
    | 0x00, 0b110, false -> OR
    | 0x00, 0b111, false -> AND
    | 0x01, 0b000, false -> MUL
    | 0x01, 0b001, false -> MULH
    | 0x01, 0b010, false -> MULHSU
    | 0x01, 0b011, false -> MULHU
    | 0x01, 0b100, false -> DIV
    | 0x01, 0b101, false -> DIVU
    | 0x01, 0b110, false -> REM
    | 0x01, 0b111, false -> REMU
    | 0x00, 0b000, true -> ADDW
    | 0x20, 0b000, true -> SUBW
    | 0x00, 0b001, true -> SLLW
    | 0x00, 0b101, true -> SRLW
    | 0x20, 0b101, true -> SRAW
    | 0x01, 0b000, true -> MULW
    | 0x01, 0b100, true -> DIVW
    | 0x01, 0b101, true -> DIVUW
    | 0x01, 0b110, true -> REMW
    | 0x01, 0b111, true -> REMUW
    | _ -> illegal w
  in
  Op (op, rd, rs1, rs2)

let decode_load w =
  let rd = (w lsr 7) land 0x1f in
  let rs1 = (w lsr 15) land 0x1f in
  let imm = sign_extend 12 (w lsr 20) in
  let open Insn in
  match (w lsr 12) land 0x7 with
  | 0b000 -> Load (B, false, rd, rs1, imm)
  | 0b001 -> Load (H, false, rd, rs1, imm)
  | 0b010 -> Load (W, false, rd, rs1, imm)
  | 0b011 -> Load (D, false, rd, rs1, imm)
  | 0b100 -> Load (B, true, rd, rs1, imm)
  | 0b101 -> Load (H, true, rd, rs1, imm)
  | 0b110 -> Load (W, true, rd, rs1, imm)
  | _ -> illegal w

let decode_store w =
  let rs1 = (w lsr 15) land 0x1f in
  let rs2 = (w lsr 20) land 0x1f in
  let imm = sign_extend 12 (((w lsr 25) lsl 5) lor ((w lsr 7) land 0x1f)) in
  let open Insn in
  match (w lsr 12) land 0x7 with
  | 0b000 -> Store (B, rs2, rs1, imm)
  | 0b001 -> Store (H, rs2, rs1, imm)
  | 0b010 -> Store (W, rs2, rs1, imm)
  | 0b011 -> Store (D, rs2, rs1, imm)
  | _ -> illegal w

let decode_branch w =
  let rs1 = (w lsr 15) land 0x1f in
  let rs2 = (w lsr 20) land 0x1f in
  let imm =
    ((w lsr 31) land 1) lsl 12
    lor (((w lsr 7) land 1) lsl 11)
    lor (((w lsr 25) land 0x3f) lsl 5)
    lor (((w lsr 8) land 0xf) lsl 1)
  in
  let imm = sign_extend 13 imm in
  let open Insn in
  match (w lsr 12) land 0x7 with
  | 0b000 -> Branch (BEQ, rs1, rs2, imm)
  | 0b001 -> Branch (BNE, rs1, rs2, imm)
  | 0b100 -> Branch (BLT, rs1, rs2, imm)
  | 0b101 -> Branch (BGE, rs1, rs2, imm)
  | 0b110 -> Branch (BLTU, rs1, rs2, imm)
  | 0b111 -> Branch (BGEU, rs1, rs2, imm)
  | _ -> illegal w

let decode_jal w =
  let rd = (w lsr 7) land 0x1f in
  let imm =
    ((w lsr 31) land 1) lsl 20
    lor (((w lsr 12) land 0xff) lsl 12)
    lor (((w lsr 20) land 1) lsl 11)
    lor (((w lsr 21) land 0x3ff) lsl 1)
  in
  Insn.Jal (rd, sign_extend 21 imm)

let decode_system w =
  let rd = (w lsr 7) land 0x1f in
  let rs1 = (w lsr 15) land 0x1f in
  let funct3 = (w lsr 12) land 0x7 in
  let csr = (w lsr 20) land 0xfff in
  if w = 0x73 then Insn.Ecall
  else if funct3 = 0b010 && csr = 0xC00 && rs1 = 0 then Insn.Rdcycle rd
  else illegal w

let decode w =
  let w = w land 0xFFFFFFFF in
  match w land 0x7f with
  | 0x13 -> decode_op_imm ~word_variant:false w
  | 0x1b -> decode_op_imm ~word_variant:true w
  | 0x33 -> decode_op ~word_variant:false w
  | 0x3b -> decode_op ~word_variant:true w
  | 0x37 -> Insn.Lui ((w lsr 7) land 0x1f, (w lsr 12) land 0xfffff)
  | 0x17 -> Insn.Auipc ((w lsr 7) land 0x1f, (w lsr 12) land 0xfffff)
  | 0x03 -> decode_load w
  | 0x23 -> decode_store w
  | 0x63 -> decode_branch w
  | 0x6f -> decode_jal w
  | 0x67 ->
    if (w lsr 12) land 0x7 <> 0 then illegal w
    else
      Insn.Jalr
        ((w lsr 7) land 0x1f, (w lsr 15) land 0x1f, sign_extend 12 (w lsr 20))
  | 0x73 -> decode_system w
  | 0x0f -> Insn.Fence
  | 0x0b ->
    if (w lsr 12) land 0x7 <> 0 then illegal w
    else Insn.Cflush ((w lsr 15) land 0x1f)
  | _ -> illegal w
