type t = { data : Bytes.t }

exception Fault of int

let create ~size = { data = Bytes.make size '\000' }

let size t = Bytes.length t.data

let check t addr n =
  if addr < 0 || addr + n > Bytes.length t.data then raise (Fault addr)

let load t ~addr ~size =
  check t addr size;
  match size with
  | 1 -> Int64.of_int (Char.code (Bytes.unsafe_get t.data addr))
  | 2 -> Int64.of_int (Bytes.get_uint16_le t.data addr)
  | 4 -> Int64.of_int32 (Bytes.get_int32_le t.data addr)
        |> Int64.logand 0xFFFFFFFFL
  | 8 -> Bytes.get_int64_le t.data addr
  | _ -> invalid_arg "Mem.load: size"

let store t ~addr ~size v =
  check t addr size;
  match size with
  | 1 -> Bytes.unsafe_set t.data addr (Char.unsafe_chr (Int64.to_int v land 0xff))
  | 2 -> Bytes.set_uint16_le t.data addr (Int64.to_int v land 0xffff)
  | 4 -> Bytes.set_int32_le t.data addr (Int64.to_int32 v)
  | 8 -> Bytes.set_int64_le t.data addr v
  | _ -> invalid_arg "Mem.store: size"

let load_insn_word t ~addr =
  check t addr 4;
  Int32.to_int (Bytes.get_int32_le t.data addr) land 0xFFFFFFFF

let blit_bytes t ~addr b =
  check t addr (Bytes.length b);
  Bytes.blit b 0 t.data addr (Bytes.length b)

let read_bytes t ~addr ~len =
  check t addr len;
  Bytes.sub t.data addr len

let copy t = { data = Bytes.copy t.data }
