type line = { addr : int; word : int; text : string; target : int option }

let target_of addr = function
  | Insn.Branch (_, _, _, off) | Insn.Jal (_, off) -> Some (addr + off)
  | Insn.Op_imm _ | Insn.Op _ | Insn.Lui _ | Insn.Auipc _ | Insn.Load _
  | Insn.Store _ | Insn.Jalr _ | Insn.Ecall | Insn.Fence | Insn.Rdcycle _
  | Insn.Cflush _ ->
    None

let disassemble mem ~addr ~len =
  let addr = addr land lnot 3 in
  let n = len / 4 in
  List.init n (fun i ->
      let a = addr + (4 * i) in
      let word = Mem.load_insn_word mem ~addr:a in
      match Decode.decode word with
      | insn ->
        { addr = a; word; text = Insn.to_string insn; target = target_of a insn }
      | exception Decode.Illegal _ ->
        { addr = a; word; text = Printf.sprintf ".word 0x%08x" word; target = None })

let labels_by_addr symbols =
  let table = Hashtbl.create 16 in
  Option.iter
    (Hashtbl.iter (fun name addr -> Hashtbl.replace table addr name))
    symbols;
  table

let pp_program ?symbols ppf lines =
  let labels = labels_by_addr symbols in
  List.iter
    (fun l ->
      (match Hashtbl.find_opt labels l.addr with
      | Some name -> Format.fprintf ppf "%s:@." name
      | None -> ());
      Format.fprintf ppf "  %6x:  %08x  %s" l.addr l.word l.text;
      (match l.target with
      | Some t -> (
        match Hashtbl.find_opt labels t with
        | Some name -> Format.fprintf ppf "   # -> %s (0x%x)" name t
        | None -> Format.fprintf ppf "   # -> 0x%x" t)
      | None -> ());
      Format.fprintf ppf "@.")
    lines

let dump (program : Asm.program) =
  let mem = Mem.create ~size:(program.Asm.base + Bytes.length program.Asm.image) in
  Asm.load mem program;
  let lines =
    disassemble mem ~addr:program.Asm.base ~len:(Bytes.length program.Asm.image)
  in
  Format.asprintf "%a" (pp_program ~symbols:program.Asm.symbols) lines
