(** The rv64im guest instruction set, plus two custom instructions used by
    the side-channel experiments ([Rdcycle] as a reader of the cycle CSR and
    [Cflush] as a line-granular data-cache flush, mirroring the paper's
    line-by-line RISC-V flush). *)

type opri =
  | ADDI
  | SLTI
  | SLTIU
  | XORI
  | ORI
  | ANDI
  | SLLI
  | SRLI
  | SRAI
  | ADDIW
  | SLLIW
  | SRLIW
  | SRAIW

type oprr =
  | ADD
  | SUB
  | SLL
  | SLT
  | SLTU
  | XOR
  | SRL
  | SRA
  | OR
  | AND
  | ADDW
  | SUBW
  | SLLW
  | SRLW
  | SRAW
  | MUL
  | MULH
  | MULHSU
  | MULHU
  | DIV
  | DIVU
  | REM
  | REMU
  | MULW
  | DIVW
  | DIVUW
  | REMW
  | REMUW

type width = B | H | W | D

type branch_cond = BEQ | BNE | BLT | BGE | BLTU | BGEU

type t =
  | Op_imm of opri * Reg.t * Reg.t * int  (** rd, rs1, 12-bit immediate *)
  | Op of oprr * Reg.t * Reg.t * Reg.t  (** rd, rs1, rs2 *)
  | Lui of Reg.t * int  (** rd, 20-bit upper immediate *)
  | Auipc of Reg.t * int  (** rd, 20-bit upper immediate *)
  | Load of width * bool * Reg.t * Reg.t * int
      (** width, unsigned?, rd, base, 12-bit offset *)
  | Store of width * Reg.t * Reg.t * int  (** width, src, base, offset *)
  | Branch of branch_cond * Reg.t * Reg.t * int
      (** cond, rs1, rs2, pc-relative byte offset *)
  | Jal of Reg.t * int  (** rd, pc-relative byte offset *)
  | Jalr of Reg.t * Reg.t * int  (** rd, base, offset *)
  | Ecall
  | Fence
  | Rdcycle of Reg.t  (** rd <- cycle counter (csrrs rd, cycle, x0) *)
  | Cflush of Reg.t  (** flush the D$ line containing address \[rs1\] *)

val size : int
(** Instruction size in bytes (4). *)

val negate_cond : branch_cond -> branch_cond
(** Complement of a branch condition (BEQ <-> BNE, ...). *)

val dest : t -> Reg.t option
(** Architectural destination register, if any ([x0] is reported as [None]
    since writes to it are discarded). *)

val sources : t -> Reg.t list
(** Architectural source registers (without [x0]). *)

val is_control : t -> bool
(** True for branches, jumps and [Ecall]. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
