lib/riscv/mem.ml: Bytes Char Int32 Int64
