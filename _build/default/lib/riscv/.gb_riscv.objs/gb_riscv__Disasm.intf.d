lib/riscv/disasm.mli: Asm Format Hashtbl Mem
