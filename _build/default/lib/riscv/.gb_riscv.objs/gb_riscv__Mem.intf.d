lib/riscv/mem.mli:
