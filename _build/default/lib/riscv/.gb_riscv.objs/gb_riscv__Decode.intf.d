lib/riscv/decode.mli: Insn
