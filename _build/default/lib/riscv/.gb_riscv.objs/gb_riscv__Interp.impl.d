lib/riscv/interp.ml: Array Buffer Char Decode Insn Int64 Mem Printf Reg
