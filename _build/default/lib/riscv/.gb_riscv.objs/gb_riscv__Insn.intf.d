lib/riscv/insn.mli: Format Reg
