lib/riscv/insn.ml: Format List Reg
