lib/riscv/disasm.ml: Asm Bytes Decode Format Hashtbl Insn List Mem Option Printf
