lib/riscv/encode.mli: Insn
