lib/riscv/encode.ml: Insn Printf
