lib/riscv/interp.mli: Buffer Insn Mem
