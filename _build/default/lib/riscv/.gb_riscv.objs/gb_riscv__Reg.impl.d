lib/riscv/reg.ml: Array
