lib/riscv/asm.ml: Buffer Char Encode Hashtbl Insn Int32 Int64 List Mem Printf Reg String Sys
