lib/riscv/decode.ml: Insn Sys
