lib/riscv/reg.mli:
