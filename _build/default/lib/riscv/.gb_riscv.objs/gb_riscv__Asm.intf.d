lib/riscv/asm.mli: Hashtbl Insn Mem Reg
