let mask bits v = v land ((1 lsl bits) - 1)

let check_signed bits name v =
  let lo = -(1 lsl (bits - 1)) and hi = (1 lsl (bits - 1)) - 1 in
  if v < lo || v > hi then
    invalid_arg (Printf.sprintf "Encode: %s immediate %d out of range" name v)

let r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode =
  (funct7 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (rd lsl 7) lor opcode

let i_type ~imm ~rs1 ~funct3 ~rd ~opcode =
  check_signed 12 "I-type" imm;
  (mask 12 imm lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12) lor (rd lsl 7)
  lor opcode

let csr_type ~csr ~rs1 ~funct3 ~rd =
  (csr lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12) lor (rd lsl 7) lor 0x73

let s_type ~imm ~rs2 ~rs1 ~funct3 ~opcode =
  check_signed 12 "S-type" imm;
  let imm = mask 12 imm in
  ((imm lsr 5) lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (mask 5 imm lsl 7) lor opcode

let b_type ~imm ~rs2 ~rs1 ~funct3 =
  check_signed 13 "B-type" imm;
  if imm land 1 <> 0 then invalid_arg "Encode: odd branch offset";
  let imm = mask 13 imm in
  let bit n = (imm lsr n) land 1 in
  (bit 12 lsl 31)
  lor (((imm lsr 5) land 0x3f) lsl 25)
  lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (((imm lsr 1) land 0xf) lsl 8)
  lor (bit 11 lsl 7) lor 0x63

let u_type ~imm ~rd ~opcode =
  (* The immediate is the raw 20-bit field; its architectural value is
     [sext32 (imm lsl 12)]. *)
  if imm < 0 || imm >= 1 lsl 20 then
    invalid_arg "Encode: U-type immediate out of range";
  (mask 20 imm lsl 12) lor (rd lsl 7) lor opcode

let j_type ~imm ~rd =
  check_signed 21 "J-type" imm;
  if imm land 1 <> 0 then invalid_arg "Encode: odd jump offset";
  let imm = mask 21 imm in
  let bit n = (imm lsr n) land 1 in
  (bit 20 lsl 31)
  lor (((imm lsr 1) land 0x3ff) lsl 21)
  lor (bit 11 lsl 20)
  lor (((imm lsr 12) land 0xff) lsl 12)
  lor (rd lsl 7) lor 0x6f

let opri_fields op =
  (* funct3, upper-bits template for shifts (funct6 lsl 26 on rv64) *)
  match op with
  | Insn.ADDI -> (0b000, None)
  | Insn.SLTI -> (0b010, None)
  | Insn.SLTIU -> (0b011, None)
  | Insn.XORI -> (0b100, None)
  | Insn.ORI -> (0b110, None)
  | Insn.ANDI -> (0b111, None)
  | Insn.SLLI -> (0b001, Some 0x00)
  | Insn.SRLI -> (0b101, Some 0x00)
  | Insn.SRAI -> (0b101, Some 0x10)
  | Insn.ADDIW -> (0b000, None)
  | Insn.SLLIW -> (0b001, Some 0x00)
  | Insn.SRLIW -> (0b101, Some 0x00)
  | Insn.SRAIW -> (0b101, Some 0x10)

let opri_is_word = function
  | Insn.ADDIW | Insn.SLLIW | Insn.SRLIW | Insn.SRAIW -> true
  | Insn.ADDI | Insn.SLTI | Insn.SLTIU | Insn.XORI | Insn.ORI | Insn.ANDI
  | Insn.SLLI | Insn.SRLI | Insn.SRAI ->
    false

let oprr_fields op =
  (* funct7, funct3, is_word *)
  match op with
  | Insn.ADD -> (0x00, 0b000, false)
  | Insn.SUB -> (0x20, 0b000, false)
  | Insn.SLL -> (0x00, 0b001, false)
  | Insn.SLT -> (0x00, 0b010, false)
  | Insn.SLTU -> (0x00, 0b011, false)
  | Insn.XOR -> (0x00, 0b100, false)
  | Insn.SRL -> (0x00, 0b101, false)
  | Insn.SRA -> (0x20, 0b101, false)
  | Insn.OR -> (0x00, 0b110, false)
  | Insn.AND -> (0x00, 0b111, false)
  | Insn.ADDW -> (0x00, 0b000, true)
  | Insn.SUBW -> (0x20, 0b000, true)
  | Insn.SLLW -> (0x00, 0b001, true)
  | Insn.SRLW -> (0x00, 0b101, true)
  | Insn.SRAW -> (0x20, 0b101, true)
  | Insn.MUL -> (0x01, 0b000, false)
  | Insn.MULH -> (0x01, 0b001, false)
  | Insn.MULHSU -> (0x01, 0b010, false)
  | Insn.MULHU -> (0x01, 0b011, false)
  | Insn.DIV -> (0x01, 0b100, false)
  | Insn.DIVU -> (0x01, 0b101, false)
  | Insn.REM -> (0x01, 0b110, false)
  | Insn.REMU -> (0x01, 0b111, false)
  | Insn.MULW -> (0x01, 0b000, true)
  | Insn.DIVW -> (0x01, 0b100, true)
  | Insn.DIVUW -> (0x01, 0b101, true)
  | Insn.REMW -> (0x01, 0b110, true)
  | Insn.REMUW -> (0x01, 0b111, true)

let width_funct3 ~unsigned = function
  | Insn.B -> if unsigned then 0b100 else 0b000
  | Insn.H -> if unsigned then 0b101 else 0b001
  | Insn.W -> if unsigned then 0b110 else 0b010
  | Insn.D -> 0b011

let cond_funct3 = function
  | Insn.BEQ -> 0b000
  | Insn.BNE -> 0b001
  | Insn.BLT -> 0b100
  | Insn.BGE -> 0b101
  | Insn.BLTU -> 0b110
  | Insn.BGEU -> 0b111

let cycle_csr = 0xC00

let encode insn =
  match insn with
  | Insn.Op_imm (op, rd, rs1, imm) ->
    let funct3, shift = opri_fields op in
    let opcode = if opri_is_word op then 0x1b else 0x13 in
    let imm =
      match shift with
      | None -> imm
      | Some top ->
        let shamt_bits = if opri_is_word op then 5 else 6 in
        if imm < 0 || imm >= 1 lsl shamt_bits then
          invalid_arg "Encode: shift amount out of range";
        (top lsl 6) lor imm
    in
    i_type ~imm ~rs1 ~funct3 ~rd ~opcode
  | Insn.Op (op, rd, rs1, rs2) ->
    let funct7, funct3, word = oprr_fields op in
    r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd
      ~opcode:(if word then 0x3b else 0x33)
  | Insn.Lui (rd, imm) -> u_type ~imm ~rd ~opcode:0x37
  | Insn.Auipc (rd, imm) -> u_type ~imm ~rd ~opcode:0x17
  | Insn.Load (w, unsigned, rd, rs1, off) ->
    i_type ~imm:off ~rs1 ~funct3:(width_funct3 ~unsigned w) ~rd ~opcode:0x03
  | Insn.Store (w, rs2, rs1, off) ->
    s_type ~imm:off ~rs2 ~rs1
      ~funct3:(width_funct3 ~unsigned:false w)
      ~opcode:0x23
  | Insn.Branch (cond, rs1, rs2, off) ->
    b_type ~imm:off ~rs2 ~rs1 ~funct3:(cond_funct3 cond)
  | Insn.Jal (rd, off) -> j_type ~imm:off ~rd
  | Insn.Jalr (rd, rs1, off) ->
    i_type ~imm:off ~rs1 ~funct3:0b000 ~rd ~opcode:0x67
  | Insn.Ecall -> 0x73
  | Insn.Fence -> i_type ~imm:0 ~rs1:0 ~funct3:0b000 ~rd:0 ~opcode:0x0f
  | Insn.Rdcycle rd -> csr_type ~csr:cycle_csr ~rs1:0 ~funct3:0b010 ~rd
  | Insn.Cflush rs1 ->
    (* custom-0 opcode, funct3 0: cflush rs1 *)
    i_type ~imm:0 ~rs1 ~funct3:0b000 ~rd:0 ~opcode:0x0b
