type item =
  | Label of string
  | Insn of Insn.t
  | Branch_to of Insn.branch_cond * Reg.t * Reg.t * string
  | Jal_to of Reg.t * string
  | La of Reg.t * string
  | Li of Reg.t * int64
  | Dword of int64 list
  | Dbyte of int list
  | Dstring of string
  | Space of int
  | Align of int

type program = {
  base : int;
  image : bytes;
  symbols : (string, int) Hashtbl.t;
  entry : int;
}

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let sign_extend bits v =
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift

(* Split a signed 32-bit value into (lui hi20, addiw lo12) such that
   sext32 ((hi lsl 12) + lo) = v, relying on addiw's 32-bit wrap. *)
let hi_lo v =
  let lo = sign_extend 12 (v land 0xfff) in
  let hi = ((v - lo) lsr 12) land 0xfffff in
  (hi, lo)

let li_items rd v =
  if rd = 0 then error "li to x0";
  if Int64.compare v (Int64.of_int32 Int32.min_int) < 0
     || Int64.compare v (Int64.of_int32 Int32.max_int) > 0
  then error "li: constant %Ld does not fit in 32 bits" v;
  let v = Int64.to_int v in
  if v >= -2048 && v < 2048 then [ Insn.Op_imm (Insn.ADDI, rd, 0, v) ]
  else
    let hi, lo = hi_lo v in
    [ Insn.Lui (rd, hi); Insn.Op_imm (Insn.ADDIW, rd, rd, lo) ]

let la_items rd addr =
  let hi, lo = hi_lo addr in
  [ Insn.Lui (rd, hi); Insn.Op_imm (Insn.ADDIW, rd, rd, lo) ]

let alignment_of = function
  | Insn _ | Branch_to _ | Jal_to _ | La _ | Li _ -> 4
  | Dword _ -> 8
  | Label _ | Dbyte _ | Dstring _ | Space _ -> 1
  | Align n -> n

let item_size = function
  | Label _ | Align _ -> 0
  | Insn _ | Branch_to _ | Jal_to _ -> 4
  | La _ -> 8
  | Li (rd, v) -> 4 * List.length (li_items rd v)
  | Dword vs -> 8 * List.length vs
  | Dbyte bs -> List.length bs
  | Dstring s -> String.length s
  | Space n -> n

let align_up off n = (off + n - 1) land lnot (n - 1)

(* Pass 1: symbol table. Labels bind to the (aligned) start of the next
   sized item, or to the aligned end of the program. *)
let compute_symbols ~base items =
  let symbols = Hashtbl.create 64 in
  let bind pending addr =
    List.iter
      (fun name ->
        if Hashtbl.mem symbols name then error "duplicate label %s" name;
        Hashtbl.add symbols name addr)
      pending
  in
  let rec go off pending = function
    | [] -> bind pending (base + off)
    | Label name :: rest -> go off (name :: pending) rest
    | item :: rest ->
      let off = align_up off (alignment_of item) in
      bind pending (base + off);
      go (off + item_size item) [] rest
  in
  go 0 [] items;
  symbols

let emit_insn buf insn =
  let w = Encode.encode insn in
  Buffer.add_char buf (Char.chr (w land 0xff));
  Buffer.add_char buf (Char.chr ((w lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((w lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((w lsr 24) land 0xff))

let assemble ?(base = 0x1000) items =
  if base land 3 <> 0 then error "base address must be 4-aligned";
  let symbols = compute_symbols ~base items in
  let resolve name =
    match Hashtbl.find_opt symbols name with
    | Some addr -> addr
    | None -> error "undefined label %s" name
  in
  let buf = Buffer.create 1024 in
  let pad_to off =
    while Buffer.length buf < off do
      Buffer.add_char buf '\000'
    done
  in
  let emit_item off item =
    let off = align_up off (alignment_of item) in
    pad_to off;
    let pc = base + off in
    (match item with
    | Label _ | Align _ -> ()
    | Insn insn -> emit_insn buf insn
    | Branch_to (cond, rs1, rs2, name) ->
      let delta = resolve name - pc in
      if delta < -4096 || delta > 4094 then
        error "branch to %s out of range (%d bytes)" name delta;
      emit_insn buf (Insn.Branch (cond, rs1, rs2, delta))
    | Jal_to (rd, name) ->
      let delta = resolve name - pc in
      emit_insn buf (Insn.Jal (rd, delta))
    | La (rd, name) -> List.iter (emit_insn buf) (la_items rd (resolve name))
    | Li (rd, v) -> List.iter (emit_insn buf) (li_items rd v)
    | Dword vs ->
      List.iter
        (fun v ->
          for i = 0 to 7 do
            Buffer.add_char buf
              (Char.chr
                 (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
          done)
        vs
    | Dbyte bs -> List.iter (fun b -> Buffer.add_char buf (Char.chr (b land 0xff))) bs
    | Dstring s -> Buffer.add_string buf s
    | Space n -> Buffer.add_string buf (String.make n '\000'));
    off + item_size item
  in
  let (_ : int) = List.fold_left emit_item 0 items in
  { base; image = Buffer.to_bytes buf; symbols; entry = base }

let load mem program = Mem.blit_bytes mem ~addr:program.base program.image

let symbol program name =
  match Hashtbl.find_opt program.symbols name with
  | Some addr -> addr
  | None -> error "undefined label %s" name
