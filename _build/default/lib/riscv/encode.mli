(** Binary encoding of guest instructions into 32-bit RISC-V words.

    Standard rv64im encodings are used; [Rdcycle] encodes as
    [csrrs rd, cycle, x0] and [Cflush] uses the custom-0 opcode space.
    Raises [Invalid_argument] when an immediate does not fit its field. *)

val encode : Insn.t -> int
(** The 32-bit instruction word (in [\[0, 2^32)]). *)
