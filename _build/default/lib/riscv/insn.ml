type opri =
  | ADDI
  | SLTI
  | SLTIU
  | XORI
  | ORI
  | ANDI
  | SLLI
  | SRLI
  | SRAI
  | ADDIW
  | SLLIW
  | SRLIW
  | SRAIW

type oprr =
  | ADD
  | SUB
  | SLL
  | SLT
  | SLTU
  | XOR
  | SRL
  | SRA
  | OR
  | AND
  | ADDW
  | SUBW
  | SLLW
  | SRLW
  | SRAW
  | MUL
  | MULH
  | MULHSU
  | MULHU
  | DIV
  | DIVU
  | REM
  | REMU
  | MULW
  | DIVW
  | DIVUW
  | REMW
  | REMUW

type width = B | H | W | D

type branch_cond = BEQ | BNE | BLT | BGE | BLTU | BGEU

type t =
  | Op_imm of opri * Reg.t * Reg.t * int
  | Op of oprr * Reg.t * Reg.t * Reg.t
  | Lui of Reg.t * int
  | Auipc of Reg.t * int
  | Load of width * bool * Reg.t * Reg.t * int
  | Store of width * Reg.t * Reg.t * int
  | Branch of branch_cond * Reg.t * Reg.t * int
  | Jal of Reg.t * int
  | Jalr of Reg.t * Reg.t * int
  | Ecall
  | Fence
  | Rdcycle of Reg.t
  | Cflush of Reg.t

let size = 4

let negate_cond = function
  | BEQ -> BNE
  | BNE -> BEQ
  | BLT -> BGE
  | BGE -> BLT
  | BLTU -> BGEU
  | BGEU -> BLTU

let norm rd = if rd = 0 then None else Some rd

let dest = function
  | Op_imm (_, rd, _, _) | Op (_, rd, _, _) | Lui (rd, _) | Auipc (rd, _)
  | Load (_, _, rd, _, _) | Jal (rd, _) | Jalr (rd, _, _) | Rdcycle rd ->
    norm rd
  | Store _ | Branch _ | Ecall | Fence | Cflush _ -> None

let sources insn =
  let regs =
    match insn with
    | Op_imm (_, _, rs1, _) | Load (_, _, _, rs1, _) | Jalr (_, rs1, _)
    | Cflush rs1 ->
      [ rs1 ]
    | Op (_, _, rs1, rs2) | Store (_, rs2, rs1, _) | Branch (_, rs1, rs2, _)
      ->
      [ rs1; rs2 ]
    | Lui _ | Auipc _ | Jal _ | Ecall | Fence | Rdcycle _ -> []
  in
  List.filter (fun r -> r <> 0) regs

let is_control = function
  | Branch _ | Jal _ | Jalr _ | Ecall -> true
  | Op_imm _ | Op _ | Lui _ | Auipc _ | Load _ | Store _ | Fence | Rdcycle _
  | Cflush _ ->
    false

let opri_name = function
  | ADDI -> "addi"
  | SLTI -> "slti"
  | SLTIU -> "sltiu"
  | XORI -> "xori"
  | ORI -> "ori"
  | ANDI -> "andi"
  | SLLI -> "slli"
  | SRLI -> "srli"
  | SRAI -> "srai"
  | ADDIW -> "addiw"
  | SLLIW -> "slliw"
  | SRLIW -> "srliw"
  | SRAIW -> "sraiw"

let oprr_name = function
  | ADD -> "add"
  | SUB -> "sub"
  | SLL -> "sll"
  | SLT -> "slt"
  | SLTU -> "sltu"
  | XOR -> "xor"
  | SRL -> "srl"
  | SRA -> "sra"
  | OR -> "or"
  | AND -> "and"
  | ADDW -> "addw"
  | SUBW -> "subw"
  | SLLW -> "sllw"
  | SRLW -> "srlw"
  | SRAW -> "sraw"
  | MUL -> "mul"
  | MULH -> "mulh"
  | MULHSU -> "mulhsu"
  | MULHU -> "mulhu"
  | DIV -> "div"
  | DIVU -> "divu"
  | REM -> "rem"
  | REMU -> "remu"
  | MULW -> "mulw"
  | DIVW -> "divw"
  | DIVUW -> "divuw"
  | REMW -> "remw"
  | REMUW -> "remuw"

let width_name ~unsigned = function
  | B -> if unsigned then "lbu" else "b"
  | H -> if unsigned then "lhu" else "h"
  | W -> if unsigned then "lwu" else "w"
  | D -> "d"

let cond_name = function
  | BEQ -> "beq"
  | BNE -> "bne"
  | BLT -> "blt"
  | BGE -> "bge"
  | BLTU -> "bltu"
  | BGEU -> "bgeu"

let pp ppf insn =
  let r = Reg.name in
  match insn with
  | Op_imm (op, rd, rs1, imm) ->
    Format.fprintf ppf "%s %s, %s, %d" (opri_name op) (r rd) (r rs1) imm
  | Op (op, rd, rs1, rs2) ->
    Format.fprintf ppf "%s %s, %s, %s" (oprr_name op) (r rd) (r rs1) (r rs2)
  | Lui (rd, imm) -> Format.fprintf ppf "lui %s, 0x%x" (r rd) imm
  | Auipc (rd, imm) -> Format.fprintf ppf "auipc %s, 0x%x" (r rd) imm
  | Load (w, unsigned, rd, rs1, off) ->
    let mnemonic =
      if unsigned then width_name ~unsigned:true w
      else "l" ^ width_name ~unsigned:false w
    in
    Format.fprintf ppf "%s %s, %d(%s)" mnemonic (r rd) off (r rs1)
  | Store (w, rs2, rs1, off) ->
    Format.fprintf ppf "s%s %s, %d(%s)"
      (width_name ~unsigned:false w)
      (r rs2) off (r rs1)
  | Branch (cond, rs1, rs2, off) ->
    Format.fprintf ppf "%s %s, %s, %d" (cond_name cond) (r rs1) (r rs2) off
  | Jal (rd, off) -> Format.fprintf ppf "jal %s, %d" (r rd) off
  | Jalr (rd, rs1, off) ->
    Format.fprintf ppf "jalr %s, %d(%s)" (r rd) off (r rs1)
  | Ecall -> Format.fprintf ppf "ecall"
  | Fence -> Format.fprintf ppf "fence"
  | Rdcycle rd -> Format.fprintf ppf "rdcycle %s" (r rd)
  | Cflush rs1 -> Format.fprintf ppf "cflush (%s)" (r rs1)

let to_string insn = Format.asprintf "%a" pp insn
