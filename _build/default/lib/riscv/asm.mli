(** Two-pass assembler for guest programs.

    A program is a flat list of items (labels, instructions with symbolic
    targets, data directives) laid out sequentially from a base address.
    Instructions are 4-byte aligned; 8-byte data directives are 8-byte
    aligned. *)

type item =
  | Label of string
  | Insn of Insn.t  (** already-resolved instruction *)
  | Branch_to of Insn.branch_cond * Reg.t * Reg.t * string
      (** conditional branch to a label *)
  | Jal_to of Reg.t * string  (** direct jump/call to a label *)
  | La of Reg.t * string  (** load the address of a label (lui+addi) *)
  | Li of Reg.t * int64
      (** load a constant; must fit in a signed 32-bit value *)
  | Dword of int64 list  (** 8-byte little-endian data *)
  | Dbyte of int list  (** raw bytes (each in \[0,255\]) *)
  | Dstring of string  (** raw bytes from a string (no terminator) *)
  | Space of int  (** [n] zero bytes *)
  | Align of int  (** align to a power-of-two boundary *)

type program = {
  base : int;  (** load address of the first byte *)
  image : bytes;  (** raw memory image *)
  symbols : (string, int) Hashtbl.t;  (** label -> absolute address *)
  entry : int;  (** address of the first instruction *)
}

exception Error of string

val assemble : ?base:int -> item list -> program
(** Lay out and encode a program. [base] defaults to [0x1000].
    Raises {!Error} on duplicate/undefined labels or out-of-range
    branch offsets. *)

val load : Mem.t -> program -> unit
(** Copy the program image into guest memory. *)

val symbol : program -> string -> int
(** Address of a label. Raises {!Error} if undefined. *)
