(** Decoding of 32-bit instruction words back into {!Insn.t}. *)

exception Illegal of int
(** Raised on an instruction word this implementation cannot decode. *)

val decode : int -> Insn.t
(** Inverse of {!Encode.encode}. Raises {!Illegal} on unknown encodings. *)
