open Gb_kernelc.Dsl

type t = {
  name : string;
  description : string;
  program : Gb_kernelc.Ast.program;
}

let i64 = Gb_kernelc.Ast.I64

(* Deterministic input patterns (stand-ins for Polybench's init loops). *)
let pat2 a b i j = ((v i *: c a) +: (v j *: c b)) %: c 13

let pat1 a i = ((v i *: c a) +: c 1) %: c 11

let init2 name n m f =
  for_ "ii" (c 0) (c n) [ for_ "jj" (c 0) (c m) [ (name, [ v "ii"; v "jj" ]) <-: f "ii" "jj" ] ]

let init1 name n f = for_ "ii" (c 0) (c n) [ (name, [ v "ii" ]) <-: f "ii" ]

(* Fold a checksum over arrays (1-D or 2-D); the exit code is its low
   byte. *)
let checksum_stmts specs =
  let_ "cks" (c 0)
  :: List.concat_map
       (fun (name, dims) ->
         match dims with
         | [ n ] ->
           [ for_ "ci" (c 0) (c n)
               [ set "cks" ((v "cks" *: c 33) +: arr name [ v "ci" ]) ] ]
         | [ n; m ] ->
           [ for_ "ci" (c 0) (c n)
               [ for_ "cj" (c 0) (c m)
                   [ set "cks" ((v "cks" *: c 33) +: arr name [ v "ci"; v "cj" ]) ] ] ]
         | [ n; m; p ] ->
           [ for_ "ci" (c 0) (c n)
               [ for_ "cj" (c 0) (c m)
                   [ for_ "ck" (c 0) (c p)
                       [ set "cks"
                           ((v "cks" *: c 33) +: arr name [ v "ci"; v "cj"; v "ck" ]) ] ] ] ]
         | _ -> invalid_arg "checksum_stmts: unsupported rank")
       specs

let mk name description arrays body outputs =
  { name; description;
    program =
      { Gb_kernelc.Ast.arrays; body = body @ checksum_stmts outputs;
        result = v "cks" } }

(* C = 2*A*B + 3*C *)
let gemm =
  let n = 20 in
  mk "gemm" "matrix multiply and accumulate"
    [ array "A" i64 [ n; n ]; array "B" i64 [ n; n ]; array "C" i64 [ n; n ] ]
    [
      init2 "A" n n (pat2 7 3);
      init2 "B" n n (pat2 11 5);
      init2 "C" n n (pat2 2 9);
      for_ "i" (c 0) (c n)
        [
          for_ "j" (c 0) (c n)
            [
              let_ "acc" (c 0);
              for_ "k" (c 0) (c n)
                [ set "acc" (v "acc" +: (arr "A" [ v "i"; v "k" ] *: arr "B" [ v "k"; v "j" ])) ];
              ("C", [ v "i"; v "j" ]) <-:
                ((c 2 *: v "acc") +: (c 3 *: arr "C" [ v "i"; v "j" ]));
            ];
        ];
    ]
    [ ("C", [ n; n ]) ]

let plain_matmul dst a b n =
  for_ "i" (c 0) (c n)
    [
      for_ "j" (c 0) (c n)
        [
          let_ "acc" (c 0);
          for_ "k" (c 0) (c n)
            [ set "acc" (v "acc" +: (arr a [ v "i"; v "k" ] *: arr b [ v "k"; v "j" ])) ];
          (dst, [ v "i"; v "j" ]) <-: v "acc";
        ];
    ]

(* tmp = A*B; D = tmp*C *)
let two_mm =
  let n = 16 in
  mk "2mm" "two chained matrix multiplies"
    [ array "A" i64 [ n; n ]; array "B" i64 [ n; n ]; array "C" i64 [ n; n ];
      array "tmp" i64 [ n; n ]; array "D" i64 [ n; n ] ]
    [
      init2 "A" n n (pat2 7 3);
      init2 "B" n n (pat2 11 5);
      init2 "C" n n (pat2 2 9);
      plain_matmul "tmp" "A" "B" n;
      plain_matmul "D" "tmp" "C" n;
    ]
    [ ("D", [ n; n ]) ]

(* E = A*B; F = C*D; G = E*F *)
let three_mm =
  let n = 14 in
  mk "3mm" "three chained matrix multiplies"
    [ array "A" i64 [ n; n ]; array "B" i64 [ n; n ]; array "C" i64 [ n; n ];
      array "D" i64 [ n; n ]; array "E" i64 [ n; n ]; array "F" i64 [ n; n ];
      array "G" i64 [ n; n ] ]
    [
      init2 "A" n n (pat2 7 3);
      init2 "B" n n (pat2 11 5);
      init2 "C" n n (pat2 2 9);
      init2 "D" n n (pat2 5 7);
      plain_matmul "E" "A" "B" n;
      plain_matmul "F" "C" "D" n;
      plain_matmul "G" "E" "F" n;
    ]
    [ ("G", [ n; n ]) ]

(* y = A^T (A x) *)
let atax =
  let n = 28 in
  mk "atax" "matrix transpose-vector product"
    [ array "A" i64 [ n; n ]; array "x" i64 [ n ]; array "tmp" i64 [ n ];
      array "y" i64 [ n ] ]
    [
      init2 "A" n n (pat2 7 3);
      init1 "x" n (pat1 5);
      init1 "y" n (fun _ -> c 0);
      for_ "i" (c 0) (c n)
        [
          let_ "acc" (c 0);
          for_ "j" (c 0) (c n)
            [ set "acc" (v "acc" +: (arr "A" [ v "i"; v "j" ] *: arr "x" [ v "j" ])) ];
          ("tmp", [ v "i" ]) <-: v "acc";
        ];
      for_ "i" (c 0) (c n)
        [
          for_ "j" (c 0) (c n)
            [
              ("y", [ v "j" ]) <-:
                (arr "y" [ v "j" ] +: (arr "A" [ v "i"; v "j" ] *: arr "tmp" [ v "i" ]));
            ];
        ];
    ]
    [ ("y", [ n ]) ]

(* s = A^T r ; q = A p *)
let bicg =
  let n = 28 in
  mk "bicg" "BiCG sub-kernel"
    [ array "A" i64 [ n; n ]; array "r" i64 [ n ]; array "p" i64 [ n ];
      array "s" i64 [ n ]; array "q" i64 [ n ] ]
    [
      init2 "A" n n (pat2 7 3);
      init1 "r" n (pat1 5);
      init1 "p" n (pat1 7);
      init1 "s" n (fun _ -> c 0);
      for_ "i" (c 0) (c n)
        [
          let_ "acc" (c 0);
          for_ "j" (c 0) (c n)
            [
              ("s", [ v "j" ]) <-:
                (arr "s" [ v "j" ] +: (arr "r" [ v "i" ] *: arr "A" [ v "i"; v "j" ]));
              set "acc" (v "acc" +: (arr "A" [ v "i"; v "j" ] *: arr "p" [ v "j" ]));
            ];
          ("q", [ v "i" ]) <-: v "acc";
        ];
    ]
    [ ("s", [ n ]); ("q", [ n ]) ]

(* x1 += A y1 ; x2 += A^T y2 *)
let mvt =
  let n = 28 in
  mk "mvt" "matrix-vector product and transpose"
    [ array "A" i64 [ n; n ]; array "x1" i64 [ n ]; array "x2" i64 [ n ];
      array "y1" i64 [ n ]; array "y2" i64 [ n ] ]
    [
      init2 "A" n n (pat2 7 3);
      init1 "x1" n (pat1 3);
      init1 "x2" n (pat1 5);
      init1 "y1" n (pat1 7);
      init1 "y2" n (pat1 9);
      for_ "i" (c 0) (c n)
        [
          let_ "acc" (arr "x1" [ v "i" ]);
          for_ "j" (c 0) (c n)
            [ set "acc" (v "acc" +: (arr "A" [ v "i"; v "j" ] *: arr "y1" [ v "j" ])) ];
          ("x1", [ v "i" ]) <-: v "acc";
        ];
      for_ "i" (c 0) (c n)
        [
          let_ "acc" (arr "x2" [ v "i" ]);
          for_ "j" (c 0) (c n)
            [ set "acc" (v "acc" +: (arr "A" [ v "j"; v "i" ] *: arr "y2" [ v "j" ])) ];
          ("x2", [ v "i" ]) <-: v "acc";
        ];
    ]
    [ ("x1", [ n ]); ("x2", [ n ]) ]

(* y = 3*A*x + 2*B*x *)
let gesummv =
  let n = 28 in
  mk "gesummv" "scalar, vector and matrix multiplication"
    [ array "A" i64 [ n; n ]; array "B" i64 [ n; n ]; array "x" i64 [ n ];
      array "y" i64 [ n ] ]
    [
      init2 "A" n n (pat2 7 3);
      init2 "B" n n (pat2 11 5);
      init1 "x" n (pat1 5);
      for_ "i" (c 0) (c n)
        [
          let_ "ta" (c 0);
          let_ "tb" (c 0);
          for_ "j" (c 0) (c n)
            [
              set "ta" (v "ta" +: (arr "A" [ v "i"; v "j" ] *: arr "x" [ v "j" ]));
              set "tb" (v "tb" +: (arr "B" [ v "i"; v "j" ] *: arr "x" [ v "j" ]));
            ];
          ("y", [ v "i" ]) <-: ((c 3 *: v "ta") +: (c 2 *: v "tb"));
        ];
    ]
    [ ("y", [ n ]) ]

(* A[r][q][*] = A[r][q][*] . C4 *)
let doitgen =
  let n = 10 in
  mk "doitgen" "multiresolution analysis kernel"
    [ array "A" i64 [ n; n; n ]; array "C4" i64 [ n; n ]; array "sum" i64 [ n ] ]
    [
      for_ "r" (c 0) (c n)
        [ for_ "q" (c 0) (c n)
            [ for_ "p" (c 0) (c n)
                [ ("A", [ v "r"; v "q"; v "p" ]) <-:
                    (((v "r" *: c 3) +: (v "q" *: c 5) +: v "p") %: c 13) ] ] ];
      init2 "C4" n n (pat2 7 3);
      for_ "r" (c 0) (c n)
        [
          for_ "q" (c 0) (c n)
            [
              for_ "p" (c 0) (c n)
                [
                  let_ "acc" (c 0);
                  for_ "s" (c 0) (c n)
                    [ set "acc" (v "acc" +: (arr "A" [ v "r"; v "q"; v "s" ] *: arr "C4" [ v "s"; v "p" ])) ];
                  ("sum", [ v "p" ]) <-: v "acc";
                ];
              for_ "p" (c 0) (c n)
                [ ("A", [ v "r"; v "q"; v "p" ]) <-: arr "sum" [ v "p" ] ];
            ];
        ];
    ]
    [ ("A", [ n; n; n ]) ]

(* B = A * B with A lower-triangular (unit diagonal) *)
let trmm =
  let n = 20 in
  mk "trmm" "triangular matrix multiply"
    [ array "A" i64 [ n; n ]; array "B" i64 [ n; n ] ]
    [
      init2 "A" n n (pat2 7 3);
      init2 "B" n n (pat2 11 5);
      for_ "i" (c 0) (c n)
        [
          for_ "j" (c 0) (c n)
            [
              let_ "acc" (arr "B" [ v "i"; v "j" ]);
              for_ "k" (v "i" +: c 1) (c n)
                [ set "acc" (v "acc" +: (arr "A" [ v "k"; v "i" ] *: arr "B" [ v "k"; v "j" ])) ];
              ("B", [ v "i"; v "j" ]) <-: v "acc";
            ];
        ];
    ]
    [ ("B", [ n; n ]) ]

(* C = 2*A*A^T + 3*C *)
let syrk =
  let n = 18 in
  mk "syrk" "symmetric rank-k update"
    [ array "A" i64 [ n; n ]; array "C" i64 [ n; n ] ]
    [
      init2 "A" n n (pat2 7 3);
      init2 "C" n n (pat2 2 9);
      for_ "i" (c 0) (c n)
        [
          for_ "j" (c 0) (c n)
            [
              let_ "acc" (c 0);
              for_ "k" (c 0) (c n)
                [ set "acc" (v "acc" +: (arr "A" [ v "i"; v "k" ] *: arr "A" [ v "j"; v "k" ])) ];
              ("C", [ v "i"; v "j" ]) <-:
                ((c 2 *: v "acc") +: (c 3 *: arr "C" [ v "i"; v "j" ]));
            ];
        ];
    ]
    [ ("C", [ n; n ]) ]

(* t steps of the 3-point stencil *)
let jacobi_1d =
  let n = 240 in
  let steps = 20 in
  mk "jacobi-1d" "1-D Jacobi stencil"
    [ array "A" i64 [ n ]; array "B" i64 [ n ] ]
    [
      init1 "A" n (pat1 7);
      init1 "B" n (pat1 3);
      for_ "t" (c 0) (c steps)
        [
          for_ "i" (c 1) (c (n - 1))
            [ ("B", [ v "i" ]) <-:
                ((arr "A" [ v "i" -: c 1 ] +: arr "A" [ v "i" ] +: arr "A" [ v "i" +: c 1 ]) /: c 3) ];
          for_ "i" (c 1) (c (n - 1))
            [ ("A", [ v "i" ]) <-:
                ((arr "B" [ v "i" -: c 1 ] +: arr "B" [ v "i" ] +: arr "B" [ v "i" +: c 1 ]) /: c 3) ];
        ];
    ]
    [ ("A", [ n ]) ]

(* t steps of the 5-point stencil *)
let jacobi_2d =
  let n = 22 in
  let steps = 8 in
  mk "jacobi-2d" "2-D Jacobi stencil"
    [ array "A" i64 [ n; n ]; array "B" i64 [ n; n ] ]
    [
      init2 "A" n n (pat2 7 3);
      init2 "B" n n (pat2 11 5);
      (let stencil src dst =
         (* accumulate through a scalar to keep expression depth low *)
         for_ "i" (c 1) (c (n - 1))
           [ for_ "j" (c 1) (c (n - 1))
               [
                 let_ "s" (arr src [ v "i"; v "j" ] +: arr src [ v "i"; v "j" -: c 1 ]);
                 set "s" (v "s" +: arr src [ v "i"; v "j" +: c 1 ]);
                 set "s" (v "s" +: arr src [ v "i" +: c 1; v "j" ]);
                 set "s" (v "s" +: arr src [ v "i" -: c 1; v "j" ]);
                 (dst, [ v "i"; v "j" ]) <-: (v "s" /: c 5);
               ] ]
       in
       for_ "t" (c 0) (c steps) [ stencil "A" "B"; stencil "B" "A" ]);
    ]
    [ ("A", [ n; n ]) ]

(* C = 2*(A*B^T + B*A^T) + 3*C *)
let syr2k =
  let n = 16 in
  mk "syr2k" "symmetric rank-2k update"
    [ array "A" i64 [ n; n ]; array "B" i64 [ n; n ]; array "C" i64 [ n; n ] ]
    [
      init2 "A" n n (pat2 7 3);
      init2 "B" n n (pat2 11 5);
      init2 "C" n n (pat2 2 9);
      for_ "i" (c 0) (c n)
        [
          for_ "j" (c 0) (c n)
            [
              let_ "acc" (c 0);
              for_ "k" (c 0) (c n)
                [
                  set "acc"
                    (v "acc" +: (arr "A" [ v "i"; v "k" ] *: arr "B" [ v "j"; v "k" ]));
                  set "acc"
                    (v "acc" +: (arr "B" [ v "i"; v "k" ] *: arr "A" [ v "j"; v "k" ]));
                ];
              ("C", [ v "i"; v "j" ]) <-:
                ((c 2 *: v "acc") +: (c 3 *: arr "C" [ v "i"; v "j" ]));
            ];
        ];
    ]
    [ ("C", [ n; n ]) ]

(* B = A + u1*v1^T + u2*v2^T ; x = B^T y ; w = B x *)
let gemver =
  let n = 24 in
  mk "gemver" "vector multiplication and matrix addition"
    [ array "A" i64 [ n; n ]; array "u1" i64 [ n ]; array "v1" i64 [ n ];
      array "u2" i64 [ n ]; array "v2" i64 [ n ]; array "x" i64 [ n ];
      array "y" i64 [ n ]; array "w" i64 [ n ] ]
    [
      init2 "A" n n (pat2 7 3);
      init1 "u1" n (pat1 3);
      init1 "v1" n (pat1 5);
      init1 "u2" n (pat1 7);
      init1 "v2" n (pat1 9);
      init1 "y" n (pat1 2);
      init1 "x" n (fun _ -> c 0);
      for_ "i" (c 0) (c n)
        [
          for_ "j" (c 0) (c n)
            [
              let_ "upd"
                (arr "A" [ v "i"; v "j" ]
                +: (arr "u1" [ v "i" ] *: arr "v1" [ v "j" ]));
              ("A", [ v "i"; v "j" ]) <-:
                (v "upd" +: (arr "u2" [ v "i" ] *: arr "v2" [ v "j" ]));
            ];
        ];
      for_ "i" (c 0) (c n)
        [
          let_ "acc" (arr "x" [ v "i" ]);
          for_ "j" (c 0) (c n)
            [ set "acc" (v "acc" +: (arr "A" [ v "j"; v "i" ] *: arr "y" [ v "j" ])) ];
          ("x", [ v "i" ]) <-: v "acc";
        ];
      for_ "i" (c 0) (c n)
        [
          let_ "acc" (c 0);
          for_ "j" (c 0) (c n)
            [ set "acc" (v "acc" +: (arr "A" [ v "i"; v "j" ] *: arr "x" [ v "j" ])) ];
          ("w", [ v "i" ]) <-: v "acc";
        ];
    ]
    [ ("w", [ n ]); ("x", [ n ]) ]

(* C = A*B + B*C' with A symmetric (only the lower triangle stored) *)
let symm =
  let n = 16 in
  mk "symm" "symmetric matrix multiply"
    [ array "A" i64 [ n; n ]; array "B" i64 [ n; n ]; array "C" i64 [ n; n ] ]
    [
      init2 "A" n n (pat2 7 3);
      init2 "B" n n (pat2 11 5);
      init2 "C" n n (pat2 2 9);
      for_ "i" (c 0) (c n)
        [
          for_ "j" (c 0) (c n)
            [
              let_ "acc" (c 0);
              for_ "k" (c 0) (v "i")
                [
                  ("C", [ v "k"; v "j" ]) <-:
                    (arr "C" [ v "k"; v "j" ]
                    +: (arr "B" [ v "i"; v "j" ] *: arr "A" [ v "i"; v "k" ]));
                  set "acc"
                    (v "acc" +: (arr "B" [ v "k"; v "j" ] *: arr "A" [ v "i"; v "k" ]));
                ];
              ("C", [ v "i"; v "j" ]) <-:
                ((c 2 *: arr "C" [ v "i"; v "j" ])
                +: (arr "B" [ v "i"; v "j" ] *: arr "A" [ v "i"; v "i" ])
                +: v "acc");
            ];
        ];
    ]
    [ ("C", [ n; n ]) ]

(* t steps of the in-place 9-point averaging stencil (loop-carried) *)
let seidel_2d =
  let n = 20 in
  let steps = 6 in
  mk "seidel-2d" "2-D Gauss-Seidel stencil"
    [ array "A" i64 [ n; n ] ]
    [
      init2 "A" n n (pat2 7 3);
      for_ "t" (c 0) (c steps)
        [
          for_ "i" (c 1) (c (n - 1))
            [
              for_ "j" (c 1) (c (n - 1))
                [
                  let_ "s"
                    (arr "A" [ v "i" -: c 1; v "j" -: c 1 ]
                    +: arr "A" [ v "i" -: c 1; v "j" ]);
                  set "s" (v "s" +: arr "A" [ v "i" -: c 1; v "j" +: c 1 ]);
                  set "s" (v "s" +: arr "A" [ v "i"; v "j" -: c 1 ]);
                  set "s" (v "s" +: arr "A" [ v "i"; v "j" ]);
                  set "s" (v "s" +: arr "A" [ v "i"; v "j" +: c 1 ]);
                  set "s" (v "s" +: arr "A" [ v "i" +: c 1; v "j" -: c 1 ]);
                  set "s" (v "s" +: arr "A" [ v "i" +: c 1; v "j" ]);
                  set "s" (v "s" +: arr "A" [ v "i" +: c 1; v "j" +: c 1 ]);
                  ("A", [ v "i"; v "j" ]) <-: (v "s" /: c 9);
                ];
            ];
        ];
    ]
    [ ("A", [ n; n ]) ]

(* All-pairs shortest paths with a branchless min *)
let floyd_warshall =
  let n = 14 in
  mk "floyd-warshall" "all-pairs shortest paths"
    [ array "D" i64 [ n; n ] ]
    [
      for_ "i" (c 0) (c n)
        [
          for_ "j" (c 0) (c n)
            [
              ("D", [ v "i"; v "j" ]) <-:
                (((v "i" *: c 13) +: (v "j" *: c 7)) %: c 97) +: c 1;
            ];
        ];
      for_ "k" (c 0) (c n)
        [
          for_ "i" (c 0) (c n)
            [
              for_ "j" (c 0) (c n)
                [
                  let_ "via" (arr "D" [ v "i"; v "k" ] +: arr "D" [ v "k"; v "j" ]);
                  let_ "cur" (arr "D" [ v "i"; v "j" ]);
                  let_ "lt" (v "via" <: v "cur");
                  ("D", [ v "i"; v "j" ]) <-:
                    ((v "lt" *: v "via") +: ((c 1 -: v "lt") *: v "cur"));
                ];
            ];
        ];
    ]
    [ ("D", [ n; n ]) ]

(* t steps of the 7-point 3-D stencil *)
let heat_3d =
  let n = 10 in
  let steps = 6 in
  let stencil src dst =
    for_ "i" (c 1) (c (n - 1))
      [
        for_ "j" (c 1) (c (n - 1))
          [
            for_ "k" (c 1) (c (n - 1))
              [
                let_ "s"
                  (arr src [ v "i"; v "j"; v "k" ]
                  +: arr src [ v "i" -: c 1; v "j"; v "k" ]);
                set "s" (v "s" +: arr src [ v "i" +: c 1; v "j"; v "k" ]);
                set "s" (v "s" +: arr src [ v "i"; v "j" -: c 1; v "k" ]);
                set "s" (v "s" +: arr src [ v "i"; v "j" +: c 1; v "k" ]);
                set "s" (v "s" +: arr src [ v "i"; v "j"; v "k" -: c 1 ]);
                set "s" (v "s" +: arr src [ v "i"; v "j"; v "k" +: c 1 ]);
                (dst, [ v "i"; v "j"; v "k" ]) <-: (v "s" /: c 7);
              ];
          ];
      ]
  in
  mk "heat-3d" "3-D heat equation stencil"
    [ array "A" i64 [ n; n; n ]; array "B" i64 [ n; n; n ] ]
    [
      for_ "i" (c 0) (c n)
        [ for_ "j" (c 0) (c n)
            [ for_ "k" (c 0) (c n)
                [ ("A", [ v "i"; v "j"; v "k" ]) <-:
                    (((v "i" *: c 7) +: (v "j" *: c 5) +: (v "k" *: c 3)) %: c 13) ] ] ];
      for_ "t" (c 0) (c steps) [ stencil "A" "B"; stencil "B" "A" ];
    ]
    [ ("A", [ n; n; n ]) ]

(* RNA folding dynamic program (triangular loops, branchless max):
   N[i][j] = max(N[i+1][j], N[i][j-1], N[i+1][j-1] + pair(i,j),
                 max over i<k<j of N[i][k] + N[k+1][j]) *)
let nussinov =
  let n = 20 in
  (* dst := max dst e, with arithmetic only (no data-dependent branch);
     [idx] makes the temporaries unique within a scope *)
  let max_into idx dst e =
    let cand = Printf.sprintf "cand%d" idx and lt = Printf.sprintf "lt%d" idx in
    [
      Gb_kernelc.Ast.Let (cand, e);
      Gb_kernelc.Ast.Let (lt, v dst <: v cand);
      set dst ((v lt *: v cand) +: ((c 1 -: v lt) *: v dst));
    ]
  in
  mk "nussinov" "RNA base-pairing dynamic program"
    [ array "seq" i64 [ n ]; array "N" i64 [ n; n ] ]
    [
      for_ "i" (c 0) (c n) [ ("seq", [ v "i" ]) <-: ((v "i" *: c 5) %: c 4) ];
      for_ "ii" (c 1) (c n)
        [
          (* anti-diagonal order: i = n-1-ii *)
          let_ "i" (c (n - 1) -: v "ii");
          for_ "j" (v "i" +: c 1) (c n)
            ([ let_ "best" (arr "N" [ v "i"; v "j" -: c 1 ]) ]
            @ max_into 1 "best" (arr "N" [ v "i" +: c 1; v "j" ])
            @ [
                (* pairing i with j contributes 1 when bases complement *)
                let_ "pair"
                  (Gb_kernelc.Ast.Bin
                     ( Gb_kernelc.Ast.Eq,
                       arr "seq" [ v "i" ] +: arr "seq" [ v "j" ],
                       c 3 ));
              ]
            @ max_into 2 "best"
                (arr "N" [ v "i" +: c 1; v "j" -: c 1 ] +: v "pair")
            @ [
                for_ "k" (v "i" +: c 1) (v "j")
                  (max_into 3 "best"
                     (arr "N" [ v "i"; v "k" ] +: arr "N" [ v "k" +: c 1; v "j" ]));
                ("N", [ v "i"; v "j" ]) <-: v "best";
              ]);
        ];
    ]
    [ ("N", [ n; n ]) ]

let all =
  [ gemm; two_mm; three_mm; atax; bicg; mvt; gesummv; doitgen; trmm; syrk;
    syr2k; gemver; symm; jacobi_1d; jacobi_2d; seidel_2d; floyd_warshall;
    heat_3d; nussinov ]

(* §V-B: 2-D matrices represented as arrays of row pointers, so every
   element access is a double indirection — the address of the inner load
   depends on a loaded value, which is the Spectre pattern the poisoning
   analysis reacts to. *)
let matmul_ptr =
  let n = 16 in
  let row m i = arr (m ^ "_rows") [ v i ] in
  let elem m i j = Gb_kernelc.Ast.Mem (i64, row m i +: (v j <<: c 3)) in
  let store_elem m i j value =
    Gb_kernelc.Ast.Mem_store (i64, row m i +: (v j <<: c 3), value)
  in
  let data m = m ^ "_data" in
  let arrays =
    List.concat_map
      (fun m -> [ array (m ^ "_rows") i64 [ n ]; array (data m) i64 [ n; n ] ])
      [ "A"; "B"; "C" ]
  in
  let setup_rows m =
    for_ "i" (c 0) (c n)
      [ (m ^ "_rows", [ v "i" ]) <-: Gb_kernelc.Ast.Addr_of (data m, [ v "i"; c 0 ]) ]
  in
  {
    name = "matmul-ptr";
    description = "matrix multiply over arrays of row pointers (double indirection)";
    program =
      {
        Gb_kernelc.Ast.arrays;
        body =
          List.map setup_rows [ "A"; "B"; "C" ]
          @ [
              init2 (data "A") n n (pat2 7 3);
              init2 (data "B") n n (pat2 11 5);
              for_ "i" (c 0) (c n)
                [
                  for_ "j" (c 0) (c n)
                    [
                      let_ "acc" (c 0);
                      for_ "k" (c 0) (c n)
                        [ set "acc" (v "acc" +: (elem "A" "i" "k" *: elem "B" "k" "j")) ];
                      store_elem "C" "i" "j" (v "acc");
                    ];
                ];
            ]
          @ checksum_stmts [ (data "C", [ n; n ]) ];
        result = v "cks";
      };
  }

let by_name name =
  List.find_opt (fun w -> w.name = name) (matmul_ptr :: all)
