lib/workloads/polybench.ml: Gb_kernelc List Printf
