lib/workloads/polybench.mli: Gb_kernelc
