(** Integer ports of the Polybench kernels the paper's Figure 4 evaluates,
    written in the kernel DSL, plus the §V-B pointer-array matrix multiply.

    Every workload deterministically initialises its inputs, runs the
    kernel, and exits with a checksum of the outputs — so a single exit
    code validates architectural correctness across all processor
    configurations. The original Polybench kernels are floating-point;
    integer arithmetic preserves the loop nests, dependence structure and
    memory access patterns, which is what the DBT optimizer and the
    countermeasure react to. *)

type t = {
  name : string;
  description : string;
  program : Gb_kernelc.Ast.program;
}

val all : t list
(** The nineteen Figure-4-style kernels. *)

val matmul_ptr : t
(** Matrix multiply over arrays of row pointers (double indirection on
    every element access) — the §V-B stress case where the Spectre
    pattern occurs frequently. *)

val by_name : string -> t option
(** Looks up [all] plus [matmul_ptr]. *)
