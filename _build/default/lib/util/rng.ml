type t = { mutable state : int64 }

let create seed =
  let seed = if Int64.equal seed 0L then 0x9E3779B97F4A7C15L else seed in
  { state = seed }

let next t =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let bool t = Int64.logand (next t) 1L = 1L

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))
