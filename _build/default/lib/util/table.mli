(** ASCII table rendering for the benchmark harness output. *)

val render : header:string list -> rows:string list list -> string
(** Render a left-aligned first column, right-aligned remaining columns,
    with a separator under the header. Rows shorter than the header are
    padded with empty cells. *)

val print : header:string list -> rows:string list list -> unit
(** [render] followed by [print_string]. *)
