(** Deterministic pseudo-random number generator (xorshift64-star).

    Every stochastic component of the simulator draws from an explicit
    generator so that simulations and tests are reproducible. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. A zero seed is remapped to a
    fixed non-zero constant (xorshift has a zero fixed point). *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] draws uniformly in [\[0, bound)]. [bound] must be > 0. *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform draw from a non-empty array. *)
