(** Small numeric summaries used by the benchmark harness. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val geomean : float list -> float
(** Geometric mean; 1. on the empty list. All inputs must be > 0. *)

val median : float list -> float
(** Median (average of the two central elements for even lengths);
    0. on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]], nearest-rank; 0. on []. *)

val min_max : float list -> float * float
(** (min, max); (0., 0.) on the empty list. *)
