let pad_row width row =
  if List.length row >= width then row
  else row @ List.init (width - List.length row) (fun _ -> "")

let render ~header ~rows =
  let width = List.length header in
  let rows = List.map (pad_row width) rows in
  let all = header :: rows in
  let col_width i =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all
  in
  let widths = List.init width col_width in
  let fmt_cell i cell =
    let w = List.nth widths i in
    if i = 0 then Printf.sprintf "%-*s" w cell else Printf.sprintf "%*s" w cell
  in
  let fmt_row row = String.concat "  " (List.mapi fmt_cell row) in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (fmt_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (fmt_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ~header ~rows = print_string (render ~header ~rows)
