lib/util/json.mli:
