lib/util/table.mli:
