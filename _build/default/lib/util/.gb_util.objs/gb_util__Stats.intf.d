lib/util/stats.mli:
