lib/util/rng.mli:
