(** Minimal JSON encoder (no external dependencies) used to export
    experiment results in machine-readable form. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact encoding with full string escaping. *)

val to_string_pretty : t -> string
(** Two-space indented encoding. *)
