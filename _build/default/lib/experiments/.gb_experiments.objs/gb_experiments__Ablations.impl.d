lib/experiments/ablations.ml: Gb_attack Gb_cache Gb_core Gb_dbt Gb_ir Gb_kernelc Gb_system Gb_workloads Int64 List Printf
