lib/experiments/ablations.mli:
