lib/experiments/experiments.mli: Gb_attack Gb_core Gb_kernelc Gb_system Gb_util
