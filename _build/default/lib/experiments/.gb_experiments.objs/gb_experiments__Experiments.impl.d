lib/experiments/experiments.ml: Gb_attack Gb_core Gb_kernelc Gb_system Gb_util Gb_workloads Int64 List Printf
