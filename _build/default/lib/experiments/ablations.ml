type row = {
  param : string;
  value : string;
  unsafe_cycles : int64;
  no_spec_slowdown : float;
  v1_leaks : bool;
  v4_leaks : bool;
}

let ablation_secret = "GHOSTBUS"

let reference_kernel ~name () =
  match Gb_workloads.Polybench.by_name name with
  | Some w -> Gb_kernelc.Compile.assemble w.Gb_workloads.Polybench.program
  | None -> assert false

(* Measure one configuration point: kernel cycles with and without
   speculation, and whether the two attacks still leak. *)
let measure ~kernel_name ~param ~value ~configure =
  let config_for mode =
    configure (Gb_system.Processor.config_for mode)
  in
  let kernel = reference_kernel ~name:kernel_name () in
  let unsafe_cfg = config_for Gb_core.Mitigation.Unsafe in
  let unsafe = Gb_system.Processor.run_program ~config:unsafe_cfg kernel in
  let no_spec =
    Gb_system.Processor.run_program
      ~config:(config_for Gb_core.Mitigation.No_speculation)
      kernel
  in
  let attack variant =
    let program =
      match variant with
      | `V1 -> Gb_attack.Spectre_v1.program ~secret:ablation_secret ()
      | `V4 -> Gb_attack.Spectre_v4.program ~secret:ablation_secret ()
    in
    Gb_attack.Runner.succeeded
      (Gb_attack.Runner.run ~config:unsafe_cfg ~mode:Gb_core.Mitigation.Unsafe
         ~secret:ablation_secret program)
  in
  {
    param;
    value;
    unsafe_cycles = unsafe.Gb_system.Processor.cycles;
    no_spec_slowdown =
      Int64.to_float no_spec.Gb_system.Processor.cycles
      /. Int64.to_float unsafe.Gb_system.Processor.cycles;
    v1_leaks = attack `V1;
    v4_leaks = attack `V4;
  }

let with_engine config f =
  { config with
    Gb_system.Processor.engine = f config.Gb_system.Processor.engine }

let issue_width () =
  List.map
    (fun (width, mem_slots, mul_slots) ->
      measure ~kernel_name:"gemm" ~param:"issue width" ~value:(string_of_int width)
        ~configure:(fun config ->
          with_engine config (fun e ->
              {
                e with
                Gb_dbt.Engine.resources =
                  { Gb_dbt.Sched.width; mem_slots; mul_slots; branch_slots = 1 };
              })))
    [ (2, 1, 1); (4, 1, 1); (8, 2, 2) ]

let mcb_size () =
  List.map
    (fun tags ->
      measure ~kernel_name:"gemm" ~param:"MCB entries" ~value:(string_of_int tags)
        ~configure:(fun config ->
          with_engine config (fun e ->
              let base_opt =
                match e.Gb_dbt.Engine.opt_override with
                | Some opt -> opt
                | None -> Gb_core.Mitigation.opt_of_mode e.Gb_dbt.Engine.mode
              in
              {
                e with
                Gb_dbt.Engine.opt_override =
                  Some
                    {
                      base_opt with
                      Gb_ir.Opt_config.mem_spec = tags > 0;
                      mcb_tags = tags;
                    };
              })))
    [ 0; 2; 8; 16 ]

let hot_threshold () =
  List.map
    (fun threshold ->
      measure ~kernel_name:"gemm" ~param:"hot threshold" ~value:(string_of_int threshold)
        ~configure:(fun config ->
          with_engine config (fun e ->
              { e with Gb_dbt.Engine.hot_threshold = threshold })))
    [ 8; 24; 64; 256 ]

let unroll_limit () =
  List.map
    (fun visits ->
      measure ~kernel_name:"gemm" ~param:"unroll limit" ~value:(string_of_int visits)
        ~configure:(fun config ->
          with_engine config (fun e ->
              {
                e with
                Gb_dbt.Engine.trace_cfg =
                  {
                    e.Gb_dbt.Engine.trace_cfg with
                    Gb_dbt.Trace_builder.max_visits = visits;
                  };
              })))
    [ 1; 2; 4; 8 ]

let cache_size () =
  List.map
    (fun kib ->
      measure ~kernel_name:"gemm" ~param:"L1D size" ~value:(Printf.sprintf "%dKiB" kib)
        ~configure:(fun config ->
          {
            config with
            Gb_system.Processor.hier =
              {
                config.Gb_system.Processor.hier with
                Gb_cache.Hierarchy.cache =
                  {
                    Gb_cache.Cache.size_bytes = kib * 1024;
                    ways = 8;
                    line_bytes = 64;
                  };
              };
          }))
    [ 16; 64; 256 ]

let optimizer_cse () =
  List.map
    (fun enabled ->
      measure ~kernel_name:"gemm" ~param:"CSE/folding" ~value:(if enabled then "on" else "off")
        ~configure:(fun config ->
          with_engine config (fun e ->
              {
                e with
                Gb_dbt.Engine.opt_override =
                  Some
                    {
                      (Gb_core.Mitigation.opt_of_mode e.Gb_dbt.Engine.mode) with
                      Gb_ir.Opt_config.cse = enabled;
                    };
              })))
    [ true; false ]

let with_adaptive config enabled =
  with_engine config (fun e -> { e with Gb_dbt.Engine.adaptive_despec = enabled })

let adaptive_despec () =
  List.map
    (fun enabled ->
      measure ~kernel_name:"nussinov" ~param:"adaptive despec"
        ~value:(if enabled then "on" else "off")
        ~configure:(fun config -> with_adaptive config enabled))
    [ false; true ]

let all () =
  [
    ("optimizer cleanups (CSE + folding)", optimizer_cse ());
    ("adaptive de-speculation (kernel: nussinov)", adaptive_despec ());
    ("issue width", issue_width ());
    ("MCB size", mcb_size ());
    ("hot threshold", hot_threshold ());
    ("trace unrolling", unroll_limit ());
    ("L1D size", cache_size ());
  ]
