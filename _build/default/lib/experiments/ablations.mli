(** Design-space ablations (beyond the paper's evaluation): how the
    headline results react to the main micro-architecture and DBT-engine
    parameters DESIGN.md calls out. Each returns one row per parameter
    value, measured on a representative kernel and/or on the Spectre
    proof-of-concept. *)

type row = {
  param : string;  (** parameter name *)
  value : string;  (** parameter value as shown in the table *)
  unsafe_cycles : int64;  (** gemm under the unsafe configuration *)
  no_spec_slowdown : float;  (** the cost of turning speculation off *)
  v1_leaks : bool;  (** Spectre v1 succeeds on the unsafe configuration *)
  v4_leaks : bool;  (** Spectre v4 succeeds on the unsafe configuration *)
}

val issue_width : unit -> row list
(** 2-, 4- and 8-wide VLIW (memory/multiplier ports scaled with width). *)

val mcb_size : unit -> row list
(** 0, 2, 8 and 16 MCB entries. With no MCB, memory speculation is
    impossible — Spectre v4 disappears by construction while v1 remains. *)

val hot_threshold : unit -> row list
(** When translation kicks in (8..256 block executions). *)

val unroll_limit : unit -> row list
(** Trace-constructor revisit limit (1 = no unrolling). *)

val adaptive_despec : unit -> row list
(** Conflict-driven de-speculation off vs on, measured on nussinov (the
    kernel with genuine cross-iteration aliasing): on, the rollback storm
    disappears — and, as a side effect, the Spectre v4 attack loses most
    of its leak, because its gadget rolls back on every round. *)

val optimizer_cse : unit -> row list
(** Constant folding + value numbering on vs off: a pure optimizer feature
    that shrinks traces without touching speculation. *)

val cache_size : unit -> row list
(** 16 KiB .. 256 KiB L1D: the attack works across sizes (flush+reload
    needs no eviction-set tricks here because cflush is line-precise). *)

val all : unit -> (string * row list) list
(** Every ablation, keyed by a short title. *)
