lib/system/report.ml: Array Format Gb_cache Gb_dbt Gb_util Gb_vliw Int64 List Printf Processor
