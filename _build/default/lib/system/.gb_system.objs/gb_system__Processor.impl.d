lib/system/processor.ml: Array Buffer Gb_cache Gb_dbt Gb_riscv Gb_vliw Int64
