lib/system/processor.mli: Gb_cache Gb_core Gb_dbt Gb_riscv Gb_vliw
