lib/system/report.mli: Format Gb_util Processor
