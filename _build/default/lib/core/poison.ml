type result = { poisoned : bool array; patterns : int list }

let analyze g =
  let n = Gb_ir.Dfg.n_nodes g in
  let poisoned = Array.make n false in
  let patterns = ref [] in
  let value_poisoned = function
    | Gb_ir.Dfg.Node id -> poisoned.(id)
    | Gb_ir.Dfg.Reg_in _ | Gb_ir.Dfg.Imm _ -> false
  in
  for id = 0 to n - 1 do
    let node = Gb_ir.Dfg.node g id in
    let from_inputs = Array.exists value_poisoned node.Gb_ir.Dfg.srcs in
    let speculative = Gb_ir.Dfg.is_speculative node in
    (* The leaking pattern: a speculative load whose address is poisoned. *)
    if speculative && Gb_ir.Dfg.is_load node.Gb_ir.Dfg.kind && from_inputs
    then patterns := id :: !patterns;
    poisoned.(id) <- from_inputs || speculative
  done;
  { poisoned; patterns = List.rev !patterns }

let pp_explain ppf g =
  let { poisoned; patterns } = analyze g in
  let pattern_set = List.fold_left (fun s i -> i :: s) [] patterns in
  Format.fprintf ppf "poisoning analysis: %d nodes, %d Spectre pattern(s)@."
    (Gb_ir.Dfg.n_nodes g) (List.length patterns);
  Gb_ir.Dfg.iter_nodes g (fun node ->
      let id = node.Gb_ir.Dfg.id in
      let kind_str =
        match node.Gb_ir.Dfg.kind with
        | Gb_ir.Dfg.Kalu _ -> "alu"
        | Gb_ir.Dfg.Kload _ -> "load"
        | Gb_ir.Dfg.Kstore _ -> "store"
        | Gb_ir.Dfg.Kbranch _ -> "branch(side-exit)"
        | Gb_ir.Dfg.Kchk _ -> "chk(mcb)"
        | Gb_ir.Dfg.Kexit -> "exit"
        | Gb_ir.Dfg.Krdcycle -> "rdcycle"
        | Gb_ir.Dfg.Kcflush -> "cflush"
        | Gb_ir.Dfg.Kfence -> "fence"
      in
      Format.fprintf ppf "  n%-3d %-18s pc=0x%x%s%s%s@." id kind_str
        node.Gb_ir.Dfg.guest_pc
        (if Gb_ir.Dfg.is_speculative node then "  SPECULATIVE" else "")
        (if poisoned.(id) then "  poisoned" else "")
        (if List.mem id pattern_set then "  << SPECTRE PATTERN" else ""))
