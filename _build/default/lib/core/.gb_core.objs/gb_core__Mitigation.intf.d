lib/core/mitigation.mli: Gb_ir
