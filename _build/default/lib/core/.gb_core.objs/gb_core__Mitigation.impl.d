lib/core/mitigation.ml: Gb_ir List Poison
