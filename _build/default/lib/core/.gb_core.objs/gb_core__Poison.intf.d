lib/core/poison.mli: Format Gb_ir
