lib/core/poison.ml: Array Format Gb_ir List
