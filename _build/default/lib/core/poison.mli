(** The GhostBusters poisoning analysis (Section IV-A of the paper).

    Run on one IR block before scheduling:
    - a speculative instruction (a load whose dependency on a preceding
      conditional branch or memory write has been removed) generates a
      poisoned value;
    - an instruction using a poisoned operand generates a poisoned value;
    - a {e speculative memory instruction using a poisoned value as its
      address} can leak through the cache side channel: it is the Spectre
      pattern and must be constrained.

    A single forward pass suffices: data sources always reference earlier
    nodes. *)

type result = {
  poisoned : bool array;  (** per node id: does it produce a poisoned value *)
  patterns : int list;
      (** ids of speculative loads with a poisoned address, in program
          order — the leaking instructions *)
}

val analyze : Gb_ir.Dfg.t -> result

val pp_explain : Format.formatter -> Gb_ir.Dfg.t -> unit
(** Figure-3-style dump: the data-flow graph with poisoned values and
    detected Spectre patterns annotated. *)
