lib/vliw/mcb.ml: Array
