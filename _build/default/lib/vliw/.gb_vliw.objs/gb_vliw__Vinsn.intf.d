lib/vliw/vinsn.mli: Format Gb_riscv
