lib/vliw/mcb.mli:
