lib/vliw/pipeline.ml: Array Gb_cache Gb_riscv Int64 List Machine Mcb Printf Vinsn
