lib/vliw/pipeline.mli: Machine Vinsn
