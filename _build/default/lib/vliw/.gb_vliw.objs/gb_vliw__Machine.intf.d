lib/vliw/machine.mli: Gb_cache Gb_riscv Mcb
