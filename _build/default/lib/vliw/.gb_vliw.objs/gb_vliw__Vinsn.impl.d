lib/vliw/vinsn.ml: Array Format Gb_riscv List Printf String
