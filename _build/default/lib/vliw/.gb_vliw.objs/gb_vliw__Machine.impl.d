lib/vliw/machine.ml: Array Gb_cache Gb_riscv Mcb Vinsn
