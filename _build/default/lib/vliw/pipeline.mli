(** In-order execution of translated traces.

    One bundle issues per cycle; cache misses stall the whole pipeline for
    the miss penalty (stall-on-miss); any exit (side exit, MCB rollback or
    trace end) runs the exit stub's compensation moves and pays the
    pipeline-refill penalty.

    Within a bundle all operands read the register state from the start of
    the cycle (parallel semantics); the instruction scheduler guarantees at
    least one cycle between a producer and its consumers.

    A load that faults (out-of-range address) is by construction
    speculative here — architectural loads that fault are executed by the
    interpreter path — so the fault is deferred in the hardware style of
    the paper: the load returns 0 and the program state is untouched. The
    cache is still probed when the address is non-negative, which is
    exactly the micro-architectural side effect Spectre exploits. Stores
    are always architectural and propagate {!Gb_riscv.Mem.Fault}. *)

type exit_kind = Fallthrough | Side_exit | Rollback

type exit_info = { next_pc : int; kind : exit_kind }

exception Machine_error of string
(** Ill-formed trace detected at run time (two control operations in a
    bundle, duplicate register writes, ...) — indicates a code generator
    bug, never a guest error. *)

val run : Machine.t -> Vinsn.trace -> exit_info
(** Execute one pass over the trace, advancing the machine clock. *)
