(** Graphviz export of the trace data-flow graph — the renderable version
    of the paper's Figure 3. Data edges are solid, memory-order edges
    dashed, control edges dotted; when poisoning results are supplied,
    poisoned producers are highlighted and detected Spectre patterns are
    drawn in red. *)

val pp :
  ?poisoned:bool array ->
  ?patterns:int list ->
  Format.formatter ->
  Dfg.t ->
  unit

val to_string : ?poisoned:bool array -> ?patterns:int list -> Dfg.t -> string
