(** A guest trace: the linearised sequence of guest instructions selected
    by the trace constructor, before IR construction.

    Conditional branches are normalised so that {e falling through} stays
    on the trace: [exit_cond] holds the (possibly negated) condition under
    which execution leaves the trace and the guest pc it resumes at. *)

type step = {
  pc : int;
  insn : Gb_riscv.Insn.t;
  exit_cond : (Gb_riscv.Insn.branch_cond * int) option;
      (** for conditional branches only *)
}

type t = {
  entry : int;  (** guest pc of the first instruction *)
  steps : step list;
  fall_pc : int;  (** guest pc reached when the whole trace executes *)
}

val length : t -> int

val pp : Format.formatter -> t -> unit
