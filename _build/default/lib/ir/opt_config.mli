(** Speculation switches of the DBT optimizer.

    [branch_spec] allows loads to be hoisted above conditional side exits
    (trace speculation, the Spectre v1 vector); [mem_spec] allows loads to
    be hoisted above stores under MCB protection (memory-dependency
    speculation, the Spectre v4 vector); [alu_spec] allows pure ALU
    operations to float above side exits (harmless — they only write
    hidden registers — but turned off together with everything else in the
    paper's "no speculation" configuration). *)

type t = {
  branch_spec : bool;
  alu_spec : bool;
  mem_spec : bool;
  mcb_tags : int;  (** MCB size: maximum speculative loads per trace *)
  cse : bool;
      (** constant folding + local value numbering on pure operations —
          not a speculation (pure values are branch-independent), just the
          classic cleanup every DBT optimizer performs *)
}

val aggressive : t
(** Everything on, 8 MCB tags — the paper's unsafe baseline. *)

val no_speculation : t
(** Load speculation off — the paper's naive countermeasure. CSE and ALU
    hoisting stay on: they have no micro-architectural side effects. *)
