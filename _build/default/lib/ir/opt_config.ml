type t = {
  branch_spec : bool;
  alu_spec : bool;
  mem_spec : bool;
  mcb_tags : int;
  cse : bool;
}

let aggressive =
  { branch_spec = true; alu_spec = true; mem_spec = true; mcb_tags = 8;
    cse = true }

(* "No speculation" disables the two observable speculations — loads above
   branches and loads above stores. ALU operations still float: they only
   write hidden registers and have no micro-architectural side effects, so
   they are not speculation in the Spectre sense. *)
let no_speculation =
  { branch_spec = false; alu_spec = true; mem_spec = false; mcb_tags = 0;
    cse = true }
