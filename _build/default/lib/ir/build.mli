(** IR construction: lower a guest trace to a {!Dfg.t} under a given
    speculation configuration.

    The builder performs the optimizer's dependency-removal decisions:

    - with [branch_spec], loads (and with [alu_spec], ALU operations) get
      no control edge from preceding side exits — they may be hoisted;
      the removed dependency is recorded in the load's {!Dfg.spec_info};
    - with [mem_spec], a load following a store drops its memory RAW edge,
      is given an MCB tag (while the [mcb_tags] budget lasts), and a [chk]
      node is inserted at the load's original position whose rollback
      target is the load's guest pc;
    - stores, [rdcycle], [cflush] and [fence] are always pinned: they
      execute in original program order relative to side exits, and act as
      non-speculable memory-chain barriers (except plain stores, which may
      be speculated past under MCB protection).

    Architectural writes never happen in the trace body: every exit-like
    node carries the commit map of guest registers redefined up to its
    program point. *)

exception Unsupported of string
(** Raised on instructions that cannot appear inside a trace
    (ecall, jalr) — the trace constructor must stop before them. *)

val build : opt:Opt_config.t -> lat:Latency.t -> Gtrace.t -> Dfg.t

val latency_of : Latency.t -> Dfg.kind -> int
(** Producer latency of a node kind (exposed for the scheduler). *)

val oprr_of_opri : Gb_riscv.Insn.opri -> Gb_riscv.Insn.oprr
(** Register-register semantics of an immediate-form opcode (the immediate
    becomes an [Imm] operand). Shared with the first-level translator. *)

val is_mul_like : Gb_riscv.Insn.oprr -> bool
(** Operations executed on the multiplier unit. *)

val is_div_like : Gb_riscv.Insn.oprr -> bool
(** Operations executed on the divider (long latency). *)
