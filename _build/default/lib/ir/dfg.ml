type value = Reg_in of int | Node of int | Imm of int64

type spec_info = {
  mutable tag : int option;
  mutable spec_prev_store : int option;
  mutable spec_prev_branch : int option;
  mutable constrained : bool;
}

type kind =
  | Kalu of Gb_riscv.Insn.oprr
  | Kload of Gb_riscv.Insn.width * bool * spec_info
  | Kstore of Gb_riscv.Insn.width
  | Kbranch of Gb_riscv.Insn.branch_cond
  | Kchk of int
  | Kexit
  | Krdcycle
  | Kcflush
  | Kfence

type node = {
  id : int;
  kind : kind;
  srcs : value array;
  off : int;
  guest_pc : int;
  dest : int option;
  commit_map : (int * value) list;
  exit_pc : int;
}

type edge_kind = Edata | Emem | Ectrl

type edge = { e_from : int; e_to : int; e_lat : int; e_kind : edge_kind }

type t = {
  mutable node_store : node array;
  mutable count : int;
  mutable edge_list : edge list;
}

let create () = { node_store = [||]; count = 0; edge_list = [] }

let grow t =
  let cap = Array.length t.node_store in
  if t.count >= cap then begin
    let placeholder =
      {
        id = -1;
        kind = Kfence;
        srcs = [||];
        off = 0;
        guest_pc = 0;
        dest = None;
        commit_map = [];
        exit_pc = 0;
      }
    in
    let next = Array.make (max 16 (cap * 2)) placeholder in
    Array.blit t.node_store 0 next 0 cap;
    t.node_store <- next
  end

let add_node t ~kind ~srcs ?(off = 0) ?(dest = None) ?(commit_map = [])
    ?(exit_pc = 0) ~guest_pc () =
  grow t;
  let id = t.count in
  t.node_store.(id) <-
    { id; kind; srcs; off; guest_pc; dest; commit_map; exit_pc };
  t.count <- t.count + 1;
  id

let add_edge t ~from ~to_ ~lat ~kind =
  assert (from <> to_);
  t.edge_list <- { e_from = from; e_to = to_; e_lat = lat; e_kind = kind } :: t.edge_list

let node t id = t.node_store.(id)

let n_nodes t = t.count

let nodes t = Array.sub t.node_store 0 t.count

let edges t = t.edge_list

let iter_nodes t f =
  for i = 0 to t.count - 1 do
    f t.node_store.(i)
  done

let is_exit_like = function
  | Kbranch _ | Kchk _ | Kexit -> true
  | Kalu _ | Kload _ | Kstore _ | Krdcycle | Kcflush | Kfence -> false

let is_load = function
  | Kload _ -> true
  | Kalu _ | Kstore _ | Kbranch _ | Kchk _ | Kexit | Krdcycle | Kcflush
  | Kfence ->
    false

let spec_of n = match n.kind with Kload (_, _, s) -> Some s | _ -> None

let is_speculative n =
  match spec_of n with
  | Some s ->
    (not s.constrained)
    && (s.spec_prev_store <> None || s.spec_prev_branch <> None)
  | None -> false

let kind_name = function
  | Kalu op -> (
    match op with
    | Gb_riscv.Insn.ADD -> "add"
    | Gb_riscv.Insn.MUL -> "mul"
    | _ -> "alu")
  | Kload _ -> "load"
  | Kstore _ -> "store"
  | Kbranch _ -> "branch"
  | Kchk _ -> "chk"
  | Kexit -> "exit"
  | Krdcycle -> "rdcycle"
  | Kcflush -> "cflush"
  | Kfence -> "fence"

let pp_value ppf = function
  | Reg_in r -> Format.fprintf ppf "%s" (Gb_riscv.Reg.name r)
  | Node id -> Format.fprintf ppf "n%d" id
  | Imm v -> Format.fprintf ppf "%Ld" v

let pp ppf t =
  iter_nodes t (fun n ->
      Format.fprintf ppf "n%d: %s" n.id (kind_name n.kind);
      Array.iter (fun v -> Format.fprintf ppf " %a" pp_value v) n.srcs;
      if n.off <> 0 then Format.fprintf ppf " +%d" n.off;
      (match n.dest with
      | Some r -> Format.fprintf ppf " -> %s" (Gb_riscv.Reg.name r)
      | None -> ());
      if is_speculative n then Format.fprintf ppf " [spec]";
      Format.fprintf ppf "@.");
  List.iter
    (fun e ->
      Format.fprintf ppf "  n%d -> n%d (lat %d, %s)@." e.e_from e.e_to e.e_lat
        (match e.e_kind with
        | Edata -> "data"
        | Emem -> "mem"
        | Ectrl -> "ctrl"))
    (List.rev t.edge_list)
