lib/ir/latency.mli:
