lib/ir/gtrace.ml: Format Gb_riscv List
