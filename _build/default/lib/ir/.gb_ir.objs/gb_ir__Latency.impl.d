lib/ir/latency.ml:
