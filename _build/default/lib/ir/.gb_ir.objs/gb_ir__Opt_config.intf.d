lib/ir/opt_config.mli:
