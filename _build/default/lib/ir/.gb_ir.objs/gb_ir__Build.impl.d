lib/ir/build.ml: Array Dfg Gb_riscv Gtrace Hashtbl Int64 Latency List Opt_config Option
