lib/ir/gtrace.mli: Format Gb_riscv
