lib/ir/dot.ml: Array Dfg Format Gb_riscv List Printf
