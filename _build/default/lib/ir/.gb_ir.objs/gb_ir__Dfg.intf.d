lib/ir/dfg.mli: Format Gb_riscv
