lib/ir/dot.mli: Dfg Format
