lib/ir/opt_config.ml:
