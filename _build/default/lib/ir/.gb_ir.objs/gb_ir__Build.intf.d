lib/ir/build.mli: Dfg Gb_riscv Gtrace Latency Opt_config
