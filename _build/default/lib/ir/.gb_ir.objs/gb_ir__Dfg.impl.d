lib/ir/dfg.ml: Array Format Gb_riscv List
