(** Exposed operation latencies of the VLIW core, used by the instruction
    scheduler (the hardware has no interlocks for register dependencies;
    the schedule must respect these). *)

type t = {
  alu : int;
  mul : int;
  div : int;
  load : int;  (** load-to-use on a cache hit; misses stall the pipeline *)
  rdcycle : int;
}

val default : t
(** alu 1, mul 3, div 12, load 2, rdcycle 1. *)
