type t = { alu : int; mul : int; div : int; load : int; rdcycle : int }

let default = { alu = 1; mul = 3; div = 12; load = 2; rdcycle = 1 }
