type step = {
  pc : int;
  insn : Gb_riscv.Insn.t;
  exit_cond : (Gb_riscv.Insn.branch_cond * int) option;
}

type t = { entry : int; steps : step list; fall_pc : int }

let length t = List.length t.steps

let pp ppf t =
  Format.fprintf ppf "guest trace @@0x%x -> 0x%x@." t.entry t.fall_pc;
  List.iter
    (fun s ->
      Format.fprintf ppf "  0x%x: %a" s.pc Gb_riscv.Insn.pp s.insn;
      (match s.exit_cond with
      | Some (_, target) -> Format.fprintf ppf "   ; exits to 0x%x" target
      | None -> ());
      Format.fprintf ppf "@.")
    t.steps
