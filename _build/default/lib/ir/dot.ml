let node_label (n : Dfg.node) =
  let base =
    match n.Dfg.kind with
    | Dfg.Kalu op -> (
      match op with
      | Gb_riscv.Insn.ADD -> "add"
      | Gb_riscv.Insn.SUB -> "sub"
      | Gb_riscv.Insn.MUL -> "mul"
      | Gb_riscv.Insn.SLL -> "shl"
      | Gb_riscv.Insn.SRL | Gb_riscv.Insn.SRA -> "shr"
      | Gb_riscv.Insn.AND | Gb_riscv.Insn.OR | Gb_riscv.Insn.XOR -> "bit"
      | Gb_riscv.Insn.SLT | Gb_riscv.Insn.SLTU -> "cmp"
      | _ -> "alu")
    | Dfg.Kload (_, _, spec) ->
      if spec.Dfg.tag <> None then "ld.spec" else "ld"
    | Dfg.Kstore _ -> "st"
    | Dfg.Kbranch _ -> "exit?"
    | Dfg.Kchk _ -> "chk"
    | Dfg.Kexit -> "exit"
    | Dfg.Krdcycle -> "rdcycle"
    | Dfg.Kcflush -> "cflush"
    | Dfg.Kfence -> "fence"
  in
  Printf.sprintf "n%d: %s\\n@%x" n.Dfg.id base n.Dfg.guest_pc

let pp ?(poisoned = [||]) ?(patterns = []) ppf g =
  let is_poisoned id = id < Array.length poisoned && poisoned.(id) in
  let is_pattern id = List.mem id patterns in
  Format.fprintf ppf "digraph dfg {@.";
  Format.fprintf ppf "  rankdir=TB; node [shape=box, fontname=\"monospace\"];@.";
  Dfg.iter_nodes g (fun n ->
      let id = n.Dfg.id in
      let attrs =
        if is_pattern id then
          " style=filled fillcolor=\"#ff9999\" color=red penwidth=2"
        else if is_poisoned id then " style=filled fillcolor=\"#cce0ff\""
        else if Dfg.is_speculative n then " style=filled fillcolor=\"#fff2b3\""
        else ""
      in
      Format.fprintf ppf "  n%d [label=\"%s\"%s];@." id (node_label n) attrs);
  (* data edges (from node sources) *)
  Dfg.iter_nodes g (fun n ->
      Array.iter
        (fun v ->
          match v with
          | Dfg.Node src ->
            let poisoned_edge = is_poisoned src in
            Format.fprintf ppf "  n%d -> n%d%s;@." src n.Dfg.id
              (if poisoned_edge then
                 " [color=blue penwidth=2]"
               else "")
          | Dfg.Reg_in _ | Dfg.Imm _ -> ())
        n.Dfg.srcs);
  (* memory and control order edges *)
  List.iter
    (fun e ->
      match e.Dfg.e_kind with
      | Dfg.Edata -> ()
      | Dfg.Emem ->
        Format.fprintf ppf "  n%d -> n%d [style=dashed color=gray40];@."
          e.Dfg.e_from e.Dfg.e_to
      | Dfg.Ectrl ->
        Format.fprintf ppf "  n%d -> n%d [style=dotted color=gray60];@."
          e.Dfg.e_from e.Dfg.e_to)
    (Dfg.edges g);
  Format.fprintf ppf "}@."

let to_string ?poisoned ?patterns g =
  Format.asprintf "%a" (fun ppf -> pp ?poisoned ?patterns ppf) g
