(** The data-flow graph over one trace — the IR the DBT scheduler works on
    and the representation on which the GhostBusters poisoning analysis
    runs.

    Nodes are micro-operations in original program order (ids are
    monotonically increasing along the trace; data sources always point to
    smaller ids). Edges carry a minimum cycle distance and a kind:
    - [Edata]: value dependency, latency of the producer;
    - [Emem]: memory ordering (store-load / load-store / store-store);
    - [Ectrl]: control ordering (visibility at side exits, pinning).

    Register semantics: nothing in the trace body writes a guest register;
    every def goes to an SSA temporary, and each exit-like node carries a
    [commit_map] describing which guest registers must be written (from
    which temporaries) when that exit is taken. *)

type value = Reg_in of int | Node of int | Imm of int64

(** Per-load speculation record. [spec_prev_store]/[spec_prev_branch] hold
    the node whose ordering dependency was removed by the optimizer
    (making the load speculative); the mitigation re-adds these edges and
    sets [constrained]. [tag] is the MCB entry, present iff the load
    actually runs with MCB protection. *)
type spec_info = {
  mutable tag : int option;
  mutable spec_prev_store : int option;
  mutable spec_prev_branch : int option;
  mutable constrained : bool;
}

type kind =
  | Kalu of Gb_riscv.Insn.oprr
  | Kload of Gb_riscv.Insn.width * bool * spec_info  (** width, unsigned *)
  | Kstore of Gb_riscv.Insn.width
  | Kbranch of Gb_riscv.Insn.branch_cond  (** side exit when cond holds *)
  | Kchk of int  (** MCB check guarding the load with the given node id *)
  | Kexit  (** unconditional trace end *)
  | Krdcycle
  | Kcflush
  | Kfence  (** scheduling barrier (guest fence or mitigation fence) *)

type node = {
  id : int;
  kind : kind;
  srcs : value array;
  off : int;  (** address offset for loads/stores/cflush *)
  guest_pc : int;
  dest : int option;  (** guest register this instruction defines *)
  commit_map : (int * value) list;  (** exit-like nodes only *)
  exit_pc : int;  (** exit-like nodes only *)
}

type edge_kind = Edata | Emem | Ectrl

type edge = { e_from : int; e_to : int; e_lat : int; e_kind : edge_kind }

type t

val create : unit -> t

val add_node :
  t ->
  kind:kind ->
  srcs:value array ->
  ?off:int ->
  ?dest:int option ->
  ?commit_map:(int * value) list ->
  ?exit_pc:int ->
  guest_pc:int ->
  unit ->
  int
(** Append a node; returns its id. *)

val add_edge : t -> from:int -> to_:int -> lat:int -> kind:edge_kind -> unit

val node : t -> int -> node

val n_nodes : t -> int

val nodes : t -> node array
(** Snapshot of all nodes in id order. *)

val edges : t -> edge list

val iter_nodes : t -> (node -> unit) -> unit

val is_exit_like : kind -> bool
(** Branch, chk or exit: a potential departure from the trace. *)

val is_load : kind -> bool

val spec_of : node -> spec_info option
(** The speculation record of a load node. *)

val is_speculative : node -> bool
(** A load whose ordering dependency on a preceding branch or store has
    been removed and that has not been constrained by the mitigation —
    the paper's definition of a speculative instruction. *)

val pp : Format.formatter -> t -> unit
