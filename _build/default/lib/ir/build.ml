exception Unsupported of string

let is_mul_like = function
  | Gb_riscv.Insn.MUL | Gb_riscv.Insn.MULH | Gb_riscv.Insn.MULHSU
  | Gb_riscv.Insn.MULHU | Gb_riscv.Insn.MULW ->
    true
  | _ -> false

let is_div_like = function
  | Gb_riscv.Insn.DIV | Gb_riscv.Insn.DIVU | Gb_riscv.Insn.REM
  | Gb_riscv.Insn.REMU | Gb_riscv.Insn.DIVW | Gb_riscv.Insn.DIVUW
  | Gb_riscv.Insn.REMW | Gb_riscv.Insn.REMUW ->
    true
  | _ -> false

let latency_of (lat : Latency.t) = function
  | Dfg.Kalu op ->
    if is_div_like op then lat.Latency.div
    else if is_mul_like op then lat.Latency.mul
    else lat.Latency.alu
  | Dfg.Kload _ -> lat.Latency.load
  | Dfg.Krdcycle -> lat.Latency.rdcycle
  | Dfg.Kstore _ | Dfg.Kbranch _ | Dfg.Kchk _ | Dfg.Kexit | Dfg.Kcflush
  | Dfg.Kfence ->
    1

(* Map an immediate-form opcode to its register-register semantics; the
   immediate becomes an [Imm] operand. *)
let oprr_of_opri = function
  | Gb_riscv.Insn.ADDI -> Gb_riscv.Insn.ADD
  | Gb_riscv.Insn.SLTI -> Gb_riscv.Insn.SLT
  | Gb_riscv.Insn.SLTIU -> Gb_riscv.Insn.SLTU
  | Gb_riscv.Insn.XORI -> Gb_riscv.Insn.XOR
  | Gb_riscv.Insn.ORI -> Gb_riscv.Insn.OR
  | Gb_riscv.Insn.ANDI -> Gb_riscv.Insn.AND
  | Gb_riscv.Insn.SLLI -> Gb_riscv.Insn.SLL
  | Gb_riscv.Insn.SRLI -> Gb_riscv.Insn.SRL
  | Gb_riscv.Insn.SRAI -> Gb_riscv.Insn.SRA
  | Gb_riscv.Insn.ADDIW -> Gb_riscv.Insn.ADDW
  | Gb_riscv.Insn.SLLIW -> Gb_riscv.Insn.SLLW
  | Gb_riscv.Insn.SRLIW -> Gb_riscv.Insn.SRLW
  | Gb_riscv.Insn.SRAIW -> Gb_riscv.Insn.SRAW

let sext32 v = Int64.of_int32 (Int64.to_int32 v)

type state = {
  g : Dfg.t;
  lat : Latency.t;
  opt : Opt_config.t;
  regmap : Dfg.value array;
  mutable prev_branchlike : int option;
  mutable since_branch : int list;  (** non-exit nodes since last exit-like *)
  mutable prev_mem : (int * bool) option;  (** (node, store-speculable?) *)
  mutable loads_since_mem : int list;
  mutable tags_used : int;
  cse_table : (Gb_riscv.Insn.oprr * Dfg.value * Dfg.value, int) Hashtbl.t;
      (** value numbering of pure operations (never invalidated: values
          are SSA and live-in registers are constant within a trace) *)
}

let data_edges st id srcs =
  Array.iter
    (fun v ->
      match v with
      | Dfg.Node src ->
        let lat = latency_of st.lat (Dfg.node st.g src).Dfg.kind in
        Dfg.add_edge st.g ~from:src ~to_:id ~lat ~kind:Dfg.Edata
      | Dfg.Reg_in _ | Dfg.Imm _ -> ())
    srcs

let snapshot st =
  let acc = ref [] in
  for r = 31 downto 1 do
    match st.regmap.(r) with
    | Dfg.Reg_in r' when r' = r -> ()
    | v -> acc := (r, v) :: !acc
  done;
  !acc

(* A node that stays inside the trace. [pinned] adds a control edge from
   the previous exit-like node (no hoisting above it). *)
let add_plain st ~kind ~srcs ?(off = 0) ?(dest = None) ~pinned ~guest_pc () =
  let id = Dfg.add_node st.g ~kind ~srcs ~off ~dest ~guest_pc () in
  data_edges st id srcs;
  (match (pinned, st.prev_branchlike) with
  | true, Some b -> Dfg.add_edge st.g ~from:b ~to_:id ~lat:1 ~kind:Dfg.Ectrl
  | true, None | false, _ -> ());
  st.since_branch <- id :: st.since_branch;
  id

(* An exit-like node: everything already emitted must execute before it
   (its commit map must be valid when the exit is taken), and it joins the
   exit chain. *)
let add_branchlike st ~kind ~srcs ~commit_map ~exit_pc ~guest_pc () =
  let id =
    Dfg.add_node st.g ~kind ~srcs ~commit_map ~exit_pc ~guest_pc ()
  in
  data_edges st id srcs;
  (match st.prev_branchlike with
  | Some b -> Dfg.add_edge st.g ~from:b ~to_:id ~lat:1 ~kind:Dfg.Ectrl
  | None -> ());
  List.iter
    (fun n -> Dfg.add_edge st.g ~from:n ~to_:id ~lat:1 ~kind:Dfg.Ectrl)
    st.since_branch;
  st.prev_branchlike <- Some id;
  st.since_branch <- [];
  id

(* A pinned node that also acts as a non-speculable memory barrier
   (rdcycle, cflush, fence). *)
let add_barrier st ~kind ~srcs ?(off = 0) ?(dest = None) ~guest_pc () =
  let id = add_plain st ~kind ~srcs ~off ~dest ~pinned:true ~guest_pc () in
  (match st.prev_mem with
  | Some (m, _) -> Dfg.add_edge st.g ~from:m ~to_:id ~lat:1 ~kind:Dfg.Emem
  | None -> ());
  (* latency 1, not 0: a barrier (rdcycle in particular) must land in a
     strictly later bundle than a preceding load so that it observes the
     load's stall cycles *)
  List.iter
    (fun l -> Dfg.add_edge st.g ~from:l ~to_:id ~lat:1 ~kind:Dfg.Emem)
    st.loads_since_mem;
  st.prev_mem <- Some (id, false);
  st.loads_since_mem <- [];
  id

let set_dest st rd id = if rd <> 0 then st.regmap.(rd) <- Dfg.Node id

(* Pure ALU operation. With [cse] on, two cleanups every DBT optimizer
   performs: constant folding (both operands immediate — frequent after
   lui/addi address materialisation) and local value numbering (the same
   computation on the same operands reuses the earlier node, e.g. array
   base addresses or index arithmetic shared between accesses). Both are
   sound regardless of branches: the values are pure. *)
let add_alu st ~op ~rd ~a ~b ~guest_pc =
  let fresh () =
    let pinned =
      (not st.opt.Opt_config.alu_spec) && st.prev_branchlike <> None
    in
    let dest = if rd = 0 then None else Some rd in
    let id =
      add_plain st ~kind:(Dfg.Kalu op) ~srcs:[| a; b |] ~dest ~pinned
        ~guest_pc ()
    in
    if st.opt.Opt_config.cse then Hashtbl.replace st.cse_table (op, a, b) id;
    Dfg.Node id
  in
  let value =
    if not st.opt.Opt_config.cse then fresh ()
    else
      match (a, b) with
      | Dfg.Imm va, Dfg.Imm vb -> Dfg.Imm (Gb_riscv.Interp.alu_rr op va vb)
      | (Dfg.Imm _ | Dfg.Reg_in _ | Dfg.Node _), _ -> (
        match Hashtbl.find_opt st.cse_table (op, a, b) with
        | Some id -> Dfg.Node id
        | None -> fresh ())
  in
  if rd <> 0 then st.regmap.(rd) <- value;
  value

let reg_value st r = if r = 0 then Dfg.Imm 0L else st.regmap.(r)

let add_load st ~w ~unsigned ~rd ~base ~off ~guest_pc =
  let pinned =
    (not st.opt.Opt_config.branch_spec) && st.prev_branchlike <> None
  in
  let spec_prev_branch =
    if st.opt.Opt_config.branch_spec then st.prev_branchlike else None
  in
  let speculate_store =
    match st.prev_mem with
    | Some (_, true) ->
      st.opt.Opt_config.mem_spec && st.tags_used < st.opt.Opt_config.mcb_tags
    | Some (_, false) | None -> false
  in
  let spec =
    {
      Dfg.tag = (if speculate_store then Some st.tags_used else None);
      spec_prev_store =
        (if speculate_store then Option.map fst st.prev_mem else None);
      spec_prev_branch;
      constrained = false;
    }
  in
  if speculate_store then st.tags_used <- st.tags_used + 1;
  let pre_load_snapshot = snapshot st in
  let dest = if rd = 0 then None else Some rd in
  let id =
    add_plain st
      ~kind:(Dfg.Kload (w, unsigned, spec))
      ~srcs:[| base |] ~off ~dest ~pinned ~guest_pc ()
  in
  (* kept RAW dependency on the previous memory-chain node *)
  (match (speculate_store, st.prev_mem) with
  | false, Some (m, _) ->
    Dfg.add_edge st.g ~from:m ~to_:id ~lat:1 ~kind:Dfg.Emem
  | true, _ | false, None -> ());
  st.loads_since_mem <- id :: st.loads_since_mem;
  set_dest st rd id;
  if speculate_store then begin
    (* the MCB check sits at the load's original position; rolling back
       re-enters the interpreter at the load's pc with pre-load state *)
    let chk =
      add_branchlike st ~kind:(Dfg.Kchk id) ~srcs:[||]
        ~commit_map:pre_load_snapshot ~exit_pc:guest_pc ~guest_pc ()
    in
    match st.prev_mem with
    | Some (m, _) -> Dfg.add_edge st.g ~from:m ~to_:chk ~lat:1 ~kind:Dfg.Emem
    | None -> assert false
  end;
  id

let add_store st ~w ~src ~base ~off ~guest_pc =
  let id =
    add_plain st ~kind:(Dfg.Kstore w) ~srcs:[| src; base |] ~off ~pinned:true
      ~guest_pc ()
  in
  (match st.prev_mem with
  | Some (m, _) -> Dfg.add_edge st.g ~from:m ~to_:id ~lat:1 ~kind:Dfg.Emem
  | None -> ());
  List.iter
    (fun l -> Dfg.add_edge st.g ~from:l ~to_:id ~lat:0 ~kind:Dfg.Emem)
    st.loads_since_mem;
  st.prev_mem <- Some (id, true);
  st.loads_since_mem <- [];
  id

let lower_step st (step : Gtrace.step) =
  let pc = step.Gtrace.pc in
  match (step.Gtrace.insn, step.Gtrace.exit_cond) with
  | Gb_riscv.Insn.Op_imm (op, rd, rs1, imm), None ->
    ignore
      (add_alu st ~op:(oprr_of_opri op) ~rd ~a:(reg_value st rs1)
         ~b:(Dfg.Imm (Int64.of_int imm)) ~guest_pc:pc)
  | Gb_riscv.Insn.Op (op, rd, rs1, rs2), None ->
    ignore
      (add_alu st ~op ~rd ~a:(reg_value st rs1) ~b:(reg_value st rs2)
         ~guest_pc:pc)
  | Gb_riscv.Insn.Lui (rd, imm), None ->
    ignore
      (add_alu st ~op:Gb_riscv.Insn.ADD ~rd
         ~a:(Dfg.Imm (sext32 (Int64.of_int (imm lsl 12))))
         ~b:(Dfg.Imm 0L) ~guest_pc:pc)
  | Gb_riscv.Insn.Auipc (rd, imm), None ->
    let v = Int64.add (Int64.of_int pc) (sext32 (Int64.of_int (imm lsl 12))) in
    ignore
      (add_alu st ~op:Gb_riscv.Insn.ADD ~rd ~a:(Dfg.Imm v) ~b:(Dfg.Imm 0L)
         ~guest_pc:pc)
  | Gb_riscv.Insn.Load (w, unsigned, rd, rs1, off), None ->
    ignore
      (add_load st ~w ~unsigned ~rd ~base:(reg_value st rs1) ~off ~guest_pc:pc)
  | Gb_riscv.Insn.Store (w, rs2, rs1, off), None ->
    ignore
      (add_store st ~w ~src:(reg_value st rs2) ~base:(reg_value st rs1) ~off
         ~guest_pc:pc)
  | Gb_riscv.Insn.Branch _, Some (cond, target) ->
    (match step.Gtrace.insn with
    | Gb_riscv.Insn.Branch (_, rs1, rs2, _) ->
      ignore
        (add_branchlike st ~kind:(Dfg.Kbranch cond)
           ~srcs:[| reg_value st rs1; reg_value st rs2 |]
           ~commit_map:(snapshot st) ~exit_pc:target ~guest_pc:pc ())
    | _ -> assert false)
  | Gb_riscv.Insn.Branch _, None ->
    raise (Unsupported "branch without exit condition")
  | Gb_riscv.Insn.Jal (rd, _), None ->
    (* the control transfer is already linearised; only the link remains *)
    if rd <> 0 then
      ignore
        (add_alu st ~op:Gb_riscv.Insn.ADD ~rd
           ~a:(Dfg.Imm (Int64.of_int (pc + 4)))
           ~b:(Dfg.Imm 0L) ~guest_pc:pc)
  | Gb_riscv.Insn.Rdcycle rd, None ->
    let dest = if rd = 0 then None else Some rd in
    let id = add_barrier st ~kind:Dfg.Krdcycle ~srcs:[||] ~dest ~guest_pc:pc () in
    set_dest st rd id
  | Gb_riscv.Insn.Cflush rs1, None ->
    ignore
      (add_barrier st ~kind:Dfg.Kcflush ~srcs:[| reg_value st rs1 |]
         ~guest_pc:pc ())
  | Gb_riscv.Insn.Fence, None ->
    ignore (add_barrier st ~kind:Dfg.Kfence ~srcs:[||] ~guest_pc:pc ())
  | Gb_riscv.Insn.Ecall, _ -> raise (Unsupported "ecall inside a trace")
  | Gb_riscv.Insn.Jalr _, _ -> raise (Unsupported "jalr inside a trace")
  | ( ( Gb_riscv.Insn.Op_imm _ | Gb_riscv.Insn.Op _ | Gb_riscv.Insn.Lui _
      | Gb_riscv.Insn.Auipc _ | Gb_riscv.Insn.Load _ | Gb_riscv.Insn.Store _
      | Gb_riscv.Insn.Jal _ | Gb_riscv.Insn.Rdcycle _ | Gb_riscv.Insn.Cflush _
      | Gb_riscv.Insn.Fence ),
      Some _ ) ->
    raise (Unsupported "exit condition on a non-branch")

let build ~opt ~lat (trace : Gtrace.t) =
  let st =
    {
      g = Dfg.create ();
      lat;
      opt;
      regmap = Array.init 32 (fun r -> Dfg.Reg_in r);
      prev_branchlike = None;
      since_branch = [];
      prev_mem = None;
      loads_since_mem = [];
      tags_used = 0;
      cse_table = Hashtbl.create 64;
    }
  in
  List.iter (lower_step st) trace.Gtrace.steps;
  ignore
    (add_branchlike st ~kind:Dfg.Kexit ~srcs:[||] ~commit_map:(snapshot st)
       ~exit_pc:trace.Gtrace.fall_pc ~guest_pc:trace.Gtrace.fall_pc ());
  st.g
