type config = { cache : Cache.config; hit_extra : int; miss_penalty : int }

let default_config =
  { cache = Cache.default_config; hit_extra = 1; miss_penalty = 40 }

type t = { cfg : config; l1d : Cache.t }

let create cfg = { cfg; l1d = Cache.create cfg.cache }

let cache t = t.l1d

let config t = t.cfg

let access t ~addr ~size ~write = Cache.access_range t.l1d ~addr ~size ~write

let interp_cost t ~hit = if hit then t.cfg.hit_extra else t.cfg.miss_penalty

let vliw_cost t ~hit = if hit then 0 else t.cfg.miss_penalty

let flush_line t addr = Cache.flush_line t.l1d addr

let flush_all t = Cache.flush_all t.l1d
