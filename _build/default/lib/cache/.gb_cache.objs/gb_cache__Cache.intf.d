lib/cache/cache.mli:
