lib/cache/hierarchy.mli: Cache
