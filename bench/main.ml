(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section V) on the simulated DBT processor, then
   runs Bechamel microbenchmarks of the DBT software layer itself.

     E1  proof-of-concept matrix   (§V-A)
     E2  Figure 4                  (slowdown vs unsafe execution)
     E3  fence ablation            (§V-B, "added a fence whenever ...")
     E4  pointer-array matmul      (§V-B, fine-grained 4% vs fence 15%)
     E5  hit/miss separation       (§V-A, in-order timing is stable)
     E6  design-space ablations    (extension)
     E7  translation-decision side channel (extension; the paper's
         future-work concern, executable)
     E8  trace chaining            (extension; dispatcher exits per 1k
         guest instructions before/after, eviction churn, and the E1
         leakage matrix re-checked under a capacity-constrained cache)
     E9  static verification       (extension; the install-time translation
         verifier and the guest gadget scanner cross-checked against the
         runtime leakage audit)
     E10 differential gate         (extension; reference interpreter vs the
         full DBT processor on every workload and attack, clean and under
         deterministic fault injection, plus the oracle-sensitivity
         negative control)

   Run with --no-micro to skip the Bechamel section. *)

let pct f = Printf.sprintf "%.1f%%" (100. *. f)

let print_header title = Printf.printf "\n=== %s ===\n\n" title

(* transient-line count and false negatives from the leakage audit, "-"
   when the run was not audited *)
let audit_cols = function
  | None -> [ "-"; "-" ]
  | Some (s : Gb_cache.Audit.summary) ->
    [
      string_of_int s.Gb_cache.Audit.transient_lines;
      string_of_int s.Gb_cache.Audit.false_negatives;
    ]

let e1 ~seed ?modes () =
  print_header "E1: Spectre proof-of-concept matrix (secret leakage per mode)";
  let poc = Gb_experiments.Experiments.e1_poc_matrix ~audit:true ~seed ?modes () in
  let rows =
    List.map
      (fun (r : Gb_experiments.Experiments.poc_row) ->
        let o = r.Gb_experiments.Experiments.outcome in
        [
          r.Gb_experiments.Experiments.variant;
          Gb_core.Mitigation.mode_name r.Gb_experiments.Experiments.mode;
          Printf.sprintf "%d/%d" o.Gb_attack.Runner.correct_bytes
            o.Gb_attack.Runner.total_bytes;
          (if Gb_attack.Runner.succeeded o then "LEAKED" else "safe");
          Int64.to_string o.Gb_attack.Runner.result.Gb_system.Processor.cycles;
          Int64.to_string o.Gb_attack.Runner.result.Gb_system.Processor.rollbacks;
          string_of_int
            o.Gb_attack.Runner.result.Gb_system.Processor.patterns_found;
        ]
        @ audit_cols o.Gb_attack.Runner.result.Gb_system.Processor.audit)
      poc
  in
  Gb_util.Table.print
    ~header:
      [ "variant"; "mode"; "bytes recovered"; "verdict"; "cycles"; "rollbacks";
        "patterns"; "transient lines"; "audit FN" ]
    ~rows;
  print_string
    "\nExpected shape (paper SV-A): both variants leak the full secret on\n\
     the unsafe configuration and nothing under any countermeasure. The\n\
     audit columns confirm it microarchitecturally: unsafe runs leave\n\
     transient cache lines, and no mode has detector false negatives.\n";
  poc

(* the cycle-attribution ledger's dominant non-committed cause of the
   fence-on-detect run: where that mode's overhead actually goes *)
let top_overhead_cause (mc : Gb_experiments.Experiments.mode_cycles) =
  match
    List.assoc_opt "fence-on-detect" mc.Gb_experiments.Experiments.causes
  with
  | None -> "-"
  | Some shares -> (
    match
      List.sort
        (fun (_, a) (_, b) -> compare (b : float) a)
        (List.filter (fun (c, _) -> c <> "committed-work") shares)
    with
    | (cause, share) :: _ when share > 0. ->
      Printf.sprintf "%s %.0f%%" cause (100. *. share)
    | _ -> "-")

let e2 ~workers () =
  print_header "E2: Figure 4 - slowdown vs unsafe execution (lower is better)";
  let data = Gb_experiments.Experiments.e2_figure4 ~audit:true ~workers () in
  let rows =
    List.map
      (fun (mc : Gb_experiments.Experiments.mode_cycles) ->
        [
          mc.Gb_experiments.Experiments.w_name;
          Int64.to_string mc.Gb_experiments.Experiments.unsafe;
          pct
            (Gb_experiments.Experiments.slowdown mc
               ~mode:Gb_core.Mitigation.Fine_grained);
          pct
            (Gb_experiments.Experiments.slowdown mc
               ~mode:Gb_core.Mitigation.Min_cut);
          pct
            (Gb_experiments.Experiments.slowdown mc
               ~mode:Gb_core.Mitigation.No_speculation);
          top_overhead_cause mc;
        ])
      data
  in
  let avg mode = pct (Gb_experiments.Experiments.geomean_slowdown data ~mode) in
  Gb_util.Table.print
    ~header:
      [ "application"; "unsafe cycles"; "our approach"; "min-cut";
        "no speculation"; "top overhead cause (fence)" ]
    ~rows:
      (rows
      @ [
          [ "geomean"; "";
            avg Gb_core.Mitigation.Fine_grained;
            avg Gb_core.Mitigation.Min_cut;
            avg Gb_core.Mitigation.No_speculation; "" ];
        ]);
  print_string
    "\nExpected shape (paper Fig. 4): our approach ~100% everywhere;\n\
     turning speculation off costs on the order of +16% on average.\n";
  data

let e3 data =
  print_header "E3: fence-on-detect ablation (patterns are rare in real code)";
  let fence_rows = Gb_experiments.Experiments.e3_fence_rows data in
  let rows =
    List.map2
      (fun (name, fence_slowdown, patterns)
           (mc : Gb_experiments.Experiments.mode_cycles) ->
        [ name; pct fence_slowdown; string_of_int patterns ]
        @ audit_cols mc.Gb_experiments.Experiments.unsafe_audit)
      fence_rows data
  in
  Gb_util.Table.print
    ~header:
      [ "application"; "fence mode"; "patterns"; "transient lines (unsafe)";
        "audit FN" ]
    ~rows;
  print_string
    "\nExpected shape (paper SV-B): the Spectre pattern is not commonly\n\
     seen in the benchmark binaries, so even fences cost ~nothing there;\n\
     only the attack programs show detections (and, in the audit columns,\n\
     attacker-dependent transient cache lines).\n"

let e4 () =
  print_header "E4: pointer-array matrix multiply (double indirections)";
  let mc = Gb_experiments.Experiments.e4_matmul_ablation ~audit:true () in
  let s mode = pct (Gb_experiments.Experiments.slowdown mc ~mode) in
  Gb_util.Table.print
    ~header:
      [ "workload"; "unsafe cycles"; "fine-grained"; "fence"; "min-cut";
        "no spec"; "patterns"; "transient lines (unsafe)"; "audit FN" ]
    ~rows:
      [
        [
          mc.Gb_experiments.Experiments.w_name;
          Int64.to_string mc.Gb_experiments.Experiments.unsafe;
          s Gb_core.Mitigation.Fine_grained;
          s Gb_core.Mitigation.Fence_on_detect;
          s Gb_core.Mitigation.Min_cut;
          s Gb_core.Mitigation.No_speculation;
          string_of_int mc.Gb_experiments.Experiments.patterns;
        ]
        @ audit_cols mc.Gb_experiments.Experiments.unsafe_audit;
      ];
  print_string
    "\nExpected shape (paper SV-B): with frequent double indirection the\n\
     pattern fires often; the fine-grained countermeasure stays markedly\n\
     cheaper than fence insertion (paper: +4% vs +15%).\n";
  mc

let e5 () =
  print_header "E5: probe-latency separation (flush+reload discrimination)";
  let lat = Gb_experiments.Experiments.e5_hit_miss () in
  let hist = Hashtbl.create 16 in
  Array.iter
    (fun t ->
      Hashtbl.replace hist t
        (1 + Option.value ~default:0 (Hashtbl.find_opt hist t)))
    lat;
  let rows =
    Hashtbl.fold (fun t n acc -> (t, n) :: acc) hist []
    |> List.sort compare
    |> List.map (fun (t, n) ->
           [ string_of_int t; string_of_int n; String.make (min n 60) '#' ])
  in
  Gb_util.Table.print ~header:[ "latency (cycles)"; "lines"; "" ] ~rows;
  print_string
    "\nExpected shape (paper SV-A): in-order execution gives stable\n\
     timings - cached lines and missing lines form two disjoint clusters\n\
     separated by the miss penalty.\n"

let e6 () =
  print_header
    "E6: design-space ablations (extension beyond the paper's evaluation)";
  List.iter
    (fun (title, rows) ->
      Printf.printf "%s:\n" title;
      let table_rows =
        List.map
          (fun (r : Gb_experiments.Ablations.row) ->
            [
              r.Gb_experiments.Ablations.value;
              Int64.to_string r.Gb_experiments.Ablations.unsafe_cycles;
              pct r.Gb_experiments.Ablations.no_spec_slowdown;
              (if r.Gb_experiments.Ablations.v1_leaks then "LEAKS" else "safe");
              (if r.Gb_experiments.Ablations.v4_leaks then "LEAKS" else "safe");
            ])
          rows
      in
      Gb_util.Table.print
        ~header:
          [ (List.hd rows).Gb_experiments.Ablations.param;
            "kernel cycles (unsafe)"; "no-spec slowdown"; "v1"; "v4" ]
        ~rows:table_rows;
      print_newline ())
    (Gb_experiments.Ablations.all ());
  print_string
    "Reading guide: without an MCB, Spectre v4 is impossible by\n\
     construction (no memory speculation) while v1 remains; a hot\n\
     threshold above the attack's training count keeps the victim on\n\
     the (non-speculative) interpreter, and a very low one translates\n\
     before the branch bias is trustworthy; without unrolling,\n\
     speculation buys little; with a 16 KiB L1D the 32 KiB probe array\n\
     cannot survive the probe loop, breaking flush+reload extraction;\n\
     and conflict-driven adaptive de-speculation (off in the paper's\n\
     configuration) both repairs kernels that misspeculate (nussinov)\n\
     and starves the v4 gadget, which rolls back on every round.\n"

let e7 () =
  print_header
    "E7: translation-decision side channel (the paper's future work, \
     executable)";
  let rows =
    List.map
      (fun (mode, (o : Gb_attack.Translation_channel.outcome)) ->
        [
          Gb_core.Mitigation.mode_name mode;
          Printf.sprintf "%d/%d bits"
            o.Gb_attack.Translation_channel.correct_bits
            o.Gb_attack.Translation_channel.total_bits;
          (if o.Gb_attack.Translation_channel.correct_bits
              = o.Gb_attack.Translation_channel.total_bits
           then "LEAKED"
           else "partial/safe");
        ])
      (Gb_experiments.Experiments.e7_translation_channel ())
  in
  Gb_util.Table.print ~header:[ "mode"; "bits recovered"; "verdict" ] ~rows;
  print_string
    "\nThe victim's secret steers only a branch DIRECTION; the DBT engine\n\
     specialises the hot trace on it, and timing both directions of the\n\
     same code reveals which one was trained. No speculative load with a\n\
     poisoned address exists, so the poisoning countermeasure (rightly)\n\
     finds nothing - every mode leaks. This is the channel the paper's\n\
     conclusion flags: optimization decisions themselves must not depend\n\
     on secrets.\n"

let e8 ~seed ?modes () =
  print_header
    "E8: trace chaining (dispatcher exits per 1k guest instructions)";
  let rows = Gb_experiments.Experiments.e8_chaining () in
  let f1 v = Printf.sprintf "%.1f" v in
  Gb_util.Table.print
    ~header:
      [ "application"; "guest insns"; "exits/1k off"; "exits/1k on";
        "reduction"; "follows"; "tiny-cache evictions"; "cycles eq";
        "arch eq" ]
    ~rows:
      (List.map
         (fun (r : Gb_experiments.Experiments.chain_row) ->
           let open Gb_experiments.Experiments in
           [
             r.c_name;
             Int64.to_string r.c_guest_insns;
             f1 (per_1k r.c_exits_nochain r.c_guest_insns);
             f1 (per_1k r.c_exits_chain r.c_guest_insns);
             (let red = chain_reduction r in
              if red = infinity then "inf" else Printf.sprintf "%.1fx" red);
             Int64.to_string r.c_chain_follows;
             string_of_int r.c_tiny_evictions;
             (if r.c_cycles_equal then "yes" else "NO");
             (if r.c_arch_equal then "yes" else "NO");
           ])
         rows);
  print_string
    "\nExpected shape: hot loops chain back into themselves, so the\n\
     dispatcher is bypassed almost entirely (exits/1k drops >= 5x);\n\
     simulated cycles are identical (chaining changes control flow on\n\
     the host, not the cost model), and even a cache small enough to\n\
     evict constantly preserves architectural results. Residual exits\n\
     are dominated by MCB rollbacks, which always re-enter the\n\
     dispatcher for recovery and are never chained (e.g. seidel-2d's\n\
     wavefront dependences roll back often, capping its reduction).\n";
  (* the leakage matrix must not change when eviction churn is forced:
     re-run E1 with a tiny code cache and diff the verdicts *)
  let constrained =
    Gb_experiments.Experiments.e1_poc_matrix ~audit:true ~seed
      ~cc_capacity:Gb_experiments.Experiments.e8_tiny_capacity ?modes ()
  in
  (rows, constrained)

let e9 ?modes () =
  print_header
    "E9: static verification (translation verifier + gadget scanner vs \
     runtime audit)";
  let open Gb_experiments.Experiments in
  let data = e9_verify ?modes () in
  let pcs l = String.concat "," (List.map (Printf.sprintf "0x%x") l) in
  Gb_util.Table.print
    ~header:
      [ "attack"; "mode"; "checked"; "violations"; "violation pcs";
        "audit dependent pcs"; "uncovered" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.v_name;
             Gb_core.Mitigation.mode_name r.v_mode;
             string_of_int r.v_checked;
             string_of_int r.v_violations;
             pcs r.v_violation_pcs;
             pcs r.v_dependent_pcs;
             (if r.v_uncovered = [] then "none" else pcs r.v_uncovered);
           ])
         data.e9_attacks);
  let silent, noisy =
    List.partition (fun r -> r.v_violations = 0) data.e9_workloads
  in
  Printf.printf
    "\nPolybench under %s: %d/%d verified runs silent%s\n"
    (String.concat "+" (List.map Gb_core.Mitigation.mode_name e9_workload_modes))
    (List.length silent)
    (List.length data.e9_workloads)
    (if noisy = [] then ""
     else
       " -- VIOLATIONS in "
       ^ String.concat ", "
           (List.map
              (fun r ->
                Printf.sprintf "%s/%s" r.v_name
                  (Gb_core.Mitigation.mode_name r.v_mode))
              noisy));
  print_newline ();
  Gb_util.Table.print
    ~header:
      [ "binary"; "gadgets"; "scanner dep pcs"; "runtime flagged";
        "precision"; "recall" ]
    ~rows:
      (List.map
         (fun s ->
           [
             s.s_name;
             string_of_int (List.length s.s_report.Gb_verify.Scanner.gadgets);
             pcs (Gb_verify.Scanner.dep_pcs s.s_report);
             pcs s.s_flagged;
             Printf.sprintf "%.2f" s.s_score.Gb_verify.Scanner.precision;
             Printf.sprintf "%.2f" s.s_score.Gb_verify.Scanner.recall;
           ])
         data.e9_scans);
  print_string
    "\nExpected shape: the verifier is silent under every constraining\n\
     mode (the schedules it re-derives speculation from are safe by\n\
     construction) and flags exactly the loads whose transient lines the\n\
     unsafe audit observed (uncovered = none, i.e. zero static false\n\
     negatives). The scanner, working on the raw guest binary with no\n\
     execution, must cover every runtime-flagged pc (recall 1.0);\n\
     precision below 1.0 is the price of static over-approximation.\n";
  data

let e10 ~seed ~workers ?modes () =
  print_header
    "E10: differential gate (reference interpreter vs DBT, with fault \
     injection)";
  let m = Gb_diff.Matrix.run ~seed ~workers ?modes () in
  (* one line per workload: worst case across modes and inject variants *)
  let by_workload = Hashtbl.create 32 in
  List.iter
    (fun (r : Gb_diff.Matrix.row) ->
      let prev =
        Option.value ~default:[]
          (Hashtbl.find_opt by_workload r.Gb_diff.Matrix.r_workload)
      in
      Hashtbl.replace by_workload r.Gb_diff.Matrix.r_workload (r :: prev))
    (List.filter
       (fun (r : Gb_diff.Matrix.row) ->
         r.Gb_diff.Matrix.r_inject <> "mcb-suppress:1")
       m.Gb_diff.Matrix.rows);
  let rows =
    Hashtbl.fold (fun name rs acc -> (name, rs) :: acc) by_workload []
    |> List.sort compare
    |> List.map (fun (name, rs) ->
           let runs = List.length rs in
           let diverged =
             List.length
               (List.filter
                  (fun r -> r.Gb_diff.Matrix.r_divergence <> None)
                  rs)
           in
           let injected =
             List.fold_left
               (fun a r -> a + r.Gb_diff.Matrix.r_injected)
               0 rs
           in
           let recovered =
             List.fold_left
               (fun a r -> a + r.Gb_diff.Matrix.r_recovered)
               0 rs
           in
           let syncs =
             List.fold_left (fun a r -> a + r.Gb_diff.Matrix.r_syncs) 0 rs
           in
           [
             name;
             string_of_int runs;
             string_of_int syncs;
             string_of_int diverged;
             Printf.sprintf "%d/%d" recovered injected;
           ])
  in
  Gb_util.Table.print
    ~header:
      [ "workload"; "runs"; "syncs"; "divergences"; "faults recovered" ]
    ~rows;
  Format.printf "@.%a@." Gb_diff.Matrix.pp_summary m;
  print_string
    "\nExpected shape: zero divergences everywhere -- clean and under\n\
     every recoverable fault kind -- with every injected fault proven\n\
     recovered at a later agreement point; the deliberately unsound\n\
     mcb-suppress control MUST be caught (the oracle is not vacuous).\n";
  m

(* --- Bechamel microbenchmarks of the DBT software layer ---------------- *)

let micro () =
  print_header "Microbenchmarks: host-side cost of the DBT software layer";
  let open Bechamel in
  let lat = Gb_ir.Latency.default in
  let res = Gb_dbt.Sched.default_resources in
  (* a representative guest kernel, fully profiled *)
  let program =
    Gb_kernelc.Compile.assemble
      (List.hd Gb_workloads.Polybench.all).Gb_workloads.Polybench.program
  in
  let proc =
    Gb_system.Processor.create
      ~config:(Gb_system.Processor.config_for Gb_core.Mitigation.Unsafe)
      program
  in
  ignore (Gb_system.Processor.run proc);
  let entry = program.Gb_riscv.Asm.entry in
  let profile _ = Some (100, 100) in
  let gtrace =
    Gb_dbt.Trace_builder.build Gb_dbt.Trace_builder.default_config
      ~mem:(Gb_system.Processor.mem proc) ~profile ~entry
  in
  let build_graph () =
    Gb_ir.Build.build ~opt:Gb_ir.Opt_config.aggressive ~lat gtrace
  in
  let graph = build_graph () in
  let cycles = Gb_dbt.Sched.schedule res ~lat graph in
  let cache = Gb_cache.Cache.create Gb_cache.Cache.default_config in
  let interp_mem = Gb_riscv.Mem.create ~size:(1 lsl 20) in
  Gb_riscv.Asm.load interp_mem program;
  let interp =
    Gb_riscv.Interp.create ~mem:interp_mem ~pc:program.Gb_riscv.Asm.entry ()
  in
  let tests =
    [
      Test.make ~name:"cache access"
        (Staged.stage (fun () ->
             ignore (Gb_cache.Cache.access cache ~addr:4096 ~write:false)));
      Test.make ~name:"interpreter step"
        (Staged.stage (fun () ->
             interp.Gb_riscv.Interp.pc <- program.Gb_riscv.Asm.entry;
             ignore (Gb_riscv.Interp.step interp)));
      Test.make ~name:"trace construction"
        (Staged.stage (fun () ->
             ignore
               (Gb_dbt.Trace_builder.build Gb_dbt.Trace_builder.default_config
                  ~mem:(Gb_system.Processor.mem proc) ~profile ~entry)));
      Test.make ~name:"IR build" (Staged.stage (fun () -> ignore (build_graph ())));
      Test.make ~name:"poison analysis"
        (Staged.stage (fun () -> ignore (Gb_core.Poison.analyze graph)));
      Test.make ~name:"list scheduling"
        (Staged.stage (fun () -> ignore (Gb_dbt.Sched.schedule res ~lat graph)));
      Test.make ~name:"code generation"
        (Staged.stage (fun () ->
             ignore
               (Gb_dbt.Codegen.emit res ~n_hidden:96 ~cycles ~entry_pc:entry
                  ~guest_insns:(Gb_ir.Gtrace.length gtrace)
                  ~meta:Gb_vliw.Vinsn.empty_meta graph)));
      Test.make ~name:"full translation"
        (Staged.stage (fun () ->
             let g = build_graph () in
             let _ =
               Gb_core.Mitigation.apply Gb_core.Mitigation.Fine_grained ~lat g
             in
             let cycles = Gb_dbt.Sched.schedule res ~lat g in
             ignore
               (Gb_dbt.Codegen.emit res ~n_hidden:96 ~cycles ~entry_pc:entry
                  ~guest_insns:(Gb_ir.Gtrace.length gtrace)
                  ~meta:Gb_vliw.Vinsn.empty_meta g)));
    ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let rows =
    List.concat_map
      (fun test ->
        let results = Benchmark.all cfg instances test in
        let analysis =
          Analyze.all ols Toolkit.Instance.monotonic_clock results
        in
        Hashtbl.fold
          (fun name ols_result acc ->
            let ns =
              match Analyze.OLS.estimates ols_result with
              | Some [ est ] -> Printf.sprintf "%.0f" est
              | Some _ | None -> "n/a"
            in
            [ name; ns ] :: acc)
          analysis [])
      tests
  in
  Gb_util.Table.print ~header:[ "component"; "ns/op" ] ~rows

(* --- Gb_obs metrics snapshot of an instrumented run -------------------- *)

(* Returns the counter snapshot so the run manifest records the same run
   it prints (this is the canonical instrumented run —
   {!Gb_perf.Collect.counters_snapshot} reproduces it bit-for-bit). *)
let metrics_snapshot ~seed () =
  print_header "Metrics snapshot: one instrumented run (Gb_obs)";
  let w = List.hd Gb_workloads.Polybench.all in
  let obs = Gb_obs.Sink.create ~seed () in
  let _ =
    Gb_system.Processor.run_program
      ~config:(Gb_system.Processor.config_for Gb_core.Mitigation.Fine_grained)
      ~obs
      (Gb_kernelc.Compile.assemble w.Gb_workloads.Polybench.program)
  in
  Printf.printf "workload: %s (fine-grained mode)\n%s\n"
    w.Gb_workloads.Polybench.name
    (Gb_util.Json.to_string_pretty (Gb_obs.Sink.metrics_json obs));
  Gb_obs.Sink.counters obs

(* --- JSON export ------------------------------------------------------- *)

(* [--json-out PREFIX] writes PREFIX_perf.json (cycles and slowdowns per
   experiment), PREFIX_leakage.json (leakage-audit counters),
   PREFIX_chaining.json (E8 dispatcher-exit measurements),
   PREFIX_verify.json (E9 static-verification cross-check),
   PREFIX_diff.json (E10 differential gate matrix) and
   PREFIX_manifest.json (the schema-versioned run manifest the perf
   trajectory and CI perf gate consume, see lib/perf). *)
let json_out_paths prefix =
  ( prefix ^ "_perf.json",
    prefix ^ "_leakage.json",
    prefix ^ "_chaining.json",
    prefix ^ "_verify.json",
    prefix ^ "_diff.json",
    prefix ^ "_manifest.json" )

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* Fail on an unwritable output path before spending minutes on the
   experiments (same contract as the CLI's --metrics-out). *)
let check_writable path =
  match open_out path with
  | oc -> close_out oc
  | exception Sys_error e ->
    Printf.eprintf "bench: cannot write %s: %s\n" path e;
    exit 1

let flag_value name =
  let v = ref None in
  Array.iteri
    (fun i a -> if a = name && i + 1 < Array.length Sys.argv then
        v := Some Sys.argv.(i + 1))
    Sys.argv;
  !v

(* --modes M1,M2: restrict E1/E9's mode rows and E10's attack cells to
   the listed modes (full names or the CLI's short spellings). E2's
   mode_cycles rows always measure every mode — a slowdown is relative
   to the unsafe run, so dropping modes there would change the row
   type, not just filter it. *)
let parse_modes s =
  let aliases =
    [
      ("fence", Gb_core.Mitigation.Fence_on_detect);
      ("fine", Gb_core.Mitigation.Fine_grained);
      ("mincut", Gb_core.Mitigation.Min_cut);
      ("nospec", Gb_core.Mitigation.No_speculation);
      ("no-spec", Gb_core.Mitigation.No_speculation);
    ]
  in
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun n -> n <> "")
  |> List.map (fun n ->
         match
           List.find_opt
             (fun m -> Gb_core.Mitigation.mode_name m = n)
             Gb_core.Mitigation.all_modes
         with
         | Some m -> m
         | None -> (
           match List.assoc_opt n aliases with
           | Some m -> m
           | None ->
             Printf.eprintf "bench: unknown mode %S in --modes (expected: %s)\n"
               n
               (String.concat ", "
                  (List.map Gb_core.Mitigation.mode_name
                     Gb_core.Mitigation.all_modes));
             exit 1))

let () =
  let no_micro = Array.exists (fun a -> a = "--no-micro") Sys.argv in
  let json_out = flag_value "--json-out" in
  let modes = Option.map parse_modes (flag_value "--modes") in
  let seed =
    match flag_value "--seed" with
    | None -> 1L
    | Some s -> (
      match Int64.of_string_opt s with
      | Some n -> n
      | None ->
        Printf.eprintf "bench: --seed expects an integer, got %S\n" s;
        exit 1)
  in
  (* shards E2 and E10 across domains; every number in every table and
     JSON file is identical for any value (see docs/CONCURRENCY.md) *)
  let workers =
    match flag_value "--workers" with
    | None -> Gb_dbt.Workers.env_default ()
    | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 0 -> n
      | Some _ | None ->
        Printf.eprintf "bench: --workers expects a non-negative integer, \
                        got %S\n" s;
        exit 1)
  in
  if workers > 0 then
    if Gb_dbt.Workers.available () then
      Printf.eprintf "bench: sharding E2/E10 across %d worker domains\n%!"
        workers
    else
      Printf.eprintf
        "bench: --workers %d requested but the host has no spare cores; \
         running serially (results are identical either way)\n%!"
        workers;
  Option.iter
    (fun prefix ->
      let perf, leakage, chaining, verify, diff, manifest =
        json_out_paths prefix
      in
      check_writable perf;
      check_writable leakage;
      check_writable chaining;
      check_writable verify;
      check_writable diff;
      check_writable manifest)
    json_out;
  (* JSON consumers own stdout: under --json-out every table and progress
     line is rerouted to stderr, and the original stdout is kept only for
     the final one-line verdict. *)
  let verdict_out =
    match json_out with
    | None -> None
    | Some _ ->
      flush stdout;
      let orig = Unix.dup Unix.stdout in
      Unix.dup2 Unix.stderr Unix.stdout;
      Some (Unix.out_channel_of_descr orig)
  in
  Printf.printf
    "GhostBusters reproduction - benchmark harness\n\
     (paper: S. Rokicki, \"GhostBusters: Mitigating Spectre Attacks on a\n\
     DBT-Based Processor\", DATE 2020)\n";
  let poc = e1 ~seed ?modes () in
  let data = e2 ~workers () in
  e3 data;
  let e4_mc = e4 () in
  e5 ();
  e6 ();
  e7 ();
  let chain_rows, constrained_poc = e8 ~seed ?modes () in
  let verdicts_unchanged =
    Gb_perf.Collect.poc_verdicts_equal poc constrained_poc
  in
  if not verdicts_unchanged then
    print_string
      "\nWARNING: E1 leakage verdicts CHANGED under the capacity-constrained \
       code cache!\n"
  else
    print_string
      "\nE1 leakage matrix and audit FN counts unchanged under the \
       capacity-constrained cache.\n";
  let verify_data = e9 ?modes () in
  let diff_data = e10 ~seed ~workers ?modes () in
  let counters = metrics_snapshot ~seed () in
  if not no_micro then micro ();
  Option.iter
    (fun prefix ->
      let ( perf_path,
            leakage_path,
            chaining_path,
            verify_path,
            diff_path,
            manifest_path ) =
        json_out_paths prefix
      in
      let perf =
        Gb_util.Json.Obj
          [
            ("seed", Gb_util.Json.Int (Int64.to_int seed));
            ("poc_matrix", Gb_experiments.Experiments.poc_json poc);
            ("figure4", Gb_experiments.Experiments.figure4_json data);
            ( "e4_matmul_ptr",
              Gb_experiments.Experiments.mode_cycles_json e4_mc );
          ]
      in
      let leakage =
        Gb_experiments.Experiments.leakage_json ~rows:(data @ [ e4_mc ]) poc
      in
      let chaining =
        Gb_util.Json.Obj
          [
            ("chaining", Gb_experiments.Experiments.chaining_json chain_rows);
            ( "constrained_poc_matrix",
              Gb_experiments.Experiments.poc_json constrained_poc );
            ("verdicts_unchanged", Gb_util.Json.Bool verdicts_unchanged);
          ]
      in
      let manifest =
        Gb_perf.Collect.of_data ~seed ~counters ~verdicts_unchanged
          ~e9:verify_data ~e10:diff_data ~poc ~figure4:data ~e4:e4_mc
          ~chaining:chain_rows ()
      in
      write_file perf_path (Gb_util.Json.to_string_pretty perf);
      write_file leakage_path (Gb_util.Json.to_string_pretty leakage);
      write_file chaining_path (Gb_util.Json.to_string_pretty chaining);
      write_file verify_path
        (Gb_util.Json.to_string_pretty
           (Gb_experiments.Experiments.verify_json verify_data));
      write_file diff_path
        (Gb_util.Json.to_string_pretty (Gb_diff.Matrix.to_json diff_data));
      Gb_perf.Manifest.write manifest_path manifest;
      Printf.printf "\nwrote %s, %s, %s, %s, %s and %s\n" perf_path
        leakage_path chaining_path verify_path diff_path manifest_path;
      (* the only stdout output of a --json-out run *)
      Option.iter
        (fun oc ->
          flush stdout;
          Printf.fprintf oc
            "bench OK: %s (%d metrics, %d verdicts, rev %s, seed %Ld)\n"
            manifest_path
            (List.length manifest.Gb_perf.Manifest.metrics)
            (List.length manifest.Gb_perf.Manifest.verdicts)
            manifest.Gb_perf.Manifest.rev seed;
          flush oc)
        verdict_out)
    json_out
