(* Tests for parallel translation (Gb_dbt.Workers + the engine's
   prefetch protocol): the pool itself (ordering, stealing, exception
   propagation, admission bound), and the determinism contract — with
   [workers = N] every simulated quantity, verdict, audit classification,
   counter (minus the wall-clock [workers.*] lane) and event stream is
   bit-identical to the synchronous run. See docs/CONCURRENCY.md. *)

open Gb_dbt

(* --- the pool ----------------------------------------------------------- *)

let test_map_order () =
  let p = Workers.ensure 3 in
  let xs = List.init 100 Fun.id in
  let ys = Workers.map p (fun x -> x * x) xs in
  Alcotest.(check (list int)) "order-preserving map" (List.map (fun x -> x * x) xs) ys

exception Boom

let test_exception_propagation () =
  let p = Workers.ensure 2 in
  Alcotest.check_raises "await re-raises" Boom (fun () ->
      Workers.map p (fun () -> raise Boom) [ () ] |> ignore)

let test_steal () =
  (* a pool job that itself maps over the pool must not deadlock even
     when every domain is busy: awaiting a queued future steals it *)
  let p = Workers.ensure 2 in
  let nested () = List.fold_left ( + ) 0 (Workers.map p Fun.id [ 1; 2; 3 ]) in
  let totals = Workers.map p (fun () -> nested ()) (List.init 8 (fun _ -> ())) in
  Alcotest.(check (list int)) "nested maps complete" (List.init 8 (fun _ -> 6)) totals

let test_admission_bound () =
  let p = Workers.ensure 2 in
  let gate = Atomic.make false in
  let blocker () =
    while not (Atomic.get gate) do
      Domain.cpu_relax ()
    done;
    1
  in
  (* fill the workers and the bounded queue until admission fails *)
  let submitted = ref [] in
  let rec fill n =
    if n > 10_000 then Alcotest.fail "try_submit never refused"
    else
      match Workers.try_submit p blocker with
      | Some fut -> submitted := fut :: !submitted; fill (n + 1)
      | None -> ()
  in
  fill 0;
  Alcotest.(check bool) "queue saturates at its bound" true
    (Workers.queue_depth p > 0);
  Atomic.set gate true;
  let total = List.fold_left (fun acc f -> acc + Workers.await f) 0 !submitted in
  Alcotest.(check int) "all admitted jobs complete" (List.length !submitted) total;
  Alcotest.(check int) "queue drains" 0 (Workers.queue_depth p)

let test_env_default () =
  (* the suite may run under GHOSTBUSTERS_WORKERS; just pin the contract *)
  let v = Workers.env_default () in
  Alcotest.(check bool) "env default is non-negative" true (v >= 0)

(* --- determinism: workers N == workers 0, bit for bit ------------------- *)

let with_workers n (config : Gb_system.Processor.config) =
  { config with
    Gb_system.Processor.engine =
      { config.Gb_system.Processor.engine with Gb_dbt.Engine.workers = n } }

let worker_counts = [ 0; 1; 4 ]

let non_worker_counters obs =
  List.filter
    (fun (name, _) -> not (String.starts_with ~prefix:"workers." name))
    (Gb_obs.Sink.counters obs)

(* small arithmetic kernels over a few scalars and one array, with a
   loop hot enough to promote to a trace (the same shape the diff suite
   uses); every generated program is deterministic *)
let kernel_gen =
  let open QCheck.Gen in
  let open Gb_kernelc.Ast in
  let c n = Const (Int64.of_int n) in
  let var = oneofl [ "a"; "b"; "c"; "d" ] in
  let leaf =
    oneof
      [ map (fun n -> c (n land 0xff)) small_nat; map (fun v -> Var v) var ]
  in
  let expr =
    sized_size (int_range 0 3)
    @@ fix (fun self n ->
           if n = 0 then leaf
           else
             oneof
               [
                 leaf;
                 map3
                   (fun op l r -> Bin (op, l, r))
                   (oneofl [ Add; Sub; Mul; And; Or; Xor ])
                   (self (n / 2)) (self (n / 2));
               ])
  in
  let stmt =
    oneof
      [
        map2 (fun v e -> Set (v, e)) var expr;
        map2
          (fun i e -> Arr_store ("buf", [ c (i land 7) ], e))
          small_nat expr;
        map2
          (fun e t -> If (Bin (Lt, Var "i", e), t, [ Set ("d", c 9) ]))
          expr
          (map (fun e -> [ Set ("b", e) ]) expr);
      ]
  in
  let body = list_size (int_range 1 5) stmt in
  map
    (fun stmts ->
      {
        arrays = [ { a_name = "buf"; a_ty = I64; a_dims = [ 8 ]; a_init = Zero } ];
        body =
          [
            Let ("a", c 1);
            Let ("b", c 2);
            Let ("c", c 3);
            Let ("d", c 4);
            For
              ( "i", c 0, c 64,
                stmts
                @ [
                    Set ("a", Bin (Add, Var "a", Var "i"));
                    Arr_store ("buf", [ Bin (And, Var "i", c 7) ], Var "a");
                  ] );
            Set ("a", Bin (Add, Var "a", Arr ("buf", [ c 3 ])));
          ];
        result = Bin (And, Var "a", c 255);
      })
    body

let fault_schedule_gen =
  let open QCheck.Gen in
  let recoverable =
    List.filter Gb_system.Inject.recoverable Gb_system.Inject.all_kinds
  in
  let one =
    map2
      (fun k r -> (k, float_of_int (1 + (r land 15)) /. 64.))
      (oneofl recoverable) small_nat
  in
  list_size (int_range 0 3) one

(* qcheck: random kernels x every mode x a random fault schedule; the
   full oracle report (cycle counts, syncs, fault recovery accounting,
   divergence verdicts) must be identical across worker counts. The
   fault schedule matters: prefetch submission must not consume draws
   from the seeded injection RNG, or the fault stream would shift. *)
let prop_workers_identical =
  QCheck.Test.make ~count:12
    ~name:"random kernels x modes x fault schedules: workers N == workers 0"
    (QCheck.make
       QCheck.Gen.(
         triple kernel_gen fault_schedule_gen (map Int64.of_int small_nat)))
    (fun (kernel, schedule, seed) ->
      List.for_all
        (fun mode ->
          let inject = if schedule = [] then None else Some schedule in
          let report n =
            Gb_diff.Oracle.run_kernel
              ~config:(with_workers n (Gb_system.Processor.config_for mode))
              ?inject ~seed kernel
          in
          let reference = report 0 in
          List.for_all
            (fun n ->
              let r = report n in
              if r <> reference then
                QCheck.Test.fail_reportf
                  "mode %s, workers %d, seed %Ld: report differs from \
                   synchronous run"
                  (Gb_core.Mitigation.mode_name mode)
                  n seed
              else true)
            worker_counts)
        Gb_core.Mitigation.all_modes)

(* instrumented equality on a fixed workload: the processor result, the
   audit summary, every non-[workers.*] counter and the entire simulated
   event stream (kinds, pcs and cycle stamps) must match *)
let instrumented_run ~workers ~config program =
  let obs = Gb_obs.Sink.create ~seed:7L () in
  let r =
    Gb_system.Processor.run_program ~config:(with_workers workers config)
      ~obs ~audit:true program
  in
  (r, non_worker_counters obs, Gb_obs.Sink.events obs)

let check_instrumented name ~config program =
  let r0, c0, e0 = instrumented_run ~workers:0 ~config program in
  List.iter
    (fun n ->
      let r, c, e = instrumented_run ~workers:n ~config program in
      Alcotest.(check bool)
        (Printf.sprintf "%s: result identical (workers %d)" name n)
        true (r = r0);
      Alcotest.(check bool)
        (Printf.sprintf "%s: counters identical (workers %d)" name n)
        true (c = c0);
      Alcotest.(check bool)
        (Printf.sprintf "%s: event stream identical (workers %d)" name n)
        true (e = e0))
    [ 1; 4 ]

let gemm_program () =
  match Gb_workloads.Polybench.by_name "gemm" with
  | Some w -> Gb_kernelc.Compile.assemble w.Gb_workloads.Polybench.program
  | None -> Alcotest.fail "gemm workload missing"

let test_instrumented_kernel () =
  check_instrumented "gemm"
    ~config:(Gb_system.Processor.config_for Gb_core.Mitigation.Fine_grained)
    (gemm_program ())

let test_instrumented_attack () =
  let program =
    Gb_kernelc.Compile.assemble
      (Gb_attack.Spectre_v1.program ~secret:"SQUASH" ())
  in
  List.iter
    (fun mode ->
      check_instrumented
        ("spectre-v1/" ^ Gb_core.Mitigation.mode_name mode)
        ~config:(Gb_system.Processor.config_for mode)
        program)
    Gb_core.Mitigation.all_modes

let test_verify_enforce_identical () =
  let config = Gb_system.Processor.config_for Gb_core.Mitigation.Fine_grained in
  let config =
    { config with
      Gb_system.Processor.engine =
        { config.Gb_system.Processor.engine with
          Gb_dbt.Engine.verify = Gb_dbt.Engine.Verify_enforce } }
  in
  check_instrumented "gemm under Verify_enforce" ~config (gemm_program ())

(* a tiny code cache forces eviction churn and install/invalidate
   turnover right where the prefetch protocol operates *)
let test_tiny_cache_identical () =
  let config = Gb_system.Processor.config_for Gb_core.Mitigation.Fine_grained in
  let config =
    { config with
      Gb_system.Processor.engine =
        { config.Gb_system.Processor.engine with
          Gb_dbt.Engine.cache = { Code_cache.capacity = 48; chain = true } } }
  in
  check_instrumented "gemm under a 48-bundle cache" ~config (gemm_program ())

(* --- code-cache install/invalidate races -------------------------------- *)

let h n = Gb_vliw.Vinsn.guest_regs + n

let mk_trace ?(bundles = 4) ~pc targets =
  let stub target_pc =
    Gb_vliw.Vinsn.make_stub
      ~commits:[ (Gb_riscv.Reg.a0, Gb_vliw.Vinsn.R (h 0)) ]
      ~target_pc ()
  in
  {
    Gb_vliw.Vinsn.entry_pc = pc;
    bundles =
      Array.make bundles [| Gb_vliw.Vinsn.Exit { stub = 0 }; Gb_vliw.Vinsn.Nop |];
    stubs = Array.of_list (List.map stub targets);
    n_regs = 64;
    guest_insns = bundles;
    meta = Gb_vliw.Vinsn.empty_meta;
  }

let test_stale_generation_refused () =
  let cc = Code_cache.create { Code_cache.capacity = 64; chain = true } in
  let gen = Code_cache.generation cc in
  ignore
    (Code_cache.insert cc ~pc:0x100 ~tier:Code_cache.Trace
       ~mode:Code_cache.Nonspec (mk_trace ~pc:0x100 []));
  Code_cache.invalidate cc 0x100;
  (* the pc died after [gen]: a plan frozen back then must not install *)
  Alcotest.(check bool) "stale install refused" true
    (Code_cache.insert_tagged cc ~gen ~pc:0x100 ~tier:Code_cache.Trace
       ~mode:Code_cache.Nonspec (mk_trace ~pc:0x100 [])
     = None);
  (* a fresh generation capture installs fine *)
  let gen = Code_cache.generation cc in
  Alcotest.(check bool) "fresh install accepted" true
    (Code_cache.insert_tagged cc ~gen ~pc:0x100 ~tier:Code_cache.Trace
       ~mode:Code_cache.Nonspec (mk_trace ~pc:0x100 [])
     <> None)

let test_concurrent_hammer () =
  (* two domains hammer a tiny cache with generation-tagged installs,
     links and invalidations over an overlapping pc range; the chaining
     invariant must hold throughout and at the end *)
  let cc = Code_cache.create { Code_cache.capacity = 32; chain = true } in
  let pcs = Array.init 12 (fun i -> 0x1000 + (i * 0x40)) in
  (* Mid-flight invariant samples are recorded into an atomic and
     asserted from the main domain only: [Alcotest.check] prints through
     [Format], which is not domain-safe — three domains checking
     concurrently corrupt its queue ([Stdlib.Queue.Empty] from inside
     [pp_flush_queue]). *)
  let mid_flight_ok = Atomic.make true in
  let hammer rounds salt () =
    for i = 0 to rounds - 1 do
      let pc = pcs.((i + salt) mod Array.length pcs) in
      let succ = pcs.((i + salt + 1) mod Array.length pcs) in
      let gen = Code_cache.generation cc in
      (match
         Code_cache.insert_tagged cc ~gen ~pc ~tier:Code_cache.Trace
           ~mode:Code_cache.Nonspec
           (mk_trace ~pc [ succ ])
       with
      | Some src -> (
        match Code_cache.peek cc succ with
        | Some dst -> ignore (Code_cache.link cc ~src ~stub:0 ~dst)
        | None -> ())
      | None -> ());
      if i mod 7 = 0 then Code_cache.invalidate cc succ;
      if i mod 13 = 0 && not (Code_cache.well_linked cc) then
        Atomic.set mid_flight_ok false
    done
  in
  let d1 = Domain.spawn (hammer 2_000 0) in
  let d2 = Domain.spawn (hammer 2_000 5) in
  hammer 2_000 9 ();
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check bool) "well linked mid-flight" true
    (Atomic.get mid_flight_ok);
  Alcotest.(check bool) "well linked after the storm" true
    (Code_cache.well_linked cc);
  Alcotest.(check bool) "capacity respected" true
    (Code_cache.used_bundles cc <= 32)

(* --- sharded experiment equality ---------------------------------------- *)

let test_matrix_sharded_identical () =
  let attacks = [ "spectre-v1" ] in
  let kernels = [ "gemm" ] in
  let injects = [ None; Some [ (Gb_system.Inject.Evict, 0.05) ] ] in
  let serial = Gb_diff.Matrix.run ~seed:5L ~attacks ~kernels ~injects () in
  let sharded =
    Gb_diff.Matrix.run ~seed:5L ~workers:4 ~attacks ~kernels ~injects ()
  in
  Alcotest.(check bool) "sharded matrix identical to serial" true
    (sharded = serial);
  Alcotest.(check bool) "matrix passes" true (Gb_diff.Matrix.pass serial)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_workers_identical ] in
  Alcotest.run "workers"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_order;
          Alcotest.test_case "exceptions propagate" `Quick
            test_exception_propagation;
          Alcotest.test_case "nested await steals" `Quick test_steal;
          Alcotest.test_case "admission bound" `Quick test_admission_bound;
          Alcotest.test_case "env default" `Quick test_env_default;
        ] );
      ("determinism", qsuite);
      ( "instrumented",
        [
          Alcotest.test_case "kernel: result/counters/events" `Slow
            test_instrumented_kernel;
          Alcotest.test_case "attack x modes: result/counters/events" `Slow
            test_instrumented_attack;
          Alcotest.test_case "verify-enforce identical" `Quick
            test_verify_enforce_identical;
          Alcotest.test_case "tiny cache identical" `Quick
            test_tiny_cache_identical;
        ] );
      ( "code-cache",
        [
          Alcotest.test_case "stale generation refused" `Quick
            test_stale_generation_refused;
          Alcotest.test_case "concurrent install/invalidate hammer" `Quick
            test_concurrent_hammer;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "sharded matrix identical" `Quick
            test_matrix_sharded_identical;
        ] );
    ]
