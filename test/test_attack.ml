(* Integration tests of the paper's core claim (experiment E1): both
   Spectre variants leak the full secret on the unsafe configuration and
   leak nothing under any countermeasure; plus the E5 observation that
   in-order timing separates hits from misses cleanly. *)

let secret = "GB!"

let v1 = Gb_attack.Spectre_v1.program ~secret ()

let v4 = Gb_attack.Spectre_v4.program ~secret ()

let run mode program = Gb_attack.Runner.run ~mode ~secret program

let check_full_leak name program =
  let o = run Gb_core.Mitigation.Unsafe program in
  Alcotest.(check string) (name ^ " leaks the secret") secret
    o.Gb_attack.Runner.recovered;
  Alcotest.(check bool) (name ^ " succeeded") true (Gb_attack.Runner.succeeded o)

let check_no_leak name mode program =
  let o = run mode program in
  Alcotest.(check int)
    (Printf.sprintf "%s leaks nothing under %s" name
       (Gb_core.Mitigation.mode_name mode))
    0 o.Gb_attack.Runner.correct_bytes

let mitigations =
  Gb_core.Mitigation.[ Fine_grained; Fence_on_detect; Min_cut; No_speculation ]

let v1_unsafe () = check_full_leak "v1" v1

let v4_unsafe () = check_full_leak "v4" v4

let v1_mitigated () = List.iter (fun m -> check_no_leak "v1" m v1) mitigations

let v4_mitigated () = List.iter (fun m -> check_no_leak "v4" m v4) mitigations

let v4_uses_rollbacks () =
  let o = run Gb_core.Mitigation.Unsafe v4 in
  Alcotest.(check bool) "MCB rollbacks occurred" true
    (Int64.compare o.Gb_attack.Runner.result.Gb_system.Processor.rollbacks 0L > 0)

let patterns_detected_by_mitigation () =
  List.iter
    (fun (name, program) ->
      let o = run Gb_core.Mitigation.Fine_grained program in
      Alcotest.(check bool) (name ^ ": patterns detected") true
        (o.Gb_attack.Runner.result.Gb_system.Processor.patterns_found > 0))
    [ ("v1", v1); ("v4", v4) ]

let hit_miss_separation () =
  (* E5: the distributions of probe latencies must be bimodal with a gap
     at least the miss penalty wide between the fast cluster (cached
     lines) and the slow cluster *)
  let hot = [ 3; 99; 250 ] in
  let lat = Array.to_list (Gb_attack.Timing.measure ~hot ()) in
  let fast = List.filter (fun t -> t < 20) lat in
  let slow = List.filter (fun t -> t >= 20) lat in
  Alcotest.(check int) "exactly the touched lines hit" (List.length hot)
    (List.length fast);
  Alcotest.(check bool) "mostly misses" true (List.length slow > 200);
  let max_fast = List.fold_left max 0 fast in
  let min_slow = List.fold_left min max_int slow in
  Alcotest.(check bool) "clusters separated by the miss penalty" true
    (min_slow - max_fast
    >= (Gb_cache.Hierarchy.default_config.Gb_cache.Hierarchy.miss_penalty / 2))

let split_gadget_is_safe () =
  (* the paper's SVI point, executable: speculation never crosses a trace
     boundary, so the gadget split by an unbiased branch cannot leak even
     with every speculation switch on *)
  let program = Gb_attack.Spectre_v1.split_program ~secret () in
  let o = run Gb_core.Mitigation.Unsafe program in
  Alcotest.(check int) "split gadget leaks nothing" 0
    o.Gb_attack.Runner.correct_bytes

let eviction_variant_works () =
  (* the no-cflush variant: conflict eviction replaces the flush, so the
     attack needs nothing beyond loads and a cycle counter — and the
     countermeasure stops it all the same *)
  let program = Gb_attack.Spectre_v1.eviction_program ~secret () in
  let unsafe = run Gb_core.Mitigation.Unsafe program in
  Alcotest.(check string) "leaks without any flush instruction" secret
    unsafe.Gb_attack.Runner.recovered;
  let safe = run Gb_core.Mitigation.Fine_grained program in
  Alcotest.(check int) "stopped by the countermeasure" 0
    safe.Gb_attack.Runner.correct_bytes

let first_pass_tier_is_safe () =
  (* with the hot threshold unreachable, warm code runs on the first-level
     (naive, in-order, non-speculative) translation tier: no leak, even
     with every speculation switch on *)
  let base = Gb_system.Processor.config_for Gb_core.Mitigation.Unsafe in
  let config =
    {
      base with
      Gb_system.Processor.engine =
        {
          base.Gb_system.Processor.engine with
          Gb_dbt.Engine.hot_threshold = max_int;
        };
    }
  in
  List.iter
    (fun (name, program) ->
      let o = Gb_attack.Runner.run ~config ~mode:Gb_core.Mitigation.Unsafe
          ~secret program in
      Alcotest.(check bool) (name ^ ": first-pass blocks ran") true
        (o.Gb_attack.Runner.result.Gb_system.Processor.first_pass_translations
        > 0);
      Alcotest.(check int) (name ^ ": no leak from the naive tier") 0
        o.Gb_attack.Runner.correct_bytes)
    [ ("v1", v1); ("v4", v4) ]

let masking_defeats_v1 () =
  (* negative control: the JIT-style branch-less index masking clamps the
     speculative access into the buffer, so nothing leaks even with all
     speculation on *)
  let program = Gb_attack.Spectre_v1.masked_program ~secret () in
  let o = run Gb_core.Mitigation.Unsafe program in
  Alcotest.(check int) "masked victim leaks nothing" 0
    o.Gb_attack.Runner.correct_bytes

let attack_is_architecturally_silent () =
  (* the squashed speculative loads never alter guest-visible state: exit
     code is 0 under every mode *)
  List.iter
    (fun mode ->
      let o = run mode v1 in
      Alcotest.(check int)
        (Printf.sprintf "exit code under %s" (Gb_core.Mitigation.mode_name mode))
        0 o.Gb_attack.Runner.result.Gb_system.Processor.exit_code)
    Gb_core.Mitigation.all_modes

let translation_channel_leaks_everywhere () =
  (* E7: the profile-guided translation decision itself is a side channel
     the poisoning countermeasure does not (and cannot) address *)
  List.iter
    (fun mode ->
      let o = Gb_attack.Translation_channel.run ~mode ~secret:"Z" () in
      Alcotest.(check string)
        (Printf.sprintf "bit-exact recovery under %s"
           (Gb_core.Mitigation.mode_name mode))
        "Z" o.Gb_attack.Translation_channel.recovered)
    Gb_core.Mitigation.all_modes

let () =
  Alcotest.run "attack"
    [
      ( "e1-proof-of-concept",
        [
          Alcotest.test_case "v1 leaks when unsafe" `Quick v1_unsafe;
          Alcotest.test_case "v4 leaks when unsafe" `Quick v4_unsafe;
          Alcotest.test_case "v1 mitigated" `Quick v1_mitigated;
          Alcotest.test_case "v4 mitigated" `Quick v4_mitigated;
          Alcotest.test_case "v4 rolls back" `Quick v4_uses_rollbacks;
          Alcotest.test_case "patterns detected" `Quick
            patterns_detected_by_mitigation;
          Alcotest.test_case "masking defeats v1 (negative control)" `Quick
            masking_defeats_v1;
          Alcotest.test_case "first-pass tier is safe (negative control)"
            `Quick first_pass_tier_is_safe;
          Alcotest.test_case "eviction variant (no cflush)" `Quick
            eviction_variant_works;
          Alcotest.test_case "split gadget is safe (negative control)" `Quick
            split_gadget_is_safe;
        ] );
      ( "side-channel",
        [
          Alcotest.test_case "hit/miss separation (E5)" `Quick
            hit_miss_separation;
          Alcotest.test_case "architecturally silent" `Quick
            attack_is_architecturally_silent;
        ] );
      ( "future-work-channel",
        [
          Alcotest.test_case "translation decisions leak under every mode"
            `Quick translation_channel_leaks_everywhere;
        ] );
    ]
