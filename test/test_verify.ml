(* Tests for Gb_verify: unit checks of the post-scheduling translation
   verifier on hand-built VLIW traces (one per violation kind), the static
   gadget scanner on the real attack binaries, and the end-to-end
   cross-validation properties — the verifier is silent on every schedule
   the constraining modes produce, and under Unsafe it covers every pc the
   runtime leakage audit catches leaving dependent transient state (zero
   static false negatives), including on randomly generated kernels. *)

module V = Gb_vliw.Vinsn
module Verifier = Gb_verify.Verifier
module Scanner = Gb_verify.Scanner

(* --- hand-built traces -------------------------------------------------- *)

let stub ?(commits = []) ~exit_id ~target () =
  V.make_stub ~exit_id ~commits ~target_pc:target ()

let mk ~stubs bundles =
  {
    V.entry_pc = 0x1000;
    bundles;
    stubs;
    n_regs = 64;
    guest_insns = 8;
    meta = V.empty_meta;
  }

let load ?spec ?(hoisted = false) ~id ~pc ~dst ~base () =
  V.Load
    {
      w = Gb_riscv.Insn.D;
      unsigned = false;
      dst;
      base;
      off = 0;
      spec;
      id;
      pc;
      hoisted;
    }

let branch s = V.Branch { cond = Gb_riscv.Insn.BNE; a = V.R 5; b = V.R 0; stub = s }

let store ~id ~pc =
  V.Store { w = Gb_riscv.Insn.D; src = V.R 6; base = V.R 7; off = 0; id; pc }

let kinds r =
  List.map (fun v -> v.Verifier.v_kind) r.Verifier.violations

let clean_schedule_is_ok () =
  (* program-order schedule: nothing speculative, nothing to flag *)
  let stubs = [| stub ~exit_id:2 ~target:0x2000 () |] in
  let tr =
    mk ~stubs
      [|
        [| load ~id:1 ~pc:0x10 ~dst:5 ~base:(V.R 1) () |];
        [| branch 0 |];
        [| load ~id:3 ~pc:0x14 ~dst:6 ~base:(V.R 5) () |];
      |]
  in
  let r = Verifier.verify tr in
  Alcotest.(check bool) "ok" true (Verifier.ok r);
  Alcotest.(check int) "mem ops" 2 r.Verifier.mem_ops;
  Alcotest.(check int) "no sched-spec loads" 0 r.Verifier.sched_spec_loads

let tainted_load_flagged () =
  (* a hoisted load seeds taint; a second load consumes the tainted value
     as its address while a guarding exit is still unresolved — the
     Spectre leak condition in the emitted code *)
  let stubs = [| stub ~exit_id:3 ~target:0x2000 () |] in
  let tr =
    mk ~stubs
      [|
        [| load ~hoisted:true ~id:2 ~pc:0x10 ~dst:40 ~base:(V.R 1) () |];
        [| load ~id:4 ~pc:0x14 ~dst:41 ~base:(V.R 40) (); branch 0 |];
      |]
  in
  let r = Verifier.verify tr in
  Alcotest.(check bool) "violation found" false (Verifier.ok r);
  Alcotest.(check (list int)) "pc attributed" [ 0x14 ] (Verifier.violation_pcs r);
  match r.Verifier.violations with
  | [ v ] ->
    Alcotest.(check string) "kind" "tainted-load-address"
      (Verifier.kind_name v.Verifier.v_kind);
    Alcotest.(check (list int)) "origin is the hoisted load" [ 0x10 ]
      v.Verifier.v_origins
  | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

let resolved_guard_is_clean () =
  (* same dataflow, but the guard resolves a bundle before the dependent
     load executes: sticky taint remains (mirroring the pipeline) yet no
     unresolved exit guards the load, so it cannot be transient *)
  let stubs = [| stub ~exit_id:3 ~target:0x2000 () |] in
  let tr =
    mk ~stubs
      [|
        [| load ~hoisted:true ~id:2 ~pc:0x10 ~dst:40 ~base:(V.R 1) (); branch 0 |];
        [| load ~id:4 ~pc:0x14 ~dst:41 ~base:(V.R 40) () |];
      |]
  in
  Alcotest.(check bool) "ok" true (Verifier.ok (Verifier.verify tr))

let transient_store_flagged () =
  (* a store scheduled above an unresolved exit would execute transiently;
     stores are irreversible, the scheduler must pin them *)
  let stubs = [| stub ~exit_id:3 ~target:0x2000 () |] in
  let tr = mk ~stubs [| [| store ~id:5 ~pc:0x20; branch 0 |] |] in
  let r = Verifier.verify tr in
  Alcotest.(check (list string)) "kind" [ "transient-store" ]
    (List.map Verifier.kind_name (kinds r))

let tainted_commit_flagged () =
  (* stub 0 commits a register whose guarding exit (stub 1, next bundle)
     has not resolved at the stub's own bundle: speculative data would
     become architectural on that exit path *)
  let stubs =
    [|
      stub ~commits:[ (5, V.R 40) ] ~exit_id:1 ~target:0x2000 ();
      stub ~exit_id:2 ~target:0x2004 ();
    |]
  in
  let tr =
    mk ~stubs
      [|
        [| load ~hoisted:true ~id:3 ~pc:0x10 ~dst:40 ~base:(V.R 1) (); branch 0 |];
        [| branch 1 |];
      |]
  in
  let r = Verifier.verify tr in
  Alcotest.(check (list string)) "kind" [ "tainted-commit" ]
    (List.map Verifier.kind_name (kinds r))

let unguarded_bypass_flagged () =
  (* a load hoisted above a potentially-aliasing store without an MCB tag:
     nothing ever validates the speculatively read value *)
  let tr =
    mk ~stubs:[||]
      [|
        [| load ~id:5 ~pc:0x10 ~dst:40 ~base:(V.R 1) () |];
        [| store ~id:3 ~pc:0x20 |];
      |]
  in
  let r = Verifier.verify tr in
  Alcotest.(check (list string)) "kind" [ "unguarded-bypass" ]
    (List.map Verifier.kind_name (kinds r));
  Alcotest.(check int) "schedule-derived speculation" 1
    r.Verifier.sched_spec_loads

let chk_validates_bypass () =
  (* the same bypass with an MCB tag and a Chk resolving after the store
     is the legal memory-speculation idiom — no violation *)
  let stubs = [| stub ~exit_id:5 ~target:0x2000 () |] in
  let tr =
    mk ~stubs
      [|
        [| load ~spec:0 ~id:5 ~pc:0x10 ~dst:40 ~base:(V.R 1) () |];
        [| store ~id:3 ~pc:0x20 |];
        [| V.Chk { tag = 0; stub = 0 } |];
      |]
  in
  let r = Verifier.verify tr in
  Alcotest.(check bool) "ok" true (Verifier.ok r);
  Alcotest.(check int) "flag-derived speculation" 1 r.Verifier.flag_spec_loads

(* --- gadget scanner on the real attack binaries ------------------------- *)

let v1_asm () =
  Gb_kernelc.Compile.assemble (Gb_attack.Spectre_v1.program ~secret:"ABC" ())

let v4_asm () =
  Gb_kernelc.Compile.assemble (Gb_attack.Spectre_v4.program ~secret:"ABC" ())

let scanner_finds_v1 () =
  let r = Scanner.scan (v1_asm ()) in
  Alcotest.(check bool) "gadgets found" true (r.Scanner.gadgets <> []);
  Alcotest.(check bool) "a v1 chain present" true
    (List.exists (fun g -> g.Scanner.g_kind = Scanner.V1) r.Scanner.gadgets)

let scanner_finds_v4 () =
  let r = Scanner.scan (v4_asm ()) in
  Alcotest.(check bool) "a v4 chain present" true
    (List.exists (fun g -> g.Scanner.g_kind = Scanner.V4) r.Scanner.gadgets)

let scanner_score_math () =
  let r = Scanner.scan (v1_asm ()) in
  let dep = Scanner.dep_pcs r in
  Alcotest.(check bool) "scanner found dependent pcs" true (dep <> []);
  let s = Scanner.score r ~flagged:dep in
  Alcotest.(check (float 0.0)) "perfect recall vs own positives" 1.0
    s.Scanner.recall;
  Alcotest.(check (float 0.0)) "perfect precision vs own positives" 1.0
    s.Scanner.precision;
  (* a ground-truth pc the scanner cannot know about must count as a miss *)
  let s = Scanner.score r ~flagged:(4 :: dep) in
  Alcotest.(check (list int)) "missed" [ 4 ] s.Scanner.missed;
  Alcotest.(check bool) "recall dropped" true (s.Scanner.recall < 1.0)

(* --- mitigation report: flagged pcs are distinct and sorted ------------- *)

let flagged_pcs_sorted_unique () =
  (* rebuild the v1 attack's hot traces at IR level (as the engine did)
     and mitigate them; the report's flagged pcs must be canonical even
     when fixpoint rounds re-flag the same load *)
  let asm = v1_asm () in
  let proc =
    Gb_system.Processor.create
      ~config:(Gb_system.Processor.config_for Gb_core.Mitigation.Unsafe)
      asm
  in
  ignore (Gb_system.Processor.run proc);
  let engine = Gb_system.Processor.engine proc in
  let some_flagged = ref false in
  List.iter
    (fun r ->
      if r.Gb_dbt.Engine.r_tier = `Trace then begin
        let gtrace =
          Gb_dbt.Trace_builder.build Gb_dbt.Trace_builder.default_config
            ~mem:(Gb_system.Processor.mem proc)
            ~profile:(Gb_dbt.Engine.branch_profile engine)
            ~entry:r.Gb_dbt.Engine.r_entry
        in
        let g =
          Gb_ir.Build.build ~opt:Gb_ir.Opt_config.aggressive
            ~lat:Gb_ir.Latency.default gtrace
        in
        let report =
          Gb_core.Mitigation.apply Gb_core.Mitigation.Fine_grained
            ~lat:Gb_ir.Latency.default g
        in
        let pcs = report.Gb_core.Mitigation.flagged_pcs in
        Alcotest.(check (list int)) "sorted and distinct"
          (List.sort_uniq compare pcs) pcs;
        if pcs <> [] then some_flagged := true
      end)
    (Gb_dbt.Engine.regions engine);
  Alcotest.(check bool) "the attack flags at least one load" true !some_flagged

(* --- end-to-end: verifier vs engine vs audit ---------------------------- *)

let config_with ~verify mode =
  let config = Gb_system.Processor.config_for mode in
  {
    config with
    Gb_system.Processor.engine =
      { config.Gb_system.Processor.engine with Gb_dbt.Engine.verify };
  }

(* Run a program with the verifier attached; return the processor (for the
   audit and the verify log) and the result. *)
let verified_run ?(audit = false) ~verify mode asm =
  let proc =
    Gb_system.Processor.create ~config:(config_with ~verify mode) ~audit asm
  in
  let r = Gb_system.Processor.run proc in
  (proc, r)

let mitigated_modes_verify_clean () =
  List.iter
    (fun asm ->
      List.iter
        (fun mode ->
          let _, r =
            verified_run ~verify:Gb_dbt.Engine.Verify_report mode asm
          in
          Alcotest.(check bool) "translations were checked" true
            (r.Gb_system.Processor.verify_checked > 0);
          Alcotest.(check int)
            (Printf.sprintf "no violations under %s"
               (Gb_core.Mitigation.mode_name mode))
            0 r.Gb_system.Processor.verify_violations)
        [ Gb_core.Mitigation.Fine_grained; Gb_core.Mitigation.Fence_on_detect;
          Gb_core.Mitigation.Min_cut ])
    [ v1_asm (); v4_asm () ]

let unsafe_static_fn_is_zero () =
  (* the heart of the cross-validation: every pc the audit catches leaving
     a dependent transient line must also be flagged by the verifier *)
  List.iter
    (fun asm ->
      let proc, r =
        verified_run ~audit:true ~verify:Gb_dbt.Engine.Verify_report
          Gb_core.Mitigation.Unsafe asm
      in
      Alcotest.(check bool) "unsafe run has violations" true
        (r.Gb_system.Processor.verify_violations > 0);
      let engine = Gb_system.Processor.engine proc in
      let vpcs =
        List.sort_uniq compare
          (List.map
             (fun (_, v) -> v.Gb_verify.Verifier.v_pc)
             (Gb_dbt.Engine.verify_log engine))
      in
      let dep =
        match Gb_system.Processor.audit proc with
        | Some a -> Gb_cache.Audit.dependent_pcs a
        | None -> []
      in
      Alcotest.(check bool) "audit observed dependent leakage" true (dep <> []);
      List.iter
        (fun pc ->
          Alcotest.(check bool)
            (Printf.sprintf "leaking pc 0x%x covered by the verifier" pc)
            true (List.mem pc vpcs))
        dep)
    [ v1_asm (); v4_asm () ]

let enforce_gate_stops_the_leak () =
  (* Verify_enforce under Unsafe: violating translations are refenced, so
     the audit must see no dependent transient state at all *)
  let proc, r =
    verified_run ~audit:true ~verify:Gb_dbt.Engine.Verify_enforce
      Gb_core.Mitigation.Unsafe (v1_asm ())
  in
  Alcotest.(check bool) "translations rejected" true
    (r.Gb_system.Processor.verify_rejections > 0);
  (match Gb_system.Processor.audit proc with
  | Some a ->
    Alcotest.(check (list int)) "no dependent transient lines" []
      (Gb_cache.Audit.dependent_pcs a)
  | None -> Alcotest.fail "audit missing");
  (* and the final schedules installed are themselves clean: re-verify
     every installed region *)
  List.iter
    (fun reg ->
      Alcotest.(check bool) "installed region verifies clean" true
        (Verifier.ok (Verifier.verify reg.Gb_dbt.Engine.r_trace)))
    (Gb_dbt.Engine.regions (Gb_system.Processor.engine proc))

let scanner_covers_runtime_flags () =
  (* scanner recall 1.0 against the runtime detector's flagged pcs *)
  List.iter
    (fun asm ->
      let proc, _ =
        verified_run ~audit:true ~verify:Gb_dbt.Engine.Verify_off
          Gb_core.Mitigation.Unsafe asm
      in
      let flagged =
        match Gb_system.Processor.audit proc with
        | Some a -> Gb_cache.Audit.flagged_pc_list a
        | None -> []
      in
      Alcotest.(check bool) "runtime flagged something" true (flagged <> []);
      let s = Scanner.score (Scanner.scan asm) ~flagged in
      Alcotest.(check (float 0.0)) "scanner recall" 1.0 s.Scanner.recall)
    [ v1_asm (); v4_asm () ]

(* --- qcheck: random kernels --------------------------------------------- *)

(* Small random kernels in the v1 shape — a biased bounds check guarding a
   double indirection, sometimes with a store in the hot path — exercising
   the trace builder, speculation and the mitigation from fresh angles. *)
let kernel_gen =
  let open QCheck.Gen in
  let open Gb_kernelc.Ast in
  let* iters = int_range 40 90 in
  let* mask = oneofl [ 7; 15 ] in
  let* bound = int_range 3 6 in
  let* stride = oneofl [ 1; 4; 8 ] in
  let* with_store = bool in
  let c n = Const (Int64.of_int n) in
  let arrays =
    [
      {
        a_name = "idx";
        a_ty = I8;
        a_dims = [ 64 ];
        a_init = Bytes (String.init 64 (fun i -> Char.chr (i * 7 land 63)));
      };
      { a_name = "probe"; a_ty = I64; a_dims = [ 512 ]; a_init = Zero };
    ]
  in
  let leak =
    [
      Let ("x", Arr ("idx", [ Var "j" ]));
      Let
        ( "y",
          Arr ("probe", [ Bin (And, Bin (Mul, Var "x", c stride), c 511) ]) );
      Set ("acc", Bin (Add, Var "acc", Var "y"));
    ]
    @
    if with_store then
      [ Arr_store ("probe", [ Bin (And, Var "x", c 511) ], Var "acc") ]
    else []
  in
  let body =
    [
      Let ("acc", c 0);
      For
        ( "i",
          c 0,
          c iters,
          [
            Let ("j", Bin (And, Var "i", c mask));
            If
              ( Bin (Lt, Var "j", c bound),
                leak,
                [ Set ("acc", Bin (Add, Var "acc", c 1)) ] );
          ] );
    ]
  in
  return { arrays; body; result = Bin (And, Var "acc", c 255) }

let qcheck_random_kernels =
  QCheck.Test.make ~count:6 ~name:"random kernels: verifier silent when \
                                   constrained, covers the audit when not"
    (QCheck.make kernel_gen) (fun program ->
      let asm = Gb_kernelc.Compile.assemble program in
      List.iter
        (fun mode ->
          let _, r =
            verified_run ~verify:Gb_dbt.Engine.Verify_report mode asm
          in
          if r.Gb_system.Processor.verify_violations <> 0 then
            QCheck.Test.fail_reportf "%d violation(s) under %s"
              r.Gb_system.Processor.verify_violations
              (Gb_core.Mitigation.mode_name mode))
        [ Gb_core.Mitigation.Fine_grained; Gb_core.Mitigation.Fence_on_detect;
          Gb_core.Mitigation.Min_cut ];
      let proc, _ =
        verified_run ~audit:true ~verify:Gb_dbt.Engine.Verify_report
          Gb_core.Mitigation.Unsafe asm
      in
      let vpcs =
        List.sort_uniq compare
          (List.map
             (fun (_, v) -> v.Gb_verify.Verifier.v_pc)
             (Gb_dbt.Engine.verify_log (Gb_system.Processor.engine proc)))
      in
      let dep =
        match Gb_system.Processor.audit proc with
        | Some a -> Gb_cache.Audit.dependent_pcs a
        | None -> []
      in
      List.iter
        (fun pc ->
          if not (List.mem pc vpcs) then
            QCheck.Test.fail_reportf
              "static false negative: audit-dependent pc 0x%x unflagged" pc)
        dep;
      true)

let () =
  Alcotest.run "verify"
    [
      ( "verifier-units",
        [
          Alcotest.test_case "clean schedule is ok" `Quick clean_schedule_is_ok;
          Alcotest.test_case "tainted load flagged" `Quick tainted_load_flagged;
          Alcotest.test_case "resolved guard is clean" `Quick
            resolved_guard_is_clean;
          Alcotest.test_case "transient store flagged" `Quick
            transient_store_flagged;
          Alcotest.test_case "tainted commit flagged" `Quick
            tainted_commit_flagged;
          Alcotest.test_case "unguarded bypass flagged" `Quick
            unguarded_bypass_flagged;
          Alcotest.test_case "chk validates bypass" `Quick chk_validates_bypass;
        ] );
      ( "scanner",
        [
          Alcotest.test_case "finds the v1 gadget" `Quick scanner_finds_v1;
          Alcotest.test_case "finds the v4 gadget" `Quick scanner_finds_v4;
          Alcotest.test_case "score arithmetic" `Quick scanner_score_math;
        ] );
      ( "mitigation-report",
        [
          Alcotest.test_case "flagged pcs sorted and distinct" `Quick
            flagged_pcs_sorted_unique;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "mitigated modes verify clean" `Quick
            mitigated_modes_verify_clean;
          Alcotest.test_case "unsafe static FN is zero" `Quick
            unsafe_static_fn_is_zero;
          Alcotest.test_case "enforce gate stops the leak" `Quick
            enforce_gate_stops_the_leak;
          Alcotest.test_case "scanner covers runtime flags" `Quick
            scanner_covers_runtime_flags;
          QCheck_alcotest.to_alcotest qcheck_random_kernels;
        ] );
    ]
