(* End-to-end tests of the co-designed processor: translated execution must
   be architecturally identical to the reference interpreter under every
   mitigation mode, and the DBT layer must actually engage (translations,
   speculation, rollbacks). *)

let modes = Gb_core.Mitigation.all_modes

let interp_exit program =
  let mem = Gb_riscv.Mem.create ~size:(1 lsl 20) in
  Gb_riscv.Asm.load mem program;
  let interp = Gb_riscv.Interp.create ~mem ~pc:program.Gb_riscv.Asm.entry () in
  Gb_riscv.Interp.run interp

let run_mode mode program =
  Gb_system.Processor.run_program
    ~config:(Gb_system.Processor.config_for mode)
    program

(* A loop hot enough to be translated: sums i*i for i in [0, n). *)
let square_sum_program n =
  let open Gb_riscv in
  let open Gb_riscv.Insn in
  Asm.assemble
    [
      Asm.Li (Reg.s1, Int64.of_int n);
      Asm.Li (Reg.s2, 0L);
      Asm.Li (Reg.t0, 0L);
      Asm.Label "loop";
      Asm.Insn (Op (MUL, Reg.t1, Reg.s2, Reg.s2));
      Asm.Insn (Op (ADD, Reg.t0, Reg.t0, Reg.t1));
      Asm.Insn (Op_imm (ADDI, Reg.s2, Reg.s2, 1));
      Asm.Branch_to (BLT, Reg.s2, Reg.s1, "loop");
      Asm.Insn (Op_imm (ANDI, Reg.a0, Reg.t0, 255));
      Asm.Li (Reg.a7, 93L);
      Asm.Insn Ecall;
    ]

(* A memory-heavy loop with genuine cross-iteration aliasing, to exercise
   MCB speculation and rollback: a[i mod 8] = a[(i+7) mod 8] + i. The load
   of iteration j reads the slot stored by the previous iteration, so in an unrolled
   trace the hoisted load conflicts with an earlier store. *)
let aliasing_program ?(offset = 7) n =
  let open Gb_riscv in
  let open Gb_riscv.Insn in
  Asm.assemble
    [
      Asm.Jal_to (Reg.zero, "start");
      Asm.Label "buf";
      Asm.Dword [ 0L; 0L; 0L; 0L; 0L; 0L; 0L; 0L ];
      Asm.Label "start";
      Asm.La (Reg.s0, "buf");
      Asm.Li (Reg.s1, Int64.of_int n);
      Asm.Li (Reg.s2, 0L);
      Asm.Label "loop";
      Asm.Insn (Op_imm (ANDI, Reg.t0, Reg.s2, 7));
      Asm.Insn (Op_imm (ADDI, Reg.t1, Reg.s2, offset));
      Asm.Insn (Op_imm (ANDI, Reg.t1, Reg.t1, 7));
      Asm.Insn (Op_imm (SLLI, Reg.t0, Reg.t0, 3));
      Asm.Insn (Op_imm (SLLI, Reg.t1, Reg.t1, 3));
      Asm.Insn (Op (ADD, Reg.t0, Reg.t0, Reg.s0));
      Asm.Insn (Op (ADD, Reg.t1, Reg.t1, Reg.s0));
      Asm.Insn (Load (D, false, Reg.t2, Reg.t1, 0));
      Asm.Insn (Op (ADD, Reg.t2, Reg.t2, Reg.s2));
      Asm.Insn (Store (D, Reg.t2, Reg.t0, 0));
      Asm.Insn (Op_imm (ADDI, Reg.s2, Reg.s2, 1));
      Asm.Branch_to (BLT, Reg.s2, Reg.s1, "loop");
      (* checksum the buffer *)
      Asm.Li (Reg.t0, 0L);
      Asm.Li (Reg.t3, 0L);
      Asm.Label "sum";
      Asm.Insn (Op (ADD, Reg.t4, Reg.s0, Reg.t3));
      Asm.Insn (Load (D, false, Reg.t5, Reg.t4, 0));
      Asm.Insn (Op (ADD, Reg.t0, Reg.t0, Reg.t5));
      Asm.Insn (Op_imm (ADDI, Reg.t3, Reg.t3, 8));
      Asm.Insn (Op_imm (SLTIU, Reg.t6, Reg.t3, 64));
      Asm.Insn (Branch (BNE, Reg.t6, Reg.zero, -20));
      Asm.Insn (Op_imm (ANDI, Reg.a0, Reg.t0, 255));
      Asm.Li (Reg.a7, 93L);
      Asm.Insn Ecall;
    ]

let check_all_modes name program =
  let expected = interp_exit program in
  List.iter
    (fun mode ->
      let r = run_mode mode program in
      Alcotest.(check int)
        (Printf.sprintf "%s under %s" name (Gb_core.Mitigation.mode_name mode))
        expected r.Gb_system.Processor.exit_code)
    modes

let square_sum_all_modes () = check_all_modes "square sum" (square_sum_program 200)

let aliasing_all_modes () = check_all_modes "aliasing loop" (aliasing_program 300)

let dbt_engages () =
  let r = run_mode Gb_core.Mitigation.Unsafe (square_sum_program 500) in
  Alcotest.(check bool) "translated something" true
    (r.Gb_system.Processor.translations > 0);
  Alcotest.(check bool) "ran traces" true
    (Int64.compare r.Gb_system.Processor.trace_runs 0L > 0);
  Alcotest.(check bool) "most work on the VLIW" true
    (Int64.compare r.Gb_system.Processor.interp_insns 2000L < 0)

let speculation_engages () =
  let r = run_mode Gb_core.Mitigation.Unsafe (aliasing_program 500) in
  Alcotest.(check bool) "memory speculation used" true
    (r.Gb_system.Processor.spec_loads > 0);
  Alcotest.(check bool) "rollbacks happened" true
    (Int64.compare r.Gb_system.Processor.rollbacks 0L > 0)

let no_spec_is_slower () =
  (* needs a loop with loads: "no speculation" pins loads behind branches
     and stores, while pure ALU work may still float *)
  (* offset 1: the loads never conflict with in-flight stores, so
     speculation is pure win *)
  let program = aliasing_program ~offset:1 2000 in
  let fast = run_mode Gb_core.Mitigation.Unsafe program in
  let slow = run_mode Gb_core.Mitigation.No_speculation program in
  Alcotest.(check bool) "load speculation speeds up the loop" true
    (Int64.compare slow.Gb_system.Processor.cycles
       fast.Gb_system.Processor.cycles
    > 0)

let tier_upgrade () =
  (* a hot loop passes through both tiers: first-level block translation
     while warm, optimizing trace translation once hot — and the hot loop
     head must end up on the trace tier *)
  let program = square_sum_program 500 in
  let proc =
    Gb_system.Processor.create
      ~config:(Gb_system.Processor.config_for Gb_core.Mitigation.Unsafe)
      program
  in
  let r = Gb_system.Processor.run proc in
  Alcotest.(check bool) "first-pass used" true
    (r.Gb_system.Processor.first_pass_translations > 0);
  Alcotest.(check bool) "optimizer used" true
    (r.Gb_system.Processor.translations > 0);
  let regions = Gb_dbt.Engine.regions (Gb_system.Processor.engine proc) in
  let hottest = List.hd regions in
  Alcotest.(check bool) "hottest region is an optimized trace" true
    (hottest.Gb_dbt.Engine.r_tier = `Trace);
  Alcotest.(check bool) "it ran many times" true
    (hottest.Gb_dbt.Engine.r_runs > 50)

(* A two-phase loop: the inner branch is taken for the first half of the
   iterations and not taken afterwards. A trace specialised on the phase-1
   bias side-exits on every phase-2 iteration; adaptive re-translation
   drops it, re-learns the bias and rebuilds. *)
let phase_flip_program n =
  let open Gb_kernelc.Dsl in
  Gb_kernelc.Compile.assemble
    {
      Gb_kernelc.Ast.arrays = [ array "a" Gb_kernelc.Ast.I64 [ 64 ] ];
      body =
        [
          for_ "i" (c 0) (c 64) [ ("a", [ v "i" ]) <-: (v "i" *: c 3) ];
          let_ "acc" (c 0);
          for_ "i" (c 0) (c (2 * n))
            [
              if_
                (v "i" <: c n)
                [ set "acc" (v "acc" +: (arr "a" [ v "i" &: c 63 ] *: c 3)) ]
                [ set "acc" (v "acc" ^: (arr "a" [ (v "i" *: c 7) &: c 63 ] +: c 1)) ];
            ];
        ];
      result = v "acc" &: c 255;
    }

let adaptive_retranslation () =
  let program = phase_flip_program 600 in
  let base = Gb_system.Processor.config_for Gb_core.Mitigation.Unsafe in
  let with_flag enabled =
    {
      base with
      Gb_system.Processor.engine =
        { base.Gb_system.Processor.engine with
          Gb_dbt.Engine.adaptive_retranslate = enabled };
    }
  in
  let off_proc = Gb_system.Processor.create ~config:(with_flag false) program in
  let off = Gb_system.Processor.run off_proc in
  let on_proc = Gb_system.Processor.create ~config:(with_flag true) program in
  let on = Gb_system.Processor.run on_proc in
  Alcotest.(check int) "same result" off.Gb_system.Processor.exit_code
    on.Gb_system.Processor.exit_code;
  let on_stats = Gb_dbt.Engine.stats (Gb_system.Processor.engine on_proc) in
  Alcotest.(check bool) "stale trace was rebuilt" true
    (on_stats.Gb_dbt.Engine.retranslations > 0);
  Alcotest.(check bool) "rebuilding pays off" true
    (Int64.compare on.Gb_system.Processor.cycles off.Gb_system.Processor.cycles
    <= 0)

let report_is_consistent () =
  let program = aliasing_program 600 in
  let proc =
    Gb_system.Processor.create
      ~config:(Gb_system.Processor.config_for Gb_core.Mitigation.Unsafe)
      program
  in
  let result = Gb_system.Processor.run proc in
  let report = Gb_system.Report.of_processor proc result in
  Alcotest.(check bool) "most insns translated" true
    (report.Gb_system.Report.translated_share > 0.5);
  Alcotest.(check bool) "ipc positive" true
    (report.Gb_system.Report.overall_ipc > 0.);
  Alcotest.(check bool) "regions recorded" true
    (report.Gb_system.Report.regions <> []);
  (* regions are sorted hottest-first and runs are consistent *)
  let runs = List.map (fun r -> r.Gb_system.Report.runs) report.Gb_system.Report.regions in
  Alcotest.(check (list int)) "sorted by runs" (List.sort (fun a b -> compare b a) runs) runs;
  (* JSON form renders *)
  let json = Gb_util.Json.to_string (Gb_system.Report.to_json report) in
  Alcotest.(check bool) "json non-trivial" true (String.length json > 100)

(* Regression: the report JSON (including the embedded metrics snapshot
   from an active observability sink) must round-trip through our own
   parser unchanged. *)
let report_json_roundtrip () =
  let program = aliasing_program 600 in
  let obs = Gb_obs.Sink.create () in
  let proc =
    Gb_system.Processor.create
      ~config:(Gb_system.Processor.config_for Gb_core.Mitigation.Fine_grained)
      ~obs program
  in
  let result = Gb_system.Processor.run proc in
  let report = Gb_system.Report.of_processor proc result in
  let json = Gb_system.Report.to_json report in
  (match json with
  | Gb_util.Json.Obj fields ->
    (match List.assoc_opt "metrics" fields with
    | Some (Gb_util.Json.Obj mfields) ->
      Alcotest.(check bool) "metrics snapshot has counters" true
        (List.mem_assoc "counters" mfields)
    | _ -> Alcotest.fail "report carries no metrics object")
  | _ -> Alcotest.fail "report JSON is not an object");
  let compact = Gb_util.Json.to_string json in
  (match Gb_util.Json.of_string compact with
  | Ok v -> Alcotest.(check bool) "compact round-trips" true (v = json)
  | Error e -> Alcotest.failf "compact form does not parse: %s" e);
  match Gb_util.Json.of_string (Gb_util.Json.to_string_pretty json) with
  | Ok v -> Alcotest.(check bool) "pretty round-trips" true (v = json)
  | Error e -> Alcotest.failf "pretty form does not parse: %s" e

(* Differential property: a random register/memory loop body produces the
   same architectural result on the interpreter and on the full processor
   under every mitigation mode. *)
let body_regs = Gb_riscv.Reg.[ t0; t1; t2; t3; t4; t5; a0; a1; a2; a3 ]

let gen_body_insn =
  let open QCheck.Gen in
  let open Gb_riscv.Insn in
  let reg = oneofl body_regs in
  let src = oneofl (Gb_riscv.Reg.s2 :: body_regs) in
  let alu_op =
    oneofl [ ADD; SUB; XOR; OR; AND; SLT; SLTU; MUL; ADDW; SUBW; MULW; DIV; REMU ]
  in
  let off = map (fun k -> 8 * k) (int_range 0 31) in
  frequency
    [
      (5, map3 (fun op rd (a, b) -> Op (op, rd, a, b)) alu_op reg (pair src src));
      (2, map3 (fun rd rs imm -> Op_imm (ADDI, rd, rs, imm)) reg src (int_range (-64) 64));
      (2, map2 (fun rd off -> Load (D, false, rd, Gb_riscv.Reg.s0, off)) reg off);
      (1, map2 (fun rd off -> Load (B, true, rd, Gb_riscv.Reg.s0, off)) reg off);
      (2, map2 (fun rs off -> Store (D, rs, Gb_riscv.Reg.s0, off)) src off);
      (1, map2 (fun rs off -> Store (W, rs, Gb_riscv.Reg.s0, off)) src off);
    ]

let gen_program =
  let open QCheck.Gen in
  let* len = int_range 4 24 in
  let* body = list_size (return len) gen_body_insn in
  let* seeds = list_size (return (List.length body_regs)) (int_range 0 1000) in
  let* iters = int_range 40 120 in
  let open Gb_riscv in
  let open Gb_riscv.Insn in
  let init =
    List.map2
      (fun r v -> Asm.Li (r, Int64.of_int v))
      body_regs seeds
  in
  let items =
    [ Asm.Jal_to (Reg.zero, "start"); Asm.Label "buf"; Asm.Space 256;
      Asm.Label "start"; Asm.La (Reg.s0, "buf");
      Asm.Li (Reg.s1, Int64.of_int iters); Asm.Li (Reg.s2, 0L) ]
    @ init
    @ [ Asm.Label "loop" ]
    @ List.map (fun i -> Asm.Insn i) body
    @ [
        Asm.Insn (Op_imm (ADDI, Reg.s2, Reg.s2, 1));
        Asm.Branch_to (BLT, Reg.s2, Reg.s1, "loop");
      ]
    (* checksum: xor of body registers and all buffer words *)
    @ [ Asm.Li (Reg.s3, 0L) ]
    @ List.map (fun r -> Asm.Insn (Op (XOR, Reg.s3, Reg.s3, r))) body_regs
    @ [
        Asm.Li (Reg.s4, 0L);
        Asm.Label "cksum";
        Asm.Insn (Op (ADD, Reg.s5, Reg.s0, Reg.s4));
        Asm.Insn (Load (D, false, Reg.s6, Reg.s5, 0));
        Asm.Insn (Op (XOR, Reg.s3, Reg.s3, Reg.s6));
        Asm.Insn (Op_imm (ADDI, Reg.s4, Reg.s4, 8));
        Asm.Insn (Op_imm (SLTIU, Reg.s7, Reg.s4, 256));
        Asm.Branch_to (BNE, Reg.s7, Reg.zero, "cksum");
        Asm.Insn (Op_imm (ANDI, Reg.a0, Reg.s3, 255));
        Asm.Li (Reg.a7, 93L);
        Asm.Insn Ecall;
      ]
  in
  return (Asm.assemble items)

let differential_prop =
  QCheck.Test.make ~count:40 ~name:"random loops: interp = DBT (all modes)"
    (QCheck.make gen_program) (fun program ->
      let expected = interp_exit program in
      List.for_all
        (fun mode ->
          let r = run_mode mode program in
          r.Gb_system.Processor.exit_code = expected)
        modes)

let qt = QCheck_alcotest.to_alcotest

(* The processor and the reference interpreter must establish the same
   initial stack pointer, so that the differential oracle can compare
   register files from the very first sync point. *)
let sp_convention () =
  let program = square_sum_program 10 in
  let proc = Gb_system.Processor.create program in
  let interp = Gb_system.Processor.interp proc in
  let mem = Gb_system.Processor.mem proc in
  Alcotest.(check int64)
    "processor sp = Interp.default_sp"
    (Gb_riscv.Interp.default_sp mem)
    interp.Gb_riscv.Interp.regs.(Gb_riscv.Reg.sp)

(* mcb_entries = 0 means "MCB disabled": the processor clamps memory
   speculation out of the translator, and execution stays correct. *)
let mcb_disabled_correct () =
  let config =
    {
      Gb_system.Processor.default_config with
      machine =
        {
          Gb_vliw.Machine.default_config with
          Gb_vliw.Machine.mcb_entries = 0;
        };
    }
  in
  List.iter
    (fun program ->
      let expected = interp_exit program in
      let r = Gb_system.Processor.run_program ~config program in
      Alcotest.(check int) "exit code" expected
        r.Gb_system.Processor.exit_code;
      Alcotest.(check int64) "no rollbacks without MCB" 0L
        r.Gb_system.Processor.rollbacks)
    [ square_sum_program 400; aliasing_program 400 ]

(* GHOSTBUSTERS_INJECT arms the fault controller for any processor run
   that doesn't pass one explicitly (how CI injects faults suite-wide). *)
let inject_env_arming () =
  let var = Gb_system.Inject.env_var in
  let old = Sys.getenv_opt var in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv var (Option.value old ~default:""))
    (fun () ->
      Unix.putenv var "evict:0.25,translate";
      (match Gb_system.Inject.of_env () with
      | None -> Alcotest.fail "of_env did not arm a controller"
      | Some inj ->
          Alcotest.(check (float 1e-9))
            "evict rate" 0.25
            (Gb_system.Inject.rate inj Gb_system.Inject.Evict);
          Alcotest.(check bool)
            "sound spec" true
            (Gb_system.Inject.sound inj));
      Unix.putenv var "";
      Alcotest.(check bool)
        "empty env arms nothing" true
        (Gb_system.Inject.of_env () = None))

let () =
  Alcotest.run "system"
    [
      ( "equivalence",
        [
          Alcotest.test_case "square sum, all modes" `Quick square_sum_all_modes;
          Alcotest.test_case "aliasing loop, all modes" `Quick
            aliasing_all_modes;
          qt differential_prop;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "dbt engages" `Quick dbt_engages;
          Alcotest.test_case "speculation engages" `Quick speculation_engages;
          Alcotest.test_case "no-speculation is slower" `Quick no_spec_is_slower;
          Alcotest.test_case "report is consistent" `Quick report_is_consistent;
          Alcotest.test_case "report JSON round-trips" `Quick
            report_json_roundtrip;
          Alcotest.test_case "tier upgrade" `Quick tier_upgrade;
          Alcotest.test_case "adaptive retranslation" `Quick
            adaptive_retranslation;
          Alcotest.test_case "sp convention" `Quick sp_convention;
          Alcotest.test_case "mcb disabled stays correct" `Quick
            mcb_disabled_correct;
          Alcotest.test_case "inject env arming" `Quick inject_env_arming;
        ] );
    ]
