(* Tests for the experiment drivers: the paper-facing results must have the
   documented shape (these are the assertions EXPERIMENTS.md relies on). *)

let e1_shape () =
  let rows = Gb_experiments.Experiments.e1_poc_matrix ~secret:"GB" () in
  Alcotest.(check int) "2 variants x 5 modes" 10 (List.length rows);
  List.iter
    (fun (r : Gb_experiments.Experiments.poc_row) ->
      let ok = Gb_attack.Runner.succeeded r.Gb_experiments.Experiments.outcome in
      match r.Gb_experiments.Experiments.mode with
      | Gb_core.Mitigation.Unsafe ->
        Alcotest.(check bool)
          (r.Gb_experiments.Experiments.variant ^ " leaks when unsafe")
          true ok
      | Gb_core.Mitigation.Fine_grained | Gb_core.Mitigation.Fence_on_detect
      | Gb_core.Mitigation.Min_cut | Gb_core.Mitigation.No_speculation ->
        Alcotest.(check int)
          (r.Gb_experiments.Experiments.variant ^ " safe under mitigation")
          0
          r.Gb_experiments.Experiments.outcome.Gb_attack.Runner.correct_bytes)
    rows

let figure4_shape () =
  (* use three kernels directly (the full 17-kernel sweep runs in bench) *)
  let rows =
    List.filter_map
      (fun name ->
        Option.map
          (fun (w : Gb_workloads.Polybench.t) ->
            Gb_experiments.Experiments.measure_program ~name
              w.Gb_workloads.Polybench.program)
          (Gb_workloads.Polybench.by_name name))
      [ "gemm"; "bicg"; "jacobi-2d" ]
  in
  Alcotest.(check int) "all kernels measured" 3 (List.length rows);
  List.iter
    (fun mc ->
      let fine =
        Gb_experiments.Experiments.slowdown mc
          ~mode:Gb_core.Mitigation.Fine_grained
      in
      let nospec =
        Gb_experiments.Experiments.slowdown mc
          ~mode:Gb_core.Mitigation.No_speculation
      in
      Alcotest.(check bool)
        (mc.Gb_experiments.Experiments.w_name ^ ": fine-grained is free") true
        (fine < 1.01);
      Alcotest.(check bool)
        (mc.Gb_experiments.Experiments.w_name ^ ": no-spec costs") true
        (nospec > 1.02);
      Alcotest.(check int)
        (mc.Gb_experiments.Experiments.w_name ^ ": no patterns")
        0 mc.Gb_experiments.Experiments.patterns)
    rows

let e4_shape () =
  let mc = Gb_experiments.Experiments.e4_matmul_ablation () in
  let fine =
    Gb_experiments.Experiments.slowdown mc ~mode:Gb_core.Mitigation.Fine_grained
  in
  let fence =
    Gb_experiments.Experiments.slowdown mc
      ~mode:Gb_core.Mitigation.Fence_on_detect
  in
  Alcotest.(check bool) "patterns fire" true
    (mc.Gb_experiments.Experiments.patterns > 0);
  Alcotest.(check bool) "fine-grained pays something" true (fine > 1.02);
  Alcotest.(check bool) "fine-grained beats the fence" true (fine < fence)

let e5_shape () =
  let lat = Gb_experiments.Experiments.e5_hit_miss () in
  let hot = Gb_experiments.Experiments.e5_hot_candidates in
  let fast =
    Array.to_list lat
    |> List.mapi (fun i t -> (i, t))
    |> List.filter (fun (_, t) -> t < Gb_attack.Side_channel.hit_threshold)
    |> List.map fst
  in
  Alcotest.(check (list int)) "exactly the hot candidates are fast"
    (List.sort compare hot) (List.sort compare fast)

let mcb_ablation_shape () =
  let rows = Gb_experiments.Ablations.mcb_size () in
  let find value =
    List.find
      (fun (r : Gb_experiments.Ablations.row) ->
        r.Gb_experiments.Ablations.value = value)
      rows
  in
  Alcotest.(check bool) "no MCB => no v4" false
    (find "0").Gb_experiments.Ablations.v4_leaks;
  Alcotest.(check bool) "no MCB still leaks v1" true
    (find "0").Gb_experiments.Ablations.v1_leaks;
  Alcotest.(check bool) "8 entries => v4 works" true
    (find "8").Gb_experiments.Ablations.v4_leaks

let adaptive_despec_shape () =
  let rows = Gb_experiments.Ablations.adaptive_despec () in
  let find value =
    List.find
      (fun (r : Gb_experiments.Ablations.row) ->
        r.Gb_experiments.Ablations.value = value)
      rows
  in
  let off = find "off" and on = find "on" in
  (* conflict-driven de-speculation repairs the misspeculating kernel *)
  Alcotest.(check bool) "nussinov gets faster" true
    (Int64.compare on.Gb_experiments.Ablations.unsafe_cycles
       off.Gb_experiments.Ablations.unsafe_cycles
    < 0);
  (* ... and starves the v4 gadget as a side effect *)
  Alcotest.(check bool) "v4 leaks without it" true
    off.Gb_experiments.Ablations.v4_leaks;
  Alcotest.(check bool) "v4 throttled with it" false
    on.Gb_experiments.Ablations.v4_leaks;
  Alcotest.(check bool) "v1 unaffected" true
    on.Gb_experiments.Ablations.v1_leaks

let adaptive_despec_is_architecturally_safe () =
  (* de-speculated retranslation must preserve results *)
  match Gb_workloads.Polybench.by_name "nussinov" with
  | None -> Alcotest.fail "nussinov missing"
  | Some w ->
    let asm = Gb_kernelc.Compile.assemble w.Gb_workloads.Polybench.program in
    let base = Gb_system.Processor.config_for Gb_core.Mitigation.Unsafe in
    let adaptive =
      {
        base with
        Gb_system.Processor.engine =
          { base.Gb_system.Processor.engine with Gb_dbt.Engine.adaptive_despec = true };
      }
    in
    let off = Gb_system.Processor.run_program ~config:base asm in
    let on = Gb_system.Processor.run_program ~config:adaptive asm in
    Alcotest.(check int) "same checksum" off.Gb_system.Processor.exit_code
      on.Gb_system.Processor.exit_code

let unroll_ablation_shape () =
  let rows = Gb_experiments.Ablations.unroll_limit () in
  let slow_of value =
    (List.find
       (fun (r : Gb_experiments.Ablations.row) ->
         r.Gb_experiments.Ablations.value = value)
       rows)
      .Gb_experiments.Ablations.no_spec_slowdown
  in
  (* without unrolling there is little cross-iteration speculation to
     lose, so "no speculation" costs much less than with unrolling *)
  Alcotest.(check bool) "unrolling amplifies the speculation benefit" true
    (slow_of "1" < slow_of "4")

let () =
  Alcotest.run "experiments"
    [
      ( "paper-shapes",
        [
          Alcotest.test_case "E1 matrix" `Quick e1_shape;
          Alcotest.test_case "Figure 4 shape" `Quick figure4_shape;
          Alcotest.test_case "E4 matmul-ptr" `Quick e4_shape;
          Alcotest.test_case "E5 hit/miss" `Quick e5_shape;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "MCB size" `Quick mcb_ablation_shape;
          Alcotest.test_case "unrolling" `Quick unroll_ablation_shape;
          Alcotest.test_case "adaptive despec" `Quick adaptive_despec_shape;
          Alcotest.test_case "adaptive despec correctness" `Quick
            adaptive_despec_is_architecturally_safe;
        ] );
    ]
