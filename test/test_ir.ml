(* Tests for the IR builder, the poisoning analysis, and the mitigation:
   hand-built guest traces with known speculation structure, plus a
   property test that the analyze/constrain loop reaches a pattern-free
   fixpoint on random traces. *)

let lat = Gb_ir.Latency.default

let step ?exit_cond pc insn = { Gb_ir.Gtrace.pc; insn; exit_cond }

let gtrace steps fall_pc = { Gb_ir.Gtrace.entry = 0x1000; steps; fall_pc }

(* The Figure-1 gadget: bounds check, then the two dependent loads.
     0x1000: slt t2 <- (a0 < t0)            (index < size)
     0x1004: beq t2, x0 -> exit (biased not taken)
     0x1008: add t1 <- s0 + a0              (&buffer + index)
     0x100c: lb  t1 <- [t1]                 (a = buffer[index])
     0x1010: sll t1 <- t1 << 7
     0x1014: add t1 <- s1 + t1              (&array_val + a*128)
     0x1018: lb  t3 <- [t1]                 (leaking access)        *)
let v1_trace =
  let open Gb_riscv.Insn in
  gtrace
    [
      step 0x1000 (Op (SLT, Gb_riscv.Reg.t2, Gb_riscv.Reg.a0, Gb_riscv.Reg.t0));
      step 0x1004
        (Branch (BEQ, Gb_riscv.Reg.t2, Gb_riscv.Reg.zero, 0x100))
        ~exit_cond:(BEQ, 0x1104);
      step 0x1008 (Op (ADD, Gb_riscv.Reg.t1, Gb_riscv.Reg.s0, Gb_riscv.Reg.a0));
      step 0x100c (Load (B, true, Gb_riscv.Reg.t1, Gb_riscv.Reg.t1, 0));
      step 0x1010 (Op_imm (SLLI, Gb_riscv.Reg.t1, Gb_riscv.Reg.t1, 7));
      step 0x1014 (Op (ADD, Gb_riscv.Reg.t1, Gb_riscv.Reg.s1, Gb_riscv.Reg.t1));
      step 0x1018 (Load (B, true, Gb_riscv.Reg.t3, Gb_riscv.Reg.t1, 0));
    ]
    0x101c

(* The Figure-2 gadget: store, slow store, then the dependent load chain. *)
let v4_trace =
  let open Gb_riscv.Insn in
  gtrace
    [
      step 0x1000 (Store (D, Gb_riscv.Reg.a0, Gb_riscv.Reg.s0, 0));
      step 0x1004 (Op (MUL, Gb_riscv.Reg.t0, Gb_riscv.Reg.a1, Gb_riscv.Reg.a1));
      step 0x1008 (Store (D, Gb_riscv.Reg.a2, Gb_riscv.Reg.t0, 0));
      step 0x100c (Load (D, false, Gb_riscv.Reg.t1, Gb_riscv.Reg.s0, 0));
      step 0x1010 (Op (ADD, Gb_riscv.Reg.t2, Gb_riscv.Reg.s1, Gb_riscv.Reg.t1));
      step 0x1014 (Load (B, true, Gb_riscv.Reg.t3, Gb_riscv.Reg.t2, 0));
    ]
    0x1018

let build ?(opt = Gb_ir.Opt_config.aggressive) trace =
  Gb_ir.Build.build ~opt ~lat trace

let count_patterns g = List.length (Gb_core.Poison.analyze g).Gb_core.Poison.patterns

let v1_pattern_detected () =
  let g = build v1_trace in
  let { Gb_core.Poison.poisoned; patterns } = Gb_core.Poison.analyze g in
  Alcotest.(check int) "one leaking load" 1 (List.length patterns);
  let leak = List.hd patterns in
  let node = Gb_ir.Dfg.node g leak in
  Alcotest.(check bool) "it is a load" true (Gb_ir.Dfg.is_load node.Gb_ir.Dfg.kind);
  Alcotest.(check int) "it is the second load (guest pc)" 0x1018
    node.Gb_ir.Dfg.guest_pc;
  (* the first load's output is the poison source *)
  let first_load =
    Array.to_list (Gb_ir.Dfg.nodes g)
    |> List.find (fun n ->
           Gb_ir.Dfg.is_load n.Gb_ir.Dfg.kind && n.Gb_ir.Dfg.guest_pc = 0x100c)
  in
  Alcotest.(check bool) "first load poisoned" true
    poisoned.(first_load.Gb_ir.Dfg.id)

let v1_no_pattern_without_branch_spec () =
  let opt = { Gb_ir.Opt_config.aggressive with Gb_ir.Opt_config.branch_spec = false } in
  let g = build ~opt v1_trace in
  Alcotest.(check int) "no speculative loads, no pattern" 0 (count_patterns g)

let v4_pattern_detected () =
  let g = build v4_trace in
  let { Gb_core.Poison.patterns; _ } = Gb_core.Poison.analyze g in
  (* the dependent byte load leaks; there is no preceding branch so only
     memory speculation is involved *)
  Alcotest.(check bool) "pattern found" true (patterns <> []);
  let pcs =
    List.map (fun id -> (Gb_ir.Dfg.node g id).Gb_ir.Dfg.guest_pc) patterns
  in
  Alcotest.(check bool) "the dependent load leaks" true (List.mem 0x1014 pcs)

let v4_clean_address_is_no_pattern () =
  (* same shape but the second load's address comes from a register, not
     from the first load: no pattern *)
  let open Gb_riscv.Insn in
  let trace =
    gtrace
      [
        step 0x1000 (Store (D, Gb_riscv.Reg.a0, Gb_riscv.Reg.s0, 0));
        step 0x1004 (Load (D, false, Gb_riscv.Reg.t1, Gb_riscv.Reg.s0, 0));
        step 0x1008 (Load (B, true, Gb_riscv.Reg.t3, Gb_riscv.Reg.s1, 0));
      ]
      0x100c
  in
  let g = build trace in
  Alcotest.(check int) "no pattern" 0 (count_patterns g)

let fine_grained_fixpoint () =
  let g = build v4_trace in
  let report = Gb_core.Mitigation.apply Gb_core.Mitigation.Fine_grained ~lat g in
  Alcotest.(check bool) "found patterns" true
    (report.Gb_core.Mitigation.patterns_found > 0);
  Alcotest.(check int) "no pattern survives" 0 (count_patterns g);
  Alcotest.(check int) "no fences in fine-grained mode" 0
    report.Gb_core.Mitigation.fences_inserted

let fence_mode_inserts_fences () =
  let g = build v1_trace in
  let report = Gb_core.Mitigation.apply Gb_core.Mitigation.Fence_on_detect ~lat g in
  Alcotest.(check bool) "fences inserted" true
    (report.Gb_core.Mitigation.fences_inserted > 0);
  Alcotest.(check int) "no pattern survives" 0 (count_patterns g)

let unsafe_mode_is_identity () =
  let g = build v1_trace in
  let before = Gb_ir.Dfg.n_nodes g in
  let report = Gb_core.Mitigation.apply Gb_core.Mitigation.Unsafe ~lat g in
  Alcotest.(check int) "no nodes added" before (Gb_ir.Dfg.n_nodes g);
  Alcotest.(check int) "nothing constrained" 0
    report.Gb_core.Mitigation.loads_constrained;
  Alcotest.(check bool) "pattern still present" true (count_patterns g > 0)

let commit_maps_only_changed_regs () =
  let g = build v1_trace in
  Gb_ir.Dfg.iter_nodes g (fun n ->
      List.iter
        (fun (r, value) ->
          Alcotest.(check bool) "guest register" true (r >= 1 && r < 32);
          match value with
          | Gb_ir.Dfg.Reg_in r' ->
            Alcotest.(check bool) "no identity commits" false (r = r')
          | Gb_ir.Dfg.Node _ | Gb_ir.Dfg.Imm _ -> ())
        n.Gb_ir.Dfg.commit_map)

let chk_guards_speculative_load () =
  let g = build v4_trace in
  let chks =
    Array.to_list (Gb_ir.Dfg.nodes g)
    |> List.filter_map (fun n ->
           match n.Gb_ir.Dfg.kind with
           | Gb_ir.Dfg.Kchk load -> Some (n, load)
           | _ -> None)
  in
  Alcotest.(check bool) "chk nodes exist" true (chks <> []);
  List.iter
    (fun ((chk : Gb_ir.Dfg.node), load_id) ->
      let load = Gb_ir.Dfg.node g load_id in
      Alcotest.(check bool) "guards a load" true
        (Gb_ir.Dfg.is_load load.Gb_ir.Dfg.kind);
      Alcotest.(check int) "rollback pc is the load's pc"
        load.Gb_ir.Dfg.guest_pc chk.Gb_ir.Dfg.exit_pc)
    chks

let cse_deduplicates () =
  let open Gb_riscv.Insn in
  let trace =
    gtrace
      [
        step 0x1000 (Op (ADD, Gb_riscv.Reg.t0, Gb_riscv.Reg.s0, Gb_riscv.Reg.s1));
        step 0x1004 (Op (ADD, Gb_riscv.Reg.t1, Gb_riscv.Reg.s0, Gb_riscv.Reg.s1));
        step 0x1008 (Op (MUL, Gb_riscv.Reg.t2, Gb_riscv.Reg.t0, Gb_riscv.Reg.t1));
      ]
      0x100c
  in
  let with_cse = build trace in
  let no_cse =
    build
      ~opt:{ Gb_ir.Opt_config.aggressive with Gb_ir.Opt_config.cse = false }
      trace
  in
  (* with value numbering the two identical adds share a node: add, mul
     and the trace exit *)
  Alcotest.(check int) "cse: 3 nodes" 3 (Gb_ir.Dfg.n_nodes with_cse);
  Alcotest.(check int) "no cse: 4 nodes" 4 (Gb_ir.Dfg.n_nodes no_cse)

let constant_folding () =
  let open Gb_riscv.Insn in
  (* li t0, 0x2000 via lui+addiw, then t1 = t0 + 8: all constant *)
  let trace =
    gtrace
      [
        step 0x1000 (Lui (Gb_riscv.Reg.t0, 2));
        step 0x1004 (Op_imm (ADDIW, Gb_riscv.Reg.t0, Gb_riscv.Reg.t0, 0));
        step 0x1008 (Op_imm (ADDI, Gb_riscv.Reg.t1, Gb_riscv.Reg.t0, 8));
      ]
      0x100c
  in
  let g = build trace in
  (* everything folds: only the exit node remains *)
  Alcotest.(check int) "only the exit node" 1 (Gb_ir.Dfg.n_nodes g);
  let exit_node = Gb_ir.Dfg.node g 0 in
  let commits = exit_node.Gb_ir.Dfg.commit_map in
  Alcotest.(check bool) "t1 committed as an immediate" true
    (List.exists
       (fun (r, value) ->
         r = Gb_riscv.Reg.t1 && value = Gb_ir.Dfg.Imm 0x2008L)
       commits)

(* Random guest trace generator (structurally valid: branches carry exit
   conditions, no ecall/jalr). *)
let arb_gtrace =
  let open QCheck.Gen in
  let reg = int_range 1 15 in
  let gen_step pc =
    let open Gb_riscv.Insn in
    frequency
      [
        (4, map3 (fun rd rs1 rs2 -> Op (ADD, rd, rs1, rs2)) reg reg reg);
        (2, map3 (fun rd rs1 rs2 -> Op (MUL, rd, rs1, rs2)) reg reg reg);
        (2, map2 (fun rd rs1 -> Load (D, false, rd, rs1, 0)) reg reg);
        (2, map2 (fun rs2 rs1 -> Store (D, rs2, rs1, 0)) reg reg);
        (1, return (Rdcycle 5));
        (1, return Fence);
        ( 2,
          map2
            (fun rs1 rs2 -> Branch (BEQ, rs1, rs2, 64))
            reg reg );
      ]
    >|= fun insn ->
    let exit_cond =
      match insn with
      | Branch (cond, _, _, off) -> Some (cond, pc + off)
      | _ -> None
    in
    { Gb_ir.Gtrace.pc; insn; exit_cond }
  in
  let* n = int_range 1 40 in
  let* steps =
    flatten_l (List.init n (fun i -> gen_step (0x1000 + (4 * i))))
  in
  return (gtrace steps (0x1000 + (4 * n)))

let mitigation_fixpoint_prop =
  QCheck.Test.make ~count:300 ~name:"mitigation kills all patterns"
    (QCheck.make arb_gtrace)
    (fun trace ->
      List.for_all
        (fun mode ->
          let opt = Gb_core.Mitigation.opt_of_mode mode in
          let g = Gb_ir.Build.build ~opt ~lat trace in
          let _report = Gb_core.Mitigation.apply mode ~lat g in
          match mode with
          | Gb_core.Mitigation.Unsafe -> true
          | Gb_core.Mitigation.Fine_grained | Gb_core.Mitigation.Fence_on_detect
          | Gb_core.Mitigation.Min_cut | Gb_core.Mitigation.No_speculation ->
            count_patterns g = 0)
        Gb_core.Mitigation.all_modes)

let no_spec_never_speculative_prop =
  QCheck.Test.make ~count:200 ~name:"no-speculation has no speculative loads"
    (QCheck.make arb_gtrace)
    (fun trace ->
      let g = Gb_ir.Build.build ~opt:Gb_ir.Opt_config.no_speculation ~lat trace in
      let ok = ref true in
      Gb_ir.Dfg.iter_nodes g (fun n ->
          if Gb_ir.Dfg.is_speculative n then ok := false);
      !ok)

let mcb_tag_budget_prop =
  QCheck.Test.make ~count:200 ~name:"MCB tag budget respected"
    (QCheck.make arb_gtrace)
    (fun trace ->
      let opt = { Gb_ir.Opt_config.aggressive with Gb_ir.Opt_config.mcb_tags = 2 } in
      let g = Gb_ir.Build.build ~opt ~lat trace in
      let tags = ref [] in
      Gb_ir.Dfg.iter_nodes g (fun n ->
          match Gb_ir.Dfg.spec_of n with
          | Some { Gb_ir.Dfg.tag = Some t; _ } -> tags := t :: !tags
          | Some _ | None -> ());
      List.length !tags <= 2
      && List.sort_uniq compare !tags = List.sort compare !tags)

let dot_export () =
  let g = build v4_trace in
  let { Gb_core.Poison.poisoned; patterns } = Gb_core.Poison.analyze g in
  let dot = Gb_ir.Dot.to_string ~poisoned ~patterns g in
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec go i = i + n <= h && (String.sub dot i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "valid digraph" true
    (contains "digraph dfg {" && contains "}");
  Alcotest.(check bool) "speculative load rendered" true (contains "ld.spec");
  Alcotest.(check bool) "pattern highlighted" true (contains "fillcolor=\"#ff9999\"");
  Alcotest.(check bool) "memory edges dashed" true (contains "style=dashed")

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ir-core"
    [
      ( "poison",
        [
          Alcotest.test_case "v1 pattern detected" `Quick v1_pattern_detected;
          Alcotest.test_case "no pattern without branch spec" `Quick
            v1_no_pattern_without_branch_spec;
          Alcotest.test_case "v4 pattern detected" `Quick v4_pattern_detected;
          Alcotest.test_case "clean address is no pattern" `Quick
            v4_clean_address_is_no_pattern;
        ] );
      ( "mitigation",
        [
          Alcotest.test_case "fine-grained fixpoint" `Quick fine_grained_fixpoint;
          Alcotest.test_case "fence mode inserts fences" `Quick
            fence_mode_inserts_fences;
          Alcotest.test_case "unsafe is identity" `Quick unsafe_mode_is_identity;
          qt mitigation_fixpoint_prop;
          qt no_spec_never_speculative_prop;
        ] );
      ( "ir-structure",
        [
          Alcotest.test_case "commit maps minimal" `Quick
            commit_maps_only_changed_regs;
          Alcotest.test_case "chk guards speculative load" `Quick
            chk_guards_speculative_load;
          Alcotest.test_case "cse deduplicates" `Quick cse_deduplicates;
          Alcotest.test_case "constant folding" `Quick constant_folding;
          Alcotest.test_case "dot export" `Quick dot_export;
          qt mcb_tag_budget_prop;
        ] );
    ]
