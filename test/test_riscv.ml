(* Tests for the guest ISA: encoding golden vectors, encode/decode
   round-trips, interpreter arithmetic semantics, assembler programs. *)

let check_word name expected insn =
  Alcotest.(check int) name expected (Gb_riscv.Encode.encode insn)

let golden_encodings () =
  let open Gb_riscv.Insn in
  check_word "addi a5, a5, 1" 0x00178793 (Op_imm (ADDI, 15, 15, 1));
  check_word "add ra, sp, gp" 0x003100B3 (Op (ADD, 1, 2, 3));
  check_word "lui t0, 0x12345" 0x123452B7 (Lui (5, 0x12345));
  check_word "ld t1, 8(t2)" 0x0083B303 (Load (D, false, 6, 7, 8));
  check_word "sd t1, 16(t2)" 0x0063B823 (Store (D, 6, 7, 16));
  check_word "beq x0, x0, -4" 0xFE000EE3 (Branch (BEQ, 0, 0, -4));
  check_word "ecall" 0x00000073 Ecall;
  check_word "rdcycle t0" 0xC00022F3 (Rdcycle 5);
  check_word "mul a0, a1, a2" 0x02C58533 (Op (MUL, 10, 11, 12))

(* Generator of arbitrary well-formed instructions. *)
let arb_insn =
  let open Gb_riscv.Insn in
  let open QCheck in
  let reg = Gen.int_range 0 31 in
  let imm12 = Gen.int_range (-2048) 2047 in
  let uimm20 = Gen.int_range 0 ((1 lsl 20) - 1) in
  let opri_no_shift =
    Gen.oneofl [ ADDI; SLTI; SLTIU; XORI; ORI; ANDI; ADDIW ]
  in
  let oprr =
    Gen.oneofl
      [ ADD; SUB; SLL; SLT; SLTU; XOR; SRL; SRA; OR; AND; ADDW; SUBW; SLLW;
        SRLW; SRAW; MUL; MULH; MULHSU; MULHU; DIV; DIVU; REM; REMU; MULW;
        DIVW; DIVUW; REMW; REMUW ]
  in
  let width = Gen.oneofl [ B; H; W; D ] in
  let cond = Gen.oneofl [ BEQ; BNE; BLT; BGE; BLTU; BGEU ] in
  let gen =
    Gen.oneof
      [
        Gen.map3 (fun op rd (rs1, imm) -> Op_imm (op, rd, rs1, imm))
          opri_no_shift reg (Gen.pair reg imm12);
        Gen.map3 (fun rd rs1 sh -> Op_imm (SLLI, rd, rs1, sh)) reg reg
          (Gen.int_range 0 63);
        Gen.map3 (fun rd rs1 sh -> Op_imm (SRAIW, rd, rs1, sh)) reg reg
          (Gen.int_range 0 31);
        Gen.map3 (fun op rd (rs1, rs2) -> Op (op, rd, rs1, rs2)) oprr reg
          (Gen.pair reg reg);
        Gen.map2 (fun rd imm -> Lui (rd, imm)) reg uimm20;
        Gen.map2 (fun rd imm -> Auipc (rd, imm)) reg uimm20;
        Gen.map3
          (fun (w, u) rd (rs1, off) ->
            let u = if w = D then false else u in
            Load (w, u, rd, rs1, off))
          (Gen.pair width Gen.bool) reg (Gen.pair reg imm12);
        Gen.map3 (fun w rs2 (rs1, off) -> Store (w, rs2, rs1, off)) width reg
          (Gen.pair reg imm12);
        Gen.map3
          (fun c (rs1, rs2) off -> Branch (c, rs1, rs2, 2 * off))
          cond (Gen.pair reg reg)
          (Gen.int_range (-2048) 2047);
        Gen.map2 (fun rd off -> Jal (rd, 2 * off)) reg
          (Gen.int_range (-(1 lsl 19)) ((1 lsl 19) - 1));
        Gen.map3 (fun rd rs1 off -> Jalr (rd, rs1, off)) reg reg imm12;
        Gen.return Ecall;
        Gen.return Fence;
        Gen.map (fun rd -> Rdcycle rd) reg;
        Gen.map (fun rs1 -> Cflush rs1) reg;
      ]
  in
  make ~print:to_string gen

let roundtrip_prop =
  QCheck.Test.make ~count:2000 ~name:"decode (encode i) = i" arb_insn
    (fun insn ->
      Gb_riscv.Decode.decode (Gb_riscv.Encode.encode insn) = insn)

let word_in_range_prop =
  QCheck.Test.make ~count:2000 ~name:"encoded word fits in 32 bits" arb_insn
    (fun insn ->
      let w = Gb_riscv.Encode.encode insn in
      w >= 0 && w < 1 lsl 32)

let run_items ?(mem_size = 1 lsl 16) items =
  let program = Gb_riscv.Asm.assemble items in
  let mem = Gb_riscv.Mem.create ~size:mem_size in
  Gb_riscv.Asm.load mem program;
  let interp = Gb_riscv.Interp.create ~mem ~pc:program.Gb_riscv.Asm.entry () in
  let code = Gb_riscv.Interp.run interp in
  (code, interp)

let exit_with items = fst (run_items items)

let asm_exit code =
  let open Gb_riscv in
  [ Asm.Li (Reg.a0, Int64.of_int code); Asm.Li (Reg.a7, 93L); Asm.Insn Insn.Ecall ]

let sum_loop () =
  (* sum of 1..10 computed with a loop: exits with 55 *)
  let open Gb_riscv in
  let open Gb_riscv.Insn in
  let items =
    [
      Asm.Li (Reg.t0, 0L) (* acc *);
      Asm.Li (Reg.t1, 1L) (* i *);
      Asm.Li (Reg.t2, 10L);
      Asm.Label "loop";
      Asm.Insn (Op (ADD, Reg.t0, Reg.t0, Reg.t1));
      Asm.Insn (Op_imm (ADDI, Reg.t1, Reg.t1, 1));
      Asm.Branch_to (BGE, Reg.t2, Reg.t1, "loop");
      Asm.Insn (Op (ADD, Reg.a0, Reg.t0, Reg.zero));
      Asm.Li (Reg.a7, 93L);
      Asm.Insn Ecall;
    ]
  in
  Alcotest.(check int) "sum 1..10" 55 (exit_with items)

let memory_roundtrip () =
  let open Gb_riscv in
  let open Gb_riscv.Insn in
  (* store a 64-bit constant, reload a byte of it *)
  let items =
    [
      Asm.Jal_to (Reg.zero, "start");
      Asm.Label "buf";
      Asm.Dword [ 0L ];
      Asm.Label "start";
      Asm.La (Reg.t0, "buf");
      Asm.Li (Reg.t1, 0x1122334455667788L |> Int64.logand 0x7FFFFFFFL);
      Asm.Insn (Store (D, Reg.t1, Reg.t0, 0));
      Asm.Insn (Load (B, true, Reg.a0, Reg.t0, 1));
      Asm.Li (Reg.a7, 93L);
      Asm.Insn Ecall;
    ]
  in
  (* low 32 bits of the masked constant are 0x55667788; byte 1 is 0x77 *)
  Alcotest.(check int) "byte extract" 0x77 (exit_with items)

let check_alu name expected op a b =
  let got = Gb_riscv.Interp.alu_rr op a b in
  Alcotest.(check int64) name expected got

let arithmetic_edge_cases () =
  let open Gb_riscv.Insn in
  check_alu "div by zero" (-1L) DIV 42L 0L;
  check_alu "rem by zero" 42L REM 42L 0L;
  check_alu "div overflow" Int64.min_int DIV Int64.min_int (-1L);
  check_alu "rem overflow" 0L REM Int64.min_int (-1L);
  check_alu "divu by zero" (-1L) DIVU 42L 0L;
  check_alu "mulhu max" 0xFFFFFFFFFFFFFFFEL MULHU (-1L) (-1L);
  check_alu "mulh -1 -1" 0L MULH (-1L) (-1L);
  check_alu "mulh min min" 0x4000000000000000L MULH Int64.min_int Int64.min_int;
  check_alu "mulhsu -1 max-u" (-1L) MULHSU (-1L) (-1L);
  check_alu "sltu" 1L SLTU 1L (-1L);
  check_alu "slt" 0L SLT 1L (-1L);
  check_alu "sraw" (-1L) SRAW 0x80000000L 31L;
  check_alu "srlw" 1L SRLW 0x80000000L 31L;
  check_alu "addw wrap" Int64.min_int MUL 2L 0x4000000000000000L;
  check_alu "divw by zero" (-1L) DIVW 5L 0L;
  check_alu "remuw" 3L REMUW 7L 4L

let mulhu_reference_prop =
  (* mulhu agrees with schoolbook multiplication through 32-bit halves
     recombined differently *)
  let arb = QCheck.(pair int64 int64) in
  QCheck.Test.make ~count:1000 ~name:"mulhu matches shifted products" arb
    (fun (a, b) ->
      let full_low = Int64.mul a b in
      let h = Gb_riscv.Interp.mulhu a b in
      (* (h, full_low) must be the exact 128-bit unsigned product: verify via
         the identity a*b = h*2^64 + low by recomputing low from h-free
         32-bit pieces. *)
      let open Int64 in
      let mask32 = 0xFFFFFFFFL in
      let a0 = logand a mask32 and a1 = shift_right_logical a 32 in
      let b0 = logand b mask32 and b1 = shift_right_logical b 32 in
      let low =
        add (mul a0 b0)
          (shift_left (add (mul a0 b1) (mul a1 b0)) 32)
      in
      equal low full_low
      &&
      (* h is deterministic and symmetric *)
      equal h (Gb_riscv.Interp.mulhu b a))

let rdcycle_monotonic () =
  let open Gb_riscv in
  let open Gb_riscv.Insn in
  let items =
    [
      Asm.Insn (Rdcycle Reg.t0);
      Asm.Insn (Op_imm (ADDI, Reg.t1, Reg.zero, 0));
      Asm.Insn (Rdcycle Reg.t1);
      Asm.Insn (Op (SUB, Reg.a0, Reg.t1, Reg.t0));
      Asm.Li (Reg.a7, 93L);
      Asm.Insn Ecall;
    ]
  in
  let delta = exit_with items in
  Alcotest.(check bool) "cycle counter advanced" true (delta >= 2)

let output_ecall () =
  let open Gb_riscv in
  let open Gb_riscv.Insn in
  let items =
    [
      Asm.Li (Reg.a0, 72L) (* 'H' *);
      Asm.Li (Reg.a7, 64L);
      Asm.Insn Ecall;
      Asm.Li (Reg.a0, 105L) (* 'i' *);
      Asm.Insn Ecall;
    ]
    @ asm_exit 0
  in
  let _, interp = run_items items in
  Alcotest.(check string) "output" "Hi" (Buffer.contents interp.Interp.output)

let label_addresses () =
  let open Gb_riscv in
  let items =
    [
      Asm.Label "a";
      Asm.Insn Insn.Fence;
      Asm.Dbyte [ 1 ];
      Asm.Label "b";
      Asm.Dword [ 7L ];
      Asm.Label "c";
      Asm.Insn Insn.Ecall;
    ]
  in
  let p = Asm.assemble ~base:0x2000 items in
  Alcotest.(check int) "a" 0x2000 (Asm.symbol p "a");
  (* byte at 0x2004, dword aligns to 0x2008 *)
  Alcotest.(check int) "b" 0x2008 (Asm.symbol p "b");
  Alcotest.(check int) "c" 0x2010 (Asm.symbol p "c")

let asm_errors () =
  let open Gb_riscv in
  Alcotest.check_raises "undefined label"
    (Asm.Error "undefined label nowhere") (fun () ->
      ignore (Asm.assemble [ Asm.Jal_to (0, "nowhere") ]));
  Alcotest.check_raises "duplicate label" (Asm.Error "duplicate label x")
    (fun () ->
      ignore
        (Asm.assemble [ Asm.Label "x"; Asm.Insn Insn.Fence; Asm.Label "x" ]));
  (* conditional branches have a +-4 KiB range *)
  let far_branch =
    [ Asm.Branch_to (Insn.BEQ, 0, 0, "far") ]
    @ List.init 2000 (fun _ -> Asm.Insn Insn.Fence)
    @ [ Asm.Label "far"; Asm.Insn Insn.Ecall ]
  in
  (match Asm.assemble far_branch with
  | exception Asm.Error message ->
    Alcotest.(check bool) "range error mentions the label" true
      (String.length message > 0)
  | _ -> Alcotest.fail "expected a branch range error");
  (* li only accepts 32-bit constants *)
  Alcotest.check_raises "li out of range"
    (Asm.Error "li: constant 4294967296 does not fit in 32 bits") (fun () ->
      ignore (Asm.assemble [ Asm.Li (5, 0x1_0000_0000L) ]))

let li_values_prop =
  (* li materialises arbitrary 32-bit constants exactly *)
  let arb = QCheck.(map Int64.of_int32 int32) in
  QCheck.Test.make ~count:300 ~name:"li materialises int32 constants" arb
    (fun v ->
      let open Gb_riscv in
      let items =
        [ Asm.Li (Reg.t0, v);
          Asm.Insn (Insn.Store (Insn.D, Reg.t0, Reg.sp, 0));
        ]
        @ asm_exit 0
      in
      let _, interp = run_items items in
      let sp = Int64.to_int interp.Interp.regs.(Reg.sp) in
      Int64.equal v (Mem.load interp.Interp.mem ~addr:sp ~size:8))

let fault_on_bad_access () =
  let open Gb_riscv in
  let open Gb_riscv.Insn in
  let items =
    [ Asm.Li (Reg.t0, -8L); Asm.Insn (Load (D, false, Reg.a0, Reg.t0, 0)) ]
    @ asm_exit 0
  in
  let program = Asm.assemble items in
  let mem = Mem.create ~size:(1 lsl 16) in
  Asm.load mem program;
  let interp = Interp.create ~mem ~pc:program.Asm.entry () in
  Alcotest.check_raises "fault" (Mem.Fault (-8)) (fun () ->
      ignore (Interp.run interp))

let disasm_roundtrip_prop =
  (* every encodable instruction disassembles back to its own rendering *)
  QCheck.Test.make ~count:500 ~name:"disassembly matches pretty-printer"
    arb_insn (fun insn ->
      let mem = Gb_riscv.Mem.create ~size:64 in
      Gb_riscv.Mem.store mem ~addr:0 ~size:4
        (Int64.of_int (Gb_riscv.Encode.encode insn));
      match Gb_riscv.Disasm.disassemble mem ~addr:0 ~len:4 with
      | [ line ] -> line.Gb_riscv.Disasm.text = Gb_riscv.Insn.to_string insn
      | _ -> false)

let disasm_listing () =
  let open Gb_riscv in
  let program =
    Asm.assemble
      [
        Asm.Label "entry";
        Asm.Insn (Insn.Op_imm (Insn.ADDI, Reg.t0, Reg.zero, 1));
        Asm.Label "loop";
        Asm.Branch_to (Insn.BNE, Reg.t0, Reg.zero, "loop");
        Asm.Insn Insn.Ecall;
      ]
  in
  let listing = Disasm.dump program in
  Alcotest.(check bool) "labels rendered" true
    (String.length listing > 0
    && String.index_opt listing ':' <> None
    &&
    let contains needle =
      let n = String.length needle and h = String.length listing in
      let rec go i = i + n <= h && (String.sub listing i n = needle || go (i + 1)) in
      go 0
    in
    contains "entry:" && contains "loop:" && contains "-> loop")

let disasm_illegal_words () =
  let mem = Gb_riscv.Mem.create ~size:64 in
  Gb_riscv.Mem.store mem ~addr:0 ~size:4 0xFFFFFFFFL;
  match Gb_riscv.Disasm.disassemble mem ~addr:0 ~len:4 with
  | [ line ] ->
    Alcotest.(check string) "raw word" ".word 0xffffffff"
      line.Gb_riscv.Disasm.text
  | _ -> Alcotest.fail "expected one line"

(* Regression: a misaligned or out-of-range pc must raise a clean guest
   Trap from fetch, not an array-bounds or memory exception (pre-fix, a
   jalr to an odd-but-4-unaligned or negative target escaped as
   Invalid_argument from the decode cache). *)
let fetch_fault_clean_trap () =
  let mem = Gb_riscv.Mem.create ~size:4096 in
  let expect_fetch_trap what pc =
    let t = Gb_riscv.Interp.create ~mem ~pc () in
    match Gb_riscv.Interp.step t with
    | _ -> Alcotest.failf "%s: expected a trap at pc 0x%x" what pc
    | exception Gb_riscv.Interp.Trap m ->
      Alcotest.(check bool)
        (what ^ ": trap names the fetch fault")
        true
        (String.length m >= 23
        && String.sub m 0 23 = "instruction fetch fault")
    | exception e ->
      Alcotest.failf "%s: expected Trap, got %s" what (Printexc.to_string e)
  in
  expect_fetch_trap "misaligned" 0x1002;
  expect_fetch_trap "past end of memory" 8192;
  expect_fetch_trap "negative" (-4);
  expect_fetch_trap "misaligned and negative" (-3)

(* Regression: the initial stack pointer convention lives in exactly one
   place. The self-allocated register file uses it, and create never
   mutates a caller-supplied file (sp may be live scratch state when an
   interpreter is re-created over a shared file mid-computation). *)
let default_sp_convention () =
  let mem = Gb_riscv.Mem.create ~size:4096 in
  Alcotest.(check int64) "16 bytes below top" (Int64.of_int (4096 - 16))
    (Gb_riscv.Interp.default_sp mem);
  let t = Gb_riscv.Interp.create ~mem ~pc:0 () in
  Alcotest.(check int64) "fresh file gets the convention"
    (Gb_riscv.Interp.default_sp mem)
    t.Gb_riscv.Interp.regs.(Gb_riscv.Reg.sp);
  let shared = Array.make 32 0L in
  shared.(Gb_riscv.Reg.sp) <- 0L (* live zero, not "unset" *);
  let t2 = Gb_riscv.Interp.create ~regs:shared ~mem ~pc:0 () in
  Alcotest.(check int64) "caller-supplied file is never mutated" 0L
    t2.Gb_riscv.Interp.regs.(Gb_riscv.Reg.sp)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "riscv"
    [
      ( "encoding",
        [
          Alcotest.test_case "golden words" `Quick golden_encodings;
          qt roundtrip_prop;
          qt word_in_range_prop;
        ] );
      ( "interp",
        [
          Alcotest.test_case "sum loop" `Quick sum_loop;
          Alcotest.test_case "memory roundtrip" `Quick memory_roundtrip;
          Alcotest.test_case "arithmetic edge cases" `Quick
            arithmetic_edge_cases;
          Alcotest.test_case "rdcycle monotonic" `Quick rdcycle_monotonic;
          Alcotest.test_case "output ecall" `Quick output_ecall;
          Alcotest.test_case "fault on bad access" `Quick fault_on_bad_access;
          Alcotest.test_case "fetch fault is a clean trap" `Quick
            fetch_fault_clean_trap;
          Alcotest.test_case "default sp convention" `Quick
            default_sp_convention;
          qt mulhu_reference_prop;
        ] );
      ( "asm",
        [
          Alcotest.test_case "label addresses" `Quick label_addresses;
          Alcotest.test_case "errors" `Quick asm_errors;
          qt li_values_prop;
        ] );
      ( "disasm",
        [
          qt disasm_roundtrip_prop;
          Alcotest.test_case "listing with labels" `Quick disasm_listing;
          Alcotest.test_case "illegal words" `Quick disasm_illegal_words;
        ] );
    ]
