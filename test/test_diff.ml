(* Differential oracle + fault-injection harness. *)

let polybench name =
  match Gb_workloads.Polybench.by_name name with
  | Some k -> k.Gb_workloads.Polybench.program
  | None -> Alcotest.failf "unknown polybench kernel %S" name

let check_clean what (r : Gb_diff.Oracle.report) =
  (match r.divergence with
  | Some d ->
    Alcotest.failf "%s: unexpected divergence: %s" what
      (Format.asprintf "%a" Gb_diff.Oracle.pp_divergence d)
  | None -> ());
  (match r.trap with
  | Some m -> Alcotest.failf "%s: DBT run trapped: %s" what m
  | None -> ());
  Alcotest.(check bool) (what ^ " clean") true (Gb_diff.Oracle.clean r)

(* --- clean differential runs ------------------------------------------ *)

let test_clean_kernel () =
  let r = Gb_diff.Oracle.run_kernel (polybench "gemm") in
  check_clean "matmul" r;
  Alcotest.(check bool) "synced at trace exits" true (r.syncs > 0);
  Alcotest.(check bool) "reference executed" true
    (Int64.compare r.ref_insns 0L > 0)

let test_clean_all_modes () =
  List.iter
    (fun mode ->
      let program =
        Gb_attack.Spectre_v1.program ~secret:"DIFF!" () |> fun ast ->
        Gb_kernelc.Compile.assemble ast
      in
      let config = Gb_system.Processor.config_for mode in
      let r = Gb_diff.Oracle.run ~config program in
      check_clean
        (Printf.sprintf "spectre-v1 under %s" (Gb_core.Mitigation.mode_name mode))
        r)
    Gb_core.Mitigation.all_modes

let test_divergence_counter () =
  let obs = Gb_obs.Sink.create () in
  let r = Gb_diff.Oracle.run_kernel ~obs (polybench "atax") in
  check_clean "atax" r;
  match Gb_obs.Sink.metrics obs with
  | None -> Alcotest.fail "active sink has metrics"
  | Some m ->
    Alcotest.(check int) "diff.divergences = 0" 0
      (Gb_obs.Metrics.counter_value m "diff.divergences")

(* --- fault injection: every recoverable kind recovers ------------------ *)

let test_inject_recovers kind () =
  let spec = [ (kind, Gb_system.Inject.default_rate kind) ] in
  let r =
    Gb_diff.Oracle.run_kernel ~seed:7L ~inject:spec (polybench "gemm")
  in
  check_clean (Gb_system.Inject.kind_name kind) r;
  Alcotest.(check int)
    (Gb_system.Inject.kind_name kind ^ " recovered = injected")
    r.injected r.recovered

let test_inject_fires () =
  (* at a forced rate the harness must actually inject something, or the
     recovery gates are vacuous *)
  let r =
    Gb_diff.Oracle.run_kernel ~seed:3L
      ~inject:[ (Gb_system.Inject.Translate_fail, 1.0) ]
      (polybench "gemm")
  in
  check_clean "translate:1.0" r;
  Alcotest.(check bool) "faults were injected" true (r.injected > 0)

let test_inject_combined () =
  let spec =
    List.filter_map
      (fun k ->
        if Gb_system.Inject.recoverable k then
          Some (k, Gb_system.Inject.default_rate k)
        else None)
      Gb_system.Inject.all_kinds
  in
  let r = Gb_diff.Oracle.run_kernel ~seed:11L ~inject:spec (polybench "mvt") in
  check_clean "all recoverable kinds" r

(* --- sensitivity control: mcb-suppress must be DETECTED ---------------- *)

let test_suppress_detected () =
  (* Suppressing real MCB conflicts commits stale speculative values; the
     oracle proves its own sensitivity by catching that as a divergence.
     Spectre v4 under the unsafe mode genuinely misorders speculated
     loads against stores, so suppressed conflicts corrupt real state. *)
  let program = Gb_attack.Spectre_v4.program ~secret:"DIFF!" () in
  let config = Gb_system.Processor.config_for Gb_core.Mitigation.Unsafe in
  let detected = ref false in
  (try
     for seed = 1 to 8 do
       let r =
         Gb_diff.Oracle.run_kernel ~config ~seed:(Int64.of_int seed)
           ~inject:[ (Gb_system.Inject.Mcb_suppress, 1.0) ]
           program
       in
       if r.injected > 0 && not (Gb_diff.Oracle.clean r) then begin
         detected := true;
         raise Exit
       end
     done
   with Exit -> ());
  Alcotest.(check bool) "suppressed conflicts caught as divergence" true
    !detected

(* --- qcheck: random kernels x random fault schedules -------------------- *)

let kernel_gen =
  (* small arithmetic kernels over a few scalars and one array, with a
     loop hot enough to promote to a trace; every generated program is
     deterministic, so the two sides must agree exactly *)
  let open QCheck.Gen in
  let open Gb_kernelc.Ast in
  let c n = Const (Int64.of_int n) in
  let var = oneofl [ "a"; "b"; "c"; "d" ] in
  let leaf =
    oneof
      [ map (fun n -> c (n land 0xff)) small_nat; map (fun v -> Var v) var ]
  in
  let expr =
    sized_size (int_range 0 3)
    @@ fix (fun self n ->
           if n = 0 then leaf
           else
             oneof
               [
                 leaf;
                 map3
                   (fun op l r -> Bin (op, l, r))
                   (oneofl [ Add; Sub; Mul; And; Or; Xor ])
                   (self (n / 2)) (self (n / 2));
               ])
  in
  let stmt =
    oneof
      [
        map2 (fun v e -> Set (v, e)) var expr;
        map2
          (fun i e -> Arr_store ("buf", [ c (i land 7) ], e))
          small_nat expr;
        map2
          (fun e t -> If (Bin (Lt, Var "i", e), t, [ Set ("d", c 9) ]))
          expr
          (map (fun e -> [ Set ("b", e) ]) expr);
      ]
  in
  let body = list_size (int_range 1 5) stmt in
  map
    (fun stmts ->
      {
        arrays = [ { a_name = "buf"; a_ty = I64; a_dims = [ 8 ]; a_init = Zero } ];
        body =
          [
            Let ("a", c 1);
            Let ("b", c 2);
            Let ("c", c 3);
            Let ("d", c 4);
            For
              ( "i", c 0, c 64,
                stmts
                @ [
                    Set ("a", Bin (Add, Var "a", Var "i"));
                    Arr_store ("buf", [ Bin (And, Var "i", c 7) ], Var "a");
                  ] );
            Set ("a", Bin (Add, Var "a", Arr ("buf", [ c 3 ])));
            Set
              ( "a",
                Bin
                  ( Add,
                    Var "a",
                    Bin (Add, Var "b", Bin (Add, Var "c", Var "d")) ) );
          ];
        result = Bin (And, Var "a", c 255);
      })
    body

let fault_schedule_gen =
  let open QCheck.Gen in
  let recoverable =
    List.filter Gb_system.Inject.recoverable Gb_system.Inject.all_kinds
  in
  let one =
    map2
      (fun k r -> (k, float_of_int (1 + (r land 15)) /. 64.))
      (oneofl recoverable) small_nat
  in
  list_size (int_range 0 3) one

let prop_random_diff =
  QCheck.Test.make ~count:30
    ~name:"random kernels x random fault schedules: zero divergences"
    (QCheck.make
       QCheck.Gen.(triple kernel_gen fault_schedule_gen (map Int64.of_int small_nat)))
    (fun (kernel, schedule, seed) ->
      List.iter
        (fun mode ->
          let config = Gb_system.Processor.config_for mode in
          let inject = if schedule = [] then None else Some schedule in
          let r = Gb_diff.Oracle.run_kernel ~config ?inject ~seed kernel in
          if not (Gb_diff.Oracle.clean r) then
            QCheck.Test.fail_reportf
              "mode %s, schedule %s, seed %Ld: %s (injected %d, recovered %d)"
              (Gb_core.Mitigation.mode_name mode)
              (match inject with
              | Some s -> Gb_system.Inject.spec_name s
              | None -> "none")
              seed
              (match r.divergence with
              | Some d -> Format.asprintf "%a" Gb_diff.Oracle.pp_divergence d
              | None ->
                Option.fold ~none:"unclean" ~some:(( ^ ) "trap: ") r.trap)
              r.injected r.recovered)
        Gb_core.Mitigation.all_modes;
      true)

(* --- matrix ------------------------------------------------------------ *)

let test_matrix_smoke () =
  let m =
    Gb_diff.Matrix.run ~seed:5L
      ~attacks:[ "spectre-v1" ]
      ~kernels:[ "gemm" ]
      ~injects:[ None; Some [ (Gb_system.Inject.Evict, 0.05) ] ]
      ()
  in
  Alcotest.(check bool) "matrix rows" true (List.length m.Gb_diff.Matrix.rows > 0);
  Alcotest.(check int) "matrix divergences" 0 m.Gb_diff.Matrix.divergences;
  Alcotest.(check bool) "sensitivity control detected" true
    m.Gb_diff.Matrix.sensitivity_detected;
  (* JSON renders without raising *)
  ignore (Gb_util.Json.to_string (Gb_diff.Matrix.to_json m))

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_random_diff ] in
  Alcotest.run "diff"
    [
      ( "oracle",
        [
          Alcotest.test_case "clean kernel run" `Quick test_clean_kernel;
          Alcotest.test_case "spectre-v1 x all modes" `Quick test_clean_all_modes;
          Alcotest.test_case "divergence counter stays 0" `Quick
            test_divergence_counter;
        ] );
      ( "inject",
        Alcotest.test_case "injection fires" `Quick test_inject_fires
        :: Alcotest.test_case "combined kinds recover" `Quick test_inject_combined
        :: List.filter_map
             (fun k ->
               if Gb_system.Inject.recoverable k then
                 Some
                   (Alcotest.test_case
                      ("recovers from " ^ Gb_system.Inject.kind_name k)
                      `Quick (test_inject_recovers k))
               else None)
             Gb_system.Inject.all_kinds );
      ( "sensitivity",
        [
          Alcotest.test_case "mcb-suppress is detected" `Quick
            test_suppress_detected;
        ] );
      ("matrix", [ Alcotest.test_case "smoke" `Quick test_matrix_smoke ]);
      ("property", qsuite);
    ]
