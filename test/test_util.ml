(* Tests for the utility library: deterministic RNG, statistics, table
   rendering. *)

let rng_deterministic () =
  let a = Gb_util.Rng.create 42L in
  let b = Gb_util.Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Gb_util.Rng.next a) (Gb_util.Rng.next b)
  done

let rng_zero_seed () =
  let r = Gb_util.Rng.create 0L in
  Alcotest.(check bool) "zero seed produces values" true
    (not (Int64.equal (Gb_util.Rng.next r) 0L))

let rng_bounds_prop =
  QCheck.Test.make ~count:500 ~name:"Rng.int stays in bounds"
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Gb_util.Rng.create seed in
      let v = Gb_util.Rng.int r bound in
      v >= 0 && v < bound)

let rng_choose () =
  let r = Gb_util.Rng.create 7L in
  let arr = [| 1; 2; 3 |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "choose picks a member" true
      (Array.mem (Gb_util.Rng.choose r arr) arr)
  done

let stats_basics () =
  Alcotest.(check (float 1e-9)) "mean" 2. (Gb_util.Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0. (Gb_util.Stats.mean []);
  Alcotest.(check (float 1e-9)) "geomean" 2. (Gb_util.Stats.geomean [ 1.; 4. ]);
  Alcotest.(check (float 1e-9)) "geomean empty" 1. (Gb_util.Stats.geomean []);
  Alcotest.(check (float 1e-9)) "median odd" 2. (Gb_util.Stats.median [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "median even" 2.5
    (Gb_util.Stats.median [ 4.; 1.; 2.; 3. ]);
  let lo, hi = Gb_util.Stats.min_max [ 3.; 1.; 2. ] in
  Alcotest.(check (float 1e-9)) "min" 1. lo;
  Alcotest.(check (float 1e-9)) "max" 3. hi

let percentile_prop =
  QCheck.Test.make ~count:300 ~name:"percentile within range"
    QCheck.(pair (float_range 0. 1.)
              (list_of_size (Gen.int_range 1 50) (float_range 0. 100.)))
    (fun (p, xs) ->
      let v = Gb_util.Stats.percentile p xs in
      let lo, hi = Gb_util.Stats.min_max xs in
      v >= lo && v <= hi)

let percentile_nearest_rank () =
  let xs = [ 10.; 20.; 30.; 40. ] in
  let p q = Gb_util.Stats.percentile q xs in
  Alcotest.(check (float 1e-9)) "p0 is the minimum" 10. (p 0.);
  Alcotest.(check (float 1e-9)) "p1 is the maximum" 40. (p 1.);
  (* nearest-rank: ceil(0.5 * 4) = 2nd smallest *)
  Alcotest.(check (float 1e-9)) "median rank" 20. (p 0.5);
  Alcotest.(check (float 1e-9)) "p0.51 rounds up" 30. (p 0.51);
  Alcotest.(check (float 1e-9)) "unsorted input" 20.
    (Gb_util.Stats.percentile 0.5 [ 40.; 10.; 30.; 20. ])

let percentile_clamps () =
  let xs = [ 1.; 2.; 3. ] in
  let p q = Gb_util.Stats.percentile q xs in
  Alcotest.(check (float 1e-9)) "below range clamps to min" 1. (p (-0.5));
  Alcotest.(check (float 1e-9)) "above range clamps to max" 3. (p 1.5);
  Alcotest.(check (float 1e-9)) "far below" 1. (p neg_infinity);
  Alcotest.(check (float 1e-9)) "far above" 3. (p infinity);
  Alcotest.(check (float 1e-9)) "nan treated as p0" 1. (p Float.nan);
  Alcotest.(check (float 1e-9)) "empty list" 0.
    (Gb_util.Stats.percentile 0.5 [])

let table_render () =
  let s =
    Gb_util.Table.render ~header:[ "name"; "value" ]
      ~rows:[ [ "a"; "1" ]; [ "long-name"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "header + separator + 2 rows + trailing" 5
    (List.length lines);
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  Alcotest.(check bool) "uniform width" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let table_pads_short_rows () =
  let s = Gb_util.Table.render ~header:[ "a"; "b"; "c" ] ~rows:[ [ "x" ] ] in
  Alcotest.(check bool) "renders without exception" true (String.length s > 0)

let json_encoding () =
  let module J = Gb_util.Json in
  Alcotest.(check string) "scalar" "42" (J.to_string (J.Int 42));
  Alcotest.(check string) "null" "null" (J.to_string J.Null);
  Alcotest.(check string) "bool" "true" (J.to_string (J.Bool true));
  Alcotest.(check string) "float" "1.5" (J.to_string (J.Float 1.5));
  Alcotest.(check string) "integral float" "2.0" (J.to_string (J.Float 2.));
  Alcotest.(check string) "string escaping" {|"a\"b\\c\nd"|}
    (J.to_string (J.String "a\"b\\c\nd"));
  Alcotest.(check string) "control chars" "\"\\u0001\""
    (J.to_string (J.String "\001"));
  Alcotest.(check string) "empty containers" {|[{},[]]|}
    (J.to_string (J.List [ J.Obj []; J.List [] ]));
  Alcotest.(check string) "object" {|{"a":1,"b":[2,3]}|}
    (J.to_string (J.Obj [ ("a", J.Int 1); ("b", J.List [ J.Int 2; J.Int 3 ]) ]))

let json_pretty_roundtrip () =
  let module J = Gb_util.Json in
  let v = J.Obj [ ("xs", J.List [ J.Int 1; J.String "two" ]); ("ok", J.Bool false) ] in
  let pretty = J.to_string_pretty v in
  (* pretty form contains the same tokens, plus layout *)
  Alcotest.(check bool) "has newlines" true (String.contains pretty '\n');
  let strip s =
    String.to_seq s
    |> Seq.filter (fun c -> c <> ' ' && c <> '\n')
    |> String.of_seq
  in
  Alcotest.(check string) "same content" (J.to_string v) (strip pretty)

let json_parsing () =
  let module J = Gb_util.Json in
  let ok s = match J.of_string s with Ok v -> v | Error e -> Alcotest.failf "parse %S: %s" s e in
  Alcotest.(check bool) "int" true (ok "42" = J.Int 42);
  Alcotest.(check bool) "negative int" true (ok "-7" = J.Int (-7));
  Alcotest.(check bool) "float" true (ok "1.5" = J.Float 1.5);
  Alcotest.(check bool) "exponent is a float" true (ok "1e2" = J.Float 100.);
  Alcotest.(check bool) "null" true (ok "null" = J.Null);
  Alcotest.(check bool) "bools" true (ok "[true,false]" = J.List [ J.Bool true; J.Bool false ]);
  Alcotest.(check bool) "whitespace" true (ok " { \"a\" : 1 } " = J.Obj [ ("a", J.Int 1) ]);
  Alcotest.(check bool) "nested" true
    (ok {|{"a":[1,{"b":null}],"c":"x"}|}
    = J.Obj
        [
          ("a", J.List [ J.Int 1; J.Obj [ ("b", J.Null) ] ]);
          ("c", J.String "x");
        ]);
  Alcotest.(check bool) "string escapes" true
    (ok {|"a\"b\\c\ndA"|} = J.String "a\"b\\c\ndA");
  let err s = match J.of_string s with Ok _ -> false | Error _ -> true in
  Alcotest.(check bool) "empty input" true (err "");
  Alcotest.(check bool) "trailing garbage" true (err "1 x");
  Alcotest.(check bool) "unterminated string" true (err {|"abc|});
  Alcotest.(check bool) "unterminated array" true (err "[1,2");
  Alcotest.(check bool) "bad literal" true (err "nul")

(* Regression: \uXXXX escapes above the BMP arrive as UTF-16 surrogate
   pairs and must decode to one 4-byte UTF-8 scalar (pre-fix, each half
   was emitted as a bogus 3-byte sequence); a lone surrogate is not a
   scalar value and must be rejected, not silently encoded. *)
let json_surrogate_pairs () =
  let module J = Gb_util.Json in
  let ok s =
    match J.of_string s with
    | Ok v -> v
    | Error e -> Alcotest.failf "parse %S: %s" s e
  in
  (* U+1F600 (grinning face) = f0 9f 98 80 *)
  Alcotest.(check bool) "surrogate pair decodes to one scalar" true
    (ok {|"\uD83D\uDE00"|} = J.String "\xf0\x9f\x98\x80");
  (* U+10000, the first non-BMP scalar *)
  Alcotest.(check bool) "lowest astral scalar" true
    (ok {|"\uD800\uDC00"|} = J.String "\xf0\x90\x80\x80");
  (* U+10FFFF, the last one *)
  Alcotest.(check bool) "highest scalar" true
    (ok {|"\uDBFF\uDFFF"|} = J.String "\xf4\x8f\xbf\xbf");
  (* BMP escapes still work around a pair *)
  Alcotest.(check bool) "pair amid BMP escapes" true
    (ok {|"a\u00E9\uD83D\uDE00z"|}
    = J.String "a\xc3\xa9\xf0\x9f\x98\x80z");
  (* a non-BMP scalar round-trips through the encoder's escaping *)
  let v = J.String "\xf0\x9f\x98\x80" in
  Alcotest.(check bool) "encoder round-trip" true
    (J.of_string (J.to_string v) = Ok v);
  let err s = match J.of_string s with Ok _ -> false | Error _ -> true in
  Alcotest.(check bool) "lone high surrogate" true (err {|"\uD83D"|});
  Alcotest.(check bool) "high surrogate then text" true (err {|"\uD83Dab"|});
  Alcotest.(check bool) "high surrogate then BMP escape" true
    (err {|"\uD83DA"|});
  Alcotest.(check bool) "lone low surrogate" true (err {|"\uDE00"|});
  Alcotest.(check bool) "two high surrogates" true (err {|"\uD83D\uD83D"|})

let json_parse_roundtrip_prop =
  (* any value we can encode must parse back to itself *)
  let module J = Gb_util.Json in
  let leaf =
    QCheck.Gen.oneof
      [
        QCheck.Gen.return J.Null;
        QCheck.Gen.map (fun b -> J.Bool b) QCheck.Gen.bool;
        QCheck.Gen.map (fun i -> J.Int i) QCheck.Gen.small_signed_int;
        QCheck.Gen.map
          (fun f -> J.Float (float_of_int f /. 8.))
          QCheck.Gen.small_signed_int;
        QCheck.Gen.map (fun s -> J.String s) QCheck.Gen.string_printable;
      ]
  in
  let value =
    QCheck.Gen.sized (fun n ->
        QCheck.Gen.fix
          (fun self n ->
            if n = 0 then leaf
            else
              QCheck.Gen.oneof
                [
                  leaf;
                  QCheck.Gen.map
                    (fun xs -> J.List xs)
                    (QCheck.Gen.list_size (QCheck.Gen.int_range 0 4)
                       (self (n / 2)));
                  QCheck.Gen.map
                    (fun xs -> J.Obj xs)
                    (QCheck.Gen.list_size (QCheck.Gen.int_range 0 4)
                       (QCheck.Gen.pair QCheck.Gen.string_printable
                          (self (n / 2))));
                ])
          (min n 8))
  in
  QCheck.Test.make ~count:300 ~name:"Json.of_string inverts to_string"
    (QCheck.make value)
    (fun v -> J.of_string (J.to_string v) = Ok v)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          Alcotest.test_case "zero seed" `Quick rng_zero_seed;
          Alcotest.test_case "choose" `Quick rng_choose;
          qt rng_bounds_prop;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick stats_basics;
          Alcotest.test_case "percentile nearest-rank" `Quick
            percentile_nearest_rank;
          Alcotest.test_case "percentile clamps" `Quick percentile_clamps;
          qt percentile_prop;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick table_render;
          Alcotest.test_case "pads short rows" `Quick table_pads_short_rows;
        ] );
      ( "json",
        [
          Alcotest.test_case "encoding" `Quick json_encoding;
          Alcotest.test_case "pretty round-trip" `Quick json_pretty_roundtrip;
          Alcotest.test_case "parsing" `Quick json_parsing;
          Alcotest.test_case "surrogate pairs" `Quick json_surrogate_pairs;
          qt json_parse_roundtrip_prop;
        ] );
    ]
