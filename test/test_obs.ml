(* Tests for the observability library: ring-buffer wraparound, metrics
   snapshots, sink behavior and the Chrome trace_event JSON export. *)

open Gb_obs

let ring_basic () =
  let r = Ring.create 4 in
  Alcotest.(check int) "empty" 0 (Ring.length r);
  Ring.push r 1;
  Ring.push r 2;
  Alcotest.(check (list int)) "order" [ 1; 2 ] (Ring.to_list r);
  Alcotest.(check int) "no drops" 0 (Ring.dropped r)

let ring_wraparound () =
  let r = Ring.create 3 in
  List.iter (Ring.push r) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "capacity bound" 3 (Ring.length r);
  Alcotest.(check int) "pushed" 5 (Ring.pushed r);
  Alcotest.(check int) "dropped" 2 (Ring.dropped r);
  Alcotest.(check (list int)) "keeps newest, oldest first" [ 3; 4; 5 ]
    (Ring.to_list r);
  Ring.push r 6;
  Alcotest.(check (list int)) "keeps rolling" [ 4; 5; 6 ] (Ring.to_list r);
  Ring.clear r;
  Alcotest.(check (list int)) "clear" [] (Ring.to_list r)

let ring_wraparound_prop =
  QCheck.Test.make ~count:200 ~name:"ring retains the newest [cap] pushes"
    QCheck.(pair (int_range 1 16) (list_of_size (Gen.int_range 0 100) small_int))
    (fun (cap, xs) ->
      let r = Ring.create cap in
      List.iter (Ring.push r) xs;
      let n = List.length xs in
      let expected =
        List.filteri (fun i _ -> i >= n - min n cap) xs
      in
      Ring.to_list r = expected && Ring.dropped r = max 0 (n - cap))

let metrics_counters () =
  let m = Metrics.create () in
  Alcotest.(check int) "unset counter" 0 (Metrics.counter_value m "a");
  Metrics.incr m "a";
  Metrics.incr m ~by:4 "a";
  Alcotest.(check int) "accumulates" 5 (Metrics.counter_value m "a");
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Metrics.incr: counters are monotonic") (fun () ->
      Metrics.incr m ~by:(-1) "a");
  Metrics.set_gauge m "g" 2.5;
  Alcotest.(check (option (float 1e-9))) "gauge" (Some 2.5)
    (Metrics.gauge_value m "g");
  Metrics.set_gauge m "g" 7.;
  Alcotest.(check (option (float 1e-9))) "gauge overwrites" (Some 7.)
    (Metrics.gauge_value m "g")

let metrics_histogram () =
  let m = Metrics.create () in
  Alcotest.(check bool) "unset histogram" true
    (Metrics.histogram_snapshot m "h" = None);
  for i = 1 to 100 do
    Metrics.observe m "h" (float_of_int i)
  done;
  match Metrics.histogram_snapshot m "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
    Alcotest.(check int) "count" 100 s.Metrics.h_count;
    Alcotest.(check (float 1e-9)) "sum" 5050. s.Metrics.h_sum;
    Alcotest.(check (float 1e-9)) "min" 1. s.Metrics.h_min;
    Alcotest.(check (float 1e-9)) "max" 100. s.Metrics.h_max;
    Alcotest.(check (float 1e-9)) "p50 nearest-rank" 50. s.Metrics.h_p50;
    Alcotest.(check (float 1e-9)) "p99 nearest-rank" 99. s.Metrics.h_p99;
    (* log2 buckets: 1, 2, 4, ..., 128 *)
    Alcotest.(check int) "bucket count" 8 (List.length s.Metrics.h_buckets);
    let total = List.fold_left (fun acc (_, n) -> acc + n) 0 s.Metrics.h_buckets in
    Alcotest.(check int) "buckets partition samples" 100 total;
    let le, n = List.hd s.Metrics.h_buckets in
    Alcotest.(check (float 1e-9)) "first bound" 1. le;
    Alcotest.(check int) "samples <= 1" 1 n

let metrics_json_shape () =
  let m = Metrics.create () in
  Metrics.incr m "z.count";
  Metrics.observe m "lat" 3.;
  match Metrics.to_json m with
  | Gb_util.Json.Obj fields ->
    Alcotest.(check (list string)) "sections"
      [ "counters"; "gauges"; "histograms" ]
      (List.map fst fields);
    let counters = List.assoc "counters" fields in
    Alcotest.(check bool) "counter present" true
      (counters = Gb_util.Json.Obj [ ("z.count", Gb_util.Json.Int 1) ])
  | _ -> Alcotest.fail "metrics snapshot is not an object"

let sink_noop () =
  let s = Sink.noop in
  Alcotest.(check bool) "inactive" false (Sink.is_active s);
  (* all recording is a no-op and nothing is readable back *)
  Sink.incr s "c";
  Sink.observe s "h" 1.;
  Sink.event s Event.Rollback;
  Alcotest.(check int) "ran the thunk" 42 (Sink.time s "phase" (fun () -> 42));
  Alcotest.(check bool) "no metrics" true (Sink.metrics s = None);
  Alcotest.(check (list reject)) "no events" [] (Sink.events s);
  Alcotest.(check bool) "empty snapshot" true
    (Sink.metrics_json s = Gb_util.Json.Obj [])

let sink_records () =
  let s = Sink.create ~ring_capacity:8 () in
  let cycle = ref 0L in
  Sink.set_cycle_source s (fun () -> !cycle);
  cycle := 17L;
  Sink.event s ~pc:0x100 ~region:0x80 Event.Translate_start;
  Sink.incr s "translate.translations";
  Alcotest.(check int) "timer result" 7 (Sink.time s "codegen" (fun () -> 7));
  (match Sink.events s with
  | [ e ] ->
    Alcotest.(check int) "pc" 0x100 e.Event.pc;
    Alcotest.(check int) "region" 0x80 e.Event.region;
    Alcotest.(check int64) "cycle stamp" 17L e.Event.cycle
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs));
  (match Sink.metrics s with
  | Some m ->
    Alcotest.(check int) "counter visible" 1
      (Metrics.counter_value m "translate.translations")
  | None -> Alcotest.fail "active sink has metrics");
  match Sink.timer_totals s with
  | [ t ] ->
    Alcotest.(check string) "phase name" "codegen" t.Timer.t_phase;
    Alcotest.(check int) "calls" 1 t.Timer.t_calls
  | ts -> Alcotest.failf "expected 1 phase, got %d" (List.length ts)

let trace_json_shape () =
  let s = Sink.create () in
  let cycle = ref 5L in
  Sink.set_cycle_source s (fun () -> !cycle);
  Sink.event s ~pc:0x44 ~region:0x40 (Event.Mcb_conflict { addr = 0x44 });
  cycle := 9L;
  Sink.event s ~pc:0x48 ~region:0x40 Event.Rollback;
  ignore (Sink.time s "schedule" (fun () -> ()));
  let json = Sink.trace_json s in
  (* the export must be valid JSON that round-trips through our parser *)
  let reparsed =
    match Gb_util.Json.of_string (Gb_util.Json.to_string json) with
    | Ok v -> v
    | Error e -> Alcotest.failf "trace JSON does not parse: %s" e
  in
  Alcotest.(check bool) "round-trips" true (reparsed = json);
  match json with
  | Gb_util.Json.Obj fields ->
    (match List.assoc "traceEvents" fields with
    | Gb_util.Json.List events ->
      let field name = function
        | Gb_util.Json.Obj fs -> List.assoc_opt name fs
        | _ -> None
      in
      let phases =
        List.filter_map (fun e -> field "ph" e) events
      in
      (* metadata, two instants, one complete span *)
      Alcotest.(check bool) "has metadata events" true
        (List.mem (Gb_util.Json.String "M") phases);
      Alcotest.(check int) "two instants" 2
        (List.length
           (List.filter (fun p -> p = Gb_util.Json.String "i") phases));
      Alcotest.(check int) "one span" 1
        (List.length
           (List.filter (fun p -> p = Gb_util.Json.String "X") phases));
      let rollback =
        List.find
          (fun e -> field "name" e = Some (Gb_util.Json.String "rollback"))
          events
      in
      Alcotest.(check bool) "instant ts is the simulated cycle" true
        (field "ts" rollback = Some (Gb_util.Json.Int 9));
      Alcotest.(check bool) "instant tid is the region" true
        (field "tid" rollback = Some (Gb_util.Json.Int 0x40));
      let span =
        List.find (fun e -> field "ph" e = Some (Gb_util.Json.String "X")) events
      in
      Alcotest.(check bool) "span carries a duration" true
        (match field "dur" span with
        | Some (Gb_util.Json.Float _) -> true
        | _ -> false)
    | _ -> Alcotest.fail "traceEvents is not a list")
  | _ -> Alcotest.fail "trace is not an object"

let event_json () =
  let e =
    {
      Event.kind = Event.Cache_miss { addr = 64; write = true };
      pc = 64;
      region = 0;
      cycle = 3L;
    }
  in
  Alcotest.(check string) "event json"
    {|{"event":"cache_miss","pc":64,"region":0,"cycle":3,"addr":64,"write":true}|}
    (Gb_util.Json.to_string (Event.to_json e))

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "basic" `Quick ring_basic;
          Alcotest.test_case "wraparound" `Quick ring_wraparound;
          qt ring_wraparound_prop;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick metrics_counters;
          Alcotest.test_case "histogram" `Quick metrics_histogram;
          Alcotest.test_case "json shape" `Quick metrics_json_shape;
        ] );
      ( "sink",
        [
          Alcotest.test_case "noop" `Quick sink_noop;
          Alcotest.test_case "records" `Quick sink_records;
        ] );
      ( "trace export",
        [
          Alcotest.test_case "chrome shape" `Quick trace_json_shape;
          Alcotest.test_case "event json" `Quick event_json;
        ] );
    ]
