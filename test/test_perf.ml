(* Perf trajectory: manifest schema, baseline comparison, regression gate. *)

module M = Gb_perf.Manifest
module B = Gb_perf.Baseline

let mk ?(seq = 1) ?(rev = "aaaa111") ?(verdicts = []) metrics =
  M.make ~seq ~rev ~seed:1L ~env:[ ("os", "test") ]
    ~config:[ ("cc_capacity", Gb_util.Json.Int 1024) ]
    ~verdicts metrics

let check_status what expected (cmp : B.comparison) name =
  match List.find_opt (fun c -> c.B.c_name = name) cmp.B.cells with
  | None -> Alcotest.failf "%s: no cell named %S" what name
  | Some c ->
    Alcotest.(check string)
      (Printf.sprintf "%s: %s" what name)
      (B.status_name expected)
      (B.status_name c.B.c_status)

(* --- manifest schema ---------------------------------------------------- *)

let test_round_trip () =
  let m =
    mk
      ~verdicts:[ ("e1.v1.unsafe.leaked", true); ("e10.passed", false) ]
      [ ("cycles.e2.gemm.unsafe", 87120.); ("counter.trace.run", 42.) ]
  in
  match M.of_json (M.to_json m) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok m' ->
    Alcotest.(check int) "schema_version" M.current_version m'.M.schema_version;
    Alcotest.(check int) "seq" m.M.seq m'.M.seq;
    Alcotest.(check string) "rev" m.M.rev m'.M.rev;
    Alcotest.(check int64) "seed" m.M.seed m'.M.seed;
    Alcotest.(check (list (pair string string))) "env" m.M.env m'.M.env;
    Alcotest.(check (list (pair string (float 0.))))
      "metrics" m.M.metrics m'.M.metrics;
    Alcotest.(check (list (pair string bool)))
      "verdicts" m.M.verdicts m'.M.verdicts

let test_string_round_trip () =
  let m = mk [ ("cycles.x", 1.5) ] in
  match M.of_string (M.to_string m) with
  | Error e -> Alcotest.failf "string round trip failed: %s" e
  | Ok m' ->
    Alcotest.(check (float 0.))
      "metric survives printing" 1.5
      (Option.get (M.metric m' "cycles.x"))

let test_sort_dedup () =
  (* metric maps are sorted and the last binding of a duplicate wins *)
  let m = mk [ ("z", 1.); ("a", 2.); ("z", 3.) ] in
  Alcotest.(check (list (pair string (float 0.))))
    "sorted, last binding wins"
    [ ("a", 2.); ("z", 3.) ]
    m.M.metrics

let patch_version v json =
  match json with
  | Gb_util.Json.Obj fields ->
    Gb_util.Json.Obj
      (List.map
         (fun (k, x) ->
           if k = "schema_version" then (k, Gb_util.Json.Int v) else (k, x))
         fields)
  | _ -> Alcotest.fail "manifest json is an object"

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let test_schema_version_rejected () =
  let json = M.to_json (mk [ ("cycles.x", 1.) ]) in
  let reject what v =
    match M.of_json (patch_version v json) with
    | Ok _ -> Alcotest.failf "%s version accepted" what
    | Error e ->
      Alcotest.(check bool)
        (what ^ " error mentions the version")
        true
        (contains ~sub:"schema version" e)
  in
  reject "newer" (M.current_version + 1);
  reject "older" 0

let test_missing_field_rejected () =
  match
    M.of_json
      (Gb_util.Json.Obj [ ("schema_version", Gb_util.Json.Int M.current_version) ])
  with
  | Ok _ -> Alcotest.fail "manifest without sections accepted"
  | Error _ -> ()

let test_filename () =
  Alcotest.(check string) "filename" "BENCH_0042.json" (M.filename ~seq:42);
  Alcotest.(check (option int)) "inverse" (Some 42)
    (M.seq_of_filename "BENCH_0042.json");
  Alcotest.(check (option int)) "basename applies" (Some 7)
    (M.seq_of_filename "bench/trajectory/BENCH_0007.json");
  Alcotest.(check (option int)) "non-manifest" None
    (M.seq_of_filename "notes.json")

let with_temp_dir f =
  let dir = Filename.temp_file "gb_perf_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let test_file_round_trip () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir (M.filename ~seq:1) in
      let m = mk ~verdicts:[ ("e10.passed", true) ] [ ("cycles.x", 2.) ] in
      M.write path m;
      match M.read path with
      | Error e -> Alcotest.failf "read back failed: %s" e
      | Ok m' ->
        Alcotest.(check (float 0.))
          "metric" 2.
          (Option.get (M.metric m' "cycles.x"));
        Alcotest.(check (option bool)) "verdict" (Some true)
          (M.verdict m' "e10.passed"))

(* --- comparison rules --------------------------------------------------- *)

let test_rule_dispatch () =
  let check name expected =
    Alcotest.(check bool) name true (B.rule_for name = expected)
  in
  check "cycles.e2.gemm.unsafe" (B.Lower_better B.default_tol_cycles);
  check "slowdown.e2.geomean.fine-grained" (B.Lower_better B.default_tol_cycles);
  check "exits_per_1k.e8.gemm.chain" (B.Lower_better B.default_tol_cycles);
  check "audit_fn.e1.spectre-v1.fine-grained" (B.Lower_better 0.);
  check "alloc.minor_words_per_kinsn.interp" (B.Lower_better B.default_tol_alloc);
  check "alloc.minor_words_per_kinsn.pipeline.min-cut"
    (B.Lower_better B.default_tol_alloc);
  check "counter.trace.run" B.Info;
  check "faults.e10.injected" B.Info;
  check "something.else" B.Info;
  Alcotest.(check bool) "tol_cycles override" true
    (B.rule_for ~tol_cycles:0.5 "cycles.x" = B.Lower_better 0.5)

let test_identical_passes () =
  let m =
    mk
      ~verdicts:[ ("e10.passed", true) ]
      [ ("cycles.x", 100.); ("audit_fn.x", 0.); ("counter.y", 7.) ]
  in
  let cmp = B.compare ~strict:true ~baseline:m m in
  Alcotest.(check bool) "passed" true cmp.B.passed;
  Alcotest.(check int) "regressed" 0 cmp.B.regressed;
  Alcotest.(check int) "unchanged = all cells" 4 cmp.B.unchanged

let test_tolerance_boundary () =
  let baseline = mk [ ("cycles.x", 100.) ] in
  (* exactly at the tolerance: not a regression (strictly-greater gate) *)
  let at = B.compare ~baseline (mk [ ("cycles.x", 101.) ]) in
  check_status "at tolerance" B.Unchanged at "cycles.x";
  (* just past it: regression *)
  let past = B.compare ~baseline (mk [ ("cycles.x", 101.1) ]) in
  check_status "past tolerance" B.Regressed past "cycles.x";
  Alcotest.(check bool) "past tolerance fails" false past.B.passed;
  (* symmetric on the way down: within tolerance is noise, past it is a win *)
  let down = B.compare ~baseline (mk [ ("cycles.x", 99.5) ]) in
  check_status "small improvement" B.Unchanged down "cycles.x";
  let win = B.compare ~baseline (mk [ ("cycles.x", 90.) ]) in
  check_status "real improvement" B.Improved win "cycles.x";
  Alcotest.(check bool) "improvement passes" true win.B.passed

let test_zero_cycle_cells () =
  let baseline = mk [ ("cycles.zero", 0.); ("audit_fn.x", 0.) ] in
  let same = B.compare ~baseline (mk [ ("cycles.zero", 0.); ("audit_fn.x", 0.) ]) in
  check_status "0 -> 0" B.Unchanged same "cycles.zero";
  (* 0 -> positive is an infinite relative increase: always a regression *)
  let grew = B.compare ~baseline (mk [ ("cycles.zero", 5.); ("audit_fn.x", 0.) ]) in
  check_status "0 -> 5" B.Regressed grew "cycles.zero";
  (match List.find_opt (fun c -> c.B.c_name = "cycles.zero") grew.B.cells with
  | Some c -> Alcotest.(check bool) "delta is +inf" true (c.B.c_delta = infinity)
  | None -> Alcotest.fail "cell missing");
  (* audit false negatives have zero tolerance: 0 -> 1 must gate *)
  let fn = B.compare ~baseline (mk [ ("cycles.zero", 0.); ("audit_fn.x", 1.) ]) in
  check_status "audit_fn 0 -> 1" B.Regressed fn "audit_fn.x";
  Alcotest.(check bool) "audit regression fails" false fn.B.passed

let test_missing_cells () =
  let baseline = mk [ ("cycles.gemm", 100.) ] in
  (* a kernel the baseline has never seen: added, not gated *)
  let added =
    B.compare ~baseline (mk [ ("cycles.gemm", 100.); ("cycles.atax", 50.) ])
  in
  check_status "new kernel" B.Added added "cycles.atax";
  Alcotest.(check bool) "added passes" true added.B.passed;
  (* a kernel the current run lost: removed — only strict mode gates it *)
  let wide = mk [ ("cycles.gemm", 100.); ("cycles.atax", 50.) ] in
  let lost = B.compare ~baseline:wide (mk [ ("cycles.gemm", 100.) ]) in
  check_status "lost kernel" B.Removed lost "cycles.atax";
  Alcotest.(check bool) "removed passes when lax" true lost.B.passed;
  let strict = B.compare ~strict:true ~baseline:wide (mk [ ("cycles.gemm", 100.) ]) in
  Alcotest.(check bool) "removed fails when strict" false strict.B.passed

let test_verdict_flip () =
  let baseline = mk ~verdicts:[ ("e10.passed", true); ("e1.leaked", true) ] [] in
  let flip =
    B.compare ~baseline (mk ~verdicts:[ ("e10.passed", false); ("e1.leaked", true) ] [])
  in
  check_status "verdict flip" B.Regressed flip "e10.passed";
  check_status "stable verdict" B.Unchanged flip "e1.leaked";
  Alcotest.(check bool) "any flip fails" false flip.B.passed;
  (* verdicts are Exact: a flip in the "good" direction still gates, the
     baseline must be refreshed deliberately *)
  let other =
    B.compare ~baseline:(mk ~verdicts:[ ("e1.leaked", true) ] [])
      (mk ~verdicts:[ ("e1.leaked", false) ] [])
  in
  check_status "flip towards good" B.Regressed other "e1.leaked"

let test_info_not_gated () =
  let baseline = mk [ ("counter.trace.run", 100.); ("faults.e10.injected", 3.) ] in
  let cmp =
    B.compare ~strict:true ~baseline
      (mk [ ("counter.trace.run", 9000.); ("faults.e10.injected", 0.) ])
  in
  Alcotest.(check bool) "informational churn passes" true cmp.B.passed;
  Alcotest.(check int) "no regressions" 0 cmp.B.regressed

(* --- trajectory loading ------------------------------------------------- *)

let test_trajectory_dir () =
  with_temp_dir (fun dir ->
      M.write
        (Filename.concat dir (M.filename ~seq:1))
        (mk ~seq:1 ~rev:"aaaa111" [ ("cycles.x", 100.) ]);
      M.write
        (Filename.concat dir (M.filename ~seq:2))
        (mk ~seq:2 ~rev:"bbbb222" [ ("cycles.x", 90.) ]);
      match B.load_dir dir with
      | Error e -> Alcotest.failf "load_dir failed: %s" e
      | Ok ms ->
        Alcotest.(check int) "two manifests" 2 (List.length ms);
        Alcotest.(check int) "next_seq" 3 (B.next_seq ms);
        (match B.select ms with
        | Some m -> Alcotest.(check string) "latest wins" "bbbb222" m.M.rev
        | None -> Alcotest.fail "select found nothing");
        (match B.select ~rev:"aaaa" ms with
        | Some m -> Alcotest.(check int) "rev prefix pin" 1 m.M.seq
        | None -> Alcotest.fail "rev pin found nothing");
        Alcotest.(check bool) "unknown rev" true (B.select ~rev:"ffff" ms = None))

let test_trajectory_rejects_bad_file () =
  with_temp_dir (fun dir ->
      M.write
        (Filename.concat dir (M.filename ~seq:1))
        (mk ~seq:1 [ ("cycles.x", 100.) ]);
      let oc = open_out (Filename.concat dir (M.filename ~seq:2)) in
      output_string oc "{ \"schema_version\": 999 }";
      close_out oc;
      match B.load_dir dir with
      | Ok _ -> Alcotest.fail "incompatible manifest silently accepted"
      | Error _ -> ())

let test_empty_dir_is_error () =
  with_temp_dir (fun dir ->
      match B.load_dir dir with
      | Ok _ -> Alcotest.fail "empty trajectory accepted"
      | Error _ -> ())

(* --- deliberate slowdowns are caught ------------------------------------ *)

let config_with ?cc_capacity ?hot_threshold () =
  let c = Gb_system.Processor.config_for Gb_core.Mitigation.Fine_grained in
  let engine = c.Gb_system.Processor.engine in
  let cache = engine.Gb_dbt.Engine.cache in
  let cache =
    match cc_capacity with
    | Some capacity -> { cache with Gb_dbt.Code_cache.capacity }
    | None -> cache
  in
  let engine = { engine with Gb_dbt.Engine.cache } in
  let engine =
    match hot_threshold with
    | Some hot_threshold -> { engine with Gb_dbt.Engine.hot_threshold }
    | None -> engine
  in
  { c with Gb_system.Processor.engine }

let measure ~config kernel =
  let w =
    match Gb_workloads.Polybench.by_name kernel with
    | Some w -> w
    | None -> Alcotest.failf "unknown polybench kernel %S" kernel
  in
  let r =
    Gb_system.Processor.run_program ~config
      (Gb_kernelc.Compile.assemble w.Gb_workloads.Polybench.program)
  in
  [
    (Printf.sprintf "cycles.t.%s.fine-grained" kernel, Int64.to_float r.cycles);
    ( Printf.sprintf "exits_per_1k.t.%s.chain" kernel,
      Int64.to_float r.Gb_system.Processor.dispatch_exits
      /. Int64.to_float r.Gb_system.Processor.guest_insns
      *. 1000. );
  ]

let test_cc_capacity_slowdown_detected () =
  (* a one-entry code cache thrashes: every trace transfer falls back to
     the dispatcher. Simulated cycles barely move (translation is charged
     to the host), so the exits-per-1k cell is the one that must gate. *)
  let baseline = mk (measure ~config:(config_with ()) "gemm") in
  let crippled =
    mk (measure ~config:(config_with ~cc_capacity:1 ()) "gemm")
  in
  let cmp = B.compare ~baseline crippled in
  Alcotest.(check bool) "crippled cache gates" false cmp.B.passed;
  let regressed = List.map (fun c -> c.B.c_name) (B.regressions cmp) in
  Alcotest.(check bool) "the dispatcher-exit cell regressed" true
    (List.mem "exits_per_1k.t.gemm.chain" regressed)

let test_interp_only_slowdown_detected () =
  (* an unreachable hot threshold keeps everything on the interpreter:
     a plain simulated-cycles regression *)
  let baseline = mk (measure ~config:(config_with ()) "gemm") in
  let interp_only =
    mk (measure ~config:(config_with ~hot_threshold:max_int ()) "gemm")
  in
  let cmp = B.compare ~baseline interp_only in
  check_status "interp-only cycles" B.Regressed cmp
    "cycles.t.gemm.fine-grained";
  Alcotest.(check bool) "interp-only gates" false cmp.B.passed

(* --- per-kind fault recovery counters (Gb_system.Inject) ---------------- *)

let test_inject_per_kind_accounting () =
  let obs = Gb_obs.Sink.create () in
  let t =
    Gb_system.Inject.create ~obs ~seed:3L
      [
        (Gb_system.Inject.Translate_fail, 1.0); (Gb_system.Inject.Evict, 1.0);
      ]
  in
  for _ = 1 to 5 do
    assert (Gb_system.Inject.fire t Gb_system.Inject.Translate_fail)
  done;
  assert (Gb_system.Inject.fire t Gb_system.Inject.Evict);
  Gb_system.Inject.mark_all_recovered t;
  Alcotest.(check int) "translate injected" 5
    (Gb_system.Inject.injected_by_kind t Gb_system.Inject.Translate_fail);
  Alcotest.(check int) "translate recovered" 5
    (Gb_system.Inject.recovered_by_kind t Gb_system.Inject.Translate_fail);
  Alcotest.(check int) "evict recovered" 1
    (Gb_system.Inject.recovered_by_kind t Gb_system.Inject.Evict);
  Alcotest.(check int) "aggregate matches" 6 (Gb_system.Inject.recovered t);
  (match Gb_system.Inject.by_kind t with
  | [ (Gb_system.Inject.Evict, 1, 1); (Gb_system.Inject.Translate_fail, 5, 5) ]
    -> ()
  | other ->
    Alcotest.failf "unexpected by_kind split (%d entries)" (List.length other));
  match Gb_obs.Sink.metrics obs with
  | None -> Alcotest.fail "active sink has metrics"
  | Some m ->
    Alcotest.(check int) "fault.recovered.translate counter" 5
      (Gb_obs.Metrics.counter_value m "fault.recovered.translate");
    Alcotest.(check int) "fault.recovered.evict counter" 1
      (Gb_obs.Metrics.counter_value m "fault.recovered.evict");
    Alcotest.(check int) "fault.recovered aggregate counter" 6
      (Gb_obs.Metrics.counter_value m "fault.recovered")

let test_inject_per_kind_through_oracle () =
  let obs = Gb_obs.Sink.create () in
  let program =
    match Gb_workloads.Polybench.by_name "gemm" with
    | Some w -> w.Gb_workloads.Polybench.program
    | None -> Alcotest.fail "gemm missing"
  in
  let r =
    Gb_diff.Oracle.run_kernel ~obs ~seed:3L
      ~inject:[ (Gb_system.Inject.Translate_fail, 1.0) ]
      program
  in
  Alcotest.(check bool) "oracle run clean" true (Gb_diff.Oracle.clean r);
  match Gb_obs.Sink.metrics obs with
  | None -> Alcotest.fail "active sink has metrics"
  | Some m ->
    let injected =
      Gb_obs.Metrics.counter_value m "fault.injected.translate"
    in
    Alcotest.(check bool) "per-kind faults observed" true (injected > 0);
    Alcotest.(check int) "per-kind recovered = injected" injected
      (Gb_obs.Metrics.counter_value m "fault.recovered.translate")

let () =
  Alcotest.run "perf"
    [
      ( "manifest",
        [
          Alcotest.test_case "json round trip" `Quick test_round_trip;
          Alcotest.test_case "string round trip" `Quick test_string_round_trip;
          Alcotest.test_case "sort + dedup" `Quick test_sort_dedup;
          Alcotest.test_case "schema version rejected" `Quick
            test_schema_version_rejected;
          Alcotest.test_case "missing sections rejected" `Quick
            test_missing_field_rejected;
          Alcotest.test_case "trajectory filenames" `Quick test_filename;
          Alcotest.test_case "file round trip" `Quick test_file_round_trip;
        ] );
      ( "compare",
        [
          Alcotest.test_case "rule dispatch" `Quick test_rule_dispatch;
          Alcotest.test_case "identical manifests pass" `Quick
            test_identical_passes;
          Alcotest.test_case "tolerance boundaries" `Quick
            test_tolerance_boundary;
          Alcotest.test_case "zero-valued cells" `Quick test_zero_cycle_cells;
          Alcotest.test_case "missing kernels" `Quick test_missing_cells;
          Alcotest.test_case "verdict flips" `Quick test_verdict_flip;
          Alcotest.test_case "informational cells never gate" `Quick
            test_info_not_gated;
        ] );
      ( "trajectory",
        [
          Alcotest.test_case "load, select, next_seq" `Quick
            test_trajectory_dir;
          Alcotest.test_case "bad file poisons the load" `Quick
            test_trajectory_rejects_bad_file;
          Alcotest.test_case "empty dir is an error" `Quick
            test_empty_dir_is_error;
        ] );
      ( "slowdown",
        [
          Alcotest.test_case "cc-capacity 1 is caught" `Quick
            test_cc_capacity_slowdown_detected;
          Alcotest.test_case "interp-only is caught" `Quick
            test_interp_only_slowdown_detected;
        ] );
      ( "inject",
        [
          Alcotest.test_case "per-kind accounting" `Quick
            test_inject_per_kind_accounting;
          Alcotest.test_case "per-kind counters through the oracle" `Quick
            test_inject_per_kind_through_oracle;
        ] );
    ]
