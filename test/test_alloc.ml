(* Hot-path allocation discipline (INTERNALS.md) and the address-overflow
   regressions fixed alongside it.

   The allocation bounds here are steady-state properties: warm up the
   code path once, then hold N repetitions to a per-repetition word
   budget derived from the known box floor (3 minor words per int64
   value an ALU op or load materialises into the register file, plus a
   small per-run constant for the trace-exit bookkeeping). Before the
   de-allocation work these paths allocated an order of magnitude more
   (per-bundle closures, option/tuple churn per register write, a boxed
   clock fold per bundle), so every bound in this file fails loudly on
   the old code. *)

open Gb_vliw.Vinsn
module Mem = Gb_riscv.Mem
module Interp = Gb_riscv.Interp
module Allocs = Gb_obs.Allocs

let h n = Gb_vliw.Vinsn.guest_regs + n

let make_machine () =
  let mem = Mem.create ~size:4096 in
  let hier = Gb_cache.Hierarchy.create Gb_cache.Hierarchy.default_config in
  let clock = ref 0L in
  (Gb_vliw.Machine.create ~mem ~hier ~clock (), mem)

let pad width ops =
  Array.init width (fun i ->
      if i < List.length ops then List.nth ops i else Nop)

let trace ?(stubs = [ make_stub ~commits:[] ~target_pc:0x2000 () ])
    ?(n_regs = 64) bundles =
  {
    entry_pc = 0x1000;
    bundles = Array.of_list (List.map (pad 4) bundles);
    stubs = Array.of_list stubs;
    n_regs;
    guest_insns = 0;
    meta = empty_meta;
  }

(* words/run of [n] repetitions after one warm-up pass *)
let measure_runs m t n =
  ignore (Gb_vliw.Pipeline.run_one m t);
  let before = Gc.minor_words () in
  for _ = 1 to n do
    ignore (Gb_vliw.Pipeline.run_one m t)
  done;
  (Gc.minor_words () -. before) /. float_of_int n

(* --- steady-state micro bounds ----------------------------------------- *)

(* Per-run budget: a trace-exit constant (one clock fold, the
   [Gc.minor_words] float boxes of this measurement loop itself) plus
   the 3-word box per value-producing op, with slack. Measured steady
   state is 15 words/run for value-free traces and 69 for 18 ALU ops or
   18 loads (15 + 18 x 3). *)
let budget ~value_ops = 24. +. (3.5 *. float_of_int value_ops)

let check_budget name ~value_ops words =
  if words > budget ~value_ops then
    Alcotest.failf "%s: %.1f words/run exceeds budget %.1f (%d value ops)"
      name words (budget ~value_ops) value_ops

let alu d = Alu { op = Gb_riscv.Insn.ADD; dst = d; a = R 1; b = R 2 }

let load ?(w = Gb_riscv.Insn.D) ?(unsigned = false) d off =
  Load
    { w; unsigned; dst = d; base = R 1; off; spec = None; id = 0; pc = 0;
      hoisted = false }

let store off =
  Store { w = Gb_riscv.Insn.D; src = R 2; base = R 1; off; id = 1; pc = 4 }

let micro_bounds () =
  let m, _ = make_machine () in
  m.Gb_vliw.Machine.regs.(1) <- 64L;
  let body ops = List.init 9 (fun _ -> ops) @ [ [ Exit { stub = 0 } ] ] in
  let t_nop = trace (body []) in
  let t_alu = trace (body [ alu (h 0); alu (h 1) ]) in
  let t_load = trace (body [ load (h 0) 0; load (h 1) 8 ]) in
  let t_store = trace (body [ store 16 ]) in
  check_budget "nops" ~value_ops:0 (measure_runs m t_nop 500);
  check_budget "alu x18" ~value_ops:18 (measure_runs m t_alu 500);
  check_budget "load x18" ~value_ops:18 (measure_runs m t_load 500);
  check_budget "store x9" ~value_ops:0 (measure_runs m t_store 500)

(* --- qcheck: random traces stay within the box-floor budget ------------- *)

(* One bundle slot: the dst register is keyed to the slot so a bundle
   never double-writes. Value-producing ops (ALU, loads of every width)
   cost their one result box; stores and nops must cost nothing. *)
let gen_slot_op =
  let open QCheck.Gen in
  let off = map (fun k -> 8 * k) (int_range 0 100) in
  fun slot ->
    frequency
      [
        (3, map (fun _ -> alu (h slot)) unit);
        (2, map (fun off -> load (h slot) off) off);
        ( 1,
          map
            (fun off -> load ~w:Gb_riscv.Insn.W ~unsigned:true (h slot) off)
            off );
        (1, map (fun off -> store off) off);
        (1, return Nop);
      ]

let gen_trace =
  let open QCheck.Gen in
  let* n_bundles = int_range 1 12 in
  let gen_bundle = List.init 4 gen_slot_op |> flatten_l in
  let* bundles = list_size (return n_bundles) gen_bundle in
  return (trace (bundles @ [ [ Exit { stub = 0 } ] ]))

let value_ops t =
  Array.fold_left
    (fun acc bundle ->
      Array.fold_left
        (fun acc op ->
          match op with Alu _ | Load _ -> acc + 1 | _ -> acc)
        acc bundle)
    0 t.bundles

let random_trace_budget =
  QCheck.Test.make ~count:60
    ~name:"random traces: steady state within the box-floor budget"
    (QCheck.make gen_trace) (fun t ->
      let m, _ = make_machine () in
      m.Gb_vliw.Machine.regs.(1) <- 64L;
      measure_runs m t 200 <= budget ~value_ops:(value_ops t))

(* --- end-to-end bounds on a real kernel -------------------------------- *)

let gemm () = List.hd Gb_workloads.Polybench.all

let gemm_program () =
  Gb_kernelc.Compile.assemble (gemm ()).Gb_workloads.Polybench.program

(* ~2600 words/kinsn today; 16000+ before the de-allocation work *)
let interp_bound () =
  let program = gemm_program () in
  let mem = Mem.create ~size:(1 lsl 20) in
  Gb_riscv.Asm.load mem program;
  let i = Interp.create ~mem ~pc:program.Gb_riscv.Asm.entry () in
  let a = Allocs.create () in
  Allocs.start a;
  let (_ : int) = Interp.run i in
  let per_kinsn =
    Allocs.per_kinsn ~words:(Allocs.stop a) ~insns:i.Interp.insn_count
  in
  if per_kinsn > 3500. then
    Alcotest.failf "interpreter allocates %.0f words/kinsn (budget 3500)"
      per_kinsn

(* ~2100 words/kinsn today (translation excluded by the engine's Allocs
   windows); 10000+ before the de-allocation work *)
let pipeline_bound () =
  let program = gemm_program () in
  List.iter
    (fun mode ->
      let p =
        Gb_system.Processor.create
          ~config:(Gb_system.Processor.config_for mode)
          program
      in
      let a = Gb_system.Processor.allocs p in
      Allocs.start a;
      let r = Gb_system.Processor.run p in
      let per_kinsn =
        Allocs.per_kinsn ~words:(Allocs.stop a)
          ~insns:r.Gb_system.Processor.guest_insns
      in
      if per_kinsn > 3000. then
        Alcotest.failf "%s: pipeline allocates %.0f words/kinsn (budget 3000)"
          (Gb_core.Mitigation.mode_name mode)
          per_kinsn)
    [ Gb_core.Mitigation.Fence_on_detect; Gb_core.Mitigation.Min_cut ]

(* --- Allocs accounting ------------------------------------------------- *)

(* ~5 minor words per element: a float box and a list cell. A single big
   array would go straight to the major heap (beyond Max_young_wosize)
   and be invisible to [Gc.minor_words]. *)
let alloc_minor_words n =
  let l = ref [] in
  for i = 1 to n / 5 do
    l := Sys.opaque_identity (float_of_int i) :: !l
  done;
  ignore (Sys.opaque_identity !l)

let allocs_windows () =
  let a = Allocs.create () in
  Alcotest.(check (float 0.)) "never started" 0. (Allocs.stop a);
  Allocs.start a;
  alloc_minor_words 500;
  Allocs.pause a;
  Allocs.pause a;
  (* nested *)
  alloc_minor_words 100_000;
  Allocs.resume a;
  Allocs.resume a;
  alloc_minor_words 500;
  let counted = Allocs.stop a in
  (* both counted windows, but never the excluded one; generous slack
     for boxing noise around the window edges *)
  if counted < 900. || counted > 2500. then
    Alcotest.failf "counted %.0f words, expected ~1000 (excluded 100k)" counted

(* --- overflow regressions ---------------------------------------------- *)

(* [addr + size] wraps negative near [max_int]: the pre-fix bound check
   [addr + n > length] concluded the access was in range and indexed
   [Bytes] with a wild offset. The fixed check ([n > length - addr])
   cannot overflow for positive addr. *)
let mem_overflow () =
  let mem = Mem.create ~size:4096 in
  let huge = max_int - 3 in
  Alcotest.check_raises "load" (Mem.Fault huge) (fun () ->
      ignore (Mem.load mem ~addr:huge ~size:8));
  Alcotest.check_raises "load_int" (Mem.Fault huge) (fun () ->
      ignore (Mem.load_int mem ~addr:huge ~size:4));
  Alcotest.check_raises "store" (Mem.Fault huge) (fun () ->
      Mem.store mem ~addr:huge ~size:8 42L);
  Alcotest.check_raises "load at max_int" (Mem.Fault max_int) (fun () ->
      ignore (Mem.load mem ~addr:max_int ~size:1))

(* The pipeline's deferred-fault bound check had the same wrap: a
   speculatively computed base near [max_int] dodged the fault path and
   crashed the host instead of faulting to 0. *)
let pipeline_load_overflow () =
  let m, _ = make_machine () in
  m.Gb_vliw.Machine.regs.(1) <- Int64.of_int (max_int - 4);
  let t =
    trace
      ~stubs:
        [ make_stub ~commits:[ (Gb_riscv.Reg.a0, R (h 0)) ] ~target_pc:0x2000 () ]
      [ [ load (h 0) 0 ]; [ Exit { stub = 0 } ] ]
  in
  let info = Gb_vliw.Pipeline.run_one m t in
  Alcotest.(check bool) "fallthrough" true
    (info.Gb_vliw.Vinsn.kind = Fallthrough);
  Alcotest.(check int64) "faulted load reads 0" 0L
    m.Gb_vliw.Machine.regs.(Gb_riscv.Reg.a0)

(* A bad pc — negative, misaligned, out of range, or pointing at a
   non-instruction — must raise a clean [Trap], never [Invalid_argument]
   or [Mem.Fault]. *)
let fetch_traps () =
  let expect name pc =
    let mem = Mem.create ~size:4096 in
    let i = Interp.create ~mem ~pc () in
    match Interp.step i with
    | _ -> Alcotest.failf "%s: expected a Trap" name
    | exception Interp.Trap _ -> ()
    | exception e ->
      Alcotest.failf "%s: expected a Trap, got %s" name (Printexc.to_string e)
  in
  expect "negative pc" (-8);
  expect "misaligned pc" 2;
  expect "pc past memory" (4096 + 16);
  expect "pc at max_int - 3" (max_int - 3);
  expect "all-zero word (illegal encoding)" 0

let () =
  Alcotest.run "alloc"
    [
      ( "bounds",
        [
          Alcotest.test_case "micro steady state" `Quick micro_bounds;
          QCheck_alcotest.to_alcotest random_trace_budget;
          Alcotest.test_case "interpreter on gemm" `Quick interp_bound;
          Alcotest.test_case "pipeline on gemm" `Quick pipeline_bound;
        ] );
      ( "allocs",
        [ Alcotest.test_case "exclusion windows" `Quick allocs_windows ] );
      ( "overflow",
        [
          Alcotest.test_case "Mem bound checks" `Quick mem_overflow;
          Alcotest.test_case "pipeline deferred fault" `Quick
            pipeline_load_overflow;
          Alcotest.test_case "interp fetch traps" `Quick fetch_traps;
        ] );
    ]
