(* Tests for the VLIW core: bundle execution, exit stubs, MCB rollback,
   stall-on-miss timing — on hand-written traces. *)

open Gb_vliw.Vinsn

let h n = Gb_vliw.Vinsn.guest_regs + n (* hidden register n *)

let make_machine () =
  let mem = Gb_riscv.Mem.create ~size:(1 lsl 16) in
  let hier = Gb_cache.Hierarchy.create Gb_cache.Hierarchy.default_config in
  let clock = ref 0L in
  (Gb_vliw.Machine.create ~mem ~hier ~clock (), clock)

let pad width ops = Array.init width (fun i -> if i < List.length ops then List.nth ops i else Nop)

let trace ?(stubs = []) ?(n_regs = 64) bundles =
  {
    entry_pc = 0x1000;
    bundles = Array.of_list (List.map (pad 4) bundles);
    stubs = Array.of_list stubs;
    n_regs;
    guest_insns = 0;
    meta = empty_meta;
  }

let add = Gb_riscv.Insn.ADD

let straight_line () =
  (* h0 = 5; h1 = h0 + 7; exit committing a0 <- h1 *)
  let t =
    trace
      ~stubs:[ make_stub ~commits:[ (Gb_riscv.Reg.a0, R (h 1)) ] ~target_pc:0x2000 () ]
      [
        [ Alu { op = add; dst = h 0; a = I 5L; b = I 0L } ];
        [ Alu { op = add; dst = h 1; a = R (h 0); b = I 7L } ];
        [ Exit { stub = 0 } ];
      ]
  in
  let m, _clock = make_machine () in
  let info = Gb_vliw.Pipeline.run m t in
  Alcotest.(check int) "next pc" 0x2000 info.Gb_vliw.Pipeline.next_pc;
  Alcotest.(check int64) "a0 committed" 12L m.Gb_vliw.Machine.regs.(Gb_riscv.Reg.a0);
  Alcotest.(check bool) "fallthrough" true
    (info.Gb_vliw.Pipeline.kind = Gb_vliw.Pipeline.Fallthrough)

let parallel_semantics () =
  (* h0=1 first; then in ONE bundle: h1 <- h0 + 1 and h0 <- 100.
     h1 must read the pre-bundle h0. *)
  let t =
    trace
      ~stubs:[ make_stub ~commits:[ (Gb_riscv.Reg.a0, R (h 1)) ] ~target_pc:0 () ]
      [
        [ Alu { op = add; dst = h 0; a = I 1L; b = I 0L } ];
        [
          Alu { op = add; dst = h 1; a = R (h 0); b = I 1L };
          Alu { op = add; dst = h 0; a = I 100L; b = I 0L };
        ];
        [ Exit { stub = 0 } ];
      ]
  in
  let m, _ = make_machine () in
  ignore (Gb_vliw.Pipeline.run m t);
  Alcotest.(check int64) "parallel read" 2L m.Gb_vliw.Machine.regs.(Gb_riscv.Reg.a0)

let side_exit_commits () =
  (* Branch taken in bundle 1: only the side-exit stub's commits apply. *)
  let t =
    trace
      ~stubs:
        [
          make_stub ~commits:[ (Gb_riscv.Reg.a0, I 1L) ] ~target_pc:0xAAAA ();
          make_stub ~commits:[ (Gb_riscv.Reg.a0, I 2L) ] ~target_pc:0xBBBB ();
        ]
      [
        [ Alu { op = add; dst = h 0; a = I 3L; b = I 4L } ];
        [ Branch { cond = Gb_riscv.Insn.BEQ; a = R (h 0); b = I 7L; stub = 0 } ];
        [ Exit { stub = 1 } ];
      ]
  in
  let m, _ = make_machine () in
  let info = Gb_vliw.Pipeline.run m t in
  Alcotest.(check int) "side exit target" 0xAAAA info.Gb_vliw.Pipeline.next_pc;
  Alcotest.(check int64) "stub 0 committed" 1L m.Gb_vliw.Machine.regs.(Gb_riscv.Reg.a0);
  Alcotest.(check bool) "kind" true
    (info.Gb_vliw.Pipeline.kind = Gb_vliw.Pipeline.Side_exit)

let mcb_rollback () =
  (* Speculative load from address 128 hoisted above a store to 128:
     the chk must roll back. With a store to 256 instead, it must not. *)
  let build store_addr =
    trace
      ~stubs:
        [
          make_stub ~commits:[] ~target_pc:0xD00D () (* rollback stub *);
          make_stub ~commits:[ (Gb_riscv.Reg.a0, R (h 0)) ] ~target_pc:0xFFFF ();
        ]
      [
        [
          Load
            { w = Gb_riscv.Insn.D; unsigned = false; dst = h 0; base = I 128L;
              off = 0; spec = Some 3; id = 0; pc = 0; hoisted = false };
        ];
        [
          Store
            { w = Gb_riscv.Insn.D; src = I 42L; base = I (Int64.of_int store_addr);
              off = 0; id = 0; pc = 0 };
        ];
        [ Chk { tag = 3; stub = 0 } ];
        [ Exit { stub = 1 } ];
      ]
  in
  let m, _ = make_machine () in
  let info = Gb_vliw.Pipeline.run m (build 128) in
  Alcotest.(check int) "rollback target" 0xD00D info.Gb_vliw.Pipeline.next_pc;
  Alcotest.(check bool) "rollback kind" true
    (info.Gb_vliw.Pipeline.kind = Gb_vliw.Pipeline.Rollback);
  Alcotest.(check int64) "a0 not committed" 0L m.Gb_vliw.Machine.regs.(Gb_riscv.Reg.a0);
  let m2, _ = make_machine () in
  let info2 = Gb_vliw.Pipeline.run m2 (build 256) in
  Alcotest.(check int) "no rollback" 0xFFFF info2.Gb_vliw.Pipeline.next_pc;
  (* the load committed the (pre-store) memory value 0 *)
  Alcotest.(check int64) "a0 committed" 0L m2.Gb_vliw.Machine.regs.(Gb_riscv.Reg.a0)

let mcb_partial_overlap () =
  (* A 1-byte store inside the 8-byte speculatively loaded range conflicts. *)
  let t =
    trace
      ~stubs:
        [
          make_stub ~commits:[] ~target_pc:1 ();
          make_stub ~commits:[] ~target_pc:2 ();
        ]
      [
        [
          Load
            { w = Gb_riscv.Insn.D; unsigned = false; dst = h 0; base = I 512L;
              off = 0; spec = Some 0; id = 0; pc = 0; hoisted = false };
        ];
        [ Store { w = Gb_riscv.Insn.B; src = I 1L; base = I 519L; off = 0; id = 0; pc = 0 } ];
        [ Chk { tag = 0; stub = 0 } ];
        [ Exit { stub = 1 } ];
      ]
  in
  let m, _ = make_machine () in
  let info = Gb_vliw.Pipeline.run m t in
  Alcotest.(check int) "overlap detected" 1 info.Gb_vliw.Pipeline.next_pc

let speculative_fault_deferred () =
  (* A speculative load far out of memory returns 0 and does not raise. *)
  let t =
    trace
      ~stubs:[ make_stub ~commits:[ (Gb_riscv.Reg.a0, R (h 0)) ] ~target_pc:0 () ]
      [
        [
          Load
            { w = Gb_riscv.Insn.D; unsigned = false; dst = h 0;
              base = I 0x7FFFFFFFL; off = 0; spec = None; id = 0; pc = 0; hoisted = false };
        ];
        [ Exit { stub = 0 } ];
      ]
  in
  let m, _ = make_machine () in
  ignore (Gb_vliw.Pipeline.run m t);
  Alcotest.(check int64) "deferred fault value" 0L
    m.Gb_vliw.Machine.regs.(Gb_riscv.Reg.a0)

let miss_stalls_pipeline () =
  (* Same trace run twice: first run misses (cold cache), second hits. *)
  let t =
    trace
      ~stubs:[ make_stub ~commits:[] ~target_pc:0 () ]
      [
        [
          Load
            { w = Gb_riscv.Insn.D; unsigned = false; dst = h 0; base = I 4096L;
              off = 0; spec = None; id = 0; pc = 0; hoisted = false };
        ];
        [ Exit { stub = 0 } ];
      ]
  in
  let m, clock = make_machine () in
  ignore (Gb_vliw.Pipeline.run m t);
  let cold = !clock in
  ignore (Gb_vliw.Pipeline.run m t);
  let warm = Int64.sub !clock cold in
  Alcotest.(check bool) "cold run slower" true (Int64.compare cold warm > 0);
  let miss_penalty =
    (Gb_cache.Hierarchy.config m.Gb_vliw.Machine.hier).Gb_cache.Hierarchy.miss_penalty
  in
  Alcotest.(check int64) "difference is the miss penalty"
    (Int64.of_int miss_penalty) (Int64.sub cold warm)

let cflush_forces_miss () =
  let t_load =
    trace
      ~stubs:[ make_stub ~commits:[] ~target_pc:0 () ]
      [
        [
          Load
            { w = Gb_riscv.Insn.D; unsigned = false; dst = h 0; base = I 4096L;
              off = 0; spec = None; id = 0; pc = 0; hoisted = false };
        ];
        [ Exit { stub = 0 } ];
      ]
  in
  let m, clock = make_machine () in
  ignore (Gb_vliw.Pipeline.run m t_load);
  ignore (Gb_vliw.Pipeline.run m t_load);
  let before = !clock in
  (* flush the line, reload: should pay the miss again *)
  Gb_cache.Hierarchy.flush_line m.Gb_vliw.Machine.hier 4096;
  ignore (Gb_vliw.Pipeline.run m t_load);
  let after = Int64.sub !clock before in
  Alcotest.(check bool) "flush caused a miss" true
    (Int64.compare after 40L > 0)

let duplicate_write_rejected () =
  let t =
    trace
      ~stubs:[ make_stub ~commits:[] ~target_pc:0 () ]
      [
        [
          Alu { op = add; dst = h 0; a = I 1L; b = I 0L };
          Alu { op = add; dst = h 0; a = I 2L; b = I 0L };
        ];
        [ Exit { stub = 0 } ];
      ]
  in
  let m, _ = make_machine () in
  Alcotest.check_raises "duplicate write"
    (Gb_vliw.Pipeline.Machine_error "duplicate write to register 32")
    (fun () -> ignore (Gb_vliw.Pipeline.run m t))

let rdcycle_observes_stalls () =
  (* rdcycle; miss load; rdcycle -> delta > miss penalty;
     then warm: delta small. *)
  let t =
    trace
      ~stubs:
        [ make_stub ~commits:[ (Gb_riscv.Reg.a0, R (h 2)) ] ~target_pc:0 () ]
      [
        [ Rdcycle { dst = h 0 } ];
        [
          Load
            { w = Gb_riscv.Insn.D; unsigned = false; dst = h 3; base = I 8192L;
              off = 0; spec = None; id = 0; pc = 0; hoisted = false };
        ];
        [ Rdcycle { dst = h 1 } ];
        [ Alu { op = Gb_riscv.Insn.SUB; dst = h 2; a = R (h 1); b = R (h 0) } ];
        [ Exit { stub = 0 } ];
      ]
  in
  let m, _ = make_machine () in
  ignore (Gb_vliw.Pipeline.run m t);
  let cold_delta = m.Gb_vliw.Machine.regs.(Gb_riscv.Reg.a0) in
  ignore (Gb_vliw.Pipeline.run m t);
  let warm_delta = m.Gb_vliw.Machine.regs.(Gb_riscv.Reg.a0) in
  Alcotest.(check bool) "cold >= miss penalty" true
    (Int64.compare cold_delta 40L >= 0);
  Alcotest.(check bool) "warm < miss penalty" true
    (Int64.compare warm_delta 40L < 0)

let subword_memory_ops () =
  (* halfword/word loads and stores through the VLIW pipeline: truncation
     on store, zero- vs sign-extension on load *)
  let t =
    trace
      ~stubs:
        [
          make_stub
            ~commits:
              [
                (Gb_riscv.Reg.a0, R (h 1));
                (Gb_riscv.Reg.a1, R (h 2));
                (Gb_riscv.Reg.a2, R (h 3));
              ]
            ~target_pc:0 ();
        ]
      [
        (* store 0xFFFF8001 as a word at 256 *)
        [ Store { w = Gb_riscv.Insn.W; src = I 0xFFFF8001L; base = I 256L; off = 0; id = 0; pc = 0 } ];
        (* signed word load -> sign-extends *)
        [ Load { w = Gb_riscv.Insn.W; unsigned = false; dst = h 1; base = I 256L; off = 0; spec = None; id = 0; pc = 0; hoisted = false } ];
        (* unsigned halfword load of the low half -> 0x8001 *)
        [ Load { w = Gb_riscv.Insn.H; unsigned = true; dst = h 2; base = I 256L; off = 0; spec = None; id = 0; pc = 0; hoisted = false } ];
        (* signed halfword load -> sign-extends 0x8001 *)
        [ Load { w = Gb_riscv.Insn.H; unsigned = false; dst = h 3; base = I 256L; off = 0; spec = None; id = 0; pc = 0; hoisted = false } ];
        [ Exit { stub = 0 } ];
      ]
  in
  let m, _ = make_machine () in
  ignore (Gb_vliw.Pipeline.run m t);
  Alcotest.(check int64) "lw sign-extends" 0xFFFFFFFFFFFF8001L
    m.Gb_vliw.Machine.regs.(Gb_riscv.Reg.a0);
  Alcotest.(check int64) "lhu zero-extends" 0x8001L
    m.Gb_vliw.Machine.regs.(Gb_riscv.Reg.a1);
  Alcotest.(check int64) "lh sign-extends" 0xFFFFFFFFFFFF8001L
    m.Gb_vliw.Machine.regs.(Gb_riscv.Reg.a2)

let mcb_tag_reuse () =
  let mcb = Gb_vliw.Mcb.create ~entries:4 () in
  Gb_vliw.Mcb.alloc mcb ~tag:1 ~addr:100 ~size:8;
  Gb_vliw.Mcb.store_probe mcb ~pc:0 ~addr:104 ~size:1;
  Alcotest.(check bool) "conflict" true (Gb_vliw.Mcb.check mcb ~tag:1);
  (* entry consumed: checking again reports no conflict *)
  Alcotest.(check bool) "consumed" false (Gb_vliw.Mcb.check mcb ~tag:1);
  (* reallocation resets the conflict bit *)
  Gb_vliw.Mcb.alloc mcb ~tag:1 ~addr:100 ~size:8;
  Alcotest.(check bool) "reset" false (Gb_vliw.Mcb.check mcb ~tag:1)

let mcb_disabled () =
  (* entries = 0 is a valid configuration meaning "MCB disabled": all
     operations are safe no-ops and check never reports a conflict. *)
  let mcb = Gb_vliw.Mcb.create ~entries:0 () in
  Alcotest.(check bool) "disabled" false (Gb_vliw.Mcb.enabled mcb);
  Alcotest.(check int) "entries" 0 (Gb_vliw.Mcb.entries mcb);
  Gb_vliw.Mcb.alloc mcb ~tag:0 ~addr:100 ~size:8;
  Gb_vliw.Mcb.store_probe mcb ~pc:0 ~addr:100 ~size:8;
  Alcotest.(check bool) "no conflict" false (Gb_vliw.Mcb.check mcb ~tag:0);
  Gb_vliw.Mcb.clear mcb;
  Alcotest.(check int) "no conflicts recorded" 0
    (Gb_vliw.Mcb.conflicts_recorded mcb);
  Alcotest.check_raises "negative entries rejected"
    (Invalid_argument "Mcb.create: negative entries") (fun () ->
      ignore (Gb_vliw.Mcb.create ~entries:(-1) ()))

let mcb_fault_hook () =
  let mcb = Gb_vliw.Mcb.create ~entries:4 () in
  (* spurious: force a conflict where none exists *)
  Gb_vliw.Mcb.alloc mcb ~tag:2 ~addr:100 ~size:8;
  Gb_vliw.Mcb.set_fault_hook mcb (Some (fun ~tag:_ ~conflict:_ -> true));
  Alcotest.(check bool) "spurious conflict" true
    (Gb_vliw.Mcb.check mcb ~tag:2);
  (* suppress: hide a real conflict *)
  Gb_vliw.Mcb.alloc mcb ~tag:2 ~addr:100 ~size:8;
  Gb_vliw.Mcb.store_probe mcb ~pc:0 ~addr:100 ~size:8;
  Gb_vliw.Mcb.set_fault_hook mcb (Some (fun ~tag:_ ~conflict:_ -> false));
  Alcotest.(check bool) "suppressed conflict" false
    (Gb_vliw.Mcb.check mcb ~tag:2);
  (* removing the hook restores normal behaviour *)
  Gb_vliw.Mcb.set_fault_hook mcb None;
  Gb_vliw.Mcb.alloc mcb ~tag:3 ~addr:200 ~size:8;
  Gb_vliw.Mcb.store_probe mcb ~pc:0 ~addr:200 ~size:8;
  Alcotest.(check bool) "hook removed" true (Gb_vliw.Mcb.check mcb ~tag:3)

let () =
  Alcotest.run "vliw"
    [
      ( "pipeline",
        [
          Alcotest.test_case "straight line" `Quick straight_line;
          Alcotest.test_case "parallel bundle semantics" `Quick
            parallel_semantics;
          Alcotest.test_case "side exit commits" `Quick side_exit_commits;
          Alcotest.test_case "speculative fault deferred" `Quick
            speculative_fault_deferred;
          Alcotest.test_case "duplicate write rejected" `Quick
            duplicate_write_rejected;
          Alcotest.test_case "subword memory ops" `Quick subword_memory_ops;
        ] );
      ( "timing",
        [
          Alcotest.test_case "miss stalls pipeline" `Quick miss_stalls_pipeline;
          Alcotest.test_case "cflush forces miss" `Quick cflush_forces_miss;
          Alcotest.test_case "rdcycle observes stalls" `Quick
            rdcycle_observes_stalls;
        ] );
      ( "mcb",
        [
          Alcotest.test_case "rollback on conflict" `Quick mcb_rollback;
          Alcotest.test_case "partial overlap" `Quick mcb_partial_overlap;
          Alcotest.test_case "tag reuse" `Quick mcb_tag_reuse;
          Alcotest.test_case "entries=0 disables" `Quick mcb_disabled;
          Alcotest.test_case "fault hook" `Quick mcb_fault_hook;
        ] );
    ]
